// Command moara is the interactive front-end of §7: it boots a
// simulated Moara deployment, populates demo monitoring attributes,
// and drops into a query shell.
//
// Usage:
//
//	moara [-n 256] [-seed 1] [-lan|-wan]
//
// Shell commands:
//
//	<query>                  e.g. avg(cpu_util) where apache = true
//	<query> every <dur>      standing query: streams samples per epoch
//	set <node> <attr> <val>  write an attribute on a node's agent
//	get <node> <attr>        read an attribute
//	subs [node]              standing-subscription table snapshot
//	stats                    message-counter snapshot
//	help, quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/moara/moara"
	"github.com/moara/moara/internal/value"
)

func main() {
	n := flag.Int("n", 256, "cluster size")
	seed := flag.Int64("seed", 1, "random seed")
	lan := flag.Bool("lan", false, "use the Emulab-style LAN latency model")
	wan := flag.Bool("wan", false, "use the PlanetLab-style WAN latency model")
	samples := flag.Int("samples", 8, "epochs to stream per standing query")
	coalesce := flag.Duration("coalesce", 0,
		"wire coalescing window (0 = one event-loop tick, -1ns = off)")
	cacheTTL := flag.Duration("cache", 0,
		"query-service result cache TTL (0 = caching off); cached answers print their age")
	flag.Parse()

	opts := []moara.Option{moara.WithSeed(*seed)}
	if *coalesce < 0 {
		opts = append(opts, moara.WithCoalesceWindow(moara.CoalesceOff))
	} else if *coalesce > 0 {
		opts = append(opts, moara.WithCoalesceWindow(*coalesce))
	}
	switch {
	case *lan:
		opts = append(opts, moara.WithLANModel())
	case *wan:
		opts = append(opts, moara.WithWANModel())
	}
	c := moara.NewSimCluster(*n, opts...)
	seedDemoAttrs(c)
	// The shell talks to the cluster through the unified client API,
	// fronted by the query service: identical standing queries share one
	// installed tree, and with -cache one-shot answers within the TTL are
	// served from the service (stamped with their age).
	cl := moara.NewService(c.Client(0), moara.ServiceOptions{CacheTTL: *cacheTTL})

	fmt.Printf("moara: %d-node simulated cluster ready; try: count(*) where apache = true, or avg(mem_util) group by slice\n", *n)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("moara> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case line == "quit" || line == "exit":
			return
		case line == "help":
			fmt.Println("  <agg>(<attr>) [group by <attr>] [where <pred>] [every <dur>] | set <node> <attr> <val> | get <node> <attr> | trees [node] | subs [node] | stats | quit")
			fmt.Println("  aggs: sum count min max avg std topN enum | sketches: dcount quantile(x,q) pNN topkeys(x,k) union collect")
		case line == "stats":
			logical, wire := c.Messages(), c.WireMessages()
			fmt.Printf("  moara messages since start/reset: %d logical, %d wire", logical, wire)
			if wire > 0 && logical > wire {
				fmt.Printf(" (coalescing saved %.0f%%)", 100*float64(logical-wire)/float64(logical))
			}
			fmt.Println()
		case line == "subs" || strings.HasPrefix(line, "subs "):
			parts := strings.Fields(line)
			node := 0
			if len(parts) == 2 {
				if i, err := strconv.Atoi(parts[1]); err == nil && i >= 0 && i < c.Size() {
					node = i
				}
			}
			infos := c.Subs(node)
			if len(infos) == 0 {
				fmt.Println("  (no subscriptions)")
			}
			for _, si := range infos {
				fmt.Printf("  %-12s %-40s root=%-5v every=%-8s epoch=%-4d children=%d targets=%d\n",
					si.SID, si.Group, si.Root, si.Period, si.Epoch, si.Children, si.Targets)
			}
		case strings.HasPrefix(line, "trees"):
			parts := strings.Fields(line)
			node := 0
			if len(parts) == 2 {
				if i, err := strconv.Atoi(parts[1]); err == nil && i >= 0 && i < c.Size() {
					node = i
				}
			}
			for _, ti := range c.Trees(node) {
				fmt.Printf("  %-40s level=%-2d sat=%-5v update=%-5v prune=%-5v qset=%d np=%d\n",
					ti.Group, ti.Level, ti.Sat, ti.Update, ti.Prune, ti.QSetSize, ti.Np)
			}
		case strings.HasPrefix(line, "set "):
			doSet(c, line)
		case strings.HasPrefix(line, "get "):
			doGet(c, line)
		default:
			runQuery(c, cl, line, *samples)
		}
		fmt.Print("moara> ")
	}
}

func runQuery(c *moara.SimCluster, cl moara.Client, q string, samples int) {
	if req, err := moara.ParseRequest(q); err == nil && req.Period > 0 {
		runStanding(c, cl, q, req.Period, samples)
		return
	}
	res, err := cl.Query(context.Background(), q)
	if err != nil {
		fmt.Printf("  error: %v\n", err)
		return
	}
	if res.Cached {
		fmt.Printf("  (cached %s ago)\n", res.Age)
	}
	if res.Groups != nil {
		for _, line := range moara.FormatGroups(res) {
			fmt.Printf("  %s\n", line)
		}
		if res.Truncated {
			fmt.Println("  (truncated: key cap exceeded, remainder under <other>)")
		}
		fmt.Printf("  total %s across %d keys\n", res.Agg.Value, res.Stats.GroupKeys)
	} else {
		fmt.Printf("  %s\n", res.Agg)
	}
	fmt.Printf("  %d contributors, %.1f ms", res.Contributors,
		float64(res.Stats.TotalTime.Microseconds())/1000)
	if len(res.Stats.Chosen) > 0 {
		fmt.Printf(", cover %v", res.Stats.Chosen)
	}
	if res.Stats.ShortCircuit {
		fmt.Print(", short-circuited (provably empty)")
	}
	fmt.Println()
}

// runStanding installs a standing query through the service, pumps
// virtual time for the requested number of epochs while printing each
// sample, then cancels. A second identical query typed while one is
// live would share the same installed tree.
func runStanding(c *moara.SimCluster, cl moara.Client, q string, period time.Duration, samples int) {
	got := 0
	sub, err := cl.Subscribe(context.Background(), q, func(s moara.Sample) {
		got++
		for _, line := range moara.FormatSample(s) {
			fmt.Printf("  %s\n", line)
		}
	})
	if err != nil {
		fmt.Printf("  error: %v\n", err)
		return
	}
	for i := 0; got < samples && i < 4*samples+16; i++ {
		c.RunFor(period)
	}
	if err := sub.Unsubscribe(); err != nil {
		fmt.Printf("  unsubscribe: %v\n", err)
	}
	// Drain the cancel cascade in virtual time so `subs` shows the
	// post-teardown state.
	c.RunFor(4 * period)
	fmt.Printf("  cancelled after %d epochs\n", got)
}

func doSet(c *moara.SimCluster, line string) {
	parts := strings.Fields(line)
	if len(parts) != 4 {
		fmt.Println("  usage: set <node> <attr> <value>")
		return
	}
	i, err := strconv.Atoi(parts[1])
	if err != nil || i < 0 || i >= c.Size() {
		fmt.Printf("  bad node index %q (0..%d)\n", parts[1], c.Size()-1)
		return
	}
	v, err := value.Parse(parts[3])
	if err != nil {
		fmt.Printf("  bad value: %v\n", err)
		return
	}
	c.SetAttr(i, parts[2], v)
	fmt.Printf("  node %d: %s = %s\n", i, parts[2], v)
}

func doGet(c *moara.SimCluster, line string) {
	parts := strings.Fields(line)
	if len(parts) != 3 {
		fmt.Println("  usage: get <node> <attr>")
		return
	}
	i, err := strconv.Atoi(parts[1])
	if err != nil || i < 0 || i >= c.Size() {
		fmt.Printf("  bad node index %q\n", parts[1])
		return
	}
	fmt.Printf("  node %d: %s = %s\n", i, parts[2], c.Attr(i, parts[2]))
}

// seedDemoAttrs gives the shell something to query out of the box.
func seedDemoAttrs(c *moara.SimCluster) {
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "cpu_util", moara.Float(float64((i*53)%100)))
		c.SetAttr(i, "mem_util", moara.Float(float64((i*29)%100)))
		c.SetAttr(i, "apache", moara.Bool(i%2 == 0))
		c.SetAttr(i, "service_x", moara.Bool(i%5 == 0))
		c.SetAttr(i, "os", moara.Str([]string{"linux", "freebsd", "solaris"}[i%3]))
		c.SetAttr(i, "slice", moara.Str(fmt.Sprintf("cs%d", 100+i%7)))
	}
}
