// Command moara-agent runs one Moara node on a real TCP transport — the
// multi-process deployment form. A static roster of agent addresses
// defines the overlay (node IDs derive from listen addresses).
//
// Start a 4-agent local testbed:
//
//	for p in 7001 7002 7003 7004; do
//	  moara-agent -listen 127.0.0.1:$p \
//	    -peers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004 \
//	    -attrs "cpu_util=$((RANDOM % 100)),apache=true" &
//	done
//	moara-agent -listen 127.0.0.1:7005 -peers ... -shell
//
// With -shell, the agent additionally reads queries from stdin.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/moara/moara"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/transport"
	"github.com/moara/moara/internal/value"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "listen address (also this agent's identity)")
	peers := flag.String("peers", "", "comma-separated roster of all agent addresses")
	peersFile := flag.String("peers-file", "", "file with one agent address per line")
	attrs := flag.String("attrs", "", "comma-separated name=value attributes to publish")
	shell := flag.Bool("shell", false, "read queries from stdin")
	timeout := flag.Duration("timeout", 30*time.Second, "per-query timeout in shell mode")
	samples := flag.Int("samples", 5, "epochs to stream per standing query in shell mode")
	coalesce := flag.Duration("coalesce", 0,
		"wire coalescing window (0 = one handler turn, -1ns = off)")
	codecName := flag.String("codec", "columnar",
		"outgoing wire codec: columnar or gob (inbound is sniffed, so either peer kind is accepted)")
	flag.Parse()

	roster, err := loadRoster(*peers, *peersFile)
	if err != nil {
		fatal(err)
	}
	codec, err := transport.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	var opts transport.Options
	opts.Codec = codec
	if *coalesce < 0 {
		opts.Node.CoalesceWindow = core.CoalesceOff
	} else {
		opts.Node.CoalesceWindow = *coalesce
	}
	node, err := transport.Listen(*listen, roster, opts)
	if err != nil {
		fatal(err)
	}
	defer node.Close()
	fmt.Printf("moara-agent: listening on %s (id %s), %d peers\n",
		node.Addr(), node.ID().Short(), len(roster))

	if err := applyAttrs(node, *attrs); err != nil {
		fatal(err)
	}

	if !*shell {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("moara> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case line == "quit" || line == "exit":
			return
		case line == "stats":
			s := node.Stats()
			fmt.Printf("  msgs in/out: %d/%d  bytes in/out: %d/%d\n",
				s.MsgsIn, s.MsgsOut, s.BytesIn, s.BytesOut)
			fmt.Printf("  decode errors: %d  dials: %d (errors %d, suppressed %d)\n",
				s.DecodeErrors, s.Dials, s.DialErrors, s.DialsSuppressed)
		case strings.HasPrefix(line, "set "):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("  usage: set <attr> <value>")
				break
			}
			v, err := value.Parse(parts[2])
			if err != nil {
				fmt.Printf("  bad value: %v\n", err)
				break
			}
			node.SetAttr(parts[1], v)
			fmt.Printf("  %s = %s\n", parts[1], v)
		default:
			if req, perr := moara.ParseRequest(line); perr == nil && req.Period > 0 {
				runStanding(node, line, req.Period, *samples)
				break
			}
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			res, err := node.Query(ctx, line)
			cancel()
			if err != nil {
				fmt.Printf("  error: %v\n", err)
				break
			}
			if res.Groups != nil {
				for _, line := range moara.FormatGroups(res) {
					fmt.Printf("  %s\n", line)
				}
				if res.Truncated {
					fmt.Println("  (truncated: key cap exceeded, remainder under <other>)")
				}
			}
			fmt.Printf("  %s  (%d contributors, %v)\n",
				res.Agg, res.Contributors, res.Stats.TotalTime.Round(time.Millisecond))
		}
		fmt.Print("moara> ")
	}
}

// runStanding streams a standing query's samples to the shell (on the
// real clock) until the requested number of epochs has been printed,
// riding MonitorAgent's subscription plumbing.
func runStanding(node *transport.Node, query string, period time.Duration, samples int) {
	stop := make(chan struct{})
	stopOnce := func() {
		select {
		case <-stop:
		default:
			close(stop)
		}
	}
	deadline := time.AfterFunc(time.Duration(4*(samples+8))*period, stopOnce)
	defer deadline.Stop()
	got := 0
	err := moara.MonitorAgent(node, query, period, stop, func(s moara.Sample) {
		for _, line := range moara.FormatSample(s) {
			fmt.Printf("  %s\n", line)
		}
		got++
		if got >= samples {
			stopOnce()
		}
	})
	if err != nil {
		fmt.Printf("  error: %v\n", err)
	}
	if got < samples {
		fmt.Println("  timed out waiting for samples")
	}
}

func loadRoster(csv, file string) ([]string, error) {
	var roster []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			roster = append(roster, a)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("read peers file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" && !strings.HasPrefix(line, "#") {
				roster = append(roster, line)
			}
		}
	}
	return roster, nil
}

func applyAttrs(node *transport.Node, spec string) error {
	for _, kv := range strings.Split(spec, ",") {
		if kv = strings.TrimSpace(kv); kv == "" {
			continue
		}
		name, raw, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad attribute %q (want name=value)", kv)
		}
		v, err := value.Parse(strings.TrimSpace(raw))
		if err != nil {
			return err
		}
		node.SetAttr(strings.TrimSpace(name), v)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "moara-agent: %v\n", err)
	os.Exit(1)
}
