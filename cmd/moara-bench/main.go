// Command moara-bench regenerates every table and figure of the paper's
// evaluation (§7). Each subcommand runs one experiment at paper-scale
// parameters (or a faster scaled profile) and prints the series the
// figure plots; -tsv additionally writes machine-readable output.
//
// Usage:
//
//	moara-bench [-profile paper|quick] [-tsv DIR] fig9 fig10 ...
//	moara-bench all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/moara/moara/internal/experiments"
)

type runner func(profile string) *experiments.Table

var figures = []struct {
	name string
	desc string
	run  runner
}{
	{"fig2a", "slice-size distribution (synthetic trace)", func(p string) *experiments.Table {
		return experiments.RunFig2a(experiments.Fig2aOptions{})
	}},
	{"fig2b", "utility-computing job trace (synthetic)", func(p string) *experiments.Table {
		return experiments.RunFig2b(experiments.Fig2bOptions{})
	}},
	{"fig9", "bandwidth vs query:churn ratio", func(p string) *experiments.Table {
		o := experiments.Fig9Options{}
		if p == "quick" {
			o = experiments.Fig9Options{N: 1000, Events: 100, Burst: 200}
		}
		return experiments.RunFig9(o)
	}},
	{"fig10", "(kUPDATE,kNO-UPDATE) sensitivity", func(p string) *experiments.Table {
		o := experiments.Fig10Options{}
		if p == "quick" {
			o = experiments.Fig10Options{N: 200, Events: 100, Burst: 40}
		}
		return experiments.RunFig10(o)
	}},
	{"fig11a", "SQP query cost vs system size", func(p string) *experiments.Table {
		o := experiments.Fig11aOptions{}
		if p == "quick" {
			o = experiments.Fig11aOptions{
				Sizes:   []int{16, 64, 256, 1024, 4096},
				Queries: 200,
			}
		}
		return experiments.RunFig11a(o)
	}},
	{"fig11b", "SQP query/update cost vs subset size", func(p string) *experiments.Table {
		o := experiments.Fig11bOptions{}
		if p == "quick" {
			o = experiments.Fig11bOptions{N: 2048, GroupSizes: []int{8, 32, 128, 512, 2048}, Queries: 200}
		}
		return experiments.RunFig11b(o)
	}},
	{"fig12a", "static groups: Moara vs SDIMS global tree", func(p string) *experiments.Table {
		o := experiments.Fig12aOptions{}
		if p == "quick" {
			o = experiments.Fig12aOptions{N: 500, Queries: 40}
		}
		return experiments.RunFig12a(o)
	}},
	{"fig12b", "dynamic group latency", func(p string) *experiments.Table {
		o := experiments.Fig12bOptions{}
		if p == "quick" {
			o = experiments.Fig12bOptions{N: 500, Queries: 40}
		}
		return experiments.RunFig12b(o)
	}},
	{"fig13a", "latency timeline under churn", func(p string) *experiments.Table {
		o := experiments.Fig13aOptions{}
		if p == "quick" {
			o = experiments.Fig13aOptions{Seconds: 60}
		}
		return experiments.RunFig13a(o)
	}},
	{"fig13b", "composite query latency", func(p string) *experiments.Table {
		o := experiments.Fig13bOptions{}
		if p == "quick" {
			o = experiments.Fig13bOptions{Queries: 60}
		}
		return experiments.RunFig13b(o)
	}},
	{"fig14", "PlanetLab latency CDF", func(p string) *experiments.Table {
		o := experiments.Fig14Options{}
		if p == "quick" {
			o = experiments.Fig14Options{Queries: 100}
		}
		return experiments.RunFig14(o)
	}},
	{"fig15", "Moara vs centralized aggregator", func(p string) *experiments.Table {
		o := experiments.Fig15Options{}
		if p == "quick" {
			o = experiments.Fig15Options{Queries: 40}
		}
		return experiments.RunFig15(o)
	}},
	{"fig16", "bottleneck link analysis", func(p string) *experiments.Table {
		o := experiments.Fig16Options{}
		if p == "quick" {
			o = experiments.Fig16Options{Queries: 60}
		}
		return experiments.RunFig16(o)
	}},
	{"groupby", "grouped queries: keyed in-tree merge vs one query per group", func(p string) *experiments.Table {
		o := experiments.GroupByOptions{}
		if p == "quick" {
			o = experiments.GroupByOptions{N: 300, Slices: 16, Queries: 10}
		}
		return experiments.RunGroupBy(o)
	}},
	{"standing", "standing queries: installed epoch re-aggregation vs one-shot polling", func(p string) *experiments.Table {
		o := experiments.StandingOptions{}
		if p == "quick" {
			o = experiments.StandingOptions{N: 300, Slices: 16, Epochs: 20}
		}
		return experiments.RunStanding(o)
	}},
	{"multiquery", "concurrent queries: per-destination wire coalescing vs Q", func(p string) *experiments.Table {
		o := experiments.MultiQueryOptions{}
		if p == "quick" {
			o = experiments.MultiQueryOptions{N: 300, Slices: 16, Epochs: 24}
		}
		return experiments.RunMultiQuery(o)
	}},
	{"churn", "membership churn: completeness, lag, and repair under kill/join/recover", func(p string) *experiments.Table {
		o := experiments.ChurnOptions{}
		if p == "quick" {
			o = experiments.ChurnOptions{N: 300, Epochs: 30}
		}
		return experiments.RunChurn(o)
	}},
	{"ablation", "composite cover selection ablation (§6.3)", func(p string) *experiments.Table {
		o := experiments.AblationOptions{}
		if p == "quick" {
			o = experiments.AblationOptions{N: 200, Large: 150, Queries: 40}
		}
		return experiments.RunAblationCoverSelection(o)
	}},
}

func main() {
	profile := flag.String("profile", "paper", "parameter profile: paper or quick")
	tsvDir := flag.String("tsv", "", "directory to write per-figure TSV files")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *profile != "paper" && *profile != "quick" {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	selected := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, f := range figures {
				selected[f.name] = true
			}
			continue
		}
		found := false
		for _, f := range figures {
			if f.name == a {
				selected[a] = true
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", a)
			usage()
			os.Exit(2)
		}
	}

	for _, f := range figures {
		if !selected[f.name] {
			continue
		}
		start := time.Now()
		tab := f.run(*profile)
		tab.Note += fmt.Sprintf(" [profile=%s, wall=%s]", *profile, time.Since(start).Round(time.Millisecond))
		tab.Fprint(os.Stdout)
		if *tsvDir != "" {
			if err := writeTSV(*tsvDir, f.name, tab); err != nil {
				fmt.Fprintf(os.Stderr, "write tsv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeTSV(dir, name string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteTSV(f)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: moara-bench [-profile paper|quick] [-tsv DIR] <figure>...|all\n\nfigures:\n")
	for _, f := range figures {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", f.name, f.desc)
	}
}
