// Command moara-bench regenerates every table and figure of the paper's
// evaluation (§7), plus the repo's own scaling studies. Each subcommand
// runs one experiment at paper-scale parameters (or a faster scaled
// profile) and prints the series the figure plots; -tsv additionally
// writes machine-readable per-figure tables and -json writes a
// BENCH_<profile>.json with wall-clock/allocation measurements suitable
// for regression gating (see -compare).
//
// Usage:
//
//	moara-bench [-profile paper|quick|scale] [-tsv DIR] [-json] \
//	            [-compare BASELINE.json] [-regress 0.20] \
//	            [-cpuprofile FILE] [-memprofile FILE] [-trace FILE] \
//	            fig9 fig10 ... | all
//
// Profiles: "paper" reproduces the paper's parameters, "quick" keeps
// each figure under ~1s for CI smoke, "scale" runs the big-N scaling
// sweep (N up to 10000) — the headline capability this perf work
// unlocked.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"github.com/moara/moara/internal/experiments"
)

type runner func(profile string) *experiments.Table

var figures = []struct {
	name string
	desc string
	run  runner
}{
	{"fig2a", "slice-size distribution (synthetic trace)", func(p string) *experiments.Table {
		return experiments.RunFig2a(experiments.Fig2aOptions{})
	}},
	{"fig2b", "utility-computing job trace (synthetic)", func(p string) *experiments.Table {
		return experiments.RunFig2b(experiments.Fig2bOptions{})
	}},
	{"fig9", "bandwidth vs query:churn ratio", func(p string) *experiments.Table {
		o := experiments.Fig9Options{}
		if p != "paper" {
			o = experiments.Fig9Options{N: 1000, Events: 100, Burst: 200}
		}
		return experiments.RunFig9(o)
	}},
	{"fig10", "(kUPDATE,kNO-UPDATE) sensitivity", func(p string) *experiments.Table {
		o := experiments.Fig10Options{}
		if p != "paper" {
			o = experiments.Fig10Options{N: 200, Events: 100, Burst: 40}
		}
		return experiments.RunFig10(o)
	}},
	{"fig11a", "SQP query cost vs system size", func(p string) *experiments.Table {
		o := experiments.Fig11aOptions{}
		if p != "paper" {
			o = experiments.Fig11aOptions{
				Sizes:   []int{16, 64, 256, 1024, 4096},
				Queries: 200,
			}
		}
		return experiments.RunFig11a(o)
	}},
	{"fig11b", "SQP query/update cost vs subset size", func(p string) *experiments.Table {
		o := experiments.Fig11bOptions{}
		if p != "paper" {
			o = experiments.Fig11bOptions{N: 2048, GroupSizes: []int{8, 32, 128, 512, 2048}, Queries: 200}
		}
		return experiments.RunFig11b(o)
	}},
	{"fig12a", "static groups: Moara vs SDIMS global tree", func(p string) *experiments.Table {
		o := experiments.Fig12aOptions{}
		if p != "paper" {
			o = experiments.Fig12aOptions{N: 500, Queries: 40}
		}
		return experiments.RunFig12a(o)
	}},
	{"fig12b", "dynamic group latency", func(p string) *experiments.Table {
		o := experiments.Fig12bOptions{}
		if p != "paper" {
			o = experiments.Fig12bOptions{N: 500, Queries: 40}
		}
		return experiments.RunFig12b(o)
	}},
	{"fig13a", "latency timeline under churn", func(p string) *experiments.Table {
		o := experiments.Fig13aOptions{}
		if p != "paper" {
			o = experiments.Fig13aOptions{Seconds: 60}
		}
		return experiments.RunFig13a(o)
	}},
	{"fig13b", "composite query latency", func(p string) *experiments.Table {
		o := experiments.Fig13bOptions{}
		if p != "paper" {
			o = experiments.Fig13bOptions{Queries: 60}
		}
		return experiments.RunFig13b(o)
	}},
	{"fig14", "PlanetLab latency CDF", func(p string) *experiments.Table {
		o := experiments.Fig14Options{}
		if p != "paper" {
			o = experiments.Fig14Options{Queries: 100}
		}
		return experiments.RunFig14(o)
	}},
	{"fig15", "Moara vs centralized aggregator", func(p string) *experiments.Table {
		o := experiments.Fig15Options{}
		if p != "paper" {
			o = experiments.Fig15Options{Queries: 40}
		}
		return experiments.RunFig15(o)
	}},
	{"fig16", "bottleneck link analysis", func(p string) *experiments.Table {
		o := experiments.Fig16Options{}
		if p != "paper" {
			o = experiments.Fig16Options{Queries: 60}
		}
		return experiments.RunFig16(o)
	}},
	{"groupby", "grouped queries: keyed in-tree merge vs one query per group", func(p string) *experiments.Table {
		o := experiments.GroupByOptions{}
		if p != "paper" {
			o = experiments.GroupByOptions{N: 300, Slices: 16, Queries: 10}
		}
		return experiments.RunGroupBy(o)
	}},
	{"standing", "standing queries: installed epoch re-aggregation vs one-shot polling", func(p string) *experiments.Table {
		o := experiments.StandingOptions{}
		if p != "paper" {
			o = experiments.StandingOptions{N: 300, Slices: 16, Epochs: 20}
		}
		return experiments.RunStanding(o)
	}},
	{"multiquery", "concurrent queries: per-destination wire coalescing vs Q", func(p string) *experiments.Table {
		o := experiments.MultiQueryOptions{}
		if p != "paper" {
			o = experiments.MultiQueryOptions{N: 300, Slices: 16, Epochs: 24}
		}
		return experiments.RunMultiQuery(o)
	}},
	{"multiservice", "query service: Q>>N subsumption sharing + result caching", func(p string) *experiments.Table {
		o := experiments.MultiServiceOptions{}
		if p == "quick" {
			// The acceptance contract: 10k subscriptions over 32 forms at
			// N=2000 bill the wire within 1.25x of the 32 forms alone.
			o = experiments.MultiServiceOptions{N: 2000, Q: 10000, Forms: 32, Slices: 16, Epochs: 6}
		}
		return experiments.RunMultiService(o)
	}},
	{"churn", "membership churn: completeness, lag, and repair under kill/join/recover", func(p string) *experiments.Table {
		o := experiments.ChurnOptions{}
		if p != "paper" {
			o = experiments.ChurnOptions{N: 300, Epochs: 30}
		}
		return experiments.RunChurn(o)
	}},
	{"ablation", "composite cover selection ablation (§6.3)", func(p string) *experiments.Table {
		o := experiments.AblationOptions{}
		if p != "paper" {
			o = experiments.AblationOptions{N: 200, Large: 150, Queries: 40}
		}
		return experiments.RunAblationCoverSelection(o)
	}},
	{"scale", "hot-path scaling sweep: the standard workload at N up to 10000", func(p string) *experiments.Table {
		o := experiments.ScaleOptions{}
		switch p {
		case "quick":
			// The CI scale-smoke contract: N=5000 completes under a
			// wall-clock timeout.
			o.Sizes = []int{1000, 5000}
		case "scale":
			o.Sizes = []int{300, 2000, 5000, 10000}
		default: // paper
			o.Sizes = []int{300, 1000, 2000, 5000}
		}
		return experiments.RunScale(o)
	}},
	{"sketches", "approximate aggregates: bounded sketch state vs exact enum", func(p string) *experiments.Table {
		o := experiments.SketchesOptions{}
		switch p {
		case "quick":
			// CI smoke: the bounded-state contract end to end, under a
			// second of cluster time.
			o = experiments.SketchesOptions{N: 2000, Cardinalities: []int{100, 1000, 10000}, Epochs: 6}
		case "scale":
			// The headline: bounded per-node state at N=10000.
			o = experiments.SketchesOptions{N: 10000, Epochs: 8}
		default: // paper-profile defaults
		}
		return experiments.RunSketches(o)
	}},
	{"wire", "wire codec: gob vs framed columnar + real-TCP standing harness", func(p string) *experiments.Table {
		o := experiments.WireOptions{}
		switch p {
		case "quick":
			// The acceptance contract: columnar >=5x faster than gob on
			// the 16-group epoch report, strictly fewer bytes, plus the
			// real-socket harness at N=256.
			o = experiments.WireOptions{TCPNodes: 256, Epochs: 5}
		case "scale":
			// Real TCP at N in the thousands: the honest-socket run the
			// codec work unlocks.
			o = experiments.WireOptions{TCPNodes: 1000, Epochs: 6, Period: 500 * time.Millisecond}
		default: // paper-profile defaults
		}
		return experiments.RunWire(o)
	}},
	{"scaleshards", "sharded-scheduler sweep: shard counts at N=10k + the N=100k row", func(p string) *experiments.Table {
		o := experiments.ScaleShardsOptions{}
		switch p {
		case "quick":
			// CI smoke: the sharded engine end to end, seconds not
			// minutes.
			o = experiments.ScaleShardsOptions{
				N: 2000, Shards: []int{1, 4}, BigN: 5000, BigShards: 4, Epochs: 3,
			}
		case "scale":
			// Defaults: shard sweep at N=10000 plus the N=100000 row.
		default: // paper
			o = experiments.ScaleShardsOptions{
				N: 5000, Shards: []int{1, 2, 4}, BigN: 20000, BigShards: 4,
			}
		}
		if *shardsFlag > 0 {
			o = o.Defaults()
			o.Shards = []int{1, *shardsFlag}
			o.BigShards = *shardsFlag
		}
		return experiments.RunScaleShards(o)
	}},
}

// shardsFlag overrides the shard counts the scaleshards sweep compares
// (the sweep becomes {1, K} and the headline row runs at K).
var shardsFlag = flag.Int("shards", 0, "override the scaleshards shard count (sweep {1,K}, headline row at K)")

// benchResult is one experiment's machine-readable record.
type benchResult struct {
	Name    string     `json:"name"`
	WallMs  float64    `json:"wall_ms"`
	Allocs  uint64     `json:"allocs"`
	AllocMB float64    `json:"alloc_mb"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Note    string     `json:"note"`
}

// benchFile is the BENCH_<profile>.json schema. SchemaVersion 2 added
// the run-environment stamp (GOMAXPROCS, shard override, git commit):
// a baseline measured at one core or one shard count is not comparable
// to a run at another, and the file now says which it was. Version-1
// files (no schema_version field) still load for -compare.
type benchFile struct {
	SchemaVersion int           `json:"schema_version"`
	Profile       string        `json:"profile"`
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	GOMAXPROCS    int           `json:"gomaxprocs"`
	Shards        int           `json:"shards,omitempty"`
	GitCommit     string        `json:"git_commit,omitempty"`
	Experiments   []benchResult `json:"experiments"`
}

// gitCommit best-effort resolves the working tree's HEAD for the
// metadata stamp; bench runs outside a checkout just omit it.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	profile := flag.String("profile", "paper", "parameter profile: paper, quick, or scale")
	tsvDir := flag.String("tsv", "", "directory to write per-figure TSV files")
	jsonOut := flag.Bool("json", false, "write BENCH_<profile>.json with wall-clock/alloc measurements")
	jsonPath := flag.String("json-out", "", "override the -json output path")
	compare := flag.String("compare", "", "baseline BENCH_*.json; exit non-zero on wall-clock regression")
	regress := flag.Float64("regress", 0.20, "relative wall-clock regression tolerance for -compare")
	regressAllocs := flag.Float64("regress-allocs", 0, "relative allocation-count regression tolerance for -compare (0 disables the gate)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile after the run")
	traceFile := flag.String("trace", "", "write a runtime execution trace of the run")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch *profile {
	case "paper", "quick", "scale":
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	selected := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, f := range figures {
				selected[f.name] = true
			}
			continue
		}
		found := false
		for _, f := range figures {
			if f.name == a {
				selected[a] = true
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", a)
			usage()
			os.Exit(2)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		defer trace.Stop()
	}

	out := benchFile{
		SchemaVersion: 2,
		Profile:       *profile,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Shards:        *shardsFlag,
		GitCommit:     gitCommit(),
	}
	for _, f := range figures {
		if !selected[f.name] {
			continue
		}
		// The scale profile only re-parameterizes the scaling sweeps
		// (and the wire figure's big-N TCP harness); any other figure
		// runs (and is labeled) at quick parameters rather than
		// stamping quick-grade data with a distinct profile name.
		effective := *profile
		if *profile == "scale" && f.name != "scale" && f.name != "scaleshards" && f.name != "wire" {
			effective = "quick"
		}
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		tab := f.run(effective)
		wall := time.Since(start)
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		tab.Note += fmt.Sprintf(" [profile=%s, wall=%s]", effective, wall.Round(time.Millisecond))
		tab.Fprint(os.Stdout)
		if *tsvDir != "" {
			if err := writeTSV(*tsvDir, f.name, tab); err != nil {
				fmt.Fprintf(os.Stderr, "write tsv: %v\n", err)
				os.Exit(1)
			}
		}
		out.Experiments = append(out.Experiments, benchResult{
			Name:    f.name,
			WallMs:  float64(wall.Microseconds()) / 1000,
			Allocs:  msAfter.Mallocs - msBefore.Mallocs,
			AllocMB: float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / (1 << 20),
			Columns: tab.Columns,
			Rows:    tab.Rows,
			Note:    tab.Note,
		})
	}

	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
		f.Close()
	}

	if *jsonOut || *jsonPath != "" {
		path := *jsonPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", *profile)
		}
		raw, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}

	if *compare != "" {
		if failed := compareBaseline(*compare, out, *regress, *regressAllocs); failed {
			os.Exit(1)
		}
	}
}

// compareBaseline gates wall-clock against a committed baseline: any
// experiment present in both runs that got more than the tolerance
// slower fails the run. Allocation counts are near-deterministic, so
// they carry their own (much tighter) opt-in tolerance: pass
// -regress-allocs to gate on them too; at 0 they are reported only,
// since cross-environment runs (different GOMAXPROCS or shard counts,
// see the schema stamp) legitimately allocate differently.
func compareBaseline(path string, current benchFile, tolerance, allocTolerance float64) (failed bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return true
	}
	var base benchFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return true
	}
	baseline := make(map[string]benchResult, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[e.Name] = e
	}
	seen := make(map[string]bool, len(current.Experiments))
	for _, e := range current.Experiments {
		seen[e.Name] = true
		b, ok := baseline[e.Name]
		if !ok || b.WallMs <= 0 {
			fmt.Fprintf(os.Stderr, "compare %-12s NO BASELINE — not gated (refresh %s)\n", e.Name, path)
			continue
		}
		ratio := e.WallMs / b.WallMs
		status := "ok"
		if ratio > 1+tolerance {
			status = "REGRESSION"
			failed = true
		}
		if allocTolerance > 0 && b.Allocs > 0 &&
			float64(e.Allocs) > float64(b.Allocs)*(1+allocTolerance) {
			status = "ALLOC REGRESSION"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "compare %-12s wall %8.1fms -> %8.1fms (%.2fx)  allocs %d -> %d  [%s]\n",
			e.Name, b.WallMs, e.WallMs, ratio, b.Allocs, e.Allocs, status)
	}
	for _, e := range base.Experiments {
		if !seen[e.Name] {
			fmt.Fprintf(os.Stderr, "compare %-12s IN BASELINE ONLY — not run this time\n", e.Name)
		}
	}
	return failed
}

func writeTSV(dir, name string, tab *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".tsv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteTSV(f)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: moara-bench [flags] <figure>...|all

flags:
  -profile paper|quick|scale   parameter profile (scale = big-N sweep to 10000)
  -tsv DIR                     write per-figure TSV files
  -json                        write BENCH_<profile>.json (wall/allocs/tables)
  -json-out PATH               override the -json path
  -compare BASELINE.json       fail on >-regress wall-clock regression
  -regress FRAC                regression tolerance for -compare (default 0.20)
  -regress-allocs FRAC         also gate allocation counts at FRAC (0 = report only)
  -shards K                    scaleshards only: sweep {1,K}, headline row at K
  -cpuprofile FILE             write pprof CPU profile (feed to go tool pprof)
  -memprofile FILE             write pprof allocation profile
  -trace FILE                  write runtime execution trace

figures:
`)
	for _, f := range figures {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", f.name, f.desc)
	}
}
