// Package moara is the public API of the Moara group-based querying
// system (Ko et al., MIDDLEWARE 2008): scalable one-shot aggregation
// queries over dynamically defined groups of nodes.
//
// A query is a triple (query-attribute, aggregation function,
// group-predicate), optionally keyed by a `group by` attribute, written
// in a small query language:
//
//	count(*) where service_x = true
//	avg(mem_util) where service_x = true and apache = true
//	avg(mem_util) group by slice where apache = true
//	top3(load) where (slice = cs101 or slice = cs202) and cpu_util < 90
//
// Alongside the paper's exact aggregates (sum, count, min, max, avg,
// std, top-k, enum), a mergeable-sketch family answers with bounded
// per-node state and a tested error bound: dcount (HyperLogLog distinct
// count, ±2.3%), quantile(x, q) / pNN(x) (KLL-style rank quantiles),
// topkeys(x, k) (Misra-Gries heavy hitters), and union / collect
// (capped distinct-value and per-node lists):
//
//	dcount(os)
//	p99(latency) group by slice
//	quantile(load, 0.5) where apache = true
//	topkeys(os, 4)
//	union(slice)
//
// A grouped query partitions the answer by each node's value of the
// group-by attribute — "avg(mem_util) per slice" — and still costs one
// tree dissemination: per-key sub-aggregates merge hop-by-hop inside
// the tree rather than as G separate queries. Per-key answers arrive in
// Result.Groups.
//
// An `every <duration>` clause makes the query a standing query:
//
//	avg(load) where group = db every 2s
//	avg(mem_util) group by slice every 500ms
//
// Installed once via Subscribe, a standing query re-aggregates in-tree
// every epoch — each subscribed node pushes one report per epoch to its
// tree parent, and the root streams one Sample per epoch back — so
// steady monitoring costs about half of re-running the one-shot query
// each round, with no per-round dissemination at all. Monitor and
// MonitorAgent are built on it.
//
// Two deployment forms are provided:
//
//   - SimCluster: an in-process simulated deployment on a virtual
//     clock — instant to boot, deterministic, scales to tens of
//     thousands of nodes. This is what the examples and the paper's
//     experiment harness (cmd/moara-bench) use.
//   - Agent: a real TCP daemon (one per host) forming a Moara overlay
//     from a static roster; see cmd/moara-agent.
package moara

import (
	"fmt"
	"sort"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/transport"
	"github.com/moara/moara/internal/value"
)

// Request is a parsed query (see ParseRequest).
type Request = core.Request

// Result is a completed query with planning statistics.
type Result = core.Result

// Value is a dynamically typed attribute value.
type Value = value.Value

// Int builds an integer attribute value.
func Int(v int64) Value { return value.Int(v) }

// Float builds a floating-point attribute value.
func Float(v float64) Value { return value.Float(v) }

// Str builds a string attribute value.
func Str(v string) Value { return value.Str(v) }

// Bool builds a boolean attribute value.
func Bool(v bool) Value { return value.Bool(v) }

// ParseRequest parses query-language text:
//
//	[select] <agg>(<attr>) [group by <attr>] [where <predicate>] [every <duration>]
//
// with agg ∈ {sum, count, min, max, avg, std, topN, enum} and
// predicates composed from (attr op value) terms with and/or/not and
// parentheses. The group-by and every clauses may precede or follow
// the where clause. An every clause makes the request a standing query
// (run it with Subscribe, not Query/Execute).
func ParseRequest(text string) (Request, error) {
	return core.ParseRequest(text)
}

// Option configures a SimCluster.
type Option func(*options)

type options struct {
	seed      int64
	cl        cluster.Options
	nodeCfg   core.Config
	bootstrap cluster.Bootstrap
}

// WithSeed fixes the cluster's random seed (default 1).
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithThreshold sets the separate-query-plane threshold (§5 of the
// paper; default 2, 1 disables the SQP).
func WithThreshold(t int) Option {
	return func(o *options) { o.nodeCfg.Threshold = t }
}

// WithNodeConfig replaces the whole per-node configuration.
func WithNodeConfig(cfg core.Config) Option {
	return func(o *options) { o.nodeCfg = cfg }
}

// WithCoalesceWindow sets the per-destination outbox flush window: all
// messages a node emits to the same neighbor within the window ship as
// one wire-level batch. The default (0) flushes every event-loop tick,
// coalescing concurrent queries' traffic with no added latency; a
// positive window also merges across bursts at up to that much extra
// latency per hop; CoalesceOff disables batching entirely.
func WithCoalesceWindow(d time.Duration) Option {
	return func(o *options) { o.nodeCfg.CoalesceWindow = d }
}

// CoalesceOff disables wire coalescing when passed to
// WithCoalesceWindow (or set as Config.CoalesceWindow).
const CoalesceOff = core.CoalesceOff

// WithLANModel simulates a datacenter LAN with per-message processing
// cost and shared CPUs, like the paper's Emulab testbed.
func WithLANModel() Option {
	return func(o *options) {
		o.cl.Latency = simnet.LAN(simnet.LANConfig{})
		o.cl.ProcDelay = 800 * time.Microsecond
		o.cl.ProcJitter = 400 * time.Microsecond
		o.cl.SerializeProc = true
		o.cl.InstancesPerMachine = 10
	}
}

// WithWANModel simulates a PlanetLab-style wide-area network with
// heavy-tailed latencies and intermittently slow straggler nodes.
// Child and query timeouts are raised to tolerate stragglers (the
// paper runs its PlanetLab experiments without query timeouts).
func WithWANModel() Option {
	return func(o *options) {
		o.cl.Latency = simnet.WAN(simnet.WANConfig{Seed: o.seed})
		o.cl.ProcDelay = 500 * time.Microsecond
		o.cl.ProcJitter = 500 * time.Microsecond
		o.cl.SerializeProc = true
		if o.nodeCfg.ChildTimeout == 0 {
			o.nodeCfg.ChildTimeout = 90 * time.Second
		}
		if o.nodeCfg.QueryTimeout == 0 {
			o.nodeCfg.QueryTimeout = 240 * time.Second
		}
	}
}

// WithProtocolBootstrap joins nodes through the real Pastry handshake
// instead of oracle-filled routing tables.
func WithProtocolBootstrap() Option {
	return func(o *options) { o.bootstrap = cluster.BootstrapProtocol }
}

// WithShards runs the simulation on the sharded conservative-lookahead
// scheduler: nodes are partitioned across k event heaps that drain
// lookahead windows in parallel, which is what lets a single SimCluster
// reach 100k+ nodes on a multi-core machine. Runs stay deterministic
// for a given seed at any shard or worker count. Sharded mode is
// incompatible with WithLANModel's CPU-contention physics
// (SerializeProc, shared machines) and with latency models that cannot
// bound their minimum delay; it pairs naturally with WithPairwiseModel.
// k <= 1 keeps the classic single-heap scheduler.
func WithShards(k int) Option {
	return func(o *options) { o.cl.Shards = k }
}

// WithPairwiseModel simulates a wide-area network with stable, hashed
// per-pair one-way delays (no per-message jitter draws): each ordered
// node pair gets base + hash in [0, spread). Deterministic and
// draw-free, it is the latency model the sharded scheduler's
// equivalence guarantees are proven under, and its positive base gives
// the scheduler its lookahead horizon.
func WithPairwiseModel(base, spread time.Duration) Option {
	return func(o *options) {
		o.cl.Latency = simnet.Pairwise(base, spread, o.seed)
		o.cl.ProcDelay = 300 * time.Microsecond
	}
}

// SimCluster is an in-process simulated Moara deployment.
type SimCluster struct {
	c *cluster.Cluster
}

// NewSimCluster boots n simulated nodes, ready to query.
func NewSimCluster(n int, opts ...Option) *SimCluster {
	o := options{seed: 1}
	for _, fn := range opts {
		fn(&o)
	}
	o.cl.N = n
	o.cl.Seed = o.seed
	o.cl.Node = o.nodeCfg
	o.cl.Bootstrap = o.bootstrap
	return &SimCluster{c: cluster.New(o.cl)}
}

// Size returns the number of nodes.
func (s *SimCluster) Size() int { return len(s.c.Nodes) }

// SetAttr writes an attribute on node i's agent (the monitoring hook
// of §3.1).
func (s *SimCluster) SetAttr(i int, name string, v Value) {
	s.c.Nodes[i].Store().Set(name, v)
}

// Attr reads node i's attribute.
func (s *SimCluster) Attr(i int, name string) Value {
	return s.c.Nodes[i].Store().Get(name)
}

// Query parses and runs a query from node i, driving the simulation
// until the answer arrives. Latency is reported in virtual time via
// Result.Stats.
//
// Deprecated-style convenience: new code should use the unified client
// API, s.Client(i).Query(ctx, text), which the shells and Monitor are
// written against. This wrapper remains supported.
func (s *SimCluster) Query(i int, text string) (Result, error) {
	return s.c.ExecuteText(i, text)
}

// Execute runs a parsed request from node i.
//
// Deprecated-style convenience: prefer s.Client(i).Execute(ctx, req).
func (s *SimCluster) Execute(i int, req Request) (Result, error) {
	return s.c.Execute(i, req)
}

// SubID identifies a standing query installed with Subscribe.
type SubID = core.QueryID

// Subscribe installs a standing query (an `every <duration>` query)
// from node i. The query is disseminated once down the chosen cover's
// trees; thereafter every reached node re-aggregates in-tree each
// epoch and fn receives one Sample per epoch — as virtual time is
// pumped with RunFor (or Monitor) — until Unsubscribe. Early samples
// are marked ColdStart while the contribution pipeline fills.
//
// fn runs on the event-loop goroutine (see Client for the full
// contract): it must not block or call back into the cluster.
// Queries without an `every` clause fail with ErrNotStanding.
//
// Deprecated-style convenience: prefer s.Client(node).Subscribe, which
// returns a Sub handle instead of a bare SubID.
func (s *SimCluster) Subscribe(node int, query string, fn func(Sample)) (SubID, error) {
	req, err := ParseRequest(query)
	if err != nil {
		return SubID{}, err
	}
	return s.c.Subscribe(node, req, fn)
}

// Unsubscribe cancels a standing query, tearing down its subscription
// state across the cluster (propagated down-tree, with an idle-timeout
// backstop for unreachable branches). Unknown (or already-cancelled)
// subscription IDs report ErrUnknownSub instead of silently no-oping.
func (s *SimCluster) Unsubscribe(node int, id SubID) error {
	return s.c.Unsubscribe(node, id)
}

// RunFor advances virtual time (status propagation, tree adaptation).
func (s *SimCluster) RunFor(d time.Duration) { s.c.RunFor(d) }

// AddNode joins one new node into the running cluster through the live
// join protocol and returns its index. Seed its attributes with SetAttr
// and RunFor a moment; standing queries pick the newcomer up within one
// epoch of its announcements reaching a subscribed parent. Membership
// churn repair relies on the liveness path — boot the cluster with
// WithHeartbeats so crashes are detected and purged.
func (s *SimCluster) AddNode() int { return s.c.AddNode() }

// Kill crashes node i (it goes silent; nothing else is touched). With
// heartbeats enabled the survivors detect the silence, gossip an
// obituary, repair the routing slots, and re-install standing queries
// around the corpse; every answer's Contributors/Expected reports the
// resulting coverage.
func (s *SimCluster) Kill(i int) { s.c.Kill(i) }

// Recover restarts a crashed node with its identity and attribute store
// intact: it rejoins the overlay via a live member and re-arms the
// background loops that died with the crash.
func (s *SimCluster) Recover(i int) { s.c.Recover(i) }

// Down reports whether node i is currently crashed.
func (s *SimCluster) Down(i int) bool { return s.c.Down(i) }

// LiveCount reports the number of currently live nodes.
func (s *SimCluster) LiveCount() int { return s.c.LiveCount() }

// WithHeartbeats enables leaf-set liveness probing (disabled by default,
// mirroring the paper's exclusion of DHT maintenance): neighbors probe
// every interval and declare a node dead after three misses, which
// triggers the obituary purge and churn repair. Required for Kill to
// heal the overlay.
func WithHeartbeats(every time.Duration) Option {
	return func(o *options) { o.cl.Overlay.HeartbeatEvery = every }
}

// Messages reports total Moara-layer logical messages since the last
// reset (coalesced batches count as the messages they carry).
func (s *SimCluster) Messages() int64 { return s.c.MoaraMessages() }

// WireMessages reports Moara-layer transmissions since the last reset:
// a coalesced batch counts once. The gap to Messages is the wire
// saving of per-destination coalescing.
func (s *SimCluster) WireMessages() int64 { return s.c.WireMoaraMessages() }

// ResetMessageCounter zeroes accounting.
func (s *SimCluster) ResetMessageCounter() { s.c.Net.ResetCounter() }

// NodeID returns node i's overlay identifier string.
func (s *SimCluster) NodeID(i int) string { return s.c.IDs[i].String() }

// Trees snapshots node i's per-group tree state (§4/§5 variables) for
// inspection.
func (s *SimCluster) Trees(i int) []core.TreeInfo { return s.c.Nodes[i].Trees() }

// Subs snapshots node i's standing-subscription table for inspection.
func (s *SimCluster) Subs(i int) []core.SubInfo { return s.c.Nodes[i].Subs() }

// IndexOfShort resolves an 8-hex-digit short node ID (as printed in
// enum/top-k results) back to a node index, or -1.
func (s *SimCluster) IndexOfShort(short string) int {
	for i, id := range s.c.IDs {
		if id.Short() == short {
			return i
		}
	}
	return -1
}

// Agent is a Moara node on a real TCP transport.
type Agent = transport.Node

// AgentOptions configure ListenAgent.
type AgentOptions = transport.Options

// ListenAgent starts a TCP agent on addr with the given cluster roster
// (every agent's listen address, including this one's).
func ListenAgent(addr string, roster []string, opts AgentOptions) (*Agent, error) {
	return transport.Listen(addr, roster, opts)
}

// FormatEntries renders list-valued results (enum/top-k) with short
// node identifiers.
func FormatEntries(res Result) []string {
	out := make([]string, 0, len(res.Agg.Entries))
	for _, e := range res.Agg.Entries {
		out = append(out, fmt.Sprintf("%s=%s", shortID(e.Node), e.Value))
	}
	return out
}

// FormatSample renders one monitoring sample as display lines: a
// header carrying the epoch and a cold-start marker, then per-key
// lines for grouped results, or a single aggregate line for scalar
// ones. Both shells use it to stream standing queries.
func FormatSample(s Sample) []string {
	cold := ""
	if s.ColdStart {
		cold = " (cold)"
	}
	if s.Result.Groups != nil {
		lines := []string{fmt.Sprintf("epoch %d%s:", s.Epoch, cold)}
		for _, l := range FormatGroups(s.Result) {
			lines = append(lines, "  "+l)
		}
		if s.Result.Truncated {
			lines = append(lines, "  (truncated: key cap exceeded, remainder under <other>)")
		}
		return lines
	}
	return []string{fmt.Sprintf("epoch %d%s: %s (%d contributors)",
		s.Epoch, cold, s.Result.Agg, s.Result.Contributors)}
}

// FormatGroups renders a grouped result's per-key answers as
// "key=value" lines, sorted by key for stable display.
func FormatGroups(res Result) []string {
	keys := make([]string, 0, len(res.Groups))
	for k := range res.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		g := res.Groups[k]
		if g.Counts != nil || g.Entries != nil {
			// List-valued sub-results (top-k, enum, union, collect,
			// topkeys) render their full lists, not just the scalar.
			out = append(out, fmt.Sprintf("%s=%s", k, g))
			continue
		}
		out = append(out, fmt.Sprintf("%s=%s", k, g.Value))
	}
	return out
}

func shortID(id ids.ID) string { return id.Short() }
