package moara

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
)

func TestSimClusterQuickstart(t *testing.T) {
	c := NewSimCluster(64, WithSeed(5))
	if c.Size() != 64 {
		t.Fatalf("size = %d", c.Size())
	}
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "cpu", Float(float64(i)))
		c.SetAttr(i, "apache", Bool(i%2 == 0))
	}
	res, err := c.Query(0, "count(*) where apache = true")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Agg.Value.AsInt(); v != 32 {
		t.Fatalf("count = %d", v)
	}
	res, err = c.Query(0, "max(cpu) where apache = true")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Agg.Value.AsFloat(); v != 62 {
		t.Fatalf("max = %v", v)
	}
	if got := c.Attr(3, "cpu"); !got.IsValid() {
		t.Fatal("attr read failed")
	}
}

func TestSimClusterOptions(t *testing.T) {
	c := NewSimCluster(32, WithSeed(9), WithThreshold(1), WithLANModel())
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "g", Bool(i < 4))
	}
	res, err := c.Query(1, "sum(*) where g = true")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Agg.Value.AsInt(); v != 4 {
		t.Fatalf("sum = %d", v)
	}
	if res.Stats.TotalTime <= 0 {
		t.Fatal("LAN model should produce nonzero latency")
	}
}

func TestSimClusterWANModel(t *testing.T) {
	c := NewSimCluster(48, WithSeed(3), WithWANModel())
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "v", Int(1))
	}
	res, err := c.Query(0, "sum(v)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Agg.Value.AsInt(); v != 48 {
		t.Fatalf("sum = %d", v)
	}
	if res.Stats.TotalTime < 10*time.Millisecond {
		t.Fatalf("WAN latency suspiciously low: %v", res.Stats.TotalTime)
	}
}

func TestProtocolBootstrapOption(t *testing.T) {
	c := NewSimCluster(24, WithSeed(7), WithProtocolBootstrap())
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "x", Int(2))
	}
	res, err := c.Query(2, "sum(x)")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Agg.Value.AsInt(); v != 48 {
		t.Fatalf("sum = %d", v)
	}
}

func TestParseRequestFacade(t *testing.T) {
	req, err := ParseRequest("top3(cpu) where dc = east")
	if err != nil {
		t.Fatal(err)
	}
	if req.Attr != "cpu" || req.Pred == nil {
		t.Fatalf("req = %+v", req)
	}
	if _, err := ParseRequest("nonsense"); err == nil {
		t.Fatal("bad query should fail to parse")
	}
}

func TestFormatEntries(t *testing.T) {
	c := NewSimCluster(16, WithSeed(11))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "v", Int(int64(i)))
	}
	res, err := c.Query(0, "top3(v)")
	if err != nil {
		t.Fatal(err)
	}
	entries := FormatEntries(res)
	if len(entries) != 3 {
		t.Fatalf("entries = %v", entries)
	}
	// The top entry's node resolves back to an index.
	short := entries[0][:8]
	if idx := c.IndexOfShort(short); idx < 0 {
		t.Fatalf("IndexOfShort(%q) failed", short)
	}
}

func TestMessageAccounting(t *testing.T) {
	c := NewSimCluster(32, WithSeed(13))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "a", Int(1))
	}
	c.ResetMessageCounter()
	if _, err := c.Query(0, "sum(a)"); err != nil {
		t.Fatal(err)
	}
	if c.Messages() == 0 {
		t.Fatal("query should produce messages")
	}
	c.ResetMessageCounter()
	if c.Messages() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTreesIntrospection(t *testing.T) {
	c := NewSimCluster(48, WithSeed(21))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "g", Bool(i%3 == 0))
	}
	if _, err := c.Query(0, "count(*) where g = true"); err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < c.Size(); i++ {
		for _, ti := range c.Trees(i) {
			if ti.Group == "g = true" {
				found = true
				if ti.QSetSize < 0 || ti.Np < 0 {
					t.Fatalf("nonsense tree info: %+v", ti)
				}
			}
		}
	}
	if !found {
		t.Fatal("no node holds tree state after a query")
	}
}

// TestChurnPublicAPI exercises the membership-churn surface end to end:
// heartbeat-enabled cluster, a standing query with completeness
// accounting, Kill with liveness-path repair, AddNode, and Recover.
func TestChurnPublicAPI(t *testing.T) {
	c := NewSimCluster(64, WithSeed(31), WithHeartbeats(100*time.Millisecond),
		WithNodeConfig(core.Config{
			// Epoch-scale lease renewals so even a tree-root death is
			// repaired within a few epochs (the renewal re-routes the
			// subscription to the takeover root).
			SubTTL:           2 * time.Second,
			SubRenewInterval: 500 * time.Millisecond,
		}))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "load", Int(int64(i%50)))
	}
	var latest Sample
	warm := false
	id, err := c.Subscribe(0, "count(*) every 200ms", func(s Sample) {
		if !s.ColdStart {
			warm = true
		}
		latest = s
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Unsubscribe(0, id)
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(200 * time.Millisecond)
	}
	if !warm {
		t.Fatal("subscription never warmed")
	}
	if latest.Contributors != 64 || latest.Completeness() < 0.95 {
		t.Fatalf("warm sample: contributors=%d completeness=%.2f", latest.Contributors, latest.Completeness())
	}

	// Kill three nodes; the obituary purge plus subscription repair must
	// settle the stream on exactly the survivors.
	for _, i := range []int{5, 9, 23} {
		c.Kill(i)
	}
	if c.LiveCount() != 61 || !c.Down(5) {
		t.Fatalf("live=%d down5=%v", c.LiveCount(), c.Down(5))
	}
	c.RunFor(3 * time.Second)
	if latest.Contributors != 61 {
		t.Fatalf("post-kill contributors = %d, want 61", latest.Contributors)
	}

	// A joining node enters the stream; a recovered one returns.
	j := c.AddNode()
	c.SetAttr(j, "load", Int(7))
	c.Recover(9)
	c.RunFor(4 * time.Second)
	if latest.Contributors != 63 {
		t.Fatalf("post-join/recover contributors = %d, want 63", latest.Contributors)
	}
	if v, _ := latest.Result.Agg.Value.AsInt(); v != 63 {
		t.Fatalf("count = %d, want 63", v)
	}
}
