package moara

import (
	"testing"
	"time"
)

func TestMonitorPeriodicQueries(t *testing.T) {
	c := NewSimCluster(96, WithSeed(19))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "g", Bool(i < 12))
	}
	samples, err := c.Monitor(0, "count(*) where g = true", time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("samples = %d", len(samples))
	}
	for i, s := range samples {
		if s.Err != nil {
			t.Fatalf("round %d: %v", i, s.Err)
		}
		if v, _ := s.Result.Agg.Value.AsInt(); v != 12 {
			t.Fatalf("round %d: count = %d", i, v)
		}
	}
	// Rounds are spaced by the interval in virtual time.
	if gap := samples[1].At - samples[0].At; gap < time.Second {
		t.Fatalf("round gap = %v", gap)
	}
	// Steady monitoring is cheap: the warmed rounds must cost far less
	// than the first (broadcast) round.
	c.ResetMessageCounter()
	if _, err := c.Monitor(0, "count(*) where g = true", time.Second, 4); err != nil {
		t.Fatal(err)
	}
	perRound := float64(c.Messages()) / 4
	if perRound > float64(2*c.Size())/2 {
		t.Fatalf("steady monitoring costs %.0f msgs/round, want far below broadcast (%d)",
			perRound, 2*c.Size())
	}
}

func TestMonitorValidation(t *testing.T) {
	c := NewSimCluster(8)
	if _, err := c.Monitor(0, "nonsense", time.Second, 1); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := c.Monitor(0, "count(*)", 0, 1); err == nil {
		t.Fatal("zero interval should fail")
	}
	if _, err := c.Monitor(0, "count(*)", time.Second, 0); err == nil {
		t.Fatal("zero rounds should fail")
	}
}

func TestMonitorAgentTCP(t *testing.T) {
	a, err := ListenAgent("127.0.0.1:0", nil, AgentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenAgent("127.0.0.1:0", nil, AgentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	roster := []string{a.Addr(), b.Addr()}
	a.ApplyRoster(roster)
	b.ApplyRoster(roster)
	a.SetAttr("v", Int(3))
	b.SetAttr("v", Int(4))

	stop := make(chan struct{})
	got := 0
	err = MonitorAgent(a, "sum(v)", 50*time.Millisecond, stop, func(s Sample) {
		if s.Err != nil {
			t.Errorf("sample error: %v", s.Err)
		}
		if v, _ := s.Result.Agg.Value.AsInt(); v != 7 {
			t.Errorf("sum = %d", v)
		}
		got++
		if got >= 3 {
			select {
			case <-stop:
			default:
				close(stop)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got < 3 {
		t.Fatalf("rounds = %d", got)
	}
}
