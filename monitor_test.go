package moara

import (
	"testing"
	"time"
)

func TestMonitorPeriodicQueries(t *testing.T) {
	c := NewSimCluster(96, WithSeed(19))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "g", Bool(i < 12))
	}
	samples, err := c.Monitor(0, "count(*) where g = true", time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("samples = %d", len(samples))
	}
	// The monitoring stream is a standing query: the first epochs are
	// marked ColdStart while the install disseminates and contributions
	// climb the tree; warm epochs must be exact.
	warm := 0
	for i, s := range samples {
		if s.Err != nil {
			t.Fatalf("round %d: %v", i, s.Err)
		}
		if s.ColdStart {
			if i > 0 && !samples[i-1].ColdStart {
				t.Fatalf("round %d cold after warm round %d", i, i-1)
			}
			continue
		}
		warm++
		if v, _ := s.Result.Agg.Value.AsInt(); v != 12 {
			t.Fatalf("round %d: count = %d", i, v)
		}
	}
	if warm < 3 {
		t.Fatalf("warm samples = %d, want >= 3 of 8", warm)
	}
	// Rounds are spaced by the epoch interval in virtual time.
	if gap := samples[2].At - samples[1].At; gap < time.Second-50*time.Millisecond {
		t.Fatalf("round gap = %v", gap)
	}
	// Steady monitoring is cheap: epoch re-aggregation must cost far
	// less than re-broadcasting a one-shot query per round.
	c.ResetMessageCounter()
	if _, err := c.Monitor(0, "count(*) where g = true", time.Second, 4); err != nil {
		t.Fatal(err)
	}
	perRound := float64(c.Messages()) / 4
	if perRound > float64(2*c.Size())/2 {
		t.Fatalf("steady monitoring costs %.0f msgs/round, want far below broadcast (%d)",
			perRound, 2*c.Size())
	}
}

func TestMonitorValidation(t *testing.T) {
	c := NewSimCluster(8)
	if _, err := c.Monitor(0, "nonsense", time.Second, 1); err == nil {
		t.Fatal("bad query should fail")
	}
	if _, err := c.Monitor(0, "count(*)", 0, 1); err == nil {
		t.Fatal("zero interval should fail")
	}
	if _, err := c.Monitor(0, "count(*)", time.Second, 0); err == nil {
		t.Fatal("zero rounds should fail")
	}
}

func TestMonitorAgentTCP(t *testing.T) {
	a, err := ListenAgent("127.0.0.1:0", nil, AgentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenAgent("127.0.0.1:0", nil, AgentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	roster := []string{a.Addr(), b.Addr()}
	a.ApplyRoster(roster)
	b.ApplyRoster(roster)
	a.SetAttr("v", Int(3))
	b.SetAttr("v", Int(4))

	stop := make(chan struct{})
	warm := 0
	rounds := 0
	err = MonitorAgent(a, "sum(v)", 50*time.Millisecond, stop, func(s Sample) {
		if s.Err != nil {
			t.Errorf("sample error: %v", s.Err)
		}
		rounds++
		if rounds > 100 {
			// Defensive: never spin forever if warm samples stay wrong.
			select {
			case <-stop:
			default:
				close(stop)
			}
			return
		}
		// Cold epochs may be partial while the pipeline fills.
		if s.ColdStart {
			return
		}
		if v, _ := s.Result.Agg.Value.AsInt(); v != 7 {
			t.Errorf("sum = %d", v)
		}
		warm++
		if warm >= 3 {
			select {
			case <-stop:
			default:
				close(stop)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm < 3 {
		t.Fatalf("warm rounds = %d (of %d)", warm, rounds)
	}
}
