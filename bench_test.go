package moara

// One benchmark per table/figure of the paper's evaluation. Each
// iteration regenerates the artifact at scaled-down parameters so the
// full suite completes in minutes; cmd/moara-bench runs the same
// drivers at paper-scale parameters.
//
//	go test -bench=. -benchmem
//
// The -benchtime=1x flag runs each figure exactly once.

import (
	"io"
	"testing"
	"time"

	"github.com/moara/moara/internal/experiments"
)

func runBench(b *testing.B, run func() *experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := run()
		if len(tab.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
		tab.Fprint(io.Discard)
	}
}

// BenchmarkFig2a regenerates the slice-size distribution (Fig. 2a).
func BenchmarkFig2a(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig2a(experiments.Fig2aOptions{})
	})
}

// BenchmarkFig2b regenerates the utility-computing job trace (Fig. 2b).
func BenchmarkFig2b(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig2b(experiments.Fig2bOptions{})
	})
}

// BenchmarkFig9 regenerates the bandwidth-vs-ratio comparison (Fig. 9):
// Global vs Always-Update vs adaptive Moara.
func BenchmarkFig9(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig9(experiments.Fig9Options{
			N: 500, Events: 60, Burst: 100, Steps: 3,
		})
	})
}

// BenchmarkFig10 regenerates the adaptation-window sensitivity study
// (Fig. 10).
func BenchmarkFig10(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig10(experiments.Fig10Options{
			N: 200, Events: 60, Burst: 40, Steps: 3,
			Pairs: [][2]int{{1, 3}, {3, 1}},
		})
	})
}

// BenchmarkFig11a regenerates the SQP scaling study (Fig. 11a).
func BenchmarkFig11a(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig11a(experiments.Fig11aOptions{
			Sizes:      []int{64, 256, 1024},
			GroupSizes: []int{8, 32},
			Thresholds: []int{1, 2},
			Queries:    100,
		})
	})
}

// BenchmarkFig11b regenerates the SQP cost-tradeoff study (Fig. 11b).
func BenchmarkFig11b(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig11b(experiments.Fig11bOptions{
			N: 1024, GroupSizes: []int{8, 64, 512}, Thresholds: []int{2, 4}, Queries: 100,
		})
	})
}

// BenchmarkFig12a regenerates the static-group latency/bandwidth
// comparison against the SDIMS global tree (Fig. 12a).
func BenchmarkFig12a(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig12a(experiments.Fig12aOptions{
			N: 300, GroupSizes: []int{32, 128, 300}, Queries: 25,
		})
	})
}

// BenchmarkFig12b regenerates the dynamic-group latency study
// (Fig. 12b).
func BenchmarkFig12b(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig12b(experiments.Fig12bOptions{
			N: 300, GroupSize: 60, Churns: []int{40, 120}, Queries: 25,
		})
	})
}

// BenchmarkFig13a regenerates the latency timeline under churn
// (Fig. 13a).
func BenchmarkFig13a(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig13a(experiments.Fig13aOptions{
			N: 300, GroupSize: 100, Churn: 80, Seconds: 40,
		})
	})
}

// BenchmarkFig13b regenerates the composite-query latency study
// (Fig. 13b).
func BenchmarkFig13b(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig13b(experiments.Fig13bOptions{
			N: 300, GroupSize: 40, MaxGroups: 5, Queries: 25,
		})
	})
}

// BenchmarkFig14 regenerates the wide-area latency CDF (Fig. 14).
func BenchmarkFig14(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig14(experiments.Fig14Options{
			N: 150, GroupSizes: []int{50, 100}, Queries: 40,
		})
	})
}

// BenchmarkFig15 regenerates the Moara-vs-centralized comparison
// (Fig. 15).
func BenchmarkFig15(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig15(experiments.Fig15Options{
			N: 150, GroupSizes: []int{40}, Queries: 25,
		})
	})
}

// BenchmarkFig16 regenerates the bottleneck-link analysis (Fig. 16).
func BenchmarkFig16(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunFig16(experiments.Fig16Options{
			N: 150, Queries: 40,
		})
	})
}

// BenchmarkGroupBy regenerates the grouped-vs-naive comparison: one
// keyed dissemination answering every group at once versus one scalar
// query per group.
func BenchmarkGroupBy(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunGroupBy(experiments.GroupByOptions{
			N: 300, Slices: 16, Queries: 10,
		})
	})
}

// BenchmarkStanding regenerates the poll-vs-standing comparison at the
// issue's target scale: per-epoch message cost of an installed standing
// query (scalar and 16-slice grouped) against a fresh one-shot
// dissemination per epoch at N=300.
func BenchmarkStanding(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunStanding(experiments.StandingOptions{
			N: 300, Slices: 16, Epochs: 20,
		})
	})
}

// BenchmarkStanding2000 is the scale-class standing workload (the
// issue's headline target): poll-vs-standing at N=2000 with 16 Zipf
// slices. Compare runs with benchstat (wall-clock and -benchmem
// allocs/op are the regression-gated series).
func BenchmarkStanding2000(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunStanding(experiments.StandingOptions{
			N: 2000, Slices: 16, Epochs: 20,
		})
	})
}

// BenchmarkChurn2000 is the scale-class churn workload: standing and
// one-shot completeness under 1%/epoch Poisson churn at N=2000 with the
// full liveness path (heartbeats, obituaries, repair probes) running.
func BenchmarkChurn2000(b *testing.B) {
	if testing.Short() {
		// ~3.5 minutes (the pre-optimization code could not finish it at
		// all): evidence-grade, not smoke-grade.
		b.Skip("skipping N=2000 churn benchmark in -short mode")
	}
	runBench(b, func() *experiments.Table {
		return experiments.RunChurn(experiments.ChurnOptions{
			N: 2000, PerEpoch: []float64{0.01}, Epochs: 8,
		})
	})
}

// BenchmarkMultiQuery regenerates the concurrent-workload comparison at
// the issue's target scale: wire vs logical messages per epoch for 1-8
// concurrent standing queries (plus one-shot bursts and the mixed
// workload.MultiQuery mix) under per-destination coalescing at N=300.
func BenchmarkMultiQuery(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunMultiQuery(experiments.MultiQueryOptions{
			N: 300, Slices: 16, Epochs: 24,
		})
	})
}

// BenchmarkChurn regenerates the churn-resilience study at reduced
// scale: completeness and delivery lag for standing and one-shot
// queries while nodes crash, join, and recover at Poisson rates, plus
// the targeted kill/repair measurement.
func BenchmarkChurn(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunChurn(experiments.ChurnOptions{
			N: 200, PerEpoch: []float64{0, 0.01}, Epochs: 20,
		})
	})
}

// BenchmarkScaleShards regenerates the sharded-scheduler sweep at
// smoke scale: shards=1 vs shards=4 on the standard workload, plus a
// larger headline row. Wall-clock tracks the scheduler itself; the
// virtual-time columns must be identical across shard counts.
func BenchmarkScaleShards(b *testing.B) {
	runBench(b, func() *experiments.Table {
		return experiments.RunScaleShards(experiments.ScaleShardsOptions{
			N: 2000, Shards: []int{1, 4}, BigN: 5000, BigShards: 4, Epochs: 3,
		})
	})
}

// BenchmarkShardedGroupedQuery is BenchmarkGroupedQueryTurnaround on
// the sharded scheduler through the public API: a warmed `group by`
// query at 512 nodes split across 4 shards under the pairwise WAN
// model. Compare against the classic path with benchstat.
func BenchmarkShardedGroupedQuery(b *testing.B) {
	c := NewSimCluster(512, WithShards(4), WithPairwiseModel(5*time.Millisecond, 3*time.Millisecond))
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "slice", Str([]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p"}[i%16]))
		c.SetAttr(i, "mem", Float(float64(i%100)))
	}
	req, err := ParseRequest("avg(mem) group by slice")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Execute(0, req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Execute(0, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) != 16 {
			b.Fatalf("groups = %d", len(res.Groups))
		}
	}
}

// BenchmarkGroupedQueryTurnaround measures end-to-end turnaround of a
// warmed `group by` query at 512 nodes / 16 keys — the grouped
// monitoring hot path.
func BenchmarkGroupedQueryTurnaround(b *testing.B) {
	c := NewSimCluster(512)
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "slice", Str([]string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n", "o", "p"}[i%16]))
		c.SetAttr(i, "mem", Float(float64(i%100)))
	}
	req, err := ParseRequest("avg(mem) group by slice")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Execute(0, req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Execute(0, req)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Groups) != 16 {
			b.Fatalf("groups = %d", len(res.Groups))
		}
	}
}

// BenchmarkQueryThroughputSmallGroup measures end-to-end query
// turnaround on a warmed 16-of-512 group tree — the steady-state
// monitoring workload of §2 (not a paper figure; an engineering
// baseline for regressions).
func BenchmarkQueryThroughputSmallGroup(b *testing.B) {
	c := NewSimCluster(512)
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "g", Bool(i < 16))
	}
	req, err := ParseRequest("count(*) where g = true")
	if err != nil {
		b.Fatal(err)
	}
	// Warm the tree.
	for i := 0; i < 3; i++ {
		if _, err := c.Execute(0, req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Execute(0, req)
		if err != nil {
			b.Fatal(err)
		}
		if v, _ := res.Agg.Value.AsInt(); v != 16 {
			b.Fatalf("count = %d", v)
		}
	}
}

// BenchmarkGlobalAggregation measures whole-system aggregation
// turnaround at 1024 nodes.
func BenchmarkGlobalAggregation(b *testing.B) {
	c := NewSimCluster(1024)
	for i := 0; i < c.Size(); i++ {
		c.SetAttr(i, "load", Float(float64(i%100)))
	}
	req, err := ParseRequest("avg(load)")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute(0, req); err != nil {
			b.Fatal(err)
		}
	}
}
