package moara

import (
	"context"
	"errors"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/service"
)

// Client is the unified query API every Moara deployment form
// implements: a per-node view of a simulated cluster
// (SimCluster.Client), a TCP agent (*Agent), and the query-service
// front-end (*Service) are interchangeable behind it. Shells, Monitor,
// and the examples are written against Client, so code moves between
// the simulator, a real deployment, and the service tier unchanged.
type Client interface {
	// Query parses and runs a one-shot query, blocking until the answer
	// arrives (simulated deployments drive virtual time internally).
	// Parse failures wrap ErrParse; requests with an `every` clause are
	// standing queries and fail with ErrStandingOnly.
	Query(ctx context.Context, text string) (Result, error)
	// Execute runs an already-parsed one-shot request.
	Execute(ctx context.Context, req Request) (Result, error)
	// Subscribe installs a standing query (the text needs an `every
	// <duration>` clause — ErrNotStanding otherwise); fn receives one
	// Sample per epoch until the returned Sub is unsubscribed. See each
	// implementation for fn's concurrency contract: on simulated
	// clusters fn runs on the event-loop goroutine and must not block
	// or call back into the cluster.
	Subscribe(ctx context.Context, text string, fn func(Sample)) (Sub, error)
	// Attrs is the client's local attribute store (the agent's
	// monitoring hook).
	Attrs() Attrs
}

// Sub is a live standing-query handle: its identifier plus teardown.
// Unsubscribing twice reports ErrUnknownSub.
type Sub = core.Sub

// Attrs is the attribute view a Client exposes.
type Attrs = core.AttrStore

// Typed sentinels for the public boundary: every error a caller can
// branch on wraps one of these (errors.Is), replacing message matching.
var (
	// ErrParse wraps query-language parse failures.
	ErrParse = core.ErrParse
	// ErrNoMembers marks a request from a node that cannot reach the
	// cluster (crashed origin, no live members).
	ErrNoMembers = core.ErrNoMembers
	// ErrNotStanding marks a Subscribe of a query with no `every` clause.
	ErrNotStanding = core.ErrNotStanding
	// ErrStandingOnly marks a Query/Execute of a standing query.
	ErrStandingOnly = core.ErrStandingOnly
	// ErrUnknownSub marks an Unsubscribe of an unknown subscription.
	ErrUnknownSub = core.ErrUnknownSub
	// ErrOverload marks a request shed by the query service's admission
	// control.
	ErrOverload = core.ErrOverload
)

// Client returns node i's view of the simulated cluster as a Client.
// Queries originate at node i; Attrs is node i's store. The context
// passed to its methods is observed at call boundaries only — the
// simulation runs in virtual time, so a wall-clock deadline cannot
// interrupt a pump in progress.
//
// Subscribe callbacks run ON THE EVENT-LOOP GOROUTINE (the one pumping
// RunFor): they must not block and must not call back into the cluster
// or the samples' source node — hand samples to a channel, or front the
// client with NewService and a positive Buffer for a safe asynchronous
// hand-off.
func (s *SimCluster) Client(i int) Client {
	return &simClient{c: s, node: i}
}

// simClient is one node's Client view of a SimCluster.
type simClient struct {
	c    *SimCluster
	node int
}

func (sc *simClient) Query(ctx context.Context, text string) (Result, error) {
	req, err := ParseRequest(text)
	if err != nil {
		return Result{}, err
	}
	return sc.Execute(ctx, req)
}

func (sc *simClient) Execute(ctx context.Context, req Request) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return sc.c.c.Execute(sc.node, req)
}

func (sc *simClient) Subscribe(ctx context.Context, text string, fn func(Sample)) (Sub, error) {
	req, err := ParseRequest(text)
	if err != nil {
		return nil, err
	}
	return sc.SubscribeRequest(ctx, req, fn)
}

// SubscribeRequest is the parsed-request install path (the service
// front-end uses it to install normalized requests directly).
func (sc *simClient) SubscribeRequest(ctx context.Context, req Request, fn func(Sample)) (Sub, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	id, err := sc.c.c.Subscribe(sc.node, req, fn)
	if err != nil {
		return nil, err
	}
	return &simSub{c: sc.c, node: sc.node, id: id}, nil
}

func (sc *simClient) Attrs() Attrs { return sc.c.c.Nodes[sc.node].Store() }

// Now exposes the cluster's virtual clock; the service front-end picks
// it up so cache ages and admission decisions are deterministic.
func (sc *simClient) Now() time.Duration { return sc.c.c.Net.Now() }

// simSub is a standing-query handle on a simulated cluster.
type simSub struct {
	c    *SimCluster
	node int
	id   SubID
}

func (ss *simSub) ID() SubID          { return ss.id }
func (ss *simSub) Unsubscribe() error { return ss.c.c.Unsubscribe(ss.node, ss.id) }

// Service is the query-service front-end (see internal/service): it
// normalizes requests, shares subsumed standing queries, caches
// one-shot results with explicit staleness stamps, and sheds overload
// per tenant. It implements Client, so it slots in anywhere a
// deployment does.
type Service = service.Service

// ServiceOptions configure NewService.
type ServiceOptions = service.Options

// NewService fronts any Client with the query-service layer. With the
// zero Options the service only shares subsumed standing queries; set
// CacheTTL to serve cached one-shots (stamped Result.Cached/Age), Rate
// and MaxInflight to shed overload with ErrOverload, and Buffer to
// decouple subscriber callbacks from the engine's delivery goroutine.
func NewService(inner Client, opts ServiceOptions) *Service {
	return service.New(inner, opts)
}

// WithTenant tags ctx with the tenant a request is billed to by the
// service's per-tenant admission control.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return service.WithTenant(ctx, tenant)
}

// Interface conformance (compile-time): every deployment form is a
// Client.
var (
	_ Client = (*simClient)(nil)
	_ Client = (*Agent)(nil)
	_ Client = (*Service)(nil)
)

// IsOverload reports whether err is an admission-control shed. It is
// shorthand for errors.Is(err, ErrOverload).
func IsOverload(err error) bool { return errors.Is(err, ErrOverload) }
