package moara

import (
	"fmt"
	"time"
)

// Sample is one observation from a Monitor.
type Sample struct {
	// At is the (virtual) time the query was issued.
	At time.Duration
	// Result is the query's answer.
	Result Result
	// Err is non-nil when that round failed.
	Err error
}

// Monitor implements the paper's continuous-monitoring pattern (§1): a
// user interested in a group continually invokes one-shot queries
// periodically. Because the group tree adapts to the query stream
// (§4), steady monitoring converges to O(group) cost per round.
// Grouped queries ("avg(cpu) group by slice") monitor every key in one
// stream; pivot the samples with GroupSeries.
//
// Monitor drives the simulated cluster's clock; it returns the samples
// collected over the monitoring window.
func (s *SimCluster) Monitor(node int, query string, every time.Duration, rounds int) ([]Sample, error) {
	req, err := ParseRequest(query)
	if err != nil {
		return nil, err
	}
	if every <= 0 || rounds <= 0 {
		return nil, fmt.Errorf("moara: monitor needs a positive interval and round count")
	}
	out := make([]Sample, 0, rounds)
	for r := 0; r < rounds; r++ {
		at := s.c.Net.Now()
		res, err := s.c.Execute(node, req)
		out = append(out, Sample{At: at, Result: res, Err: err})
		s.c.RunFor(every)
	}
	return out, nil
}

// GroupSeries pivots grouped monitoring samples into one time series
// per group key: series[key][r] is key's aggregate value in round r (an
// invalid Value for rounds where the key was absent or the query
// failed). Keys are collected across the whole window, so a group that
// appears mid-run gets a full-length, left-padded series.
func GroupSeries(samples []Sample) map[string][]Value {
	series := make(map[string][]Value)
	for r, s := range samples {
		if s.Err != nil {
			continue
		}
		for k, agg := range s.Result.Groups {
			if _, ok := series[k]; !ok {
				series[k] = make([]Value, len(samples))
			}
			series[k][r] = agg.Value
		}
	}
	return series
}

// MonitorAgent runs the same pattern against a TCP agent on the real
// clock, invoking fn after every round until stop is closed.
func MonitorAgent(a *Agent, query string, every time.Duration, stop <-chan struct{}, fn func(Sample)) error {
	req, err := ParseRequest(query)
	if err != nil {
		return err
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	start := time.Now()
	for {
		res, err := a.Execute(req, every)
		fn(Sample{At: time.Since(start), Result: res, Err: err})
		select {
		case <-stop:
			return nil
		case <-ticker.C:
		}
	}
}
