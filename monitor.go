package moara

import (
	"context"
	"fmt"
	"time"

	"github.com/moara/moara/internal/core"
)

// Sample is one epoch of a monitored (standing) query. It is the
// engine's sample type re-exported: see the field docs in
// internal/core. Highlights:
//
//   - Epoch numbers deliveries (1-based, consecutive); RootEpoch
//     exposes stream faults (gaps, repeats).
//   - ColdStart marks samples taken while the contribution pipeline
//     was still filling — series plots and benchmarks should compare
//     warm epochs only.
//   - Contributors/Expected (and Completeness) report coverage under
//     churn.
//   - Err is non-nil when the round failed.
type Sample = core.Sample

// Monitor implements the paper's continuous-monitoring pattern (§1) on
// the standing-query subsystem: instead of re-executing a one-shot
// query per round (a full dissemination per sample), the query is
// installed once down the group trees and every round is an in-tree
// epoch re-aggregation — one push message per tree edge. Grouped
// queries ("avg(cpu) group by slice") monitor every key in one stream;
// pivot the samples with GroupSeries.
//
// Monitor drives the simulated cluster's clock; it returns the rounds
// samples collected over the monitoring window, the earliest of which
// are marked ColdStart while the contribution pipeline fills. It is
// MonitorClient over s.Client(node) with the cluster's virtual-time
// pump.
func (s *SimCluster) Monitor(node int, query string, every time.Duration, rounds int) ([]Sample, error) {
	return MonitorClient(context.Background(), s.Client(node), query, every, rounds, s.RunFor)
}

// MonitorClient collects rounds standing-query samples from any Client.
// The query's own `every` clause takes precedence over the every
// parameter. pump advances time between deliveries: a simulated
// deployment passes its RunFor; a real deployment passes nil (or
// time.Sleep) to wait on the wall clock.
func MonitorClient(ctx context.Context, cl Client, query string, every time.Duration, rounds int, pump func(time.Duration)) ([]Sample, error) {
	query, every, err := monitorQuery(query, every)
	if err != nil {
		return nil, err
	}
	if rounds <= 0 {
		return nil, fmt.Errorf("%w: monitor needs a positive round count", ErrParse)
	}
	if pump == nil {
		pump = time.Sleep
	}
	out := make([]Sample, 0, rounds)
	sub, err := cl.Subscribe(ctx, query, func(s Sample) {
		if len(out) < rounds {
			out = append(out, s)
		}
	})
	if err != nil {
		return nil, err
	}
	defer sub.Unsubscribe()
	// One sample arrives per period; the generous cap keeps a stalled
	// subscription from hanging the caller.
	for i := 0; len(out) < rounds && i < 4*rounds+64; i++ {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		pump(every)
	}
	if len(out) < rounds {
		return out, fmt.Errorf("moara: monitor collected %d/%d samples", len(out), rounds)
	}
	return out, nil
}

// monitorQuery validates the query text and folds the every parameter
// into it when the text has no `every` clause of its own.
func monitorQuery(query string, every time.Duration) (string, time.Duration, error) {
	req, err := ParseRequest(query)
	if err != nil {
		return "", 0, err
	}
	if req.Period > 0 {
		return query, req.Period, nil
	}
	if every <= 0 {
		return "", 0, fmt.Errorf("%w: monitor needs a positive interval", ErrNotStanding)
	}
	return fmt.Sprintf("%s every %s", query, every), every, nil
}

// GroupSeries pivots grouped monitoring samples into one time series
// per group key: series[key][r] is key's aggregate value in round r (an
// invalid Value for rounds where the key was absent or the query
// failed). Keys are collected across the whole window, so a group that
// appears mid-run gets a full-length, left-padded series.
func GroupSeries(samples []Sample) map[string][]Value {
	series := make(map[string][]Value)
	for r, s := range samples {
		if s.Err != nil {
			continue
		}
		for k, agg := range s.Result.Groups {
			if _, ok := series[k]; !ok {
				series[k] = make([]Value, len(samples))
			}
			series[k][r] = agg.Value
		}
	}
	return series
}

// MonitorAgent runs the same standing-query pattern against any
// real-clock Client (typically a TCP *Agent), invoking fn after every
// epoch until stop is closed. The query's own `every` clause takes
// precedence over the every parameter. Samples that arrive while fn is
// running are dropped rather than buffered without bound.
func MonitorAgent(a Client, query string, every time.Duration, stop <-chan struct{}, fn func(Sample)) error {
	query, _, err := monitorQuery(query, every)
	if err != nil {
		return err
	}
	ch := make(chan Sample, 16)
	sub, err := a.Subscribe(context.Background(), query, func(s Sample) {
		select {
		case ch <- s:
		default:
		}
	})
	if err != nil {
		return err
	}
	defer sub.Unsubscribe()
	for {
		select {
		case <-stop:
			return nil
		case s := <-ch:
			fn(s)
		}
	}
}
