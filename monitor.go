package moara

import (
	"fmt"
	"time"

	"github.com/moara/moara/internal/core"
)

// Sample is one epoch of a monitored (standing) query.
type Sample struct {
	// At is the (virtual) time the sample was delivered.
	At time.Duration
	// Epoch numbers the sample within its subscription (1-based).
	Epoch uint64
	// ColdStart marks samples taken while the subscription's pipeline
	// was still filling (install dissemination plus one epoch per tree
	// level, and again after a cover flip re-install). Round 0 of any
	// monitoring run includes tree construction, so series plots and
	// benchmarks should compare warm epochs only: filter on !ColdStart
	// instead of silently dropping the asymmetry.
	ColdStart bool
	// Contributors counts the group members folded into this epoch's
	// aggregate; with Expected (the system's own population estimate)
	// it reports the sample's coverage under churn — see the README's
	// completeness semantics for what it does and does not promise.
	Contributors int64
	// Expected is the cover roots' population estimate for the epoch.
	Expected float64
	// Result is the epoch's aggregate.
	Result Result
	// Err is non-nil when the round failed (subscription setup errors;
	// per-epoch delivery has no failure callback).
	Err error
}

// Completeness is Contributors/Expected clamped to [0,1] (1 when
// Expected is unknown): the sample's self-reported coverage.
func (s Sample) Completeness() float64 { return s.Result.Completeness() }

func fromCoreSample(cs core.Sample) Sample {
	return Sample{
		At: cs.At, Epoch: cs.Epoch, ColdStart: cs.ColdStart,
		Contributors: cs.Contributors, Expected: cs.Expected,
		Result: cs.Result,
	}
}

// Monitor implements the paper's continuous-monitoring pattern (§1) on
// the standing-query subsystem: instead of re-executing a one-shot
// query per round (a full dissemination per sample), the query is
// installed once down the group trees and every round is an in-tree
// epoch re-aggregation — one push message per tree edge. Grouped
// queries ("avg(cpu) group by slice") monitor every key in one stream;
// pivot the samples with GroupSeries.
//
// Monitor drives the simulated cluster's clock; it returns the rounds
// samples collected over the monitoring window, the earliest of which
// are marked ColdStart while the contribution pipeline fills.
func (s *SimCluster) Monitor(node int, query string, every time.Duration, rounds int) ([]Sample, error) {
	req, err := ParseRequest(query)
	if err != nil {
		return nil, err
	}
	// The query's own `every` clause takes precedence over the every
	// parameter, matching MonitorAgent.
	if req.Period <= 0 {
		req.Period = every
	}
	if req.Period <= 0 || rounds <= 0 {
		return nil, fmt.Errorf("moara: monitor needs a positive interval and round count")
	}
	every = req.Period
	out := make([]Sample, 0, rounds)
	id, err := s.c.Subscribe(node, req, func(cs core.Sample) {
		if len(out) < rounds {
			out = append(out, fromCoreSample(cs))
		}
	})
	if err != nil {
		return nil, err
	}
	defer s.c.Unsubscribe(node, id)
	// One sample arrives per period; the generous cap keeps a stalled
	// subscription from hanging the caller.
	for i := 0; len(out) < rounds && i < 4*rounds+64; i++ {
		s.c.RunFor(every)
	}
	if len(out) < rounds {
		return out, fmt.Errorf("moara: monitor collected %d/%d samples", len(out), rounds)
	}
	return out, nil
}

// GroupSeries pivots grouped monitoring samples into one time series
// per group key: series[key][r] is key's aggregate value in round r (an
// invalid Value for rounds where the key was absent or the query
// failed). Keys are collected across the whole window, so a group that
// appears mid-run gets a full-length, left-padded series.
func GroupSeries(samples []Sample) map[string][]Value {
	series := make(map[string][]Value)
	for r, s := range samples {
		if s.Err != nil {
			continue
		}
		for k, agg := range s.Result.Groups {
			if _, ok := series[k]; !ok {
				series[k] = make([]Value, len(samples))
			}
			series[k][r] = agg.Value
		}
	}
	return series
}

// MonitorAgent runs the same standing-query pattern against a TCP
// agent on the real clock, invoking fn after every epoch until stop is
// closed. The query's own `every` clause takes precedence over the
// every parameter. Samples that arrive while fn is running are dropped
// rather than buffered without bound.
func MonitorAgent(a *Agent, query string, every time.Duration, stop <-chan struct{}, fn func(Sample)) error {
	req, err := ParseRequest(query)
	if err != nil {
		return err
	}
	if req.Period <= 0 {
		req.Period = every
	}
	if req.Period <= 0 {
		return fmt.Errorf("moara: monitor needs a positive interval")
	}
	ch := make(chan Sample, 16)
	id, err := a.Subscribe(req, func(cs core.Sample) {
		select {
		case ch <- fromCoreSample(cs):
		default:
		}
	})
	if err != nil {
		return err
	}
	defer a.Unsubscribe(id)
	for {
		select {
		case <-stop:
			return nil
		case s := <-ch:
			fn(s)
		}
	}
}
