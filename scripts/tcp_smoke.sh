#!/usr/bin/env bash
# Real-TCP smoke: boot N moara-agent processes on loopback, run one
# grouped standing query from a shell agent for EPOCHS epochs, and
# assert the final epoch reaches completeness 1.0 (every agent counted)
# with zero decode errors on the origin. This exercises the actual
# multi-process deployment path — sockets, codec negotiation, framing —
# that in-process transport tests cannot.
set -euo pipefail
cd "$(dirname "$0")/.."

N=${N:-64}
EPOCHS=${EPOCHS:-10}
PERIOD=${PERIOD:-300ms}
BASE_PORT=${BASE_PORT:-7100}
CODEC=${CODEC:-columnar}

work=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$work"' EXIT
go build -o "$work/moara-agent" ./cmd/moara-agent

roster="$work/roster.txt"
for ((i = 0; i < N; i++)); do
  echo "127.0.0.1:$((BASE_PORT + i))" >>"$roster"
done

# Agents 1..N-1 run headless; agent 0 drives the query from its shell.
for ((i = 1; i < N; i++)); do
  "$work/moara-agent" -listen "127.0.0.1:$((BASE_PORT + i))" -peers-file "$roster" \
    -codec "$CODEC" -attrs "slice=s$((i % 16)),load=$i" >/dev/null 2>&1 &
done
sleep 1

out="$work/out.txt"
printf 'count(load) group by slice every %s\nstats\nquit\n' "$PERIOD" |
  "$work/moara-agent" -listen "127.0.0.1:$BASE_PORT" -peers-file "$roster" \
    -codec "$CODEC" -attrs "slice=s0,load=0" -shell -samples "$EPOCHS" | tee "$out"

# Sum the per-slice counts of the last non-cold epoch: completeness 1.0
# means the grouped stream counted every one of the N agents.
total=$(awk '
  /epoch [0-9]+/ { if (started && !cold) last = sum; started = 1; sum = 0; cold = ($0 ~ /\(cold\)/) }
  /=[0-9]+$/     { split($0, a, "="); sum += a[2] }
  END            { if (started && !cold) last = sum; print last + 0 }
' "$out")

if [ "$total" -ne "$N" ]; then
  echo "FAIL: final standing epoch counted $total of $N agents" >&2
  exit 1
fi
if ! grep -q 'decode errors: 0 ' "$out"; then
  echo "FAIL: origin agent reported decode errors" >&2
  exit 1
fi
echo "PASS: $N agents ($CODEC), grouped standing stream complete ($total/$N), zero decode errors"
