module github.com/moara/moara

go 1.23
