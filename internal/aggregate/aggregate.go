// Package aggregate implements the partially aggregatable functions of
// the paper's query model (§3.1): SUM, COUNT, MIN, MAX, AVG, TOP-K and
// ENUMERATE. Partial aggregation means that merging the states of two
// disjoint node sets yields the state of their union, which is what lets
// Moara combine answers up an aggregation tree in any grouping order.
// That merge law is enforced by property tests.
package aggregate

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

// Kind enumerates aggregation functions.
type Kind uint8

// The supported aggregation functions.
const (
	KindInvalid Kind = iota
	KindSum
	KindCount
	KindMin
	KindMax
	KindAvg
	KindTopK
	KindEnum
	// KindStd computes the population standard deviation — an
	// extension beyond the paper's list, still partially aggregatable
	// via (count, sum, sum-of-squares).
	KindStd
	// The mergeable-sketch family (see sketch.go): bounded-state
	// approximations of aggregates whose exact forms grow with
	// population or cardinality. Each is a State like any other and
	// rides the keyed GroupedState plumbing unchanged.
	//
	// KindDCount estimates distinct values via HyperLogLog.
	KindDCount
	// KindQuantile estimates a rank quantile (Spec.Q) via a KLL-style
	// compactor hierarchy; the query language spells it quantile(x, q)
	// or pNN(x).
	KindQuantile
	// KindTopKeys tracks the K most frequent values via Misra-Gries
	// heavy-hitter counters.
	KindTopKeys
	// KindUnion collects the set of distinct values, capped with
	// deterministic spill (the SetCap smallest values are kept exact).
	KindUnion
	// KindCollect lists every contribution like enum, capped with
	// deterministic spill (the SetCap smallest node IDs are kept).
	KindCollect
)

// ctor describes one registered aggregation function: its canonical
// query-language name, accepted aliases, and the constructor producing
// its empty State. Spec.New, ParseSpec, and Kind.String are all views of
// this one registry, so adding a function is a single-entry change.
type ctor struct {
	name    string
	aliases []string
	// sketch marks approximation kinds whose merges are
	// bound-preserving rather than value-identical (see Approximate);
	// the merge-law property harness keys its comparison mode on it.
	sketch   bool
	newState func(Spec) State
}

var registry = map[Kind]ctor{
	KindSum:   {name: "sum", newState: func(Spec) State { return &SumState{} }},
	KindCount: {name: "count", newState: func(Spec) State { return &CountState{} }},
	KindMin:   {name: "min", newState: func(Spec) State { return &ExtremeState{Max: false} }},
	KindMax:   {name: "max", newState: func(Spec) State { return &ExtremeState{Max: true} }},
	KindAvg:   {name: "avg", aliases: []string{"average", "mean"}, newState: func(Spec) State { return &AvgState{} }},
	KindTopK: {name: "top", newState: func(s Spec) State {
		k := s.K
		if k <= 0 {
			k = 1
		}
		return &TopKState{K: k}
	}},
	KindEnum: {name: "enum", aliases: []string{"enumerate", "list"}, newState: func(Spec) State { return &EnumState{} }},
	KindStd:  {name: "std", aliases: []string{"stddev"}, newState: func(Spec) State { return &StdState{} }},
	KindDCount: {name: "dcount", aliases: []string{"countdistinct"}, sketch: true,
		newState: func(Spec) State { return &DCountState{} }},
	KindQuantile: {name: "quantile", aliases: []string{"percentile"}, sketch: true,
		newState: func(s Spec) State { return &QuantileState{Q: s.Q} }},
	KindTopKeys: {name: "topkeys", sketch: true, newState: func(s Spec) State {
		k := s.K
		if k <= 0 {
			k = DefaultTopKeys
		}
		return &TopKeysState{K: k}
	}},
	KindUnion:   {name: "union", newState: func(Spec) State { return &UnionState{Cap: SetCap} }},
	KindCollect: {name: "collect", newState: func(Spec) State { return &CollectState{Cap: SetCap} }},
}

// kindByName indexes the registry by canonical name and alias.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind)
	for k, c := range registry {
		m[c.name] = k
		for _, a := range c.aliases {
			m[a] = k
		}
	}
	return m
}()

// String returns the function's query-language name.
func (k Kind) String() string {
	if c, ok := registry[k]; ok {
		return c.name
	}
	return "invalid"
}

// Spec identifies an aggregation function instance. K is the list bound
// for TOP-K and the counter capacity for TOPKEYS (ignored otherwise);
// Q is the target rank for QUANTILE (0 < Q < 1, ignored otherwise),
// canonicalized to micro-quantile precision so `quantile(x, 0.99)` and
// `p99(x)` build identical (comparable, cache-keyable) Specs.
type Spec struct {
	Kind Kind
	K    int
	Q    float64
}

// String renders the spec as it appears in the query language, in
// canonical form: quantiles always render as their pNN sugar, so every
// way of spelling the same quantile shares one canonical key.
func (s Spec) String() string {
	switch s.Kind {
	case KindTopK:
		return fmt.Sprintf("top%d", s.K)
	case KindTopKeys:
		return fmt.Sprintf("topkeys%d", s.K)
	case KindQuantile:
		return "p" + strconv.FormatFloat(math.Round(s.Q*1e8)/1e6, 'f', -1, 64)
	}
	return s.Kind.String()
}

// Validate rejects specs the parser can never produce but programmatic
// construction can: an unregistered kind, a quantile rank outside
// (0, 1), or a non-positive K where one is required.
func (s Spec) Validate() error {
	if _, ok := registry[s.Kind]; !ok {
		return fmt.Errorf("aggregate: invalid spec kind %d", s.Kind)
	}
	switch s.Kind {
	case KindQuantile:
		if !(s.Q > 0 && s.Q < 1) { // negated so NaN is rejected too
			return fmt.Errorf("aggregate: quantile rank %v outside (0, 1)", s.Q)
		}
	case KindTopK, KindTopKeys:
		if s.K <= 0 {
			return fmt.Errorf("aggregate: %s needs a positive k", registry[s.Kind].name)
		}
	}
	return nil
}

// canonQ canonicalizes a quantile rank to micro-quantile precision, so
// the float arithmetic of `p99.9` (99.9/100) and the literal of
// `quantile(x, 0.999)` land on the same Spec.Q bit pattern.
func canonQ(q float64) float64 { return math.Round(q*1e6) / 1e6 }

// ParseSpec parses an aggregation function name: sum, count, min, max,
// avg, std, enum, dcount, union, collect, topN (e.g. top3), topkeysN,
// or pNN (e.g. p99, p99.9).
func ParseSpec(name string) (Spec, error) {
	return ParseSpecArg(name, "")
}

// ParseSpecArg parses an aggregation function name plus the optional
// second argument of the two-argument query forms `quantile(attr, q)`
// and `topkeys(attr, k)`. Functions that take no argument reject a
// non-empty arg.
func ParseSpecArg(name, arg string) (Spec, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		return Spec{}, fmt.Errorf("aggregate: empty function name")
	}
	if k, ok := kindByName[n]; ok {
		s := Spec{Kind: k}
		switch k {
		case KindTopK:
			s.K = 1
		case KindTopKeys:
			s.K = DefaultTopKeys
			if arg != "" {
				kk, err := strconv.Atoi(arg)
				if err != nil || kk <= 0 {
					return Spec{}, fmt.Errorf("aggregate: bad topkeys count %q", arg)
				}
				s.K = kk
			}
			return s, nil
		case KindQuantile:
			if arg == "" {
				return Spec{}, fmt.Errorf("aggregate: %s needs a rank: %s(attr, q) with 0 < q < 1", n, n)
			}
			q, err := strconv.ParseFloat(arg, 64)
			if err != nil || !(q > 0 && q < 1) { // negated so NaN is rejected too
				return Spec{}, fmt.Errorf("aggregate: bad quantile rank %q (need 0 < q < 1)", arg)
			}
			s.Q = canonQ(q)
			return s, nil
		}
		if arg != "" {
			return Spec{}, fmt.Errorf("aggregate: %s takes no argument", n)
		}
		return s, nil
	}
	if arg != "" {
		return Spec{}, fmt.Errorf("aggregate: %s takes no argument", n)
	}
	if rest, ok := strings.CutPrefix(n, "topkeys"); ok && rest != "" {
		k, err := strconv.Atoi(rest)
		if err != nil || k <= 0 {
			return Spec{}, fmt.Errorf("aggregate: bad topkeys spec %q", name)
		}
		return Spec{Kind: KindTopKeys, K: k}, nil
	}
	if rest, ok := strings.CutPrefix(n, "top"); ok {
		if rest == "" {
			return Spec{Kind: KindTopK, K: 1}, nil
		}
		k, err := strconv.Atoi(rest)
		if err != nil || k <= 0 {
			return Spec{}, fmt.Errorf("aggregate: bad top-k spec %q", name)
		}
		return Spec{Kind: KindTopK, K: k}, nil
	}
	if rest, ok := strings.CutPrefix(n, "p"); ok && rest != "" && rest[0] >= '0' && rest[0] <= '9' {
		pct, err := strconv.ParseFloat(rest, 64)
		if err != nil || !(pct > 0 && pct < 100) { // negated so NaN is rejected too
			return Spec{}, fmt.Errorf("aggregate: bad percentile spec %q (need p0 < pNN < p100)", name)
		}
		return Spec{Kind: KindQuantile, Q: canonQ(pct / 100)}, nil
	}
	return Spec{}, fmt.Errorf("aggregate: unknown function %q", name)
}

// Entry is one node's contribution in list-valued results.
type Entry struct {
	Node  ids.ID
	Value value.Value
}

// State is a partial aggregate for some set of nodes. The zero State of
// a Spec (via New) represents the empty set.
//
// All State implementations have exported fields and are registered for
// gob so they can cross the TCP transport.
type State interface {
	// Add folds one node's local value into the state. Invalid values
	// (missing attributes) are ignored except by COUNT over "*".
	Add(node ids.ID, v value.Value)
	// Merge folds another state of the same Spec into this one.
	Merge(other State) error
	// Result extracts the final answer.
	Result() Result
	// Nodes reports how many node contributions the state holds.
	Nodes() int64
}

// KeyCount is one heavy-hitter entry of a TOPKEYS result: an attribute
// value (rendered as a group key) and its estimated frequency.
type KeyCount struct {
	Key   string
	Count int64
}

// Result is a completed aggregation: a scalar value, a list, or both
// (TOP-K, ENUMERATE, UNION and COLLECT fill Entries; TOPKEYS fills
// Counts; the rest fill Value).
type Result struct {
	Value   value.Value
	Entries []Entry
	Counts  []KeyCount
}

// String renders the result for display.
func (r Result) String() string {
	if r.Counts != nil {
		parts := make([]string, 0, len(r.Counts))
		for _, kc := range r.Counts {
			parts = append(parts, fmt.Sprintf("%s×%d", kc.Key, kc.Count))
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	if r.Entries == nil {
		return r.Value.String()
	}
	parts := make([]string, 0, len(r.Entries))
	for _, e := range r.Entries {
		parts = append(parts, fmt.Sprintf("%s=%s", e.Node.Short(), e.Value))
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// New creates the empty state for the spec by looking up the
// function's registered constructor. Recycled states (see Recycle) are
// reused when available: the per-node per-epoch report path allocates
// one state tree per message, and at N=10k the pool is the difference
// between steady-state and GC-bound.
func (s Spec) New() State {
	if st := poolGet(s); st != nil {
		return st
	}
	c, ok := registry[s.Kind]
	if !ok {
		panic(fmt.Sprintf("aggregate: New on invalid spec %v", s))
	}
	return c.newState(s)
}

// statePools recycles leaf states per Kind. States are fully reset on
// put; TopK's K is re-stamped on get (the pool is keyed by kind only).
var statePools [16]sync.Pool

func poolGet(s Spec) State {
	k := int(s.Kind)
	if k <= 0 || k >= len(statePools) {
		return nil
	}
	st, _ := statePools[k].Get().(State)
	if st == nil {
		return nil
	}
	// The pool is keyed by kind only; parameter fields are re-stamped
	// from the spec on the way out.
	switch t := st.(type) {
	case *TopKState:
		t.K = s.K
		if t.K <= 0 {
			t.K = 1
		}
	case *TopKeysState:
		t.K = s.K
		if t.K <= 0 {
			t.K = DefaultTopKeys
		}
	case *QuantileState:
		t.Q = s.Q
	}
	return st
}

// Recycle returns a state tree to the allocation pools. Callers must
// guarantee that nothing references the state, its sub-states, or
// their entry slices anymore — the canonical safe point is right after
// Merge folded a received partial into an accumulator (every Merge
// implementation copies values; none retains references into its
// argument). Recycling anything else is a correctness bug, not a
// performance tweak.
func Recycle(st State) {
	switch s := st.(type) {
	case nil:
		return
	case *GroupedState:
		for k, sub := range s.Groups {
			Recycle(sub)
			delete(s.Groups, k)
		}
		if s.Other != nil {
			Recycle(s.Other)
		}
		groups := s.Groups
		*s = GroupedState{Groups: groups}
		groupedPool.Put(s)
	case *SumState:
		*s = SumState{}
		statePools[int(KindSum)].Put(st)
	case *CountState:
		*s = CountState{}
		statePools[int(KindCount)].Put(st)
	case *ExtremeState:
		max := s.Max
		*s = ExtremeState{Max: max}
		if max {
			statePools[int(KindMax)].Put(st)
		} else {
			statePools[int(KindMin)].Put(st)
		}
	case *AvgState:
		*s = AvgState{}
		statePools[int(KindAvg)].Put(st)
	case *StdState:
		*s = StdState{}
		statePools[int(KindStd)].Put(st)
	case *TopKState:
		entries := s.Entries[:0]
		*s = TopKState{Entries: entries}
		statePools[int(KindTopK)].Put(st)
	case *EnumState:
		entries := s.Entries[:0]
		*s = EnumState{Entries: entries}
		statePools[int(KindEnum)].Put(st)
	case *DCountState:
		s.reset()
		statePools[int(KindDCount)].Put(st)
	case *QuantileState:
		s.reset()
		statePools[int(KindQuantile)].Put(st)
	case *TopKeysState:
		s.reset()
		statePools[int(KindTopKeys)].Put(st)
	case *UnionState:
		entries := s.Entries[:0]
		keys := s.Keys[:0]
		*s = UnionState{Cap: SetCap, Keys: keys, Entries: entries}
		statePools[int(KindUnion)].Put(st)
	case *CollectState:
		entries := s.Entries[:0]
		*s = CollectState{Cap: SetCap, Entries: entries}
		statePools[int(KindCollect)].Put(st)
	}
}

var groupedPool sync.Pool

// ---------------------------------------------------------------------

// SumState sums numeric contributions.
type SumState struct {
	Valid bool
	V     value.Value
	N     int64
}

// Add folds one node's value in.
func (s *SumState) Add(_ ids.ID, v value.Value) {
	if !v.IsNumeric() {
		if b, ok := v.AsBool(); ok {
			// Booleans sum as 0/1, matching the paper's (A, SUM, A=1)
			// usage for counting flag attributes.
			iv := int64(0)
			if b {
				iv = 1
			}
			v = value.Int(iv)
		} else {
			return
		}
	}
	s.N++
	if !s.Valid {
		s.V, s.Valid = v, true
		return
	}
	sum, err := value.Add(s.V, v)
	if err == nil {
		s.V = sum
	}
}

// Merge folds another SumState in.
func (s *SumState) Merge(other State) error {
	o, ok := other.(*SumState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into SumState", other)
	}
	if !o.Valid {
		return nil
	}
	s.N += o.N
	if !s.Valid {
		s.V, s.Valid = o.V, true
		return nil
	}
	sum, err := value.Add(s.V, o.V)
	if err != nil {
		return err
	}
	s.V = sum
	return nil
}

// Result returns the sum (Int 0 when no contributions).
func (s *SumState) Result() Result {
	if !s.Valid {
		return Result{Value: value.Int(0)}
	}
	return Result{Value: s.V}
}

// Nodes reports the number of contributions.
func (s *SumState) Nodes() int64 { return s.N }

// ---------------------------------------------------------------------

// CountState counts contributing nodes.
type CountState struct {
	N int64
}

// Add counts the node when it contributes any valid value.
func (s *CountState) Add(_ ids.ID, v value.Value) {
	if v.IsValid() {
		s.N++
	}
}

// Merge folds another CountState in.
func (s *CountState) Merge(other State) error {
	o, ok := other.(*CountState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into CountState", other)
	}
	s.N += o.N
	return nil
}

// Result returns the count.
func (s *CountState) Result() Result { return Result{Value: value.Int(s.N)} }

// Nodes reports the number of contributions.
func (s *CountState) Nodes() int64 { return s.N }

// ---------------------------------------------------------------------

// ExtremeState tracks the minimum or maximum contribution and the node
// that reported it.
type ExtremeState struct {
	Max   bool
	Valid bool
	Best  Entry
	N     int64
}

// Add folds one node's value in.
func (s *ExtremeState) Add(node ids.ID, v value.Value) {
	if !v.IsValid() {
		return
	}
	s.N++
	if !s.Valid {
		s.Best = Entry{Node: node, Value: v}
		s.Valid = true
		return
	}
	c, err := value.Compare(v, s.Best.Value)
	if err != nil {
		return
	}
	if (s.Max && c > 0) || (!s.Max && c < 0) {
		s.Best = Entry{Node: node, Value: v}
	}
}

// Merge folds another ExtremeState in.
func (s *ExtremeState) Merge(other State) error {
	o, ok := other.(*ExtremeState)
	if !ok || o.Max != s.Max {
		return fmt.Errorf("aggregate: merge %T into ExtremeState(max=%v)", other, s.Max)
	}
	if !o.Valid {
		return nil
	}
	n := s.N + o.N
	s.Add(o.Best.Node, o.Best.Value)
	s.N = n
	return nil
}

// Result returns the extreme value (invalid when no contributions).
func (s *ExtremeState) Result() Result {
	if !s.Valid {
		return Result{}
	}
	return Result{Value: s.Best.Value, Entries: []Entry{s.Best}}
}

// Nodes reports the number of contributions.
func (s *ExtremeState) Nodes() int64 { return s.N }

// ---------------------------------------------------------------------

// AvgState composes SUM and COUNT, as §3.1 prescribes.
type AvgState struct {
	Sum SumState
}

// Add folds one node's value in.
func (s *AvgState) Add(node ids.ID, v value.Value) { s.Sum.Add(node, v) }

// Merge folds another AvgState in.
func (s *AvgState) Merge(other State) error {
	o, ok := other.(*AvgState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into AvgState", other)
	}
	return s.Sum.Merge(&o.Sum)
}

// Result returns sum/count as a float (invalid when no contributions).
func (s *AvgState) Result() Result {
	if s.Sum.N == 0 {
		return Result{}
	}
	f, _ := s.Sum.V.AsFloat()
	return Result{Value: value.Float(f / float64(s.Sum.N))}
}

// Nodes reports the number of contributions.
func (s *AvgState) Nodes() int64 { return s.Sum.N }

// ---------------------------------------------------------------------

// TopKState keeps the K largest contributions, ordered descending with
// node IDs breaking ties so merges are deterministic.
type TopKState struct {
	K       int
	Entries []Entry
	N       int64
}

// Add folds one node's value in. The entry list is kept ordered at all
// times, so one contribution costs a binary-search insert (with an O(1)
// doesn't-make-the-cut rejection when the list is full) instead of the
// pre-optimization full re-sort per contribution.
func (s *TopKState) Add(node ids.ID, v value.Value) {
	if !v.IsValid() {
		return
	}
	s.N++
	e := Entry{Node: node, Value: v}
	if len(s.Entries) >= s.K && len(s.Entries) > 0 && !entryBefore(e, s.Entries[len(s.Entries)-1]) {
		return
	}
	i := sort.Search(len(s.Entries), func(i int) bool { return entryBefore(e, s.Entries[i]) })
	s.Entries = append(s.Entries, Entry{})
	copy(s.Entries[i+1:], s.Entries[i:])
	s.Entries[i] = e
	if len(s.Entries) > s.K {
		s.Entries = s.Entries[:s.K]
	}
}

// Merge folds another TopKState in.
func (s *TopKState) Merge(other State) error {
	o, ok := other.(*TopKState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into TopKState", other)
	}
	s.N += o.N
	s.Entries = append(s.Entries, o.Entries...)
	s.compact()
	return nil
}

// entryBefore is the top-k order: value descending, node IDs breaking
// ties (and incomparable values) so merges are deterministic.
func entryBefore(a, b Entry) bool {
	c, err := value.Compare(a.Value, b.Value)
	if err == nil && c != 0 {
		return c > 0
	}
	return ids.Less(a.Node, b.Node)
}

func (s *TopKState) compact() {
	sort.Slice(s.Entries, func(i, j int) bool {
		return entryBefore(s.Entries[i], s.Entries[j])
	})
	if len(s.Entries) > s.K {
		s.Entries = s.Entries[:s.K]
	}
}

// Result returns the top-K list.
func (s *TopKState) Result() Result {
	out := make([]Entry, len(s.Entries))
	copy(out, s.Entries)
	r := Result{Entries: out}
	if len(out) > 0 {
		r.Value = out[0].Value
	}
	return r
}

// Nodes reports the number of contributions.
func (s *TopKState) Nodes() int64 { return s.N }

// ---------------------------------------------------------------------

// EnumState lists every contribution (the paper's enumeration function).
type EnumState struct {
	Entries []Entry
}

// Add folds one node's value in.
func (s *EnumState) Add(node ids.ID, v value.Value) {
	if !v.IsValid() {
		return
	}
	s.Entries = append(s.Entries, Entry{Node: node, Value: v})
}

// Merge folds another EnumState in.
func (s *EnumState) Merge(other State) error {
	o, ok := other.(*EnumState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into EnumState", other)
	}
	s.Entries = append(s.Entries, o.Entries...)
	return nil
}

// Result returns the full list, sorted by node ID for determinism.
func (s *EnumState) Result() Result {
	out := make([]Entry, len(s.Entries))
	copy(out, s.Entries)
	sort.Slice(out, func(i, j int) bool { return ids.Less(out[i].Node, out[j].Node) })
	r := Result{Entries: out}
	r.Value = value.Int(int64(len(out)))
	return r
}

// Nodes reports the number of contributions.
func (s *EnumState) Nodes() int64 { return int64(len(s.Entries)) }

// ---------------------------------------------------------------------

// StdState computes the population standard deviation from the moment
// sums (n, Σx, Σx²), which merge by simple addition.
type StdState struct {
	N     int64
	Sum   float64
	SumSq float64
}

// Add folds one node's value in.
func (s *StdState) Add(_ ids.ID, v value.Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	s.N++
	s.Sum += f
	s.SumSq += f * f
}

// Merge folds another StdState in.
func (s *StdState) Merge(other State) error {
	o, ok := other.(*StdState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into StdState", other)
	}
	s.N += o.N
	s.Sum += o.Sum
	s.SumSq += o.SumSq
	return nil
}

// Result returns sqrt(E[x²]-E[x]²); invalid with no contributions.
func (s *StdState) Result() Result {
	if s.N == 0 {
		return Result{}
	}
	mean := s.Sum / float64(s.N)
	variance := s.SumSq/float64(s.N) - mean*mean
	if variance < 0 {
		variance = 0 // numeric guard
	}
	return Result{Value: value.Float(math.Sqrt(variance))}
}

// Nodes reports the number of contributions.
func (s *StdState) Nodes() int64 { return s.N }
