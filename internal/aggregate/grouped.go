package aggregate

import (
	"fmt"
	"sort"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

// Reserved group keys. ScalarKey is the single bucket ungrouped queries
// accumulate under, making the scalar pipeline the one-key special case
// of the keyed engine. NullKey collects contributions whose group-by
// attribute is unset at the contributing node. OtherKey labels the spill
// bucket in grouped results when the key cap was exceeded.
const (
	ScalarKey = ""
	NullKey   = "<null>"
	OtherKey  = "<other>"
)

// GroupedState is the keyed accumulator every query flows through: a
// hash map from group key to a per-key sub-State of one Spec. It is
// itself a State (partial aggregate), so it travels inside ResponseMsg
// and merges hop-by-hop up the aggregation tree — one dissemination
// answers a whole `group by` query.
//
// High-cardinality protection: Cap bounds the number of distinct keys a
// state holds. Past the cap, contributions spill into the Other bucket
// under a deterministic policy — the lexicographically smallest Cap keys
// are kept exact, larger keys are folded into Other (and Spilled counts
// the key arrivals routed there). Under spill, kept keys remain exact
// only if no tree hop spilled them; the overall Result is always exact
// because Other participates in the grand total.
//
// Fields are exported for gob; use NewGrouped and the methods.
type GroupedState struct {
	// Spec is the per-key aggregation function.
	Spec Spec
	// Cap bounds distinct keys (0 = unbounded).
	Cap int
	// Groups holds the per-key sub-aggregates.
	Groups map[string]State
	// Other accumulates spilled contributions (nil until first spill).
	Other State
	// Spilled counts key arrivals folded into Other.
	Spilled int64

	// maxKey caches the lexicographically largest held key so the
	// straight-to-Other spill path is O(1); empty means "recompute"
	// (also the state after gob decoding, which skips this field).
	maxKey string
}

// NewGrouped creates an empty keyed accumulator for spec with the given
// key cap (0 = unbounded). Recycled shells (their cleared key maps
// included) are reused when available.
func NewGrouped(spec Spec, cap int) *GroupedState {
	return NewGroupedSized(spec, cap, 0)
}

// NewGroupedSized is NewGrouped with a key-count hint: per-epoch report
// paths preallocate from the previous epoch's key count so the hot loop
// never grows the map incrementally.
func NewGroupedSized(spec Spec, cap, hint int) *GroupedState {
	if g, ok := groupedPool.Get().(*GroupedState); ok && g != nil {
		g.Spec, g.Cap = spec, cap
		if g.Groups == nil {
			g.Groups = make(map[string]State, max(hint, 0))
		}
		return g
	}
	if hint < 0 {
		hint = 0
	}
	return &GroupedState{Spec: spec, Cap: cap, Groups: make(map[string]State, hint)}
}

// AddKeyed folds one node's value into the sub-aggregate for key.
// Invalid values are dropped up front (no State records them), so a
// node missing the query attribute neither materializes an empty group
// nor burns a cap slot.
func (g *GroupedState) AddKeyed(node ids.ID, key string, v value.Value) {
	if !v.IsValid() {
		return
	}
	st, created := g.slot(key)
	st.Add(node, v)
	if created && st.Nodes() == 0 {
		// The sub-state ignored the contribution (e.g. a string fed to
		// SUM); don't surface an empty group.
		delete(g.Groups, key)
		if key == g.maxKey {
			g.maxKey = ""
		}
	}
}

// Add implements State: an ungrouped contribution lands in ScalarKey.
func (g *GroupedState) Add(node ids.ID, v value.Value) {
	g.AddKeyed(node, ScalarKey, v)
}

// heldMax returns the lexicographically largest held key, recomputing
// the cache only when it was invalidated (eviction, deletion, decode).
// Only called while at a non-zero cap, so Groups is non-empty and the
// one held key of a scalar state ("") is never ambiguous with the
// empty cache sentinel in a way that matters: a stale recompute just
// costs one extra scan.
func (g *GroupedState) heldMax() string {
	if g.maxKey == "" {
		for k := range g.Groups {
			if k > g.maxKey {
				g.maxKey = k
			}
		}
	}
	return g.maxKey
}

// slot returns the accumulator for key, creating it on demand, with
// created reporting a fresh sub-state. When the key cap is reached, the
// lexicographically largest key is demoted into Other to admit a
// smaller newcomer; keys at or above the current maximum go straight to
// Other. The policy depends only on the key set, not arrival order.
func (g *GroupedState) slot(key string) (st State, created bool) {
	if st, ok := g.Groups[key]; ok {
		return st, false
	}
	if g.Cap > 0 && len(g.Groups) >= g.Cap {
		maxKey := g.heldMax()
		g.Spilled++
		if key >= maxKey {
			return g.other(), false
		}
		evicted := g.Groups[maxKey]
		delete(g.Groups, maxKey)
		g.maxKey = ""
		_ = g.other().Merge(evicted)
	}
	st = g.Spec.New()
	if g.Groups == nil {
		g.Groups = make(map[string]State)
	}
	g.Groups[key] = st
	if g.maxKey != "" && key > g.maxKey {
		g.maxKey = key
	}
	return st, true
}

func (g *GroupedState) other() State {
	if g.Other == nil {
		g.Other = g.Spec.New()
	}
	return g.Other
}

// Merge implements State: fold another GroupedState of the same Spec in,
// key by key.
//
// When the combined key count provably cannot reach the cap, no
// insertion can evict or spill, every per-key merge is independent, and
// the fold iterates the map directly. Only a merge that could actually
// hit the cap pays for the sorted key walk that keeps the deterministic
// smallest-keys-kept spill policy order-independent.
func (g *GroupedState) Merge(other State) error {
	o, ok := other.(*GroupedState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into GroupedState", other)
	}
	if o.Spec != g.Spec {
		return fmt.Errorf("aggregate: merge GroupedState(%v) into GroupedState(%v)", o.Spec, g.Spec)
	}
	if g.Cap == 0 || len(g.Groups)+len(o.Groups) <= g.Cap {
		for k, ost := range o.Groups {
			st, _ := g.slot(k)
			if err := st.Merge(ost); err != nil {
				return err
			}
		}
	} else {
		for _, k := range o.Keys() {
			st, _ := g.slot(k)
			if err := st.Merge(o.Groups[k]); err != nil {
				return err
			}
		}
	}
	if o.Other != nil {
		if err := g.other().Merge(o.Other); err != nil {
			return err
		}
	}
	g.Spilled += o.Spilled
	return nil
}

// Result implements State: the grand total over every key (including
// Other), which for a scalar query is exactly the single bucket's
// answer.
func (g *GroupedState) Result() Result {
	total := g.Spec.New()
	for _, k := range g.Keys() {
		_ = total.Merge(g.Groups[k])
	}
	if g.Other != nil {
		_ = total.Merge(g.Other)
	}
	return total.Result()
}

// Nodes implements State: total contributions across all keys.
func (g *GroupedState) Nodes() int64 {
	var n int64
	for _, st := range g.Groups {
		n += st.Nodes()
	}
	if g.Other != nil {
		n += g.Other.Nodes()
	}
	return n
}

// Keys lists the held group keys in sorted order (Other excluded).
func (g *GroupedState) Keys() []string {
	out := make([]string, 0, len(g.Groups))
	for k := range g.Groups {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KeyCount reports the number of exactly-held keys.
func (g *GroupedState) KeyCount() int { return len(g.Groups) }

// Truncated reports whether any contribution spilled past the key cap.
func (g *GroupedState) Truncated() bool { return g.Other != nil || g.Spilled > 0 }

// Results extracts the per-key answers; spilled mass appears under
// OtherKey.
func (g *GroupedState) Results() map[string]Result {
	out := make(map[string]Result, len(g.Groups)+1)
	for k, st := range g.Groups {
		out[k] = st.Result()
	}
	if g.Other != nil {
		out[OtherKey] = g.Other.Result()
	}
	return out
}

var _ State = (*GroupedState)(nil)
