package aggregate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

func allSpecs() []Spec {
	return []Spec{
		{Kind: KindSum},
		{Kind: KindCount},
		{Kind: KindMin},
		{Kind: KindMax},
		{Kind: KindAvg},
		{Kind: KindTopK, K: 3},
		{Kind: KindEnum},
		{Kind: KindStd},
	}
}

func contributions(vals []int16) []Entry {
	out := make([]Entry, len(vals))
	for i, v := range vals {
		out[i] = Entry{Node: ids.FromUint64(uint64(i + 1)), Value: value.Int(int64(v))}
	}
	return out
}

// foldSplit aggregates contributions with an arbitrary split point: the
// first part into one state, the rest into another, merged at the end.
func foldSplit(spec Spec, entries []Entry, split int) Result {
	a, b := spec.New(), spec.New()
	for i, e := range entries {
		if i < split {
			a.Add(e.Node, e.Value)
		} else {
			b.Add(e.Node, e.Value)
		}
	}
	if err := a.Merge(b); err != nil {
		panic(err)
	}
	return a.Result()
}

func resultsEqual(x, y Result) bool {
	if !value.Equal(x.Value, y.Value) && (x.Value.IsValid() || y.Value.IsValid()) {
		return false
	}
	if len(x.Entries) != len(y.Entries) {
		return false
	}
	for i := range x.Entries {
		if x.Entries[i].Node != y.Entries[i].Node || !value.Equal(x.Entries[i].Value, y.Entries[i].Value) {
			return false
		}
	}
	return true
}

// TestPartialAggregationLaw verifies §3.1's requirement: merging the
// partial aggregates of disjoint node sets equals aggregating their
// union, independent of how the set is split.
func TestPartialAggregationLaw(t *testing.T) {
	for _, spec := range allSpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			f := func(vals []int16, splitRaw uint8) bool {
				entries := contributions(vals)
				base := foldSplit(spec, entries, len(entries))
				split := 0
				if len(entries) > 0 {
					split = int(splitRaw) % (len(entries) + 1)
				}
				return resultsEqual(base, foldSplit(spec, entries, split))
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMergeTreeShapedEqualsFlat aggregates through a random tree shape
// (the real dissemination pattern) and compares against flat folding.
func TestMergeTreeShapedEqualsFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, spec := range allSpecs() {
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(40) + 1
			entries := make([]Entry, n)
			for i := range entries {
				entries[i] = Entry{Node: ids.FromUint64(uint64(i + 1)), Value: value.Int(int64(rng.Intn(200) - 100))}
			}
			flat := spec.New()
			for _, e := range entries {
				flat.Add(e.Node, e.Value)
			}
			// Random binary merge tree.
			states := make([]State, n)
			for i, e := range entries {
				states[i] = spec.New()
				states[i].Add(e.Node, e.Value)
			}
			for len(states) > 1 {
				i := rng.Intn(len(states) - 1)
				if err := states[i].Merge(states[i+1]); err != nil {
					t.Fatalf("%s: merge: %v", spec, err)
				}
				states = append(states[:i+1], states[i+2:]...)
			}
			if !resultsEqual(flat.Result(), states[0].Result()) {
				t.Fatalf("%s: tree-shaped merge diverged: %v vs %v",
					spec, flat.Result(), states[0].Result())
			}
		}
	}
}

func TestSumBoolsCountFlags(t *testing.T) {
	s := (Spec{Kind: KindSum}).New()
	s.Add(ids.FromUint64(1), value.Bool(true))
	s.Add(ids.FromUint64(2), value.Bool(false))
	s.Add(ids.FromUint64(3), value.Bool(true))
	if v, _ := s.Result().Value.AsInt(); v != 2 {
		t.Fatalf("sum of bools = %d, want 2", v)
	}
}

func TestSumIgnoresNonNumeric(t *testing.T) {
	s := (Spec{Kind: KindSum}).New()
	s.Add(ids.FromUint64(1), value.Str("x"))
	s.Add(ids.FromUint64(2), value.Value{})
	s.Add(ids.FromUint64(3), value.Int(5))
	if v, _ := s.Result().Value.AsInt(); v != 5 {
		t.Fatalf("sum = %d, want 5", v)
	}
	if s.Nodes() != 1 {
		t.Fatalf("nodes = %d, want 1", s.Nodes())
	}
}

func TestCountStar(t *testing.T) {
	s := (Spec{Kind: KindCount}).New()
	for i := 0; i < 7; i++ {
		s.Add(ids.FromUint64(uint64(i)), value.Int(1))
	}
	if v, _ := s.Result().Value.AsInt(); v != 7 {
		t.Fatalf("count = %d", v)
	}
}

func TestMinMaxTrackReporter(t *testing.T) {
	maxS := (Spec{Kind: KindMax}).New()
	minS := (Spec{Kind: KindMin}).New()
	for i, v := range []int64{5, 9, 1, 9, 3} {
		node := ids.FromUint64(uint64(i + 1))
		maxS.Add(node, value.Int(v))
		minS.Add(node, value.Int(v))
	}
	maxR, minR := maxS.Result(), minS.Result()
	if v, _ := maxR.Value.AsInt(); v != 9 {
		t.Fatalf("max = %d", v)
	}
	if v, _ := minR.Value.AsInt(); v != 1 {
		t.Fatalf("min = %d", v)
	}
	if minR.Entries[0].Node != ids.FromUint64(3) {
		t.Fatalf("min reporter = %s", minR.Entries[0].Node.Short())
	}
}

func TestAvg(t *testing.T) {
	s := (Spec{Kind: KindAvg}).New()
	for i, v := range []int64{2, 4, 6} {
		s.Add(ids.FromUint64(uint64(i+1)), value.Int(v))
	}
	if f, _ := s.Result().Value.AsFloat(); f != 4 {
		t.Fatalf("avg = %v", f)
	}
	empty := (Spec{Kind: KindAvg}).New()
	if empty.Result().Value.IsValid() {
		t.Fatal("avg of empty set should be invalid")
	}
}

func TestTopKOrderingAndBound(t *testing.T) {
	s := (Spec{Kind: KindTopK, K: 3}).New()
	for i, v := range []int64{10, 50, 30, 50, 20, 40} {
		s.Add(ids.FromUint64(uint64(i+1)), value.Int(v))
	}
	r := s.Result()
	if len(r.Entries) != 3 {
		t.Fatalf("top3 returned %d entries", len(r.Entries))
	}
	want := []int64{50, 50, 40}
	for i, e := range r.Entries {
		if v, _ := e.Value.AsInt(); v != want[i] {
			t.Fatalf("top3[%d] = %d, want %d", i, v, want[i])
		}
	}
}

func TestEnumListsEveryone(t *testing.T) {
	s := (Spec{Kind: KindEnum}).New()
	for i := 0; i < 5; i++ {
		s.Add(ids.FromUint64(uint64(i+1)), value.Str(fmt.Sprintf("host-%d", i)))
	}
	r := s.Result()
	if len(r.Entries) != 5 {
		t.Fatalf("enum entries = %d", len(r.Entries))
	}
	if v, _ := r.Value.AsInt(); v != 5 {
		t.Fatalf("enum count value = %d", v)
	}
}

func TestParseSpec(t *testing.T) {
	tests := []struct {
		in   string
		want Spec
		err  bool
	}{
		{"sum", Spec{Kind: KindSum}, false},
		{"COUNT", Spec{Kind: KindCount}, false},
		{"avg", Spec{Kind: KindAvg}, false},
		{"mean", Spec{Kind: KindAvg}, false},
		{"top3", Spec{Kind: KindTopK, K: 3}, false},
		{"top", Spec{Kind: KindTopK, K: 1}, false},
		{"top0", Spec{}, true},
		{"median", Spec{}, true},
		{"enumerate", Spec{Kind: KindEnum}, false},
	}
	for _, tc := range tests {
		got, err := ParseSpec(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParseSpec(%q) should fail", tc.in)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParseSpec(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
}

func TestStdDeviation(t *testing.T) {
	s := (Spec{Kind: KindStd}).New()
	for i, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(ids.FromUint64(uint64(i+1)), value.Float(v))
	}
	got, _ := s.Result().Value.AsFloat()
	if got < 1.999 || got > 2.001 { // classic example: std = 2
		t.Fatalf("std = %v, want 2", got)
	}
	empty := (Spec{Kind: KindStd}).New()
	if empty.Result().Value.IsValid() {
		t.Fatal("std of empty set should be invalid")
	}
	if sp, err := ParseSpec("stddev"); err != nil || sp.Kind != KindStd {
		t.Fatalf("ParseSpec(stddev) = %v, %v", sp, err)
	}
}

func TestMergeTypeMismatch(t *testing.T) {
	s := (Spec{Kind: KindSum}).New()
	if err := s.Merge((Spec{Kind: KindCount}).New()); err == nil {
		t.Fatal("merging mismatched states should fail")
	}
	mx := (Spec{Kind: KindMax}).New()
	if err := mx.Merge((Spec{Kind: KindMin}).New()); err == nil {
		t.Fatal("merging min into max should fail")
	}
}
