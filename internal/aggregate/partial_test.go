package aggregate

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

// TestPartialAggregationLawKillSubsets is the §3.1 partial-aggregation
// law extended to arbitrary kill subsets, checked at the state level:
// for random survivor subsets of a random population, merging the
// survivors' per-node partial states — in random tree shapes — must
// equal direct aggregation over the survivors, for every aggregate kind
// including the keyed GroupedState. This is the algebraic half of the
// churn-resilience argument: whatever subset of the tree survives a
// crash wave, the states that do reach the root compose to the exact
// aggregate over the nodes they represent.
func TestPartialAggregationLawKillSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []Spec{
		{Kind: KindSum}, {Kind: KindCount}, {Kind: KindMin}, {Kind: KindMax},
		{Kind: KindAvg}, {Kind: KindStd}, {Kind: KindTopK, K: 3}, {Kind: KindEnum},
	}
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(56)
		nodes := make([]ids.ID, n)
		vals := make([]value.Value, n)
		keys := make([]string, n)
		for i := range nodes {
			nodes[i] = ids.FromKey(fmt.Sprintf("n-%d-%d", trial, i))
			vals[i] = value.Int(int64(rng.Intn(500)))
			keys[i] = fmt.Sprintf("k%d", rng.Intn(5))
		}
		// Random survivor subset (possibly empty).
		var survivors []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				survivors = append(survivors, i)
			}
		}
		for _, spec := range kinds {
			grouped := rng.Intn(2) == 0
			keyOf := func(i int) string {
				if grouped {
					return keys[i]
				}
				return ScalarKey
			}
			// Per-survivor partial states, merged in a random tree
			// shape: repeatedly merge a random state into another until
			// one remains.
			parts := make([]*GroupedState, 0, len(survivors))
			for _, i := range survivors {
				st := NewGrouped(spec, 0)
				st.AddKeyed(nodes[i], keyOf(i), vals[i])
				parts = append(parts, st)
			}
			for len(parts) > 1 {
				i := rng.Intn(len(parts))
				j := rng.Intn(len(parts) - 1)
				if j >= i {
					j++
				}
				if err := parts[i].Merge(parts[j]); err != nil {
					t.Fatalf("merge: %v", err)
				}
				parts[j] = parts[len(parts)-1]
				parts = parts[:len(parts)-1]
			}
			merged := NewGrouped(spec, 0)
			if len(parts) == 1 {
				merged = parts[0]
			}
			// Oracle: direct aggregation over the survivors.
			direct := NewGrouped(spec, 0)
			for _, i := range survivors {
				direct.AddKeyed(nodes[i], keyOf(i), vals[i])
			}
			if got, want := merged.Nodes(), direct.Nodes(); got != want {
				t.Fatalf("trial %d %v: merged nodes %d, direct %d", trial, spec, got, want)
			}
			if got, want := merged.Nodes(), int64(len(survivors)); got != want {
				t.Fatalf("trial %d %v: contributions %d, survivors %d", trial, spec, got, want)
			}
			gr, dr := merged.Result(), direct.Result()
			if !value.Equal(gr.Value, dr.Value) {
				t.Fatalf("trial %d %v (grouped=%v): merged %v, direct %v over %d survivors",
					trial, spec, grouped, gr.Value, dr.Value, len(survivors))
			}
			if len(gr.Entries) != len(dr.Entries) {
				t.Fatalf("trial %d %v: merged %d entries, direct %d", trial, spec, len(gr.Entries), len(dr.Entries))
			}
			mg, dg := merged.Results(), direct.Results()
			if len(mg) != len(dg) {
				t.Fatalf("trial %d %v: merged %d groups, direct %d", trial, spec, len(mg), len(dg))
			}
			for k, dv := range dg {
				if !value.Equal(mg[k].Value, dv.Value) {
					t.Fatalf("trial %d %v: group %s merged %v, direct %v", trial, spec, k, mg[k].Value, dv.Value)
				}
			}
		}
	}
}
