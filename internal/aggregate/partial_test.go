package aggregate

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"slices"
	"sort"
	"testing"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

// TestPartialAggregationLawKillSubsets is the §3.1 partial-aggregation
// law extended to arbitrary kill subsets, checked at the state level:
// for random survivor subsets of a random population, merging the
// survivors' per-node partial states — in random tree shapes — must
// equal direct aggregation over the survivors, for every aggregate kind
// including the keyed GroupedState. This is the algebraic half of the
// churn-resilience argument: whatever subset of the tree survives a
// crash wave, the states that do reach the root compose to the exact
// aggregate over the nodes they represent.
func TestPartialAggregationLawKillSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	kinds := []Spec{
		{Kind: KindSum}, {Kind: KindCount}, {Kind: KindMin}, {Kind: KindMax},
		{Kind: KindAvg}, {Kind: KindStd}, {Kind: KindTopK, K: 3}, {Kind: KindEnum},
		// Merge-shape-exact sketch kinds ride the same oracle: HLL
		// registers merge by pointwise max, and the union/collect spill
		// policies keep shape-invariant survivor sets, so their Results
		// are byte-deterministic too. (Quantile and topkeys are only
		// bound-preserving; they get their own harness below.)
		{Kind: KindDCount}, {Kind: KindUnion}, {Kind: KindCollect},
	}
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(56)
		nodes := make([]ids.ID, n)
		vals := make([]value.Value, n)
		keys := make([]string, n)
		for i := range nodes {
			nodes[i] = ids.FromKey(fmt.Sprintf("n-%d-%d", trial, i))
			vals[i] = value.Int(int64(rng.Intn(500)))
			keys[i] = fmt.Sprintf("k%d", rng.Intn(5))
		}
		// Random survivor subset (possibly empty).
		var survivors []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) != 0 {
				survivors = append(survivors, i)
			}
		}
		for _, spec := range kinds {
			grouped := rng.Intn(2) == 0
			keyOf := func(i int) string {
				if grouped {
					return keys[i]
				}
				return ScalarKey
			}
			// Per-survivor partial states, merged in a random tree
			// shape: repeatedly merge a random state into another until
			// one remains.
			parts := make([]*GroupedState, 0, len(survivors))
			for _, i := range survivors {
				st := NewGrouped(spec, 0)
				st.AddKeyed(nodes[i], keyOf(i), vals[i])
				parts = append(parts, st)
			}
			for len(parts) > 1 {
				i := rng.Intn(len(parts))
				j := rng.Intn(len(parts) - 1)
				if j >= i {
					j++
				}
				if err := parts[i].Merge(parts[j]); err != nil {
					t.Fatalf("merge: %v", err)
				}
				parts[j] = parts[len(parts)-1]
				parts = parts[:len(parts)-1]
			}
			merged := NewGrouped(spec, 0)
			if len(parts) == 1 {
				merged = parts[0]
			}
			// Oracle: direct aggregation over the survivors.
			direct := NewGrouped(spec, 0)
			for _, i := range survivors {
				direct.AddKeyed(nodes[i], keyOf(i), vals[i])
			}
			if got, want := merged.Nodes(), direct.Nodes(); got != want {
				t.Fatalf("trial %d %v: merged nodes %d, direct %d", trial, spec, got, want)
			}
			if got, want := merged.Nodes(), int64(len(survivors)); got != want {
				t.Fatalf("trial %d %v: contributions %d, survivors %d", trial, spec, got, want)
			}
			gr, dr := merged.Result(), direct.Result()
			if !value.Equal(gr.Value, dr.Value) {
				t.Fatalf("trial %d %v (grouped=%v): merged %v, direct %v over %d survivors",
					trial, spec, grouped, gr.Value, dr.Value, len(survivors))
			}
			if len(gr.Entries) != len(dr.Entries) {
				t.Fatalf("trial %d %v: merged %d entries, direct %d", trial, spec, len(gr.Entries), len(dr.Entries))
			}
			mg, dg := merged.Results(), direct.Results()
			if len(mg) != len(dg) {
				t.Fatalf("trial %d %v: merged %d groups, direct %d", trial, spec, len(mg), len(dg))
			}
			for k, dv := range dg {
				if !value.Equal(mg[k].Value, dv.Value) {
					t.Fatalf("trial %d %v: group %s merged %v, direct %v", trial, spec, k, mg[k].Value, dv.Value)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Generic merge-law harness over the registry: every registered kind —
// current and future — gets the partial-aggregation laws for free. For
// exact kinds (Approximate reports false, plus the merge-shape-exact
// dcount) any random partition of the population, merged in any random
// tree shape, must reproduce the single-state ingest Result bit for
// bit, in any merge order. For the bound-preserving sketches (quantile,
// topkeys) the law is weaker by design — mergeability means the error
// bound survives arbitrary merge trees — so the harness checks the
// merged Result against a ground-truth oracle within the published
// bound instead of against the single-state bytes.

// specFor builds a representative parameterized Spec for a kind.
func specFor(k Kind) Spec {
	switch k {
	case KindTopK:
		return Spec{Kind: k, K: 3}
	case KindTopKeys:
		return Spec{Kind: k, K: 4}
	case KindQuantile:
		return Spec{Kind: k, Q: 0.9}
	}
	return Spec{Kind: k}
}

// mergeShapeExact reports whether a kind's Result must be identical
// across merge shapes: everything except the rank/frequency sketches
// (whose compaction paths legitimately depend on the tree) and min/max
// (whose witness node on a tied extreme is first-seen, hence
// order-dependent — the extreme value itself is still exact).
func mergeShapeExact(k Kind) bool {
	switch k {
	case KindQuantile, KindTopKeys, KindMin, KindMax:
		return false
	}
	return true
}

// reduceRandom merges parts pairwise in a random tree shape until one
// state remains.
func reduceRandom(t *testing.T, rng *rand.Rand, parts []State) State {
	t.Helper()
	for len(parts) > 1 {
		i := rng.Intn(len(parts))
		j := rng.Intn(len(parts) - 1)
		if j >= i {
			j++
		}
		if err := parts[i].Merge(parts[j]); err != nil {
			t.Fatalf("merge: %v", err)
		}
		parts[j] = parts[len(parts)-1]
		parts = parts[:len(parts)-1]
	}
	return parts[0]
}

func TestMergeLawAllRegisteredKinds(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(0); seed < 25; seed++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(kind)))
				spec := specFor(kind)
				n := 30 + rng.Intn(200)
				nodes := make([]ids.ID, n)
				vals := make([]value.Value, n)
				for i := range nodes {
					nodes[i] = ids.FromKey(fmt.Sprintf("ml-%d-%d", seed, i))
					// A skewed small-range integer mix keeps heavy
					// hitters and duplicate set members interesting.
					if rng.Intn(4) == 0 {
						vals[i] = value.Float(float64(rng.Intn(40)) + 0.5)
					} else {
						vals[i] = value.Int(int64(rng.Intn(12) * rng.Intn(12)))
					}
				}
				direct := spec.New()
				for i := range nodes {
					direct.Add(nodes[i], vals[i])
				}
				// Random partition of the population into 1..8 parts,
				// each ingested separately.
				p := 1 + rng.Intn(8)
				assign := make([]int, n)
				for i := range assign {
					assign[i] = rng.Intn(p)
				}
				buildParts := func() []State {
					parts := make([]State, p)
					for i := range parts {
						parts[i] = spec.New()
					}
					for i := range nodes {
						parts[assign[i]].Add(nodes[i], vals[i])
					}
					return parts
				}
				merged := reduceRandom(t, rng, buildParts())
				if got, want := merged.Nodes(), direct.Nodes(); got != want {
					t.Fatalf("seed %d: merged nodes %d, direct %d", seed, got, want)
				}
				checkMergeLaw(t, seed, spec, merged, direct, vals)
				if mergeShapeExact(kind) {
					// Merge-order invariance: a second, differently
					// shaped merge tree must reproduce the same Result.
					again := reduceRandom(t, rng, buildParts())
					if !reflect.DeepEqual(again.Result(), merged.Result()) {
						t.Fatalf("seed %d: merge order changed the result:\n got %#v\nwant %#v",
							seed, again.Result(), merged.Result())
					}
				}
			}
		})
	}
}

// checkMergeLaw compares a merged-partition state against single-state
// ingest (exact kinds) or against ground truth within the sketch's
// published bound (quantile: rank error; topkeys: count error).
func checkMergeLaw(t *testing.T, seed int64, spec Spec, merged, direct State, vals []value.Value) {
	t.Helper()
	switch spec.Kind {
	case KindQuantile:
		checkQuantileBound(t, seed, spec.Q, merged, vals, "merged")
		checkQuantileBound(t, seed, spec.Q, direct, vals, "direct")
	case KindTopKeys:
		checkTopKeysBound(t, seed, spec.K, merged, vals, "merged")
		checkTopKeysBound(t, seed, spec.K, direct, vals, "direct")
	case KindMin, KindMax:
		// The extreme value is exact; the witness node on a tied value
		// is first-seen and therefore legitimately order-dependent.
		mr, dr := merged.Result(), direct.Result()
		if !value.Equal(mr.Value, dr.Value) || len(mr.Entries) != len(dr.Entries) {
			t.Fatalf("seed %d %v: merged %v != direct %v", seed, spec, mr, dr)
		}
	default:
		if !reflect.DeepEqual(merged.Result(), direct.Result()) {
			t.Fatalf("seed %d %v: merged result != direct:\n got %#v\nwant %#v",
				seed, spec, merged.Result(), direct.Result())
		}
	}
}

// checkQuantileBound asserts that the state's answer has true rank
// within epsilon of the target rank. quantCap=256 keeps worst-case rank
// error well under 2% at these sizes; 5% leaves deterministic headroom.
func checkQuantileBound(t *testing.T, seed int64, q float64, st State, vals []value.Value, label string) {
	t.Helper()
	var sorted []float64
	for _, v := range vals {
		if f, ok := v.AsFloat(); ok {
			sorted = append(sorted, f)
		}
	}
	slices.Sort(sorted)
	res := st.Result()
	got, ok := res.Value.AsFloat()
	if !ok {
		t.Fatalf("seed %d: %s quantile result not numeric: %#v", seed, label, res)
	}
	n := float64(len(sorted))
	// The answer's feasible rank range: [number of items < got,
	// number of items <= got].
	lo := float64(sort.SearchFloat64s(sorted, got))
	hi := float64(sort.SearchFloat64s(sorted, math.Nextafter(got, math.Inf(1))))
	if hi <= lo {
		t.Fatalf("seed %d: %s quantile answer %v is not a data point", seed, label, got)
	}
	target := q * n
	const eps = 0.05
	if hi < target-eps*n || lo > target+eps*n {
		t.Fatalf("seed %d: %s quantile rank [%v,%v] outside target %v ± %v",
			seed, label, lo, hi, target, eps*n)
	}
}

// checkTopKeysBound asserts the Misra-Gries guarantees: every reported
// count is an undercount by at most N/(K+1), and every key whose true
// frequency exceeds N/(K+1) is reported.
func checkTopKeysBound(t *testing.T, seed int64, k int, st State, vals []value.Value, label string) {
	t.Helper()
	truth := make(map[string]int64)
	var n int64
	for _, v := range vals {
		if v.IsValid() {
			truth[v.Key()]++
			n++
		}
	}
	bound := n / int64(k+1)
	res := st.Result()
	reported := make(map[string]int64, len(res.Counts))
	for _, kc := range res.Counts {
		reported[kc.Key] = kc.Count
		tc, ok := truth[kc.Key]
		if !ok {
			t.Fatalf("seed %d: %s reported phantom key %q", seed, label, kc.Key)
		}
		if kc.Count > tc || kc.Count < tc-bound {
			t.Fatalf("seed %d: %s key %q count %d outside [%d, %d]",
				seed, label, kc.Key, kc.Count, tc-bound, tc)
		}
	}
	for key, tc := range truth {
		if tc > bound {
			if _, ok := reported[key]; !ok {
				t.Fatalf("seed %d: %s heavy hitter %q (count %d > N/(K+1)=%d) missing",
					seed, label, key, tc, bound)
			}
		}
	}
}

// TestRecyclePoolRoundTripAllKinds dirties a state of every registered
// kind, recycles it, and checks that (a) the next state the pool hands
// out is indistinguishable from a factory-fresh one, and (b) parameter
// fields (K, Q) are re-stamped from the requesting spec, not inherited
// from the recycled carcass.
func TestRecyclePoolRoundTripAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			spec := specFor(kind)
			dirty := spec.New()
			for i := 0; i < 400; i++ {
				dirty.Add(ids.FromKey(fmt.Sprintf("rc-%d", i)), value.Int(int64(i%60)))
			}
			Recycle(dirty)
			got := spec.New()
			if got.Nodes() != 0 {
				t.Fatalf("pooled state not empty: %d nodes", got.Nodes())
			}
			want := registry[kind].newState(spec)
			if !reflect.DeepEqual(got.Result(), want.Result()) {
				t.Fatalf("pooled empty result differs from fresh:\n got %#v\nwant %#v",
					got.Result(), want.Result())
			}
			// Ingest equivalence after recycling.
			for i := 0; i < 50; i++ {
				v := value.Int(int64(i % 7))
				node := ids.FromKey(fmt.Sprintf("rc2-%d", i))
				got.Add(node, v)
				want.Add(node, v)
			}
			if !reflect.DeepEqual(got.Result(), want.Result()) {
				t.Fatalf("recycled state diverged after ingest:\n got %#v\nwant %#v",
					got.Result(), want.Result())
			}
			Recycle(got)
			// Parameter re-stamp: request a different K/Q from the pool.
			switch kind {
			case KindTopK, KindTopKeys:
				spec2 := Spec{Kind: kind, K: spec.K + 3}
				re := spec2.New()
				switch s := re.(type) {
				case *TopKState:
					if s.K != spec2.K {
						t.Fatalf("pooled TopKState K = %d, want %d", s.K, spec2.K)
					}
				case *TopKeysState:
					if s.K != spec2.K {
						t.Fatalf("pooled TopKeysState K = %d, want %d", s.K, spec2.K)
					}
				}
				Recycle(re)
			case KindQuantile:
				spec2 := Spec{Kind: kind, Q: 0.5}
				re := spec2.New()
				if s, ok := re.(*QuantileState); ok && s.Q != 0.5 {
					t.Fatalf("pooled QuantileState Q = %v, want 0.5", s.Q)
				}
				Recycle(re)
			}
		})
	}
}
