package aggregate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

// Statistical error-bound tests: the sketches' approximation contracts,
// checked across ≥ 20 seeds each. Everything here is deterministic —
// fixed seeds through math/rand's stable Go 1 source — so the bounds
// are chosen against theory (with headroom), not tuned to flakiness.

// hllStdErr is the HyperLogLog standard error for hllM registers.
var hllStdErr = 1.04 / math.Sqrt(float64(hllM))

// ingestPartitioned splits vals across parts leaf states and merges
// them in a random tree shape, as an aggregation tree would.
func ingestPartitioned(t *testing.T, rng *rand.Rand, spec Spec, vals []value.Value, parts int) State {
	t.Helper()
	states := make([]State, parts)
	for i := range states {
		states[i] = spec.New()
	}
	for i, v := range vals {
		states[rng.Intn(parts)].Add(ids.FromKey(fmt.Sprintf("ip-%d", i)), v)
	}
	return reduceRandom(t, rng, states)
}

// TestHLLErrorBound checks dcount's relative error against the theory:
// each seed's estimate within 3σ of truth (σ = 1.04/√m ≈ 2.3% at
// m=2048), and the root-mean-square error across seeds within ~1.3σ —
// i.e. the estimator is actually performing at its advertised accuracy,
// not just squeaking under a loose cap.
func TestHLLErrorBound(t *testing.T) {
	const seeds = 25
	var sumSq float64
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		truth := 3000 + rng.Intn(30000)
		vals := make([]value.Value, 0, truth)
		base := seed * 1_000_000
		for i := 0; i < truth; i++ {
			vals = append(vals, value.Int(base+int64(i)))
		}
		st := ingestPartitioned(t, rng, Spec{Kind: KindDCount}, vals, 1+rng.Intn(64))
		est, _ := st.Result().Value.AsFloat()
		relErr := (est - float64(truth)) / float64(truth)
		if math.Abs(relErr) > 3*hllStdErr {
			t.Errorf("seed %d: cardinality %d estimated %v (rel err %.4f > 3σ=%.4f)",
				seed, truth, est, relErr, 3*hllStdErr)
		}
		sumSq += relErr * relErr
	}
	if rms := math.Sqrt(sumSq / seeds); rms > 1.3*hllStdErr {
		t.Errorf("rms relative error %.4f across %d seeds, want ≤ 1.3σ = %.4f",
			rms, seeds, 1.3*hllStdErr)
	}
}

// TestHLLSmallRange checks the linear-counting regime: at leaf scale
// (what every per-node epoch report holds) the estimate is essentially
// exact, and the state stays in its cheap sparse form.
func TestHLLSmallRange(t *testing.T) {
	for _, truth := range []int{1, 2, 10, 50, hllSparseLimit - 1} {
		st := &DCountState{}
		for i := 0; i < truth; i++ {
			st.Add(ids.FromKey("n"), value.Int(int64(i)))
		}
		if st.Dense != nil {
			t.Fatalf("cardinality %d promoted to dense below the sparse limit", truth)
		}
		est, _ := st.Result().Value.AsInt()
		if diff := math.Abs(float64(est) - float64(truth)); diff > 1+0.02*float64(truth) {
			t.Errorf("cardinality %d estimated %d", truth, est)
		}
	}
}

// TestHLLPromotionEquivalence checks that sparse→dense promotion is
// representation-only: a dense-promoted state, a never-promoted ingest
// of the same values, and every sparse/dense merge combination all
// report the identical estimate.
func TestHLLPromotionEquivalence(t *testing.T) {
	mk := func(lo, hi int) *DCountState {
		st := &DCountState{}
		for i := lo; i < hi; i++ {
			st.Add(ids.FromKey("n"), value.Int(int64(i)))
		}
		return st
	}
	big := mk(0, 4000) // promoted
	if big.Dense == nil {
		t.Fatal("4000 distinct values did not promote")
	}
	small := mk(0, 100) // sparse
	if small.Dense != nil {
		t.Fatal("100 distinct values promoted")
	}
	// Subset merge must not change the estimate (registers are maxes).
	before := big.Result()
	if err := big.Merge(small); err != nil {
		t.Fatal(err)
	}
	if got := big.Result(); got.Value != before.Value {
		t.Errorf("merging a subset changed the estimate: %v -> %v", before.Value, got.Value)
	}
	// sparse.Merge(dense) forces promotion and must equal dense-side
	// ingest of the union.
	sp := mk(4000, 4100)
	if err := sp.Merge(mk(0, 4000)); err != nil {
		t.Fatal(err)
	}
	direct := mk(0, 4100)
	if sp.Result().Value != direct.Result().Value {
		t.Errorf("sparse∪dense merge %v != direct %v", sp.Result().Value, direct.Result().Value)
	}
}

// TestQuantileErrorBound checks rank error over merge trees: for q in
// {0.5, 0.95, 0.99}, the answer's true rank stays within 2% of target
// across ≥ 20 seeds, at N well past several compaction cascades.
func TestQuantileErrorBound(t *testing.T) {
	const (
		seeds = 21
		n     = 20000
		eps   = 0.02
	)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		q := q
		t.Run(fmt.Sprintf("q%v", q), func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(7000 + seed))
				vals := make([]value.Value, n)
				sorted := make([]float64, n)
				for i := range vals {
					// Heavy-tailed latencies: the regime p99 exists for.
					f := math.Exp(rng.NormFloat64())
					vals[i] = value.Float(f)
					sorted[i] = f
				}
				sort.Float64s(sorted)
				st := ingestPartitioned(t, rng, Spec{Kind: KindQuantile, Q: q}, vals, 1+rng.Intn(200))
				got, ok := st.Result().Value.AsFloat()
				if !ok {
					t.Fatalf("seed %d: non-numeric quantile result", seed)
				}
				lo := float64(sort.SearchFloat64s(sorted, got))
				hi := float64(sort.SearchFloat64s(sorted, math.Nextafter(got, math.Inf(1))))
				target := q * n
				if hi < target-eps*n || lo > target+eps*n {
					t.Errorf("seed %d q=%v: answer rank [%v,%v], target %v ± %v",
						seed, q, lo, hi, target, eps*n)
				}
			}
		})
	}
}

// TestTopKeysErrorBound checks Misra-Gries on a Zipf workload across
// ≥ 20 seeds: reported counts undercount truth by at most N/(K+1), the
// head of the distribution is always reported, and the top-1 key is
// ranked first.
func TestTopKeysErrorBound(t *testing.T) {
	const (
		seeds = 21
		n     = 20000
		k     = 8
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(3000 + seed))
		zipf := rand.NewZipf(rng, 1.3, 1, 5000)
		truth := make(map[string]int64)
		vals := make([]value.Value, n)
		for i := range vals {
			v := value.Int(int64(zipf.Uint64()))
			vals[i] = v
			truth[v.Key()]++
		}
		st := ingestPartitioned(t, rng, Spec{Kind: KindTopKeys, K: k}, vals, 1+rng.Intn(100))
		res := st.Result()
		bound := int64(n) / int64(k+1)
		seen := make(map[string]bool, len(res.Counts))
		for i, kc := range res.Counts {
			seen[kc.Key] = true
			tc := truth[kc.Key]
			if kc.Count > tc || kc.Count < tc-bound {
				t.Errorf("seed %d: key %q count %d outside [%d, %d]",
					seed, kc.Key, kc.Count, tc-bound, tc)
			}
			if i > 0 && kc.Count > res.Counts[i-1].Count {
				t.Errorf("seed %d: counts not sorted at %d", seed, i)
			}
		}
		for key, tc := range truth {
			if tc > bound && !seen[key] {
				t.Errorf("seed %d: heavy hitter %q (count %d > %d) missing", seed, key, tc, bound)
			}
		}
		// Zipf(1.3) concentrates ~30%+ of mass on key "0"; the sketch
		// must both report it and rank it first.
		if len(res.Counts) == 0 || res.Counts[0].Key != "0" {
			t.Errorf("seed %d: top key = %v, want 0", seed, res.Counts)
		}
	}
}

// TestUnionCollectSpill pins the cap-with-spill contracts: the SetCap
// smallest keys (union) / node IDs (collect) survive exactly, the spill
// is flagged (union) or exactly countable (collect), and survivors are
// identical whether ingested directly or merged from partitions.
func TestUnionCollectSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := SetCap * 3
	vals := make([]value.Value, n)
	for i := range vals {
		vals[i] = value.Str(fmt.Sprintf("key-%04d", rng.Intn(1000)))
	}
	t.Run("union", func(t *testing.T) {
		st := ingestPartitioned(t, rand.New(rand.NewSource(12)), Spec{Kind: KindUnion}, vals, 16)
		u := st.(*UnionState)
		if len(u.Keys) != SetCap || !u.Dropped {
			t.Fatalf("union kept %d keys, dropped=%v; want %d, true", len(u.Keys), u.Dropped, SetCap)
		}
		distinct := map[string]bool{}
		for _, v := range vals {
			distinct[v.Key()] = true
		}
		all := make([]string, 0, len(distinct))
		for k := range distinct {
			all = append(all, k)
		}
		sort.Strings(all)
		for i, k := range u.Keys {
			if k != all[i] {
				t.Fatalf("survivor %d = %q, want %q (the %d smallest keys exactly)", i, k, all[i], SetCap)
			}
		}
		if got, want := u.Nodes(), int64(n); got != want {
			t.Fatalf("union N = %d, want %d", got, want)
		}
	})
	t.Run("collect", func(t *testing.T) {
		st := ingestPartitioned(t, rand.New(rand.NewSource(13)), Spec{Kind: KindCollect}, vals, 16)
		c := st.(*CollectState)
		if len(c.Entries) != SetCap {
			t.Fatalf("collect kept %d entries, want %d", len(c.Entries), SetCap)
		}
		if got := c.Result(); got.Value != value.Int(int64(n)) {
			t.Fatalf("collect total = %v, want %d (spilled = N - kept = %d)",
				got.Value, n, n-SetCap)
		}
		// Survivors are the smallest node IDs, in order.
		for i := 1; i < len(c.Entries); i++ {
			if !ids.Less(c.Entries[i-1].Node, c.Entries[i].Node) {
				t.Fatalf("collect entries not in node-ID order at %d", i)
			}
		}
	})
	t.Run("union-under-cap", func(t *testing.T) {
		st := Spec{Kind: KindUnion}.New()
		st.Add(ids.FromKey("a"), value.Int(2))
		st.Add(ids.FromKey("b"), value.Int(1))
		st.Add(ids.FromKey("c"), value.Int(2)) // duplicate key
		u := st.(*UnionState)
		if len(u.Keys) != 2 || u.Dropped {
			t.Fatalf("union = %v dropped=%v, want 2 keys kept", u.Keys, u.Dropped)
		}
		if got := u.Result(); got.Value != value.Int(2) || len(got.Entries) != 2 {
			t.Fatalf("union result = %v", got)
		}
	})
}

// TestSketchStateBounded pins the headline property the bench figure
// measures: sketch state size is bounded as cardinality grows, where
// the exact enum equivalent grows linearly. The proxy here is the
// in-memory footprint of the mergeable pieces (registers, compactor
// slots, counters) rather than wire bytes — the experiment publishes
// the gob-encoded version of the same fact.
func TestSketchStateBounded(t *testing.T) {
	cards := []int{1000, 10000, 50000}
	sizes := make([]int, len(cards))
	for ci, card := range cards {
		st := &DCountState{}
		for i := 0; i < card; i++ {
			st.Add(ids.FromKey("n"), value.Int(int64(i)))
		}
		switch {
		case st.Dense != nil:
			sizes[ci] = len(st.Dense)
		default:
			sizes[ci] = 3 * len(st.Sparse)
		}
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > hllM {
			t.Fatalf("dcount state at cardinality %d = %d bytes, want ≤ %d", cards[i], sizes[i], hllM)
		}
	}
	// Quantile: levels stay capped.
	qs := &QuantileState{Q: 0.99}
	for i := 0; i < 100000; i++ {
		qs.Add(ids.FromKey("n"), value.Float(float64(i)))
	}
	items := 0
	for _, lvl := range qs.Levels {
		if len(lvl) > quantCap {
			t.Fatalf("quantile level over cap: %d > %d", len(lvl), quantCap)
		}
		items += len(lvl)
	}
	if items > quantCap*len(qs.Levels) {
		t.Fatalf("quantile holds %d items across %d levels", items, len(qs.Levels))
	}
	// Misra-Gries: at most K counters, ever.
	ts := &TopKeysState{K: 8}
	for i := 0; i < 100000; i++ {
		ts.Add(ids.FromKey("n"), value.Int(int64(i%5000)))
		if len(ts.Counts) > 8 {
			t.Fatalf("topkeys holds %d counters, want ≤ 8", len(ts.Counts))
		}
	}
}

// TestParseSpecArgTable is the accept/reject table for the aggregate
// function grammar, two-argument forms included.
func TestParseSpecArgTable(t *testing.T) {
	accept := []struct {
		name, arg string
		want      Spec
	}{
		{"sum", "", Spec{Kind: KindSum}},
		{"dcount", "", Spec{Kind: KindDCount}},
		{"countdistinct", "", Spec{Kind: KindDCount}},
		{"union", "", Spec{Kind: KindUnion}},
		{"collect", "", Spec{Kind: KindCollect}},
		{"top3", "", Spec{Kind: KindTopK, K: 3}},
		{"topkeys", "", Spec{Kind: KindTopKeys, K: DefaultTopKeys}},
		{"topkeys", "5", Spec{Kind: KindTopKeys, K: 5}},
		{"topkeys5", "", Spec{Kind: KindTopKeys, K: 5}},
		{"quantile", "0.99", Spec{Kind: KindQuantile, Q: 0.99}},
		{"percentile", "0.5", Spec{Kind: KindQuantile, Q: 0.5}},
		{"p99", "", Spec{Kind: KindQuantile, Q: 0.99}},
		{"p99.9", "", Spec{Kind: KindQuantile, Q: 0.999}},
		{"p50", "", Spec{Kind: KindQuantile, Q: 0.5}},
		{"P95", "", Spec{Kind: KindQuantile, Q: 0.95}},
	}
	for _, tc := range accept {
		got, err := ParseSpecArg(tc.name, tc.arg)
		if err != nil || got != tc.want {
			t.Errorf("ParseSpecArg(%q, %q) = %v, %v; want %v", tc.name, tc.arg, got, err, tc.want)
		}
	}
	reject := []struct{ name, arg string }{
		{"quantile", ""},    // rank required
		{"quantile", "0"},   // rank out of range
		{"quantile", "1"},   // rank out of range
		{"quantile", "1.5"}, // rank out of range
		{"quantile", "x"},   // not a number
		{"topkeys", "0"},    // non-positive k
		{"topkeys", "-2"},   // non-positive k
		{"topkeys", "2.5"},  // not an int
		{"topkeys0", ""},    // non-positive k
		{"sum", "3"},        // sum takes no argument
		{"dcount", "7"},     // dcount takes no argument
		{"p0", ""},          // percentile out of range
		{"p100", ""},        // percentile out of range
		{"p", ""},           // bare p is not a percentile
		{"pxx", ""},         // not a number
		{"top0", ""},        // non-positive k
		{"nosuchagg", ""},   // unknown function
		{"top3", "4"},       // prefix forms take no argument
	}
	for _, tc := range reject {
		if got, err := ParseSpecArg(tc.name, tc.arg); err == nil {
			t.Errorf("ParseSpecArg(%q, %q) = %v, want error", tc.name, tc.arg, got)
		}
	}
}

// TestQuantileSpecCanonical pins the canonicalization contract the
// service layer's subsumption sharing rides on: every spelling of the
// same quantile builds the identical Spec (bit-equal Q) and renders to
// the same canonical string, which itself re-parses.
func TestQuantileSpecCanonical(t *testing.T) {
	cases := []struct {
		a     Spec
		b     Spec
		canon string
	}{
		{mustSpec(t, "p99", ""), mustSpec(t, "quantile", "0.99"), "p99"},
		{mustSpec(t, "p99.9", ""), mustSpec(t, "quantile", "0.999"), "p99.9"},
		{mustSpec(t, "p50", ""), mustSpec(t, "quantile", "0.5"), "p50"},
		{mustSpec(t, "p0.1", ""), mustSpec(t, "quantile", "0.001"), "p0.1"},
		{mustSpec(t, "topkeys4", ""), mustSpec(t, "topkeys", "4"), "topkeys4"},
	}
	for _, tc := range cases {
		if tc.a != tc.b {
			t.Errorf("specs differ: %#v vs %#v", tc.a, tc.b)
		}
		if got := tc.a.String(); got != tc.canon {
			t.Errorf("canonical form = %q, want %q", got, tc.canon)
		}
		back, err := ParseSpec(tc.a.String())
		if err != nil || back != tc.a {
			t.Errorf("canonical %q did not round-trip: %v, %v", tc.a.String(), back, err)
		}
	}
}

func mustSpec(t *testing.T, name, arg string) Spec {
	t.Helper()
	s, err := ParseSpecArg(name, arg)
	if err != nil {
		t.Fatalf("ParseSpecArg(%q, %q): %v", name, arg, err)
	}
	return s
}

// TestSpecValidate covers programmatic construction the parser can't
// produce.
func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{Kind: KindSum}, {Kind: KindDCount}, {Kind: KindQuantile, Q: 0.99},
		{Kind: KindTopK, K: 1}, {Kind: KindTopKeys, K: 4},
		{Kind: KindUnion}, {Kind: KindCollect},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", s, err)
		}
	}
	bad := []Spec{
		{Kind: KindInvalid},
		{Kind: Kind(200)},
		{Kind: KindQuantile},          // Q unset
		{Kind: KindQuantile, Q: 1},    // boundary
		{Kind: KindQuantile, Q: -0.5}, // negative
		{Kind: KindTopK},              // K unset
		{Kind: KindTopKeys, K: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%v) = nil, want error", s)
		}
	}
}
