// Columnar wire codec for aggregate states — the hand-rolled binary
// encoding the TCP transport ships instead of reflection-driven gob.
// Every State kind gets a one-byte tag and a compact body; the keyed
// GroupedState — the payload of every epoch report and query response —
// encodes its keys as one length-prefixed column and its per-key
// sub-states as per-kind value vectors (validity bytes, varint counts,
// fixed-width floats), so a 16-group AVG report is a few hundred bytes
// of straight-line appends instead of a gob type-descriptor dance.
//
// Decoding is the exact inverse and is shape-faithful: nil vs empty
// slices and maps survive (wirefmt's length+1 convention), so a decoded
// state DeepEquals the encoded one — the cross-codec equivalence sweep
// in internal/transport holds every registered kind to that bar.
// All readers are bounds-checked; arbitrary input errors cleanly.
package aggregate

import (
	"fmt"
	"sort"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
	"github.com/moara/moara/internal/wirefmt"
)

// State tags. Leaf kinds reuse their Kind byte; the keyed container and
// the nil state get tags outside the Kind range. (Tag 255 is reserved
// for a gob-wrapped fallback at the message layer — see internal/core.)
const (
	wireNilState  = 0
	wireGrouped   = 100
	maxStateDepth = 6 // nesting bound: Grouped→Other→... on hostile input
)

// AppendSpec appends a Spec (kind byte, varint K, float Q). The zero
// Spec encodes as kind 0 and round-trips, so zero-value states survive.
func AppendSpec(b []byte, s Spec) []byte {
	b = append(b, byte(s.Kind))
	b = wirefmt.AppendVarint(b, int64(s.K))
	return wirefmt.AppendFloat(b, s.Q)
}

// ReadSpec decodes one AppendSpec-encoded Spec. Unregistered non-zero
// kinds are corrupt (a decoder must never manufacture states it cannot
// construct).
func ReadSpec(b []byte) (Spec, []byte, error) {
	k, b, err := wirefmt.Byte(b)
	if err != nil {
		return Spec{}, nil, err
	}
	kk, b, err := wirefmt.Varint(b)
	if err != nil {
		return Spec{}, nil, err
	}
	q, b, err := wirefmt.Float(b)
	if err != nil {
		return Spec{}, nil, err
	}
	s := Spec{Kind: Kind(k), K: int(kk), Q: q}
	if s.Kind != KindInvalid {
		if _, ok := registry[s.Kind]; !ok {
			return Spec{}, nil, fmt.Errorf("aggregate: wire spec kind %d: %w", k, wirefmt.ErrCorrupt)
		}
	}
	return s, b, nil
}

// AppendState appends one state (tag + body). A nil state is one byte.
// State implementations outside this package's registry report an
// error, which the message layer answers with its gob fallback.
func AppendState(b []byte, st State) ([]byte, error) {
	if st == nil {
		return append(b, wireNilState), nil
	}
	switch s := st.(type) {
	case *GroupedState:
		b = append(b, wireGrouped)
		return appendGroupedBody(b, s)
	case *SumState:
		return appendSumBody(append(b, byte(KindSum)), s), nil
	case *CountState:
		b = append(b, byte(KindCount))
		return wirefmt.AppendVarint(b, s.N), nil
	case *ExtremeState:
		k := KindMin
		if s.Max {
			k = KindMax
		}
		b = append(b, byte(k))
		return appendExtremeBody(b, s), nil
	case *AvgState:
		return appendSumBody(append(b, byte(KindAvg)), &s.Sum), nil
	case *TopKState:
		b = append(b, byte(KindTopK))
		b = wirefmt.AppendVarint(b, int64(s.K))
		b = wirefmt.AppendVarint(b, s.N)
		return appendEntries(b, s.Entries), nil
	case *EnumState:
		b = append(b, byte(KindEnum))
		return appendEntries(b, s.Entries), nil
	case *StdState:
		b = append(b, byte(KindStd))
		b = wirefmt.AppendVarint(b, s.N)
		b = wirefmt.AppendFloat(b, s.Sum)
		return wirefmt.AppendFloat(b, s.SumSq), nil
	case *DCountState:
		b = append(b, byte(KindDCount))
		return appendDCountBody(b, s), nil
	case *QuantileState:
		b = append(b, byte(KindQuantile))
		return appendQuantileBody(b, s), nil
	case *TopKeysState:
		b = append(b, byte(KindTopKeys))
		return appendTopKeysBody(b, s), nil
	case *UnionState:
		b = append(b, byte(KindUnion))
		b = wirefmt.AppendVarint(b, int64(s.Cap))
		b = wirefmt.AppendVarint(b, s.N)
		b = wirefmt.AppendBool(b, s.Dropped)
		b = wirefmt.AppendLen(b, len(s.Keys), s.Keys == nil)
		for _, k := range s.Keys {
			b = wirefmt.AppendString(b, k)
		}
		return appendEntries(b, s.Entries), nil
	case *CollectState:
		b = append(b, byte(KindCollect))
		b = wirefmt.AppendVarint(b, int64(s.Cap))
		b = wirefmt.AppendVarint(b, s.N)
		return appendEntries(b, s.Entries), nil
	}
	return b, fmt.Errorf("aggregate: no columnar encoding for %T", st)
}

// ReadState decodes one AppendState-encoded state, returning the
// unconsumed remainder. Arbitrary input errors cleanly: every count is
// bounds-checked against the remaining bytes before allocation, and
// container nesting is depth-limited.
func ReadState(b []byte) (State, []byte, error) {
	return readState(b, 0)
}

func readState(b []byte, depth int) (State, []byte, error) {
	if depth > maxStateDepth {
		return nil, nil, fmt.Errorf("aggregate: state nesting too deep: %w", wirefmt.ErrCorrupt)
	}
	tag, b, err := wirefmt.Byte(b)
	if err != nil {
		return nil, nil, err
	}
	switch tag {
	case wireNilState:
		return nil, b, nil
	case wireGrouped:
		return readGroupedBody(b, depth)
	case byte(KindSum):
		s := &SumState{}
		b, err := readSumBody(b, s)
		return s, b, err
	case byte(KindCount):
		n, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		return &CountState{N: n}, b, nil
	case byte(KindMin), byte(KindMax):
		return readExtremeBody(b, tag == byte(KindMax))
	case byte(KindAvg):
		s := &AvgState{}
		b, err := readSumBody(b, &s.Sum)
		return s, b, err
	case byte(KindTopK):
		k, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		n, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		es, b, err := readEntries(b)
		if err != nil {
			return nil, nil, err
		}
		return &TopKState{K: int(k), N: n, Entries: es}, b, nil
	case byte(KindEnum):
		es, b, err := readEntries(b)
		if err != nil {
			return nil, nil, err
		}
		return &EnumState{Entries: es}, b, nil
	case byte(KindStd):
		n, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		sum, b, err := wirefmt.Float(b)
		if err != nil {
			return nil, nil, err
		}
		sq, b, err := wirefmt.Float(b)
		if err != nil {
			return nil, nil, err
		}
		return &StdState{N: n, Sum: sum, SumSq: sq}, b, nil
	case byte(KindDCount):
		return readDCountBody(b)
	case byte(KindQuantile):
		return readQuantileBody(b)
	case byte(KindTopKeys):
		return readTopKeysBody(b)
	case byte(KindUnion):
		return readUnionBody(b)
	case byte(KindCollect):
		cap_, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		n, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		es, b, err := readEntries(b)
		if err != nil {
			return nil, nil, err
		}
		return &CollectState{Cap: int(cap_), N: n, Entries: es}, b, nil
	}
	return nil, nil, fmt.Errorf("aggregate: wire state tag %d: %w", tag, wirefmt.ErrCorrupt)
}

// ---------------------------------------------------------------------
// Leaf bodies

func appendSumBody(b []byte, s *SumState) []byte {
	b = wirefmt.AppendBool(b, s.Valid)
	b = wirefmt.AppendVarint(b, s.N)
	if s.Valid {
		b = s.V.AppendWire(b)
	}
	return b
}

func readSumBody(b []byte, s *SumState) ([]byte, error) {
	valid, b, err := wirefmt.Bool(b)
	if err != nil {
		return nil, err
	}
	n, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, err
	}
	s.Valid, s.N = valid, n
	if valid {
		s.V, b, err = value.ReadWire(b)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

func appendExtremeBody(b []byte, s *ExtremeState) []byte {
	b = wirefmt.AppendBool(b, s.Valid)
	b = wirefmt.AppendVarint(b, s.N)
	if s.Valid {
		b = append(b, s.Best.Node[:]...)
		b = s.Best.Value.AppendWire(b)
	}
	return b
}

func readExtremeBody(b []byte, max bool) (State, []byte, error) {
	valid, b, err := wirefmt.Bool(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	s := &ExtremeState{Max: max, Valid: valid, N: n}
	if valid {
		raw, rest, err := wirefmt.Bytes(b, ids.Bytes)
		if err != nil {
			return nil, nil, err
		}
		copy(s.Best.Node[:], raw)
		s.Best.Value, b, err = value.ReadWire(rest)
		if err != nil {
			return nil, nil, err
		}
	}
	return s, b, nil
}

func appendDCountBody(b []byte, s *DCountState) []byte {
	b = wirefmt.AppendVarint(b, s.N)
	b = wirefmt.AppendLen(b, len(s.Sparse), s.Sparse == nil)
	if len(s.Sparse) > 0 {
		idxs := make([]int, 0, len(s.Sparse))
		for idx := range s.Sparse {
			idxs = append(idxs, int(idx))
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			b = wirefmt.AppendUvarint(b, uint64(idx))
		}
		for _, idx := range idxs {
			b = append(b, s.Sparse[uint16(idx)])
		}
	}
	b = wirefmt.AppendLen(b, len(s.Dense), s.Dense == nil)
	return append(b, s.Dense...)
}

func readDCountBody(b []byte) (State, []byte, error) {
	n, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	s := &DCountState{N: n}
	cnt, isNil, b, err := wirefmt.Len(b, 2)
	if err != nil {
		return nil, nil, err
	}
	if !isNil {
		s.Sparse = make(map[uint16]uint8, cnt)
		idxs := make([]uint16, cnt)
		for i := range idxs {
			v, rest, err := wirefmt.Uvarint(b)
			if err != nil {
				return nil, nil, err
			}
			if v >= hllM {
				return nil, nil, fmt.Errorf("aggregate: HLL index %d: %w", v, wirefmt.ErrCorrupt)
			}
			idxs[i], b = uint16(v), rest
		}
		rhos, rest, err := wirefmt.Bytes(b, cnt)
		if err != nil {
			return nil, nil, err
		}
		b = rest
		for i, idx := range idxs {
			s.Sparse[idx] = rhos[i]
		}
	}
	dn, isNil, b, err := wirefmt.Len(b, 1)
	if err != nil {
		return nil, nil, err
	}
	if !isNil {
		if dn != hllM {
			return nil, nil, fmt.Errorf("aggregate: dense HLL length %d: %w", dn, wirefmt.ErrCorrupt)
		}
		raw, rest, err := wirefmt.Bytes(b, dn)
		if err != nil {
			return nil, nil, err
		}
		s.Dense = append([]uint8(nil), raw...)
		b = rest
	}
	return s, b, nil
}

func appendQuantileBody(b []byte, s *QuantileState) []byte {
	b = wirefmt.AppendFloat(b, s.Q)
	b = wirefmt.AppendVarint(b, s.N)
	b = wirefmt.AppendUvarint(b, s.Coin)
	b = wirefmt.AppendLen(b, len(s.Levels), s.Levels == nil)
	for _, lvl := range s.Levels {
		b = wirefmt.AppendLen(b, len(lvl), lvl == nil)
		for _, f := range lvl {
			b = wirefmt.AppendFloat(b, f)
		}
	}
	return b
}

func readQuantileBody(b []byte) (State, []byte, error) {
	q, b, err := wirefmt.Float(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	coin, b, err := wirefmt.Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	s := &QuantileState{Q: q, N: n, Coin: coin}
	nl, isNil, b, err := wirefmt.Len(b, 1)
	if err != nil {
		return nil, nil, err
	}
	if !isNil {
		s.Levels = make([][]float64, nl)
		for i := range s.Levels {
			cnt, lvlNil, rest, err := wirefmt.Len(b, 8)
			if err != nil {
				return nil, nil, err
			}
			b = rest
			if lvlNil {
				continue
			}
			lvl := make([]float64, cnt)
			for j := range lvl {
				lvl[j], b, err = wirefmt.Float(b)
				if err != nil {
					return nil, nil, err
				}
			}
			s.Levels[i] = lvl
		}
	}
	return s, b, nil
}

func appendTopKeysBody(b []byte, s *TopKeysState) []byte {
	b = wirefmt.AppendVarint(b, int64(s.K))
	b = wirefmt.AppendVarint(b, s.N)
	b = wirefmt.AppendLen(b, len(s.Counts), s.Counts == nil)
	if len(s.Counts) > 0 {
		keys := make([]string, 0, len(s.Counts))
		for k := range s.Counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = wirefmt.AppendString(b, k)
		}
		for _, k := range keys {
			b = wirefmt.AppendVarint(b, s.Counts[k])
		}
	}
	return b
}

func readTopKeysBody(b []byte) (State, []byte, error) {
	k, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	s := &TopKeysState{K: int(k), N: n}
	cnt, isNil, b, err := wirefmt.Len(b, 2)
	if err != nil {
		return nil, nil, err
	}
	if !isNil {
		s.Counts = make(map[string]int64, cnt)
		keys := make([]string, cnt)
		for i := range keys {
			keys[i], b, err = wirefmt.String(b)
			if err != nil {
				return nil, nil, err
			}
		}
		for _, key := range keys {
			var c int64
			c, b, err = wirefmt.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			s.Counts[key] = c
		}
	}
	return s, b, nil
}

func readUnionBody(b []byte) (State, []byte, error) {
	cap_, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	dropped, b, err := wirefmt.Bool(b)
	if err != nil {
		return nil, nil, err
	}
	s := &UnionState{Cap: int(cap_), N: n, Dropped: dropped}
	nk, isNil, b, err := wirefmt.Len(b, 1)
	if err != nil {
		return nil, nil, err
	}
	if !isNil {
		s.Keys = make([]string, nk)
		for i := range s.Keys {
			s.Keys[i], b, err = wirefmt.String(b)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	s.Entries, b, err = readEntries(b)
	if err != nil {
		return nil, nil, err
	}
	return s, b, nil
}

// ---------------------------------------------------------------------
// Entry columns: node IDs back to back, then values back to back.

func appendEntries(b []byte, es []Entry) []byte {
	b = wirefmt.AppendLen(b, len(es), es == nil)
	for _, e := range es {
		b = append(b, e.Node[:]...)
	}
	for _, e := range es {
		b = e.Value.AppendWire(b)
	}
	return b
}

func readEntries(b []byte) ([]Entry, []byte, error) {
	n, isNil, b, err := wirefmt.Len(b, ids.Bytes+1)
	if err != nil {
		return nil, nil, err
	}
	if isNil {
		return nil, b, nil
	}
	es := make([]Entry, n)
	for i := range es {
		raw, rest, err := wirefmt.Bytes(b, ids.Bytes)
		if err != nil {
			return nil, nil, err
		}
		copy(es[i].Node[:], raw)
		b = rest
	}
	for i := range es {
		es[i].Value, b, err = value.ReadWire(b)
		if err != nil {
			return nil, nil, err
		}
	}
	return es, b, nil
}

// ---------------------------------------------------------------------
// GroupedState: the hot container. Keys ship as one sorted column;
// sub-states ship as per-kind value vectors for the fixed-width numeric
// kinds (SUM/COUNT/MIN/MAX/AVG/STD — the overwhelming majority of epoch
// report traffic), and as self-delimiting tagged states for the
// list/sketch kinds.

func appendGroupedBody(b []byte, g *GroupedState) ([]byte, error) {
	b = AppendSpec(b, g.Spec)
	b = wirefmt.AppendVarint(b, int64(g.Cap))
	b = wirefmt.AppendVarint(b, g.Spilled)
	b, err := AppendState(b, g.Other)
	if err != nil {
		return nil, err
	}
	b = wirefmt.AppendLen(b, len(g.Groups), g.Groups == nil)
	if len(g.Groups) == 0 {
		return b, nil
	}
	keys := g.Keys()
	for _, k := range keys {
		b = wirefmt.AppendString(b, k)
	}
	switch g.Spec.Kind {
	case KindSum, KindAvg:
		sums := make([]*SumState, len(keys))
		for i, k := range keys {
			s, err := sumOf(g.Groups[k], g.Spec.Kind)
			if err != nil {
				return nil, err
			}
			sums[i] = s
		}
		for _, s := range sums {
			b = wirefmt.AppendBool(b, s.Valid)
		}
		for _, s := range sums {
			b = wirefmt.AppendVarint(b, s.N)
		}
		for _, s := range sums {
			if s.Valid {
				b = s.V.AppendWire(b)
			}
		}
	case KindCount:
		for _, k := range keys {
			s, ok := g.Groups[k].(*CountState)
			if !ok {
				return nil, fmt.Errorf("aggregate: grouped count holds %T", g.Groups[k])
			}
			b = wirefmt.AppendVarint(b, s.N)
		}
	case KindMin, KindMax:
		exts := make([]*ExtremeState, len(keys))
		for i, k := range keys {
			s, ok := g.Groups[k].(*ExtremeState)
			if !ok {
				return nil, fmt.Errorf("aggregate: grouped extreme holds %T", g.Groups[k])
			}
			exts[i] = s
		}
		for _, s := range exts {
			b = wirefmt.AppendBool(b, s.Valid)
		}
		for _, s := range exts {
			b = wirefmt.AppendVarint(b, s.N)
		}
		for _, s := range exts {
			if s.Valid {
				b = append(b, s.Best.Node[:]...)
			}
		}
		for _, s := range exts {
			if s.Valid {
				b = s.Best.Value.AppendWire(b)
			}
		}
	case KindStd:
		stds := make([]*StdState, len(keys))
		for i, k := range keys {
			s, ok := g.Groups[k].(*StdState)
			if !ok {
				return nil, fmt.Errorf("aggregate: grouped std holds %T", g.Groups[k])
			}
			stds[i] = s
		}
		for _, s := range stds {
			b = wirefmt.AppendVarint(b, s.N)
		}
		for _, s := range stds {
			b = wirefmt.AppendFloat(b, s.Sum)
		}
		for _, s := range stds {
			b = wirefmt.AppendFloat(b, s.SumSq)
		}
	default:
		for _, k := range keys {
			b, err = AppendState(b, g.Groups[k])
			if err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

// sumOf extracts the SumState behind a grouped SUM or AVG slot.
func sumOf(st State, kind Kind) (*SumState, error) {
	if kind == KindAvg {
		a, ok := st.(*AvgState)
		if !ok {
			return nil, fmt.Errorf("aggregate: grouped avg holds %T", st)
		}
		return &a.Sum, nil
	}
	s, ok := st.(*SumState)
	if !ok {
		return nil, fmt.Errorf("aggregate: grouped sum holds %T", st)
	}
	return s, nil
}

func readGroupedBody(b []byte, depth int) (State, []byte, error) {
	spec, b, err := ReadSpec(b)
	if err != nil {
		return nil, nil, err
	}
	cap_, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	spilled, b, err := wirefmt.Varint(b)
	if err != nil {
		return nil, nil, err
	}
	other, b, err := readState(b, depth+1)
	if err != nil {
		return nil, nil, err
	}
	n, isNil, b, err := wirefmt.Len(b, 1)
	if err != nil {
		return nil, nil, err
	}
	if isNil {
		return &GroupedState{Spec: spec, Cap: int(cap_), Spilled: spilled, Other: other}, b, nil
	}
	if spec.Kind == KindInvalid && n > 0 {
		return nil, nil, fmt.Errorf("aggregate: grouped keys without a spec: %w", wirefmt.ErrCorrupt)
	}
	// The grouped shell (and its cleared key map) comes from the decode
	// pool; sub-states are built fresh from the columns below.
	g := NewGroupedSized(spec, int(cap_), n)
	g.Spilled, g.Other = spilled, other
	keys := make([]string, n)
	for i := range keys {
		keys[i], b, err = wirefmt.String(b)
		if err != nil {
			return nil, nil, err
		}
	}
	switch spec.Kind {
	case KindSum, KindAvg:
		valid := make([]bool, n)
		for i := range valid {
			valid[i], b, err = wirefmt.Bool(b)
			if err != nil {
				return nil, nil, err
			}
		}
		ns := make([]int64, n)
		for i := range ns {
			ns[i], b, err = wirefmt.Varint(b)
			if err != nil {
				return nil, nil, err
			}
		}
		for i, k := range keys {
			sum := SumState{Valid: valid[i], N: ns[i]}
			if valid[i] {
				sum.V, b, err = value.ReadWire(b)
				if err != nil {
					return nil, nil, err
				}
			}
			if spec.Kind == KindAvg {
				g.Groups[k] = &AvgState{Sum: sum}
			} else {
				s := sum
				g.Groups[k] = &s
			}
		}
	case KindCount:
		for _, k := range keys {
			var cn int64
			cn, b, err = wirefmt.Varint(b)
			if err != nil {
				return nil, nil, err
			}
			g.Groups[k] = &CountState{N: cn}
		}
	case KindMin, KindMax:
		exts := make([]*ExtremeState, n)
		for i := range exts {
			exts[i] = &ExtremeState{Max: spec.Kind == KindMax}
			exts[i].Valid, b, err = wirefmt.Bool(b)
			if err != nil {
				return nil, nil, err
			}
		}
		for _, s := range exts {
			s.N, b, err = wirefmt.Varint(b)
			if err != nil {
				return nil, nil, err
			}
		}
		for _, s := range exts {
			if s.Valid {
				raw, rest, err := wirefmt.Bytes(b, ids.Bytes)
				if err != nil {
					return nil, nil, err
				}
				copy(s.Best.Node[:], raw)
				b = rest
			}
		}
		for i, s := range exts {
			if s.Valid {
				s.Best.Value, b, err = value.ReadWire(b)
				if err != nil {
					return nil, nil, err
				}
			}
			g.Groups[keys[i]] = s
		}
	case KindStd:
		stds := make([]*StdState, n)
		for i := range stds {
			stds[i] = &StdState{}
			stds[i].N, b, err = wirefmt.Varint(b)
			if err != nil {
				return nil, nil, err
			}
		}
		for _, s := range stds {
			s.Sum, b, err = wirefmt.Float(b)
			if err != nil {
				return nil, nil, err
			}
		}
		for i, s := range stds {
			s.SumSq, b, err = wirefmt.Float(b)
			if err != nil {
				return nil, nil, err
			}
			g.Groups[keys[i]] = s
		}
	default:
		want := byte(spec.Kind)
		for _, k := range keys {
			if len(b) == 0 {
				return nil, nil, wirefmt.ErrTruncated
			}
			if b[0] != want {
				return nil, nil, fmt.Errorf("aggregate: grouped %v slot tagged %d: %w", spec.Kind, b[0], wirefmt.ErrCorrupt)
			}
			var st State
			st, b, err = readState(b, depth+1)
			if err != nil {
				return nil, nil, err
			}
			g.Groups[k] = st
		}
	}
	return g, b, nil
}
