package aggregate

import (
	"fmt"
	"testing"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

// TestMergeAllocBudget locks the allocation cost of the epoch-report
// hot path: merging one warm GroupedState into another — both already
// holding the full key set — must not allocate at all for scalar-kind
// sub-states. The per-epoch in-tree re-aggregation performs exactly
// this merge once per child per epoch per node, so any state or map
// allocation here multiplies by the whole deployment.
func TestMergeAllocBudget(t *testing.T) {
	warm := func(keys int) *GroupedState {
		g := NewGrouped(Spec{Kind: KindAvg}, 1024)
		for k := 0; k < keys; k++ {
			g.AddKeyed(ids.FromUint64(uint64(k)), fmt.Sprintf("key-%02d", k), value.Float(float64(k)))
		}
		return g
	}
	const keys = 16
	dst, src := warm(keys), warm(keys)
	avg := testing.AllocsPerRun(100, func() {
		if err := dst.Merge(src); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("warm GroupedState.Merge allocates %.1f objects/op, want 0", avg)
	}
}

// TestAddAllocBudget locks the steady-state contribution path: adding
// to an existing key of a warm accumulator is allocation-free for
// numeric kinds.
func TestAddAllocBudget(t *testing.T) {
	g := NewGrouped(Spec{Kind: KindSum}, 0)
	node := ids.FromUint64(7)
	g.AddKeyed(node, "k", value.Int(1))
	avg := testing.AllocsPerRun(100, func() {
		g.AddKeyed(node, "k", value.Int(1))
	})
	if avg > 0 {
		t.Errorf("warm AddKeyed allocates %.1f objects/op, want 0", avg)
	}
}

// TestRecycleReuse proves the state pool actually round-trips: a
// recycled tree satisfies the next construction without touching the
// allocator for the shell, the key map, or the sub-states.
func TestRecycleReuse(t *testing.T) {
	spec := Spec{Kind: KindAvg}
	g := NewGrouped(spec, 64)
	g.AddKeyed(ids.FromUint64(1), "a", value.Float(1))
	g.AddKeyed(ids.FromUint64(2), "b", value.Float(2))
	Recycle(g)
	avg := testing.AllocsPerRun(20, func() {
		h := NewGroupedSized(spec, 64, 2)
		h.AddKeyed(ids.FromUint64(1), "a", value.Float(1))
		h.AddKeyed(ids.FromUint64(2), "b", value.Float(2))
		if h.KeyCount() != 2 {
			t.Fatal("bad key count")
		}
		Recycle(h)
	})
	// One warm cycle may still allocate map internals on first growth;
	// steady state must stay near zero.
	if avg > 1 {
		t.Errorf("recycled construction allocates %.1f objects/op, want <= 1", avg)
	}
}

// TestSketchMergeAllocBudget locks the sketch epoch-report hot path:
// merging into a warm accumulator must not allocate. A dense HLL merge
// is a pure register loop, so it is 0-alloc unconditionally; a
// quantile merge into a recycled accumulator with warmed level
// capacity (the per-epoch in-tree shape: reset, then fold each child's
// report) appends into existing backing arrays only.
func TestSketchMergeAllocBudget(t *testing.T) {
	t.Run("hll-dense", func(t *testing.T) {
		mk := func() *DCountState {
			st := &DCountState{}
			for i := 0; i < 4000; i++ {
				st.Add(ids.FromUint64(uint64(i)), value.Int(int64(i)))
			}
			return st
		}
		dst, src := mk(), mk()
		if dst.Dense == nil || src.Dense == nil {
			t.Fatal("states did not promote to dense")
		}
		avg := testing.AllocsPerRun(100, func() {
			if err := dst.Merge(src); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 0 {
			t.Errorf("warm dense HLL merge allocates %.1f objects/op, want 0", avg)
		}
	})
	t.Run("quantile", func(t *testing.T) {
		src := &QuantileState{Q: 0.99}
		for i := 0; i < 1000; i++ {
			src.Add(ids.FromUint64(uint64(i)), value.Float(float64(i)))
		}
		dst := &QuantileState{Q: 0.99}
		// Warm cycle: one merge grows dst's level hierarchy to src's
		// shape; reset keeps the backing arrays.
		if err := dst.Merge(src); err != nil {
			t.Fatal(err)
		}
		dst.reset()
		avg := testing.AllocsPerRun(100, func() {
			dst.reset()
			if err := dst.Merge(src); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 0 {
			t.Errorf("warm quantile merge allocates %.1f objects/op, want 0", avg)
		}
	})
}
