package aggregate

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

func keyOf(i int, nKeys int) string { return fmt.Sprintf("k%02d", i%nKeys) }

// TestGroupedScalarSpecialCase: an ungrouped query through the keyed
// engine (everything under ScalarKey) must equal the plain scalar state.
func TestGroupedScalarSpecialCase(t *testing.T) {
	for _, spec := range allSpecs() {
		g := NewGrouped(spec, 0)
		flat := spec.New()
		for i := 1; i <= 20; i++ {
			n := ids.FromUint64(uint64(i))
			v := value.Int(int64(i * 3 % 17))
			g.Add(n, v)
			flat.Add(n, v)
		}
		if !resultsEqual(g.Result(), flat.Result()) {
			t.Errorf("%v: grouped scalar %v != flat %v", spec, g.Result(), flat.Result())
		}
		if g.Nodes() != flat.Nodes() {
			t.Errorf("%v: nodes %d != %d", spec, g.Nodes(), flat.Nodes())
		}
		if g.KeyCount() != 1 || g.Truncated() {
			t.Errorf("%v: scalar state should hold exactly the one key", spec)
		}
	}
}

// TestGroupedPartialAggregationLaw extends the §3.1 merge law to the
// keyed engine: per-key results must be independent of how contributions
// are split across merged states.
func TestGroupedPartialAggregationLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, spec := range allSpecs() {
		const n, nKeys = 60, 7
		flat := NewGrouped(spec, 0)
		a, b := NewGrouped(spec, 0), NewGrouped(spec, 0)
		split := rng.Intn(n)
		for i := 0; i < n; i++ {
			node := ids.FromUint64(uint64(i + 1))
			key := keyOf(rng.Intn(nKeys*3), nKeys)
			v := value.Int(int64(rng.Intn(100)))
			flat.AddKeyed(node, key, v)
			if i < split {
				a.AddKeyed(node, key, v)
			} else {
				b.AddKeyed(node, key, v)
			}
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("%v: merge: %v", spec, err)
		}
		fr, ar := flat.Results(), a.Results()
		if len(fr) != len(ar) {
			t.Fatalf("%v: key sets differ: %d vs %d", spec, len(fr), len(ar))
		}
		for k, want := range fr {
			if !resultsEqual(ar[k], want) {
				t.Errorf("%v key %q: split %v != flat %v", spec, k, ar[k], want)
			}
		}
		if !resultsEqual(a.Result(), flat.Result()) {
			t.Errorf("%v: grand total differs", spec)
		}
	}
}

// TestGroupedCapSpill: past the cap, the lexicographically smallest keys
// stay exact and the remainder lands in Other, with the grand total
// unaffected.
func TestGroupedCapSpill(t *testing.T) {
	spec := Spec{Kind: KindSum}
	g := NewGrouped(spec, 3)
	total := int64(0)
	// Insert keys in descending order so eviction (not just overflow
	// routing) is exercised: each smaller newcomer demotes the largest.
	for i := 9; i >= 0; i-- {
		v := int64(i + 1)
		g.AddKeyed(ids.FromUint64(uint64(i+1)), keyOf(i, 10), value.Int(v))
		total += v
	}
	if !g.Truncated() {
		t.Fatal("cap 3 with 10 keys should truncate")
	}
	if got := g.KeyCount(); got != 3 {
		t.Fatalf("KeyCount = %d, want 3", got)
	}
	wantKeys := []string{"k00", "k01", "k02"}
	for i, k := range g.Keys() {
		if k != wantKeys[i] {
			t.Fatalf("Keys() = %v, want %v", g.Keys(), wantKeys)
		}
	}
	res := g.Results()
	for i, k := range wantKeys {
		if got, _ := res[k].Value.AsInt(); got != int64(i+1) {
			t.Errorf("%s = %v, want %d", k, res[k].Value, i+1)
		}
	}
	// k03..k09 spilled: 4+5+...+10 = 49.
	if got, _ := res[OtherKey].Value.AsInt(); got != 49 {
		t.Errorf("other = %v, want 49", res[OtherKey].Value)
	}
	if got, _ := g.Result().Value.AsInt(); got != total {
		t.Errorf("grand total = %v, want %d", g.Result().Value, total)
	}
	if g.Nodes() != 10 {
		t.Errorf("nodes = %d, want 10", g.Nodes())
	}
}

// TestGroupedMergeRespectsCap: merging states whose union exceeds the
// cap spills into Other rather than growing without bound.
func TestGroupedMergeRespectsCap(t *testing.T) {
	spec := Spec{Kind: KindCount}
	a, b := NewGrouped(spec, 4), NewGrouped(spec, 4)
	for i := 0; i < 4; i++ {
		a.AddKeyed(ids.FromUint64(uint64(i+1)), keyOf(i, 8), value.Int(1))
		b.AddKeyed(ids.FromUint64(uint64(i+100)), keyOf(i+4, 8), value.Int(1))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.KeyCount() != 4 {
		t.Fatalf("KeyCount = %d, want 4", a.KeyCount())
	}
	if !a.Truncated() {
		t.Fatal("merge past cap should truncate")
	}
	if a.Nodes() != 8 {
		t.Fatalf("nodes = %d, want 8", a.Nodes())
	}
}

// TestGroupedMergeErrors: spec and type mismatches are rejected.
func TestGroupedMergeErrors(t *testing.T) {
	g := NewGrouped(Spec{Kind: KindSum}, 0)
	if err := g.Merge(&SumState{}); err == nil {
		t.Fatal("merging a scalar state into the keyed engine should fail")
	}
	if err := g.Merge(NewGrouped(Spec{Kind: KindCount}, 0)); err == nil {
		t.Fatal("merging mismatched specs should fail")
	}
}

// TestGroupedGobRoundTrip: the keyed state survives the wire intact,
// including nested per-key states and the spill bucket.
func TestGroupedGobRoundTrip(t *testing.T) {
	gob.Register(&GroupedState{})
	gob.Register(&AvgState{})
	g := NewGrouped(Spec{Kind: KindAvg}, 2)
	for i := 0; i < 8; i++ {
		g.AddKeyed(ids.FromUint64(uint64(i+1)), keyOf(i, 4), value.Float(float64(i)))
	}
	var buf bytes.Buffer
	var in State = g
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var out State
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, ok := out.(*GroupedState)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if got.KeyCount() != g.KeyCount() || got.Spilled != g.Spilled || got.Nodes() != g.Nodes() {
		t.Fatalf("round trip mangled state: %+v vs %+v", got, g)
	}
	want, have := g.Results(), got.Results()
	for k, w := range want {
		if !resultsEqual(have[k], w) {
			t.Errorf("key %q: %v != %v", k, have[k], w)
		}
	}
}

// TestParseSpecErrors is the table-driven error corpus for the
// function-name parser.
func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"top-3",
		"topx",
		"top-0",
		"sum()",
		"minmax",
		"grouped",
		"avg ustale",
	}
	for _, in := range bad {
		if sp, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) = %v, should fail", in, sp)
		}
	}
}
