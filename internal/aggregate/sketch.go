// Mergeable-sketch states: bounded-memory approximations of aggregates
// whose exact forms grow with population (quantiles, distinct counts)
// or cardinality (heavy hitters, set union). Each is an ordinary State,
// so it rides the keyed GroupedState plumbing, pooling, gob sweep, and
// standing-query epoch reports unchanged. The merge law here is weaker
// than for the exact states — merging partials in any tree shape yields
// a state whose *error bound* is preserved, not necessarily identical
// bytes — and the property tests in partial_test.go key on Approximate
// to compare accordingly. Background: Agarwal et al., "Mergeable
// Summaries" (arXiv 1204.3223).

package aggregate

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sort"
	"strconv"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/value"
)

const (
	// SetCap bounds UNION and COLLECT entry lists, like MaxGroupKeys
	// bounds group maps: the Cap smallest survive deterministically and
	// the rest spill, so every merge order keeps the same survivors.
	SetCap = 64
	// DefaultTopKeys is the TOPKEYS counter capacity when the query
	// doesn't give one (`topkeys(attr)`).
	DefaultTopKeys = 8

	// HyperLogLog geometry: 2^hllP single-byte registers. p=11 gives a
	// standard error of 1.04/√2048 ≈ 2.3% in 2 KiB of dense state.
	hllP = 11
	hllM = 1 << hllP
	// Sparse states (few distinct values — every leaf, most groups)
	// stay a small map until promotion; the threshold keeps the sparse
	// form strictly cheaper to hold and to gob-encode than dense.
	hllSparseLimit = hllM / 8

	// quantCap is the per-level compactor capacity of QuantileState.
	// Worst-case rank error after any merge tree is ~N·H/(2·quantCap)
	// with H ≈ log2(N/quantCap) levels; at N=10k that is under 2% of
	// rank, in at most a few KiB of state.
	quantCap = 256
)

// Approximate reports whether the kind's merge law is bound-preserving
// approximation (the sketch family) rather than value-identical. The
// generic merge-law harness keys its comparison mode on this.
func Approximate(k Kind) bool { return registry[k].sketch }

// Kinds returns every registered aggregation kind in ascending order,
// so registry-driven tests cover new kinds automatically.
func Kinds() []Kind {
	out := make([]Kind, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// ---------------------------------------------------------------------
// hashValue: 64-bit FNV-1a over a value's canonical key bytes.
//
// Hashing the Key() representation (not the raw payload) keeps DCOUNT
// consistent with grouping semantics: Int(1), Float(1) and Str("1")
// share a group key, so they count as one distinct value here too. The
// bytes are fed through stack buffers so the hot Add path stays
// allocation-free.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the murmur3 finalizer. FNV-1a diffuses upward only — the
// top bits (which pick the HLL register) barely change across short
// inputs like small decimal ints — so the raw hash is run through a
// full-avalanche mix before use.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func hashValue(v value.Value) uint64 {
	h := uint64(fnvOffset64)
	var buf [32]byte
	switch v.Kind() {
	case value.KindString:
		s, _ := v.AsString()
		h = fnvString(h, s)
	case value.KindInt:
		i, _ := v.AsInt()
		h = fnvBytes(h, strconv.AppendInt(buf[:0], i, 10))
	case value.KindFloat:
		f, _ := v.AsFloat()
		// Integral floats render like ints ("1", not "1.0"), so they
		// hash identically via the same decimal bytes.
		h = fnvBytes(h, strconv.AppendFloat(buf[:0], f, 'g', -1, 64))
	case value.KindBool:
		if b, _ := v.AsBool(); b {
			h = fnvString(h, "true")
		} else {
			h = fnvString(h, "false")
		}
	}
	return mix64(h)
}

// ---------------------------------------------------------------------

// DCountState estimates the number of distinct attribute values with a
// HyperLogLog sketch: hllM single-byte registers each remembering the
// longest run of leading zero bits seen in its hash bucket. Merging is
// a pointwise register max, which is exactly order- and
// shape-invariant; only the estimate itself is approximate (standard
// error 1.04/√hllM ≈ 2.3%).
//
// Leaf states hold one or two values, so registers start as a sparse
// index→register map and promote to the dense array only past
// hllSparseLimit — keeping per-node wire state a few bytes instead of
// a 2 KiB register dump.
type DCountState struct {
	Sparse map[uint16]uint8
	Dense  []uint8
	N      int64
}

// Add folds one node's value in.
func (s *DCountState) Add(_ ids.ID, v value.Value) {
	if !v.IsValid() {
		return
	}
	s.N++
	h := hashValue(v)
	idx := uint16(h >> (64 - hllP))
	// The register holds the rank of the first 1-bit among the
	// remaining 64-p bits; |1 caps the rank when those bits are zero.
	rho := uint8(bits.LeadingZeros64((h<<hllP)|1)) + 1
	s.set(idx, rho)
}

func (s *DCountState) set(idx uint16, rho uint8) {
	if s.Dense != nil {
		if rho > s.Dense[idx] {
			s.Dense[idx] = rho
		}
		return
	}
	if s.Sparse == nil {
		s.Sparse = make(map[uint16]uint8)
	}
	if rho > s.Sparse[idx] {
		s.Sparse[idx] = rho
	}
	if len(s.Sparse) > hllSparseLimit {
		s.promote()
	}
}

func (s *DCountState) promote() {
	s.Dense = make([]uint8, hllM)
	for idx, rho := range s.Sparse {
		s.Dense[idx] = rho
	}
	s.Sparse = nil
}

// Merge folds another DCountState in (pointwise register max).
func (s *DCountState) Merge(other State) error {
	o, ok := other.(*DCountState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into DCountState", other)
	}
	s.N += o.N
	if o.Dense != nil {
		if s.Dense == nil {
			s.promote()
		}
		for idx, rho := range o.Dense {
			if rho > s.Dense[idx] {
				s.Dense[idx] = rho
			}
		}
		return nil
	}
	for idx, rho := range o.Sparse {
		s.set(idx, rho)
	}
	return nil
}

func (s *DCountState) estimate() float64 {
	m := float64(hllM)
	var sum float64
	zeros := 0
	if s.Dense != nil {
		for _, r := range s.Dense {
			sum += 1 / float64(uint64(1)<<r)
			if r == 0 {
				zeros++
			}
		}
	} else {
		zeros = hllM - len(s.Sparse)
		sum = float64(zeros)
		for _, r := range s.Sparse {
			sum += 1 / float64(uint64(1)<<r)
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	// Flajolet's small-range correction: with empty registers, linear
	// counting is the better estimator (and exact at leaf scale).
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return e
}

// Result returns the distinct-count estimate.
func (s *DCountState) Result() Result {
	if s.N == 0 {
		return Result{Value: value.Int(0)}
	}
	return Result{Value: value.Int(int64(math.Round(s.estimate())))}
}

// Nodes reports the number of contributions.
func (s *DCountState) Nodes() int64 { return s.N }

func (s *DCountState) reset() {
	clear(s.Sparse)
	s.Dense = nil
	s.N = 0
}

// ---------------------------------------------------------------------

// QuantileState estimates a rank quantile with an MRL/KLL-style
// compactor hierarchy: Levels[i] holds items of weight 2^i; a full
// level is sorted and every other item promoted one level up, halving
// the item count while preserving total weight. Each compaction of
// level i perturbs ranks by at most 2^i/2, so the worst-case rank
// error over any merge tree is ~N·H/(2·quantCap). Compaction offsets
// alternate via the deterministic Coin sequence, which de-biases the
// estimate without breaking replayability.
type QuantileState struct {
	Q      float64
	Levels [][]float64
	N      int64
	Coin   uint64
}

// Add folds one node's value in (non-numeric values are ignored).
func (s *QuantileState) Add(_ ids.ID, v value.Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	s.N++
	if len(s.Levels) == 0 {
		s.Levels = append(s.Levels, nil)
	}
	s.Levels[0] = append(s.Levels[0], f)
	if len(s.Levels[0]) >= quantCap {
		s.compact()
	}
}

// Merge folds another QuantileState in: levelwise concatenation, then
// a compaction cascade. A warm merge (capacity in place, levels under
// quantCap) is allocation-free.
func (s *QuantileState) Merge(other State) error {
	o, ok := other.(*QuantileState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into QuantileState", other)
	}
	s.N += o.N
	for i, lvl := range o.Levels {
		if len(lvl) == 0 {
			continue
		}
		for len(s.Levels) <= i {
			s.Levels = append(s.Levels, nil)
		}
		s.Levels[i] = append(s.Levels[i], lvl...)
	}
	// Mix the coin streams so repeated merges don't re-use one offset
	// pattern; any deterministic mix preserves the error analysis.
	s.Coin = s.Coin*3 + o.Coin + 1
	s.compact()
	return nil
}

func (s *QuantileState) compact() {
	for i := 0; i < len(s.Levels); i++ {
		lvl := s.Levels[i]
		if len(lvl) < quantCap {
			continue
		}
		slices.Sort(lvl)
		if len(s.Levels) == i+1 {
			s.Levels = append(s.Levels, nil)
		}
		off := int(s.Coin & 1)
		s.Coin = s.Coin>>1 | s.Coin<<63 // rotate: next compaction sees the next bit
		s.Coin ^= 0x9e3779b97f4a7c15
		for j := off; j < len(lvl); j += 2 {
			s.Levels[i+1] = append(s.Levels[i+1], lvl[j])
		}
		s.Levels[i] = lvl[:0]
	}
}

// Result returns the estimated Q-quantile of all contributions.
func (s *QuantileState) Result() Result {
	if s.N == 0 {
		return Result{}
	}
	total := 0
	for _, lvl := range s.Levels {
		total += len(lvl)
	}
	if total == 0 {
		return Result{}
	}
	type weighted struct {
		v float64
		w int64
	}
	items := make([]weighted, 0, total)
	var weight int64
	for i, lvl := range s.Levels {
		w := int64(1) << uint(i)
		for _, v := range lvl {
			items = append(items, weighted{v, w})
			weight += w
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].v < items[j].v })
	// Smallest item whose cumulative weight covers the target rank.
	target := int64(math.Ceil(s.Q * float64(weight)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for _, it := range items {
		cum += it.w
		if cum >= target {
			return Result{Value: value.Float(it.v)}
		}
	}
	return Result{Value: value.Float(items[len(items)-1].v)}
}

// Nodes reports the number of contributions.
func (s *QuantileState) Nodes() int64 { return s.N }

func (s *QuantileState) reset() {
	for i := range s.Levels {
		s.Levels[i] = s.Levels[i][:0]
	}
	s.N = 0
	s.Coin = 0
}

// ---------------------------------------------------------------------

// TopKeysState tracks the K most frequent attribute values (by group
// key, like Value.Key) with Misra-Gries counters: at most K counters
// live at once; an overflowing insert decrements all. After any merge
// tree the counter for a key undercounts its true frequency by at most
// N/(K+1).
type TopKeysState struct {
	K      int
	Counts map[string]int64
	N      int64
}

// Add folds one node's value in.
func (s *TopKeysState) Add(_ ids.ID, v value.Value) {
	if !v.IsValid() {
		return
	}
	s.N++
	k := v.Key()
	if s.Counts == nil {
		s.Counts = make(map[string]int64, s.K)
	}
	if _, ok := s.Counts[k]; ok || len(s.Counts) < s.K {
		s.Counts[k]++
		return
	}
	// Counter set full and k untracked: decrement everyone (k included,
	// virtually), evicting zeros. Classic Misra-Gries.
	for key, c := range s.Counts {
		if c <= 1 {
			delete(s.Counts, key)
		} else {
			s.Counts[key] = c - 1
		}
	}
}

// Merge folds another TopKeysState in: pointwise counter addition, then
// one shrink step subtracting the (K+1)-th largest count from all — the
// mergeable-summaries MG merge, which keeps the N/(K+1) bound intact.
func (s *TopKeysState) Merge(other State) error {
	o, ok := other.(*TopKeysState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into TopKeysState", other)
	}
	s.N += o.N
	if len(o.Counts) > 0 && s.Counts == nil {
		s.Counts = make(map[string]int64, s.K)
	}
	for k, c := range o.Counts {
		s.Counts[k] += c
	}
	s.shrink()
	return nil
}

func (s *TopKeysState) shrink() {
	if len(s.Counts) <= s.K {
		return
	}
	counts := make([]int64, 0, len(s.Counts))
	for _, c := range s.Counts {
		counts = append(counts, c)
	}
	slices.Sort(counts)
	thresh := counts[len(counts)-s.K-1] // (K+1)-th largest
	for k, c := range s.Counts {
		if c <= thresh {
			delete(s.Counts, k)
		} else {
			s.Counts[k] = c - thresh
		}
	}
}

// Result returns the tracked keys ordered by estimated count
// descending (key ascending on ties, for determinism), with the top
// estimate as the scalar value.
func (s *TopKeysState) Result() Result {
	if s.N == 0 {
		return Result{Value: value.Int(0), Counts: []KeyCount{}}
	}
	out := make([]KeyCount, 0, len(s.Counts))
	for k, c := range s.Counts {
		out = append(out, KeyCount{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	r := Result{Counts: out, Value: value.Int(0)}
	if len(out) > 0 {
		r.Value = value.Int(out[0].Count)
	}
	return r
}

// Nodes reports the number of contributions.
func (s *TopKeysState) Nodes() int64 { return s.N }

func (s *TopKeysState) reset() {
	clear(s.Counts)
	s.N = 0
}

// ---------------------------------------------------------------------

// UnionState collects the set of distinct attribute values (distinct by
// group key, so Int(1) and Str("1") unify), bounded by Cap with the
// deterministic spill policy of MaxGroupKeys: the Cap smallest keys are
// kept exact. Because "smallest Cap keys" is a property of the global
// key set, any merge tree keeps identical survivors, each annotated
// with its smallest contributing node — the merge is exact, not
// approximate, about everything it reports; Dropped says whether
// anything spilled.
type UnionState struct {
	Cap     int
	Keys    []string // ascending; parallel to Entries
	Entries []Entry
	N       int64
	Dropped bool
}

// Add folds one node's value in.
func (s *UnionState) Add(node ids.ID, v value.Value) {
	if !v.IsValid() {
		return
	}
	s.N++
	s.insert(v.Key(), Entry{Node: node, Value: v})
}

func (s *UnionState) insert(k string, e Entry) {
	i := sort.SearchStrings(s.Keys, k)
	if i < len(s.Keys) && s.Keys[i] == k {
		// Known value: keep the smallest contributor node so every
		// merge order reports the same witness.
		if ids.Less(e.Node, s.Entries[i].Node) {
			s.Entries[i] = e
		}
		return
	}
	if s.Cap > 0 && len(s.Keys) >= s.Cap && i >= s.Cap {
		s.Dropped = true
		return
	}
	s.Keys = append(s.Keys, "")
	copy(s.Keys[i+1:], s.Keys[i:])
	s.Keys[i] = k
	s.Entries = append(s.Entries, Entry{})
	copy(s.Entries[i+1:], s.Entries[i:])
	s.Entries[i] = e
	if s.Cap > 0 && len(s.Keys) > s.Cap {
		s.Keys = s.Keys[:s.Cap]
		s.Entries = s.Entries[:s.Cap]
		s.Dropped = true
	}
}

// Merge folds another UnionState in.
func (s *UnionState) Merge(other State) error {
	o, ok := other.(*UnionState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into UnionState", other)
	}
	s.N += o.N
	s.Dropped = s.Dropped || o.Dropped
	for i, k := range o.Keys {
		s.insert(k, o.Entries[i])
	}
	return nil
}

// Result returns the kept distinct values in key order; the scalar is
// the kept-set size (a lower bound on distinct count when Dropped).
func (s *UnionState) Result() Result {
	out := make([]Entry, len(s.Entries))
	copy(out, s.Entries)
	return Result{Value: value.Int(int64(len(out))), Entries: out}
}

// Nodes reports the number of contributions.
func (s *UnionState) Nodes() int64 { return s.N }

// ---------------------------------------------------------------------

// CollectState lists per-node contributions like ENUMERATE, but
// bounded: the Cap contributions with the smallest node IDs are kept,
// the rest spill. Survivors are again merge-shape-invariant, and the
// exact spill count is N minus the kept length.
type CollectState struct {
	Cap     int
	Entries []Entry // ascending by node ID
	N       int64
}

// Add folds one node's value in.
func (s *CollectState) Add(node ids.ID, v value.Value) {
	if !v.IsValid() {
		return
	}
	s.N++
	e := Entry{Node: node, Value: v}
	i := sort.Search(len(s.Entries), func(i int) bool { return ids.Less(node, s.Entries[i].Node) })
	if s.Cap > 0 && len(s.Entries) >= s.Cap && i >= s.Cap {
		return
	}
	s.Entries = append(s.Entries, Entry{})
	copy(s.Entries[i+1:], s.Entries[i:])
	s.Entries[i] = e
	if s.Cap > 0 && len(s.Entries) > s.Cap {
		s.Entries = s.Entries[:s.Cap]
	}
}

// Merge folds another CollectState in.
func (s *CollectState) Merge(other State) error {
	o, ok := other.(*CollectState)
	if !ok {
		return fmt.Errorf("aggregate: merge %T into CollectState", other)
	}
	n := s.N + o.N
	for _, e := range o.Entries {
		s.Add(e.Node, e.Value)
		s.N-- // Add counted it; the contribution total comes from o.N
	}
	s.N = n
	return nil
}

// Result returns the kept contributions; the scalar is the exact total
// contribution count (so spilled = N - len(Entries)).
func (s *CollectState) Result() Result {
	out := make([]Entry, len(s.Entries))
	copy(out, s.Entries)
	return Result{Value: value.Int(s.N), Entries: out}
}

// Nodes reports the number of contributions.
func (s *CollectState) Nodes() int64 { return s.N }
