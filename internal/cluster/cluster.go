// Package cluster boots whole Moara deployments on the simulated
// network: N nodes with deterministic identifiers, overlay state built
// either by the oracle (large-scale experiments) or the join protocol
// (integration tests), plus synchronous driver helpers that pump the
// event loop until a query completes.
package cluster

import (
	"fmt"
	"strings"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/simnet"
)

// Bootstrap selects how overlay routing state is established.
type Bootstrap uint8

const (
	// BootstrapOracle fills routing tables from global knowledge
	// (the FreePastry-simulator equivalent; default).
	BootstrapOracle Bootstrap = iota
	// BootstrapProtocol runs the real join handshake node by node.
	BootstrapProtocol
)

// Options configure a simulated cluster.
type Options struct {
	// N is the node count.
	N int
	// Seed drives all randomness (default 1).
	Seed int64
	// Latency is the network model (default 1ms fixed).
	Latency simnet.LatencyModel
	// ProcDelay/ProcJitter model per-message software overhead.
	ProcDelay  time.Duration
	ProcJitter time.Duration
	// SerializeProc enables per-node CPU queueing (see simnet.Options).
	SerializeProc bool
	// InstancesPerMachine co-locates consecutive nodes onto shared
	// CPUs, like the paper's Emulab testbed (10 instances/machine).
	// 0 or 1 means one CPU per node.
	InstancesPerMachine int
	// Tap observes every message (see simnet.Options).
	Tap func(from, to ids.ID, m any, wireLatency time.Duration)
	// Node is the Moara configuration applied to every node.
	Node core.Config
	// Overlay is the Pastry configuration applied to every node.
	Overlay pastry.Config
	// Bootstrap selects oracle or protocol bootstrap.
	Bootstrap Bootstrap
	// JoinSpacing is the virtual-time gap between protocol joins
	// (default 200ms).
	JoinSpacing time.Duration
	// Shards >= 2 runs the simulation on simnet's sharded
	// conservative-lookahead scheduler: nodes are partitioned across
	// Shards event heaps that drain lookahead windows in parallel.
	// Deterministic for a given seed at any shard/worker count, but
	// incompatible with SerializeProc, InstancesPerMachine > 1, and
	// Tap (simnet rejects those at construction). 0 or 1 keeps the
	// classic single-heap scheduler.
	Shards int
	// ShardWorkers caps OS-thread parallelism for sharded runs
	// (0 = GOMAXPROCS, 1 = serial; results identical either way).
	ShardWorkers int
	// Lookahead overrides the sharded scheduler's window size (see
	// simnet.Options.Lookahead).
	Lookahead time.Duration
}

// Cluster is a complete simulated deployment.
type Cluster struct {
	Net    *simnet.Network
	Oracle *pastry.Oracle
	// Nodes holds the Moara nodes in creation order; IDs[i] is
	// Nodes[i]'s identifier.
	Nodes []*core.Node
	IDs   []ids.ID
	ByID  map[ids.ID]*core.Node

	// down tracks nodes currently crashed (by index).
	down map[int]bool

	opts Options
}

// NodeID returns the deterministic identifier of the i-th node.
func NodeID(i int) ids.ID {
	return ids.FromKey(fmt.Sprintf("node-%d", i))
}

// New boots a cluster. With oracle bootstrap the cluster is ready
// immediately; with protocol bootstrap the join sequence has already
// been driven to completion in virtual time.
func New(opts Options) *Cluster {
	if opts.N <= 0 {
		panic("cluster: N must be positive")
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.JoinSpacing == 0 {
		opts.JoinSpacing = 200 * time.Millisecond
	}
	sopts := simnet.Options{
		Seed:          opts.Seed,
		Latency:       opts.Latency,
		ProcDelay:     opts.ProcDelay,
		ProcJitter:    opts.ProcJitter,
		SerializeProc: opts.SerializeProc,
		Tap:           opts.Tap,
		Shards:        opts.Shards,
		ShardWorkers:  opts.ShardWorkers,
		Lookahead:     opts.Lookahead,
	}
	if opts.InstancesPerMachine > 1 {
		machineOf := make(map[ids.ID]int, opts.N)
		for i := 0; i < opts.N; i++ {
			machineOf[NodeID(i)] = i / opts.InstancesPerMachine
		}
		sopts.CPUOf = func(id ids.ID) int {
			if m, ok := machineOf[id]; ok {
				return m
			}
			return -1
		}
	}
	net := simnet.New(sopts)
	c := &Cluster{
		Net:   net,
		Nodes: make([]*core.Node, 0, opts.N),
		IDs:   make([]ids.ID, 0, opts.N),
		ByID:  make(map[ids.ID]*core.Node, opts.N),
		down:  make(map[int]bool),
		opts:  opts,
	}
	for i := 0; i < opts.N; i++ {
		id := NodeID(i)
		env := net.AddNode(id)
		n := core.NewNode(env, opts.Node, opts.Overlay)
		env.BindHandler(n)
		c.Nodes = append(c.Nodes, n)
		c.IDs = append(c.IDs, id)
		c.ByID[id] = n
	}
	switch opts.Bootstrap {
	case BootstrapProtocol:
		c.Nodes[0].Overlay().BootstrapAlone()
		for i := 1; i < opts.N; i++ {
			c.Nodes[i].Overlay().Join(c.IDs[0])
			net.RunFor(opts.JoinSpacing)
		}
		// Let announcements settle.
		net.RunFor(2 * time.Second)
	default:
		c.Oracle = pastry.NewOracle(c.IDs)
		for _, n := range c.Nodes {
			c.Oracle.Fill(n.Overlay())
		}
	}
	return c
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *core.Node { return c.Nodes[i] }

// AddNode joins one new node into the running cluster through the real
// join protocol (§7 reconfiguration: overlay membership changes while
// group trees are live) and returns its index. The join bootstraps via
// a currently live member, so nodes can keep joining while earlier
// members are crashed. The caller seeds the new node's attribute store
// and RunFors a moment to let announcements settle; standing queries
// whose tree the newcomer lands in re-install onto it within one epoch
// of its announcements reaching a subscribed parent.
func (c *Cluster) AddNode() int {
	i := len(c.Nodes)
	id := NodeID(i)
	env := c.Net.AddNode(id)
	n := core.NewNode(env, c.opts.Node, c.opts.Overlay)
	env.BindHandler(n)
	c.Nodes = append(c.Nodes, n)
	c.IDs = append(c.IDs, id)
	c.ByID[id] = n
	n.Overlay().Join(c.liveBootstrap(i))
	return i
}

// Grow is AddNode under its original name (kept for older callers).
func (c *Cluster) Grow() int { return c.AddNode() }

// liveBootstrap picks a live member (other than node i) for a join or
// rejoin, preferring the lowest index for determinism.
func (c *Cluster) liveBootstrap(i int) ids.ID {
	for j := range c.Nodes {
		if j != i && !c.down[j] {
			return c.IDs[j]
		}
	}
	panic("cluster: no live bootstrap node")
}

// Kill crashes node i: it stops sending, receiving, and ticking, but —
// unlike the old test-only pattern of calling Overlay().RemoveNode on
// every survivor — nothing else is touched. The survivors purge the
// dead node through the liveness path: its leaf-set neighbors detect the
// silence by heartbeat misses (enable Overlay.HeartbeatEvery) and gossip
// an obituary cluster-wide, which also drops every Moara-layer child
// state and buffered epoch report referencing the corpse. Without
// heartbeats the overlay never heals and queries rely on child timeouts
// alone, exactly as a real deployment without failure detection would.
func (c *Cluster) Kill(i int) {
	if c.down[i] {
		return
	}
	c.down[i] = true
	c.Net.SetDown(c.IDs[i], true)
}

// Recover restarts a crashed node: it retains its identifier, attribute
// store, and pre-crash protocol state (the crash-stop model of a
// process pause), rejoins the overlay via a live bootstrap — clearing
// the death certificates the cluster holds for it — and re-arms the
// background loops whose timers died during the outage.
func (c *Cluster) Recover(i int) {
	if !c.down[i] {
		return
	}
	delete(c.down, i)
	c.Net.SetDown(c.IDs[i], false)
	c.Nodes[i].Recover(c.liveBootstrap(i))
}

// Down reports whether node i is currently crashed.
func (c *Cluster) Down(i int) bool { return c.down[i] }

// LiveCount reports the number of currently live nodes.
func (c *Cluster) LiveCount() int { return len(c.Nodes) - len(c.down) }

// LiveIndices returns the indices of currently live nodes in order.
func (c *Cluster) LiveIndices() []int {
	out := make([]int, 0, c.LiveCount())
	for i := range c.Nodes {
		if !c.down[i] {
			out = append(out, i)
		}
	}
	return out
}

// RunFor advances the simulation.
func (c *Cluster) RunFor(d time.Duration) { c.Net.RunFor(d) }

// Execute runs a query from node i and pumps the network until the
// result arrives, returning it with the virtual-time latency recorded
// in Result.Stats. A crashed origin cannot reach any member, so
// executing from a down node fails immediately with ErrNoMembers.
func (c *Cluster) Execute(i int, req core.Request) (core.Result, error) {
	if c.down[i] {
		return core.Result{}, fmt.Errorf("%w: origin node %d is down", core.ErrNoMembers, i)
	}
	var (
		res  core.Result
		err  error
		done bool
	)
	c.Nodes[i].Execute(req, func(r core.Result, e error) {
		res, err, done = r, e, true
	})
	c.Net.RunWhile(func() bool { return !done })
	if !done {
		return core.Result{}, fmt.Errorf("cluster: query did not complete (event queue drained)")
	}
	return res, err
}

// Subscribe installs a standing query at node i. Samples are delivered
// to cb as the caller pumps virtual time with RunFor/RunWhile.
//
// Concurrency contract: cb runs ON THE EVENT-LOOP GOROUTINE — the one
// pumping RunFor/RunWhile. It must not call back into the cluster
// (Execute, Subscribe, Unsubscribe, RunFor: the node is mid-dispatch
// and not re-entrant), and a cb that blocks stalls every node in the
// simulation, since one goroutine drives them all. Hand samples off to
// a channel or buffer instead; the query-service front-end's buffered
// fan-out (internal/service with Buffer > 0) packages that pattern.
func (c *Cluster) Subscribe(i int, req core.Request, cb func(core.Sample)) (core.QueryID, error) {
	if c.down[i] {
		return core.QueryID{}, fmt.Errorf("%w: origin node %d is down", core.ErrNoMembers, i)
	}
	return c.Nodes[i].Subscribe(req, cb)
}

// Unsubscribe cancels a standing query installed from node i; unknown
// subscription IDs report ErrUnknownSub.
func (c *Cluster) Unsubscribe(i int, id core.QueryID) error {
	return c.Nodes[i].Unsubscribe(id)
}

// ExecuteText parses and runs a query-language string from node i.
func (c *Cluster) ExecuteText(i int, q string) (core.Result, error) {
	req, err := core.ParseRequest(q)
	if err != nil {
		return core.Result{}, err
	}
	return c.Execute(i, req)
}

// Warm runs one throwaway query so trees exist and nodes have learned
// their parents, then resets message accounting. Experiments call this
// before measuring, mirroring the paper's warm-up phase.
func (c *Cluster) Warm(queries ...core.Request) error {
	for _, q := range queries {
		if _, err := c.Execute(0, q); err != nil {
			return err
		}
	}
	// Drain any trailing status propagation.
	c.Net.RunFor(5 * time.Second)
	c.Net.ResetCounter()
	return nil
}

// sumMoara totals a per-kind counter map over the Moara layer
// (queries, responses, status updates, probes, subscription traffic),
// excluding overlay maintenance, matching the paper's accounting.
func sumMoara(byKind map[string]int64) int64 {
	var total int64
	for kind, n := range byKind {
		if strings.HasPrefix(kind, "moara.") {
			total += n
		}
	}
	return total
}

// MoaraMessages sums the Moara-layer logical messages.
func (c *Cluster) MoaraMessages() int64 {
	return sumMoara(c.Net.Counter().ByKind())
}

// MessagesPerNode is MoaraMessages averaged over the cluster.
func (c *Cluster) MessagesPerNode() float64 {
	return float64(c.MoaraMessages()) / float64(len(c.Nodes))
}

// QueryMessages counts full query-layer traffic: Moara messages plus
// the overlay route hops that carry query-layer payloads (sub-queries,
// probes, subscription installs and cancels) to tree roots. The
// poll-vs-standing comparison uses it so the per-round routing cost a
// standing query pays only once is accounted on both sides.
func (c *Cluster) QueryMessages() int64 {
	return c.MoaraMessages() + c.Net.Counter().Logical("overlay.route")
}

// WireMoaraMessages counts Moara-layer transmissions: like
// MoaraMessages, but a coalesced batch ("moara.batch") counts once
// however many logical messages it carries. With CoalesceOff the two
// counts are equal; the gap between them is the wire saving of
// per-destination coalescing.
func (c *Cluster) WireMoaraMessages() int64 {
	return sumMoara(c.Net.Counter().WireByKind())
}

// WireQueryMessages is WireMoaraMessages plus overlay route hops — the
// wire-level counterpart of QueryMessages. Route hops are never
// coalesced, so their wire and logical counts coincide.
func (c *Cluster) WireQueryMessages() int64 {
	return c.WireMoaraMessages() + c.Net.Counter().WireCount("overlay.route")
}
