package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/workload"
)

// churnTestOptions boots a deployment with the liveness path armed the
// way the churn experiments do: heartbeats at a fraction of the epoch,
// obituary purge, epoch-scale lease renewals.
func churnTestOptions(n int, seed int64, period time.Duration) Options {
	return Options{
		N:    n,
		Seed: seed,
		Node: core.Config{
			ChildTimeout:     2 * period,
			QueryTimeout:     10 * period,
			SubTTL:           8 * period,
			SubRenewInterval: 2 * period,
		},
		Overlay: pastry.Config{
			HeartbeatEvery: period / 2,
			HeartbeatMiss:  2,
		},
	}
}

const soakSlices = 6

func soakSlice(i int) string { return fmt.Sprintf("s%d", i%soakSlices) }

// TestChurnSoak runs a standing grouped query over 60 virtual seconds
// of continuous Poisson kill/join/recover and checks every delivered
// Sample against a per-epoch oracle:
//
//   - RootEpoch is monotone (the stream never skips backward, drops, or
//     duplicates root ticks);
//   - internal consistency: for count(*), the aggregate value, the sum
//     of the per-slice group counts, and Contributors all agree;
//   - Contributors never exceeds the live population plus the nodes
//     killed inside the purge window (a corpse is counted until its
//     obituary lands — never longer);
//   - mean completeness against the harness's exact live count stays
//     within the churn experiment's acceptance bound (>= 0.95), and no
//     sample loses more than a bounded fraction of the population;
//   - after churn stops, the stream reconverges to the exact per-slice
//     oracle over live nodes and stays there.
func TestChurnSoak(t *testing.T) {
	const (
		n      = 120
		period = 250 * time.Millisecond
		window = 60 * time.Second
	)
	c := New(churnTestOptions(n, 71, period))
	for i := range c.Nodes {
		c.Nodes[i].Store().SetString("slice", soakSlice(i))
	}
	req, err := core.ParseRequest("count(*) group by slice every 250ms")
	if err != nil {
		t.Fatal(err)
	}

	type obs struct {
		at           time.Duration
		rootEpoch    uint64
		contributors int64
		total        int64
		groupSum     int64
		live         int
		cold         bool
		groups       map[string]int64
	}
	var (
		samples   []obs
		warm      bool
		recording bool
	)
	if _, err := c.Subscribe(0, req, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
		if !recording {
			return
		}
		total, _ := s.Result.Agg.Value.AsInt()
		var groupSum int64
		groups := make(map[string]int64, len(s.Result.Groups))
		for k, g := range s.Result.Groups {
			v, _ := g.Value.AsInt()
			groupSum += v
			groups[k] = v
		}
		samples = append(samples, obs{
			at:           s.At,
			rootEpoch:    s.RootEpoch,
			contributors: s.Contributors,
			total:        total,
			groupSum:     groupSum,
			live:         c.LiveCount(),
			cold:         s.ColdStart,
			groups:       groups,
		})
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(period)
	}
	if !warm {
		t.Fatal("standing subscription never warmed")
	}

	// Schedule the Poisson churn: ~1% of nodes leave per epoch, matched
	// by arrivals (half recoveries, half fresh joins).
	rng := rand.New(rand.NewSource(71))
	var killTimes []time.Duration
	for _, ev := range workload.Churn(rng, n, workload.ChurnHalfLife(0.01, period), window, 0.5) {
		ev := ev
		c.Net.Schedule(ev.At, func() {
			switch ev.Kind {
			case workload.ChurnKill:
				candidates := c.LiveIndices()[1:]
				if len(candidates) == 0 {
					return
				}
				killTimes = append(killTimes, c.Net.Now())
				c.Kill(candidates[rng.Intn(len(candidates))])
			case workload.ChurnJoin:
				i := c.AddNode()
				c.Nodes[i].Store().SetString("slice", soakSlice(i))
			case workload.ChurnRecover:
				var dead []int
				for i := 1; i < len(c.Nodes); i++ {
					if c.Down(i) {
						dead = append(dead, i)
					}
				}
				if len(dead) == 0 {
					i := c.AddNode()
					c.Nodes[i].Store().SetString("slice", soakSlice(i))
					return
				}
				c.Recover(dead[rng.Intn(len(dead))])
			}
		})
	}
	recording = true
	c.RunFor(window)

	if len(samples) < int(window/period)*8/10 {
		t.Fatalf("stream starved: %d samples over %d epochs", len(samples), int(window/period))
	}

	var (
		complSum   float64
		warmCount  int
		worst      = 1.0
		overMax    int64
		overRun    int
		overRunMax int
		coldCount  int
	)
	prevRoot := uint64(0)
	for i, o := range samples {
		// Stream integrity and internal consistency hold for EVERY
		// sample, cold or warm: RootEpoch never goes backward (root
		// failovers fast-forward via SubscribeMsg.MinEpoch and the
		// front-end drops demoted roots' stale epochs), and for
		// count(*) the aggregate value, the per-slice sum, and the
		// Contributors count all agree.
		if o.rootEpoch < prevRoot {
			t.Fatalf("sample %d: RootEpoch went backward (%d -> %d)", i, prevRoot, o.rootEpoch)
		}
		prevRoot = o.rootEpoch
		if o.total != o.contributors || o.groupSum != o.total {
			t.Fatalf("sample %d internally inconsistent: total=%d groupSum=%d contributors=%d",
				i, o.total, o.groupSum, o.contributors)
		}
		// Overcounting must be transient: a corpse is counted until its
		// obituary lands, and a repaired subtree can be double-carried
		// for at most the stale-report window while its retraction is
		// in flight — so any run of samples exceeding the live
		// population must die out within the purge+stale horizon.
		if over := o.contributors - int64(o.live); over > 0 {
			overRun++
			if !o.cold && over > overMax {
				// Magnitude is bounded only outside rebuild windows: a
				// root takeover can transiently double-carry big
				// subtrees (pull + rebuilt tree) and is marked cold.
				overMax = over
			}
		} else {
			overRun = 0
		}
		if overRun > overRunMax {
			overRunMax = overRun
		}
		if o.cold {
			// Root handovers re-raise ColdStart: the rebuilt pipeline's
			// refill samples are flagged, not presented as steady state.
			coldCount++
			continue
		}
		warmCount++
		compl := float64(o.contributors) / float64(o.live)
		if compl > 1 {
			compl = 1
		}
		if compl < worst {
			worst = compl
		}
		complSum += compl
	}
	mean := complSum / float64(warmCount)
	t.Logf("soak: %d samples (%d cold), %d kills, warm mean completeness %.3f, worst %.3f, max overcount %d, longest overcount run %d epochs",
		len(samples), coldCount, len(killTimes), mean, worst, overMax, overRunMax)
	if warmCount < len(samples)/2 {
		t.Errorf("only %d of %d samples warm: failover windows dominate the stream", warmCount, len(samples))
	}
	if overRunMax > 10 {
		t.Errorf("Contributors exceeded live population for %d consecutive epochs: a double-count survived past the purge+stale horizon", overRunMax)
	}
	if overMax > int64(float64(n)/4) {
		t.Errorf("max warm overcount %d exceeds a quarter of the population", overMax)
	}
	if mean < 0.95 {
		t.Errorf("warm mean completeness %.3f below the 0.95 acceptance bound", mean)
	}
	if worst < 0.5 {
		t.Errorf("worst warm-sample completeness %.3f lost more than half the population", worst)
	}

	// Quiet tail: churn stops and the long-lived subscription must
	// reconverge to the exact per-slice oracle over live nodes — and
	// stay there.
	c.RunFor(40 * period)
	oracle := make(map[string]int64)
	var live int64
	for i := range c.Nodes {
		if c.Down(i) {
			continue
		}
		live++
		oracle[soakSlice(i)]++
	}
	final := samples[len(samples)-1]
	if final.contributors != live {
		t.Errorf("post-churn contributors = %d, want %d live", final.contributors, live)
	}
	for k, want := range oracle {
		if final.groups[k] != want {
			t.Errorf("post-churn slice %s = %d, want %d", k, final.groups[k], want)
		}
	}
	if len(final.groups) != len(oracle) {
		t.Errorf("post-churn groups = %d, want %d", len(final.groups), len(oracle))
	}
}

// soakLoad is the deterministic per-node load attribute used by the
// sketch soak: (i*37)%100 cycles through every residue mod 100, so any
// large survivor subset keeps a near-uniform value spread.
func soakLoad(i int) float64 { return float64((i * 37) % 100) }

// soakHost is a per-node distinct string, so the true distinct count of
// `host` over any contributor set is exactly its size.
func soakHost(i int) string { return fmt.Sprintf("h%04d", i) }

// TestSketchChurnSoak runs two standing sketch streams — dcount(host)
// and p99(load) — through 30 virtual seconds of Poisson kill/join/
// recover and checks every delivered sample against survivor oracles:
//
//   - RootEpoch is monotone on both streams (partial merges of sketch
//     states never un-order or duplicate root ticks);
//   - dcount: every node carries a distinct host, so the true distinct
//     count of a sample IS its Contributors count; the HLL estimate
//     must track it within the 3-sigma bound for 2^11 registers on
//     every warm sample, regardless of which survivors contributed;
//   - p99: with at most a few hundred survivors every value fits in the
//     summary's level 0, so warm estimates must stay inside the
//     feasible p99 value window of the live population (rank slack
//     covers the churn-window coverage loss);
//   - after churn stops, both streams reconverge to the exact oracles
//     over live nodes: dcount within the sketch's error bound of the
//     live count, p99 inside the feasible rank window of the sorted
//     live loads.
func TestSketchChurnSoak(t *testing.T) {
	const (
		n      = 96
		period = 250 * time.Millisecond
		window = 30 * time.Second
		hllErr = 3 * 1.04 / 45.25 // 3 sigma at p=11 (m=2048, sqrt(m)=45.25)
	)
	c := New(churnTestOptions(n, 83, period))
	for i := range c.Nodes {
		c.Nodes[i].Store().SetString("host", soakHost(i))
		c.Nodes[i].Store().SetFloat("load", soakLoad(i))
	}
	seedNode := func(i int) {
		c.Nodes[i].Store().SetString("host", soakHost(i))
		c.Nodes[i].Store().SetFloat("load", soakLoad(i))
	}

	type obs struct {
		rootEpoch    uint64
		contributors int64
		est          float64
		live         int
		cold         bool
	}
	var (
		dcountSamples, quantSamples []obs
		dcountWarm, quantWarm       bool
		recording                   bool
	)
	record := func(sink *[]obs, warm *bool) func(core.Sample) {
		return func(s core.Sample) {
			if !s.ColdStart {
				*warm = true
			}
			if !recording {
				return
			}
			est, _ := s.Result.Agg.Value.AsFloat()
			*sink = append(*sink, obs{
				rootEpoch:    s.RootEpoch,
				contributors: s.Contributors,
				est:          est,
				live:         c.LiveCount(),
				cold:         s.ColdStart,
			})
		}
	}
	dreq, err := core.ParseRequest("dcount(host) every 250ms")
	if err != nil {
		t.Fatal(err)
	}
	qreq, err := core.ParseRequest("p99(load) every 250ms")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(0, dreq, record(&dcountSamples, &dcountWarm)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(0, qreq, record(&quantSamples, &quantWarm)); err != nil {
		t.Fatal(err)
	}
	for i := 0; !(dcountWarm && quantWarm) && i < 64; i++ {
		c.RunFor(period)
	}
	if !dcountWarm || !quantWarm {
		t.Fatalf("streams never warmed: dcount=%v p99=%v", dcountWarm, quantWarm)
	}

	rng := rand.New(rand.NewSource(83))
	kills := 0
	for _, ev := range workload.Churn(rng, n, workload.ChurnHalfLife(0.01, period), window, 0.5) {
		ev := ev
		c.Net.Schedule(ev.At, func() {
			switch ev.Kind {
			case workload.ChurnKill:
				candidates := c.LiveIndices()[1:]
				if len(candidates) == 0 {
					return
				}
				kills++
				c.Kill(candidates[rng.Intn(len(candidates))])
			case workload.ChurnJoin:
				seedNode(c.AddNode())
			case workload.ChurnRecover:
				var dead []int
				for i := 1; i < len(c.Nodes); i++ {
					if c.Down(i) {
						dead = append(dead, i)
					}
				}
				if len(dead) == 0 {
					seedNode(c.AddNode())
					return
				}
				c.Recover(dead[rng.Intn(len(dead))])
			}
		})
	}
	recording = true
	c.RunFor(window)

	minSamples := int(window/period) * 8 / 10
	if len(dcountSamples) < minSamples || len(quantSamples) < minSamples {
		t.Fatalf("stream starved: dcount=%d p99=%d samples over %d epochs",
			len(dcountSamples), len(quantSamples), int(window/period))
	}

	// dcount: monotone epochs, and each warm estimate within the HLL
	// error bound of its own contributor count (the exact truth, since
	// hosts are distinct).
	prevRoot := uint64(0)
	var worstRel float64
	for i, o := range dcountSamples {
		if o.rootEpoch < prevRoot {
			t.Fatalf("dcount sample %d: RootEpoch went backward (%d -> %d)", i, prevRoot, o.rootEpoch)
		}
		prevRoot = o.rootEpoch
		if o.cold || o.contributors == 0 {
			continue
		}
		rel := (o.est - float64(o.contributors)) / float64(o.contributors)
		if rel < 0 {
			rel = -rel
		}
		if rel > worstRel {
			worstRel = rel
		}
		if rel > hllErr {
			t.Errorf("dcount sample %d: estimate %.0f vs %d contributors (relErr %.3f > %.3f)",
				i, o.est, o.contributors, rel, hllErr)
		}
	}

	// p99: monotone epochs, and every warm estimate stays a real load
	// value; the tight feasible-rank window is checked against the
	// survivor oracle in the quiet tail, where the contributor set is
	// known exactly. Rank slack 0.05 covers summary error plus a
	// straggler report.
	p99Window := func() (lo, hi float64) {
		var loads []float64
		for i := range c.Nodes {
			if !c.Down(i) {
				loads = append(loads, soakLoad(i))
			}
		}
		sort.Float64s(loads)
		w := len(loads)
		lor := int(math.Ceil(0.94*float64(w))) - 1
		hir := int(math.Ceil(float64(w))) - 1
		if lor < 0 {
			lor = 0
		}
		return loads[lor], loads[hir]
	}
	prevRoot = 0
	for i, o := range quantSamples {
		if o.rootEpoch < prevRoot {
			t.Fatalf("p99 sample %d: RootEpoch went backward (%d -> %d)", i, prevRoot, o.rootEpoch)
		}
		prevRoot = o.rootEpoch
		if o.cold || o.contributors == 0 {
			continue
		}
		if o.est < 0 || o.est > 99 {
			t.Fatalf("p99 sample %d: estimate %v outside the attribute range", i, o.est)
		}
	}

	// Quiet tail: churn stops, both streams must reconverge to the exact
	// oracles over live nodes and hold there.
	c.RunFor(40 * period)
	var live int64
	for i := range c.Nodes {
		if !c.Down(i) {
			live++
		}
	}
	finalD := dcountSamples[len(dcountSamples)-1]
	relD := math.Abs(finalD.est-float64(live)) / float64(live)
	if relD > hllErr {
		t.Errorf("post-churn dcount %.0f vs %d live (relErr %.3f > %.3f)", finalD.est, live, relD, hllErr)
	}
	if finalD.contributors != live {
		t.Errorf("post-churn dcount contributors = %d, want %d live", finalD.contributors, live)
	}
	finalQ := quantSamples[len(quantSamples)-1]
	lo, hi := p99Window()
	if finalQ.est < lo || finalQ.est > hi {
		t.Errorf("post-churn p99 = %v outside feasible window [%v, %v] over %d live nodes",
			finalQ.est, lo, hi, live)
	}
	t.Logf("sketch soak: %d kills, %d dcount samples (worst relErr %.3f), %d p99 samples, final dcount %.0f/%d live, final p99 %v in [%v, %v]",
		kills, len(dcountSamples), worstRel, len(quantSamples), finalD.est, live, finalQ.est, lo, hi)
}

// TestStandingRepairAfterInteriorKill is the deterministic repair bound
// of the issue: kill the subscribed interior node carrying the largest
// subtree and require (a) the coverage dip to start only after the
// overlay purge (the stale-report window, bounded by detection time),
// (b) full coverage of the live population restored within two epochs
// of the dip starting — the overlay repairs the slot and the
// subscription re-installs on the repaired tree within one epoch, plus
// one epoch for the report pipeline — and (c) coverage to hold
// afterward.
func TestStandingRepairAfterInteriorKill(t *testing.T) {
	const (
		n      = 120
		period = 250 * time.Millisecond
	)
	c := New(churnTestOptions(n, 73, period))
	for i := range c.Nodes {
		c.Nodes[i].Store().SetString("slice", soakSlice(i))
	}
	req, err := core.ParseRequest("count(*) every 250ms")
	if err != nil {
		t.Fatal(err)
	}
	warm, recording := false, false
	type obs struct {
		at      time.Duration
		covered bool
	}
	var trace []obs
	if _, err := c.Subscribe(0, req, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
		if recording {
			trace = append(trace, obs{at: s.At, covered: s.Contributors >= int64(c.LiveCount())})
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(period)
	}
	if !warm {
		t.Fatal("standing subscription never warmed")
	}
	c.RunFor(2 * period)

	victim, best := -1, 0
	for i := 1; i < len(c.Nodes); i++ {
		for _, si := range c.Nodes[i].Subs() {
			if !si.Root && si.Targets > best {
				victim, best = i, si.Targets
			}
		}
	}
	if victim < 0 {
		t.Fatal("no subscribed interior node found")
	}
	recording = true
	killAt := c.Net.Now()
	c.Kill(victim)
	c.RunFor(24 * period)

	dipStart, dipLast := time.Duration(-1), time.Duration(-1)
	for _, o := range trace {
		if o.covered {
			continue
		}
		if dipStart < 0 {
			dipStart = o.at
		}
		dipLast = o.at
	}
	if dipStart < 0 {
		t.Logf("victim %d (%d targets): coverage never dipped (stale window hid the repair)", victim, best)
		return
	}
	detect := dipStart - killAt
	dip := dipLast - dipStart + period
	t.Logf("victim %d (%d targets): detect=%v dip=%v", victim, best, detect, dip)
	// Detection: heartbeat misses (~1.5 periods) are hidden by the
	// stale-report window (3 periods), so the dip cannot start later
	// than stale expiry plus one delivery epoch.
	if detect > 5*period {
		t.Errorf("coverage dip started %v after the kill (> 5 epochs)", detect)
	}
	if dip > 2*period {
		t.Errorf("coverage dip lasted %v (> 2 epochs): repair too slow", dip)
	}
	if dipLast >= trace[len(trace)-1].at {
		t.Error("coverage did not hold after repair")
	}
}

// TestJoinEntersStandingStream: a node joining a live cluster lands
// inside the subscribed tree and must appear in the delivered samples
// within a handful of epochs (one epoch from the moment a subscribed
// parent learns about it, plus announcement propagation).
func TestJoinEntersStandingStream(t *testing.T) {
	const (
		n      = 96
		period = 250 * time.Millisecond
	)
	c := New(churnTestOptions(n, 79, period))
	for i := range c.Nodes {
		c.Nodes[i].Store().SetString("slice", soakSlice(i))
	}
	req, err := core.ParseRequest("count(*) every 250ms")
	if err != nil {
		t.Fatal(err)
	}
	var latest core.Sample
	warm := false
	if _, err := c.Subscribe(0, req, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
		latest = s
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(period)
	}
	if !warm {
		t.Fatal("standing subscription never warmed")
	}
	if latest.Contributors != int64(n) {
		t.Fatalf("pre-join contributors = %d, want %d", latest.Contributors, n)
	}
	for j := 0; j < 4; j++ {
		i := c.AddNode()
		c.Nodes[i].Store().SetString("slice", soakSlice(i))
	}
	// Join handshake + announcements, then at most one epoch for the
	// subscribed parents to install the newcomers, plus pipeline depth.
	deadline := 24
	reached := -1
	for e := 0; e < deadline; e++ {
		c.RunFor(period)
		if latest.Contributors == int64(n+4) {
			reached = e
			break
		}
	}
	if reached < 0 {
		t.Fatalf("joined nodes never appeared: contributors = %d, want %d", latest.Contributors, n+4)
	}
	t.Logf("4 joiners fully visible after %d epochs", reached+1)
}
