package cluster

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/value"
)

// TestStandingEpochAllocBudget locks the steady-state allocation cost
// of the standing-query epoch tick. After the pipeline is warm, one
// epoch at one node costs: the epoch-tick timer re-arm, the local
// re-evaluation, one pooled report state, one boxed EpochReportMsg,
// and the outbox flush — all recycled or constant. The budget is
// deliberately loose (2x the measured steady state) so it catches a
// lost pool or a new per-epoch allocation loop, not jitter.
func TestStandingEpochAllocBudget(t *testing.T) {
	const (
		n      = 64
		period = 200 * time.Millisecond
		// allocsPerNodeEpoch is the gate: measured steady state is
		// ~5-7 objects per node per epoch (message boxing, value
		// boxing, batch slices); 16 leaves room for platform variation
		// without letting a per-epoch allocation loop hide.
		allocsPerNodeEpoch = 16.0
	)
	c := New(Options{N: n, Seed: 5, Node: core.Config{SubTTL: time.Hour}})
	for i, nd := range c.Nodes {
		nd.Store().Set("mem", value.Int(int64(i)))
	}
	req, err := core.ParseRequest("avg(mem)")
	if err != nil {
		t.Fatal(err)
	}
	req.Period = period
	warm := false
	if _, err := c.Subscribe(0, req, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(period)
	}
	if !warm {
		t.Fatal("standing subscription never warmed")
	}
	// Let the pools fill (first post-warm epochs still allocate the
	// recycled inventory).
	c.RunFor(10 * period)

	avg := testing.AllocsPerRun(10, func() {
		c.RunFor(period)
	})
	perNode := avg / n
	t.Logf("steady-state standing epoch: %.0f allocs/epoch total, %.2f per node", avg, perNode)
	if perNode > allocsPerNodeEpoch {
		t.Errorf("standing epoch allocates %.2f objects per node per epoch, budget %.0f — a pooled path regressed",
			perNode, allocsPerNodeEpoch)
	}
}
