package cluster

// Counter-accounting properties of the sharded simnet at the cluster
// level: the full message accounting (Total/Wire, per-kind, per-node
// sent and received) must not depend on how nodes are partitioned
// across shards, and the per-node ledgers must always sum to the
// totals. Two regimes are covered:
//
//   - sharded-vs-sharded (TestShardCountInvariantCounters): the window
//     schedule is derived from global event times and the horizon,
//     never from the partition, so ANY workload — including the
//     rng-consuming LAN latency model and cond-driven pumping via
//     Execute/RunWhile that sit outside the classic-vs-sharded
//     equivalence envelope — must account identically at shards=2,3,4.
//   - classic-vs-sharded (TestShardedCounterMatchesClassic): inside
//     the envelope (Pairwise latencies, RunFor-only pumping) the
//     sharded ledgers must also match the classic scheduler's.
//
// See simnet/shard.go for the envelope; experiments/shard_equiv_test.go
// locks full byte-equivalence of transcripts inside it.

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/simnet"
)

// counterDigest flattens every ledger a Counter exposes into one
// comparable string. fmt sorts map keys, so per-kind maps print
// deterministically; per-node maps are sorted explicitly by id.
func counterDigest(c *simnet.Counter) string {
	perNode := func(m map[ids.ID]int64) string {
		keys := make([]ids.ID, 0, len(m))
		for id := range m {
			keys = append(keys, id)
		}
		sort.Slice(keys, func(i, j int) bool { return ids.Less(keys[i], keys[j]) })
		var b []byte
		for _, id := range keys {
			b = fmt.Appendf(b, "%s=%d ", id.Short(), m[id])
		}
		return string(b)
	}
	return fmt.Sprintf("total=%d wire=%d\nbykind=%v\nwirebykind=%v\nbynode=%s\nrecvbynode=%s",
		c.Total, c.Wire, c.ByKind(), c.WireByKind(),
		perNode(c.ByNode()), perNode(c.RecvByNode()))
}

// checkLedgerSums asserts the internal consistency property that holds
// for every counter regardless of scheduler: per-node sent counts sum
// to Total, and per-kind counts do too (logical and wire).
func checkLedgerSums(t *testing.T, label string, c *simnet.Counter) {
	t.Helper()
	var byNode, byKind, wireByKind int64
	for _, n := range c.ByNode() {
		byNode += n
	}
	for _, n := range c.ByKind() {
		byKind += n
	}
	for _, n := range c.WireByKind() {
		wireByKind += n
	}
	if byNode != c.Total {
		t.Errorf("%s: sum(ByNode) = %d, Total = %d", label, byNode, c.Total)
	}
	if byKind != c.Total {
		t.Errorf("%s: sum(ByKind) = %d, Total = %d", label, byKind, c.Total)
	}
	if wireByKind != c.Wire {
		t.Errorf("%s: sum(WireByKind) = %d, Wire = %d", label, wireByKind, c.Wire)
	}
}

// runShardCounterWorkload drives a seeded mixed workload — one-shot
// queries through the cond-driven Execute path, a standing query, and
// a kill — and returns the counter digest. The LAN model draws from
// the per-sender rng streams, exercising the shard-count independence
// of latency generation.
func runShardCounterWorkload(t *testing.T, shards int) (string, *simnet.Counter) {
	t.Helper()
	c := New(Options{
		N:       72,
		Seed:    29,
		Latency: simnet.LAN(simnet.LANConfig{}),
		Shards:  shards,
		Overlay: pastry.Config{HeartbeatEvery: 150 * time.Millisecond, HeartbeatMiss: 3},
	})
	for i, n := range c.Nodes {
		n.Store().SetInt("a", int64(i%13))
		if i%3 == 0 {
			n.Store().SetBool("service_x", true)
		}
	}
	if _, err := c.Execute(0, sumReq("")); err != nil {
		t.Fatalf("shards=%d execute: %v", shards, err)
	}
	if _, err := c.Execute(5, sumReq("service_x = true")); err != nil {
		t.Fatalf("shards=%d filtered execute: %v", shards, err)
	}
	req := sumReq("")
	req.Period = 120 * time.Millisecond
	sid, err := c.Subscribe(1, req, func(core.Sample) {})
	if err != nil {
		t.Fatalf("shards=%d subscribe: %v", shards, err)
	}
	c.RunFor(700 * time.Millisecond)
	c.Kill(40)
	c.RunFor(900 * time.Millisecond)
	c.Unsubscribe(1, sid)
	c.RunFor(300 * time.Millisecond)
	ctr := c.Net.Counter()
	return counterDigest(ctr), ctr
}

// TestShardCountInvariantCounters proves the accounting is a pure
// function of the workload, not of the partition: shards=2,3,4 agree
// ledger-for-ledger on a workload that includes rng-drawn latencies
// and cond-driven pumping.
func TestShardCountInvariantCounters(t *testing.T) {
	ref, refCtr := runShardCounterWorkload(t, 2)
	checkLedgerSums(t, "shards=2", refCtr)
	if refCtr.Total == 0 || refCtr.Wire == 0 {
		t.Fatal("workload produced no traffic")
	}
	for _, shards := range []int{3, 4} {
		got, ctr := runShardCounterWorkload(t, shards)
		checkLedgerSums(t, fmt.Sprintf("shards=%d", shards), ctr)
		if got != ref {
			t.Errorf("shards=%d accounting diverged from shards=2:\n got: %s\nwant: %s",
				shards, got, ref)
		}
	}
}

// shardedClassicWorkload is an envelope-respecting workload (Pairwise
// latencies, RunFor-only pumping, queries injected directly) shared by
// the classic and sharded runs of TestShardedCounterMatchesClassic.
func shardedClassicWorkload(t *testing.T, shards int) (string, *simnet.Counter) {
	t.Helper()
	c := New(Options{
		N:       64,
		Seed:    41,
		Latency: simnet.Pairwise(8*time.Millisecond, 5*time.Millisecond, 41),
		Shards:  shards,
		Overlay: pastry.Config{HeartbeatEvery: 150 * time.Millisecond, HeartbeatMiss: 3},
	})
	for i, n := range c.Nodes {
		n.Store().SetInt("a", int64(i))
	}
	c.Nodes[3].Execute(sumReq(""), func(core.Result, error) {})
	c.RunFor(1 * time.Second)
	req := sumReq("")
	req.Period = 130 * time.Millisecond
	sid, err := c.Subscribe(2, req, func(core.Sample) {})
	if err != nil {
		t.Fatalf("shards=%d subscribe: %v", shards, err)
	}
	c.RunFor(750 * time.Millisecond)
	c.Unsubscribe(2, sid)
	c.RunFor(250 * time.Millisecond)
	ctr := c.Net.Counter()
	return counterDigest(ctr), ctr
}

// TestShardedCounterMatchesClassic checks the sharded accounting
// against the classic scheduler inside the equivalence envelope.
func TestShardedCounterMatchesClassic(t *testing.T) {
	ref, refCtr := shardedClassicWorkload(t, 1)
	checkLedgerSums(t, "classic", refCtr)
	for _, shards := range []int{2, 4} {
		got, ctr := shardedClassicWorkload(t, shards)
		checkLedgerSums(t, fmt.Sprintf("shards=%d", shards), ctr)
		if got != ref {
			t.Errorf("shards=%d accounting diverged from classic:\n got: %s\nwant: %s",
				shards, got, ref)
		}
	}
}
