package cluster

import (
	"fmt"
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/predicate"
)

func sumReq(pred string) core.Request {
	var p predicate.Expr
	if pred != "" {
		p = predicate.MustParse(pred)
	}
	return core.Request{Attr: "a", Spec: aggregate.Spec{Kind: aggregate.KindSum}, Pred: p}
}

func intResult(t *testing.T, res core.Result) int64 {
	t.Helper()
	v, ok := res.Agg.Value.AsInt()
	if !ok {
		f, fok := res.Agg.Value.AsFloat()
		if !fok {
			t.Fatalf("result not numeric: %v", res.Agg)
		}
		return int64(f)
	}
	return v
}

func TestGlobalSumSmall(t *testing.T) {
	c := New(Options{N: 64, Seed: 7})
	want := int64(0)
	for i, n := range c.Nodes {
		n.Store().SetInt("a", int64(i))
		want += int64(i)
	}
	res, err := c.Execute(0, sumReq(""))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got := intResult(t, res); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if res.Contributors != 64 {
		t.Fatalf("contributors = %d, want 64", res.Contributors)
	}
}

func TestSimplePredicateCount(t *testing.T) {
	c := New(Options{N: 128, Seed: 3})
	inGroup := 0
	for i, n := range c.Nodes {
		n.Store().SetInt("a", 0)
		if i%4 == 0 {
			n.Store().SetBool("service_x", true)
			inGroup++
		} else {
			n.Store().SetBool("service_x", false)
		}
	}
	req := core.Request{
		Attr: "*",
		Spec: aggregate.Spec{Kind: aggregate.KindCount},
		Pred: predicate.MustParse("service_x = true"),
	}
	for round := 0; round < 5; round++ {
		res, err := c.Execute(1, req)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := intResult(t, res); got != int64(inGroup) {
			t.Fatalf("round %d: count = %d, want %d", round, got, inGroup)
		}
	}
}

func TestPruningReducesCost(t *testing.T) {
	c := New(Options{N: 256, Seed: 11})
	for i, n := range c.Nodes {
		n.Store().SetBool("svc", i < 8) // tiny group
		n.Store().SetInt("a", 1)
	}
	req := core.Request{
		Attr: "a",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("svc = true"),
	}
	// Warm the tree: first query broadcasts and triggers pruning.
	if err := c.Warm(req, req, req); err != nil {
		t.Fatalf("warm: %v", err)
	}
	res, err := c.Execute(0, req)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got := intResult(t, res); got != 8 {
		t.Fatalf("sum = %d, want 8", got)
	}
	msgs := c.MoaraMessages()
	// A warmed 8-node group in a 256-node system must cost far less
	// than a broadcast (2*256 messages); §5 bounds it near O(m).
	if msgs > 120 {
		t.Fatalf("warmed group query used %d messages, want far fewer than broadcast (512)", msgs)
	}
	t.Logf("warmed query cost: %d messages", msgs)
}

func TestEventualCompletenessUnderChurn(t *testing.T) {
	c := New(Options{N: 128, Seed: 5})
	for _, n := range c.Nodes {
		n.Store().SetBool("g", false)
		n.Store().SetInt("a", 1)
	}
	req := core.Request{
		Attr: "a",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("g = true"),
	}
	if err := c.Warm(req, req); err != nil {
		t.Fatalf("warm: %v", err)
	}
	rng := c.Net.Rand()
	members := make(map[int]bool)
	for round := 0; round < 20; round++ {
		// Toggle a random batch.
		for j := 0; j < 16; j++ {
			i := rng.Intn(len(c.Nodes))
			members[i] = !members[i]
			c.Nodes[i].Store().SetBool("g", members[i])
		}
		c.RunFor(500 * time.Millisecond)
		want := int64(0)
		for i := range members {
			if members[i] {
				want++
			}
		}
		res, err := c.Execute(round%len(c.Nodes), req)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := intResult(t, res); got != want {
			t.Fatalf("round %d: sum = %d, want %d", round, got, want)
		}
	}
}

func TestCompositeQueriesEndToEnd(t *testing.T) {
	c := New(Options{N: 128, Seed: 13})
	wantBoth, wantEither := int64(0), int64(0)
	for i, n := range c.Nodes {
		x := i%2 == 0
		y := i%3 == 0
		n.Store().SetBool("x", x)
		n.Store().SetBool("y", y)
		n.Store().SetInt("a", 1)
		if x && y {
			wantBoth++
		}
		if x || y {
			wantEither++
		}
	}
	inter, err := c.ExecuteText(0, "sum(a) where x = true and y = true")
	if err != nil {
		t.Fatalf("intersection: %v", err)
	}
	if got := intResult(t, inter); got != wantBoth {
		t.Fatalf("intersection sum = %d, want %d", got, wantBoth)
	}
	if len(inter.Stats.Chosen) != 1 {
		t.Fatalf("intersection should query one group, chose %v", inter.Stats.Chosen)
	}
	uni, err := c.ExecuteText(0, "sum(a) where x = true or y = true")
	if err != nil {
		t.Fatalf("union: %v", err)
	}
	if got := intResult(t, uni); got != wantEither {
		t.Fatalf("union sum = %d, want %d", got, wantEither)
	}
	if len(uni.Stats.Chosen) != 2 {
		t.Fatalf("union should query both groups, chose %v", uni.Stats.Chosen)
	}
}

func TestDisjointIntersectionShortCircuits(t *testing.T) {
	c := New(Options{N: 32, Seed: 2})
	for _, n := range c.Nodes {
		n.Store().SetFloat("cpu", 42)
		n.Store().SetInt("a", 1)
	}
	res, err := c.ExecuteText(0, "sum(a) where cpu < 10 and cpu > 90")
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !res.Stats.ShortCircuit {
		t.Fatalf("expected short-circuit, stats: %+v", res.Stats)
	}
	if got := intResult(t, res); got != 0 {
		t.Fatalf("sum = %d, want 0", got)
	}
	if res.Stats.TotalTime != 0 {
		t.Fatalf("short-circuit should be instant, took %v", res.Stats.TotalTime)
	}
}

func TestProtocolBootstrapQuery(t *testing.T) {
	c := New(Options{N: 48, Seed: 17, Bootstrap: BootstrapProtocol})
	want := int64(0)
	for i, n := range c.Nodes {
		n.Store().SetInt("a", int64(i%5))
		want += int64(i % 5)
	}
	res, err := c.Execute(3, sumReq(""))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if got := intResult(t, res); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestManyGroupsIndependentTrees(t *testing.T) {
	c := New(Options{N: 96, Seed: 23})
	for i, n := range c.Nodes {
		n.Store().SetString("slice", fmt.Sprintf("slice-%d", i%6))
		n.Store().SetInt("a", 1)
	}
	for g := 0; g < 6; g++ {
		q := fmt.Sprintf("sum(a) where slice = slice-%d", g)
		res, err := c.ExecuteText(0, q)
		if err != nil {
			t.Fatalf("group %d: %v", g, err)
		}
		if got := intResult(t, res); got != 16 {
			t.Fatalf("group %d: sum = %d, want 16", g, got)
		}
	}
}
