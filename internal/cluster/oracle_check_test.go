package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/value"
	"github.com/moara/moara/internal/workload"
)

// TestRandomQueriesMatchBruteForce is the end-to-end correctness
// model check: random attribute populations, random composite
// predicates, random aggregation functions — Moara's distributed
// answer must equal direct evaluation over every node's store.
func TestRandomQueriesMatchBruteForce(t *testing.T) {
	c := New(Options{N: 160, Seed: 41})
	rng := rand.New(rand.NewSource(41))

	attrs := []string{"p", "q", "r"}
	for _, n := range c.Nodes {
		for _, a := range attrs {
			if rng.Intn(5) == 0 {
				continue // some nodes lack the attribute
			}
			n.Store().SetInt(a, int64(rng.Intn(5)))
		}
		n.Store().SetInt("val", int64(rng.Intn(1000)))
	}

	specs := []aggregate.Spec{
		{Kind: aggregate.KindSum},
		{Kind: aggregate.KindCount},
		{Kind: aggregate.KindMin},
		{Kind: aggregate.KindMax},
		{Kind: aggregate.KindAvg},
	}

	for trial := 0; trial < 40; trial++ {
		pred := randomPred(rng, attrs, 3)
		spec := specs[rng.Intn(len(specs))]
		req := core.Request{Attr: "val", Spec: spec, Pred: pred}

		// Brute force over all stores.
		want := spec.New()
		for i, n := range c.Nodes {
			if pred == nil || pred.Eval(n.Store()) {
				want.Add(c.IDs[i], n.Store().Get("val"))
			}
		}
		res, err := c.Execute(trial%len(c.Nodes), req)
		if err != nil {
			t.Fatalf("trial %d (%s %v): %v", trial, spec, pred, err)
		}
		wr := want.Result()
		if res.Contributors != want.Nodes() {
			t.Fatalf("trial %d (%s over %v): contributors %d, want %d",
				trial, spec, pred, res.Contributors, want.Nodes())
		}
		if wr.Value.IsValid() != res.Agg.Value.IsValid() ||
			(wr.Value.IsValid() && !valuesClose(wr.Value, res.Agg.Value)) {
			t.Fatalf("trial %d (%s over %v): got %v, want %v",
				trial, spec, pred, res.Agg.Value, wr.Value)
		}
		// Occasionally churn attributes between trials.
		for j := 0; j < 10; j++ {
			i := rng.Intn(len(c.Nodes))
			a := attrs[rng.Intn(len(attrs))]
			c.Nodes[i].Store().SetInt(a, int64(rng.Intn(5)))
		}
		c.RunFor(200 * time.Millisecond)
	}
}

// valuesClose compares results with float tolerance (AVG divides).
func valuesClose(a, b value.Value) bool {
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		diff := af - bf
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(1+abs(af))
	}
	return value.Equal(a, b)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func randomPred(rng *rand.Rand, attrs []string, depth int) predicate.Expr {
	if rng.Intn(6) == 0 {
		return nil // global query
	}
	return randomPredExpr(rng, attrs, depth)
}

func randomPredExpr(rng *rand.Rand, attrs []string, depth int) predicate.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		ops := []predicate.Op{
			predicate.OpLT, predicate.OpGT, predicate.OpLE,
			predicate.OpGE, predicate.OpEQ, predicate.OpNE,
		}
		return predicate.Simple{
			Attr: attrs[rng.Intn(len(attrs))],
			Op:   ops[rng.Intn(len(ops))],
			Val:  value.Int(int64(rng.Intn(5))),
		}
	}
	n := 2 + rng.Intn(2)
	terms := make([]predicate.Expr, n)
	for i := range terms {
		terms[i] = randomPredExpr(rng, attrs, depth-1)
	}
	if rng.Intn(2) == 0 {
		return predicate.And{Terms: terms}
	}
	return predicate.Or{Terms: terms}
}

// TestTopKAndEnumEndToEnd checks the list-valued aggregates across the
// network (ordering and membership must survive distributed merging).
func TestTopKAndEnumEndToEnd(t *testing.T) {
	c := New(Options{N: 64, Seed: 43})
	for i, n := range c.Nodes {
		n.Store().SetInt("score", int64((i*37)%100))
		n.Store().SetBool("g", i%2 == 0)
	}
	res, err := c.ExecuteText(0, "top5(score) where g = true")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Agg.Entries) != 5 {
		t.Fatalf("top5 entries = %d", len(res.Agg.Entries))
	}
	prev := int64(101)
	for _, e := range res.Agg.Entries {
		v, _ := e.Value.AsInt()
		if v > prev {
			t.Fatalf("top5 not descending: %v", res.Agg.Entries)
		}
		prev = v
	}
	// Brute-force the expected max.
	wantMax := int64(0)
	for i := range c.Nodes {
		if i%2 == 0 {
			if v := int64((i * 37) % 100); v > wantMax {
				wantMax = v
			}
		}
	}
	if got, _ := res.Agg.Entries[0].Value.AsInt(); got != wantMax {
		t.Fatalf("top5[0] = %d, want %d", got, wantMax)
	}

	enumRes, err := c.ExecuteText(0, "enum(score) where g = true")
	if err != nil {
		t.Fatal(err)
	}
	if len(enumRes.Agg.Entries) != 32 {
		t.Fatalf("enum entries = %d, want 32", len(enumRes.Agg.Entries))
	}
}

// TestKillSubsetPartialAggregation extends the §3.1 partial-aggregation
// law to arbitrary kill subsets: after crashing a random subset of
// nodes and letting the liveness path purge them (Cluster.Kill — no
// RemoveNode boilerplate), the merged partial states of the survivors
// must equal the oracle aggregate computed directly over the survivors,
// and the reported Contributors must equal the survivor count — for
// every aggregate kind, including the keyed GroupedState of `group by`
// queries.
func TestKillSubsetPartialAggregation(t *testing.T) {
	const n = 110
	c := New(Options{
		N: n, Seed: 83,
		Node:    core.Config{ChildTimeout: 400 * time.Millisecond},
		Overlay: pastry.Config{HeartbeatEvery: 150 * time.Millisecond, HeartbeatMiss: 2},
	})
	rng := rand.New(rand.NewSource(83))
	for i, nd := range c.Nodes {
		nd.Store().SetInt("val", int64(rng.Intn(1000)))
		nd.Store().SetString("slice", fmt.Sprintf("s%d", i%7))
	}
	queries := []string{
		"sum(val)", "count(*)", "min(val)", "max(val)", "avg(val)",
		"std(val)", "top3(val)", "enum(val)",
		"count(*) group by slice", "avg(val) group by slice",
	}
	// Warm the trees, then kill random subsets in rounds, recovering
	// some victims between rounds.
	if _, err := c.ExecuteText(0, "sum(val)"); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for _, i := range workload.ToggleBatch(rng, n-1, 8+rng.Intn(12)) {
			c.Kill(i + 1) // spare the front-end
		}
		if round > 0 {
			var dead []int
			for i := 1; i < n; i++ {
				if c.Down(i) {
					dead = append(dead, i)
				}
			}
			for _, i := range workload.ToggleBatch(rng, len(dead), 4) {
				c.Recover(dead[i])
			}
		}
		// Detection + purge + repair settle.
		c.RunFor(3 * time.Second)

		survivors := c.LiveIndices()
		for _, q := range queries {
			req, err := core.ParseRequest(q)
			if err != nil {
				t.Fatal(err)
			}
			// Oracle: direct aggregation over survivor stores, through
			// the same keyed engine the distributed path uses.
			want := aggregate.NewGrouped(req.Spec, 0)
			for _, i := range survivors {
				key := aggregate.ScalarKey
				if req.GroupBy != "" {
					key = c.Nodes[i].Store().Get(req.GroupBy).Key()
				}
				v := value.Int(1) // count(*): every member contributes 1
				if req.Attr != "*" {
					v = c.Nodes[i].Store().Get(req.Attr)
				}
				want.AddKeyed(c.IDs[i], key, v)
			}
			res, err := c.Execute(0, req)
			if err != nil {
				t.Fatalf("round %d %q: %v", round, q, err)
			}
			if res.Contributors != int64(len(survivors)) {
				t.Errorf("round %d %q: contributors = %d, want %d survivors",
					round, q, res.Contributors, len(survivors))
			}
			wr := want.Result()
			if wr.Value.IsValid() != res.Agg.Value.IsValid() ||
				(wr.Value.IsValid() && !valuesClose(wr.Value, res.Agg.Value)) {
				t.Errorf("round %d %q: got %v, want %v over %d survivors",
					round, q, res.Agg.Value, wr.Value, len(survivors))
			}
			if len(res.Agg.Entries) != len(wr.Entries) {
				t.Errorf("round %d %q: %d entries, want %d", round, q, len(res.Agg.Entries), len(wr.Entries))
			}
			if req.GroupBy != "" {
				wantGroups := want.Results()
				if len(res.Groups) != len(wantGroups) {
					t.Errorf("round %d %q: %d groups, want %d", round, q, len(res.Groups), len(wantGroups))
				}
				for k, wv := range wantGroups {
					if gv, ok := res.Groups[k]; !ok || !valuesClose(gv.Value, wv.Value) {
						t.Errorf("round %d %q: group %s = %v, want %v", round, q, k, res.Groups[k].Value, wv.Value)
					}
				}
			}
		}
	}
}

// TestStringGroupsManySlices exercises many simultaneous trees with
// string-equality groups (the PlanetLab slice pattern).
func TestStringGroupsManySlices(t *testing.T) {
	const slices = 20
	c := New(Options{N: 200, Seed: 47})
	counts := make([]int64, slices)
	rng := rand.New(rand.NewSource(47))
	for _, n := range c.Nodes {
		s := rng.Intn(slices)
		n.Store().SetString("slice", fmt.Sprintf("s%02d", s))
		counts[s]++
	}
	for s := 0; s < slices; s++ {
		res, err := c.ExecuteText(0, fmt.Sprintf("count(*) where slice = s%02d", s))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.Agg.Value.AsInt(); got != counts[s] {
			t.Fatalf("slice %d: count = %d, want %d", s, got, counts[s])
		}
	}
}
