package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/value"
)

// TestRandomQueriesMatchBruteForce is the end-to-end correctness
// model check: random attribute populations, random composite
// predicates, random aggregation functions — Moara's distributed
// answer must equal direct evaluation over every node's store.
func TestRandomQueriesMatchBruteForce(t *testing.T) {
	c := New(Options{N: 160, Seed: 41})
	rng := rand.New(rand.NewSource(41))

	attrs := []string{"p", "q", "r"}
	for _, n := range c.Nodes {
		for _, a := range attrs {
			if rng.Intn(5) == 0 {
				continue // some nodes lack the attribute
			}
			n.Store().SetInt(a, int64(rng.Intn(5)))
		}
		n.Store().SetInt("val", int64(rng.Intn(1000)))
	}

	specs := []aggregate.Spec{
		{Kind: aggregate.KindSum},
		{Kind: aggregate.KindCount},
		{Kind: aggregate.KindMin},
		{Kind: aggregate.KindMax},
		{Kind: aggregate.KindAvg},
	}

	for trial := 0; trial < 40; trial++ {
		pred := randomPred(rng, attrs, 3)
		spec := specs[rng.Intn(len(specs))]
		req := core.Request{Attr: "val", Spec: spec, Pred: pred}

		// Brute force over all stores.
		want := spec.New()
		for i, n := range c.Nodes {
			if pred == nil || pred.Eval(n.Store()) {
				want.Add(c.IDs[i], n.Store().Get("val"))
			}
		}
		res, err := c.Execute(trial%len(c.Nodes), req)
		if err != nil {
			t.Fatalf("trial %d (%s %v): %v", trial, spec, pred, err)
		}
		wr := want.Result()
		if res.Contributors != want.Nodes() {
			t.Fatalf("trial %d (%s over %v): contributors %d, want %d",
				trial, spec, pred, res.Contributors, want.Nodes())
		}
		if wr.Value.IsValid() != res.Agg.Value.IsValid() ||
			(wr.Value.IsValid() && !valuesClose(wr.Value, res.Agg.Value)) {
			t.Fatalf("trial %d (%s over %v): got %v, want %v",
				trial, spec, pred, res.Agg.Value, wr.Value)
		}
		// Occasionally churn attributes between trials.
		for j := 0; j < 10; j++ {
			i := rng.Intn(len(c.Nodes))
			a := attrs[rng.Intn(len(attrs))]
			c.Nodes[i].Store().SetInt(a, int64(rng.Intn(5)))
		}
		c.RunFor(200 * time.Millisecond)
	}
}

// valuesClose compares results with float tolerance (AVG divides).
func valuesClose(a, b value.Value) bool {
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok {
		diff := af - bf
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(1+abs(af))
	}
	return value.Equal(a, b)
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func randomPred(rng *rand.Rand, attrs []string, depth int) predicate.Expr {
	if rng.Intn(6) == 0 {
		return nil // global query
	}
	return randomPredExpr(rng, attrs, depth)
}

func randomPredExpr(rng *rand.Rand, attrs []string, depth int) predicate.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		ops := []predicate.Op{
			predicate.OpLT, predicate.OpGT, predicate.OpLE,
			predicate.OpGE, predicate.OpEQ, predicate.OpNE,
		}
		return predicate.Simple{
			Attr: attrs[rng.Intn(len(attrs))],
			Op:   ops[rng.Intn(len(ops))],
			Val:  value.Int(int64(rng.Intn(5))),
		}
	}
	n := 2 + rng.Intn(2)
	terms := make([]predicate.Expr, n)
	for i := range terms {
		terms[i] = randomPredExpr(rng, attrs, depth-1)
	}
	if rng.Intn(2) == 0 {
		return predicate.And{Terms: terms}
	}
	return predicate.Or{Terms: terms}
}

// TestTopKAndEnumEndToEnd checks the list-valued aggregates across the
// network (ordering and membership must survive distributed merging).
func TestTopKAndEnumEndToEnd(t *testing.T) {
	c := New(Options{N: 64, Seed: 43})
	for i, n := range c.Nodes {
		n.Store().SetInt("score", int64((i*37)%100))
		n.Store().SetBool("g", i%2 == 0)
	}
	res, err := c.ExecuteText(0, "top5(score) where g = true")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Agg.Entries) != 5 {
		t.Fatalf("top5 entries = %d", len(res.Agg.Entries))
	}
	prev := int64(101)
	for _, e := range res.Agg.Entries {
		v, _ := e.Value.AsInt()
		if v > prev {
			t.Fatalf("top5 not descending: %v", res.Agg.Entries)
		}
		prev = v
	}
	// Brute-force the expected max.
	wantMax := int64(0)
	for i := range c.Nodes {
		if i%2 == 0 {
			if v := int64((i * 37) % 100); v > wantMax {
				wantMax = v
			}
		}
	}
	if got, _ := res.Agg.Entries[0].Value.AsInt(); got != wantMax {
		t.Fatalf("top5[0] = %d, want %d", got, wantMax)
	}

	enumRes, err := c.ExecuteText(0, "enum(score) where g = true")
	if err != nil {
		t.Fatal(err)
	}
	if len(enumRes.Agg.Entries) != 32 {
		t.Fatalf("enum entries = %d, want 32", len(enumRes.Agg.Entries))
	}
}

// TestStringGroupsManySlices exercises many simultaneous trees with
// string-equality groups (the PlanetLab slice pattern).
func TestStringGroupsManySlices(t *testing.T) {
	const slices = 20
	c := New(Options{N: 200, Seed: 47})
	counts := make([]int64, slices)
	rng := rand.New(rand.NewSource(47))
	for _, n := range c.Nodes {
		s := rng.Intn(slices)
		n.Store().SetString("slice", fmt.Sprintf("s%02d", s))
		counts[s]++
	}
	for s := 0; s < slices; s++ {
		res, err := c.ExecuteText(0, fmt.Sprintf("count(*) where slice = s%02d", s))
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.Agg.Value.AsInt(); got != counts[s] {
			t.Fatalf("slice %d: count = %d, want %d", s, got, counts[s])
		}
	}
}
