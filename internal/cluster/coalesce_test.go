package cluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/value"
	"github.com/moara/moara/internal/workload"
)

// coalesceRun drives one deterministic mixed workload (one-shot scalar,
// grouped, and filtered queries from several front-ends plus concurrent
// standing queries) on a fresh cluster and returns everything
// observable: per-query results, per-subscription sample streams, and
// the logical/wire message counts.
type coalesceOutcome struct {
	results []core.Result
	samples [][]string
	logical int64
	wire    int64
}

func coalesceRun(t *testing.T, window time.Duration) coalesceOutcome {
	t.Helper()
	// The default latency model (fixed 1ms, no processing jitter) draws
	// no randomness per message, so the two runs' virtual timelines are
	// identical and outputs can be compared byte for byte.
	c := New(Options{N: 64, Seed: 11, Node: core.Config{CoalesceWindow: window}})
	for i, nd := range c.Nodes {
		nd.Store().Set("slice", value.Str(fmt.Sprintf("s%d", i%5)))
		// Integer values keep every aggregate exact and order-independent.
		nd.Store().Set("mem_util", value.Int(int64(i*13%100)))
	}

	specs := workload.MultiQuery(c.Net.Rand(), 64, 12, 5, "200ms")
	out := coalesceOutcome{}
	var sids []core.QueryID
	var sidFes []int
	for _, spec := range specs {
		req, err := core.ParseRequest(spec.Text)
		if err != nil {
			t.Fatalf("parse %q: %v", spec.Text, err)
		}
		if !spec.Standing {
			continue
		}
		i := len(out.samples)
		out.samples = append(out.samples, nil)
		sid, err := c.Subscribe(spec.Frontend, req, func(s core.Sample) {
			out.samples[i] = append(out.samples[i], fmt.Sprintf(
				"epoch=%d root=%d at=%v lag=%v cold=%v agg=%s n=%d groups=%v trunc=%v",
				s.Epoch, s.RootEpoch, s.At, s.Lag, s.ColdStart, s.Result.Agg.Value,
				s.Result.Contributors, s.Result.Groups, s.Result.Truncated))
		})
		if err != nil {
			t.Fatalf("subscribe %q: %v", spec.Text, err)
		}
		sids = append(sids, sid)
		sidFes = append(sidFes, spec.Frontend)
	}
	for round := 0; round < 8; round++ {
		for _, spec := range specs {
			if spec.Standing {
				continue
			}
			req, _ := core.ParseRequest(spec.Text)
			res, err := c.Execute(spec.Frontend, req)
			if err != nil {
				t.Fatalf("execute %q: %v", spec.Text, err)
			}
			res.Stats.Costs = nil // map with probe costs; compared via Chosen
			out.results = append(out.results, res)
		}
		c.RunFor(200 * time.Millisecond)
	}
	for i, sid := range sids {
		c.Unsubscribe(sidFes[i], sid)
	}
	c.RunFor(time.Second)
	out.logical = c.QueryMessages()
	out.wire = c.WireQueryMessages()
	return out
}

// TestCoalesceEquivalence is the batching-equivalence property: the
// same seeded workload with the coalescing outbox on vs off produces
// identical Results and identical Samples — values, contributor
// counts, epochs, even virtual-time latencies — while the coalesced
// run ships the same logical messages in strictly fewer wire messages.
func TestCoalesceEquivalence(t *testing.T) {
	on := coalesceRun(t, 0)
	off := coalesceRun(t, core.CoalesceOff)

	if len(on.results) == 0 || len(on.samples) == 0 {
		t.Fatal("workload produced no results/samples")
	}
	if !reflect.DeepEqual(on.results, off.results) {
		for i := range on.results {
			if !reflect.DeepEqual(on.results[i], off.results[i]) {
				t.Fatalf("result %d differs:\n  on:  %+v\n  off: %+v", i, on.results[i], off.results[i])
			}
		}
		t.Fatal("results differ")
	}
	if !reflect.DeepEqual(on.samples, off.samples) {
		for i := range on.samples {
			if !reflect.DeepEqual(on.samples[i], off.samples[i]) {
				t.Fatalf("sample stream %d differs:\n  on:  %v\n  off: %v", i, on.samples[i], off.samples[i])
			}
		}
		t.Fatal("samples differ")
	}
	if on.logical != off.logical {
		t.Errorf("logical messages must not change under coalescing: on=%d off=%d", on.logical, off.logical)
	}
	if off.wire != off.logical {
		t.Errorf("uncoalesced wire (%d) should equal logical (%d)", off.wire, off.logical)
	}
	if on.wire >= off.wire {
		t.Errorf("coalescing must strictly reduce wire messages: on=%d off=%d", on.wire, off.wire)
	}
	t.Logf("logical=%d wire on=%d off=%d (saved %.0f%%)",
		on.logical, on.wire, off.wire, 100*float64(off.wire-on.wire)/float64(off.wire))
}
