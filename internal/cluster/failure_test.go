package cluster

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/predicate"
)

// TestQueryCompletesDespiteCrashedChild injects a mid-tree crash wave:
// queries issued before failure detection complete via the child
// timeout (§7), returning the answers that are reachable; once the
// liveness path has purged the corpses, answers cover every survivor.
func TestQueryCompletesDespiteCrashedChild(t *testing.T) {
	c := New(Options{
		N: 96, Seed: 21,
		Node:    core.Config{ChildTimeout: 500 * time.Millisecond},
		Overlay: pastry.Config{HeartbeatEvery: 200 * time.Millisecond},
	})
	for _, n := range c.Nodes {
		n.Store().SetInt("a", 1)
	}
	req := core.Request{Attr: "a", Spec: aggregate.Spec{Kind: aggregate.KindSum}}
	res, err := c.Execute(0, req)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if got, _ := res.Agg.Value.AsInt(); got != 96 {
		t.Fatalf("baseline sum = %d", got)
	}
	// Crash a third of the nodes — but not the front-end and not the
	// tree root (root failover is TestRootFailover's subject). Nothing
	// else is touched: overlay purge is the liveness path's job.
	rootID := c.Oracle.Owner(ids.FromKey("a"))
	killed := 0
	for i := 1; i < len(c.Nodes) && killed < 32; i += 3 {
		if c.IDs[i] == rootID {
			continue
		}
		c.Kill(i)
		killed++
	}
	live := int64(c.LiveCount())
	// Immediately after the crash, before detection: the query must
	// still COMPLETE (§7: termination is guaranteed by timeouts, not by
	// failure detection), with whatever happens to be reachable — a
	// corpse on the route to the tree root can legitimately cost the
	// whole round, which is exactly what Result.Completeness surfaces.
	res, err = c.Execute(0, req)
	if err != nil {
		t.Fatalf("crashed run: %v", err)
	}
	if got, _ := res.Agg.Value.AsInt(); got > live+int64(killed) {
		t.Fatalf("partial sum = %d exceeds the whole population", got)
	}
	if res.Stats.TotalTime <= 0 {
		t.Fatal("latency not recorded")
	}
	t.Logf("pre-detection answer with %d/%d down: %d contributors, completeness %.2f",
		killed, 96, res.Contributors, res.Completeness())
	// After heartbeat detection and the obituary purge, answers must
	// cover exactly the survivors — proving the purge happened through
	// the liveness path, with no test-side RemoveNode boilerplate.
	c.RunFor(3 * time.Second)
	res, err = c.Execute(0, req)
	if err != nil {
		t.Fatalf("post-purge run: %v", err)
	}
	if got, _ := res.Agg.Value.AsInt(); got != live {
		t.Fatalf("post-purge sum = %d, want %d", got, live)
	}
	if res.Contributors != live {
		t.Fatalf("post-purge contributors = %d, want %d", res.Contributors, live)
	}
}

// TestRecoveryAfterCrash verifies that recovered nodes rejoin the
// answer set on subsequent queries: the crash is detected and purged by
// the liveness path, and Recover rejoins through the live handshake —
// clearing the death certificates the cluster issued.
func TestRecoveryAfterCrash(t *testing.T) {
	c := New(Options{
		N: 64, Seed: 23,
		Node:    core.Config{ChildTimeout: 500 * time.Millisecond},
		Overlay: pastry.Config{HeartbeatEvery: 200 * time.Millisecond},
	})
	for _, n := range c.Nodes {
		n.Store().SetInt("a", 1)
	}
	req := core.Request{Attr: "a", Spec: aggregate.Spec{Kind: aggregate.KindSum}}
	c.Kill(7)
	if _, err := c.Execute(0, req); err != nil {
		t.Fatal(err)
	}
	// Let detection declare the victim dead cluster-wide, then recover
	// it: the rejoin must overcome the death certificates.
	c.RunFor(2 * time.Second)
	c.Recover(7)
	c.RunFor(3 * time.Second)
	res, err := c.Execute(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Agg.Value.AsInt(); got != 64 {
		t.Fatalf("post-recovery sum = %d, want 64", got)
	}
}

// TestSQPNodeBound property-tests §5's overhead analysis: once a group
// tree has settled, a query reaches at most O(m) nodes — we assert the
// paper's 2m bound plus root/route slack.
func TestSQPNodeBound(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{256, 4}, {256, 16}, {1024, 8}, {1024, 32},
	} {
		c := New(Options{N: tc.n, Seed: int64(tc.n + tc.m)})
		for i, n := range c.Nodes {
			n.Store().SetBool("g", i < tc.m)
		}
		req := core.Request{
			Attr: "*",
			Spec: aggregate.Spec{Kind: aggregate.KindCount},
			Pred: predicate.MustParse("g = true"),
		}
		// Settle the tree fully.
		for i := 0; i < 6; i++ {
			if _, err := c.Execute(0, req); err != nil {
				t.Fatal(err)
			}
		}
		c.RunFor(2 * time.Second)
		c.Net.ResetCounter()
		res, err := c.Execute(0, req)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.Agg.Value.AsInt(); got != int64(tc.m) {
			t.Fatalf("n=%d m=%d: count = %d", tc.n, tc.m, got)
		}
		// Count distinct nodes receiving any query message.
		receivers := 0
		for range c.Net.Counter().RecvByNode() {
			receivers++
		}
		bound := 2*tc.m + 8 // §5: ≤2m tree nodes; slack for root+route
		if receivers > bound {
			t.Errorf("n=%d m=%d: %d nodes touched, bound %d", tc.n, tc.m, receivers, bound)
		} else {
			t.Logf("n=%d m=%d: %d nodes touched (bound %d)", tc.n, tc.m, receivers, bound)
		}
	}
}

// TestTreesGoSilentWithoutQueries checks §6.1: once queries stop and
// churn continues, trees stop generating traffic (nodes slide into
// NO-UPDATE and stay silent).
func TestTreesGoSilentWithoutQueries(t *testing.T) {
	c := New(Options{N: 128, Seed: 29})
	for i, n := range c.Nodes {
		n.Store().SetBool("g", i%2 == 0)
	}
	req := core.Request{
		Attr: "*",
		Spec: aggregate.Spec{Kind: aggregate.KindCount},
		Pred: predicate.MustParse("g = true"),
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Execute(0, req); err != nil {
			t.Fatal(err)
		}
	}
	// Churn with no queries: traffic must die out.
	rng := c.Net.Rand()
	var lastWindow int64
	for round := 0; round < 10; round++ {
		for j := 0; j < 32; j++ {
			i := rng.Intn(len(c.Nodes))
			v, _ := c.Nodes[i].Store().Get("g").AsBool()
			c.Nodes[i].Store().SetBool("g", !v)
		}
		c.RunFor(time.Second)
		if round == 8 {
			c.Net.ResetCounter()
		}
		if round == 9 {
			lastWindow = c.MoaraMessages()
		}
	}
	// After several churn-only rounds every node has slid into
	// NO-UPDATE; the last round must be nearly silent.
	if lastWindow > int64(len(c.Nodes)/8) {
		t.Fatalf("tree still chatty after queries stopped: %d msgs in final round", lastWindow)
	}
}

// TestDropInjectionDoesNotWedge drops a fraction of Moara messages; the
// query layer must still terminate via timeouts.
func TestDropInjectionDoesNotWedge(t *testing.T) {
	drop := 0
	c := New(Options{
		N:    80,
		Seed: 31,
		Node: core.Config{ChildTimeout: 300 * time.Millisecond, QueryTimeout: 5 * time.Second},
		Tap:  nil,
	})
	// Install a drop rule after warm-up so the overlay is intact.
	for _, n := range c.Nodes {
		n.Store().SetInt("a", 1)
	}
	req := core.Request{Attr: "a", Spec: aggregate.Spec{Kind: aggregate.KindSum}}
	if _, err := c.Execute(0, req); err != nil {
		t.Fatal(err)
	}
	_ = drop
	// Crash a node mid-tree and watch repeated queries still finish.
	c.Net.SetDown(c.IDs[3], true)
	for i := 0; i < 5; i++ {
		res, err := c.Execute(0, req)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Contributors == 0 {
			t.Fatalf("query %d returned nothing", i)
		}
	}
}

// TestRootFailover crashes a group tree's root; after the liveness path
// heals the overlay (heartbeat detection, obituary purge, slot repair),
// queries must find the new root (the next-closest node) and cover
// every surviving member.
func TestRootFailover(t *testing.T) {
	c := New(Options{
		N: 64, Seed: 37,
		Node:    core.Config{ChildTimeout: 300 * time.Millisecond},
		Overlay: pastry.Config{HeartbeatEvery: 200 * time.Millisecond},
	})
	for i, n := range c.Nodes {
		n.Store().SetBool("g", i%4 == 0)
	}
	req := core.Request{
		Attr: "*",
		Spec: aggregate.Spec{Kind: aggregate.KindCount},
		Pred: predicate.MustParse("g = true"),
	}
	if _, err := c.Execute(0, req); err != nil {
		t.Fatal(err)
	}
	// Find and crash the root of the "g" tree; the purge is the
	// liveness path's job (no RemoveNode boilerplate).
	rootID := c.Oracle.Owner(ids.FromKey("g"))
	if rootID == c.IDs[0] {
		t.Skip("front-end is the root; pick another seed")
	}
	for i := range c.Nodes {
		if c.IDs[i] == rootID {
			c.Kill(i)
		}
	}
	c.RunFor(3 * time.Second)
	res, err := c.Execute(0, req)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := range c.Nodes {
		if i%4 == 0 && c.IDs[i] != rootID {
			want++
		}
	}
	if got, _ := res.Agg.Value.AsInt(); got != want {
		t.Fatalf("post-failover count = %d, want %d", got, want)
	}
}

// TestLiveJoinReachesNewNodes grows a running cluster via the join
// protocol; freshly joined nodes must appear in subsequent answers
// (§7's reconfiguration path on a live deployment).
func TestLiveJoinReachesNewNodes(t *testing.T) {
	c := New(Options{N: 64, Seed: 53})
	for _, n := range c.Nodes {
		n.Store().SetBool("g", true)
		n.Store().SetInt("a", 1)
	}
	req := core.Request{
		Attr: "a",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("g = true"),
	}
	if err := c.Warm(req, req); err != nil {
		t.Fatal(err)
	}
	// Join 8 new nodes while trees are live.
	joined := make([]int, 0, 8)
	for j := 0; j < 8; j++ {
		i := c.AddNode()
		c.Nodes[i].Store().SetBool("g", true)
		c.Nodes[i].Store().SetInt("a", 1)
		joined = append(joined, i)
		c.RunFor(500 * time.Millisecond)
	}
	c.RunFor(3 * time.Second)
	res, err := c.Execute(0, req)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := res.Agg.Value.AsInt()
	want := int64(64 + len(joined))
	// New nodes become reachable as announcements integrate them into
	// routing tables; with the epidemic discovery all should land.
	if got < want-1 || got > want {
		t.Fatalf("post-join sum = %d, want %d", got, want)
	}
	t.Logf("post-join sum = %d of %d", got, want)
}
