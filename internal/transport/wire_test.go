package transport

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/value"
)

// TestCrossCodecEquivalence is the correctness lock on the columnar
// codec: every wire sample — including the sketch states riding inside
// keyed GroupedStates inside BatchMsg — must round-trip through the
// columnar codec to a DeepEqual of the original, bare and nested in a
// BatchMsg, and must decode to the same result the gob codec produces.
func TestCrossCodecEquivalence(t *testing.T) {
	RegisterGob()
	covered := make(map[reflect.Type]bool)
	for _, m := range wireSamples(t) {
		markCovered(covered, m)
		for _, tc := range []struct {
			name string
			msg  any
		}{
			{"bare", m},
			{"batched", core.BatchMsg{Items: []any{m}}},
		} {
			payload, err := core.AppendMessage(nil, tc.msg)
			if err != nil {
				t.Errorf("%T/%s: columnar encode: %v", m, tc.name, err)
				continue
			}
			got, rest, err := core.ReadMessage(payload)
			if err != nil {
				t.Errorf("%T/%s: columnar decode: %v", m, tc.name, err)
				continue
			}
			if len(rest) != 0 {
				t.Errorf("%T/%s: %d trailing bytes after decode", m, tc.name, len(rest))
				continue
			}
			if !reflect.DeepEqual(got, tc.msg) {
				t.Errorf("%T/%s: columnar round trip mismatch:\n got %#v\nwant %#v", m, tc.name, got, tc.msg)
				continue
			}
			// Cross-codec: the gob decode of the same message must be
			// indistinguishable from the columnar decode.
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&envelope{FromAddr: "x", Payload: tc.msg}); err != nil {
				t.Errorf("%T/%s: gob encode: %v", m, tc.name, err)
				continue
			}
			var env envelope
			if err := gob.NewDecoder(&buf).Decode(&env); err != nil {
				t.Errorf("%T/%s: gob decode: %v", m, tc.name, err)
				continue
			}
			if !reflect.DeepEqual(got, env.Payload) {
				t.Errorf("%T/%s: codecs disagree:\ncolumnar %#v\n     gob %#v", m, tc.name, got, env.Payload)
			}
		}
	}
	assertWireTypesCovered(t, covered)
}

// TestColumnarFrameRoundTrip drives the framing layer itself: header
// plus several frames through a pipe, decoded with the connection-level
// reader primitives.
func TestColumnarFrameRoundTrip(t *testing.T) {
	RegisterGob()
	var wire bytes.Buffer
	bw := bufio.NewWriter(&wire)
	if err := writeConnHeader(bw, "10.0.0.1:7777"); err != nil {
		t.Fatal(err)
	}
	msgs := []any{
		core.CancelMsg{SID: core.QueryID{Num: 1}, Group: "g"},
		core.StatusMsg{Group: "g", Np: 3},
	}
	for _, m := range msgs {
		payload, err := core.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(bw, payload); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&wire)
	from, err := readConnHeader(br)
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if from != "10.0.0.1:7777" {
		t.Fatalf("header addr = %q", from)
	}
	var scratch []byte
	for i, want := range msgs {
		payload, err := readFrame(br, &scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, rest, err := core.ReadMessage(payload)
		if err != nil || len(rest) != 0 {
			t.Fatalf("frame %d: decode: %v (%d trailing)", i, err, len(rest))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %#v, want %#v", i, got, want)
		}
	}
}

// TestMixedCodecClusterInterop runs a real query across a cluster where
// half the agents send legacy gob and half send columnar: negotiation
// is per inbound connection (sniffed), so every pairing must work.
func TestMixedCodecClusterInterop(t *testing.T) {
	var nodes []*Node
	for i := 0; i < 6; i++ {
		codec := CodecColumnar
		if i%2 == 1 {
			codec = CodecGob
		}
		nd, err := Listen("127.0.0.1:0", nil, Options{Codec: codec})
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		nodes = append(nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	roster := make([]string, 0, len(nodes))
	for _, nd := range nodes {
		roster = append(roster, nd.Addr())
	}
	want := int64(0)
	for i, nd := range nodes {
		nd.ApplyRoster(roster)
		nd.SetAttr("load", value.Int(int64(i+1)))
		want += int64(i + 1)
	}
	for _, origin := range []int{0, 1} { // one columnar, one gob origin
		res, err := nodes[origin].QueryWait("sum(load)", 10*time.Second)
		if err != nil {
			t.Fatalf("origin %d: %v", origin, err)
		}
		if got, _ := res.Agg.Value.AsInt(); got != want {
			t.Fatalf("origin %d: sum = %d, want %d", origin, got, want)
		}
	}
}

// TestDialBackoffSuppressesRedials is the dial-storm regression test:
// a burst of sends toward a dead address must cost one dial attempt,
// with the rest suppressed by the negative cache until backoff expires.
func TestDialBackoffSuppressesRedials(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close() // nothing listens here anymore: connection refused
	nd, err := Listen("127.0.0.1:0", nil, Options{
		DialTimeout:   500 * time.Millisecond,
		RedialBackoff: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	const burst = 50
	for i := 0; i < burst; i++ {
		nd.send(dead, core.CancelMsg{Group: "g"})
	}
	st := nd.Stats()
	if st.Dials != 1 || st.DialErrors != 1 {
		t.Fatalf("dials = %d (errors %d), want exactly 1: the epoch burst re-dialed a dead peer", st.Dials, st.DialErrors)
	}
	if st.DialsSuppressed != burst-1 {
		t.Fatalf("suppressed = %d, want %d", st.DialsSuppressed, burst-1)
	}
	if st.MsgsOut != 0 {
		t.Fatalf("msgsOut = %d, want 0", st.MsgsOut)
	}
}

// TestDispatchAfterCloseDropsMessage locks the shutdown ordering fix:
// the closed check runs before core dispatch, so a message arriving
// after Close is dropped, not processed.
func TestDispatchAfterCloseDropsMessage(t *testing.T) {
	nodes := startCluster(t, 2, core.Config{})
	a, b := nodes[0], nodes[1]
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	before := b.Stats().MsgsIn
	if b.dispatch(a.ID(), a.Addr(), core.CancelMsg{Group: "g"}) {
		t.Fatal("dispatch after Close reported the node as live")
	}
	if got := b.Stats().MsgsIn; got != before {
		t.Fatalf("message handled after Close (msgsIn %d -> %d)", before, got)
	}
}

// TestCloseRaceUnderTraffic closes an agent while a peer is actively
// streaming epoch reports at it; under -race this shakes out handle-
// after-close races, and the closing side must never dispatch a message
// after Close returns.
func TestCloseRaceUnderTraffic(t *testing.T) {
	nodes := startCluster(t, 3, core.Config{})
	for i, nd := range nodes {
		nd.SetAttr("load", value.Int(int64(i)))
	}
	victim := nodes[2]
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nodes[0].send(victim.Addr(), core.CancelMsg{Group: "g"})
			if i == 64 {
				// Let some traffic land before the close fires.
				time.Sleep(time.Millisecond)
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := victim.Close(); err != nil {
		t.Fatal(err)
	}
	after := victim.Stats().MsgsIn
	time.Sleep(10 * time.Millisecond)
	if got := victim.Stats().MsgsIn; got != after {
		t.Fatalf("node dispatched %d messages after Close returned", got-after)
	}
	close(stop)
	<-done
}

// TestDecodeErrorsCountedAndSurvived feeds a columnar connection one
// malformed frame between two valid ones: the bad frame must be counted
// (the silent-teardown fix) and must NOT kill the connection — the
// frames around it still dispatch.
func TestDecodeErrorsCountedAndSurvived(t *testing.T) {
	nd := startCluster(t, 1, core.Config{})[0]
	c, err := net.Dial("tcp", nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bw := bufio.NewWriter(c)
	if err := writeConnHeader(bw, "203.0.113.9:1"); err != nil {
		t.Fatal(err)
	}
	valid, err := core.AppendMessage(nil, core.CancelMsg{Group: "g"})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(bw, valid); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(bw, []byte{0xC8, 0xDE, 0xAD}); err != nil { // unknown tag 200
		t.Fatal(err)
	}
	if err := writeFrame(bw, valid); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		st := nd.Stats()
		if st.MsgsIn >= 2 && st.DecodeErrors >= 1 {
			if st.DecodeErrors != 1 {
				t.Fatalf("decodeErrors = %d, want 1", st.DecodeErrors)
			}
			return
		}
		select {
		case <-deadline:
			t.Fatalf("stats never converged: %+v", nd.Stats())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestBadVersionDropsConnection: a columnar header bearing an unknown
// codec version must drop the connection (compatibility rule) and count
// as a decode error.
func TestBadVersionDropsConnection(t *testing.T) {
	nd := startCluster(t, 1, core.Config{})[0]
	c, err := net.Dial("tcp", nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte{wireMagic, 'M', 'W', 99, 1, 'x'}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for nd.Stats().DecodeErrors == 0 {
		select {
		case <-deadline:
			t.Fatal("bad version never counted")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The agent must have hung up on us.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived an unknown codec version")
	}
	if got := nd.Stats().MsgsIn; got != 0 {
		t.Fatalf("msgsIn = %d, want 0", got)
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the full inbound decode
// path — connection header, frame layer, message codec: it must error
// cleanly, never panic, and never allocate past the chunked-growth
// bound. Anything that decodes must re-encode.
func FuzzDecodeFrame(f *testing.F) {
	RegisterGob()
	for _, m := range wireSamples(f) {
		payload, err := core.AppendMessage(nil, m)
		if err != nil {
			continue
		}
		f.Add(payload)
		if len(payload) > 2 {
			f.Add(payload[:len(payload)/2]) // truncations
		}
	}
	var hdr bytes.Buffer
	bw := bufio.NewWriter(&hdr)
	_ = writeConnHeader(bw, "127.0.0.1:1")
	_ = bw.Flush()
	f.Add(hdr.Bytes())
	f.Add([]byte{wireMagic, 'M', 'W', wireVersion})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge frame length
	f.Fuzz(func(t *testing.T, data []byte) {
		// Message layer directly.
		if m, rest, err := core.ReadMessage(data); err == nil {
			if len(rest) > len(data) {
				t.Fatalf("decoder returned more than it was given")
			}
			if _, err := core.AppendMessage(nil, m); err != nil {
				t.Fatalf("decoded message failed to re-encode: %v", err)
			}
		}
		// Stream layer: header + frames, as readColumnar consumes them.
		br := bufio.NewReader(bytes.NewReader(data))
		if first, err := br.Peek(1); err != nil || first[0] != wireMagic {
			return
		}
		if _, err := readConnHeader(br); err != nil {
			return
		}
		var scratch []byte
		for {
			payload, err := readFrame(br, &scratch)
			if err != nil {
				return
			}
			_, _, _ = core.ReadMessage(payload)
		}
	})
}
