// Package transport runs Moara nodes over real TCP, turning the
// event-driven core into a deployable agent. Identifiers derive from
// listen addresses (id = MD5(addr)), so a static roster of addresses
// fully determines the overlay; routing state is bootstrapped from the
// roster the same way the simulator's oracle does.
//
// Concurrency model: the core node remains single-threaded — every
// entry point (incoming messages, timers, local queries) serializes
// through one mutex, preserving the simulator's execution semantics.
package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/baseline"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/value"
)

// wireTypes lists one sample of every type crossing the TCP transport
// inside an envelope (or nested in a BatchMsg / aggregate State). The
// gob round-trip sweep in gob_test.go iterates this same list to prove
// every registered type survives encode/decode — add new wire types
// HERE so they cannot skip either registration or the sweep.
var wireTypes = []any{
	pastry.RouteMsg{},
	pastry.JoinRequest{},
	pastry.JoinReply{},
	pastry.Announce{},
	pastry.AnnounceAck{},
	pastry.Heartbeat{},
	pastry.Obituary{},
	pastry.RepairProbe{},
	core.SubQueryMsg{},
	core.QueryMsg{},
	core.ResponseMsg{},
	core.StatusMsg{},
	core.ProbeMsg{},
	core.ProbeRespMsg{},
	core.SubscribeMsg{},
	core.InstallMsg{},
	core.EpochReportMsg{},
	core.SampleMsg{},
	core.CancelMsg{},
	core.BatchMsg{},
	baseline.CentralQueryMsg{},
	baseline.CentralRespMsg{},
	&aggregate.GroupedState{},
	&aggregate.SumState{},
	&aggregate.CountState{},
	&aggregate.ExtremeState{},
	&aggregate.AvgState{},
	&aggregate.TopKState{},
	&aggregate.EnumState{},
	&aggregate.StdState{},
	&aggregate.DCountState{},
	&aggregate.QuantileState{},
	&aggregate.TopKeysState{},
	&aggregate.UnionState{},
	&aggregate.CollectState{},
	value.Value{},
}

// RegisterGob registers every wire type crossing the TCP transport.
// Call once per process before creating nodes; it is idempotent via
// sync.Once.
func RegisterGob() {
	gobOnce.Do(func() {
		for _, t := range wireTypes {
			gob.Register(t)
		}
	})
}

var gobOnce sync.Once

// envelope frames one message on the wire.
type envelope struct {
	FromAddr string
	Payload  any
}

// IDOf derives a node's overlay identifier from its listen address.
func IDOf(addr string) ids.ID { return ids.FromKey(addr) }

// Options configure a TCP node.
type Options struct {
	// Node configures the Moara core.
	Node core.Config
	// Overlay configures the Pastry layer.
	Overlay pastry.Config
	// DialTimeout bounds outgoing connection attempts (default 5s).
	DialTimeout time.Duration
	// RedialBackoff is how long a peer that failed to dial stays
	// negative-cached before another dial is attempted (default 1s).
	// Without it, every message to a dead neighbor re-dialed
	// synchronously under DialTimeout — an epoch burst toward a dead
	// peer stacked up dial attempts instead of failing fast.
	RedialBackoff time.Duration
	// Codec selects the outgoing wire encoding (default CodecColumnar).
	// Inbound connections are sniffed, so either setting reads both.
	Codec Codec
}

// Node is one Moara agent listening on a TCP address.
type Node struct {
	addr   string
	id     ids.ID
	roster map[ids.ID]string

	mu    sync.Mutex
	core  *core.Node
	start time.Time
	rng   *rand.Rand

	ln       net.Listener
	opts     Options
	connMu   sync.Mutex
	conns    map[string]*outConn
	accepted map[net.Conn]bool
	dialFail map[string]time.Time

	msgsIn, msgsOut   atomic.Uint64
	bytesIn, bytesOut atomic.Uint64
	decodeErrs        atomic.Uint64
	dials, dialErrs   atomic.Uint64
	dialsSuppressed   atomic.Uint64

	closed  chan struct{}
	closeMu sync.Once
	wg      sync.WaitGroup
}

// outConn is one cached outgoing connection. Exactly one of enc (gob
// codec) or bw (columnar codec) is set.
type outConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	bw  *bufio.Writer
	buf []byte // columnar frame scratch, reused under mu
	c   net.Conn
}

// Listen starts an agent on addr with the given peer roster (all
// cluster addresses, including addr itself). The overlay is
// bootstrapped from the roster.
func Listen(addr string, roster []string, opts Options) (*Node, error) {
	RegisterGob()
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.RedialBackoff == 0 {
		opts.RedialBackoff = time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	// The caller may pass ":0"; use the resolved address as identity.
	resolved := ln.Addr().String()
	n := &Node{
		addr:     resolved,
		id:       IDOf(resolved),
		roster:   make(map[ids.ID]string, len(roster)),
		start:    time.Now(),
		rng:      rand.New(rand.NewSource(int64(time.Now().UnixNano()))),
		ln:       ln,
		opts:     opts,
		conns:    make(map[string]*outConn),
		accepted: make(map[net.Conn]bool),
		dialFail: make(map[string]time.Time),
		closed:   make(chan struct{}),
	}
	n.roster[n.id] = resolved
	n.core = core.NewNode(nodeEnv{n}, opts.Node, opts.Overlay)
	n.ApplyRoster(roster)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the resolved listen address.
func (n *Node) Addr() string { return n.addr }

// ID returns the node's overlay identifier.
func (n *Node) ID() ids.ID { return n.id }

// Core exposes the underlying Moara node. Callers must use Do to
// access it safely.
func (n *Node) Core() *core.Node { return n.core }

// Do runs fn with exclusive access to the core node — the only safe
// way to touch the attribute store or issue queries.
func (n *Node) Do(fn func(c *core.Node)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn(n.core)
}

// ApplyRoster installs peers (listen addresses) into the address book
// and overlay routing state.
func (n *Node) ApplyRoster(roster []string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, addr := range roster {
		if addr == "" || addr == n.addr {
			continue
		}
		id := IDOf(addr)
		n.roster[id] = addr
		n.core.Overlay().Install(id)
	}
}

// SetAttr writes an attribute on the local agent.
func (n *Node) SetAttr(name string, v value.Value) {
	n.Do(func(c *core.Node) { c.Store().Set(name, v) })
}

// Attrs returns the agent's attribute store behind a mutex-holding
// wrapper: the raw store, like the rest of the core, is driven from one
// goroutine, so the wrapper serializes each access through Do.
func (n *Node) Attrs() core.AttrStore { return lockedStore{n} }

// lockedStore adapts the agent's single-threaded attribute store to the
// concurrent AttrStore contract.
type lockedStore struct{ n *Node }

func (ls lockedStore) Set(name string, v value.Value) {
	ls.n.Do(func(c *core.Node) { c.Store().Set(name, v) })
}

func (ls lockedStore) Get(name string) value.Value {
	var v value.Value
	ls.n.Do(func(c *core.Node) { v = c.Store().Get(name) })
	return v
}

// Now is the agent's monotonic clock: elapsed wall time since the node
// started. The query-service front-end picks it up for cache ages and
// admission refills.
func (n *Node) Now() time.Duration { return time.Since(n.start) }

// Query parses and runs a one-shot query from this node, blocking
// until the result arrives, ctx is done, or the node closes. Parse
// failures wrap core.ErrParse; standing queries (`every` clause) fail
// with core.ErrStandingOnly.
func (n *Node) Query(ctx context.Context, text string) (core.Result, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return core.Result{}, err
	}
	return n.Execute(ctx, req)
}

// Execute runs a parsed one-shot request, blocking until completion,
// ctx cancellation, or node shutdown.
func (n *Node) Execute(ctx context.Context, req core.Request) (core.Result, error) {
	type outcome struct {
		res core.Result
		err error
	}
	ch := make(chan outcome, 1)
	n.Do(func(c *core.Node) {
		c.Execute(req, func(r core.Result, e error) {
			ch <- outcome{r, e}
		})
	})
	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
		return core.Result{}, ctx.Err()
	case <-n.closed:
		return core.Result{}, errors.New("transport: node closed")
	}
}

// QueryWait runs a query with a wall-clock timeout.
//
// Deprecated: use Query with a context deadline; this wrapper remains
// for timeout-style callers.
func (n *Node) QueryWait(text string, timeout time.Duration) (core.Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return n.Query(ctx, text)
}

// ExecuteWait runs a parsed request with a wall-clock timeout.
//
// Deprecated: use Execute with a context deadline.
func (n *Node) ExecuteWait(req core.Request, timeout time.Duration) (core.Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return n.Execute(ctx, req)
}

// Subscribe installs a standing query (the text needs an `every`
// clause — core.ErrNotStanding otherwise) from this agent; fn receives
// one sample per epoch until the returned handle unsubscribes. fn runs
// on the agent's serialized core goroutine and must not call back into
// the node — hand samples off to a channel, or front the agent with the
// query service's buffered fan-out (internal/service, Buffer > 0).
func (n *Node) Subscribe(ctx context.Context, text string, fn func(core.Sample)) (core.Sub, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return nil, err
	}
	return n.SubscribeRequest(ctx, req, fn)
}

// SubscribeRequest is the parsed-request install path (the query
// service uses it to install normalized requests directly).
func (n *Node) SubscribeRequest(ctx context.Context, req core.Request, fn func(core.Sample)) (core.Sub, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var (
		id  core.QueryID
		err error
	)
	n.Do(func(c *core.Node) { id, err = c.Subscribe(req, fn) })
	if err != nil {
		return nil, err
	}
	return &agentSub{n: n, id: id}, nil
}

// Unsubscribe cancels a standing query installed from this agent;
// unknown (or already-cancelled) IDs report core.ErrUnknownSub.
func (n *Node) Unsubscribe(id core.QueryID) error {
	var err error
	n.Do(func(c *core.Node) { err = c.Unsubscribe(id) })
	return err
}

// agentSub is a standing-query handle on a TCP agent.
type agentSub struct {
	n  *Node
	id core.QueryID
}

func (a *agentSub) ID() core.QueryID   { return a.id }
func (a *agentSub) Unsubscribe() error { return a.n.Unsubscribe(a.id) }

// Close shuts the agent down and waits for its goroutines. The core is
// closed before the connections so its final outbox flush (queued
// coalesced messages, e.g. a cancel cascade) can ride already-open
// connections to remote peers, best-effort: racing conn teardown may
// still drop it, no new connections are dialed for it, and loopback
// flushes are discarded (the node stops handling its own messages the
// moment closed is signalled). Peers that miss the flush fall back to
// the SubTTL GC / ChildTimeout paths, exactly as with any lost packet.
func (n *Node) Close() error {
	n.closeMu.Do(func() {
		close(n.closed)
		n.ln.Close()
		n.mu.Lock()
		n.core.Close()
		n.mu.Unlock()
		n.connMu.Lock()
		for _, oc := range n.conns {
			oc.c.Close()
		}
		for c := range n.accepted {
			c.Close()
		}
		n.connMu.Unlock()
	})
	n.wg.Wait()
	return nil
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		n.connMu.Lock()
		n.accepted[conn] = true
		n.connMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.connMu.Lock()
		delete(n.accepted, conn)
		n.connMu.Unlock()
	}()
	br := bufio.NewReaderSize(countingConn{Conn: conn, in: &n.bytesIn, out: &n.bytesOut}, 32<<10)
	// Codec negotiation: a columnar connection opens with wireMagic,
	// which no gob stream can start with (see codec.go).
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wireMagic {
		n.readColumnar(br)
	} else {
		n.readGob(br)
	}
}

// readColumnar drains one framed columnar connection. Frames are
// self-delimiting, so a payload that fails to decode is counted and
// skipped without killing the connection; framing-level corruption
// (oversized or truncated frames) still tears it down, counted.
func (n *Node) readColumnar(br *bufio.Reader) {
	fromAddr, err := readConnHeader(br)
	if err != nil {
		n.countDecodeErr(err)
		return
	}
	from := IDOf(fromAddr)
	var scratch []byte
	for {
		payload, err := readFrame(br, &scratch)
		if err != nil {
			n.countDecodeErr(err)
			return
		}
		m, rest, err := core.ReadMessage(payload)
		if err != nil || len(rest) != 0 {
			if err == nil {
				err = fmt.Errorf("transport: %d trailing bytes in frame", len(rest))
			}
			n.countDecodeErr(err)
			continue
		}
		if !n.dispatch(from, fromAddr, m) {
			return
		}
	}
}

// readGob drains one legacy gob-envelope connection.
func (n *Node) readGob(br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			// A gob decoder's stream state is unrecoverable after an
			// error, so unlike a columnar frame this ends the
			// connection — but now counted, not silent.
			n.countDecodeErr(err)
			return
		}
		if !n.dispatch(IDOf(env.FromAddr), env.FromAddr, env.Payload) {
			return
		}
	}
}

// dispatch hands one inbound message to the core, installing unknown
// senders into the roster first. The closed check runs under the core
// lock BEFORE dispatch — Close signals closed before taking the lock,
// so a closing node can no longer process one extra message between
// Close and connection teardown.
func (n *Node) dispatch(from ids.ID, fromAddr string, m any) bool {
	n.mu.Lock()
	select {
	case <-n.closed:
		n.mu.Unlock()
		return false
	default:
	}
	if _, known := n.roster[from]; !known {
		n.roster[from] = fromAddr
		n.core.Overlay().Install(from)
	}
	n.core.Handle(from, m)
	n.mu.Unlock()
	n.msgsIn.Add(1)
	return true
}

// countDecodeErr records an inbound decode failure, ignoring the
// ordinary ways a healthy connection ends (clean EOF, teardown during
// shutdown) so the counter means "wire bug", not "peer left".
func (n *Node) countDecodeErr(err error) {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return
	}
	select {
	case <-n.closed:
		return
	default:
	}
	n.decodeErrs.Add(1)
}

// send transmits one message, dialing (and caching) connections lazily.
// Failures are silent, like UDP loss; Moara's timeouts handle them.
func (n *Node) send(toAddr string, m any) {
	oc, err := n.conn(toAddr)
	if err != nil {
		return
	}
	oc.mu.Lock()
	err = oc.write(n.addr, m)
	oc.mu.Unlock()
	if err != nil {
		oc.c.Close()
		n.connMu.Lock()
		if n.conns[toAddr] == oc {
			delete(n.conns, toAddr)
		}
		n.connMu.Unlock()
		return
	}
	n.msgsOut.Add(1)
}

// write encodes and sends one message on the connection's codec. The
// caller holds oc.mu.
func (oc *outConn) write(fromAddr string, m any) error {
	if oc.enc != nil {
		return oc.enc.Encode(envelope{FromAddr: fromAddr, Payload: m})
	}
	payload, err := core.AppendMessage(oc.buf[:0], m)
	if err != nil {
		// Encoding failed before any byte hit the wire; the connection
		// is still clean, so report success-shaped loss (the message is
		// unencodable on every codec — gob fallback included).
		return nil
	}
	oc.buf = payload[:0]
	return writeFrame(oc.bw, payload)
}

func (n *Node) conn(addr string) (*outConn, error) {
	n.connMu.Lock()
	if oc, ok := n.conns[addr]; ok {
		n.connMu.Unlock()
		return oc, nil
	}
	// Negative dial cache: a peer that just failed to dial is skipped
	// until its backoff expires, so a dead neighbor costs one timed-out
	// dial per backoff window instead of one per message.
	if until, ok := n.dialFail[addr]; ok {
		if time.Since(until) < n.opts.RedialBackoff {
			n.connMu.Unlock()
			n.dialsSuppressed.Add(1)
			return nil, errors.New("transport: peer in dial backoff")
		}
		delete(n.dialFail, addr)
	}
	n.connMu.Unlock()
	// Cached connections stay usable through shutdown (Close's final
	// outbox flush rides them best-effort), but a closing node must not
	// dial fresh ones.
	select {
	case <-n.closed:
		return nil, errors.New("transport: node closed")
	default:
	}
	n.dials.Add(1)
	c, err := net.DialTimeout("tcp", addr, n.opts.DialTimeout)
	if err != nil {
		n.dialErrs.Add(1)
		n.connMu.Lock()
		n.dialFail[addr] = time.Now()
		n.connMu.Unlock()
		return nil, err
	}
	oc, err := n.newOutConn(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	n.connMu.Lock()
	defer n.connMu.Unlock()
	select {
	case <-n.closed:
		// Close's teardown (also under connMu) may already have swept
		// the cache; caching now would leak the descriptor.
		c.Close()
		return nil, errors.New("transport: node closed")
	default:
	}
	if existing, ok := n.conns[addr]; ok {
		c.Close()
		return existing, nil
	}
	delete(n.dialFail, addr)
	n.conns[addr] = oc
	return oc, nil
}

// newOutConn wraps a freshly dialed connection in the node's configured
// codec, emitting the columnar connection header when applicable.
func (n *Node) newOutConn(c net.Conn) (*outConn, error) {
	cc := countingConn{Conn: c, in: &n.bytesIn, out: &n.bytesOut}
	if n.opts.Codec == CodecGob {
		return &outConn{enc: gob.NewEncoder(cc), c: c}, nil
	}
	bw := bufio.NewWriterSize(cc, 32<<10)
	if err := writeConnHeader(bw, n.addr); err != nil {
		return nil, err
	}
	return &outConn{bw: bw, c: c}, nil
}

// nodeEnv adapts a transport Node to the simnet.Env interface the core
// is written against.
type nodeEnv struct {
	n *Node
}

var _ simnet.Env = nodeEnv{}

// Self returns the node's identifier.
func (e nodeEnv) Self() ids.ID { return e.n.id }

// Send transmits m to the node with identifier to, resolving the
// address through the roster. Unknown destinations are dropped.
func (e nodeEnv) Send(to ids.ID, m any) {
	if to == e.n.id {
		// Loopback: handle asynchronously to avoid lock recursion.
		go func() {
			e.n.mu.Lock()
			defer e.n.mu.Unlock()
			select {
			case <-e.n.closed:
				return
			default:
			}
			e.n.core.Handle(to, m)
		}()
		return
	}
	addr, ok := e.n.roster[to]
	if !ok {
		return
	}
	// Network I/O happens off the core lock.
	go e.n.send(addr, m)
}

// After schedules fn on the real clock, serialized with the core.
func (e nodeEnv) After(d time.Duration, fn func()) (cancel func()) {
	t := time.AfterFunc(d, func() {
		e.n.mu.Lock()
		defer e.n.mu.Unlock()
		select {
		case <-e.n.closed:
			return
		default:
		}
		fn()
	})
	return func() { t.Stop() }
}

// Now returns the elapsed wall-clock time since the node started.
func (e nodeEnv) Now() time.Duration { return time.Since(e.n.start) }

// Rand returns the node's random source.
func (e nodeEnv) Rand() *rand.Rand { return e.n.rng }
