// Wire framing and codec negotiation for the TCP transport.
//
// A columnar connection opens with a 4-byte header — magic 0xEF 'M' 'W'
// plus a codec version byte — followed by the sender's length-prefixed
// listen address (sent once per connection; the gob envelope repeats it
// per message). After the header the stream is a sequence of frames:
//
//	uvarint payload length | payload (message tag byte + body)
//
// Negotiation is by sniffing: a gob stream's first byte is always in
// [0x00,0x7F] or [0xF8,0xFF] (gob's unsigned-int encoding), so 0xEF can
// never begin a gob stream. The acceptor peeks one byte and picks the
// decoder — old gob agents and new columnar agents interoperate in both
// directions with no handshake round-trip.
//
// Compatibility rule: within a codec version, message tags and body
// layouts are append-only (new tags may be added; existing ones are
// frozen). An incompatible layout change bumps the version byte, and a
// reader drops connections bearing versions it does not know — the
// sender's messages then ride its gob fallback path only if the
// operator pins `-codec gob`, so mixed fleets should upgrade readers
// first.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"

	"github.com/moara/moara/internal/wirefmt"
)

// Codec selects the wire encoding for a node's outgoing connections.
// (Inbound connections are sniffed, so a node always reads both.)
type Codec int

const (
	// CodecColumnar is the framed hand-rolled binary codec (default).
	CodecColumnar Codec = iota
	// CodecGob is the legacy stream of gob-encoded envelopes, for
	// interoperating with pre-codec agents.
	CodecGob
)

// String names the codec for flags and stats output.
func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "columnar"
}

// ParseCodec resolves a codec flag value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "columnar":
		return CodecColumnar, nil
	case "gob":
		return CodecGob, nil
	}
	return 0, fmt.Errorf("transport: unknown codec %q (want columnar or gob)", s)
}

const (
	// wireMagic opens a columnar connection. It sits in gob's dead zone
	// [0x80,0xF7] — no gob stream can start with it — which is what
	// makes one-byte sniffing sound.
	wireMagic = 0xEF
	// wireVersion is the current columnar codec version. Readers drop
	// connections bearing versions they do not know.
	wireVersion = 1
	// maxFrame bounds one frame's payload (and therefore the decoder's
	// allocation) — far above any real message, far below harm.
	maxFrame = 32 << 20
	// maxAddrLen bounds the connection header's address field.
	maxAddrLen = 256
)

var (
	errFrameTooBig = errors.New("transport: frame exceeds size limit")
	errBadVersion  = errors.New("transport: unknown codec version")
)

// writeConnHeader emits the once-per-connection columnar preamble.
func writeConnHeader(w *bufio.Writer, fromAddr string) error {
	if _, err := w.Write([]byte{wireMagic, 'M', 'W', wireVersion}); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(fromAddr)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.WriteString(fromAddr)
	return err
}

// readConnHeader consumes the columnar preamble (the caller has already
// sniffed the magic byte).
func readConnHeader(br *bufio.Reader) (fromAddr string, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return "", err
	}
	if magic[0] != wireMagic || magic[1] != 'M' || magic[2] != 'W' {
		return "", fmt.Errorf("transport: bad connection magic: %w", wirefmt.ErrCorrupt)
	}
	if magic[3] != wireVersion {
		return "", fmt.Errorf("%w %d", errBadVersion, magic[3])
	}
	ln, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if ln == 0 || ln > maxAddrLen {
		return "", fmt.Errorf("transport: connection header address length %d: %w", ln, wirefmt.ErrCorrupt)
	}
	raw := make([]byte, ln)
	if _, err := io.ReadFull(br, raw); err != nil {
		return "", err
	}
	return string(raw), nil
}

// writeFrame emits one length-prefixed frame and flushes it.
func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// frameChunk is the step readFrame grows its buffer by, so allocation
// tracks bytes actually received: a peer declaring a huge frame and
// hanging up costs one chunk, not maxFrame.
const frameChunk = 64 << 10

// readFrame reads one frame into *scratch (reused across frames; it
// grows to the largest frame the connection has carried) and returns
// the payload slice, valid until the next call.
func readFrame(br *bufio.Reader, scratch *[]byte) ([]byte, error) {
	ln, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if ln > maxFrame {
		return nil, errFrameTooBig
	}
	need := int(ln)
	buf := (*scratch)[:0]
	for len(buf) < need {
		step := min(need-len(buf), frameChunk)
		if cap(buf)-len(buf) < step {
			nb := make([]byte, len(buf), min(need, max(2*cap(buf), len(buf)+step)))
			copy(nb, buf)
			buf = nb
		}
		if _, err := io.ReadFull(br, buf[len(buf):len(buf)+step]); err != nil {
			*scratch = buf[:0]
			if err == io.EOF && len(buf) > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		buf = buf[:len(buf)+step]
	}
	*scratch = buf
	return buf, nil
}

// countingConn wraps a net.Conn with byte counters feeding Node stats.
type countingConn struct {
	net.Conn
	in, out *atomic.Uint64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// Stats is a snapshot of a node's transport counters. DecodeErrors is
// the observability fix for silent teardown: a malformed frame used to
// kill its readLoop with no trace, indistinguishable from loss.
type Stats struct {
	// MsgsIn / MsgsOut count wire messages dispatched / sent (a batch
	// counts once).
	MsgsIn, MsgsOut uint64
	// BytesIn / BytesOut count raw TCP payload bytes.
	BytesIn, BytesOut uint64
	// DecodeErrors counts inbound frames or streams that failed to
	// decode (corrupt frame, unknown tag, gob error, bad version).
	DecodeErrors uint64
	// Dials / DialErrors count outbound connection attempts and
	// failures; DialsSuppressed counts sends skipped by the negative
	// dial cache while a dead peer was in backoff.
	Dials, DialErrors, DialsSuppressed uint64
}

// Stats returns a consistent-enough snapshot of the node's counters
// (each counter is individually atomic).
func (n *Node) Stats() Stats {
	return Stats{
		MsgsIn:          n.msgsIn.Load(),
		MsgsOut:         n.msgsOut.Load(),
		BytesIn:         n.bytesIn.Load(),
		BytesOut:        n.bytesOut.Load(),
		DecodeErrors:    n.decodeErrs.Load(),
		Dials:           n.dials.Load(),
		DialErrors:      n.dialErrs.Load(),
		DialsSuppressed: n.dialsSuppressed.Load(),
	}
}
