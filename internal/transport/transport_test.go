package transport

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/value"
)

// startCluster boots n agents on loopback ephemeral ports and exchanges
// rosters.
func startCluster(t *testing.T, n int, cfg core.Config) []*Node {
	t.Helper()
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		nd, err := Listen("127.0.0.1:0", nil, Options{Node: cfg})
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		nodes = append(nodes, nd)
	}
	roster := make([]string, 0, n)
	for _, nd := range nodes {
		roster = append(roster, nd.Addr())
	}
	for _, nd := range nodes {
		nd.ApplyRoster(roster)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	return nodes
}

func TestTCPClusterGlobalSum(t *testing.T) {
	nodes := startCluster(t, 8, core.Config{})
	want := int64(0)
	for i, nd := range nodes {
		nd.SetAttr("load", value.Int(int64(i+1)))
		want += int64(i + 1)
	}
	res, err := nodes[0].QueryWait("sum(load)", 10*time.Second)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	got, _ := res.Agg.Value.AsInt()
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if res.Contributors != int64(len(nodes)) {
		t.Fatalf("contributors = %d, want %d", res.Contributors, len(nodes))
	}
}

func TestTCPClusterGroupQueries(t *testing.T) {
	nodes := startCluster(t, 10, core.Config{})
	for i, nd := range nodes {
		nd.SetAttr("svc", value.Bool(i%2 == 0))
		nd.SetAttr("dc", value.Str(fmt.Sprintf("dc%d", i%3)))
		nd.SetAttr("cpu", value.Float(float64(10*i)))
	}
	res, err := nodes[1].QueryWait("count(*) where svc = true", 10*time.Second)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if got, _ := res.Agg.Value.AsInt(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	res, err = nodes[3].QueryWait("count(*) group by dc", 10*time.Second)
	if err != nil {
		t.Fatalf("grouped: %v", err)
	}
	// i%3 over 0..9: dc0 x4, dc1 x3, dc2 x3.
	want := map[string]int64{"dc0": 4, "dc1": 3, "dc2": 3}
	if len(res.Groups) != len(want) {
		t.Fatalf("groups = %v, want keys %v", res.Groups, want)
	}
	for k, w := range want {
		if got, _ := res.Groups[k].Value.AsInt(); got != w {
			t.Fatalf("group %s = %d, want %d", k, got, w)
		}
	}
	if got, _ := res.Agg.Value.AsInt(); got != 10 {
		t.Fatalf("grouped total = %d, want 10", got)
	}

	res, err = nodes[2].QueryWait("max(cpu) where svc = true and dc = dc0", 10*time.Second)
	if err != nil {
		t.Fatalf("composite: %v", err)
	}
	f, _ := res.Agg.Value.AsFloat()
	// Eligible: even i with i%3==0 -> i in {0, 6}; max cpu 60.
	if f != 60 {
		t.Fatalf("max = %v, want 60", f)
	}
}

func TestTCPRepeatedQueriesPrune(t *testing.T) {
	nodes := startCluster(t, 6, core.Config{})
	for i, nd := range nodes {
		nd.SetAttr("g", value.Bool(i == 0))
	}
	for round := 0; round < 5; round++ {
		res, err := nodes[3].QueryWait("count(*) where g = true", 10*time.Second)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got, _ := res.Agg.Value.AsInt(); got != 1 {
			t.Fatalf("round %d: count = %d, want 1", round, got)
		}
	}
}

func TestTCPQueryTimeoutOnBadRequest(t *testing.T) {
	nodes := startCluster(t, 3, core.Config{})
	if _, err := nodes[0].QueryWait("bogus query text", time.Second); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestValueGobRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Int(-9), value.Float(3.25), value.Str("hello"), value.Bool(true), {},
	}
	for _, v := range vals {
		data, err := v.GobEncode()
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		var back value.Value
		if err := back.GobDecode(data); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if back.Kind() != v.Kind() || (v.IsValid() && !value.Equal(v, back)) {
			t.Fatalf("round trip %v -> %v", v, back)
		}
	}
}

// TestTCPConcurrentStandingCoalesced installs two concurrent standing
// queries over real TCP with a generous coalescing window, so their
// per-epoch EpochReportMsg traffic shares BatchMsg envelopes on the
// actual gob wire. Both streams must deliver correct warm samples, and
// cancelling one must not disturb the other.
func TestTCPConcurrentStandingCoalesced(t *testing.T) {
	nodes := startCluster(t, 6, core.Config{CoalesceWindow: 40 * time.Millisecond})
	want := int64(0)
	for i, nd := range nodes {
		nd.SetAttr("load", value.Int(int64(i+1)))
		want += int64(i + 1)
	}
	req, err := core.ParseRequest("sum(load) every 150ms")
	if err != nil {
		t.Fatal(err)
	}
	chA := make(chan core.Sample, 64)
	chB := make(chan core.Sample, 64)
	subA, err := nodes[0].SubscribeRequest(context.Background(), req, func(s core.Sample) { chA <- s })
	if err != nil {
		t.Fatalf("subscribe A: %v", err)
	}
	if _, err := nodes[1].SubscribeRequest(context.Background(), req, func(s core.Sample) { chB <- s }); err != nil {
		t.Fatalf("subscribe B: %v", err)
	}
	waitWarm := func(name string, ch chan core.Sample) core.Sample {
		deadline := time.After(20 * time.Second)
		for {
			select {
			case s := <-ch:
				if v, _ := s.Result.Agg.Value.AsInt(); !s.ColdStart && v == want {
					return s
				}
			case <-deadline:
				t.Fatalf("%s: no warm full sample", name)
			}
		}
	}
	waitWarm("A", chA)
	waitWarm("B", chB)
	if err := subA.Unsubscribe(); err != nil {
		t.Fatalf("unsubscribe A: %v", err)
	}
	// B keeps streaming full samples after A's batched cancel cascade.
	waitWarm("B after cancel", chB)
}
