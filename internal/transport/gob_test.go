package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/baseline"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/value"
)

// wireSamples builds one populated sample of every wire type, in its
// interesting shapes. Both codec sweeps — the gob round trip below and
// the cross-codec equivalence sweep in wire_test.go — iterate this same
// list, so a type added to the system but forgotten here fails the
// wireTypes coverage check in CI instead of at an agent's first use.
func wireSamples(t testing.TB) []any {
	t.Helper()
	nodeA, nodeB := ids.FromKey("a"), ids.FromKey("b")
	qid := core.QueryID{Origin: nodeA, Num: 42}
	spec := aggregate.Spec{Kind: aggregate.KindAvg}

	sum := &aggregate.SumState{Valid: true, V: value.Int(7), N: 2}
	grouped := aggregate.NewGrouped(spec, 8)
	grouped.AddKeyed(nodeA, "cs101", value.Float(10))
	grouped.AddKeyed(nodeB, "cs202", value.Float(30))

	topk := &aggregate.TopKState{K: 2, N: 1,
		Entries: []aggregate.Entry{{Node: nodeA, Value: value.Int(9)}}}

	// Sketch states, in their interesting shapes: a sparse and a dense
	// HLL (the dense form is what a high-cardinality root holds), a
	// quantile compactor with a populated level hierarchy, Misra-Gries
	// counters, a union with spill, and a collect at cap.
	dcountSparse := &aggregate.DCountState{}
	dcountSparse.Add(nodeA, value.Str("linux"))
	dcountSparse.Add(nodeB, value.Str("plan9"))
	dcountDense := &aggregate.DCountState{}
	for i := 0; i < 4000; i++ {
		dcountDense.Add(nodeA, value.Int(int64(i)))
	}
	if dcountDense.Dense == nil {
		t.Fatal("dense-mode HLL sample did not promote")
	}
	quant := &aggregate.QuantileState{Q: 0.99, N: 3, Coin: 5,
		Levels: [][]float64{{1.5, 2.5}, {7}}}
	topkeys := &aggregate.TopKeysState{K: 2, N: 5,
		Counts: map[string]int64{"linux": 3, "plan9": 2}}
	union := &aggregate.UnionState{Cap: 2, N: 5, Dropped: true,
		Keys: []string{"a", "b"},
		Entries: []aggregate.Entry{
			{Node: nodeA, Value: value.Str("a")},
			{Node: nodeB, Value: value.Str("b")},
		}}
	collect := &aggregate.CollectState{Cap: 2, N: 3,
		Entries: []aggregate.Entry{
			{Node: nodeA, Value: value.Int(1)},
			{Node: nodeB, Value: value.Int(2)},
		}}

	// A spilled collect nested inside a keyed GroupedState: the shape an
	// epoch report of `collect(x) group by slice` has at a subtree root
	// that saw more contributions than SetCap.
	groupedCollect := aggregate.NewGrouped(aggregate.Spec{Kind: aggregate.KindCollect}, 8)
	for i := 0; i < aggregate.SetCap+8; i++ {
		groupedCollect.AddKeyed(ids.FromKey(fmt.Sprintf("spill-node-%03d", i)), "cs101", value.Int(int64(i)))
	}

	samples := []any{
		pastry.RouteMsg{Key: nodeA, Origin: nodeB, Hops: 3,
			Payload: core.ProbeMsg{QID: qid, Group: "g", Attr: "cpu", ReplyTo: nodeB}},
		pastry.RouteMsg{Key: nodeA, Origin: nodeB, Hops: 1, Maint: true,
			Payload: pastry.RepairProbe{Origin: nodeB}},
		pastry.JoinRequest{Joiner: nodeA, Rows: []ids.ID{nodeB}, Hops: 1},
		pastry.JoinReply{Rows: []ids.ID{nodeA}, Leaf: []ids.ID{nodeB}},
		pastry.Announce{ID: nodeA},
		pastry.AnnounceAck{Known: []ids.ID{nodeA, nodeB}},
		pastry.Heartbeat{Ack: true},
		pastry.Obituary{Dead: nodeB},
		core.SubQueryMsg{QID: qid, Group: "slice = cs101", Eval: "a = 1", Attr: "mem_util",
			Spec: spec, GroupBy: "slice", ReplyTo: nodeB},
		core.QueryMsg{QID: qid, Seq: 7, Group: "g", Eval: "e", Attr: "mem_util",
			Spec: spec, GroupBy: "slice", Level: 2, ReplyTo: nodeA, Jump: true},
		core.ResponseMsg{QID: qid, Group: "g", State: grouped, Contributors: 7, Np: 3, Unknown: 1.5},
		core.StatusMsg{Group: "g", Prune: true, Np: 4, Unknown: 0.5, LastSeq: 9,
			UpdateSet: []core.SetEntry{{ID: nodeA, Level: 1}}},
		core.ProbeMsg{QID: qid, Group: "g", Attr: "cpu", ReplyTo: nodeA},
		core.ProbeRespMsg{QID: qid, Group: "g", Cost: 12.5},
		core.SubscribeMsg{SID: qid, Group: "slice = cs101", Eval: "a = 1", Attr: "mem_util",
			Spec: spec, GroupBy: "slice", Period: 2 * time.Second, Gen: 4, MinEpoch: 6, ReplyTo: nodeB},
		core.InstallMsg{SID: qid, Group: "g", Eval: "e", Attr: "mem_util", Spec: spec,
			GroupBy: "slice", Period: 500 * time.Millisecond, Gen: 5, Level: 2, Jump: true, ReplyTo: nodeA},
		core.EpochReportMsg{SID: qid, Group: "g", Epoch: 12, State: grouped, Contributors: 9, Np: 5, Unknown: 1.5},
		core.SampleMsg{SID: qid, Group: "g", Epoch: 13, At: 42 * time.Second, State: grouped,
			Contributors: 11, Expected: 12.5},
		core.SampleMsg{SID: qid, Group: "g", Epoch: 14, State: sum},
		core.CancelMsg{SID: qid, Group: "g"},
		// A coalesced wire batch: several standing queries' epoch
		// reports (with nested keyed GroupedState payloads) sharing one
		// tree edge, plus the cancel and status traffic that rides along.
		core.BatchMsg{Items: []any{
			core.EpochReportMsg{SID: qid, Group: "g", Epoch: 3, State: grouped, Np: 2},
			core.EpochReportMsg{SID: core.QueryID{Origin: nodeB, Num: 7}, Group: "g", Epoch: 4, State: grouped},
			core.ResponseMsg{QID: qid, Group: "g", State: grouped, Np: 1},
			core.CancelMsg{SID: qid, Group: "g"},
			core.StatusMsg{Group: "g", Np: 1, UpdateSet: []core.SetEntry{{ID: nodeB, Level: 2}}},
		}},
		core.BatchMsg{},
		baseline.CentralQueryMsg{Num: 5, Attr: "cpu", Spec: spec, Pred: "a = 1"},
		baseline.CentralRespMsg{Num: 5, State: sum},
		core.ResponseMsg{QID: qid, Group: "g", State: sum},
		core.ResponseMsg{QID: qid, Group: "g", State: &aggregate.CountState{N: 4}},
		core.ResponseMsg{QID: qid, Group: "g",
			State: &aggregate.ExtremeState{Max: true, Valid: true, N: 2,
				Best: aggregate.Entry{Node: nodeA, Value: value.Int(3)}}},
		core.ResponseMsg{QID: qid, Group: "g",
			State: &aggregate.AvgState{Sum: *sum}},
		core.ResponseMsg{QID: qid, Group: "g", State: topk},
		core.ResponseMsg{QID: qid, Group: "g",
			State: &aggregate.EnumState{Entries: topk.Entries}},
		core.ResponseMsg{QID: qid, Group: "g",
			State: &aggregate.StdState{N: 3, Sum: 6, SumSq: 14}},
		core.ResponseMsg{QID: qid, Group: "g", State: dcountSparse},
		core.ResponseMsg{QID: qid, Group: "g", State: dcountDense},
		core.ResponseMsg{QID: qid, Group: "g", State: quant},
		core.ResponseMsg{QID: qid, Group: "g", State: topkeys},
		core.ResponseMsg{QID: qid, Group: "g", State: union},
		core.ResponseMsg{QID: qid, Group: "g", State: collect},
		// The satellite shapes: a dense HLL and a spilled collect riding
		// inside keyed GroupedStates inside a coalesced BatchMsg, exactly
		// as a busy subtree root's epoch reports cross the wire.
		core.BatchMsg{Items: []any{
			core.EpochReportMsg{SID: qid, Group: "g", Epoch: 21, State: groupedCollect, Np: 3},
			core.EpochReportMsg{SID: qid, Group: "g", Epoch: 21, State: dcountDense, Np: 3},
		}},
		value.Str("plain value"),
	}
	return samples
}

// markCovered records m's type (recursing into batches, routed
// payloads, and message state fields) for the wireTypes coverage check.
func markCovered(covered map[reflect.Type]bool, m any) {
	if m == nil {
		return
	}
	covered[reflect.TypeOf(m)] = true
	switch v := m.(type) {
	case core.BatchMsg:
		for _, item := range v.Items {
			markCovered(covered, item)
		}
	case pastry.RouteMsg:
		markCovered(covered, v.Payload)
	case core.ResponseMsg:
		markCovered(covered, v.State)
	case core.EpochReportMsg:
		markCovered(covered, v.State)
	case core.SampleMsg:
		markCovered(covered, v.State)
	}
}

// assertWireTypesCovered fails for every registered wire type the sweep
// never exercised: a wire type added to wireTypes but not sampled fails
// CI instead of silently shipping untested.
func assertWireTypesCovered(t *testing.T, covered map[reflect.Type]bool) {
	t.Helper()
	for _, wt := range wireTypes {
		if !covered[reflect.TypeOf(wt)] {
			t.Errorf("registered wire type %T has no round-trip sample; add one to wireSamples", wt)
		}
	}
}

// TestGobRoundTripAllWireTypes round-trips every wire sample through a
// gob encoder/decoder pair, as the legacy TCP codec does.
func TestGobRoundTripAllWireTypes(t *testing.T) {
	RegisterGob()
	covered := make(map[reflect.Type]bool)
	for _, m := range wireSamples(t) {
		markCovered(covered, m)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&envelope{FromAddr: "x", Payload: m}); err != nil {
			t.Errorf("%T: encode: %v", m, err)
			continue
		}
		var env envelope
		if err := gob.NewDecoder(&buf).Decode(&env); err != nil {
			t.Errorf("%T: decode: %v", m, err)
			continue
		}
		if !reflect.DeepEqual(env.Payload, m) {
			t.Errorf("%T: round trip mismatch:\n got %#v\nwant %#v", m, env.Payload, m)
		}
	}
	assertWireTypesCovered(t, covered)
}

// TestWireTypesHaveMsgKind asserts that every envelope-level wire type
// labels itself for accounting: simnet.KindOf's %T fallback is cached
// per type, but hot-path messages should never rely on it — a new wire
// type without MsgKind would silently bill under its Go type name and
// dodge the "moara."/"overlay." accounting prefixes the experiments
// aggregate by. Aggregation states ride inside messages and are never
// counted individually, so they are exempt.
func TestWireTypesHaveMsgKind(t *testing.T) {
	for _, wt := range wireTypes {
		if _, isState := wt.(aggregate.State); isState {
			continue
		}
		if _, isValue := wt.(value.Value); isValue {
			// Attribute values are payload fields, not envelopes.
			continue
		}
		if _, ok := wt.(simnet.Kinder); !ok {
			t.Errorf("wire type %T does not implement MsgKind()", wt)
		}
	}
}
