package simnet

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/moara/moara/internal/ids"
)

// shardTestID derives a deterministic node identifier for tests.
func shardTestID(i int) ids.ID {
	return ids.FromKey(fmt.Sprintf("shard-test-node-%d", i))
}

// echoHandler counts deliveries and replies to pings a fixed number of
// times, generating cross-node (and with >= 2 shards, cross-shard)
// traffic.
type echoHandler struct {
	env      *nodeEnv
	got      []string
	remain   int
	lastFrom ids.ID
}

func (h *echoHandler) Handle(from ids.ID, m any) {
	h.got = append(h.got, fmt.Sprintf("%v@%v", m, h.env.Now()))
	h.lastFrom = from
	if h.remain > 0 {
		h.remain--
		h.env.Send(from, "pong")
	}
}

// buildEcho constructs a network of n nodes in a ring where node i
// pings node (i+1)%n a few times; returns the per-node transcripts
// after the run drains.
func buildEcho(t *testing.T, opts Options, n, pings int) ([][]string, *Network) {
	t.Helper()
	net := New(opts)
	handlers := make([]*echoHandler, n)
	envs := make([]*nodeEnv, n)
	for i := 0; i < n; i++ {
		envs[i] = net.AddNode(shardTestID(i))
		handlers[i] = &echoHandler{env: envs[i], remain: 3}
		envs[i].BindHandler(handlers[i])
	}
	for i := 0; i < n; i++ {
		to := shardTestID((i + 1) % n)
		env := envs[i]
		for p := 0; p < pings; p++ {
			d := time.Duration(i*7+p*13) * time.Millisecond
			env.Defer(d, func() { env.Send(to, "ping") })
		}
	}
	net.Run(0)
	out := make([][]string, n)
	for i := range handlers {
		out[i] = handlers[i].got
	}
	return out, net
}

// counterSummary flattens a counter into a comparable string.
func counterSummary(c *Counter) string {
	return fmt.Sprintf("total=%d wire=%d bykind=%v wirebykind=%v bynode=%d recvbynode=%d",
		c.Total, c.Wire, c.ByKind(), c.WireByKind(), len(c.ByNode()), len(c.RecvByNode()))
}

// TestShardedEchoEquivalence drives the same seeded workload through
// the classic scheduler and through 2/3/4-shard configurations (both
// serial and parallel workers) and requires identical per-node
// delivery transcripts, virtual end times, and counters.
func TestShardedEchoEquivalence(t *testing.T) {
	const n, pings = 24, 4
	base := Options{
		Seed:      42,
		Latency:   Pairwise(5*time.Millisecond, 3*time.Millisecond, 99),
		ProcDelay: 250 * time.Microsecond,
	}
	ref, refNet := buildEcho(t, base, n, pings)
	refCtr := counterSummary(refNet.Counter())
	refNow := refNet.Now()

	for _, shards := range []int{2, 3, 4} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			opts := base
			opts.Shards = shards
			opts.ShardWorkers = workers
			got, net := buildEcho(t, opts, n, pings)
			if now := net.Now(); now != refNow {
				t.Errorf("%s: end time %v, classic %v", name, now, refNow)
			}
			if ctr := counterSummary(net.Counter()); ctr != refCtr {
				t.Errorf("%s: counters diverged:\n got %s\nwant %s", name, ctr, refCtr)
			}
			for i := range ref {
				if fmt.Sprint(got[i]) != fmt.Sprint(ref[i]) {
					t.Fatalf("%s: node %d transcript diverged:\n got %v\nwant %v",
						name, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestShardedRunUntil checks the time-bounded run contract: events at
// or before the target run, later ones stay queued, and the clock
// lands exactly on the target.
func TestShardedRunUntil(t *testing.T) {
	net := New(Options{Shards: 2, Latency: Fixed(10 * time.Millisecond)})
	env := net.AddNode(shardTestID(0))
	env.BindHandler(&echoHandler{env: env})
	var fired []time.Duration
	for _, d := range []time.Duration{5, 20, 35, 50} {
		d := d * time.Millisecond
		env.Defer(d, func() { fired = append(fired, d) })
	}
	net.RunUntil(35 * time.Millisecond)
	if net.Now() != 35*time.Millisecond {
		t.Fatalf("now = %v, want 35ms", net.Now())
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want the 5/20/35ms timers", fired)
	}
	if net.PendingEvents() != 1 {
		t.Fatalf("pending = %d, want 1", net.PendingEvents())
	}
	net.Run(0)
	if len(fired) != 4 {
		t.Fatalf("fired %v after drain, want all four", fired)
	}
}

// TestShardedScheduleOrdering checks that driver events run before
// node events at the same instant and in creation order, and that
// driver cancels work.
func TestShardedScheduleOrdering(t *testing.T) {
	net := New(Options{Shards: 2, Latency: Fixed(time.Millisecond)})
	env := net.AddNode(shardTestID(0))
	env.BindHandler(&echoHandler{env: env})
	var order []string
	env.Defer(10*time.Millisecond, func() { order = append(order, "node") })
	net.Schedule(10*time.Millisecond, func() { order = append(order, "driver-a") })
	cancel := net.Schedule(10*time.Millisecond, func() { order = append(order, "cancelled") })
	net.Schedule(10*time.Millisecond, func() { order = append(order, "driver-b") })
	cancel()
	net.Run(0)
	want := "[driver-a driver-b node]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestShardedTimerCancel checks After-cancel and Timer re-arming on
// the sharded scheduler.
func TestShardedTimerCancel(t *testing.T) {
	net := New(Options{Shards: 3, Latency: Fixed(time.Millisecond)})
	env := net.AddNode(shardTestID(0))
	env.BindHandler(&echoHandler{env: env})
	fired := 0
	cancel := env.After(5*time.Millisecond, func() { fired += 100 })
	cancel()
	var tm Timer
	env.Arm(7*time.Millisecond, func() { fired += 1000 }, &tm)
	tm.Stop()
	env.Arm(9*time.Millisecond, func() { fired++ }, &tm)
	net.Run(0)
	if fired != 1 {
		t.Fatalf("fired = %d, want only the re-armed timer", fired)
	}
}

// TestShardedDownNode checks that a down node neither receives nor
// fires timers, and that accounting still counts the send.
func TestShardedDownNode(t *testing.T) {
	net := New(Options{Shards: 2, Latency: Fixed(time.Millisecond)})
	a := net.AddNode(shardTestID(0))
	b := net.AddNode(shardTestID(1))
	ha := &echoHandler{env: a}
	hb := &echoHandler{env: b}
	a.BindHandler(ha)
	b.BindHandler(hb)
	b.Defer(5*time.Millisecond, func() { hb.got = append(hb.got, "timer") })
	net.SetDown(shardTestID(1), true)
	a.Send(shardTestID(1), "hello")
	net.Run(0)
	if len(hb.got) != 0 {
		t.Fatalf("down node observed %v", hb.got)
	}
	ctr := net.Counter()
	if ctr.Total != 1 || len(ctr.RecvByNode()) != 0 {
		t.Fatalf("counter total=%d recv=%v, want sent-but-undelivered", ctr.Total, ctr.RecvByNode())
	}
	net.SetDown(shardTestID(1), false)
	a.Send(shardTestID(1), "hello again")
	net.Run(0)
	if len(hb.got) != 1 {
		t.Fatalf("recovered node observed %v", hb.got)
	}
}

// TestShardedGates checks that unsupported feature combinations are
// rejected at construction.
func TestShardedGates(t *testing.T) {
	expectPanic := func(name string, opts Options) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		New(opts)
	}
	expectPanic("serializeproc", Options{Shards: 2, SerializeProc: true, ProcDelay: time.Millisecond})
	expectPanic("cpuof", Options{Shards: 2, CPUOf: func(ids.ID) int { return 0 }})
	expectPanic("tap", Options{Shards: 2, Tap: func(_, _ ids.ID, _ any, _ time.Duration) {}})
	expectPanic("no-lookahead", Options{Shards: 2, Latency: Uniform(0, time.Millisecond)})
	// An explicit Lookahead unlocks models without a usable bound.
	New(Options{Shards: 2, Latency: Uniform(time.Millisecond, 2*time.Millisecond), Lookahead: time.Millisecond})
}

// TestShardedLookaheadHorizon checks horizon resolution from the model
// bound plus ProcDelay, and the explicit override.
func TestShardedLookaheadHorizon(t *testing.T) {
	net := New(Options{Shards: 2, Latency: Fixed(3 * time.Millisecond), ProcDelay: time.Millisecond})
	if h := net.Lookahead(); h != 4*time.Millisecond {
		t.Fatalf("derived horizon %v, want 4ms", h)
	}
	net = New(Options{Shards: 2, Latency: Fixed(3 * time.Millisecond), Lookahead: 500 * time.Microsecond})
	if h := net.Lookahead(); h != 500*time.Microsecond {
		t.Fatalf("explicit horizon %v, want 500µs", h)
	}
	if net.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", net.Shards())
	}
	if New(Options{}).Lookahead() != 0 {
		t.Fatal("classic scheduler reports a lookahead")
	}
}

// TestPairwiseModel checks the deterministic pairwise model: stable,
// draw-free, bounded, direction-dependent.
func TestPairwiseModel(t *testing.T) {
	m := Pairwise(2*time.Millisecond, time.Millisecond, 7)
	a, b := shardTestID(0), shardTestID(1)
	l1 := m.Latency(a, b, 0, nil)
	l2 := m.Latency(a, b, time.Hour, nil)
	if l1 != l2 {
		t.Fatalf("pairwise latency unstable: %v vs %v", l1, l2)
	}
	if l1 < 2*time.Millisecond || l1 >= 3*time.Millisecond {
		t.Fatalf("latency %v outside [base, base+spread)", l1)
	}
	if mm, ok := m.(MinLatencyModel); !ok || mm.MinLatency() != 2*time.Millisecond {
		t.Fatal("pairwise MinLatency wrong")
	}
	rev := m.Latency(b, a, 0, nil)
	fwd := m.Latency(a, b, 0, nil)
	// Directions hash independently; equality would be a (harmless)
	// coincidence, so only check both stay in range.
	if rev < 2*time.Millisecond || rev >= 3*time.Millisecond || fwd != l1 {
		t.Fatalf("reverse latency %v out of range", rev)
	}
}

// TestMinLatencyBounds spot-checks the published bounds against
// sampled draws for every model that implements MinLatencyModel.
func TestMinLatencyBounds(t *testing.T) {
	models := []struct {
		name string
		m    LatencyModel
	}{
		{"fixed", Fixed(3 * time.Millisecond)},
		{"uniform", Uniform(2*time.Millisecond, 9*time.Millisecond)},
		{"lan", LAN(LANConfig{})},
		{"wan", WAN(WANConfig{Seed: 5})},
		{"pairwise", Pairwise(time.Millisecond, time.Millisecond, 3)},
	}
	rng := rand.New(rand.NewSource(11))
	for _, tc := range models {
		mm, ok := tc.m.(MinLatencyModel)
		if !ok {
			t.Errorf("%s: no MinLatency", tc.name)
			continue
		}
		bound := mm.MinLatency()
		if bound <= 0 {
			t.Errorf("%s: bound %v not positive", tc.name, bound)
		}
		for i := 0; i < 2000; i++ {
			from, to := shardTestID(i%50), shardTestID((i+1+i/50)%50)
			at := time.Duration(i) * 37 * time.Millisecond
			if l := tc.m.Latency(from, to, at, rng); l < bound {
				t.Errorf("%s: draw %v below bound %v", tc.name, l, bound)
				break
			}
		}
	}
}
