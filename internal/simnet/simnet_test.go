package simnet

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/ids"
)

type recordingHandler struct {
	got []string
}

func (h *recordingHandler) Handle(from ids.ID, m any) {
	h.got = append(h.got, m.(string))
}

func TestDeliveryAndOrdering(t *testing.T) {
	net := New(Options{Seed: 1, Latency: Fixed(time.Millisecond)})
	a, b := ids.FromUint64(1), ids.FromUint64(2)
	envA := net.AddNode(a)
	h := &recordingHandler{}
	envB := net.AddNode(b)
	envB.BindHandler(h)
	envA.BindHandler(&recordingHandler{})

	envA.Send(b, "one")
	envA.Send(b, "two")
	net.Run(0)
	if len(h.got) != 2 || h.got[0] != "one" || h.got[1] != "two" {
		t.Fatalf("delivery order: %v", h.got)
	}
	if net.Counter().Total != 2 {
		t.Fatalf("counter = %d", net.Counter().Total)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		net := New(Options{Seed: 42, Latency: Uniform(time.Millisecond, 10*time.Millisecond)})
		a := ids.FromUint64(1)
		h := &recordingHandler{}
		envA := net.AddNode(a)
		envA.BindHandler(h)
		for i := 0; i < 5; i++ {
			msg := string(rune('a' + i))
			envA.Send(a, msg)
			net.Schedule(time.Duration(i)*time.Millisecond, func() {
				h.got = append(h.got, "timer-"+msg)
			})
		}
		net.Run(0)
		return h.got
	}
	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run diverged at %d: %q vs %q", i, first[i], second[i])
		}
	}
}

func TestTimersAndCancel(t *testing.T) {
	net := New(Options{Seed: 1})
	a := ids.FromUint64(1)
	env := net.AddNode(a)
	env.BindHandler(&recordingHandler{})
	fired := 0
	env.After(5*time.Millisecond, func() { fired++ })
	cancel := env.After(time.Millisecond, func() { fired += 100 })
	cancel()
	net.RunFor(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (cancel leaked)", fired)
	}
	if net.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v", net.Now())
	}
}

func TestDownNodesDropTraffic(t *testing.T) {
	net := New(Options{Seed: 1})
	a, b := ids.FromUint64(1), ids.FromUint64(2)
	envA := net.AddNode(a)
	envA.BindHandler(&recordingHandler{})
	h := &recordingHandler{}
	envB := net.AddNode(b)
	envB.BindHandler(h)

	net.SetDown(b, true)
	envA.Send(b, "lost")
	net.Run(0)
	if len(h.got) != 0 {
		t.Fatal("down node received a message")
	}
	net.SetDown(b, false)
	envA.Send(b, "kept")
	net.Run(0)
	if len(h.got) != 1 || h.got[0] != "kept" {
		t.Fatalf("recovered node state: %v", h.got)
	}
	// A down node cannot send either.
	net.SetDown(a, true)
	envA.Send(b, "fromDown")
	net.Run(0)
	if len(h.got) != 1 {
		t.Fatal("down node sent a message")
	}
}

func TestDropHook(t *testing.T) {
	dropped := 0
	net := New(Options{
		Seed: 1,
		Drop: func(_, _ ids.ID, m any) bool {
			if m == "drop-me" {
				dropped++
				return true
			}
			return false
		},
	})
	a, b := ids.FromUint64(1), ids.FromUint64(2)
	envA := net.AddNode(a)
	envA.BindHandler(&recordingHandler{})
	h := &recordingHandler{}
	net.AddNode(b).BindHandler(h)
	envA.Send(b, "drop-me")
	envA.Send(b, "keep-me")
	net.Run(0)
	if dropped != 1 || len(h.got) != 1 || h.got[0] != "keep-me" {
		t.Fatalf("drop hook: dropped=%d got=%v", dropped, h.got)
	}
}

func TestSerializedProcessingQueues(t *testing.T) {
	const proc = 10 * time.Millisecond
	net := New(Options{
		Seed:          1,
		Latency:       Fixed(time.Millisecond),
		ProcDelay:     proc,
		SerializeProc: true,
	})
	a, b := ids.FromUint64(1), ids.FromUint64(2)
	envA := net.AddNode(a)
	envA.BindHandler(&recordingHandler{})
	var arrivals []time.Duration
	h := handlerFunc(func(ids.ID, any) { arrivals = append(arrivals, net.Now()) })
	net.AddNode(b).BindHandler(h)

	// Five messages sent simultaneously must be processed serially,
	// 10ms apart.
	for i := 0; i < 5; i++ {
		envA.Send(b, i)
	}
	net.Run(0)
	if len(arrivals) != 5 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap != proc {
			t.Fatalf("gap %d = %v, want %v (CPU not serialized)", i, gap, proc)
		}
	}
}

func TestSharedCPUQueueing(t *testing.T) {
	const proc = 10 * time.Millisecond
	net := New(Options{
		Seed:          1,
		Latency:       Fixed(time.Millisecond),
		ProcDelay:     proc,
		SerializeProc: true,
		CPUOf:         func(ids.ID) int { return 0 }, // all share one CPU
	})
	a := ids.FromUint64(1)
	envA := net.AddNode(a)
	envA.BindHandler(&recordingHandler{})
	var arrivals []time.Duration
	for i := 2; i <= 4; i++ {
		net.AddNode(ids.FromUint64(uint64(i))).BindHandler(
			handlerFunc(func(ids.ID, any) { arrivals = append(arrivals, net.Now()) }))
	}
	for i := 2; i <= 4; i++ {
		envA.Send(ids.FromUint64(uint64(i)), "x")
	}
	net.Run(0)
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	// Distinct receivers on a shared CPU still serialize.
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i]-arrivals[i-1] != proc {
			t.Fatalf("shared CPU gap = %v", arrivals[i]-arrivals[i-1])
		}
	}
}

func TestRunWhileStopsEarly(t *testing.T) {
	net := New(Options{Seed: 1})
	count := 0
	for i := 0; i < 10; i++ {
		net.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	net.RunWhile(func() bool { return count < 3 })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestWANModelStability(t *testing.T) {
	m := WAN(WANConfig{Seed: 7})
	a, b := ids.FromUint64(1), ids.FromUint64(2)
	if m.BaseRTT(a, b) != m.BaseRTT(b, a) {
		t.Fatal("BaseRTT not symmetric")
	}
	if m.BaseRTT(a, b) != m.BaseRTT(a, b) {
		t.Fatal("BaseRTT not stable")
	}
	if m.BaseRTT(a, a) != 0 {
		t.Fatal("self RTT should be zero")
	}
}

func TestWANStragglerStatistics(t *testing.T) {
	m := WAN(WANConfig{Seed: 3})
	stragglers := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if m.StragglerDelay(ids.FromUint64(uint64(i))) > 0 {
			stragglers++
		}
	}
	frac := float64(stragglers) / n
	if frac < 0.02 || frac > 0.07 {
		t.Fatalf("straggler fraction = %v, want ~0.04", frac)
	}
}

func TestWANStragglerDutyCycle(t *testing.T) {
	m := WAN(WANConfig{Seed: 3})
	// Find a straggler.
	var s ids.ID
	for i := 0; i < 2000; i++ {
		id := ids.FromUint64(uint64(i))
		if m.StragglerDelay(id) > 0 {
			s = id
			break
		}
	}
	if s.IsZero() {
		t.Skip("no straggler found")
	}
	slow, total := 0, 200
	for w := 0; w < total; w++ {
		if m.stragglerAt(s, time.Duration(w)*m.cfg.StragglerWindow) > 0 {
			slow++
		}
	}
	frac := float64(slow) / float64(total)
	if frac < 0.15 || frac > 0.5 {
		t.Fatalf("duty fraction = %v, want ~0.3", frac)
	}
}

type handlerFunc func(ids.ID, any)

func (f handlerFunc) Handle(from ids.ID, m any) { f(from, m) }

// testBatch implements Batch for accounting tests.
type testBatch struct {
	items []any
}

func (b testBatch) Unpack() []any { return b.items }
func (testBatch) MsgKind() string { return "test.batch" }

type kindMsg string

func (k kindMsg) MsgKind() string { return string(k) }

// TestBatchAccounting checks the wire/logical counter split: a Batch
// counts once at the wire level (under its envelope kind) and once per
// carried item at the logical level (under the items' own kinds), and
// delivery credits the receiver with the logical count.
func TestBatchAccounting(t *testing.T) {
	net := New(Options{Seed: 1})
	a, b := ids.FromUint64(1), ids.FromUint64(2)
	ea := net.AddNode(a)
	eb := net.AddNode(b)
	delivered := 0
	ea.BindHandler(handlerFunc(func(ids.ID, any) {}))
	eb.BindHandler(handlerFunc(func(_ ids.ID, m any) {
		if bm, ok := m.(Batch); ok {
			delivered += len(bm.Unpack())
		} else {
			delivered++
		}
	}))
	ea.Send(b, testBatch{items: []any{kindMsg("moara.epoch"), kindMsg("moara.epoch"), kindMsg("moara.cancel")}})
	ea.Send(b, kindMsg("moara.status"))
	net.Run(0)

	c := net.Counter()
	if c.Total != 4 {
		t.Errorf("logical Total = %d, want 4", c.Total)
	}
	if c.Wire != 2 {
		t.Errorf("Wire = %d, want 2", c.Wire)
	}
	if c.Logical("moara.epoch") != 2 || c.Logical("moara.cancel") != 1 || c.Logical("moara.status") != 1 {
		t.Errorf("logical ByKind = %v", c.ByKind())
	}
	if c.Logical("test.batch") != 0 {
		t.Errorf("batch envelope leaked into logical counts: %v", c.ByKind())
	}
	if c.WireCount("test.batch") != 1 || c.WireCount("moara.status") != 1 {
		t.Errorf("WireByKind = %v", c.WireByKind())
	}
	if c.ByNode()[a] != 4 {
		t.Errorf("ByNode[a] = %d, want 4", c.ByNode()[a])
	}
	if c.RecvByNode()[b] != 4 {
		t.Errorf("RecvByNode[b] = %d, want 4", c.RecvByNode()[b])
	}
	if delivered != 4 {
		t.Errorf("delivered items = %d, want 4", delivered)
	}
}
