package simnet

import (
	"math"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/ids"
)

// Fixed returns a latency model with a constant one-way delay.
func Fixed(d time.Duration) LatencyModel { return fixedModel(d) }

type fixedModel time.Duration

func (m fixedModel) Latency(_, _ ids.ID, _ time.Duration, _ *rand.Rand) time.Duration {
	return time.Duration(m)
}

// MinLatency reports the constant delay as its own lower bound.
func (m fixedModel) MinLatency() time.Duration { return time.Duration(m) }

// Uniform returns a model drawing one-way delays uniformly from
// [min, max).
func Uniform(min, max time.Duration) LatencyModel {
	return &uniformModel{min: min, max: max}
}

type uniformModel struct {
	min, max time.Duration
}

func (m *uniformModel) Latency(_, _ ids.ID, _ time.Duration, rng *rand.Rand) time.Duration {
	if m.max <= m.min {
		return m.min
	}
	return m.min + time.Duration(rng.Int63n(int64(m.max-m.min)))
}

// MinLatency reports the lower edge of the draw interval.
func (m *uniformModel) MinLatency() time.Duration { return m.min }

// LANConfig parameterizes the Emulab-style local-network model: a
// switched 100 Mbps LAN where wire latency is small and roughly uniform.
type LANConfig struct {
	// Base is the minimum one-way wire delay (default 100µs).
	Base time.Duration
	// Jitter is the uniform extra delay bound (default 400µs).
	Jitter time.Duration
}

// LAN builds the local-network latency model used for the Emulab
// experiments (Figs. 12–13).
func LAN(cfg LANConfig) LatencyModel {
	if cfg.Base == 0 {
		cfg.Base = 100 * time.Microsecond
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 400 * time.Microsecond
	}
	return &lanModel{cfg: cfg}
}

type lanModel struct {
	cfg LANConfig
}

func (m *lanModel) Latency(_, _ ids.ID, _ time.Duration, rng *rand.Rand) time.Duration {
	return m.cfg.Base + time.Duration(rng.Int63n(int64(m.cfg.Jitter)))
}

// MinLatency reports the base wire delay (jitter only adds).
func (m *lanModel) MinLatency() time.Duration { return m.cfg.Base }

// WANConfig parameterizes the PlanetLab-style wide-area model. Each
// unordered node pair gets a stable base RTT drawn from a lognormal
// body; additionally a configurable fraction of NODES are stragglers
// (overloaded or badly connected hosts) that add a heavy-tailed delay
// to every path touching them. Slow nodes — rather than slow pairs —
// are what make group-scoped querying beat centralized aggregation in
// the paper's Figs. 14-16: a group query only pays for stragglers in
// (or near) the group.
type WANConfig struct {
	// MedianRTT is the median pairwise round-trip time (default 120ms).
	MedianRTT time.Duration
	// Sigma is the lognormal shape parameter (default 0.6).
	Sigma float64
	// StragglerFrac is the fraction of straggler nodes (default 0.04).
	StragglerFrac float64
	// StragglerScale is the minimum extra RTT a straggler adds
	// (default 800ms).
	StragglerScale time.Duration
	// StragglerAlpha is the Pareto tail index of straggler delays
	// (default 1.1; smaller means heavier tail).
	StragglerAlpha float64
	// StragglerCap bounds a straggler's extra RTT (default 30s).
	StragglerCap time.Duration
	// StragglerDuty is the fraction of time a straggler is actually
	// slow (default 0.3): PlanetLab stragglers are intermittently
	// overloaded, not constantly. Set to 1 for always-slow nodes.
	StragglerDuty float64
	// StragglerWindow is the duty-cycle granularity (default 30s).
	StragglerWindow time.Duration
	// JitterFrac adds per-message uniform jitter of ±JitterFrac of the
	// base one-way latency (default 0.1).
	JitterFrac float64
	// Seed makes the pairwise bases reproducible.
	Seed int64
}

// WAN builds the wide-area latency model.
func WAN(cfg WANConfig) *WANModel {
	if cfg.MedianRTT == 0 {
		cfg.MedianRTT = 120 * time.Millisecond
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.6
	}
	if cfg.StragglerFrac == 0 {
		cfg.StragglerFrac = 0.04
	}
	if cfg.StragglerScale == 0 {
		cfg.StragglerScale = 800 * time.Millisecond
	}
	if cfg.StragglerAlpha == 0 {
		cfg.StragglerAlpha = 1.1
	}
	if cfg.StragglerCap == 0 {
		cfg.StragglerCap = 30 * time.Second
	}
	if cfg.StragglerDuty == 0 {
		cfg.StragglerDuty = 0.3
	}
	if cfg.StragglerWindow == 0 {
		cfg.StragglerWindow = 30 * time.Second
	}
	if cfg.JitterFrac == 0 {
		cfg.JitterFrac = 0.1
	}
	return &WANModel{cfg: cfg}
}

// WANModel implements LatencyModel with stable per-pair RTTs, so offline
// analyses (Fig. 16's bottleneck-link study) can interrogate BaseRTT.
type WANModel struct {
	cfg WANConfig
}

var _ LatencyModel = (*WANModel)(nil)

// pairKey builds an order-independent 64-bit key for a node pair.
func pairKey(a, b ids.ID) uint64 {
	ka, kb := idSeed(a), idSeed(b)
	if ka > kb {
		ka, kb = kb, ka
	}
	// 64-bit mix (splitmix64 finalizer) over both halves.
	x := ka ^ (kb * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StragglerDelay returns the extra RTT the node would add to paths
// through it during a slow window (zero for healthy nodes; the peak
// value regardless of when).
func (m *WANModel) StragglerDelay(a ids.ID) time.Duration {
	rng := rand.New(rand.NewSource(int64(idSeed(a)^0x5bf03635) ^ m.cfg.Seed))
	if rng.Float64() >= m.cfg.StragglerFrac {
		return 0
	}
	u := rng.Float64()
	if u < 1e-6 {
		u = 1e-6
	}
	mult := math.Pow(u, -1.0/m.cfg.StragglerAlpha)
	d := time.Duration(float64(m.cfg.StragglerScale) * mult)
	if d > m.cfg.StragglerCap {
		d = m.cfg.StragglerCap
	}
	return d
}

// stragglerAt returns the node's extra RTT at time now, applying the
// duty cycle: a straggler is slow only during a deterministic fraction
// of its StragglerWindow-sized time slots.
func (m *WANModel) stragglerAt(a ids.ID, now time.Duration) time.Duration {
	d := m.StragglerDelay(a)
	if d == 0 || m.cfg.StragglerDuty >= 1 {
		return d
	}
	window := uint64(now / m.cfg.StragglerWindow)
	h := mixLat(idSeed(a)^uint64(m.cfg.Seed), window)
	if float64(h%1000)/1000 < m.cfg.StragglerDuty {
		return d
	}
	return 0
}

// BaseRTT returns the stable fair-weather round-trip time assigned to
// the pair (the lognormal body, no straggler penalties).
func (m *WANModel) BaseRTT(a, b ids.ID) time.Duration {
	if a == b {
		return 0
	}
	rng := rand.New(rand.NewSource(int64(pairKey(a, b)) ^ m.cfg.Seed))
	z := rng.NormFloat64()
	rtt := float64(m.cfg.MedianRTT) * math.Exp(m.cfg.Sigma*z)
	if rtt < float64(2*time.Millisecond) {
		rtt = float64(2 * time.Millisecond)
	}
	return time.Duration(rtt)
}

// RTTAt returns the pair's round-trip time at time now, including any
// active straggler penalties on either endpoint.
func (m *WANModel) RTTAt(a, b ids.ID, now time.Duration) time.Duration {
	if a == b {
		return 0
	}
	return m.BaseRTT(a, b) + m.stragglerAt(a, now) + m.stragglerAt(b, now)
}

// Latency returns one half of the pair's current RTT plus per-message
// jitter.
func (m *WANModel) Latency(from, to ids.ID, now time.Duration, rng *rand.Rand) time.Duration {
	oneWay := m.RTTAt(from, to, now) / 2
	if oneWay <= 0 {
		return 0
	}
	jit := int64(float64(oneWay) * m.cfg.JitterFrac)
	if jit <= 0 {
		return oneWay
	}
	return oneWay - time.Duration(jit/2) + time.Duration(rng.Int63n(jit))
}

// MinLatency reports a conservative one-way floor: half the 2ms RTT
// clamp, less the largest possible downward jitter excursion.
func (m *WANModel) MinLatency() time.Duration {
	floor := float64(time.Millisecond)
	return time.Duration(floor * (1 - m.cfg.JitterFrac/2))
}

// Pairwise returns a draw-free deterministic model: each ordered node
// pair gets a stable one-way delay of base plus a hashed offset in
// [0, spread), at nanosecond granularity. Because it consumes no
// randomness and depends only on the endpoints, it is the natural
// model for byte-for-byte equivalence runs between the classic and
// sharded schedulers: the classic engine's global draw stream and the
// sharded engine's per-sender streams trivially agree (neither is
// touched), and nanosecond-hashed arrival times make same-instant
// cross-origin collisions — where the two engines' tie-breaks could
// diverge — vanishingly unlikely.
func Pairwise(base, spread time.Duration, seed int64) LatencyModel {
	return &pairwiseModel{base: base, spread: spread, seed: seed}
}

type pairwiseModel struct {
	base, spread time.Duration
	seed         int64
}

func (m *pairwiseModel) Latency(from, to ids.ID, _ time.Duration, _ *rand.Rand) time.Duration {
	if m.spread <= 0 {
		return m.base
	}
	h := mixLat(idSeed(from)^uint64(m.seed), idSeed(to))
	return m.base + time.Duration(h%uint64(m.spread))
}

// MinLatency reports the base delay (the hashed offset only adds).
func (m *pairwiseModel) MinLatency() time.Duration { return m.base }

func mixLat(a, b uint64) uint64 {
	x := a ^ (b+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return x ^ (x >> 31)
}
