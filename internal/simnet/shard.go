package simnet

// Sharded execution: the conservative-lookahead parallel scheduler.
//
// With Options.Shards >= 2 the network partitions its nodes across K
// shards (round-robin by registration index), each with its own event
// heap, event-record pool, and message counter. Shards advance in
// lookahead windows: if H is a lower bound on the delivery delay of any
// cross-shard message (minimum one-way latency plus the fixed
// processing delay), then every event in [t, t+H) is causally
// independent of concurrently executing events on other shards, so the
// shards may drain their heaps through the window in parallel.
// Cross-shard deliveries are staged in per-(source, destination) inbox
// buffers and folded into the destination heaps at the window barrier —
// by construction they always land at or beyond the window end.
//
// Determinism is the contract that makes the parallelism usable: a
// sharded run's observable behavior (results, samples, virtual-time
// latencies, message accounting) is a function of the seed alone — the
// shard count, the worker count, and the OS scheduler never change it.
// Three disciplines deliver that:
//
//  1. Event keys. Every event is ordered by (time, origin, birth
//     sequence), where origin is the creating node's registration index
//     and the birth sequence is that node's private creation counter.
//     Both are defined by the node's own deterministic execution
//     history, not by global interleaving, so ties at equal virtual
//     times break identically however the windows were executed. (The
//     classic engine orders by global creation sequence instead — a
//     different, equally valid tie-break; see the equivalence tests for
//     when the two coincide byte-for-byte.)
//  2. Latency draws. Message latencies and processing jitter are drawn
//     from a per-sender stream seeded by (network seed, sender id), so
//     the draw sequence is the sender's own send sequence regardless of
//     how sends from different shards interleave in wall-clock time.
//  3. Window placement. Windows start at the globally earliest pending
//     event — a function of the event population only, not of the
//     shard count — and driver-level Schedule callbacks run on the
//     coordinator at window edges, before any node event at the same
//     instant.
//
// Features whose classic semantics are inherently global-send-order are
// rejected at construction in sharded mode: SerializeProc's CPU-queue
// accounting advances a per-CPU busy horizon in global send order, CPUOf
// may co-locate nodes from different shards on one CPU, and Tap observes
// sends in a global order that parallel windows do not have. Drop stays
// available, but the callback runs concurrently from shard workers: it
// must be thread-safe and must decide from its arguments alone (not
// shared mutable state or call order) to stay shard-count independent.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/moara/moara/internal/ids"
)

// maxOseq bounds a single origin's event-creation counter so the
// (origin, oseq) pair packs into the event's int64 ordering key.
const maxOseq = 1 << 40

// latStreamSalt separates a node's latency-draw stream from its
// node-logic stream (both derive from the network seed and the id).
const latStreamSalt = 0x5eed1a7e5a17ed

// maxShardOrigin bounds the dense node index so (origin+1)<<40 cannot
// overflow the int64 key: 2^22 origins leaves the sign bit clear.
const maxShardOrigin = 1 << 22

// packKey builds the int64 tie-break key from an origin index and its
// birth sequence. Driver events (origin -1) sort before any node event
// at the same instant.
func packKey(origin int32, oseq int64) int64 {
	if oseq >= maxOseq {
		panic("simnet: per-origin event sequence overflow")
	}
	if origin >= maxShardOrigin {
		panic("simnet: node index exceeds the sharded engine's origin-key capacity")
	}
	return (int64(origin)+1)<<40 | oseq
}

// MinLatencyModel is implemented by latency models that can state a
// positive lower bound on any one-way delay they will ever return.
// Sharded execution derives its lookahead horizon from it; models
// without the bound require an explicit Options.Lookahead.
type MinLatencyModel interface {
	// MinLatency returns a lower bound on Latency for any
	// (from, to, now) triple.
	MinLatency() time.Duration
}

// stagedMsg is a cross-shard delivery parked in an inbox buffer until
// the window barrier.
type stagedMsg struct {
	at      time.Duration
	key     int64
	from    ids.ID
	to      ids.ID
	envTo   *nodeEnv
	m       any
	logical int64
}

// shard is one partition of the network: a private heap, pool, and
// counter, plus staging buffers for messages addressed to other shards.
type shard struct {
	net *Network
	idx int

	events eventQueue
	free   []*event
	// counter accumulates this shard's accounting: sends by its own
	// nodes, deliveries to its own nodes. Network.Counter() merges the
	// per-shard ledgers into one reporting view.
	counter *Counter
	// now is the shard's local clock: the time of the last event it
	// processed. Between barriers all shard clocks are re-aligned to
	// the coordinator's.
	now time.Duration
	// winEnd is the (exclusive) end of the window being executed; the
	// cross-shard horizon guard asserts against it.
	winEnd time.Duration
	// stageOut[d] buffers messages this shard's nodes sent to shard d
	// during the current window. Only this shard appends; the
	// coordinator drains it at the barrier.
	stageOut [][]stagedMsg

	processed int
}

// shardedNet is the coordinator state for sharded execution.
type shardedNet struct {
	net     *Network
	shards  []*shard
	horizon time.Duration
	// workers caps window parallelism: 1 executes windows inline on
	// the coordinator goroutine (identical results, no handoff).
	workers int

	// drv holds driver-level Schedule events; they run on the
	// coordinator at window edges in creation order.
	drv  eventQueue
	dseq int64

	wg sync.WaitGroup
}

// parallelThreshold is the pending-event count below which a window
// executes inline even when workers are enabled: a handful of events is
// cheaper to run than to hand off to goroutines.
const parallelThreshold = 64

// newShardedNet wires the sharded runtime onto a freshly constructed
// Network and validates the option surface.
func newShardedNet(n *Network) *shardedNet {
	o := &n.opts
	if o.SerializeProc {
		panic("simnet: SerializeProc is not supported with Shards >= 2 (its CPU-queue accounting is global-send-order semantics; use the classic scheduler)")
	}
	if o.CPUOf != nil {
		panic("simnet: CPUOf is not supported with Shards >= 2")
	}
	if o.Tap != nil {
		panic("simnet: Tap is not supported with Shards >= 2 (sends have no global observation order across parallel windows)")
	}
	horizon := o.Lookahead
	if horizon <= 0 {
		if m, ok := o.Latency.(MinLatencyModel); ok {
			horizon = m.MinLatency() + o.ProcDelay
		}
	}
	if horizon <= 0 {
		panic("simnet: Shards >= 2 requires a latency model with a positive MinLatency() or an explicit positive Options.Lookahead")
	}
	workers := o.ShardWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > o.Shards {
		workers = o.Shards
	}
	if workers < 1 {
		workers = 1
	}
	s := &shardedNet{
		net:     n,
		shards:  make([]*shard, o.Shards),
		horizon: horizon,
		workers: workers,
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			net:      n,
			idx:      i,
			counter:  n.newCounter(),
			stageOut: make([][]stagedMsg, o.Shards),
		}
	}
	return s
}

// newEvent / freeEvent are the per-shard counterparts of the Network
// pool methods. Records never migrate between pools: a staged
// cross-shard message travels as a value struct and is materialized
// from the receiving shard's pool at the barrier.
func (sh *shard) newEvent() *event {
	if k := len(sh.free); k > 0 {
		ev := sh.free[k-1]
		sh.free = sh.free[:k-1]
		return ev
	}
	return &event{home: int32(sh.idx)}
}

func (sh *shard) freeEvent(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.env = nil
	ev.envTo = nil
	ev.m = nil
	ev.delivery = false
	ev.logical = 0
	ev.idx = -1
	sh.free = append(sh.free, ev)
}

// defer_ schedules a node-local timer on the node's own shard. It runs
// either on the shard's worker (node logic inside a window) or on the
// coordinator with all shards parked (driver callbacks, harness code
// between runs) — never concurrently with itself.
func (sh *shard) defer_(e *nodeEnv, d time.Duration, fn func()) *event {
	if d < 0 {
		d = 0
	}
	ev := sh.newEvent()
	ev.at = sh.now + d
	ev.seq = packKey(int32(e.idx), e.oseq)
	e.oseq++
	ev.fn = fn
	ev.env = e
	sh.events.push(ev)
	return ev
}

// send transmits a message in sharded mode. The latency (and jitter)
// draw comes from the sender's private stream; same-shard deliveries go
// straight onto the local heap, cross-shard deliveries are staged for
// the barrier fold.
func (sh *shard) send(e *nodeEnv, to ids.ID, m any) {
	n := sh.net
	logical := int64(1)
	var items []any
	if b, ok := m.(Batch); ok {
		items = b.Unpack()
		logical = int64(len(items))
	}
	if !n.quiet {
		sh.counter.Wire++
		sh.counter.cell(KindOf(m)).wire++
		if items != nil {
			for _, it := range items {
				sh.counter.Total++
				sh.counter.cell(KindOf(it)).logical++
			}
		} else {
			sh.counter.Total++
			sh.counter.cell(KindOf(m)).logical++
		}
		sh.counter.addSent(e.idx, logical)
	}
	if n.opts.Drop != nil && n.opts.Drop(e.id, to, m) {
		return
	}
	lat := n.opts.Latency.Latency(e.id, to, sh.now, e.latRng)
	proc := n.opts.ProcDelay
	if n.opts.ProcJitter > 0 {
		proc += time.Duration(e.latRng.Int63n(int64(n.opts.ProcJitter)))
	}
	dst := n.nodes[to]
	if dst == nil {
		// Unregistered destination: counted as sent, never delivered —
		// the classic engine's outcome whenever the node stays
		// unregistered. (The classic engine would additionally deliver
		// if the destination registered while the message was in
		// flight; the sharded engine drops at send so a message can
		// never target a shard assignment made after the fact.)
		return
	}
	at := sh.now + lat + proc
	key := packKey(int32(e.idx), e.oseq)
	e.oseq++
	if dst.shard == sh {
		ev := sh.newEvent()
		ev.at = at
		ev.seq = key
		ev.delivery = true
		ev.from = e.id
		ev.to = to
		ev.envTo = dst
		ev.m = m
		ev.logical = logical
		sh.events.push(ev)
		return
	}
	if at < sh.winEnd {
		panic(fmt.Sprintf("simnet: cross-shard delivery at %v lands inside the lookahead window ending %v — the latency model violated its MinLatency bound", at, sh.winEnd))
	}
	sh.stageOut[dst.shard.idx] = append(sh.stageOut[dst.shard.idx], stagedMsg{
		at: at, key: key, from: e.id, to: to, envTo: dst, m: m, logical: logical,
	})
}

// runWindow drains this shard's heap through [*, end), leaving events
// at or beyond end for later windows.
func (sh *shard) runWindow(end time.Duration) {
	sh.winEnd = end
	n := sh.net
	for sh.events.Len() > 0 {
		if sh.events.q[0].at >= end {
			break
		}
		ev := sh.events.pop()
		sh.now = ev.at
		sh.processed++
		if ev.delivery {
			from, to, m, logical, envTo := ev.from, ev.to, ev.m, ev.logical, ev.envTo
			sh.freeEvent(ev)
			if envTo == nil || envTo.removed {
				envTo = n.nodes[to]
			}
			if envTo == nil || envTo.removed || envTo.down || envTo.handler == nil {
				continue
			}
			if envTo.shard != sh {
				// The destination was removed and its identifier
				// re-registered onto a different shard while the
				// message was in flight; delivering here would run
				// foreign-shard state on this worker. Drop it.
				continue
			}
			if !n.quiet {
				sh.counter.addRecv(envTo.idx, logical)
			}
			envTo.handler.Handle(from, m)
			continue
		}
		fn, env := ev.fn, ev.env
		sh.freeEvent(ev)
		if env != nil && env.down {
			continue
		}
		fn()
	}
}

// foldStaged moves every staged cross-shard message onto its
// destination heap. Coordinator context only: all shard workers are
// parked, so the buffers are stable.
func (s *shardedNet) foldStaged() {
	for _, src := range s.shards {
		for d, buf := range src.stageOut {
			if len(buf) == 0 {
				continue
			}
			dst := s.shards[d]
			for i := range buf {
				st := &buf[i]
				ev := dst.newEvent()
				ev.at = st.at
				ev.seq = st.key
				ev.delivery = true
				ev.from = st.from
				ev.to = st.to
				ev.envTo = st.envTo
				ev.m = st.m
				ev.logical = st.logical
				dst.events.push(ev)
				*st = stagedMsg{}
			}
			src.stageOut[d] = buf[:0]
		}
	}
}

// nextEventAt returns the earliest pending shard-event time, or
// ok=false when all heaps are empty. (Staged buffers are always empty
// when this runs: the coordinator folds them first.)
func (s *shardedNet) nextEventAt() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, sh := range s.shards {
		if sh.events.Len() == 0 {
			continue
		}
		if at := sh.events.q[0].at; !found || at < best {
			best, found = at, true
		}
	}
	return best, found
}

// pending counts queued events across shard heaps, staged inboxes, and
// the driver queue.
func (s *shardedNet) pending() int {
	total := s.drv.Len()
	for _, sh := range s.shards {
		total += sh.events.Len()
		for _, buf := range sh.stageOut {
			total += len(buf)
		}
	}
	return total
}

// schedule registers a driver-level callback (Network.Schedule).
// Driver events live on the coordinator's own queue, keyed by creation
// order, and run with every shard parked — they may touch any node.
func (s *shardedNet) schedule(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	ev := &event{home: -1}
	ev.at = s.net.now + d
	ev.seq = s.dseq
	s.dseq++
	ev.fn = fn
	s.drv.push(ev)
	gen := ev.gen
	return func() {
		if ev.gen != gen || ev.idx < 0 {
			return
		}
		s.drv.remove(ev.idx)
		ev.gen++
	}
}

// runDriverAt executes every driver event scheduled at exactly t, in
// creation order, advancing all clocks to t first.
func (s *shardedNet) runDriverAt(t time.Duration) int {
	processed := 0
	s.net.now = t
	for _, sh := range s.shards {
		sh.now = t
	}
	for s.drv.Len() > 0 && s.drv.q[0].at == t {
		ev := s.drv.pop()
		fn := ev.fn
		ev.gen++
		ev.fn = nil
		fn()
		processed++
	}
	return processed
}

// runWindows is the coordinator loop behind the sharded Run variants.
// It advances through lookahead windows until the queues drain, the
// virtual clock would pass target (when bounded), cond turns false, or
// maxEvents is reached, and returns the number of events processed.
//
//   - bounded: stop (and set the clock) at target, like RunUntil.
//   - cond: checked at window barriers — not per event like the classic
//     RunWhile; a window that straddles the condition flip completes.
//   - maxEvents: 0 means unlimited; windows are atomic, so the count
//     may overshoot within the final window.
func (s *shardedNet) runWindows(target time.Duration, bounded bool, cond func() bool, maxEvents int) int {
	n := s.net
	processed := 0
	finish := func() int {
		if bounded {
			n.now = target
		} else {
			for _, sh := range s.shards {
				if sh.now > n.now {
					n.now = sh.now
				}
			}
		}
		for _, sh := range s.shards {
			if sh.now < n.now {
				sh.now = n.now
			}
		}
		return processed
	}
	for {
		// Fold any staged cross-shard traffic (from the previous
		// window, a driver callback, or harness sends between runs)
		// before looking at the heaps.
		s.foldStaged()
		if cond != nil && !cond() {
			return finish()
		}
		if maxEvents > 0 && processed >= maxEvents {
			return finish()
		}
		next, ok := s.nextEventAt()
		if s.drv.Len() > 0 {
			if dt := s.drv.q[0].at; !ok || dt <= next {
				// Driver events run first at their instant, before any
				// node event at the same time.
				if bounded && dt > target {
					return finish()
				}
				processed += s.runDriverAt(dt)
				continue
			}
		}
		if !ok {
			return finish()
		}
		if bounded && next > target {
			return finish()
		}
		end := next + s.horizon
		if s.drv.Len() > 0 && s.drv.q[0].at < end {
			// Clip at the next driver event so it observes (and can
			// mutate) a fully settled state at its instant.
			end = s.drv.q[0].at
		}
		if bounded && end > target+1 {
			// Include events at exactly target, then stop.
			end = target + 1
		}
		s.runOneWindow(end)
		for _, sh := range s.shards {
			processed += sh.processed
			sh.processed = 0
		}
	}
}

// runOneWindow executes one window across all shards — inline when the
// backlog is small or parallelism is off, on worker goroutines
// otherwise. Both paths compute identical results; only wall-clock
// differs.
func (s *shardedNet) runOneWindow(end time.Duration) {
	if s.workers > 1 && s.pending() >= parallelThreshold {
		for _, sh := range s.shards {
			if sh.events.Len() == 0 {
				continue
			}
			s.wg.Add(1)
			go func(sh *shard) {
				defer s.wg.Done()
				sh.runWindow(end)
			}(sh)
		}
		s.wg.Wait()
		return
	}
	for _, sh := range s.shards {
		sh.runWindow(end)
	}
}

// mergedCounter materializes one Counter summing the per-shard ledgers.
// It is a snapshot: reporting-path cost, not hot-path cost.
func (s *shardedNet) mergedCounter() *Counter {
	out := s.net.newCounter()
	for _, sh := range s.shards {
		c := sh.counter
		out.Total += c.Total
		out.Wire += c.Wire
		for i := range c.kinds {
			cell := out.cell(c.kinds[i].kind)
			cell.logical += c.kinds[i].logical
			cell.wire += c.kinds[i].wire
		}
		for i, v := range c.sent {
			if v != 0 {
				out.addSent(i, v)
			}
		}
		for i, v := range c.recv {
			if v != 0 {
				out.addRecv(i, v)
			}
		}
	}
	return out
}

// resetCounters zeroes every shard ledger.
func (s *shardedNet) resetCounters() {
	for _, sh := range s.shards {
		sh.counter = s.net.newCounter()
	}
}

// cancelEvent removes a pending sharded event. It runs either on the
// owning shard's worker (a node cancelling its own timer: the event
// lives on that same shard's heap) or on the coordinator with shards
// parked.
func (s *shardedNet) cancelEvent(ev *event, gen uint64) {
	if ev.gen != gen || ev.idx < 0 {
		return
	}
	if ev.home < 0 {
		s.drv.remove(ev.idx)
		ev.gen++
		return
	}
	sh := s.shards[ev.home]
	sh.events.remove(ev.idx)
	sh.freeEvent(ev)
}

// Shards reports the shard count (1 when the classic scheduler runs).
func (n *Network) Shards() int {
	if n.sharded == nil {
		return 1
	}
	return len(n.sharded.shards)
}

// ShardOf reports which shard owns a node (always 0 on the classic
// scheduler; -1 for unknown nodes).
func (n *Network) ShardOf(id ids.ID) int {
	env, ok := n.nodes[id]
	if !ok {
		return -1
	}
	if n.sharded == nil {
		return 0
	}
	return env.shard.idx
}

// Lookahead reports the conservative window size (0 on the classic
// scheduler).
func (n *Network) Lookahead() time.Duration {
	if n.sharded == nil {
		return 0
	}
	return n.sharded.horizon
}
