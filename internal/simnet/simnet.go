// Package simnet is a deterministic discrete-event network simulator.
//
// It provides virtual time, seeded randomness, pluggable latency models,
// message-level failure injection, and per-message accounting. All Moara
// node logic is event-driven against the Env interface, so the same code
// runs unchanged on simnet (for 16k-node experiments) and on the real
// TCP transport (for multi-process deployments).
//
// The simulator is single-threaded: Run drains a priority queue of timed
// events on the caller's goroutine. With a fixed seed, runs are exactly
// reproducible.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/ids"
)

// Handler consumes messages delivered to a node.
type Handler interface {
	// Handle processes one message sent by the node with identifier
	// from. It runs on the simulator goroutine; implementations may
	// freely call Env methods but must not block.
	Handle(from ids.ID, m any)
}

// Env is the environment a node runs in: its identity, a message
// transport, timers, a clock, and a random source. internal/pastry and
// internal/core depend only on this interface.
type Env interface {
	// Self returns the node's identifier.
	Self() ids.ID
	// Send transmits m to the node with identifier to. Delivery is
	// asynchronous and may be lost if the destination is down.
	Send(to ids.ID, m any)
	// After schedules fn to run once after d. The returned function
	// cancels the timer if it has not fired.
	After(d time.Duration, fn func()) (cancel func())
	// Now returns the current (virtual or wall-clock) time expressed
	// as an offset from the run's epoch.
	Now() time.Duration
	// Rand returns the node's deterministic random source.
	Rand() *rand.Rand
}

// LatencyModel computes one-way message latencies. Models receive the
// current virtual time so they can express time-varying behavior
// (bursty straggler nodes, diurnal load).
type LatencyModel interface {
	// Latency returns the one-way delay for a message from -> to sent
	// at time now.
	Latency(from, to ids.ID, now time.Duration, rng *rand.Rand) time.Duration
}

// Counter accumulates message statistics. Logical counts (Total,
// ByKind, ByNode, RecvByNode) see through wire coalescing: a Batch
// carrying k messages counts as k logical messages of their own kinds.
// Wire counts see the transmissions themselves: the same batch counts
// once, under the batch envelope's kind.
type Counter struct {
	// Total is the number of logical messages sent.
	Total int64
	// ByKind maps message kind (see Kinder) to logical message count.
	ByKind map[string]int64
	// ByNode maps sender ID to logical messages sent by that node.
	ByNode map[ids.ID]int64
	// RecvByNode maps receiver ID to logical messages delivered to it.
	RecvByNode map[ids.ID]int64
	// Wire is the number of transmissions (a coalesced batch counts
	// once). Without coalescing, Wire == Total.
	Wire int64
	// WireByKind maps message kind to transmission count; batches
	// appear under their envelope kind (e.g. "moara.batch").
	WireByKind map[string]int64
}

func newCounter() *Counter {
	return &Counter{
		ByKind:     make(map[string]int64),
		ByNode:     make(map[ids.ID]int64),
		RecvByNode: make(map[ids.ID]int64),
		WireByKind: make(map[string]int64),
	}
}

// Batch marks a wire message that bundles several logical messages
// (see core.BatchMsg). The simulator counts the batch once at the wire
// level and each bundled item once at the logical level.
type Batch interface {
	Unpack() []any
}

// Kinder lets message types label themselves for accounting.
type Kinder interface {
	MsgKind() string
}

// KindOf returns the accounting label for a message.
func KindOf(m any) string {
	if k, ok := m.(Kinder); ok {
		return k.MsgKind()
	}
	return fmt.Sprintf("%T", m)
}

// Options configure a Network.
type Options struct {
	// Seed initializes the deterministic random source.
	Seed int64
	// Latency is the one-way latency model. Defaults to a 1ms fixed
	// delay when nil.
	Latency LatencyModel
	// ProcDelay is added at the receiver per WIRE message, modeling
	// per-transmission software cost (the paper's FreePastry/Java
	// stack: scheduling, framing, dispatch). A coalesced Batch
	// therefore pays it once however many logical messages it carries —
	// deliberately optimistic about batching: real batches amortize the
	// per-transmission overhead but still pay per-item decode/merge
	// cost, which this model prices at zero. Latency comparisons
	// between coalesced and uncoalesced runs are upper bounds on the
	// batching win; wire/logical message counts are unaffected by this
	// assumption.
	ProcDelay time.Duration
	// ProcJitter adds a uniform random extra processing delay in
	// [0, ProcJitter).
	ProcJitter time.Duration
	// Drop, when non-nil, is consulted per message; returning true
	// silently discards the message (partition/fault injection).
	Drop func(from, to ids.ID, m any) bool
	// Tap, when non-nil, observes every sent message along with its
	// sampled one-way wire latency (before processing delay). The
	// Fig. 16 bottleneck analysis uses it to reconstruct tree-edge
	// round-trip times.
	Tap func(from, to ids.ID, m any, wireLatency time.Duration)
	// SerializeProc, when true, models per-node CPU queueing: messages
	// to one node are processed one at a time, each occupying the node
	// for ProcDelay(+jitter). This reproduces the aggregation-root
	// serialization that dominates the paper's Emulab latencies.
	SerializeProc bool
	// CPUOf, when non-nil with SerializeProc, maps nodes to shared
	// CPUs: the paper's Emulab testbed ran 10 Moara instances per
	// physical machine, so co-located instances contend for one CPU.
	CPUOf func(id ids.ID) int
}

// Network is a simulated network of nodes sharing one virtual clock.
type Network struct {
	opts    Options
	rng     *rand.Rand
	now     time.Duration
	seq     int64
	events  eventQueue
	nodes   map[ids.ID]*nodeEnv
	down    map[ids.ID]bool
	busy    map[int64]time.Duration
	counter *Counter
	// Quiet suppresses accounting when true (used to exclude warm-up
	// traffic from experiment measurements).
	quiet bool
}

// New creates an empty simulated network.
func New(opts Options) *Network {
	if opts.Latency == nil {
		opts.Latency = Fixed(time.Millisecond)
	}
	return &Network{
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		nodes:   make(map[ids.ID]*nodeEnv),
		down:    make(map[ids.ID]bool),
		busy:    make(map[int64]time.Duration),
		counter: newCounter(),
	}
}

// AddNode registers a node and returns its environment. The handler may
// be bound later via BindHandler to break construction cycles.
func (n *Network) AddNode(id ids.ID) *nodeEnv {
	if _, ok := n.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %s", id.Short()))
	}
	env := &nodeEnv{net: n, id: id, rng: rand.New(rand.NewSource(n.opts.Seed ^ int64(idSeed(id))))}
	n.nodes[id] = env
	return env
}

// RemoveNode permanently deletes a node; queued deliveries to it are
// dropped on arrival.
func (n *Network) RemoveNode(id ids.ID) {
	delete(n.nodes, id)
	delete(n.down, id)
}

// SetDown marks a node crashed (true) or recovered (false). Messages to
// a down node are counted as sent but never delivered.
func (n *Network) SetDown(id ids.ID, down bool) {
	n.down[id] = down
}

// IsDown reports whether the node is currently marked down.
func (n *Network) IsDown(id ids.ID) bool { return n.down[id] }

// Counter returns the live message counter.
func (n *Network) Counter() *Counter { return n.counter }

// ResetCounter zeroes accounting, typically after cluster warm-up.
func (n *Network) ResetCounter() {
	n.counter = newCounter()
}

// SetQuiet enables or disables message accounting.
func (n *Network) SetQuiet(q bool) { n.quiet = q }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// NodeIDs returns the identifiers of all registered nodes.
func (n *Network) NodeIDs() []ids.ID {
	out := make([]ids.ID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// Rand returns the network-level random source (for workload drivers).
func (n *Network) Rand() *rand.Rand { return n.rng }

// PendingEvents reports the scheduled-event backlog (deliveries plus
// armed timers). Harnesses use it to watch for runaway amplification —
// a protocol bug that doubles messages per hop shows up here long
// before it exhausts memory.
func (n *Network) PendingEvents() int { return n.events.Len() }

// RTT estimates the round-trip time between two nodes by sampling the
// latency model, excluding processing delay. Models with stable pairwise
// bases (WAN) return stable values.
func (n *Network) RTT(a, b ids.ID) time.Duration {
	return n.opts.Latency.Latency(a, b, n.now, n.rng) + n.opts.Latency.Latency(b, a, n.now, n.rng)
}

// Schedule runs fn at now+d on the simulator goroutine.
func (n *Network) Schedule(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	ev := &event{at: n.now + d, seq: n.seq, fn: fn}
	n.seq++
	heap.Push(&n.events, ev)
	return func() { ev.fn = nil }
}

// Run processes events until the queue is empty or maxEvents events have
// run (0 means unlimited). It returns the number of events processed.
func (n *Network) Run(maxEvents int) int {
	processed := 0
	for n.events.Len() > 0 {
		if maxEvents > 0 && processed >= maxEvents {
			break
		}
		ev := heap.Pop(&n.events).(*event)
		n.now = ev.at
		if ev.fn != nil {
			ev.fn()
			processed++
		}
	}
	return processed
}

// RunWhile processes events until cond returns false or the queue
// drains. It returns the number of events processed.
func (n *Network) RunWhile(cond func() bool) int {
	processed := 0
	for n.events.Len() > 0 && cond() {
		ev := heap.Pop(&n.events).(*event)
		n.now = ev.at
		if ev.fn != nil {
			ev.fn()
			processed++
		}
	}
	return processed
}

// RunFor advances virtual time by d, processing all events scheduled in
// the window, and leaves now at the window's end.
func (n *Network) RunFor(d time.Duration) {
	n.RunUntil(n.now + d)
}

// RunUntil processes all events scheduled at or before t and sets the
// clock to t.
func (n *Network) RunUntil(t time.Duration) {
	for n.events.Len() > 0 {
		ev := n.events[0]
		if ev.at > t {
			break
		}
		heap.Pop(&n.events)
		n.now = ev.at
		if ev.fn != nil {
			ev.fn()
		}
	}
	n.now = t
}

// send implements message transmission between nodes.
func (n *Network) send(from, to ids.ID, m any) {
	logical := int64(1)
	var items []any
	if b, ok := m.(Batch); ok {
		items = b.Unpack()
		logical = int64(len(items))
	}
	if !n.quiet {
		n.counter.Wire++
		n.counter.WireByKind[KindOf(m)]++
		if items != nil {
			for _, it := range items {
				n.counter.Total++
				n.counter.ByKind[KindOf(it)]++
				n.counter.ByNode[from]++
			}
		} else {
			n.counter.Total++
			n.counter.ByKind[KindOf(m)]++
			n.counter.ByNode[from]++
		}
	}
	if n.opts.Drop != nil && n.opts.Drop(from, to, m) {
		return
	}
	lat := n.opts.Latency.Latency(from, to, n.now, n.rng)
	if n.opts.Tap != nil {
		n.opts.Tap(from, to, m, lat)
	}
	proc := n.opts.ProcDelay
	if n.opts.ProcJitter > 0 {
		proc += time.Duration(n.rng.Int63n(int64(n.opts.ProcJitter)))
	}
	deliverAt := n.now + lat + proc
	if n.opts.SerializeProc && proc > 0 {
		// The message waits for the receiver's CPU to finish earlier
		// work, then occupies it for proc. CPUs may be shared between
		// co-located instances (Emulab: 10 per machine).
		cpu := int64(idSeed(to))
		if n.opts.CPUOf != nil {
			cpu = int64(n.opts.CPUOf(to))
		}
		arrival := n.now + lat
		start := arrival
		if b := n.busy[cpu]; b > start {
			start = b
		}
		deliverAt = start + proc
		n.busy[cpu] = deliverAt
	}
	n.Schedule(deliverAt-n.now, func() {
		dst, ok := n.nodes[to]
		if !ok || n.down[to] || dst.handler == nil {
			return
		}
		if !n.quiet {
			n.counter.RecvByNode[to] += logical
		}
		dst.handler.Handle(from, m)
	})
}

// nodeEnv implements Env for one simulated node.
type nodeEnv struct {
	net     *Network
	id      ids.ID
	rng     *rand.Rand
	handler Handler
}

var _ Env = (*nodeEnv)(nil)

// BindHandler attaches the node's message handler.
func (e *nodeEnv) BindHandler(h Handler) { e.handler = h }

// Self returns the node's identifier.
func (e *nodeEnv) Self() ids.ID { return e.id }

// Send transmits m to another node.
func (e *nodeEnv) Send(to ids.ID, m any) {
	if e.net.down[e.id] {
		return // a crashed node cannot send
	}
	e.net.send(e.id, to, m)
}

// After schedules fn on the virtual clock.
func (e *nodeEnv) After(d time.Duration, fn func()) (cancel func()) {
	return e.net.Schedule(d, func() {
		if e.net.down[e.id] {
			return
		}
		fn()
	})
}

// Now returns the current virtual time.
func (e *nodeEnv) Now() time.Duration { return e.net.now }

// Rand returns the node's deterministic random source.
func (e *nodeEnv) Rand() *rand.Rand { return e.rng }

// idSeed derives a well-mixed 64-bit seed from all 16 identifier
// bytes (FNV-1a).
func idSeed(id ids.ID) uint64 {
	s := uint64(14695981039346656037)
	for _, b := range id {
		s ^= uint64(b)
		s *= 1099511628211
	}
	return s
}

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
