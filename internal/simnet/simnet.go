// Package simnet is a deterministic discrete-event network simulator.
//
// It provides virtual time, seeded randomness, pluggable latency models,
// message-level failure injection, and per-message accounting. All Moara
// node logic is event-driven against the Env interface, so the same code
// runs unchanged on simnet (for 16k-node experiments) and on the real
// TCP transport (for multi-process deployments).
//
// The simulator is single-threaded: Run drains a priority queue of timed
// events on the caller's goroutine. With a fixed seed, runs are exactly
// reproducible.
//
// The event core is allocation-lean by design: message deliveries are
// encoded directly in pooled event records (no per-message closures),
// cancelled timers are removed from the heap immediately instead of
// tombstoning, and per-node accounting lives in dense index-addressed
// arrays rather than ID-keyed maps. At N=10k these paths run hundreds
// of millions of times per experiment.
package simnet

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"time"

	"github.com/moara/moara/internal/ids"
)

// Handler consumes messages delivered to a node.
type Handler interface {
	// Handle processes one message sent by the node with identifier
	// from. It runs on the simulator goroutine; implementations may
	// freely call Env methods but must not block.
	Handle(from ids.ID, m any)
}

// Env is the environment a node runs in: its identity, a message
// transport, timers, a clock, and a random source. internal/pastry and
// internal/core depend only on this interface.
type Env interface {
	// Self returns the node's identifier.
	Self() ids.ID
	// Send transmits m to the node with identifier to. Delivery is
	// asynchronous and may be lost if the destination is down.
	Send(to ids.ID, m any)
	// After schedules fn to run once after d. The returned function
	// cancels the timer if it has not fired.
	After(d time.Duration, fn func()) (cancel func())
	// Now returns the current (virtual or wall-clock) time expressed
	// as an offset from the run's epoch.
	Now() time.Duration
	// Rand returns the node's deterministic random source.
	Rand() *rand.Rand
}

// LatencyModel computes one-way message latencies. Models receive the
// current virtual time so they can express time-varying behavior
// (bursty straggler nodes, diurnal load).
type LatencyModel interface {
	// Latency returns the one-way delay for a message from -> to sent
	// at time now.
	Latency(from, to ids.ID, now time.Duration, rng *rand.Rand) time.Duration
}

// Counter accumulates message statistics. Logical counts (Total,
// ByKind, ByNode, RecvByNode) see through wire coalescing: a Batch
// carrying k messages counts as k logical messages of their own kinds.
// Wire counts see the transmissions themselves: the same batch counts
// once, under the batch envelope's kind.
//
// Per-node counts are stored in dense arrays indexed by the network's
// node registration order; ByNode/RecvByNode materialize the ID-keyed
// view on demand (they are reporting APIs, not hot paths).
type Counter struct {
	// Total is the number of logical messages sent.
	Total int64
	// Wire is the number of transmissions (a coalesced batch counts
	// once). Without coalescing, Wire == Total.
	Wire int64

	// kinds is the per-kind ledger: a handful of distinct kind strings
	// exist, almost always compile-time constants, so a linear scan
	// with Go's pointer-fast string equality beats hashing the string
	// twice per message.
	kinds []kindCount

	// sent/recv count logical messages per node index; the owning
	// Network's idlist maps the indices back to identifiers.
	sent []int64
	recv []int64
	net  *Network
}

// kindCount is one message kind's logical and wire tallies.
type kindCount struct {
	kind          string
	logical, wire int64
}

func (n *Network) newCounter() *Counter {
	return &Counter{
		sent: make([]int64, len(n.envs)),
		recv: make([]int64, len(n.envs)),
		net:  n,
	}
}

func (c *Counter) cell(kind string) *kindCount {
	for i := range c.kinds {
		if c.kinds[i].kind == kind {
			return &c.kinds[i]
		}
	}
	c.kinds = append(c.kinds, kindCount{kind: kind})
	return &c.kinds[len(c.kinds)-1]
}

// ByKind materializes the kind -> logical message count view.
func (c *Counter) ByKind() map[string]int64 {
	out := make(map[string]int64, len(c.kinds))
	for i := range c.kinds {
		if c.kinds[i].logical != 0 {
			out[c.kinds[i].kind] = c.kinds[i].logical
		}
	}
	return out
}

// WireByKind materializes the kind -> transmission count view; batches
// appear under their envelope kind (e.g. "moara.batch").
func (c *Counter) WireByKind() map[string]int64 {
	out := make(map[string]int64, len(c.kinds))
	for i := range c.kinds {
		if c.kinds[i].wire != 0 {
			out[c.kinds[i].kind] = c.kinds[i].wire
		}
	}
	return out
}

// Logical returns one kind's logical message count.
func (c *Counter) Logical(kind string) int64 {
	for i := range c.kinds {
		if c.kinds[i].kind == kind {
			return c.kinds[i].logical
		}
	}
	return 0
}

// WireCount returns one kind's transmission count.
func (c *Counter) WireCount(kind string) int64 {
	for i := range c.kinds {
		if c.kinds[i].kind == kind {
			return c.kinds[i].wire
		}
	}
	return 0
}

// ByNode materializes the sender-ID view of the per-node logical send
// counts: one entry per node that sent at least one counted message.
func (c *Counter) ByNode() map[ids.ID]int64 {
	return c.materialize(c.sent)
}

// RecvByNode materializes the receiver-ID view of the per-node logical
// delivery counts.
func (c *Counter) RecvByNode() map[ids.ID]int64 {
	return c.materialize(c.recv)
}

func (c *Counter) materialize(cells []int64) map[ids.ID]int64 {
	out := make(map[ids.ID]int64, len(cells))
	for i, v := range cells {
		if v != 0 {
			out[c.net.idlist[i]] = v
		}
	}
	return out
}

// addSent/addRecv grow the dense arrays on demand: nodes may register
// after the counter was created (live joins under churn).
func (c *Counter) addSent(idx int, n int64) {
	if idx >= len(c.sent) {
		c.sent = append(c.sent, make([]int64, idx+1-len(c.sent))...)
	}
	c.sent[idx] += n
}

func (c *Counter) addRecv(idx int, n int64) {
	if idx >= len(c.recv) {
		c.recv = append(c.recv, make([]int64, idx+1-len(c.recv))...)
	}
	c.recv[idx] += n
}

// Batch marks a wire message that bundles several logical messages
// (see core.BatchMsg). The simulator counts the batch once at the wire
// level and each bundled item once at the logical level.
type Batch interface {
	Unpack() []any
}

// Kinder lets message types label themselves for accounting.
type Kinder interface {
	MsgKind() string
}

// kindCache memoizes the %T fallback of KindOf per concrete type, so a
// message type without MsgKind costs one fmt.Sprintf per type instead
// of one per message. sync.Map because tests run simulators in
// parallel processes sharing the package.
var kindCache sync.Map // reflect.Type -> string

// KindOf returns the accounting label for a message.
func KindOf(m any) string {
	if k, ok := m.(Kinder); ok {
		return k.MsgKind()
	}
	t := reflect.TypeOf(m)
	if s, ok := kindCache.Load(t); ok {
		return s.(string)
	}
	s := fmt.Sprintf("%T", m)
	kindCache.Store(t, s)
	return s
}

// Options configure a Network.
type Options struct {
	// Seed initializes the deterministic random source.
	Seed int64
	// Latency is the one-way latency model. Defaults to a 1ms fixed
	// delay when nil.
	Latency LatencyModel
	// ProcDelay is added at the receiver per WIRE message, modeling
	// per-transmission software cost (the paper's FreePastry/Java
	// stack: scheduling, framing, dispatch). A coalesced Batch
	// therefore pays it once however many logical messages it carries —
	// deliberately optimistic about batching: real batches amortize the
	// per-transmission overhead but still pay per-item decode/merge
	// cost, which this model prices at zero. Latency comparisons
	// between coalesced and uncoalesced runs are upper bounds on the
	// batching win; wire/logical message counts are unaffected by this
	// assumption.
	ProcDelay time.Duration
	// ProcJitter adds a uniform random extra processing delay in
	// [0, ProcJitter).
	ProcJitter time.Duration
	// Drop, when non-nil, is consulted per message; returning true
	// silently discards the message (partition/fault injection).
	Drop func(from, to ids.ID, m any) bool
	// Tap, when non-nil, observes every sent message along with its
	// sampled one-way wire latency (before processing delay). The
	// Fig. 16 bottleneck analysis uses it to reconstruct tree-edge
	// round-trip times.
	Tap func(from, to ids.ID, m any, wireLatency time.Duration)
	// SerializeProc, when true, models per-node CPU queueing: messages
	// to one node are processed one at a time, each occupying the node
	// for ProcDelay(+jitter). This reproduces the aggregation-root
	// serialization that dominates the paper's Emulab latencies.
	SerializeProc bool
	// CPUOf, when non-nil with SerializeProc, maps nodes to shared
	// CPUs: the paper's Emulab testbed ran 10 Moara instances per
	// physical machine, so co-located instances contend for one CPU.
	CPUOf func(id ids.ID) int
	// Shards >= 2 selects the sharded conservative-lookahead scheduler
	// (see shard.go): nodes are partitioned round-robin across Shards
	// event heaps that drain lookahead windows in parallel. 0 or 1
	// selects the classic single-heap scheduler. Sharded runs are
	// deterministic for a given seed regardless of shard or worker
	// count, but use a different (equally valid) same-instant
	// tie-break than the classic scheduler, per-sender latency
	// streams, and window-barrier RunWhile semantics. SerializeProc,
	// CPUOf, and Tap are rejected in sharded mode.
	Shards int
	// ShardWorkers caps how many OS threads execute a window in
	// parallel: 0 means GOMAXPROCS, 1 forces inline (serial)
	// execution. Results are identical either way; only wall-clock
	// differs.
	ShardWorkers int
	// Lookahead overrides the conservative window size for sharded
	// execution. 0 derives it from the latency model's MinLatency()
	// plus ProcDelay; models without a MinLatency() bound require an
	// explicit positive Lookahead. Smaller values are always safe
	// (more barriers, same results); values larger than the true
	// minimum cross-shard delivery delay panic at the first violation.
	Lookahead time.Duration
}

// Network is a simulated network of nodes sharing one virtual clock.
type Network struct {
	opts   Options
	rng    *rand.Rand
	now    time.Duration
	seq    int64
	events eventQueue
	nodes  map[ids.ID]*nodeEnv
	// envs/idlist are the dense registration-order views backing the
	// index-addressed hot paths (counters, CPU busy state).
	envs   []*nodeEnv
	idlist []ids.ID
	// busyCPU is the per-CPU busy horizon for SerializeProc, indexed by
	// CPU number (node index when CPUOf is nil); busyOther catches
	// out-of-range CPU keys.
	busyCPU   []time.Duration
	busyOther map[int64]time.Duration
	// freeEvents recycles event records; freed events bump their gen so
	// stale cancel closures become no-ops instead of corrupting a
	// reused record.
	freeEvents []*event
	counter    *Counter
	// Quiet suppresses accounting when true (used to exclude warm-up
	// traffic from experiment measurements).
	quiet bool
	// sharded is non-nil when Options.Shards >= 2 selected the
	// conservative-lookahead parallel scheduler; the Run/Schedule/
	// Counter entry points dispatch to it.
	sharded *shardedNet
}

// New creates an empty simulated network.
func New(opts Options) *Network {
	if opts.Latency == nil {
		opts.Latency = Fixed(time.Millisecond)
	}
	n := &Network{
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		nodes: make(map[ids.ID]*nodeEnv),
	}
	n.counter = n.newCounter()
	if opts.Shards >= 2 {
		n.sharded = newShardedNet(n)
	}
	return n
}

// AddNode registers a node and returns its environment. The handler may
// be bound later via BindHandler to break construction cycles.
func (n *Network) AddNode(id ids.ID) *nodeEnv {
	if _, ok := n.nodes[id]; ok {
		panic(fmt.Sprintf("simnet: duplicate node %s", id.Short()))
	}
	env := &nodeEnv{
		net: n,
		id:  id,
		idx: len(n.envs),
		rng: rand.New(rand.NewSource(n.opts.Seed ^ int64(idSeed(id)))),
	}
	if n.sharded != nil {
		env.shard = n.sharded.shards[env.idx%len(n.sharded.shards)]
		// The per-sender latency/jitter stream: a distinct salt keeps
		// it independent of the node-logic stream above.
		env.latRng = rand.New(rand.NewSource(n.opts.Seed ^ int64(idSeed(id)) ^ latStreamSalt))
	}
	n.nodes[id] = env
	n.envs = append(n.envs, env)
	n.idlist = append(n.idlist, id)
	return env
}

// RemoveNode permanently deletes a node; queued deliveries to it are
// dropped on arrival. Its dense index stays allocated (indices are
// append-only), so accounting for its past traffic survives.
func (n *Network) RemoveNode(id ids.ID) {
	if env, ok := n.nodes[id]; ok {
		env.removed = true
		delete(n.nodes, id)
	}
}

// SetDown marks a node crashed (true) or recovered (false). Messages to
// a down node are counted as sent but never delivered.
func (n *Network) SetDown(id ids.ID, down bool) {
	if env, ok := n.nodes[id]; ok {
		env.down = down
	}
}

// IsDown reports whether the node is currently marked down.
func (n *Network) IsDown(id ids.ID) bool {
	env, ok := n.nodes[id]
	return ok && env.down
}

// Counter returns the message counter. On the classic scheduler it is
// the live ledger; on the sharded scheduler it is a merged snapshot of
// the per-shard ledgers (a reporting-path cost — don't call it per
// event).
func (n *Network) Counter() *Counter {
	if n.sharded != nil {
		return n.sharded.mergedCounter()
	}
	return n.counter
}

// ResetCounter zeroes accounting, typically after cluster warm-up.
func (n *Network) ResetCounter() {
	n.counter = n.newCounter()
	if n.sharded != nil {
		n.sharded.resetCounters()
	}
}

// SetQuiet enables or disables message accounting.
func (n *Network) SetQuiet(q bool) { n.quiet = q }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// NodeIDs returns the identifiers of all registered nodes.
func (n *Network) NodeIDs() []ids.ID {
	out := make([]ids.ID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// Rand returns the network-level random source (for workload drivers).
func (n *Network) Rand() *rand.Rand { return n.rng }

// PendingEvents reports the scheduled-event backlog (deliveries plus
// armed timers). Harnesses use it to watch for runaway amplification —
// a protocol bug that doubles messages per hop shows up here long
// before it exhausts memory. On the sharded scheduler it sums the
// shard heaps, staged cross-shard inboxes, and the driver queue.
func (n *Network) PendingEvents() int {
	if n.sharded != nil {
		return n.sharded.pending()
	}
	return n.events.Len()
}

// RTT estimates the round-trip time between two nodes by sampling the
// latency model, excluding processing delay. Models with stable pairwise
// bases (WAN) return stable values.
func (n *Network) RTT(a, b ids.ID) time.Duration {
	return n.opts.Latency.Latency(a, b, n.now, n.rng) + n.opts.Latency.Latency(b, a, n.now, n.rng)
}

// newEvent takes a record from the pool (or allocates one).
func (n *Network) newEvent() *event {
	if k := len(n.freeEvents); k > 0 {
		ev := n.freeEvents[k-1]
		n.freeEvents = n.freeEvents[:k-1]
		return ev
	}
	return &event{}
}

// freeEvent returns a record to the pool. The gen bump invalidates any
// cancel closure still holding the record; payload fields are cleared
// so a recycled record can never replay its previous role.
func (n *Network) freeEvent(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.env = nil
	ev.envTo = nil
	ev.m = nil
	ev.delivery = false
	ev.logical = 0
	ev.idx = -1
	n.freeEvents = append(n.freeEvents, ev)
}

// Schedule runs fn at now+d on the simulator goroutine. On the sharded
// scheduler the callback is a driver event: it runs on the coordinator
// at a window edge, with every shard parked, before any node event at
// the same instant — so it may safely touch any node.
func (n *Network) Schedule(d time.Duration, fn func()) (cancel func()) {
	if n.sharded != nil {
		return n.sharded.schedule(d, fn)
	}
	if d < 0 {
		d = 0
	}
	ev := n.newEvent()
	ev.at = n.now + d
	ev.seq = n.seq
	ev.fn = fn
	n.seq++
	n.events.push(ev)
	gen := ev.gen
	return func() { n.cancelEvent(ev, gen) }
}

// cancelEvent removes a still-pending timer from the heap. A cancel
// arriving after the event fired (or was recycled) is a no-op.
func (n *Network) cancelEvent(ev *event, gen uint64) {
	if n.sharded != nil {
		n.sharded.cancelEvent(ev, gen)
		return
	}
	if ev.gen != gen || ev.idx < 0 {
		return
	}
	n.events.remove(ev.idx)
	n.freeEvent(ev)
}

// exec runs one popped event and recycles its record. The record is
// freed before the callback runs: the callback may schedule new timers,
// and handing it the just-freed record is the common recycle hit.
func (n *Network) exec(ev *event) {
	if ev.delivery {
		from, to, m, logical, envTo := ev.from, ev.to, ev.m, ev.logical, ev.envTo
		n.freeEvent(ev)
		n.deliver(from, to, m, logical, envTo)
		return
	}
	fn, env := ev.fn, ev.env
	n.freeEvent(ev)
	if env != nil && env.down {
		// A crashed node's timers are dropped at fire time, exactly as
		// the pre-optimization per-timer wrapper closure did.
		return
	}
	fn()
}

// Run processes events until the queue is empty or maxEvents events have
// run (0 means unlimited). It returns the number of events processed.
// On the sharded scheduler windows are atomic, so the count may
// overshoot maxEvents within the final window.
func (n *Network) Run(maxEvents int) int {
	if n.sharded != nil {
		return n.sharded.runWindows(0, false, nil, maxEvents)
	}
	processed := 0
	for n.events.Len() > 0 {
		if maxEvents > 0 && processed >= maxEvents {
			break
		}
		ev := n.events.pop()
		n.now = ev.at
		n.exec(ev)
		processed++
	}
	return processed
}

// RunWhile processes events until cond returns false or the queue
// drains. It returns the number of events processed. The classic
// scheduler checks cond before every event; the sharded scheduler
// checks it at window barriers, so a window that straddles the
// condition flip completes before the run stops.
func (n *Network) RunWhile(cond func() bool) int {
	if n.sharded != nil {
		return n.sharded.runWindows(0, false, cond, 0)
	}
	processed := 0
	for n.events.Len() > 0 && cond() {
		ev := n.events.pop()
		n.now = ev.at
		n.exec(ev)
		processed++
	}
	return processed
}

// RunFor advances virtual time by d, processing all events scheduled in
// the window, and leaves now at the window's end.
func (n *Network) RunFor(d time.Duration) {
	n.RunUntil(n.now + d)
}

// RunUntil processes all events scheduled at or before t and sets the
// clock to t.
func (n *Network) RunUntil(t time.Duration) {
	if n.sharded != nil {
		n.sharded.runWindows(t, true, nil, 0)
		return
	}
	for n.events.Len() > 0 {
		at := n.events.q[0].at
		if at > t {
			break
		}
		ev := n.events.pop()
		n.now = at
		n.exec(ev)
	}
	n.now = t
}

// send implements message transmission between nodes.
func (n *Network) send(from *nodeEnv, to ids.ID, m any) {
	logical := int64(1)
	var items []any
	if b, ok := m.(Batch); ok {
		items = b.Unpack()
		logical = int64(len(items))
	}
	if !n.quiet {
		n.counter.Wire++
		n.counter.cell(KindOf(m)).wire++
		if items != nil {
			for _, it := range items {
				n.counter.Total++
				n.counter.cell(KindOf(it)).logical++
			}
		} else {
			n.counter.Total++
			n.counter.cell(KindOf(m)).logical++
		}
		n.counter.addSent(from.idx, logical)
	}
	if n.opts.Drop != nil && n.opts.Drop(from.id, to, m) {
		return
	}
	lat := n.opts.Latency.Latency(from.id, to, n.now, n.rng)
	if n.opts.Tap != nil {
		n.opts.Tap(from.id, to, m, lat)
	}
	proc := n.opts.ProcDelay
	if n.opts.ProcJitter > 0 {
		proc += time.Duration(n.rng.Int63n(int64(n.opts.ProcJitter)))
	}
	deliverAt := n.now + lat + proc
	if n.opts.SerializeProc && proc > 0 {
		// The message waits for the receiver's CPU to finish earlier
		// work, then occupies it for proc. CPUs may be shared between
		// co-located instances (Emulab: 10 per machine).
		deliverAt = n.serializeOn(to, n.now+lat, proc)
	}
	ev := n.newEvent()
	ev.at = deliverAt
	ev.seq = n.seq
	ev.delivery = true
	ev.from = from.id
	ev.to = to
	ev.envTo = n.nodes[to]
	ev.m = m
	ev.logical = logical
	n.seq++
	n.events.push(ev)
}

// serializeOn queues one processing occupancy on the destination's CPU
// and returns the completion time. The CPU is the destination's own
// dense index by default, or the configured CPU number under
// co-location; out-of-range CPU numbers (e.g. a CPUOf returning -1 for
// unknown nodes) and unregistered destinations fall back to a map.
func (n *Network) serializeOn(to ids.ID, arrival, proc time.Duration) time.Duration {
	if n.opts.CPUOf != nil {
		cpu := n.opts.CPUOf(to)
		if cpu >= 0 && cpu < 1<<20 {
			return n.busyDense(cpu, arrival, proc)
		}
		return n.busyMap(int64(cpu), arrival, proc)
	}
	if dst, ok := n.nodes[to]; ok {
		return n.busyDense(dst.idx, arrival, proc)
	}
	return n.busyMap(int64(idSeed(to)), arrival, proc)
}

func (n *Network) busyDense(cpu int, arrival, proc time.Duration) time.Duration {
	if cpu >= len(n.busyCPU) {
		n.busyCPU = append(n.busyCPU, make([]time.Duration, cpu+1-len(n.busyCPU))...)
	}
	start := arrival
	if b := n.busyCPU[cpu]; b > start {
		start = b
	}
	end := start + proc
	n.busyCPU[cpu] = end
	return end
}

func (n *Network) busyMap(key int64, arrival, proc time.Duration) time.Duration {
	if n.busyOther == nil {
		n.busyOther = make(map[int64]time.Duration)
	}
	start := arrival
	if b := n.busyOther[key]; b > start {
		start = b
	}
	end := start + proc
	n.busyOther[key] = end
	return end
}

// deliver completes one transmission (the delivery-event body).
func (n *Network) deliver(from, to ids.ID, m any, logical int64, dst *nodeEnv) {
	if dst == nil || dst.removed {
		// Unresolved at send time (or removed since): consult the
		// registry, which also catches a node registered between send
		// and delivery.
		dst = n.nodes[to]
	}
	if dst == nil || dst.removed || dst.down || dst.handler == nil {
		return
	}
	if !n.quiet {
		n.counter.addRecv(dst.idx, logical)
	}
	dst.handler.Handle(from, m)
}

// nodeEnv implements Env for one simulated node.
type nodeEnv struct {
	net     *Network
	id      ids.ID
	idx     int
	down    bool
	removed bool
	rng     *rand.Rand
	handler Handler

	// Sharded-scheduler state (nil/zero on the classic scheduler):
	// the owning shard, the node's private event-creation counter
	// (the birth-sequence half of the ordering key), and the
	// per-sender latency/jitter stream.
	shard  *shard
	oseq   int64
	latRng *rand.Rand
}

var _ Env = (*nodeEnv)(nil)

// BindHandler attaches the node's message handler.
func (e *nodeEnv) BindHandler(h Handler) { e.handler = h }

// Self returns the node's identifier.
func (e *nodeEnv) Self() ids.ID { return e.id }

// Send transmits m to another node.
func (e *nodeEnv) Send(to ids.ID, m any) {
	if e.down {
		return // a crashed node cannot send
	}
	if e.shard != nil {
		e.shard.send(e, to, m)
		return
	}
	e.net.send(e, to, m)
}

// After schedules fn on the virtual clock. The crashed-node guard
// rides in the event record itself rather than a per-timer wrapper
// closure.
func (e *nodeEnv) After(d time.Duration, fn func()) (cancel func()) {
	ev := e.defer_(d, fn)
	n := e.net
	gen := ev.gen
	return func() { n.cancelEvent(ev, gen) }
}

// Defer is After without the cancellation handle: fire-and-forget
// timers (the per-burst outbox flush) skip the cancel-closure
// allocation entirely.
func (e *nodeEnv) Defer(d time.Duration, fn func()) {
	e.defer_(d, fn)
}

// Timer is a reusable cancellation slot for periodic re-armed timers
// (epoch ticks, per-query child timeouts): re-arming writes the same
// three words instead of allocating a fresh cancel closure per cycle.
// The zero Timer is inert; Stop after the timer fired is a no-op.
type Timer struct {
	// stop is the fallback for environments without the Arm fast path.
	stop func()
	net  *Network
	ev   *event
	gen  uint64
}

// Stop cancels the timer if it has not fired.
func (t *Timer) Stop() {
	if t.net != nil {
		t.net.cancelEvent(t.ev, t.gen)
		t.net = nil
		return
	}
	if t.stop != nil {
		t.stop()
		t.stop = nil
	}
}

// SetFallback arms the slot with a plain cancel function (used by
// environments that only implement After).
func (t *Timer) SetFallback(cancel func()) {
	t.net = nil
	t.stop = cancel
}

// Arm schedules fn like After but records the cancellation in t,
// allocation-free.
func (e *nodeEnv) Arm(d time.Duration, fn func(), t *Timer) {
	ev := e.defer_(d, fn)
	t.net = e.net
	t.ev = ev
	t.gen = ev.gen
	t.stop = nil
}

func (e *nodeEnv) defer_(d time.Duration, fn func()) *event {
	if e.shard != nil {
		return e.shard.defer_(e, d, fn)
	}
	n := e.net
	if d < 0 {
		d = 0
	}
	ev := n.newEvent()
	ev.at = n.now + d
	ev.seq = n.seq
	ev.fn = fn
	ev.env = e
	n.seq++
	n.events.push(ev)
	return ev
}

// Now returns the current virtual time: the owning shard's local clock
// under the sharded scheduler (shard clocks diverge within a lookahead
// window), the global clock otherwise.
func (e *nodeEnv) Now() time.Duration {
	if e.shard != nil {
		return e.shard.now
	}
	return e.net.now
}

// Rand returns the node's deterministic random source.
func (e *nodeEnv) Rand() *rand.Rand { return e.rng }

// idSeed derives a well-mixed 64-bit seed from all 16 identifier
// bytes (FNV-1a).
func idSeed(id ids.ID) uint64 {
	s := uint64(14695981039346656037)
	for _, b := range id {
		s ^= uint64(b)
		s *= 1099511628211
	}
	return s
}

// event is one scheduled callback or message delivery. Records are
// pooled; gen guards recycled records against stale cancels.
type event struct {
	at  time.Duration
	seq int64
	idx int
	gen uint64
	// home routes sharded cancels to the owning heap: the shard index
	// for shard-pool records, -1 for driver events. Unused (0) on the
	// classic scheduler.
	home int32

	// Timer events carry fn (plus the owning env for the crashed-node
	// check, avoiding a wrapper closure per timer); delivery events
	// carry the message fields directly, avoiding a closure allocation
	// per message. envTo caches the destination environment resolved at
	// send time; delivery falls back to the registry when it is missing
	// or was removed meanwhile.
	fn       func()
	env      *nodeEnv
	delivery bool
	from, to ids.ID
	envTo    *nodeEnv
	m        any
	logical  int64
}

// eventQueue is a 4-ary min-heap on (at, seq), implemented concretely:
// no container/heap interface dispatch on the comparison fast path, a
// wider node fans the tree out to half the depth of a binary heap, and
// the sort keys live inline in the heap slice so sift comparisons
// never dereference event records — the event queue is the single
// busiest data structure of a large simulation. (at, seq) pairs are
// unique, so pop order is a strict total order — identical to any
// other correct heap's.
type eventQueue struct {
	q []heapEntry
}

// heapEntry carries the ordering key beside the record pointer.
type heapEntry struct {
	at  time.Duration
	seq int64
	ev  *event
}

const heapArity = 4

func (h *eventQueue) Len() int { return len(h.q) }

func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventQueue) push(ev *event) {
	h.q = append(h.q, heapEntry{at: ev.at, seq: ev.seq, ev: ev})
	h.up(len(h.q) - 1)
}

func (h *eventQueue) pop() *event {
	q := h.q
	ev := q[0].ev
	last := len(q) - 1
	q[0] = q[last]
	q[0].ev.idx = 0
	q[last] = heapEntry{}
	h.q = q[:last]
	if last > 0 {
		h.down(0)
	}
	ev.idx = -1
	return ev
}

// remove deletes the element at position i (timer cancellation).
func (h *eventQueue) remove(i int) {
	q := h.q
	last := len(q) - 1
	ev := q[i].ev
	if i != last {
		q[i] = q[last]
		q[i].ev.idx = i
	}
	q[last] = heapEntry{}
	h.q = q[:last]
	if i != last {
		if !h.downFrom(i) {
			h.up(i)
		}
	}
	ev.idx = -1
}

func (h *eventQueue) up(i int) {
	q := h.q
	e := q[i]
	for i > 0 {
		p := (i - 1) / heapArity
		if !entryLess(e, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].ev.idx = i
		i = p
	}
	q[i] = e
	e.ev.idx = i
}

func (h *eventQueue) down(i int) { h.downFrom(i) }

// downFrom sifts i toward the leaves; it reports whether the element
// moved (the remove path falls back to sifting up when it did not).
func (h *eventQueue) downFrom(i int) bool {
	q := h.q
	n := len(q)
	e := q[i]
	start := i
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entryLess(q[c], q[best]) {
				best = c
			}
		}
		if !entryLess(q[best], e) {
			break
		}
		q[i] = q[best]
		q[i].ev.idx = i
		i = best
	}
	q[i] = e
	e.ev.idx = i
	return i > start
}
