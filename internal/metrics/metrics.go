// Package metrics provides the measurement utilities the experiment
// harness uses: latency recorders with percentile/CDF extraction and
// small statistical helpers. Everything operates on virtual-time
// durations produced by the simulator.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Recorder accumulates duration samples.
type Recorder struct {
	samples []time.Duration
	sorted  bool
}

// NewRecorder creates an empty recorder with capacity hint n.
func NewRecorder(n int) *Recorder {
	return &Recorder{samples: make([]time.Duration, 0, n)}
}

// Add records one sample.
func (r *Recorder) Add(d time.Duration) {
	r.samples = append(r.samples, d)
	r.sorted = false
}

// Len returns the sample count.
func (r *Recorder) Len() int { return len(r.samples) }

// Samples returns the raw samples in insertion order.
func (r *Recorder) Samples() []time.Duration {
	out := make([]time.Duration, len(r.samples))
	copy(out, r.samples)
	return out
}

func (r *Recorder) sortSamples() {
	if !r.sorted {
		sort.Slice(r.samples, func(i, j int) bool { return r.samples[i] < r.samples[j] })
		r.sorted = true
	}
}

// Mean returns the average sample.
func (r *Recorder) Mean() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range r.samples {
		sum += s
	}
	return sum / time.Duration(len(r.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank.
func (r *Recorder) Percentile(p float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sortSamples()
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(r.samples) {
		rank = len(r.samples)
	}
	return r.samples[rank-1]
}

// Median returns the 50th percentile.
func (r *Recorder) Median() time.Duration { return r.Percentile(50) }

// Max returns the largest sample.
func (r *Recorder) Max() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sortSamples()
	return r.samples[len(r.samples)-1]
}

// Min returns the smallest sample.
func (r *Recorder) Min() time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	r.sortSamples()
	return r.samples[0]
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64 // cumulative fraction in [0,1]
}

// CDF returns the distribution sampled at up to points evenly spaced
// cumulative fractions (the Fig. 14/15 plots).
func (r *Recorder) CDF(points int) []CDFPoint {
	if len(r.samples) == 0 || points <= 0 {
		return nil
	}
	r.sortSamples()
	out := make([]CDFPoint, 0, points)
	for i := 1; i <= points; i++ {
		frac := float64(i) / float64(points)
		idx := int(math.Ceil(frac*float64(len(r.samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, CDFPoint{Latency: r.samples[idx], Fraction: frac})
	}
	return out
}

// Series is a labeled sequence of (x, y) points, the common currency of
// the experiment drivers and their output printers.
type Series struct {
	Label  string
	Points []Point
}

// Point is one measurement.
type Point struct {
	X float64
	Y float64
}

// FormatMs renders a duration in fractional milliseconds.
func FormatMs(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// Ms converts a duration to float milliseconds.
func Ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
