package metrics

import (
	"testing"
	"time"
)

func fill(r *Recorder, ms ...int) {
	for _, m := range ms {
		r.Add(time.Duration(m) * time.Millisecond)
	}
}

func TestRecorderStats(t *testing.T) {
	r := NewRecorder(8)
	fill(r, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	if r.Len() != 10 {
		t.Fatalf("len = %d", r.Len())
	}
	if got := r.Mean(); got != 55*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
	if got := r.Median(); got != 50*time.Millisecond {
		t.Fatalf("median = %v", got)
	}
	if got := r.Percentile(90); got != 90*time.Millisecond {
		t.Fatalf("p90 = %v", got)
	}
	if got := r.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if r.Min() != 10*time.Millisecond || r.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder(0)
	if r.Mean() != 0 || r.Median() != 0 || r.Max() != 0 || r.Min() != 0 {
		t.Fatal("empty recorder should return zeros")
	}
	if cdf := r.CDF(10); cdf != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	r := NewRecorder(100)
	for i := 100; i >= 1; i-- {
		r.Add(time.Duration(i) * time.Millisecond)
	}
	cdf := r.CDF(20)
	if len(cdf) != 20 {
		t.Fatalf("points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Latency < cdf[i-1].Latency || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v", i, cdf[i])
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatalf("last fraction = %v", cdf[len(cdf)-1].Fraction)
	}
}

func TestFormatMs(t *testing.T) {
	if got := FormatMs(1500 * time.Microsecond); got != "1.5" {
		t.Fatalf("FormatMs = %q", got)
	}
	if got := Ms(2 * time.Second); got != 2000 {
		t.Fatalf("Ms = %v", got)
	}
}

func TestAddAfterSortKeepsOrder(t *testing.T) {
	r := NewRecorder(4)
	fill(r, 30, 10)
	_ = r.Median() // forces sort
	fill(r, 20)
	if got := r.Median(); got != 20*time.Millisecond {
		t.Fatalf("median after resort = %v", got)
	}
	s := r.Samples()
	if len(s) != 3 {
		t.Fatalf("samples = %v", s)
	}
}
