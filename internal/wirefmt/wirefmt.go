// Package wirefmt holds the primitive encoders/decoders shared by the
// columnar wire codec: varints, fixed-width floats, length-prefixed
// strings, and nil-preserving collection lengths. Every reader is
// bounds-checked and returns the unconsumed remainder, so decoders
// compose by threading the byte slice through — and arbitrary (fuzzed,
// corrupted) input fails with an error instead of panicking or
// over-allocating.
//
// Wire conventions:
//   - unsigned integers: uvarint (encoding/binary)
//   - signed integers (counts, durations): zig-zag varint
//   - float64: IEEE 754 bits, little-endian, 8 bytes
//   - string/bytes: uvarint length + raw bytes
//   - collections: uvarint "length+1" — 0 encodes a nil map/slice,
//     n+1 encodes length n, so decoded values DeepEqual the originals
//     (gob cannot make this distinction; the columnar codec can)
package wirefmt

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated reports input that ended before the value it promised.
var ErrTruncated = errors.New("wirefmt: truncated input")

// ErrCorrupt reports input that cannot be a valid encoding (bad varint,
// an element count larger than the bytes that would carry it, ...).
var ErrCorrupt = errors.New("wirefmt: corrupt input")

// AppendUvarint appends v as a uvarint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v as a zig-zag varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendFloat appends f as 8 little-endian IEEE 754 bytes.
func AppendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendString appends s with a uvarint length prefix.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBool appends v as one byte (0 or 1).
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendLen appends a collection length under the nil-preserving
// "length+1" convention: pass isNil for a nil map/slice.
func AppendLen(b []byte, n int, isNil bool) []byte {
	if isNil {
		return append(b, 0)
	}
	return binary.AppendUvarint(b, uint64(n)+1)
}

// Byte consumes one byte.
func Byte(b []byte) (byte, []byte, error) {
	if len(b) < 1 {
		return 0, nil, ErrTruncated
	}
	return b[0], b[1:], nil
}

// Bool consumes one byte as a boolean; bytes other than 0/1 are corrupt.
func Bool(b []byte) (bool, []byte, error) {
	c, rest, err := Byte(b)
	if err != nil || c > 1 {
		return false, nil, errOf(err)
	}
	return c == 1, rest, nil
}

// Uvarint consumes a uvarint.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errOf(nil)
	}
	return v, b[n:], nil
}

// Varint consumes a zig-zag varint.
func Varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, errOf(nil)
	}
	return v, b[n:], nil
}

// Float consumes 8 little-endian bytes as a float64.
func Float(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// Bytes consumes exactly n raw bytes (no copy — callers copy if they
// retain past the buffer's lifetime).
func Bytes(b []byte, n int) ([]byte, []byte, error) {
	if n < 0 || len(b) < n {
		return nil, nil, ErrTruncated
	}
	return b[:n], b[n:], nil
}

// String consumes a length-prefixed string (copying the bytes).
func String(b []byte) (string, []byte, error) {
	n, rest, err := Uvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, ErrTruncated
	}
	return string(rest[:n]), rest[n:], nil
}

// Count consumes a plain uvarint element count and rejects counts that
// could not fit in the remaining input at minElemBytes per element —
// the guard that keeps hostile counts from driving huge allocations.
func Count(b []byte, minElemBytes int) (int, []byte, error) {
	v, rest, err := Uvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if v > uint64(len(rest)/minElemBytes) {
		return 0, nil, ErrCorrupt
	}
	return int(v), rest, nil
}

// Len consumes a nil-preserving collection length (see AppendLen), with
// the same allocation guard as Count.
func Len(b []byte, minElemBytes int) (n int, isNil bool, rest []byte, err error) {
	v, rest, err := Uvarint(b)
	if err != nil {
		return 0, false, nil, err
	}
	if v == 0 {
		return 0, true, rest, nil
	}
	v--
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if v > uint64(len(rest)/minElemBytes) {
		return 0, false, nil, ErrCorrupt
	}
	return int(v), false, rest, nil
}

// errOf maps a nil error (from inline length checks) to ErrCorrupt,
// passing real errors through.
func errOf(err error) error {
	if err != nil {
		return err
	}
	return ErrCorrupt
}
