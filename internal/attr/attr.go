// Package attr implements the per-node attribute store populated by the
// Moara agent: a set of (attribute, value) tuples with change
// notification, mirroring §3.1 of the paper.
package attr

import (
	"sort"

	"github.com/moara/moara/internal/value"
)

// ChangeFunc observes attribute updates. old is invalid when the
// attribute is newly set; new is invalid when it is deleted.
type ChangeFunc func(name string, old, new value.Value)

// Store holds one node's attributes. It is not safe for concurrent use;
// like the rest of a node's state it is driven from one goroutine.
type Store struct {
	vals      map[string]value.Value
	listeners []ChangeFunc
}

// NewStore creates an empty attribute store.
func NewStore() *Store {
	return &Store{vals: make(map[string]value.Value)}
}

// Subscribe registers fn to observe every subsequent change.
func (s *Store) Subscribe(fn ChangeFunc) {
	s.listeners = append(s.listeners, fn)
}

// Set writes an attribute and notifies listeners when the value changed.
func (s *Store) Set(name string, v value.Value) {
	old := s.vals[name]
	if old.IsValid() && value.Equal(old, v) && old.Kind() == v.Kind() {
		return
	}
	s.vals[name] = v
	s.notify(name, old, v)
}

// SetInt is shorthand for Set with an integer value.
func (s *Store) SetInt(name string, v int64) { s.Set(name, value.Int(v)) }

// SetFloat is shorthand for Set with a float value.
func (s *Store) SetFloat(name string, v float64) { s.Set(name, value.Float(v)) }

// SetBool is shorthand for Set with a boolean value.
func (s *Store) SetBool(name string, v bool) { s.Set(name, value.Bool(v)) }

// SetString is shorthand for Set with a string value.
func (s *Store) SetString(name, v string) { s.Set(name, value.Str(v)) }

// Delete removes an attribute, notifying listeners if it existed.
func (s *Store) Delete(name string) {
	old, ok := s.vals[name]
	if !ok {
		return
	}
	delete(s.vals, name)
	s.notify(name, old, value.Value{})
}

// Get returns the attribute's value; an invalid Value when unset.
func (s *Store) Get(name string) value.Value { return s.vals[name] }

// Has reports whether the attribute is set.
func (s *Store) Has(name string) bool {
	_, ok := s.vals[name]
	return ok
}

// Names returns all attribute names in sorted order.
func (s *Store) Names() []string {
	out := make([]string, 0, len(s.vals))
	for k := range s.vals {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of attributes.
func (s *Store) Len() int { return len(s.vals) }

func (s *Store) notify(name string, old, new value.Value) {
	for _, fn := range s.listeners {
		fn(name, old, new)
	}
}
