package attr

import (
	"testing"

	"github.com/moara/moara/internal/value"
)

func TestSetGetDelete(t *testing.T) {
	s := NewStore()
	if s.Has("cpu") {
		t.Fatal("empty store has attribute")
	}
	s.SetFloat("cpu", 42.5)
	if v := s.Get("cpu"); !value.Equal(v, value.Float(42.5)) {
		t.Fatalf("get = %v", v)
	}
	if !s.Has("cpu") || s.Len() != 1 {
		t.Fatal("store bookkeeping broken")
	}
	s.Delete("cpu")
	if s.Has("cpu") || s.Get("cpu").IsValid() {
		t.Fatal("delete did not remove")
	}
	s.Delete("cpu") // idempotent
}

func TestChangeNotification(t *testing.T) {
	s := NewStore()
	type change struct {
		name     string
		old, new value.Value
	}
	var seen []change
	s.Subscribe(func(name string, old, new value.Value) {
		seen = append(seen, change{name, old, new})
	})
	s.SetInt("jobs", 1)
	s.SetInt("jobs", 1) // no-op: same value
	s.SetInt("jobs", 2)
	s.Delete("jobs")
	if len(seen) != 3 {
		t.Fatalf("changes = %d, want 3 (%v)", len(seen), seen)
	}
	if seen[0].old.IsValid() || !value.Equal(seen[0].new, value.Int(1)) {
		t.Fatalf("first change: %+v", seen[0])
	}
	if !value.Equal(seen[1].old, value.Int(1)) || !value.Equal(seen[1].new, value.Int(2)) {
		t.Fatalf("second change: %+v", seen[1])
	}
	if seen[2].new.IsValid() {
		t.Fatalf("delete change should have invalid new value: %+v", seen[2])
	}
}

func TestKindChangeNotifies(t *testing.T) {
	s := NewStore()
	count := 0
	s.Subscribe(func(string, value.Value, value.Value) { count++ })
	s.SetInt("x", 1)
	s.SetFloat("x", 1) // numerically equal but different kind
	if count != 2 {
		t.Fatalf("kind change should notify, count = %d", count)
	}
}

func TestNames(t *testing.T) {
	s := NewStore()
	s.SetBool("b", true)
	s.SetInt("a", 1)
	s.SetString("c", "x")
	names := s.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}
