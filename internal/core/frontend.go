package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/predicate"
)

// Request is one front-end query: (query-attribute, aggregation
// function, group-predicate), the paper's query triple (§3.1),
// optionally keyed by a group-by attribute.
type Request struct {
	// Attr is the attribute to aggregate; "*" contributes 1 per node.
	Attr string
	// Spec is the aggregation function.
	Spec aggregate.Spec
	// Pred is the group predicate; nil aggregates over all nodes.
	Pred predicate.Expr
	// GroupBy names the attribute whose value partitions the answer
	// into per-key sub-aggregates (the `group by` clause); empty for a
	// scalar query. The keyed merge happens in-tree, so a grouped query
	// still costs one dissemination.
	GroupBy string
	// Period makes the request a standing query (the `every` clause):
	// installed once via Subscribe, it re-aggregates in-tree every
	// Period and streams one Sample per epoch. Zero for one-shot
	// queries; Execute rejects requests with a period.
	Period time.Duration
}

// ExecStats reports how a query was planned and how long its phases
// took; the Fig. 13(b) experiments read these.
type ExecStats struct {
	// Covers are the candidate covers considered.
	Covers [][]string
	// Chosen is the selected cover.
	Chosen []string
	// Costs are the probed per-group query-cost estimates.
	Costs map[string]float64
	// ProbeTime is the size-probe phase duration (zero when no probes
	// were needed).
	ProbeTime time.Duration
	// QueryTime is the dissemination/aggregation phase duration.
	QueryTime time.Duration
	// TotalTime is end-to-end latency.
	TotalTime time.Duration
	// ShortCircuit marks a provably empty result answered locally.
	ShortCircuit bool
	// FellBack marks a plan that skipped CNF optimization.
	FellBack bool
	// Probed is the number of size probes issued.
	Probed int
	// GroupBy echoes the request's group-by attribute.
	GroupBy string
	// GroupKeys is the number of distinct group keys held exactly
	// (grouped queries only).
	GroupKeys int
}

// Result is a completed query.
type Result struct {
	// Agg is the aggregate answer; for grouped queries it is the grand
	// total across every key.
	Agg aggregate.Result
	// Groups holds the per-key answers of a `group by` query (nil for
	// scalar queries). Spilled high-cardinality mass, if any, appears
	// under aggregate.OtherKey.
	Groups map[string]aggregate.Result
	// Truncated reports that the group-key cap was exceeded somewhere
	// in the tree, so some per-key answers are partial (the remainder
	// is under aggregate.OtherKey; Agg stays exact).
	Truncated bool
	// Contributors is the number of group members that answered the
	// query. A member missing the query attribute still counts — it was
	// reached and evaluated — so Contributors measures coverage of the
	// membership, not of the attribute. Under churn it is the numerator
	// of the answer's completeness.
	Contributors int64
	// Expected is the system's own estimate of the population the query
	// should have reached: the sum over the chosen cover's trees of each
	// root's query-plane size estimate (NO-PRUNE count plus cold-region
	// estimate). It is an indicator, not a membership count — composite
	// covers overlap and NO-PRUNE includes recently departed members —
	// and is zero when no tree root answered.
	Expected float64
	// Cached marks an answer served from the query service's one-shot
	// result cache rather than freshly executed; Age is how long ago the
	// cached answer was computed. Both are zero on every answer the
	// engine itself produces — only the service front-end stamps them.
	Cached bool
	// Age is the cached answer's staleness at serve time (zero for
	// fresh answers).
	Age time.Duration
	// Stats describes planning and timing.
	Stats ExecStats
}

// Completeness is Contributors/Expected clamped to [0,1]: the system's
// own estimate of how much of the queried population this answer
// covers. It returns 1 when Expected is unknown (zero); see the README
// for what it does and does not promise under churn.
func (r Result) Completeness() float64 {
	if r.Expected <= 0 {
		return 1
	}
	c := float64(r.Contributors) / r.Expected
	if c > 1 {
		return 1
	}
	return c
}

// frontend drives composite-query planning, size probes, sub-queries,
// and result merging for queries originating at this node (§6).
type frontend struct {
	n          *Node
	pending    map[QueryID]*feQuery
	probeIndex map[QueryID]*feQuery
	probeCache map[string]probeEntry

	// subs holds the standing-query registry (see standing.go);
	// subProbes indexes in-flight cover re-probes by probe query ID.
	subs      map[QueryID]*feSub
	subProbes map[QueryID]*feSub
}

type probeEntry struct {
	cost float64
	at   time.Duration
}

type feQuery struct {
	qid  QueryID
	req  Request
	cb   func(Result, error)
	plan queryPlan

	probeQIDs   map[QueryID]string
	costs       map[string]float64
	probeCancel func()

	groupsPending map[string]bool
	agg           *aggregate.GroupedState
	contrib       int64
	expected      float64
	queryCancel   func()

	stats        ExecStats
	startAt      time.Duration
	queryStartAt time.Duration
	done         bool
}

func (fe *frontend) init(n *Node) {
	fe.n = n
	fe.pending = make(map[QueryID]*feQuery)
	fe.probeIndex = make(map[QueryID]*feQuery)
	fe.probeCache = make(map[string]probeEntry)
	fe.subs = make(map[QueryID]*feSub)
	fe.subProbes = make(map[QueryID]*feSub)
}

// recover re-arms the front-end's periodic loops after a crash-recovery
// (see Node.Recover). In-flight one-shot queries are finished with
// whatever partial state they hold — their timeout timers died with the
// crash, so without this their callbacks would never fire — and
// standing-query renewal and empty-plan streams restart. Probe rounds
// abandoned mid-flight fall back to conservative costs at the next
// renewal.
func (fe *frontend) recover() {
	seen := make(map[QueryID]*feQuery)
	for _, fq := range fe.pending {
		seen[fq.qid] = fq
	}
	for _, fq := range fe.probeIndex {
		seen[fq.qid] = fq
	}
	for _, fq := range seen {
		fq.finish(fe.n, nil)
	}
	for _, fs := range fe.subs {
		for pqid := range fs.probeQIDs {
			delete(fe.subProbes, pqid)
		}
		fs.probeQIDs = nil
		if fs.probeCancel != nil {
			// A probe timeout armed before the crash can still be
			// pending (timers are only dropped if they fire during the
			// outage); left armed, it would abort the next renewal's
			// probe round with stale state.
			fs.probeCancel()
			fs.probeCancel = nil
		}
		if fs.plan.empty {
			if fs.emptyCancel != nil {
				fs.emptyCancel()
			}
			fe.armEmptyTick(fs)
			continue
		}
		if fs.renewCancel != nil {
			fs.renewCancel()
		}
		fe.armRenew(fs)
	}
}

func (n *Node) nextQID() QueryID {
	n.qidCounter++
	return QueryID{Origin: n.self, Num: n.qidCounter}
}

// Execute runs a query from this node, invoking cb exactly once with
// the merged result (or an error). It must be called on the node's
// event goroutine; the callback runs there too.
func (n *Node) Execute(req Request, cb func(Result, error)) {
	n.fe.execute(req, cb)
}

func (fe *frontend) execute(req Request, cb func(Result, error)) {
	n := fe.n
	if err := req.Spec.Validate(); err != nil {
		cb(Result{}, fmt.Errorf("core: invalid aggregation spec: %w", err))
		return
	}
	if req.Attr == "" {
		cb(Result{}, fmt.Errorf("core: empty query attribute"))
		return
	}
	if req.Period > 0 {
		cb(Result{}, fmt.Errorf("%w (every %v)", ErrStandingOnly, req.Period))
		return
	}
	plan := buildPlan(req.Attr, req.Pred, n.cfg.MaxCNFClauses)
	plan.groupBy = req.GroupBy
	fq := &feQuery{
		qid:     n.nextQID(),
		req:     req,
		cb:      cb,
		plan:    plan,
		costs:   make(map[string]float64),
		agg:     aggregate.NewGrouped(req.Spec, n.cfg.MaxGroupKeys),
		startAt: n.env.Now(),
	}
	fq.stats.FellBack = plan.fellBack
	fq.stats.GroupBy = req.GroupBy
	for _, cover := range plan.covers {
		fq.stats.Covers = append(fq.stats.Covers, coverCanons(cover))
	}
	if plan.empty {
		fq.stats.ShortCircuit = true
		fq.finish(n, nil)
		return
	}
	if plan.singleTrivialCover() {
		fe.startSubQueries(fq)
		return
	}
	fe.startProbes(fq)
}

// startProbes issues size probes for every non-global group in any
// cover (§6.3). Cached costs within ProbeCacheTTL are reused.
func (fe *frontend) startProbes(fq *feQuery) {
	n := fe.n
	fq.probeQIDs = make(map[QueryID]string)
	now := n.env.Now()
	for _, g := range fq.plan.distinctGroupsOfPlan() {
		if g.expr == nil {
			fq.costs[g.canon] = 2 * n.overlay.EstimateSize()
			continue
		}
		if ce, ok := fe.probeCache[g.canon]; ok && n.cfg.ProbeCacheTTL > 0 && now-ce.at <= n.cfg.ProbeCacheTTL {
			fq.costs[g.canon] = ce.cost
			continue
		}
		pqid := n.nextQID()
		fq.probeQIDs[pqid] = g.canon
		fe.probeIndex[pqid] = fq
		n.overlay.Route(g.treeKey(), ProbeMsg{
			QID:     pqid,
			Group:   g.canon,
			Attr:    g.attr,
			ReplyTo: n.self,
		})
	}
	fq.stats.Probed = len(fq.probeQIDs)
	if len(fq.probeQIDs) == 0 {
		fe.startSubQueries(fq)
		return
	}
	fq.probeCancel = n.env.After(n.cfg.ProbeTimeout, func() {
		// Missing probes fall back to the conservative system-size
		// cost; planning proceeds.
		for pqid := range fq.probeQIDs {
			delete(fe.probeIndex, pqid)
		}
		fq.probeQIDs = nil
		fe.startSubQueries(fq)
	})
}

func (fe *frontend) handleProbeResp(pr ProbeRespMsg) {
	fq, ok := fe.probeIndex[pr.QID]
	if !ok {
		fe.handleSubProbeResp(pr)
		return
	}
	delete(fe.probeIndex, pr.QID)
	delete(fq.probeQIDs, pr.QID)
	fq.costs[pr.Group] = pr.Cost
	fe.probeCache[pr.Group] = probeEntry{cost: pr.Cost, at: fe.n.env.Now()}
	if len(fq.probeQIDs) == 0 && !fq.done {
		if fq.probeCancel != nil {
			fq.probeCancel()
			fq.probeCancel = nil
		}
		fe.startSubQueries(fq)
	}
}

// chooseCover picks a cover per the configured policy: cheapest by
// probed cost (Moara, breaking ties toward fewer groups and then
// lexicographic order), every group (CoverAll ablation), or the most
// expensive (CoverDearest ablation).
func (fe *frontend) chooseCover(fq *feQuery) []groupSpec {
	return fe.chooseCoverFrom(fq.plan, fq.costs)
}

// chooseCoverFrom is the policy core shared by one-shot queries and
// standing-query (re-)installs.
func (fe *frontend) chooseCoverFrom(plan queryPlan, costs map[string]float64) []groupSpec {
	n := fe.n
	if n.cfg.Covers == CoverAll {
		return plan.distinctGroupsOfPlan()
	}
	fallbackCost := 2 * n.overlay.EstimateSize()
	best := -1
	bestCost := 0.0
	for i, cover := range plan.covers {
		cost := 0.0
		for _, g := range cover {
			if c, ok := costs[g.canon]; ok {
				cost += c
			} else {
				cost += fallbackCost
			}
		}
		var better bool
		if n.cfg.Covers == CoverDearest {
			better = best < 0 || cost > bestCost
		} else {
			better = best < 0 || cost < bestCost ||
				(cost == bestCost && len(cover) < len(plan.covers[best])) ||
				(cost == bestCost && len(cover) == len(plan.covers[best]) && coverKey(cover) < coverKey(plan.covers[best]))
		}
		if better {
			best, bestCost = i, cost
		}
	}
	return plan.covers[best]
}

func (fe *frontend) startSubQueries(fq *feQuery) {
	n := fe.n
	cover := fe.chooseCover(fq)
	fq.stats.Chosen = coverCanons(cover)
	fq.stats.Costs = fq.costs
	fq.queryStartAt = n.env.Now()
	fq.stats.ProbeTime = fq.queryStartAt - fq.startAt
	fq.groupsPending = make(map[string]bool, len(cover))
	fe.pending[fq.qid] = fq
	for _, g := range cover {
		eval := fq.plan.evalCanon
		if eval == g.canon {
			eval = ""
		}
		fq.groupsPending[g.canon] = true
		n.overlay.Route(g.treeKey(), SubQueryMsg{
			QID:     fq.qid,
			Group:   g.canon,
			Eval:    eval,
			Attr:    fq.req.Attr,
			Spec:    fq.req.Spec,
			GroupBy: fq.plan.groupBy,
			ReplyTo: n.self,
		})
	}
	fq.queryCancel = n.env.After(n.cfg.QueryTimeout, func() {
		if !fq.done {
			fq.finish(n, nil)
		}
	})
}

// handleQueryResp consumes a tree root's aggregated answer.
func (fe *frontend) handleQueryResp(_ ids.ID, rm ResponseMsg) {
	fq, ok := fe.pending[rm.QID]
	if !ok || !fq.groupsPending[rm.Group] {
		return
	}
	delete(fq.groupsPending, rm.Group)
	if !rm.Dup && rm.State != nil {
		_ = fq.agg.Merge(rm.State)
		aggregate.Recycle(rm.State)
	}
	if !rm.Dup {
		// Each tree root's response carries the subtree members that
		// answered plus the root's population estimate (np piggyback),
		// which at the root spans the whole tree.
		fq.contrib += rm.Contributors
		fq.expected += float64(rm.Np) + rm.Unknown
	}
	if len(fq.groupsPending) == 0 {
		fq.finish(fe.n, nil)
	}
}

func (fq *feQuery) finish(n *Node, err error) {
	if fq.done {
		return
	}
	fq.done = true
	if fq.queryCancel != nil {
		fq.queryCancel()
	}
	if fq.probeCancel != nil {
		fq.probeCancel()
	}
	delete(n.fe.pending, fq.qid)
	for pqid := range fq.probeQIDs {
		delete(n.fe.probeIndex, pqid)
	}
	now := n.env.Now()
	fq.stats.TotalTime = now - fq.startAt
	if fq.queryStartAt > 0 || !fq.stats.ShortCircuit {
		fq.stats.QueryTime = now - fq.queryStartAt
		if fq.queryStartAt == 0 {
			fq.stats.QueryTime = 0
		}
	}
	res := Result{
		Agg:          fq.agg.Result(),
		Contributors: fq.contrib,
		Expected:     fq.expected,
	}
	if fq.req.GroupBy != "" {
		res.Groups = fq.agg.Results()
		res.Truncated = fq.agg.Truncated()
		fq.stats.GroupKeys = fq.agg.KeyCount()
	}
	res.Stats = fq.stats
	fq.cb(res, err)
}

func coverCanons(cover []groupSpec) []string {
	out := make([]string, len(cover))
	for i, g := range cover {
		out[i] = g.canon
	}
	sort.Strings(out)
	return out
}

// ParseRequest builds a Request from query-language text:
//
//	<agg>(<attr>) [group by <attr>] [where <predicate>] [every <duration>]
//
// e.g. "avg(mem_util) group by slice where apache = true" or, as a
// standing query, "avg(load) where group = db every 2s". Failures wrap
// ErrParse, so callers branch with errors.Is rather than message
// matching.
func ParseRequest(s string) (Request, error) {
	req, err := parseRequestText(s)
	if err != nil {
		return Request{}, fmt.Errorf("%w: %v", ErrParse, err)
	}
	return req, nil
}
