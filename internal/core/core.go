package core
