package core

import (
	"fmt"
	"strings"

	"github.com/moara/moara/internal/predicate"
)

// NormalizeRequest rewrites req into the canonical form the query
// service keys on: the predicate is normalized (flattened, deduplicated,
// redundant bounds folded — see predicate.Normalize), and the
// attribute/group-by names are whitespace-trimmed. Two requests that
// normalize equal are the same query: same answer, same tree state,
// same sample stream.
func NormalizeRequest(req Request) Request {
	req.Attr = strings.TrimSpace(req.Attr)
	req.GroupBy = strings.TrimSpace(req.GroupBy)
	req.Pred = predicate.Normalize(req.Pred)
	return req
}

// CanonicalKey renders the normalized request as a string key for the
// result cache and the subsumption registry. The period participates:
// two standing queries only share a stream when they tick on the same
// grid. One-shot requests (Period == 0) render with "once".
func CanonicalKey(req Request) string {
	req = NormalizeRequest(req)
	period := "once"
	if req.Period > 0 {
		period = req.Period.String()
	}
	pred := ""
	if req.Pred != nil {
		pred = req.Pred.Canon()
	}
	return fmt.Sprintf("%s(%s)|by:%s|where:%s|every:%s",
		req.Spec, req.Attr, req.GroupBy, pred, period)
}

// FormatRequest renders a request back to query-language text that
// re-parses to the same request. The query-service front-end uses it
// to install normalized requests on text-only backends.
func FormatRequest(req Request) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)", req.Spec, req.Attr)
	if req.GroupBy != "" {
		fmt.Fprintf(&b, " group by %s", req.GroupBy)
	}
	if req.Pred != nil {
		fmt.Fprintf(&b, " where %s", req.Pred)
	}
	if req.Period > 0 {
		fmt.Fprintf(&b, " every %s", req.Period)
	}
	return b.String()
}
