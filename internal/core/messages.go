package core

import (
	"fmt"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/ids"
)

// QueryID uniquely identifies one front-end query across every tree it
// touches; nodes use it to answer exactly once even when a composite
// cover queries them through multiple trees (§6.2).
type QueryID struct {
	Origin ids.ID
	Num    uint64
}

// String renders the query ID.
func (q QueryID) String() string { return fmt.Sprintf("%s#%d", q.Origin.Short(), q.Num) }

// SetEntry is one member of an updateSet or qSet: a node plus the
// broadcast level it operates at (so SQP jumps carry enough context for
// the target to enumerate its own structural children).
type SetEntry struct {
	ID    ids.ID
	Level int
	// Jump marks entries reached by bypassing an intermediate node
	// (§5). It is derived locally during recomputation — a child's
	// updateSet entry that is not the child itself — and is not
	// meaningful on the wire.
	Jump bool `json:"-"`
}

// SubQueryMsg is routed through the overlay to the root of one group's
// tree, where dissemination starts. Predicates travel in canonical text
// form and are parsed (with caching) at each node, which keeps every
// message gob-encodable for the TCP transport.
type SubQueryMsg struct {
	QID QueryID
	// Group is the canonical simple predicate whose tree routes this
	// sub-query; "*" selects the unpruned global tree for Attr.
	Group string
	// Eval is the full predicate each node evaluates locally; empty
	// means "same as Group".
	Eval string
	// Attr is the query attribute to aggregate ("*" contributes 1 per
	// node, enabling count(*)).
	Attr string
	// Spec is the aggregation function.
	Spec aggregate.Spec
	// GroupBy names the attribute whose per-node value keys the keyed
	// aggregation; empty for scalar queries.
	GroupBy string
	// ReplyTo receives the tree's aggregated ResponseMsg.
	ReplyTo ids.ID
}

// MsgKind labels the message for accounting.
func (SubQueryMsg) MsgKind() string { return "moara.query" }

// QueryMsg disseminates a query down a group tree (or jumps across the
// separate query plane).
type QueryMsg struct {
	QID   QueryID
	Seq   uint64
	Group string
	Eval  string
	Attr  string
	Spec  aggregate.Spec
	// GroupBy keys the in-tree aggregation (empty for scalar queries):
	// every node contributes under its local value of this attribute and
	// sub-aggregates merge per key on the way up.
	GroupBy string
	Level   int
	ReplyTo ids.ID
	// Jump marks a separate-query-plane shortcut (§5): the receiver
	// was reached by bypassing its tree parent, so it must NOT adopt
	// the sender as its parent — status updates keep flowing along
	// the tree while queries shortcut across it.
	Jump bool
}

// MsgKind labels the message for accounting.
func (QueryMsg) MsgKind() string { return "moara.query" }

// ResponseMsg carries a subtree's partial aggregate back up the query
// path. State is always a *aggregate.GroupedState — the keyed engine
// every query flows through; scalar queries are the single-key special
// case. Np/Unknown piggyback the subtree's query-plane size for lazy
// cost maintenance (§6.3).
type ResponseMsg struct {
	QID   QueryID
	Group string
	State aggregate.State
	Dup   bool
	// Contributors counts the group members in this subtree that
	// answered the query (claimed their contribution), whether or not
	// they held a valid value for the query attribute — the numerator of
	// the answer's completeness accounting. It can exceed State.Nodes()
	// when members lack the attribute.
	Contributors int64
	Np           int
	Unknown      float64
}

// MsgKind labels the message for accounting.
func (ResponseMsg) MsgKind() string { return "moara.resp" }

// StatusMsg is the PRUNE / NO-PRUNE update of §4, extended with the
// SQP updateSet of §5, the lazily maintained subtree cost (np), and the
// last seen query sequence number used by bypassed ancestors to track
// qn (§5, "Adaptation and SQP").
type StatusMsg struct {
	Group string
	// Prune reports the child can be skipped for this group.
	Prune bool
	// UpdateSet lists the nodes the parent should forward queries to
	// on this child's behalf (empty iff Prune).
	UpdateSet []SetEntry
	// Np is the child subtree's NO-PRUNE node count.
	Np int
	// Unknown is the child subtree's estimated population with no
	// recorded state (cost estimation for cold regions).
	Unknown float64
	// LastSeq is the child's last observed query sequence number.
	LastSeq uint64
}

// MsgKind labels the message for accounting.
func (StatusMsg) MsgKind() string { return "moara.status" }

// ProbeMsg asks a group tree's root for the current query cost; it is
// routed via the overlay to the root (§6.3 "size probes").
type ProbeMsg struct {
	QID     QueryID
	Group   string
	Attr    string
	ReplyTo ids.ID
}

// MsgKind labels the message for accounting.
func (ProbeMsg) MsgKind() string { return "moara.probe" }

// ProbeRespMsg answers a size probe with the estimated message cost of
// querying the group (2·np, or a system-size-based estimate for cold
// trees).
type ProbeRespMsg struct {
	QID   QueryID
	Group string
	Cost  float64
}

// MsgKind labels the message for accounting.
func (ProbeRespMsg) MsgKind() string { return "moara.probe" }

// ---------------------------------------------------------------------
// Standing queries (install-once, epoch-driven re-aggregation)

// SubscribeMsg installs (or renews) a standing query at one group
// tree's root. It is routed through the overlay like SubQueryMsg; the
// root then disseminates the subscription down-tree with InstallMsg.
// The front-end re-sends it periodically as a liveness renewal, which
// also re-installs the subscription if the tree root moved.
type SubscribeMsg struct {
	// SID identifies the subscription (unique per origin front-end).
	SID QueryID
	// Group is the canonical group predicate whose tree carries the
	// subscription; "*:<attr>" selects the global tree.
	Group string
	// Eval is the full predicate each member evaluates per epoch;
	// empty means "same as Group".
	Eval string
	// Attr is the query attribute re-read every epoch.
	Attr string
	// Spec is the aggregation function.
	Spec aggregate.Spec
	// GroupBy keys the per-epoch in-tree aggregation (empty = scalar).
	GroupBy string
	// Period is the epoch length.
	Period time.Duration
	// Gen is the front-end's renewal round counter. Installs cascade it
	// down-tree; a node ignores installs older than the newest round it
	// has seen, so after a tree repair the stale chains hanging off a
	// dead interior node cannot keep stealing children from the rebuilt
	// tree (see InstallMsg.Gen).
	Gen uint64
	// MinEpoch is the newest root epoch the front-end has seen for this
	// tree. A root taking over after a failover fast-forwards its epoch
	// counter past it, keeping Sample.RootEpoch monotone across root
	// deaths — a backward jump in the delivered stream always means a
	// real fault, never a failover.
	MinEpoch uint64
	// ReplyTo is the front-end that receives one SampleMsg per epoch.
	ReplyTo ids.ID
}

// MsgKind labels the message for accounting.
func (SubscribeMsg) MsgKind() string { return "moara.install" }

// InstallMsg disseminates a subscription down a group tree, parent to
// child (or across an SQP jump). It is re-sent as a periodic down-tree
// liveness refresh, and immediately to nodes that newly enter the
// sender's query target set, so the subscription tree tracks the
// adaptive group tree without re-dissemination per epoch.
type InstallMsg struct {
	SID     QueryID
	Group   string
	Eval    string
	Attr    string
	Spec    aggregate.Spec
	GroupBy string
	Period  time.Duration
	// Gen is the renewal round this install belongs to (cascaded from
	// SubscribeMsg.Gen). A receiver drops installs from older rounds —
	// after a root or interior death, the orphaned old chain keeps
	// refreshing its stale edges until its leases expire, and without
	// the round gate those refreshes would fight the repaired tree for
	// children indefinitely. A round-advancing install that changes the
	// parent also retracts the child's contribution from the old parent
	// (an empty replace-semantics report), so a member is never carried
	// along two paths across rounds.
	Gen   uint64
	Level int
	// Jump marks a separate-query-plane shortcut: the receiver was
	// reached by bypassing its tree parent (§5); epoch reports flow
	// back along the shortcut.
	Jump bool
	// ReplyTo is the installing node — where the receiver's per-epoch
	// reports go.
	ReplyTo ids.ID
}

// MsgKind labels the message for accounting.
func (InstallMsg) MsgKind() string { return "moara.install" }

// EpochReportMsg pushes one subtree's per-epoch partial aggregate up
// the subscription tree — the standing-query analog of ResponseMsg,
// carrying the same keyed GroupedState payloads, but without any
// downward dissemination: one message per tree edge per epoch.
type EpochReportMsg struct {
	SID   QueryID
	Group string
	// Epoch is the sender's local epoch counter (observability only;
	// parents batch whatever reports arrived since their last tick).
	Epoch uint64
	// State is the subtree's keyed partial aggregate.
	State aggregate.State
	// Contributors counts the subtree members folded into State this
	// epoch (including attribute-less members), like
	// ResponseMsg.Contributors.
	Contributors int64
	// Np/Unknown piggyback the subtree's query-plane size, like
	// ResponseMsg: lazy cost maintenance (§6.3) keeps working — and
	// cover re-probes stay meaningful — under pure standing load.
	Np      int
	Unknown float64
}

// MsgKind labels the message for accounting.
func (EpochReportMsg) MsgKind() string { return "moara.epoch" }

// SampleMsg streams one epoch's aggregate from a group tree's root to
// the subscribing front-end.
type SampleMsg struct {
	SID   QueryID
	Group string
	Epoch uint64
	// At is the root's clock at emission; on a shared clock (the
	// simulator) the front-end derives the delivery lag from it.
	At time.Duration
	// State is the whole tree's keyed aggregate for the epoch.
	State aggregate.State
	// Contributors counts the members that reached this epoch's
	// aggregate (see ResponseMsg.Contributors).
	Contributors int64
	// Expected is the root's estimate of the population its tree
	// currently reaches (np + cold-region estimate); with Contributors
	// it gives the sample's completeness indicator.
	Expected float64
}

// MsgKind labels the message for accounting.
func (SampleMsg) MsgKind() string { return "moara.sample" }

// CancelMsg tears a subscription down. The front-end routes it through
// the overlay to each group tree's root; nodes forward it parent to
// child; and any node receiving an EpochReportMsg or SampleMsg for a
// subscription it does not hold answers with one, so orphaned state
// self-destructs ahead of the idle-timeout GC.
type CancelMsg struct {
	SID   QueryID
	Group string
}

// MsgKind labels the message for accounting.
func (CancelMsg) MsgKind() string { return "moara.cancel" }

// ---------------------------------------------------------------------
// Wire coalescing

// BatchMsg is a coalesced bundle of messages for one destination: the
// per-destination outbox collects everything a node emits to the same
// neighbor within Config.CoalesceWindow and ships it as one wire
// message. Receivers unpack transparently (Node.Handle dispatches each
// item in order), and message accounting counts the items as logical
// messages while the batch itself counts once as a wire message — Q
// standing queries sharing a tree edge cost one wire message per epoch.
type BatchMsg struct {
	Items []any
}

// MsgKind labels the batch envelope for wire-level accounting; the
// items inside keep their own kinds for logical accounting.
func (BatchMsg) MsgKind() string { return "moara.batch" }

// Unpack exposes the bundled messages (simnet.Batch); the simulator
// uses it to count logical messages inside one wire transmission.
func (b BatchMsg) Unpack() []any { return b.Items }
