package core

import (
	"sort"

	"github.com/moara/moara/internal/predicate"
)

// seenKey deduplicates query dissemination per (query, tree): a node in
// several trees of one cover forwards the query in each tree but
// contributes its local value only once (tracked separately).
type seenKey struct {
	qid   QueryID
	group string
}

// queryPlan is the outcome of §6's composite-query planning: the
// candidate covers (one per CNF clause, plus semantic reductions) and
// the evaluation predicate every reached node applies locally.
type queryPlan struct {
	// evalCanon is the full predicate in canonical text form; empty
	// for plain simple or global queries (the group predicate itself
	// is the evaluation predicate then).
	evalCanon string
	// covers lists candidate group sets; querying all groups of any
	// single cover yields a complete answer.
	covers [][]groupSpec
	// empty marks a provably empty result (disjoint intersection),
	// resolved with zero network traffic.
	empty bool
	// fellBack notes that CNF expansion was abandoned and the plan
	// queries every mentioned group.
	fellBack bool
	// groupBy is the request's group-by attribute, carried to every
	// sub-query so the keyed merge happens in-tree. It does not affect
	// cover selection: the same trees answer grouped and scalar forms.
	groupBy string
}

// buildPlan derives the covers for a query over pred aggregating
// attrName. A nil pred selects the global pseudo-group.
func buildPlan(attrName string, pred predicate.Expr, maxClauses int) queryPlan {
	if pred == nil {
		return queryPlan{covers: [][]groupSpec{{globalGroup(attrName)}}}
	}
	if s, ok := pred.(predicate.Simple); ok {
		return queryPlan{covers: [][]groupSpec{{simpleGroup(s)}}}
	}
	evalCanon := pred.Canon()
	cnf, err := predicate.ToCNF(pred, maxClauses)
	if err != nil {
		// Fallback: the union of every mentioned group is always a
		// cover (any satisfying node satisfies at least one positive
		// term).
		return queryPlan{
			evalCanon: evalCanon,
			covers:    [][]groupSpec{distinctGroups(pred)},
			fellBack:  true,
		}
	}

	clauses := make([][]predicate.Simple, 0, len(cnf))
	universal := make([]bool, 0, len(cnf))
	for _, cl := range cnf {
		reduced, isUniverse := reduceClause(cl)
		clauses = append(clauses, reduced)
		universal = append(universal, isUniverse)
	}

	// Cross-clause semantic reduction (Fig. 7): the result is contained
	// in every singleton clause's group, so terms of other clauses that
	// are disjoint from (or complementary to) it contribute nothing.
	emptyResult := false
	for pass := 0; pass < 2 && !emptyResult; pass++ {
		for i, ci := range clauses {
			if universal[i] || len(ci) != 1 {
				continue
			}
			u := ci[0]
			for j := range clauses {
				if i == j || universal[j] {
					continue
				}
				kept := clauses[j][:0]
				for _, t := range clauses[j] {
					rel := predicate.Relation(t, u)
					if rel == predicate.RelDisjoint || rel == predicate.RelComplement {
						continue
					}
					kept = append(kept, t)
				}
				clauses[j] = kept
				if len(kept) == 0 {
					emptyResult = true
				}
			}
		}
	}
	if emptyResult {
		return queryPlan{evalCanon: evalCanon, empty: true}
	}

	plan := queryPlan{evalCanon: evalCanon}
	seen := make(map[string]bool, len(clauses))
	for i, cl := range clauses {
		var cover []groupSpec
		if universal[i] {
			cover = []groupSpec{globalGroup(attrName)}
		} else {
			cover = make([]groupSpec, 0, len(cl))
			for _, s := range cl {
				cover = append(cover, simpleGroup(s))
			}
		}
		key := coverKey(cover)
		if !seen[key] {
			seen[key] = true
			plan.covers = append(plan.covers, cover)
		}
	}
	return plan
}

// reduceClause applies within-clause (OR) semantic reductions: dropped
// subsumed terms, deduplication, and complement detection (a term and
// its complement make the clause universal, Fig. 7 row 1 for "or").
func reduceClause(cl []predicate.Simple) (out []predicate.Simple, isUniverse bool) {
	kept := make([]predicate.Simple, 0, len(cl))
	for i, a := range cl {
		drop := false
		for j, b := range cl {
			if i == j {
				continue
			}
			switch predicate.Relation(a, b) {
			case predicate.RelComplement:
				return nil, true
			case predicate.RelSubset:
				// a ⊆ b: b alone covers a's nodes.
				drop = true
			case predicate.RelEqual:
				// Keep the canonically first duplicate.
				if j < i {
					drop = true
				}
			}
			if drop {
				break
			}
		}
		if !drop {
			kept = append(kept, a)
		}
	}
	return kept, false
}

// distinctGroups lists every distinct simple term of pred as a group.
func distinctGroups(pred predicate.Expr) []groupSpec {
	seen := make(map[string]bool)
	var out []groupSpec
	for _, s := range predicate.Simples(pred) {
		k := s.Canon()
		if !seen[k] {
			seen[k] = true
			out = append(out, simpleGroup(s))
		}
	}
	return out
}

func coverKey(cover []groupSpec) string {
	keys := make([]string, len(cover))
	for i, g := range cover {
		keys[i] = g.canon
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "|"
	}
	return out
}

// distinctGroupsOfPlan lists every group appearing in any cover.
func (p queryPlan) distinctGroupsOfPlan() []groupSpec {
	seen := make(map[string]bool)
	var out []groupSpec
	for _, cover := range p.covers {
		for _, g := range cover {
			if !seen[g.canon] {
				seen[g.canon] = true
				out = append(out, g)
			}
		}
	}
	return out
}

// singleTrivialCover reports whether planning produced exactly one
// cover with one group (no probing needed).
func (p queryPlan) singleTrivialCover() bool {
	return len(p.covers) == 1 && len(p.covers[0]) == 1
}
