package core

import (
	"sort"
	"time"
)

// TreeInfo is a read-only snapshot of one group tree's local state,
// for operational introspection (the shell's "trees" command and
// debugging).
type TreeInfo struct {
	// Group is the canonical group predicate.
	Group string
	// Level is this node's depth in the tree (-1 if unknown).
	Level int
	// HasParent reports whether a tree parent is known.
	HasParent bool
	// SatLocal reports local predicate satisfaction.
	SatLocal bool
	// Sat is Procedure 1's aggregate satisfiability.
	Sat bool
	// Update reports UPDATE (true) vs NO-UPDATE state.
	Update bool
	// Prune reports whether this branch is advertised prunable.
	Prune bool
	// QSetSize is the current query-target count.
	QSetSize int
	// Children is the number of children with recorded state.
	Children int
	// Np is the subtree's query-plane size estimate.
	Np int
	// LastSeq is the newest observed query sequence number.
	LastSeq uint64
}

// Trees snapshots every group tree this node currently holds state
// for, sorted by group for stable display.
func (n *Node) Trees() []TreeInfo {
	out := make([]TreeInfo, 0, len(n.preds))
	for canon, ps := range n.preds {
		out = append(out, TreeInfo{
			Group:     canon,
			Level:     ps.level,
			HasParent: ps.hasParent,
			SatLocal:  ps.satLocal,
			Sat:       ps.sat,
			Update:    ps.update,
			Prune:     ps.prune,
			QSetSize:  len(ps.qSet),
			Children:  len(ps.children),
			Np:        ps.np,
			LastSeq:   ps.lastSeq,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// SubInfo is a read-only snapshot of one standing-query subscription
// entry at a node (shell introspection and lifecycle tests).
type SubInfo struct {
	// SID identifies the subscription.
	SID QueryID
	// Group is the tree the entry lives on.
	Group string
	// Root marks the tree root (streams samples to the front-end).
	Root bool
	// Period is the epoch length.
	Period time.Duration
	// Epoch is the local epoch counter.
	Epoch uint64
	// Children is the number of children with a buffered epoch report.
	Children int
	// Targets is the number of children this node has installed.
	Targets int
	// Parent is the short ID of the node reports flow to ("" at the
	// root).
	Parent string
	// Orphaned marks a subscription whose parent was purged as dead
	// and which is pulling directly to the root until re-adopted.
	Orphaned bool
	// Gen is the newest renewal round seen.
	Gen uint64
	// Contributors is the member count of the node's latest report
	// (local contribution plus buffered child reports).
	Contributors int64
	// Reporters lists the short IDs of children with a buffered report
	// (sorted; debugging and shell introspection).
	Reporters []string
}

// Subs snapshots every subscription entry this node holds, sorted by
// group then subscription for stable display.
func (n *Node) Subs() []SubInfo {
	out := make([]SubInfo, 0, len(n.subs))
	for _, sub := range n.subs {
		parent := ""
		if !sub.root {
			parent = sub.parent.Short()
		}
		var contrib int64
		reporters := make([]string, 0, len(sub.reports))
		for id, rep := range sub.reports {
			contrib += rep.contrib
			reporters = append(reporters, id.Short())
		}
		sort.Strings(reporters)
		if n.subEval(sub) {
			contrib++
		}
		out = append(out, SubInfo{
			SID:          sub.sid,
			Group:        sub.group.canon,
			Root:         sub.root,
			Period:       sub.period,
			Epoch:        sub.epoch,
			Children:     len(sub.reports),
			Targets:      len(sub.targets),
			Parent:       parent,
			Orphaned:     sub.orphaned,
			Gen:          sub.gen,
			Contributors: contrib,
			Reporters:    reporters,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].SID.String() < out[j].SID.String()
	})
	return out
}
