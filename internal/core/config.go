// Package core implements the Moara node: group aggregation trees carved
// out of DHT broadcast trees, the sat/update/prune dynamic-maintenance
// state machine (§4), the separate query plane (§5), per-tree query-cost
// estimation, and the composite-query front-end (§6).
package core

import "time"

// Mode selects the maintenance strategy; the non-default modes implement
// the paper's comparison baselines.
type Mode uint8

const (
	// ModeAdaptive is Moara's dynamic adaptation policy (§4).
	ModeAdaptive Mode = iota
	// ModeGlobal never maintains group state: every query is broadcast
	// to all nodes ("Global" in Fig. 9).
	ModeGlobal
	// ModeAlwaysUpdate pins every node in UPDATE state, eagerly
	// propagating every membership change ("Moara (Always-Update)").
	ModeAlwaysUpdate
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGlobal:
		return "global"
	case ModeAlwaysUpdate:
		return "always-update"
	default:
		return "adaptive"
	}
}

// CoverPolicy selects how the front-end picks among candidate covers
// (§6.3). The non-default policies are ablation switches used by the
// evaluation harness.
type CoverPolicy uint8

const (
	// CoverCheapest is Moara's policy: probe costs, pick the cheapest
	// cover.
	CoverCheapest CoverPolicy = iota
	// CoverAll queries every group of every cover (a planner without
	// cover selection).
	CoverAll
	// CoverDearest inverts the choice (worst-case cover), bounding the
	// value of the probes.
	CoverDearest
)

// Config tunes a Moara node. The zero value plus Defaults() matches the
// paper's implementation choices.
type Config struct {
	// Mode selects adaptive maintenance or a baseline strategy.
	Mode Mode
	// Covers selects the cover-choice policy (ablation knob).
	Covers CoverPolicy
	// Threshold is the separate-query-plane threshold (§5). 1 disables
	// the SQP (plain pruned trees); the paper finds 2 captures most of
	// the benefit.
	Threshold int
	// KUpdate is the event-window length used while in UPDATE state
	// (paper default 1).
	KUpdate int
	// KNoUpdate is the event-window length used while in NO-UPDATE
	// state (paper default 3).
	KNoUpdate int
	// ChildTimeout bounds how long a node waits for a child's query
	// response before aggregating without it (§7).
	ChildTimeout time.Duration
	// ProbeTimeout bounds how long the front-end waits for size
	// probes before falling back to conservative cost estimates.
	ProbeTimeout time.Duration
	// SeenTTL is how long answered query IDs are remembered for
	// duplicate elimination (paper: 5 minutes).
	SeenTTL time.Duration
	// StateTTL garbage-collects predicate state idle for this long
	// while in NO-UPDATE (0 disables GC).
	StateTTL time.Duration
	// ProbeCacheTTL caches group-cost probes at the front-end. The
	// paper probes on every composite query, so the default is 0.
	ProbeCacheTTL time.Duration
	// QueryTimeout bounds a front-end query end to end.
	QueryTimeout time.Duration
	// MaxCNFClauses caps CNF expansion during planning; larger
	// composite predicates fall back to querying every mentioned
	// group (still complete).
	MaxCNFClauses int
	// MaxGroupKeys caps the distinct keys a grouped query's keyed
	// accumulator holds at any node; past it, contributions spill into
	// the aggregate.OtherKey bucket (memory protection against
	// high-cardinality group-by attributes). Negative disables the cap.
	MaxGroupKeys int
	// SubTTL is the standing-query idle timeout: a node drops a
	// subscription that has not been renewed (by its parent's install
	// refresh, or — at the root — by the subscribing front-end) for
	// this long, so crashed front-ends cannot leak subscription state.
	SubTTL time.Duration
	// SubRenewInterval is how often a front-end renews its standing
	// queries (re-routing the install to the tree root, re-probing
	// composite covers) and how often the renewed install is refreshed
	// down-tree. Must be well below SubTTL; default SubTTL/3.
	SubRenewInterval time.Duration
	// CoalesceWindow is the Nagle-style per-destination outbox flush
	// window: messages a node emits to the same neighbor within the
	// window ship as one wire-level BatchMsg, so Q concurrent queries
	// traversing the same trees cost ~one wire message per tree edge
	// instead of Q. Zero (the default) flushes after one event-loop
	// tick — same virtual instant on the simulator, same serialized
	// handler turn on the TCP agent — adding no latency while still
	// merging everything a node sends in one burst. A positive window
	// trades up to that much extra latency per hop for coalescing
	// across bursts. CoalesceOff disables the outbox entirely.
	CoalesceWindow time.Duration
}

// CoalesceOff disables the per-destination outbox: every message is
// sent individually, one wire message per logical message.
const CoalesceOff time.Duration = -1

// Defaults fills unset fields with the paper's parameter choices.
func (c Config) Defaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 2
	}
	if c.KUpdate == 0 {
		c.KUpdate = 1
	}
	if c.KNoUpdate == 0 {
		c.KNoUpdate = 3
	}
	if c.ChildTimeout == 0 {
		c.ChildTimeout = 2 * time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.SeenTTL == 0 {
		c.SeenTTL = 5 * time.Minute
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 15 * time.Second
	}
	if c.MaxCNFClauses == 0 {
		c.MaxCNFClauses = 128
	}
	switch {
	case c.MaxGroupKeys == 0:
		c.MaxGroupKeys = 1024
	case c.MaxGroupKeys < 0:
		c.MaxGroupKeys = 0
	}
	if c.SubTTL == 0 {
		c.SubTTL = 45 * time.Second
	}
	if c.SubRenewInterval == 0 {
		c.SubRenewInterval = c.SubTTL / 3
	}
	return c
}
