package core

import (
	"math/rand"
	"testing"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/value"
)

func testGroup(t *testing.T) groupSpec {
	t.Helper()
	s, err := predicate.ParseSimple("a = 1")
	if err != nil {
		t.Fatal(err)
	}
	return simpleGroup(s)
}

func flatRegion(int) float64 { return 1 }

// TestStateMachineInvariants checks §4's three invariants under random
// event sequences:
//
//	update ∧ sat   ⇒ ¬prune
//	update ∧ ¬sat  ⇒ prune
//	¬update        ⇒ ¬prune
func TestStateMachineInvariants(t *testing.T) {
	self := ids.FromUint64(1)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		ps := newPredState(groupSpec{canon: "a = 1", attr: "a"})
		ps.level = 1
		var structural []pastry.BroadcastTarget
		for i := 0; i < rng.Intn(4); i++ {
			structural = append(structural, pastry.BroadcastTarget{
				ID:    ids.FromUint64(uint64(100 + i)),
				Level: 2,
			})
		}
		for step := 0; step < 60; step++ {
			switch rng.Intn(4) {
			case 0: // local flip
				ps.satLocal = !ps.satLocal
			case 1: // child status
				if len(structural) > 0 {
					id := structural[rng.Intn(len(structural))].ID
					if rng.Intn(2) == 0 {
						ps.children[id] = &childState{Prune: true}
					} else {
						ps.children[id] = &childState{
							UpdateSet: []SetEntry{{ID: id, Level: 2}},
							Np:        1,
						}
					}
				}
			case 2: // query
				ps.recordQueryEvent(self)
			case 3: // missed queries
				ps.recordMissed(rng.Intn(3), self)
			}
			changed := ps.recompute(structural, 2, self, flatRegion)
			if changed {
				ps.recordEvent(evChange)
			}
			ps.runPolicy(ModeAdaptive, 1, 3)

			switch {
			case ps.update && ps.sat && ps.prune:
				t.Fatalf("invariant violated: UPDATE ∧ SAT ⇒ ¬PRUNE (step %d)", step)
			case ps.update && !ps.sat && !ps.prune:
				t.Fatalf("invariant violated: UPDATE ∧ ¬SAT ⇒ PRUNE (step %d)", step)
			case !ps.update && ps.prune:
				t.Fatalf("invariant violated: ¬UPDATE ⇒ ¬PRUNE (step %d)", step)
			}
			// §4's liveness invariant: a node either keeps receiving
			// queries (parent view NO-PRUNE) or reports status. In
			// wireView terms: pruned ⇒ we are in UPDATE (will send
			// status on change).
			if prune, set := ps.wireView(self); prune {
				if !ps.update {
					t.Fatal("pruned wire view while in NO-UPDATE")
				}
				if len(set) != 0 {
					t.Fatal("pruned wire view must carry an empty updateSet")
				}
			}
		}
	}
}

// TestSatFollowsChildrenAndLocal mirrors Procedure 1: sat is set iff
// the local predicate holds, any child is unreported, or any child is
// NO-PRUNE.
func TestSatFollowsChildrenAndLocal(t *testing.T) {
	self := ids.FromUint64(1)
	child := ids.FromUint64(2)
	structural := []pastry.BroadcastTarget{{ID: child, Level: 2}}

	ps := newPredState(groupSpec{canon: "a = 1", attr: "a"})
	ps.level = 1

	// Unreported child counts as NO-PRUNE (default).
	ps.recompute(structural, 2, self, flatRegion)
	if !ps.sat {
		t.Fatal("unreported child must imply SAT")
	}
	// Child prunes; no local satisfaction -> NO-SAT.
	ps.children[child] = &childState{Prune: true}
	ps.recompute(structural, 2, self, flatRegion)
	if ps.sat {
		t.Fatal("pruned child and unsatisfied local must imply NO-SAT")
	}
	// Local satisfaction flips it back.
	ps.satLocal = true
	ps.recompute(structural, 2, self, flatRegion)
	if !ps.sat {
		t.Fatal("local satisfaction must imply SAT")
	}
	// Child reports an updateSet -> stays SAT even without local.
	ps.satLocal = false
	ps.children[child] = &childState{UpdateSet: []SetEntry{{ID: child, Level: 2}}, Np: 1}
	ps.recompute(structural, 2, self, flatRegion)
	if !ps.sat {
		t.Fatal("NO-PRUNE child must imply SAT")
	}
}

// TestSQPThresholdCollapse mirrors §5: updateSet is the full qSet below
// threshold and {self} at or above it.
func TestSQPThresholdCollapse(t *testing.T) {
	self := ids.FromUint64(1)
	mk := func(n int) []pastry.BroadcastTarget {
		var out []pastry.BroadcastTarget
		for i := 0; i < n; i++ {
			out = append(out, pastry.BroadcastTarget{ID: ids.FromUint64(uint64(10 + i)), Level: 2})
		}
		return out
	}
	for _, tc := range []struct {
		children  int
		threshold int
		wantSelf  bool
	}{
		{1, 2, false}, // |qSet|=1 < 2: pass through
		{2, 2, true},  // |qSet|=2 >= 2: collapse to {self}
		{3, 4, false},
		{4, 4, true},
		{1, 1, true}, // threshold=1 always collapses non-empty sets
	} {
		ps := newPredState(groupSpec{canon: "a = 1", attr: "a"})
		ps.level = 1
		structural := mk(tc.children)
		for _, bt := range structural {
			ps.children[bt.ID] = &childState{
				UpdateSet: []SetEntry{{ID: bt.ID, Level: bt.Level}},
				Np:        1,
			}
		}
		ps.recompute(structural, tc.threshold, self, flatRegion)
		gotSelf := len(ps.updateSet) == 1 && ps.updateSet[0].ID == self
		if gotSelf != tc.wantSelf {
			t.Errorf("children=%d threshold=%d: updateSet=%v (self-collapse=%v, want %v)",
				tc.children, tc.threshold, ps.updateSet, gotSelf, tc.wantSelf)
		}
	}
}

// TestAdaptationPolicyRules replays §4's transition table: 2qn < c
// moves to NO-UPDATE, 2qn > c moves to UPDATE, ties hold.
func TestAdaptationPolicyRules(t *testing.T) {
	self := ids.FromUint64(1)
	ps := newPredState(groupSpec{canon: "a = 1", attr: "a"})
	ps.level = 1

	// Initially NO-UPDATE (Procedure 2).
	if ps.update {
		t.Fatal("initial state must be NO-UPDATE")
	}
	// One query while out of the updateSet: qn=1, c=0 -> UPDATE.
	ps.recordQueryEvent(self)
	ps.runPolicy(ModeAdaptive, 1, 3)
	if !ps.update {
		t.Fatal("2qn > c must move to UPDATE")
	}
	// One change with kUpdate=1 window: c=1, qn=0 -> NO-UPDATE.
	ps.recordEvent(evChange)
	ps.runPolicy(ModeAdaptive, 1, 3)
	if ps.update {
		t.Fatal("2qn < c must move to NO-UPDATE")
	}
	// In NO-UPDATE (window 3): a query arrives: window [change, qn]:
	// 2*1 > 1 -> back to UPDATE.
	ps.recordQueryEvent(self)
	ps.runPolicy(ModeAdaptive, 1, 3)
	if !ps.update {
		t.Fatal("query after change within window must re-enter UPDATE")
	}
}

// TestModePins verifies the baseline modes pin the update flag.
func TestModePins(t *testing.T) {
	self := ids.FromUint64(1)
	ps := newPredState(groupSpec{canon: "a = 1", attr: "a"})
	ps.recordEvent(evChange)
	ps.recordEvent(evChange)
	ps.runPolicy(ModeAlwaysUpdate, 1, 3)
	if !ps.update {
		t.Fatal("Always-Update must pin UPDATE")
	}
	ps.recordQueryEvent(self)
	ps.runPolicy(ModeGlobal, 1, 3)
	if ps.update {
		t.Fatal("Global must pin NO-UPDATE")
	}
}

// TestSeqCatchUp verifies the §4 sequence-number mechanism: gaps count
// as missed queries in the event window.
func TestSeqCatchUp(t *testing.T) {
	self := ids.FromUint64(1)
	ps := newPredState(groupSpec{canon: "a = 1", attr: "a"})
	ps.lastSeq = 5

	if missed := ps.observeSeq(6, self); missed != 0 {
		t.Fatalf("consecutive seq should miss 0, got %d", missed)
	}
	if missed := ps.observeSeq(10, self); missed != 3 {
		t.Fatalf("seq 6->10 should miss 3, got %d", missed)
	}
	if ps.lastSeq != 10 {
		t.Fatalf("lastSeq = %d, want 10", ps.lastSeq)
	}
	// learnSeq (child piggyback): every query up to seq was missed.
	if missed := ps.learnSeq(12, self); missed != 2 {
		t.Fatalf("learnSeq 10->12 should miss 2, got %d", missed)
	}
	// Stale information is ignored.
	if missed := ps.learnSeq(4, self); missed != 0 {
		t.Fatalf("stale seq should miss 0, got %d", missed)
	}
}

// TestNpCounting verifies the §6.3 cost aggregate: np counts the
// receiving nodes of the query plane.
func TestNpCounting(t *testing.T) {
	self := ids.FromUint64(1)
	c1, c2, c3 := ids.FromUint64(11), ids.FromUint64(12), ids.FromUint64(13)
	structural := []pastry.BroadcastTarget{{ID: c1, Level: 2}, {ID: c2, Level: 2}, {ID: c3, Level: 2}}

	ps := newPredState(groupSpec{canon: "a = 1", attr: "a"})
	ps.level = 1
	ps.children[c1] = &childState{UpdateSet: []SetEntry{{ID: c1, Level: 2}}, Np: 4}
	ps.children[c2] = &childState{Prune: true}
	ps.children[c3] = &childState{UpdateSet: []SetEntry{{ID: c3, Level: 2}}, Np: 2}
	ps.recompute(structural, 8, self, flatRegion)
	// Children np: 4 + 0 + 2 = 6; self in NO-UPDATE receives queries: +1.
	if ps.np != 7 {
		t.Fatalf("np = %d, want 7", ps.np)
	}
	if ps.unknown != 0 {
		t.Fatalf("unknown = %v, want 0", ps.unknown)
	}
	// An unreported structural child contributes to the unknown mass.
	delete(ps.children, c3)
	ps.recompute(structural, 8, self, flatRegion)
	if ps.unknown != 1 {
		t.Fatalf("unknown = %v, want 1", ps.unknown)
	}
}

// TestGroupSpecRoundTrip checks wire-canon round-tripping, including
// the global pseudo-group.
func TestGroupSpecRoundTrip(t *testing.T) {
	g := testGroup(t)
	back, err := parseGroupSpec(g.canon)
	if err != nil {
		t.Fatal(err)
	}
	if back.canon != g.canon || back.attr != g.attr {
		t.Fatalf("round trip %+v -> %+v", g, back)
	}
	glob := globalGroup("cpu")
	back, err = parseGroupSpec(glob.canon)
	if err != nil {
		t.Fatal(err)
	}
	if back.expr != nil || back.attr != "cpu" {
		t.Fatalf("global round trip: %+v", back)
	}
	if _, err := parseGroupSpec("a = 1 and b = 2"); err == nil {
		t.Fatal("composite predicates are not valid groups")
	}
}

// TestEvalLocal checks group predicate evaluation against a store.
func TestEvalLocal(t *testing.T) {
	g := testGroup(t)
	ps := newPredState(g)
	get := predicate.GetterFunc(func(name string) value.Value {
		if name == "a" {
			return value.Int(1)
		}
		return value.Value{}
	})
	if !ps.evalLocal(get) || !ps.satLocal {
		t.Fatal("a=1 should satisfy and report change")
	}
	if ps.evalLocal(get) {
		t.Fatal("unchanged satisfaction should not report change")
	}
	// Global groups always satisfy.
	gs := newPredState(globalGroup("x"))
	if !gs.evalLocal(get) || !gs.satLocal {
		t.Fatal("global group must always be satisfied")
	}
}
