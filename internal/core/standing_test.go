package core

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/value"
)

// standingConfig shrinks the lease timings so lifecycle behavior is
// observable in a short simulated window.
func standingConfig() Config {
	return Config{
		SubTTL:           3 * time.Second,
		SubRenewInterval: time.Second,
	}
}

// subEntries counts subscription entries across the whole cluster.
func subEntries(nodes []*Node) int {
	total := 0
	for _, n := range nodes {
		total += len(n.Subs())
	}
	return total
}

// subEntriesFor counts cluster-wide subscription entries on one group.
func subEntriesFor(nodes []*Node, group string) int {
	total := 0
	for _, n := range nodes {
		for _, si := range n.Subs() {
			if si.Group == group {
				total++
			}
		}
	}
	return total
}

func mustSubscribe(t *testing.T, n *Node, text string, cb func(Sample)) QueryID {
	t.Helper()
	req, err := ParseRequest(text)
	if err != nil {
		t.Fatal(err)
	}
	sid, err := n.Subscribe(req, cb)
	if err != nil {
		t.Fatal(err)
	}
	return sid
}

// TestStandingBasic drives one subset standing query end to end: the
// install disseminates once, warm epochs report the exact member
// count, and samples arrive once per period.
func TestStandingBasic(t *testing.T) {
	net, nodes := miniCluster(t, 32, standingConfig())
	for i, n := range nodes {
		n.Store().Set("g", value.Bool(i < 5))
	}
	var samples []Sample
	mustSubscribe(t, nodes[0], "count(*) where g = true every 200ms", func(s Sample) {
		samples = append(samples, s)
	})
	net.RunFor(4 * time.Second)
	if len(samples) < 10 {
		t.Fatalf("samples = %d, want ~20", len(samples))
	}
	warm := 0
	for i, s := range samples {
		if i > 0 && s.Epoch != samples[i-1].Epoch+1 {
			t.Fatalf("epoch %d follows %d", s.Epoch, samples[i-1].Epoch)
		}
		if s.ColdStart {
			continue
		}
		warm++
		if v, _ := s.Result.Agg.Value.AsInt(); v != 5 {
			t.Errorf("epoch %d: count = %d, want 5", s.Epoch, v)
		}
		if s.Result.Contributors != 5 {
			t.Errorf("epoch %d: contributors = %d", s.Epoch, s.Result.Contributors)
		}
	}
	if warm < 5 {
		t.Fatalf("warm samples = %d", warm)
	}
	if gap := samples[len(samples)-1].At - samples[len(samples)-2].At; gap < 150*time.Millisecond || gap > 400*time.Millisecond {
		t.Fatalf("sample gap = %v, want ~200ms", gap)
	}
}

// TestStandingTracksAttributeChanges checks that per-epoch local
// re-evaluation picks up membership and value changes without any
// re-installation.
func TestStandingTracksAttributeChanges(t *testing.T) {
	net, nodes := miniCluster(t, 16, standingConfig())
	for i, n := range nodes {
		n.Store().Set("g", value.Bool(i < 4))
		n.Store().Set("load", value.Int(10))
	}
	var last Sample
	mustSubscribe(t, nodes[0], "sum(load) where g = true every 100ms", func(s Sample) { last = s })
	net.RunFor(2 * time.Second)
	if v, _ := last.Result.Agg.Value.AsInt(); v != 40 {
		t.Fatalf("sum = %d, want 40", v)
	}
	// A member's value changes; the next epochs must reflect it.
	nodes[1].Store().Set("load", value.Int(60))
	net.RunFor(time.Second)
	if v, _ := last.Result.Agg.Value.AsInt(); v != 90 {
		t.Fatalf("sum after value change = %d, want 90", v)
	}
	// A node joins the group mid-stream.
	nodes[9].Store().Set("g", value.Bool(true))
	net.RunFor(2 * time.Second)
	if v, _ := last.Result.Agg.Value.AsInt(); v != 100 {
		t.Fatalf("sum after join = %d, want 100", v)
	}
}

// TestStandingCancelMidStream unsubscribes a live stream and verifies
// both that samples stop and that no node retains subscription state.
func TestStandingCancelMidStream(t *testing.T) {
	net, nodes := miniCluster(t, 32, standingConfig())
	for i, n := range nodes {
		n.Store().Set("g", value.Bool(i%3 == 0))
	}
	got := 0
	sid := mustSubscribe(t, nodes[0], "count(*) where g = true every 200ms", func(Sample) { got++ })
	net.RunFor(2 * time.Second)
	if got == 0 {
		t.Fatal("no samples before cancel")
	}
	if subEntries(nodes) == 0 {
		t.Fatal("no subscription state while live")
	}
	nodes[0].Unsubscribe(sid)
	// Let the cancel cascade (one hop per level) and in-flight reports
	// drain.
	net.RunFor(2 * time.Second)
	stopped := got
	net.RunFor(2 * time.Second)
	if got != stopped {
		t.Fatalf("samples kept arriving after unsubscribe: %d -> %d", stopped, got)
	}
	if n := subEntries(nodes); n != 0 {
		t.Fatalf("leaked %d subscription entries after cancel", n)
	}
}

// TestStandingFrontendDeathGC kills the subscribing front-end without
// any teardown protocol: lease renewals stop, the root's subscription
// expires, and every downstream entry is garbage-collected by the idle
// timeout (helped along by cancel-on-unknown-report).
func TestStandingFrontendDeathGC(t *testing.T) {
	net, nodes := miniCluster(t, 32, standingConfig())
	for i, n := range nodes {
		n.Store().Set("g", value.Bool(i%4 == 0))
	}
	mustSubscribe(t, nodes[0], "count(*) where g = true every 200ms", func(Sample) {})
	net.RunFor(2 * time.Second)
	if subEntries(nodes) == 0 {
		t.Fatal("no subscription state while live")
	}
	// Crash the front-end: no unsubscribe, no more renewals.
	nodes[0].Close()
	// SubTTL (3s) plus slack: everything must be gone.
	net.RunFor(8 * time.Second)
	if n := subEntries(nodes[1:]); n != 0 {
		t.Fatalf("leaked %d subscription entries after front-end death", n)
	}
}

// TestStandingCoverFlipReinstall exercises composite standing queries:
// the cover is chosen by size probes at install time, and the periodic
// renewal re-probes and re-installs onto a cheaper cover when relative
// group sizes flip, cancelling the old trees.
func TestStandingCoverFlipReinstall(t *testing.T) {
	net, nodes := miniCluster(t, 32, standingConfig())
	// Phase 1: a is tiny, b is large; the intersection is {0,1,2}.
	for i, n := range nodes {
		n.Store().Set("a", value.Bool(i < 3))
		n.Store().Set("b", value.Bool(i < 20))
	}
	var last Sample
	mustSubscribe(t, nodes[0], "count(*) where a = true and b = true every 200ms",
		func(s Sample) { last = s })
	net.RunFor(3 * time.Second)
	if v, _ := last.Result.Agg.Value.AsInt(); v != 3 {
		t.Fatalf("phase 1 count = %d, want 3", v)
	}
	if subEntriesFor(nodes, "a = true") == 0 {
		t.Fatal("phase 1: expected the subscription on the small group a")
	}
	if subEntriesFor(nodes, "b = true") != 0 {
		t.Fatal("phase 1: cover should not include b")
	}

	// Phase 2: sizes flip (intersection unchanged). Warm b's tree with
	// a few one-shot queries — the usual ambient load — so its status
	// plane adapts and the renewal's size probe sees its real cost.
	for i, n := range nodes {
		n.Store().Set("a", value.Bool(i < 20))
		n.Store().Set("b", value.Bool(i < 3))
	}
	req, err := ParseRequest("count(*) where b = true")
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 6; q++ {
		if res, err := runQuery(t, net, nodes[0], req); err != nil || res.Contributors != 3 {
			t.Fatalf("warm query %d: %v (res %+v)", q, err, res)
		}
		net.RunFor(300 * time.Millisecond)
	}
	// Renewals re-probe every second; give the flip and the old tree's
	// cancel cascade (plus the TTL backstop) time to settle.
	net.RunFor(8 * time.Second)
	if subEntriesFor(nodes, "b = true") == 0 {
		t.Fatal("phase 2: cover should have flipped to b")
	}
	if n := subEntriesFor(nodes, "a = true"); n != 0 {
		t.Fatalf("phase 2: %d stale entries left on a", n)
	}
	if last.ColdStart {
		t.Fatal("stream should be warm again after the flip")
	}
	if v, _ := last.Result.Agg.Value.AsInt(); v != 3 {
		t.Fatalf("phase 2 count = %d, want 3", v)
	}
}

// TestStandingGrouped checks that a grouped standing query streams
// per-key answers that track the group-by attribute.
func TestStandingGrouped(t *testing.T) {
	net, nodes := miniCluster(t, 24, standingConfig())
	for i, n := range nodes {
		n.Store().Set("slice", value.Str([]string{"s0", "s1", "s2"}[i%3]))
	}
	var last Sample
	mustSubscribe(t, nodes[0], "count(*) group by slice every 200ms", func(s Sample) { last = s })
	net.RunFor(3 * time.Second)
	if last.ColdStart {
		t.Fatal("stream still cold after 15 epochs")
	}
	if len(last.Result.Groups) != 3 {
		t.Fatalf("groups = %v", last.Result.Groups)
	}
	for k, r := range last.Result.Groups {
		if v, _ := r.Value.AsInt(); v != 8 {
			t.Errorf("%s = %d, want 8", k, v)
		}
	}
}

// TestStandingEmptyPlan checks that a provably empty standing query
// still ticks (empty samples) without touching the network.
func TestStandingEmptyPlan(t *testing.T) {
	net, nodes := miniCluster(t, 8, standingConfig())
	got := 0
	mustSubscribe(t, nodes[0], "count(*) where a = true and a = false every 100ms",
		func(s Sample) {
			got++
			if s.Result.Contributors != 0 || !s.Result.Stats.ShortCircuit {
				t.Errorf("empty plan sample: %+v", s.Result)
			}
		})
	before := subEntries(nodes)
	net.RunFor(time.Second)
	if got < 5 {
		t.Fatalf("empty-plan samples = %d", got)
	}
	if subEntries(nodes) != before {
		t.Fatal("empty plan must not install network state")
	}
}

// TestSubscribeValidation covers the rejection paths on both sides:
// Subscribe without a period, Execute with one.
func TestSubscribeValidation(t *testing.T) {
	_, nodes := miniCluster(t, 4, standingConfig())
	if _, err := nodes[0].Subscribe(Request{}, func(Sample) {}); err == nil {
		t.Error("invalid spec should fail")
	}
	req, err := ParseRequest("count(*)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].Subscribe(req, func(Sample) {}); err == nil {
		t.Error("subscribe without a period should fail")
	}
	req.Period = time.Second
	done := false
	nodes[0].Execute(req, func(_ Result, err error) {
		done = true
		if err == nil {
			t.Error("one-shot execute of a standing query should fail")
		}
	})
	if !done {
		t.Fatal("execute callback not invoked")
	}
}

// coalescedConfig is standingConfig with a wide Nagle window: half an
// epoch, so per-epoch reports, install refreshes, renewals, and cancels
// routinely share BatchMsg envelopes — the regime where a lost or
// re-ordered cancel would be most visible.
func coalescedConfig() Config {
	cfg := standingConfig()
	cfg.CoalesceWindow = 100 * time.Millisecond
	return cfg
}

// TestStandingCancelMidStreamCoalesced re-runs the mid-stream cancel
// lifecycle with aggressive wire coalescing: a second live subscription
// on the same tree keeps per-epoch EpochReportMsg traffic flowing, so
// the CancelMsg cascade of the unsubscribed query rides in the same
// batches — and must still tear down every entry while the survivor
// keeps streaming correct values.
func TestStandingCancelMidStreamCoalesced(t *testing.T) {
	net, nodes := miniCluster(t, 32, coalescedConfig())
	for i, n := range nodes {
		n.Store().Set("g", value.Bool(i%3 == 0))
	}
	gotA, gotB := 0, 0
	var lastB Sample
	sidA := mustSubscribe(t, nodes[0], "count(*) where g = true every 200ms", func(Sample) { gotA++ })
	mustSubscribe(t, nodes[1], "count(*) where g = true every 200ms", func(s Sample) { gotB++; lastB = s })
	net.RunFor(3 * time.Second)
	if gotA == 0 || gotB == 0 {
		t.Fatalf("no samples before cancel (A=%d B=%d)", gotA, gotB)
	}
	nodes[0].Unsubscribe(sidA)
	// Let the batched cancel cascade and in-flight reports drain.
	net.RunFor(2 * time.Second)
	stoppedA := gotA
	runningB := gotB
	net.RunFor(2 * time.Second)
	if gotA != stoppedA {
		t.Fatalf("cancelled stream kept delivering: %d -> %d", stoppedA, gotA)
	}
	if gotB <= runningB {
		t.Fatal("surviving stream stalled after the other was cancelled")
	}
	if v, _ := lastB.Result.Agg.Value.AsInt(); v != 11 {
		t.Fatalf("survivor count = %d, want 11", v)
	}
	for _, n := range nodes {
		for _, si := range n.Subs() {
			if si.SID == sidA {
				t.Fatalf("node %s leaked cancelled subscription state", n.Self().Short())
			}
		}
	}
}

// TestStandingTTLGCCoalesced crashes the front-end under the same wide
// coalescing window: lease renewals stop, and the TTL GC (helped by the
// batched cancel-on-unknown-report path) must still collect every
// subscription entry even though cancels and epoch reports share wire
// batches.
func TestStandingTTLGCCoalesced(t *testing.T) {
	net, nodes := miniCluster(t, 32, coalescedConfig())
	for i, n := range nodes {
		n.Store().Set("g", value.Bool(i%4 == 0))
	}
	mustSubscribe(t, nodes[0], "count(*) where g = true every 200ms", func(Sample) {})
	net.RunFor(2 * time.Second)
	if subEntries(nodes) == 0 {
		t.Fatal("no subscription state while live")
	}
	nodes[0].Close()
	// SubTTL (3s) plus slack: everything must be gone.
	net.RunFor(8 * time.Second)
	if n := subEntries(nodes[1:]); n != 0 {
		t.Fatalf("leaked %d subscription entries after front-end death under coalescing", n)
	}
}
