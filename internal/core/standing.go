package core

import (
	"fmt"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/simnet"
)

// This file implements standing queries: the push-based continuous
// subsystem that amortizes tree construction and dissemination across
// repeated queries over the same groups. A standing query is installed
// ONCE down the chosen cover's trees (SubscribeMsg to each root,
// InstallMsg down-tree); thereafter every subscribed node recomputes
// its local contribution each epoch and pushes one EpochReportMsg to
// its parent — one message per tree edge per epoch, roughly half the
// cost of re-running the one-shot query, which pays for both the
// downward dissemination and the upward aggregation every round.
//
// Liveness is lease-based: the front-end renews the root every
// SubRenewInterval, renewals cascade down-tree as install refreshes,
// and any node whose lease goes unrenewed for SubTTL silently drops
// its state — a crashed front-end (or a crashed parent) cannot leak
// subscription state. Reports arriving for an unknown subscription are
// answered with CancelMsg, so orphaned children tear down ahead of the
// TTL.

// Sample is one epoch of a standing query delivered to the subscriber.
type Sample struct {
	// Epoch numbers the sample (1-based, per subscription): a delivery
	// counter at the front-end, consecutive by construction.
	Epoch uint64
	// RootEpoch is the newest tree-root epoch counter merged into this
	// sample (the roots tick once per period regardless of delivery).
	// Unlike Epoch it exposes stream faults: a skipped root sample
	// shows as a gap, a duplicate as a repeat, a reordering as a
	// decrease. Zero for provably-empty plans (no network state).
	RootEpoch uint64
	// At is the front-end clock when the sample was delivered.
	At time.Duration
	// Lag is the root-emission-to-delivery delay of the slowest tree
	// in the cover. It compares the two clocks directly, so it is only
	// meaningful on a shared clock (the simulator).
	Lag time.Duration
	// ColdStart marks samples taken before the subscription's
	// contribution pipeline plausibly filled (install dissemination
	// plus one epoch per tree level): series plots and benchmarks
	// should compare warm epochs only. It is re-raised after a cover
	// flip re-installs the subscription.
	ColdStart bool
	// Contributors counts the group members folded into this epoch's
	// aggregate (members missing the query attribute included), summed
	// over the cover's trees — the sample's coverage numerator. It
	// mirrors Result.Contributors.
	Contributors int64
	// Expected sums the cover roots' population estimates for the
	// epoch; Contributors/Expected (see Result.Completeness) is the
	// sample's self-reported completeness under churn.
	Expected float64
	// Result is the epoch's aggregate (Stats carries only the group-by
	// metadata; there is no per-epoch planning).
	Result Result
	// Err is non-nil when the round failed (subscription setup errors;
	// per-epoch delivery has no failure callback).
	Err error
}

// Completeness is Contributors/Expected clamped to [0,1] (1 when
// Expected is unknown): the sample's self-reported coverage.
func (s Sample) Completeness() float64 { return s.Result.Completeness() }

// ---------------------------------------------------------------------
// Node side: the subscription table and the epoch loop

// subKey identifies one subscription entry at a node: a node reached
// through several trees of a composite cover holds one entry per tree.
type subKey struct {
	sid   QueryID
	group string
}

// childReport is the most recent epoch report from one child; reports
// replace (never merge with) their predecessor, so a child skewing
// across its parent's epoch boundary is counted exactly once.
type childReport struct {
	state   aggregate.State
	contrib int64
	epoch   uint64
	at      time.Duration
}

// subState is one standing query's per-(node, group) state.
type subState struct {
	sid     QueryID
	group   groupSpec
	eval    string
	attrKey string
	spec    aggregate.Spec
	groupBy string
	period  time.Duration
	level   int

	// root marks the tree root (reached by overlay routing); it
	// streams SampleMsg to replyTo instead of reporting to a parent.
	root    bool
	parent  ids.ID
	replyTo ids.ID

	epoch   uint64
	reports map[ids.ID]*childReport
	// targets are the children this node currently has installed;
	// kept in sync with the group tree's query target set.
	targets map[ids.ID]bool

	// orphaned marks a subscription whose parent was purged as dead.
	// While orphaned, reports are routed through the overlay to the
	// tree root directly (the pull bypass: the subtree stays in the
	// stream even though its uptree chain is severed), and the next
	// install — from whichever node adopts us on the repaired tree —
	// triggers an eager report so the retained subtree state re-enters
	// the tree path without waiting for the next epoch tick.
	orphaned bool
	// pulled records that at least one orphaned report was routed to
	// the root, so adoption knows to retract the direct copy.
	pulled bool
	// lastNonEmpty records that the previous report carried content, so
	// a batch that goes empty (members re-parented away, group left)
	// sends one final empty report — clearing the parent's buffered
	// copy under replace-not-merge — before the relay goes silent.
	lastNonEmpty bool
	// lastKeys is the previous epoch's report key count, used to size
	// the next epoch's accumulator map up front.
	lastKeys int
	// gen is the newest renewal round seen (see InstallMsg.Gen);
	// installs from older rounds are ignored.
	gen uint64

	lastRenew time.Duration
	lastDown  time.Duration
	tick      simnet.Timer
	// tickFn is the epoch-tick closure, built once per subState so the
	// per-epoch re-arm allocates nothing but the timer record.
	tickFn func()
}

// handleSubscribe installs or renews a subscription at the tree root.
func (n *Node) handleSubscribe(sm SubscribeMsg) {
	if sm.Period <= 0 {
		return
	}
	g, err := n.groupSpecOf(sm.Group)
	if err != nil {
		return
	}
	key := subKey{sm.SID, sm.Group}
	sub, ok := n.subs[key]
	if ok && sm.Gen < sub.gen {
		return
	}
	ps := n.getPred(g)
	ps.setLevel(0)
	ps.hasParent = false
	if !ok {
		sub = &subState{
			sid:     sm.SID,
			group:   g,
			reports: make(map[ids.ID]*childReport),
			targets: make(map[ids.ID]bool),
		}
		n.subs[key] = sub
	}
	if ok && !sub.root && !sub.orphaned {
		// Promoted to root (the tree key moved onto us): retract our
		// contribution from the old parent's path so the root sample
		// and the old chain never carry it simultaneously.
		n.retract(sub, sub.parent)
	}
	if ok && sub.pulled {
		// An orphan pull routed at the tree key delivers to its owner —
		// which is now us. Drop the buffered self-copy, or the root
		// sample would carry this subtree twice (fresh child reports
		// plus the pulled snapshot) until it staled out.
		delete(sub.reports, n.self)
		sub.pulled = false
	}
	sub.root = true
	sub.orphaned = false
	sub.gen = sm.Gen
	if sm.MinEpoch > sub.epoch {
		// Root failover: continue the stream's epoch numbering where
		// the dead root left off.
		sub.epoch = sm.MinEpoch
	}
	sub.replyTo = sm.ReplyTo
	sub.eval = sm.Eval
	sub.attrKey = sm.Attr
	sub.spec = sm.Spec
	sub.groupBy = sm.GroupBy
	sub.period = sm.Period
	sub.level = 0
	sub.lastRenew = n.env.Now()
	if !ok {
		n.armEpoch(sub)
	}
	// Standing load drives the §4 adaptation machinery exactly like
	// query load, so the tree prunes under pure subscription traffic.
	if n.cfg.Mode != ModeGlobal {
		n.recomputeState(ps)
		ps.recordQueryEvent(n.self)
		if ps.runPolicy(n.cfg.Mode, n.cfg.KUpdate, n.cfg.KNoUpdate) {
			n.recomputeState(ps)
		}
		ps.touch(n.env.Now())
	}
	n.pushInstalls(sub, ps, n.refreshDue(sub, !ok))
}

// handleInstall registers (or refreshes) a subscription delivered by a
// tree parent, then continues the dissemination to this node's own
// query targets.
func (n *Node) handleInstall(from ids.ID, im InstallMsg) {
	if im.Period <= 0 {
		return
	}
	g, err := n.groupSpecOf(im.Group)
	if err != nil {
		return
	}
	key := subKey{im.SID, im.Group}
	sub, ok := n.subs[key]
	if ok && im.Gen < sub.gen {
		// A stale renewal round: after a repair, the chains hanging off
		// a dead interior node keep refreshing their old edges until
		// their leases expire — they must not steal children back from
		// the rebuilt tree, nor keep stale leases alive.
		return
	}
	ps := n.getPred(g)
	ps.touch(n.env.Now())
	if ok && im.Gen > sub.gen {
		// A new renewal round re-assigns tree positions: after a root
		// or interior death the rebuilt tree places this node at a
		// different (usually deeper) level, and keeping the old minimum
		// would leave it claiming a stale, oversized region — its old
		// edges would fight the rebuilt tree for children forever.
		ps.setLevel(im.Level)
	} else if ps.level < 0 || im.Level < ps.level {
		ps.setLevel(im.Level)
	}
	if (!im.Jump && (!ps.hasParent || ps.parent != im.ReplyTo)) ||
		(im.Jump && !ps.hasParent) {
		// Same parent-adoption rule as handleQuery: SQP jumps do not
		// re-parent the update plane, but an orphan accepts anyone.
		ps.parent = im.ReplyTo
		ps.hasParent = true
		ps.lastSentValid = false
	}
	if !ok {
		sub = &subState{
			sid:     im.SID,
			group:   g,
			reports: make(map[ids.ID]*childReport),
			targets: make(map[ids.ID]bool),
		}
		n.subs[key] = sub
	}
	// A repaired adoption — the first install after this node's parent
	// was purged as dead, or a round-advancing re-parenting (the tree
	// was rebuilt around us after a root or interior death) — warrants
	// an eager report below: the retained subtree state re-enters the
	// stream immediately instead of at this node's next tick. Fresh
	// installs and mere parent flips between live installers (tree
	// parent vs SQP jump source) do not, so absent churn the install
	// path emits nothing extra and coalescing equivalence is preserved
	// bit for bit.
	reparented := ok && !sub.root && im.Gen > sub.gen && sub.parent != im.ReplyTo
	adopted := sub.orphaned || reparented
	switch {
	case sub.orphaned && sub.pulled:
		// Adopted after pulling directly to the root: retract the
		// direct copy so the tree path is the contribution's only
		// carrier from here on.
		n.retractRouted(sub)
		sub.pulled = false
	case reparented && !sub.orphaned:
		// A round-advancing re-parenting between live carriers (the
		// tree was rebuilt elsewhere): clear our subtree at the old
		// parent so the two rounds' paths never both count us.
		n.retract(sub, sub.parent)
	}
	sub.orphaned = false
	sub.gen = im.Gen
	// A previous root demoted by a moved tree key keeps reporting to
	// the installer that reached it last.
	sub.root = false
	sub.parent = im.ReplyTo
	sub.eval = im.Eval
	sub.attrKey = im.Attr
	sub.spec = im.Spec
	sub.groupBy = im.GroupBy
	sub.period = im.Period
	sub.level = im.Level
	sub.lastRenew = n.env.Now()
	if !ok {
		n.armEpoch(sub)
	}
	if n.cfg.Mode != ModeGlobal {
		n.recomputeState(ps)
		ps.recordQueryEvent(n.self)
		if ps.runPolicy(n.cfg.Mode, n.cfg.KUpdate, n.cfg.KNoUpdate) {
			n.recomputeState(ps)
		}
	}
	if adopted {
		n.sendReport(sub, n.env.Now())
	}
	n.pushInstalls(sub, ps, n.refreshDue(sub, !ok))
	if n.cfg.Mode != ModeGlobal {
		n.maybeSendStatus(ps)
	}
}

// refreshDue decides whether this install receipt should cascade a full
// down-tree refresh (new subscription, or the periodic lease renewal)
// rather than only installing newly adopted targets.
func (n *Node) refreshDue(sub *subState, isNew bool) bool {
	now := n.env.Now()
	if isNew || now-sub.lastDown >= n.cfg.SubRenewInterval {
		sub.lastDown = now
		return true
	}
	return false
}

// subTargets computes the children a subscription should currently be
// installed at — the same set a one-shot query would be forwarded to.
func (n *Node) subTargets(ps *predState, level int) []SetEntry {
	if n.cfg.Mode == ModeGlobal {
		var targets []SetEntry
		for _, bt := range n.structural(level) {
			targets = append(targets, SetEntry{ID: bt.ID, Level: bt.Level})
		}
		return targets
	}
	var targets []SetEntry
	for _, e := range ps.qSet {
		if e.ID != n.self {
			targets = append(targets, e)
		}
	}
	return targets
}

// pushInstalls reconciles a subscription's installed children with the
// current query target set: newcomers are installed immediately and —
// when refresh is set (a renewal-cadence lease refresh) — every current
// target's lease is renewed and departed targets are cancelled.
//
// Departed targets get an explicit CancelMsg ONLY on refresh waves,
// never from the per-message repair reconciles (maybeResyncSubs, the
// per-epoch tick): under churn, target sets flap while the overlay
// heals, and canceling on every flap lets an install wave and a
// cancel-cascade wave chase each other around the tree with the tree's
// whole fan-out as the amplification factor — a self-sustaining message
// explosion. A reconcile instead drops the departed edge silently —
// deleting its buffered report, so any double-count ends with the edge
// — and if the departed child reports again, handleEpochReport rejects
// it with a single cancel, pacing teardown at epoch cadence.
func (n *Node) pushInstalls(sub *subState, ps *predState, refresh bool) {
	targets := n.subTargets(ps, sub.level)
	im := InstallMsg{
		SID:     sub.sid,
		Group:   sub.group.canon,
		Eval:    sub.eval,
		Attr:    sub.attrKey,
		Spec:    sub.spec,
		GroupBy: sub.groupBy,
		Period:  sub.period,
		Gen:     sub.gen,
		ReplyTo: n.self,
	}
	next := make(map[ids.ID]bool, len(targets))
	for _, t := range targets {
		next[t.ID] = true
		if refresh || !sub.targets[t.ID] {
			im.Level = t.Level
			im.Jump = t.Jump
			n.send(t.ID, im)
		}
	}
	for id := range sub.targets {
		if next[id] {
			continue
		}
		if refresh {
			n.send(id, CancelMsg{SID: sub.sid, Group: sub.group.canon})
		}
		delete(sub.reports, id)
	}
	sub.targets = next
}

// syncSubs re-reconciles every subscription of a group after its tree
// state changed (a child pruned, un-pruned, or handed off to the SQP),
// so the subscription tree tracks the adaptive group tree between
// renewals.
func (n *Node) syncSubs(ps *predState) {
	if len(n.subs) == 0 {
		return
	}
	for _, sub := range n.subs {
		if sub.group.canon == ps.group.canon {
			n.pushInstalls(sub, ps, false)
		}
	}
}

// armEpoch schedules the subscription's next epoch tick, aligned to
// the period grid (the next multiple of the period on the node's
// clock). Alignment makes every subscription with the same period tick
// in the same event-loop burst, so Q concurrent standing queries
// sharing a tree edge coalesce their per-epoch reports into one wire
// batch instead of Q staggered messages. It is unconditional —
// independent of CoalesceWindow — so toggling coalescing never shifts
// epoch timing.
func (n *Node) armEpoch(sub *subState) {
	if sub.tickFn == nil {
		sub.tickFn = func() { n.epochTick(sub) }
	}
	d := sub.period - n.env.Now()%sub.period
	n.armFn(d, sub.tickFn, &sub.tick)
}

// epochTick is one epoch at one node: enforce the lease, recompute the
// local contribution, merge the children's latest reports, and push the
// batch one hop up-tree (or to the front-end at the root).
func (n *Node) epochTick(sub *subState) {
	if n.closed {
		return
	}
	key := subKey{sub.sid, sub.group.canon}
	if n.subs[key] != sub {
		return
	}
	now := n.env.Now()
	if now-sub.lastRenew > n.cfg.SubTTL {
		// Lease expired: the front-end (or our parent) is gone. Drop
		// silently; our own children expire the same way, or faster
		// via the cancel-on-unknown-report path.
		n.dropSub(sub, false)
		return
	}
	sub.epoch++
	n.sendReport(sub, now)
	n.armEpoch(sub)
	// Epoch traffic is query traffic for the adaptation policy: record
	// it so trees prune (and statuses flow) under pure standing load.
	// Repair installs are NOT re-derived here: overlay-driven repair is
	// maybeResyncSubs's job (it fires the moment routing state actually
	// changes), and a per-epoch re-derivation turns any oscillation in
	// the adaptive target set into a sustained install/flip war between
	// competing parents — each flip leaving a double-counted report
	// behind for the stale window.
	if n.cfg.Mode != ModeGlobal {
		if ps, ok := n.predLookup(sub.group.canon); ok {
			ps.recordQueryEvent(n.self)
			if ps.runPolicy(n.cfg.Mode, n.cfg.KUpdate, n.cfg.KNoUpdate) {
				n.recomputeState(ps)
				n.maybeSendStatus(ps)
				n.syncSubs(ps)
			}
			ps.touch(now)
		}
	}
}

// sendReport assembles the subscription's current subtree batch — the
// local contribution (if claimed) plus every fresh child report — and
// pushes it one hop up-tree, or streams the root sample. epochTick
// calls it once per epoch; handleInstall also calls it eagerly when a
// node is adopted by a new parent, so a subtree repaired after a crash
// re-enters the stream without waiting out a full epoch of pipeline
// refill (its buffered child reports survive the re-parenting).
func (n *Node) sendReport(sub *subState, now time.Duration) {
	state := aggregate.NewGroupedSized(sub.spec, n.cfg.MaxGroupKeys, sub.lastKeys)
	var contrib int64
	if n.subEval(sub) && n.claimStanding(sub) {
		contrib++
		state.AddKeyed(n.self, n.groupKey(sub.groupBy), n.localValue(sub.attrKey))
	}
	// A child's buffered report expires after two silent epochs: one
	// missed delivery is tolerated (jitter, a lost message), but a
	// child that went quiet — crashed, re-parented elsewhere, or handed
	// off — must stop being counted promptly, or its copy double-counts
	// against the subtree's new path.
	stale := 2 * sub.period
	for id, rep := range sub.reports {
		if now-rep.at > stale {
			delete(sub.reports, id)
			aggregate.Recycle(rep.state)
			continue
		}
		_ = state.Merge(rep.state)
		contrib += rep.contrib
	}
	sub.lastKeys = state.KeyCount()
	if sub.root {
		expected := 0.0
		if ps, ok := n.predLookup(sub.group.canon); ok {
			expected = float64(ps.np) + ps.unknown
		}
		n.send(sub.replyTo, SampleMsg{
			SID:          sub.sid,
			Group:        sub.group.canon,
			Epoch:        sub.epoch,
			At:           now,
			State:        state,
			Contributors: contrib,
			Expected:     expected,
		})
		return
	}
	empty := state.Nodes() == 0 && !state.Truncated() && contrib == 0
	if empty && !sub.lastNonEmpty {
		// Interior hops skip empty batches: a pure relay with nothing
		// to add costs nothing. But a batch that HAD content last time
		// must announce the transition — silently going quiet would
		// leave the parent replaying the stale copy (a subtree whose
		// members re-parented elsewhere would be double-counted for a
		// stale window per tree level). The unsent state goes back to
		// the pool — this skip runs every epoch at sparse relays.
		aggregate.Recycle(state)
		return
	}
	sub.lastNonEmpty = !empty
	np, unknown := 0, 0.0
	if ps, ok := n.predLookup(sub.group.canon); ok {
		np, unknown = ps.np, ps.unknown
	}
	em := EpochReportMsg{
		SID:          sub.sid,
		Group:        sub.group.canon,
		Epoch:        sub.epoch,
		State:        state,
		Contributors: contrib,
		Np:           np,
		Unknown:      unknown,
	}
	if sub.orphaned {
		// The uptree chain is severed (parent purged as dead): pull
		// directly to the tree root through the overlay so the subtree
		// stays in the stream while the tree repairs around us.
		sub.pulled = true
		n.overlay.Route(sub.group.treeKey(), em)
		return
	}
	n.send(sub.parent, em)
}

// retract clears this node's contribution at a previous carrier: an
// empty report replaces — replace-not-merge — whatever partial the old
// path still held, so a re-parented subtree is never counted along two
// paths longer than one delivery.
func (n *Node) retract(sub *subState, to ids.ID) {
	n.send(to, n.emptyReport(sub))
}

// retractRouted clears the direct-to-root copy left by the orphan pull.
func (n *Node) retractRouted(sub *subState) {
	n.overlay.Route(sub.group.treeKey(), n.emptyReport(sub))
}

func (n *Node) emptyReport(sub *subState) EpochReportMsg {
	return EpochReportMsg{
		SID:   sub.sid,
		Group: sub.group.canon,
		Epoch: sub.epoch,
		State: aggregate.NewGrouped(sub.spec, n.cfg.MaxGroupKeys),
	}
}

// subEval evaluates the subscription's full predicate locally.
func (n *Node) subEval(sub *subState) bool {
	eval := sub.eval
	if eval == "" {
		if sub.group.expr == nil {
			return true
		}
		if ps, ok := n.predLookup(sub.group.canon); ok {
			return ps.satLocal
		}
		return sub.group.expr.Eval(n.store)
	}
	e, err := n.parseCached(eval)
	if err != nil {
		return false
	}
	return e.Eval(n.store)
}

// claimStanding reserves this node's per-epoch contribution for exactly
// one tree of a composite cover: the lexicographically smallest group
// among the node's live subscriptions for the SID (the standing analog
// of §6.2's answered-once cache, but stateless and epoch-free).
func (n *Node) claimStanding(sub *subState) bool {
	for k := range n.subs {
		if k.sid == sub.sid && k.group < sub.group.canon {
			return false
		}
	}
	return true
}

// handleEpochReport files a child's per-epoch batch; reports for
// subscriptions this node does not hold are answered with CancelMsg so
// orphans tear down without waiting out the TTL. Routed reports (the
// orphan pull: a severed subtree streaming directly to the tree root)
// are filed the same way but skip the child-cost bookkeeping — the
// sender is not a tree child.
func (n *Node) handleEpochReport(from ids.ID, em EpochReportMsg, routed bool) {
	sub, ok := n.subs[subKey{em.SID, em.Group}]
	if !ok {
		n.send(from, CancelMsg{SID: em.SID, Group: em.Group})
		return
	}
	if !routed && !sub.root && !sub.targets[from] {
		// A report from a child this node no longer installs: the edge
		// was dropped by a reconcile (tree adaptation or churn repair),
		// and filing the report would double-count a subtree that now
		// reaches the root along another path. Reject it — the child
		// tears down or re-parents; if it was dropped by a transient
		// flap, the next reconcile re-installs it. The root is exempt:
		// it files anything (orphan pulls arrive there unannounced).
		n.send(from, CancelMsg{SID: em.SID, Group: em.Group})
		return
	}
	if rep := sub.reports[from]; rep != nil {
		// Replace-not-merge in place: the steady-state epoch stream
		// overwrites the same record instead of allocating one per
		// report, and the displaced state — fully merged into past
		// reports, referenced by nothing — feeds the allocation pool.
		if rep.state != em.State {
			aggregate.Recycle(rep.state)
		}
		*rep = childReport{state: em.State, contrib: em.Contributors, epoch: em.Epoch, at: n.env.Now()}
	} else {
		sub.reports[from] = &childReport{state: em.State, contrib: em.Contributors, epoch: em.Epoch, at: n.env.Now()}
	}
	// Refresh the child's lazily maintained subtree cost, mirroring
	// handleResponse's piggyback path.
	if !routed && n.cfg.Mode != ModeGlobal {
		if ps, psOK := n.predLookup(em.Group); psOK {
			switch cs := ps.children[from]; {
			case cs == nil:
				ps.children[from] = &childState{NpOnly: true, Np: em.Np, Unknown: em.Unknown}
				ps.dirty = true
			case cs.NpOnly || !cs.Prune:
				if cs.Np != em.Np || cs.Unknown != em.Unknown {
					cs.Np, cs.Unknown = em.Np, em.Unknown
					ps.dirty = true
				}
			}
			n.recomputeState(ps)
		}
	}
}

// handleCancel tears a subscription down and propagates the cancel to
// every child this node installed or heard from. Direct cancels are
// parent-scoped: only the subscription's current parent (or, at the
// root, the subscribing front-end) may tear it down, so a node handed
// off across an SQP jump ignores the stale cancel its bypassed old
// parent cascades while the new parent's install is in flight. Routed
// cancels (the front-end addressing the tree root through the overlay)
// are always honored.
func (n *Node) handleCancel(from ids.ID, cm CancelMsg, routed bool) {
	sub, ok := n.subs[subKey{cm.SID, cm.Group}]
	if !ok {
		return
	}
	if !routed && !sub.orphaned {
		// Orphans accept a cancel from anyone: their owner is dead, and
		// the likely sender is the tree root rejecting a pulled report
		// for a subscription that no longer exists.
		owner := sub.parent
		if sub.root {
			owner = sub.replyTo
		}
		if from != owner {
			return
		}
	}
	n.dropSub(sub, true)
}

// dropSub removes one subscription entry; cascade forwards the cancel
// to the node's children.
func (n *Node) dropSub(sub *subState, cascade bool) {
	key := subKey{sub.sid, sub.group.canon}
	if n.subs[key] != sub {
		return
	}
	delete(n.subs, key)
	sub.tick.Stop()
	if !cascade {
		return
	}
	cm := CancelMsg{SID: sub.sid, Group: sub.group.canon}
	for id := range sub.targets {
		n.send(id, cm)
	}
	for id := range sub.reports {
		if !sub.targets[id] {
			n.send(id, cm)
		}
	}
}

// ---------------------------------------------------------------------
// Front-end side: the subscription registry

// feSub is one standing query owned by this front-end.
type feSub struct {
	sid  QueryID
	req  Request
	cb   func(Sample)
	plan queryPlan

	// groups is the currently installed cover; latest/fresh hold each
	// tree's newest SampleMsg and whether it arrived since the last
	// emitted sample; rootOf tracks which node each tree's samples come
	// from, so a root handover re-raises the warm-up marking.
	groups map[string]groupSpec
	latest map[string]SampleMsg
	fresh  map[string]bool
	rootOf map[string]ids.ID

	epoch     uint64
	warmAfter uint64
	// gen is the renewal round counter: bumped on every
	// (re-)plan-and-install, cascaded down-tree in SubscribeMsg and
	// InstallMsg so stale chains lose their children after a repair.
	gen uint64

	probeQIDs   map[QueryID]string
	costs       map[string]float64
	probeCancel func()
	renewCancel func()
	emptyCancel func()
}

// Subscribe installs a standing query from this node: the request's
// cover is installed once down each group tree, and cb is invoked with
// one Sample per Period until Unsubscribe. Like Execute, it must be
// called on the node's event goroutine and the callback runs there.
func (n *Node) Subscribe(req Request, cb func(Sample)) (QueryID, error) {
	return n.fe.subscribe(req, cb)
}

// Unsubscribe cancels a standing query, tearing its subscription state
// down across the trees it was installed on. It returns ErrUnknownSub
// when sid is not a live subscription of this front-end (already
// unsubscribed, or never installed here) — a double-unsubscribe is a
// caller bug worth surfacing, not a silent no-op.
func (n *Node) Unsubscribe(sid QueryID) error {
	return n.fe.unsubscribe(sid)
}

func (fe *frontend) subscribe(req Request, cb func(Sample)) (QueryID, error) {
	n := fe.n
	if err := req.Spec.Validate(); err != nil {
		return QueryID{}, fmt.Errorf("core: invalid aggregation spec: %w", err)
	}
	if req.Attr == "" {
		return QueryID{}, fmt.Errorf("core: empty query attribute")
	}
	if req.Period <= 0 {
		return QueryID{}, fmt.Errorf("%w: standing query needs a period (every clause)", ErrNotStanding)
	}
	plan := buildPlan(req.Attr, req.Pred, n.cfg.MaxCNFClauses)
	plan.groupBy = req.GroupBy
	fs := &feSub{
		sid:    n.nextQID(),
		req:    req,
		cb:     cb,
		plan:   plan,
		groups: make(map[string]groupSpec),
		latest: make(map[string]SampleMsg),
		fresh:  make(map[string]bool),
		rootOf: make(map[string]ids.ID),
		costs:  make(map[string]float64),
	}
	fe.subs[fs.sid] = fs
	if plan.empty {
		// Provably empty: no network state at all, but the stream
		// still ticks so dashboards see the (empty) series.
		fe.armEmptyTick(fs)
		return fs.sid, nil
	}
	fe.subPlanAndInstall(fs)
	fe.armRenew(fs)
	return fs.sid, nil
}

func (fe *frontend) unsubscribe(sid QueryID) error {
	fs, ok := fe.subs[sid]
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownSub, sid)
	}
	delete(fe.subs, sid)
	if fs.renewCancel != nil {
		fs.renewCancel()
	}
	if fs.probeCancel != nil {
		fs.probeCancel()
	}
	if fs.emptyCancel != nil {
		fs.emptyCancel()
	}
	for pqid := range fs.probeQIDs {
		delete(fe.subProbes, pqid)
	}
	for _, g := range fs.groups {
		fe.n.overlay.Route(g.treeKey(), CancelMsg{SID: sid, Group: g.canon})
	}
	return nil
}

// subPlanAndInstall probes composite covers (reusing the §6.3 size
// probes) and installs the chosen one; trivial plans install directly.
// A still-unfinished previous probe round (a response lost or slower
// than the renewal cadence) is abandoned first, so its timeout cannot
// fire into the new round's state.
func (fe *frontend) subPlanAndInstall(fs *feSub) {
	fs.gen++
	if fs.probeCancel != nil {
		fs.probeCancel()
		fs.probeCancel = nil
	}
	for pqid := range fs.probeQIDs {
		delete(fe.subProbes, pqid)
	}
	if fs.plan.singleTrivialCover() {
		fe.setCover(fs, fs.plan.covers[0])
		return
	}
	n := fe.n
	fs.probeQIDs = make(map[QueryID]string)
	now := n.env.Now()
	for _, g := range fs.plan.distinctGroupsOfPlan() {
		if g.expr == nil {
			fs.costs[g.canon] = 2 * n.overlay.EstimateSize()
			continue
		}
		if ce, ok := fe.probeCache[g.canon]; ok && n.cfg.ProbeCacheTTL > 0 && now-ce.at <= n.cfg.ProbeCacheTTL {
			fs.costs[g.canon] = ce.cost
			continue
		}
		pqid := n.nextQID()
		fs.probeQIDs[pqid] = g.canon
		fe.subProbes[pqid] = fs
		n.overlay.Route(g.treeKey(), ProbeMsg{
			QID:     pqid,
			Group:   g.canon,
			Attr:    g.attr,
			ReplyTo: n.self,
		})
	}
	if len(fs.probeQIDs) == 0 {
		fe.setCover(fs, fe.chooseCoverFrom(fs.plan, fs.costs))
		return
	}
	fs.probeCancel = n.env.After(n.cfg.ProbeTimeout, func() {
		for pqid := range fs.probeQIDs {
			delete(fe.subProbes, pqid)
		}
		fs.probeQIDs = nil
		fs.probeCancel = nil
		fe.setCover(fs, fe.chooseCoverFrom(fs.plan, fs.costs))
	})
}

func (fe *frontend) handleSubProbeResp(pr ProbeRespMsg) {
	fs, ok := fe.subProbes[pr.QID]
	if !ok {
		return
	}
	delete(fe.subProbes, pr.QID)
	delete(fs.probeQIDs, pr.QID)
	fs.costs[pr.Group] = pr.Cost
	fe.probeCache[pr.Group] = probeEntry{cost: pr.Cost, at: fe.n.env.Now()}
	if len(fs.probeQIDs) == 0 {
		if fs.probeCancel != nil {
			fs.probeCancel()
			fs.probeCancel = nil
		}
		fe.setCover(fs, fe.chooseCoverFrom(fs.plan, fs.costs))
	}
}

// setCover reconciles the installed cover with the chosen one: dropped
// groups are cancelled, every current group is (re-)subscribed, and a
// cover flip restarts the warm-up marking.
func (fe *frontend) setCover(fs *feSub, cover []groupSpec) {
	n := fe.n
	next := make(map[string]groupSpec, len(cover))
	changed := false
	for _, g := range cover {
		next[g.canon] = g
		if _, ok := fs.groups[g.canon]; !ok {
			changed = true
		}
	}
	for canon, g := range fs.groups {
		if _, ok := next[canon]; !ok {
			changed = true
			n.overlay.Route(g.treeKey(), CancelMsg{SID: fs.sid, Group: canon})
			delete(fs.latest, canon)
			delete(fs.fresh, canon)
			delete(fs.rootOf, canon)
		}
	}
	fs.groups = next
	for _, g := range next {
		eval := fs.plan.evalCanon
		if eval == g.canon {
			eval = ""
		}
		n.overlay.Route(g.treeKey(), SubscribeMsg{
			SID:      fs.sid,
			Group:    g.canon,
			Eval:     eval,
			Attr:     fs.req.Attr,
			Spec:     fs.req.Spec,
			GroupBy:  fs.req.GroupBy,
			Period:   fs.req.Period,
			Gen:      fs.gen,
			MinEpoch: fs.latest[g.canon].Epoch,
			ReplyTo:  n.self,
		})
	}
	if changed {
		fs.warmAfter = fs.epoch + fe.warmupEpochs()
	}
}

// warmupEpochs estimates how many epochs the contribution pipeline
// needs to fill: one per tree level (contributions climb one hop per
// epoch), slack for the install dissemination itself, and one more for
// the stale window in which a formation-time handoff (a member
// re-parented while the tree adapted) can still be double-carried.
func (fe *frontend) warmupEpochs() uint64 {
	depth := uint64(3)
	for est := fe.n.overlay.EstimateSize(); est > 1; est /= ids.Radix {
		depth++
	}
	return depth
}

// armRenew schedules the periodic lease renewal: composite plans
// re-probe and may flip covers; trivial plans just re-route the
// subscription to the (possibly moved) root.
func (fe *frontend) armRenew(fs *feSub) {
	n := fe.n
	fs.renewCancel = n.env.After(n.cfg.SubRenewInterval, func() {
		if n.closed || fe.subs[fs.sid] != fs {
			return
		}
		fe.subPlanAndInstall(fs)
		fe.armRenew(fs)
	})
}

// armEmptyTick streams empty samples for a provably empty plan.
func (fe *frontend) armEmptyTick(fs *feSub) {
	n := fe.n
	fs.emptyCancel = n.env.After(fs.req.Period, func() {
		if n.closed || fe.subs[fs.sid] != fs {
			return
		}
		fs.epoch++
		res := Result{Agg: aggregate.NewGrouped(fs.req.Spec, n.cfg.MaxGroupKeys).Result()}
		res.Stats.ShortCircuit = true
		res.Stats.GroupBy = fs.req.GroupBy
		fs.cb(Sample{Epoch: fs.epoch, At: n.env.Now(), Result: res})
		fe.armEmptyTick(fs)
	})
}

// handleSample consumes a root's per-epoch aggregate, emitting one
// merged Sample to the subscriber when every tree of the cover has
// reported for the epoch.
func (fe *frontend) handleSample(from ids.ID, sm SampleMsg) {
	n := fe.n
	fs, ok := fe.subs[sm.SID]
	if !ok {
		n.send(from, CancelMsg{SID: sm.SID, Group: sm.Group})
		return
	}
	if _, ok := fs.groups[sm.Group]; !ok {
		// A tree from a flipped-away cover is still streaming.
		n.send(from, CancelMsg{SID: sm.SID, Group: sm.Group})
		return
	}
	prevSm, hadSm := fs.latest[sm.Group]
	if hadSm && sm.Epoch <= prevSm.Epoch {
		// A stale or duplicate root epoch: after the tree key moves
		// (a failover or a closer joiner), the demoted root keeps
		// streaming until its lease expires — the takeover root
		// fast-forwarded past it (SubscribeMsg.MinEpoch), so dropping
		// anything at or behind the newest epoch keeps the delivered
		// stream monotone.
		return
	}
	prevRoot, hadRoot := fs.rootOf[sm.Group]
	if (hadRoot && prevRoot != from) || (hadSm && sm.Epoch > prevSm.Epoch+2) {
		// Root handover — or a gap in the root's tick stream (the root
		// crashed and recovered, or the tree went dark long enough to
		// skip epochs): the contribution pipeline refills from scratch
		// either way, so re-raise the ColdStart marking rather than
		// presenting the refill samples as steady-state readings.
		fs.warmAfter = fs.epoch + fe.warmupEpochs()
	}
	fs.rootOf[sm.Group] = from
	fs.latest[sm.Group] = sm
	fs.fresh[sm.Group] = true
	if len(fs.fresh) < len(fs.groups) {
		return
	}
	clear(fs.fresh)
	fs.epoch++
	now := n.env.Now()
	agg := aggregate.NewGrouped(fs.req.Spec, n.cfg.MaxGroupKeys)
	var lag time.Duration
	var rootEpoch uint64
	var contrib int64
	var expected float64
	for canon := range fs.groups {
		s, ok := fs.latest[canon]
		if !ok || s.State == nil {
			continue
		}
		_ = agg.Merge(s.State)
		contrib += s.Contributors
		expected += s.Expected
		if l := now - s.At; l > lag {
			lag = l
		}
		if s.Epoch > rootEpoch {
			rootEpoch = s.Epoch
		}
	}
	res := Result{Agg: agg.Result(), Contributors: contrib, Expected: expected}
	res.Stats.GroupBy = fs.req.GroupBy
	if fs.req.GroupBy != "" {
		res.Groups = agg.Results()
		res.Truncated = agg.Truncated()
		res.Stats.GroupKeys = agg.KeyCount()
	}
	fs.cb(Sample{
		Epoch:        fs.epoch,
		RootEpoch:    rootEpoch,
		At:           now,
		Lag:          lag,
		ColdStart:    fs.epoch <= fs.warmAfter,
		Contributors: contrib,
		Expected:     expected,
		Result:       res,
	})
}
