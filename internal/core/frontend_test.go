package core

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/simnet"
)

// miniCluster builds a small simulated deployment directly (without the
// cluster package, which would be an import cycle here).
func miniCluster(t *testing.T, n int, cfg Config) (*simnet.Network, []*Node) {
	t.Helper()
	net := simnet.New(simnet.Options{Seed: 7})
	members := make([]ids.ID, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		members[i] = ids.FromUint64(uint64(i*2654435761 + 1))
	}
	oracle := pastry.NewOracle(members)
	for i, id := range members {
		env := net.AddNode(id)
		nodes[i] = NewNode(env, cfg, pastry.Config{})
		env.BindHandler(nodes[i])
		oracle.Fill(nodes[i].Overlay())
	}
	return net, nodes
}

func runQuery(t *testing.T, net *simnet.Network, n *Node, req Request) (Result, error) {
	t.Helper()
	var (
		res  Result
		err  error
		done bool
	)
	n.Execute(req, func(r Result, e error) { res, err, done = r, e, true })
	net.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("query did not complete")
	}
	return res, err
}

func TestExecuteValidation(t *testing.T) {
	net, nodes := miniCluster(t, 4, Config{})
	_ = net
	called := false
	nodes[0].Execute(Request{Attr: "x"}, func(_ Result, err error) {
		called = true
		if err == nil {
			t.Error("invalid spec should error")
		}
	})
	if !called {
		t.Fatal("callback not invoked")
	}
	called = false
	nodes[0].Execute(Request{Spec: aggregate.Spec{Kind: aggregate.KindSum}}, func(_ Result, err error) {
		called = true
		if err == nil {
			t.Error("empty attribute should error")
		}
	})
	if !called {
		t.Fatal("callback not invoked")
	}
}

func TestConcurrentFrontEndQueries(t *testing.T) {
	net, nodes := miniCluster(t, 32, Config{})
	for i, n := range nodes {
		n.Store().SetInt("v", int64(i))
		n.Store().SetBool("even", i%2 == 0)
	}
	finished := 0
	want := map[int]int64{}
	check := func(slot int, expect int64) func(Result, error) {
		want[slot] = expect
		return func(r Result, err error) {
			if err != nil {
				t.Errorf("slot %d: %v", slot, err)
			}
			if v, _ := r.Agg.Value.AsInt(); v != want[slot] {
				t.Errorf("slot %d: got %d want %d", slot, v, want[slot])
			}
			finished++
		}
	}
	sum := int64(0)
	evens := int64(0)
	for i := range nodes {
		sum += int64(i)
		if i%2 == 0 {
			evens++
		}
	}
	nodes[0].Execute(Request{Attr: "v", Spec: aggregate.Spec{Kind: aggregate.KindSum}}, check(0, sum))
	nodes[0].Execute(Request{
		Attr: "*", Spec: aggregate.Spec{Kind: aggregate.KindCount},
		Pred: predicate.MustParse("even = true"),
	}, check(1, evens))
	nodes[0].Execute(Request{Attr: "v", Spec: aggregate.Spec{Kind: aggregate.KindMax}}, check(2, int64(len(nodes)-1)))
	net.RunWhile(func() bool { return finished < 3 })
	if finished != 3 {
		t.Fatalf("finished = %d", finished)
	}
}

// TestProbeTimeoutFallsBack: when a probe target never answers (we
// point one group at a tree whose root is down), planning proceeds with
// conservative costs after ProbeTimeout.
func TestProbeTimeoutFallsBack(t *testing.T) {
	net, nodes := miniCluster(t, 24, Config{
		ProbeTimeout: 100 * time.Millisecond,
		QueryTimeout: 3 * time.Second,
		ChildTimeout: 300 * time.Millisecond,
	})
	for i, n := range nodes {
		n.Store().SetBool("x", i%2 == 0)
		n.Store().SetBool("y", i%3 == 0)
	}
	// Down the root of the y-tree so its probe (and sub-query) is lost.
	oracle := pastry.NewOracle(collectIDs(nodes))
	yRoot := oracle.Owner(ids.FromKey("y"))
	if yRoot == nodes[0].Self() {
		t.Skip("front-end is the y-root under this seed")
	}
	net.SetDown(yRoot, true)

	req := Request{
		Attr: "*",
		Spec: aggregate.Spec{Kind: aggregate.KindCount},
		Pred: predicate.MustParse("x = true and y = true"),
	}
	res, err := runQuery(t, net, nodes[0], req)
	if err != nil {
		t.Fatal(err)
	}
	// The probe for y timed out; the planner must still have chosen a
	// cover and produced an answer from the x tree.
	if len(res.Stats.Chosen) != 1 {
		t.Fatalf("chosen = %v", res.Stats.Chosen)
	}
	if res.Stats.Chosen[0] != "x = true" {
		// The y-tree is dead, so only the x cover can answer; if y was
		// chosen the query must have timed out empty.
		t.Logf("planner chose %v with dead y-root (acceptable but empty)", res.Stats.Chosen)
	}
}

func collectIDs(nodes []*Node) []ids.ID {
	out := make([]ids.ID, len(nodes))
	for i, n := range nodes {
		out[i] = n.Self()
	}
	return out
}

// TestStateGC: idle NO-UPDATE predicate state is collected after
// StateTTL (§4 "State Maintenance").
func TestStateGC(t *testing.T) {
	net, nodes := miniCluster(t, 16, Config{
		StateTTL: 2 * time.Second,
		SeenTTL:  2 * time.Second,
	})
	for i, n := range nodes {
		n.Store().SetBool("g", i < 4)
	}
	req := Request{
		Attr: "*", Spec: aggregate.Spec{Kind: aggregate.KindCount},
		Pred: predicate.MustParse("g = true"),
	}
	if res, err := runQuery(t, net, nodes[0], req); err != nil {
		t.Fatal(err)
	} else if v, _ := res.Agg.Value.AsInt(); v != 4 {
		t.Fatalf("count = %d", v)
	}
	withState := 0
	for _, n := range nodes {
		if len(n.preds) > 0 {
			withState++
		}
	}
	if withState == 0 {
		t.Fatal("no node holds predicate state after a query")
	}
	// Long quiet period: state must be garbage collected. (Nodes in
	// UPDATE keep state; after churnless queries most nodes settle to
	// either PRUNE/UPDATE or NO-UPDATE. NO-UPDATE state must go.)
	net.RunFor(time.Minute)
	for _, n := range nodes {
		for canon, ps := range n.preds {
			if !ps.update {
				t.Fatalf("idle NO-UPDATE state %q survived GC", canon)
			}
		}
	}
	// Queries still work after GC (trees rebuild lazily).
	if res, err := runQuery(t, net, nodes[1], req); err != nil {
		t.Fatal(err)
	} else if v, _ := res.Agg.Value.AsInt(); v != 4 {
		t.Fatalf("post-GC count = %d", v)
	}
}

// TestSeenCacheExpiry: answered query IDs are dropped after SeenTTL so
// memory does not grow without bound.
func TestSeenCacheExpiry(t *testing.T) {
	net, nodes := miniCluster(t, 8, Config{SeenTTL: time.Second})
	for _, n := range nodes {
		n.Store().SetInt("a", 1)
	}
	req := Request{Attr: "a", Spec: aggregate.Spec{Kind: aggregate.KindSum}}
	for i := 0; i < 3; i++ {
		if _, err := runQuery(t, net, nodes[0], req); err != nil {
			t.Fatal(err)
		}
	}
	net.RunFor(30 * time.Second)
	for i, n := range nodes {
		if len(n.seen) != 0 || len(n.answered) != 0 {
			t.Fatalf("node %d: seen=%d answered=%d after TTL", i, len(n.seen), len(n.answered))
		}
	}
}

// TestProbeCache: with a cache TTL set, repeated composite queries skip
// re-probing.
func TestProbeCache(t *testing.T) {
	net, nodes := miniCluster(t, 16, Config{ProbeCacheTTL: time.Minute})
	for i, n := range nodes {
		n.Store().SetBool("x", i%2 == 0)
		n.Store().SetBool("y", i%4 == 0)
	}
	req := Request{
		Attr: "*", Spec: aggregate.Spec{Kind: aggregate.KindCount},
		Pred: predicate.MustParse("x = true and y = true"),
	}
	res1, err := runQuery(t, net, nodes[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Probed == 0 {
		t.Fatal("first composite query should probe")
	}
	res2, err := runQuery(t, net, nodes[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Probed != 0 {
		t.Fatalf("second query should hit the probe cache, probed %d", res2.Stats.Probed)
	}
	if v, _ := res2.Agg.Value.AsInt(); v != 4 {
		t.Fatalf("count = %d", v)
	}
}
