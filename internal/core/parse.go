package core

import (
	"fmt"
	"strings"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/predicate"
)

// parseRequestText parses the front-end query language:
//
//	[select] <agg>(<attr>) [where <predicate>]
//
// Examples:
//
//	count(*) where service_x = true
//	select max(cpu_usage) where service_x = true and apache = true
//	avg(mem_util)
//	top3(load) where (service_x = true) and (apache = true)
func parseRequestText(s string) (Request, error) {
	text := strings.TrimSpace(s)
	if text == "" {
		return Request{}, fmt.Errorf("core: empty query")
	}
	lower := strings.ToLower(text)
	if strings.HasPrefix(lower, "select") && (len(text) == 6 || text[6] == ' ' || text[6] == '\t') {
		text = strings.TrimSpace(text[6:])
		lower = strings.ToLower(text)
	}

	open := strings.IndexByte(text, '(')
	if open < 0 {
		return Request{}, fmt.Errorf("core: expected <agg>(<attr>) in %q", s)
	}
	closeIdx := strings.IndexByte(text[open:], ')')
	if closeIdx < 0 {
		return Request{}, fmt.Errorf("core: missing ')' in %q", s)
	}
	closeIdx += open

	spec, err := aggregate.ParseSpec(strings.TrimSpace(text[:open]))
	if err != nil {
		return Request{}, err
	}
	attrName := strings.TrimSpace(text[open+1 : closeIdx])
	if attrName == "" {
		return Request{}, fmt.Errorf("core: empty attribute in %q", s)
	}

	rest := strings.TrimSpace(text[closeIdx+1:])
	var pred predicate.Expr
	if rest != "" {
		lowRest := strings.ToLower(rest)
		if !strings.HasPrefix(lowRest, "where") {
			return Request{}, fmt.Errorf("core: expected 'where', got %q", rest)
		}
		predText := strings.TrimSpace(rest[len("where"):])
		if predText == "" {
			return Request{}, fmt.Errorf("core: empty predicate in %q", s)
		}
		pred, err = predicate.ParseExpr(predText)
		if err != nil {
			return Request{}, err
		}
	}
	return Request{Attr: attrName, Spec: spec, Pred: pred}, nil
}
