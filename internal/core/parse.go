package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/predicate"
)

// parseRequestText parses the front-end query language:
//
//	[select] <agg>(<attr>) [group by <attr>] [where <predicate>] [every <duration>]
//
// The group-by and every clauses may appear anywhere relative to the
// where clause. An every clause makes the request a standing query
// (Request.Period > 0), run via Subscribe rather than Execute.
// Examples:
//
//	count(*) where service_x = true
//	select max(cpu_usage) where service_x = true and apache = true
//	avg(mem_util) group by slice where apache = true
//	count(*) where apache = true group by os
//	top3(load) where (service_x = true) and (apache = true)
//	avg(load) where group = db every 2s
//	avg(mem_util) group by slice every 500ms
//	quantile(load, 0.99) group by slice every 2s
//	p95(load) where apache = true
//	dcount(os) every 2s
//	topkeys(os, 4) group by site
func parseRequestText(s string) (Request, error) {
	text := strings.TrimSpace(s)
	if text == "" {
		return Request{}, fmt.Errorf("core: empty query")
	}
	lower := strings.ToLower(text)
	if strings.HasPrefix(lower, "select") && (len(text) == 6 || text[6] == ' ' || text[6] == '\t') {
		text = strings.TrimSpace(text[6:])
		lower = strings.ToLower(text)
	}

	open := strings.IndexByte(text, '(')
	if open < 0 {
		return Request{}, fmt.Errorf("core: expected <agg>(<attr>) in %q", s)
	}
	closeIdx := strings.IndexByte(text[open:], ')')
	if closeIdx < 0 {
		return Request{}, fmt.Errorf("core: missing ')' in %q", s)
	}
	closeIdx += open

	// Two-argument forms — quantile(attr, q), topkeys(attr, k) — carry
	// the parameter after a comma; everything else takes a bare attr.
	attrName := strings.TrimSpace(text[open+1 : closeIdx])
	arg := ""
	if comma := strings.IndexByte(attrName, ','); comma >= 0 {
		arg = strings.TrimSpace(attrName[comma+1:])
		attrName = strings.TrimSpace(attrName[:comma])
		if arg == "" || strings.ContainsRune(arg, ',') {
			return Request{}, fmt.Errorf("core: bad aggregate argument list in %q", s)
		}
	}
	spec, err := aggregate.ParseSpecArg(strings.TrimSpace(text[:open]), arg)
	if err != nil {
		return Request{}, err
	}
	if attrName == "" {
		return Request{}, fmt.Errorf("core: empty attribute in %q", s)
	}

	rest := strings.TrimSpace(text[closeIdx+1:])
	rest, period, err := cutEvery(rest)
	if err != nil {
		return Request{}, err
	}
	rest, groupBy, err := cutGroupBy(rest)
	if err != nil {
		return Request{}, err
	}
	var pred predicate.Expr
	if rest != "" {
		lowRest := strings.ToLower(rest)
		if !strings.HasPrefix(lowRest, "where") {
			return Request{}, fmt.Errorf("core: expected 'where', got %q", rest)
		}
		predText := strings.TrimSpace(rest[len("where"):])
		if predText == "" {
			return Request{}, fmt.Errorf("core: empty predicate in %q", s)
		}
		pred, err = predicate.ParseExpr(predText)
		if err != nil {
			return Request{}, err
		}
	}
	return Request{Attr: attrName, Spec: spec, Pred: pred, GroupBy: groupBy, Period: period}, nil
}

// cutEvery extracts an optional `every <duration>` clause (a standing
// query's epoch period), wherever it appears relative to the where and
// group-by clauses, returning the remaining text with the clause
// removed. An "every" token not followed by something duration-shaped
// (e.g. the attribute name in `where every = 1`) is left alone.
func cutEvery(s string) (rest string, period time.Duration, err error) {
	found := false
	toks := tokenize(s)
	for i := 0; i < len(toks); i++ {
		if !strings.EqualFold(toks[i].text, "every") {
			continue
		}
		if i+1 >= len(toks) {
			// A trailing "every" is an ordinary value or attribute
			// token (`where slice = every`, `group by every`), not a
			// clause; a genuinely dangling clause still fails in the
			// where-clause parse downstream.
			continue
		}
		next := toks[i+1].text
		if !strings.ContainsAny(next[:1], "0123456789.+-") {
			// Not a clause: "every" used as an attribute name or literal.
			continue
		}
		d, perr := time.ParseDuration(next)
		if perr != nil {
			return "", 0, fmt.Errorf("core: bad every duration %q", next)
		}
		if d <= 0 {
			return "", 0, fmt.Errorf("core: every duration must be positive, got %q", next)
		}
		if found {
			return "", 0, fmt.Errorf("core: duplicate every clause in %q", s)
		}
		found = true
		period = d
		// Splice the clause out by byte offsets (see cutGroupBy) and
		// rescan from the start so a duplicate clause is rejected.
		before := s[:toks[i].start]
		after := ""
		if i+2 < len(toks) {
			after = s[toks[i+2].start:]
		}
		s = strings.TrimSpace(strings.TrimSpace(before) + " " + after)
		toks = tokenize(s)
		i = -1
	}
	return strings.TrimSpace(s), period, nil
}

// cutGroupBy extracts an optional `group by <attr>` clause from the
// text following the aggregate, wherever it appears relative to the
// where clause, returning the remaining text with the clause removed.
func cutGroupBy(s string) (rest, groupBy string, err error) {
	toks := tokenize(s)
	for i, t := range toks {
		if !strings.EqualFold(t.text, "group") {
			continue
		}
		if i+1 >= len(toks) || !strings.EqualFold(toks[i+1].text, "by") {
			// A bare "group" token is a legitimate attribute name or
			// literal in the predicate, not a clause.
			continue
		}
		if i+2 >= len(toks) {
			return "", "", fmt.Errorf("core: group by needs an attribute in %q", s)
		}
		key := toks[i+2].text
		if !validGroupKey(key) {
			return "", "", fmt.Errorf("core: bad group by attribute %q", key)
		}
		// Splice the clause out by byte offsets, preserving the
		// predicate text exactly as written.
		before := s[:toks[i].start]
		after := ""
		if i+3 < len(toks) {
			after = s[toks[i+3].start:]
		}
		rest = strings.TrimSpace(strings.TrimSpace(before) + " " + after)
		return rest, key, nil
	}
	return strings.TrimSpace(s), "", nil
}

// token is one whitespace-delimited word plus its byte offset. A quoted
// span (predicate string literal) extends its token through any spaces
// it contains, so clause keywords inside quotes are never mistaken for
// a group-by clause.
type token struct {
	text  string
	start int
}

func tokenize(s string) []token {
	var out []token
	i := 0
	for i < len(s) {
		if s[i] == ' ' || s[i] == '\t' {
			i++
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			if q := s[j]; q == '"' || q == '\'' {
				j++
				for j < len(s) && s[j] != q {
					j++
				}
				if j < len(s) {
					j++
				}
				continue
			}
			j++
		}
		out = append(out, token{text: s[i:j], start: i})
		i = j
	}
	return out
}

// validGroupKey accepts attribute-name identifiers; grouping by "*" or
// by predicate punctuation is rejected.
func validGroupKey(key string) bool {
	if key == "" || key == "*" {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}
