package core

import "errors"

// Typed sentinels for the public query boundary. Every failure a caller
// can branch on is wrapped around one of these, so call sites test with
// errors.Is instead of matching message strings:
//
//	if errors.Is(err, core.ErrParse) { ... }
//
// The root moara package re-exports them under the same names.
var (
	// ErrParse wraps every query-language parse failure (bad syntax,
	// unknown aggregate, malformed predicate, bad every-duration).
	ErrParse = errors.New("moara: parse error")

	// ErrNoMembers marks a request issued from a node that cannot reach
	// the cluster: the origin is down or the deployment has no live
	// members to route through. A query over an empty *group* is not an
	// error — it returns an empty Result.
	ErrNoMembers = errors.New("moara: no live members reachable")

	// ErrNotStanding marks a Subscribe of a request with no period: a
	// standing query needs an `every <duration>` clause.
	ErrNotStanding = errors.New("moara: not a standing query (missing 'every' clause)")

	// ErrStandingOnly marks an Execute/Query of a request that carries a
	// period: standing queries run via Subscribe, not Execute.
	ErrStandingOnly = errors.New("moara: standing query must run via Subscribe")

	// ErrUnknownSub marks an Unsubscribe (or renewal) naming a SubID
	// this front-end does not hold — already torn down, or never
	// installed here.
	ErrUnknownSub = errors.New("moara: unknown subscription")

	// ErrOverload is returned by the query-service admission layer when
	// a tenant's token bucket is exhausted or the service queue is at
	// capacity; the request was shed, not executed.
	ErrOverload = errors.New("moara: overloaded (request shed by admission control)")
)
