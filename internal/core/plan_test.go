package core

import (
	"sort"
	"strings"
	"testing"

	"github.com/moara/moara/internal/predicate"
)

func mustPlan(t *testing.T, predText, attr string) queryPlan {
	t.Helper()
	var pred predicate.Expr
	if predText != "" {
		pred = predicate.MustParse(predText)
	}
	return buildPlan(attr, pred, 0)
}

func coverSet(p queryPlan) []string {
	out := make([]string, 0, len(p.covers))
	for _, c := range p.covers {
		keys := make([]string, len(c))
		for i, g := range c {
			keys[i] = g.canon
		}
		sort.Strings(keys)
		out = append(out, strings.Join(keys, "+"))
	}
	sort.Strings(out)
	return out
}

func TestPlanGlobal(t *testing.T) {
	p := mustPlan(t, "", "cpu")
	if len(p.covers) != 1 || len(p.covers[0]) != 1 || p.covers[0][0].expr != nil {
		t.Fatalf("global plan: %v", coverSet(p))
	}
	if !p.singleTrivialCover() {
		t.Fatal("global plan should skip probing")
	}
}

func TestPlanSimple(t *testing.T) {
	p := mustPlan(t, "x = true", "cpu")
	if got := coverSet(p); len(got) != 1 || got[0] != "x = true" {
		t.Fatalf("simple plan: %v", got)
	}
}

// TestPlanIntersection mirrors §6.2: each conjunct is a candidate
// cover; the probe phase picks the cheaper one.
func TestPlanIntersection(t *testing.T) {
	p := mustPlan(t, "x = true and y = true", "cpu")
	got := coverSet(p)
	want := []string{"x = true", "y = true"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("intersection covers: %v", got)
	}
}

// TestPlanUnion: a disjunction is a single cover containing all groups.
func TestPlanUnion(t *testing.T) {
	p := mustPlan(t, "x = true or y = true", "cpu")
	got := coverSet(p)
	if len(got) != 1 || got[0] != "x = true+y = true" {
		t.Fatalf("union covers: %v", got)
	}
}

// TestPlanFig6 replays the paper's Fig. 6 example: ((A or B) and
// (A or C)) or D rewrites to CNF (A or B or D) and (A or C or D),
// giving two covers.
func TestPlanFig6(t *testing.T) {
	p := mustPlan(t, "((a = 1 or b = 1) and (a = 1 or c = 1)) or d = 1", "cpu")
	got := coverSet(p)
	want := []string{"a = 1+b = 1+d = 1", "a = 1+c = 1+d = 1"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Fig. 6 covers: %v, want %v", got, want)
	}
}

// TestPlanDisjointShortCircuit: (A and B) with A ∩ B = ∅ resolves to
// the empty result without touching the network (Fig. 7 row 1).
func TestPlanDisjointShortCircuit(t *testing.T) {
	p := mustPlan(t, "cpu < 10 and cpu > 90", "mem")
	if !p.empty {
		t.Fatalf("disjoint intersection should be empty, covers %v", coverSet(p))
	}
}

// TestPlanSubsetReduction: within an OR-clause a subset term is
// dropped (Fig. 7 rows 3-4).
func TestPlanSubsetReduction(t *testing.T) {
	p := mustPlan(t, "cpu < 20 or cpu < 50", "mem")
	got := coverSet(p)
	if len(got) != 1 || got[0] != "cpu < 50" {
		t.Fatalf("subset reduction: %v", got)
	}
}

// TestPlanEquivalenceDedup: equal groups collapse (Fig. 7 row 2).
func TestPlanEquivalenceDedup(t *testing.T) {
	p := mustPlan(t, "cpu < 50 or cpu < 50", "mem")
	got := coverSet(p)
	if len(got) != 1 || got[0] != "cpu < 50" {
		t.Fatalf("equivalence dedup: %v", got)
	}
}

// TestPlanComplementClauseIsUniverse: (A or not-A) covers everything,
// so the cover degenerates to the global pseudo-group.
func TestPlanComplementClauseIsUniverse(t *testing.T) {
	p := mustPlan(t, "(cpu < 50 or cpu >= 50) and mem = 1", "disk")
	got := coverSet(p)
	// Two covers: the universal clause (global tree) and {mem = 1}; the
	// probe phase will choose {mem = 1} as cheaper in practice.
	found := false
	for _, c := range got {
		if strings.HasPrefix(c, globalGroupPrefix) {
			found = true
		}
	}
	if !found {
		t.Fatalf("universal clause should produce a global cover: %v", got)
	}
}

// TestPlanNotRules exercises the implicit-not optimizations of §6.3:
// (A or C) and B with C = not B reduces C away.
func TestPlanNotRules(t *testing.T) {
	p := mustPlan(t, "(a = 1 or cpu >= 50) and cpu < 50", "mem")
	got := coverSet(p)
	want := []string{"a = 1", "cpu < 50"}
	sort.Strings(want)
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("not-rule covers: %v, want %v", got, want)
	}
}

// TestPlanFallbackOnCNFBlowup: pathological predicates fall back to
// querying every mentioned group (still a sound cover).
func TestPlanFallbackOnCNFBlowup(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 14; i++ {
		if i > 0 {
			sb.WriteString(" or ")
		}
		sb.WriteString("(a = 1 and b = 2)")
	}
	// Build a genuinely exploding or-of-ands with distinct attrs.
	terms := make([]string, 0, 14)
	for i := 0; i < 14; i++ {
		terms = append(terms, "(x"+string(rune('a'+i))+" = 1 and y"+string(rune('a'+i))+" = 1)")
	}
	pred := strings.Join(terms, " or ")
	p := buildPlan("cpu", predicate.MustParse(pred), 64)
	if !p.fellBack {
		t.Fatalf("expected CNF fallback, covers=%d", len(p.covers))
	}
	if len(p.covers) != 1 || len(p.covers[0]) != 28 {
		t.Fatalf("fallback should query all 28 groups, got %v", coverSet(p))
	}
}

// TestPlanEvalCanonReparses: the evaluation predicate shipped to nodes
// must parse back.
func TestPlanEvalCanonReparses(t *testing.T) {
	p := mustPlan(t, "(a = 1 or b = 2) and c != 3", "cpu")
	if p.evalCanon == "" {
		t.Fatal("composite plan needs an eval predicate")
	}
	if _, err := predicate.ParseExpr(p.evalCanon); err != nil {
		t.Fatalf("eval canon %q does not reparse: %v", p.evalCanon, err)
	}
}
