package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/predicate"
)

// globalGroupPrefix marks the synthetic "all nodes" group used when a
// query has no predicate: the tree is keyed by the query attribute and
// never prunes, which is exactly the paper's default global aggregation.
const globalGroupPrefix = "*:"

// groupSpec describes one group: a simple predicate, or the global
// pseudo-group for an attribute.
type groupSpec struct {
	canon string
	attr  string           // tree attribute (hashes to the tree key)
	expr  predicate.Expr   // nil for the global pseudo-group
	sim   predicate.Simple // valid when expr != nil
}

// globalGroup builds the pseudo-group spanning all nodes for attr.
func globalGroup(attr string) groupSpec {
	return groupSpec{canon: globalGroupPrefix + attr, attr: attr}
}

// simpleGroup builds the group named by one simple predicate.
func simpleGroup(s predicate.Simple) groupSpec {
	return groupSpec{canon: s.Canon(), attr: s.Attr, expr: s, sim: s}
}

// parseGroupSpec reconstructs a groupSpec from its canonical wire form.
func parseGroupSpec(canon string) (groupSpec, error) {
	if attr, ok := strings.CutPrefix(canon, globalGroupPrefix); ok {
		return globalGroup(attr), nil
	}
	e, err := predicate.ParseExpr(canon)
	if err != nil {
		return groupSpec{}, fmt.Errorf("core: bad group %q: %w", canon, err)
	}
	s, ok := e.(predicate.Simple)
	if !ok {
		return groupSpec{}, fmt.Errorf("core: group %q is not a simple predicate", canon)
	}
	return simpleGroup(s), nil
}

// treeKey returns the DHT key of the group's aggregation tree: the MD5
// hash of the group attribute (§3.2).
func (g groupSpec) treeKey() ids.ID { return ids.FromKey(g.attr) }

// eventKind is one entry of the adaptation policy's sliding window.
type eventKind uint8

const (
	// evQueryIn: a query was processed while this node's updateSet
	// contained its own ID (the paper's qs counter).
	evQueryIn eventKind = iota
	// evQueryOut: a query was processed (anywhere in the system) while
	// this node's updateSet did not contain its ID (qn).
	evQueryOut
	// evChange: sat toggled or the updateSet changed (c).
	evChange
)

// childState is the last status a child reported for one group.
// NpOnly entries carry cost information piggybacked on query responses
// (§6.3) from children that have never sent a status update: the child
// must still receive every query, but its subtree cost is known.
type childState struct {
	Prune     bool
	UpdateSet []SetEntry
	Np        int
	Unknown   float64
	NpOnly    bool
	// mark is recompute's structural-membership pass stamp (replaces a
	// per-call set allocation on the epoch-report hot path).
	mark int
}

// predState is the per-(node, group) state of §4 and §5.
type predState struct {
	group groupSpec

	// level is this node's depth in the group tree's broadcast
	// structure, learned from the first query received; -1 = unknown.
	level int
	// parent is the node that forwards queries to us for this group.
	parent    ids.ID
	hasParent bool

	// children holds the last reported status per child (structural or
	// adopted). Structural children with no entry are treated as
	// NO-PRUNE with updateSet {child}, per Procedure 1's default.
	children map[ids.ID]*childState

	satLocal bool
	sat      bool
	update   bool
	prune    bool

	// qSet is the set of nodes queries are forwarded to (§5),
	// including self when the local predicate holds.
	qSet []SetEntry
	// updateSet is what UPDATE mode advertises to the parent: qSet if
	// |qSet| < threshold, else {self}.
	updateSet []SetEntry

	lastSentValid bool
	lastSentPrune bool
	lastSentSet   []SetEntry

	// events is the sliding window (newest last) feeding the policy.
	events []eventKind
	// lastSeq is the newest query sequence number observed, directly
	// or via child status piggybacks.
	lastSeq uint64
	// seqCounter allocates sequence numbers (root only).
	seqCounter uint64

	// np is the subtree's NO-PRUNE (query-receiving) node count;
	// unknown estimates the population of stateless regions.
	np      int
	unknown float64

	lastActive time.Duration

	// Recompute scratch: qsetSpare double-buffers the qSet backing (the
	// previous generation's buffer is rebuilt into while the current
	// qSet/updateSet stay readable), selfBuf double-buffers the
	// {self}-singleton updateSet, and pass stamps childState.mark.
	qsetSpare []SetEntry
	selfBuf   [2][1]SetEntry
	selfFlip  int
	pass      int

	// dirty marks that a recompute input changed (children statuses,
	// satLocal, level, the update flag); cleanGen is the overlay
	// generation the last recompute ran against. recomputeState skips
	// the walk entirely when the state is clean at the current
	// generation — identical inputs reproduce identical outputs and a
	// false change report, so the skip is observationally equivalent.
	dirty    bool
	cleanGen int
}

const maxWindow = 16

func newPredState(g groupSpec) *predState {
	return &predState{
		group:    g,
		level:    -1,
		children: make(map[ids.ID]*childState),
		dirty:    true,
		cleanGen: -1,
	}
}

// evalLocal updates satLocal from the node's attribute store and
// reports whether it changed.
func (ps *predState) evalLocal(g predicate.Getter) bool {
	sat := true
	if ps.group.expr != nil {
		sat = ps.group.expr.Eval(g)
	}
	changed := sat != ps.satLocal
	ps.satLocal = sat
	if changed {
		ps.dirty = true
	}
	return changed
}

// recompute derives qSet, updateSet, sat, prune, np and unknown from
// current children state and structural targets. It reports whether the
// observable state (sat or updateSet) changed — the paper's "c" events.
func (ps *predState) recompute(structural []pastry.BroadcastTarget, threshold int, self ids.ID, regionEst func(level int) float64) (changed bool) {
	ps.pass++
	qset := ps.qsetSpare[:0]
	np := 0
	unknown := 0.0
	addChild := func(qs []SetEntry, id ids.ID, level int, cs *childState) []SetEntry {
		switch {
		case cs == nil:
			// Procedure 1 default: an unreported child must keep
			// receiving queries.
			qs = append(qs, SetEntry{ID: id, Level: level})
			unknown += regionEst(level)
		case cs.NpOnly:
			// No status yet, but responses told us the subtree cost.
			qs = append(qs, SetEntry{ID: id, Level: level})
			np += cs.Np
			unknown += cs.Unknown
		case cs.Prune:
			// skip
		default:
			for _, e := range cs.UpdateSet {
				// Entries other than the child itself are SQP
				// shortcuts around it.
				qs = append(qs, SetEntry{ID: e.ID, Level: e.Level, Jump: e.ID != id})
			}
			np += cs.Np
			unknown += cs.Unknown
		}
		return qs
	}
	for _, bt := range structural {
		cs := ps.children[bt.ID]
		if cs != nil {
			cs.mark = ps.pass
		}
		qset = addChild(qset, bt.ID, bt.Level, cs)
	}
	// Adopted (non-structural) children that reported state. NpOnly
	// records are cost caches from response piggybacks — often SQP
	// grandchildren — and must not become query targets here.
	for id, cs := range ps.children {
		if cs == nil || cs.mark == ps.pass || cs.NpOnly {
			continue
		}
		qset = addChild(qset, id, maxLevel(cs.UpdateSet, ps.level), cs)
	}
	if ps.satLocal {
		qset = append(qset, SetEntry{ID: self, Level: ps.level})
	}
	qset = dedupeEntries(qset)

	// Decide the new updateSet without clobbering the current one: the
	// change test below still needs it, and the new set is built in
	// buffers disjoint from everything the current generation can
	// reference.
	var newSet []SetEntry
	if len(qset) < threshold {
		newSet = qset
	} else {
		ps.selfFlip ^= 1
		buf := &ps.selfBuf[ps.selfFlip]
		buf[0] = SetEntry{ID: self, Level: ps.level}
		newSet = buf[:]
	}
	newSat := len(qset) > 0
	changed = newSat != ps.sat || !equalEntries(newSet, ps.updateSet)

	// Commit; the displaced qSet backing becomes the next rebuild's
	// scratch buffer.
	ps.qsetSpare = ps.qSet[:0]
	ps.qSet = qset
	ps.sat = newSat
	ps.updateSet = newSet
	// Self receives queries when it is advertised (or when the policy
	// keeps it in NO-UPDATE, handled by wireView).
	if containsSelf(ps.updateSet, self) || !ps.update {
		np++
	}
	ps.np = np
	ps.unknown = unknown
	ps.prune = ps.update && !ps.sat
	return changed
}

// wireView is what the parent should currently believe: NO-UPDATE nodes
// promise NO-PRUNE with updateSet {self} so they keep receiving queries
// (§4's invariant; §5's UPDATE→NO-UPDATE handoff).
func (ps *predState) wireView(self ids.ID) (prune bool, set []SetEntry) {
	if !ps.update {
		return false, []SetEntry{{ID: self, Level: ps.level}}
	}
	if ps.prune {
		return true, nil
	}
	return false, ps.updateSet
}

// recordEvent appends to the sliding window.
func (ps *predState) recordEvent(k eventKind) {
	ps.events = append(ps.events, k)
	if len(ps.events) > maxWindow {
		ps.events = ps.events[len(ps.events)-maxWindow:]
	}
}

// recordQueryEvent classifies a processed query as qs or qn by whether
// the advertised updateSet contains this node (§5's generalization of
// SAT/NO-SAT).
func (ps *predState) recordQueryEvent(self ids.ID) {
	if containsSelf(ps.updateSet, self) {
		ps.recordEvent(evQueryIn)
	} else {
		ps.recordEvent(evQueryOut)
	}
}

// counters computes (qn, qs, c) over the mode-dependent recent window.
func (ps *predState) counters(kUpdate, kNoUpdate int) (qn, qs, c int) {
	k := kNoUpdate
	if ps.update {
		k = kUpdate
	}
	start := len(ps.events) - k
	if start < 0 {
		start = 0
	}
	for _, e := range ps.events[start:] {
		switch e {
		case evQueryIn:
			qs++
		case evQueryOut:
			qn++
		case evChange:
			c++
		}
	}
	return qn, qs, c
}

// runPolicy applies Procedure 2's transition rule and reports whether
// the update flag flipped. Mode pins the flag for the baselines.
func (ps *predState) runPolicy(mode Mode, kUpdate, kNoUpdate int) (flipped bool) {
	old := ps.update
	switch mode {
	case ModeAlwaysUpdate:
		ps.update = true
	case ModeGlobal:
		ps.update = false
	default:
		qn, _, c := ps.counters(kUpdate, kNoUpdate)
		switch {
		case 2*qn < c:
			ps.update = false
		case 2*qn > c:
			ps.update = true
		}
	}
	ps.prune = ps.update && !ps.sat
	if ps.update != old {
		// The update flag feeds recompute's np self-count.
		ps.dirty = true
		return true
	}
	return false
}

// nextSeq allocates a root-side query sequence number.
func (ps *predState) nextSeq() uint64 {
	ps.seqCounter++
	if ps.seqCounter > ps.lastSeq {
		ps.lastSeq = ps.seqCounter
	}
	return ps.seqCounter
}

// observeSeq accounts for queries the node missed while pruned or
// bypassed, revealed by the sequence number of a query it did receive
// (§4). It returns how many missed-query events were recorded; the
// received query itself is recorded separately.
func (ps *predState) observeSeq(seq uint64, self ids.ID) int {
	if seq <= ps.lastSeq {
		return 0
	}
	missed := int(seq - ps.lastSeq - 1)
	ps.lastSeq = seq
	return ps.recordMissed(missed, self)
}

// learnSeq accounts for queries revealed by a child's status piggyback:
// the system has processed up to seq, none of which this node saw
// directly (§5 "Adaptation and SQP").
func (ps *predState) learnSeq(seq uint64, self ids.ID) int {
	if seq <= ps.lastSeq {
		return 0
	}
	missed := int(seq - ps.lastSeq)
	ps.lastSeq = seq
	return ps.recordMissed(missed, self)
}

func (ps *predState) recordMissed(missed int, self ids.ID) int {
	if missed > maxWindow {
		missed = maxWindow
	}
	for i := 0; i < missed; i++ {
		ps.recordQueryEvent(self)
	}
	return missed
}

// setLevel records the node's tree depth, marking recompute state
// dirty when it actually changes.
func (ps *predState) setLevel(level int) {
	if ps.level != level {
		ps.level = level
		ps.dirty = true
	}
}

// touch refreshes the GC clock.
func (ps *predState) touch(now time.Duration) { ps.lastActive = now }

func containsSelf(set []SetEntry, self ids.ID) bool {
	for _, e := range set {
		if e.ID == self {
			return true
		}
	}
	return false
}

func equalEntries(a, b []SetEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// dedupeEntries keeps the first occurrence of each ID, in place. Small
// sets (the overwhelmingly common case: fan-out per level is bounded by
// the routing radix) dedup by linear scan; only genuinely large sets
// pay for a map.
func dedupeEntries(s []SetEntry) []SetEntry {
	if len(s) <= 1 {
		return s
	}
	if len(s) <= 64 {
		out := s[:0]
		for _, e := range s {
			dup := false
			for _, o := range out {
				if o.ID == e.ID {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, e)
			}
		}
		return out
	}
	seen := make(map[ids.ID]bool, len(s))
	out := s[:0]
	for _, e := range s {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	return out
}

func maxLevel(set []SetEntry, fallback int) int {
	lvl := fallback
	for _, e := range set {
		if e.Level > lvl {
			lvl = e.Level
		}
	}
	if lvl < 0 {
		return 0
	}
	return lvl
}
