package core

import (
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/attr"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/value"
)

// Node is one Moara participant: an overlay member, an attribute agent,
// a group-tree maintainer, and (on demand) a query front-end.
//
// A Node is event-driven and not safe for concurrent use: all entry
// points must run on one goroutine (the simulator loop, or the TCP
// transport's per-node serializer).
type Node struct {
	env     simnet.Env
	cfg     Config
	overlay *pastry.Node
	store   *attr.Store
	self    ids.ID

	preds  map[string]*predState
	byAttr map[string][]string

	execs    map[seenKey]*exec
	seen     map[seenKey]time.Duration
	answered map[QueryID]time.Duration

	// subs is the standing-query subscription table (standing.go).
	subs map[subKey]*subState

	fe frontend

	parseCache map[string]predicate.Expr
	groupCache map[string]groupSpec

	targetsGen   int
	targetsCache map[int][]pastry.BroadcastTarget

	// subsGen is the overlay generation the subscription tables were
	// last reconciled against (see maybeResyncSubs).
	subsGen int

	// outbox is the per-destination coalescing buffer (wire batching):
	// sends within one CoalesceWindow to the same neighbor ship as a
	// single BatchMsg. order keeps flushes deterministic. The spare pair
	// double-buffers the map and order slice so the per-epoch flush
	// cycle reuses them instead of reallocating; itemPool recycles the
	// per-destination slices that were NOT shipped inside a BatchMsg
	// (singleton flushes — a batched slice is owned by the receiver).
	outbox      map[ids.ID][]any
	outboxOrder []ids.ID
	outboxArmed bool
	spareBox    map[ids.ID][]any
	spareOrder  []ids.ID
	itemPool    [][]any
	flushFn     func()
	// deferFn is the cancel-free timer fast path (simnet provides one;
	// other Envs fall back to After with the handle discarded), and
	// armFn the reusable-Timer-slot counterpart.
	deferFn func(time.Duration, func())
	armFn   func(time.Duration, func(), *simnet.Timer)

	// predMemo short-circuits the per-message predicate-state lookup:
	// virtually all traffic at a node concerns one or two groups, and
	// canon strings arrive pointer-equal across messages, so the memo
	// hit is a pointer compare instead of a string-map probe.
	predMemoCanon string
	predMemoVal   *predState

	// targetScratch is reused by disseminate to build the per-query
	// forward list (consumed synchronously before the call returns).
	targetScratch []SetEntry
	// freeExecs recycles finished exec records and their pending maps.
	freeExecs []*exec

	qidCounter uint64
	gcArmed    bool
	gcCancel   func()
	closed     bool

	// Fallback receives messages the node does not understand (used by
	// the baseline packages to graft extra protocols onto a node).
	Fallback func(from ids.ID, m any)
}

var _ simnet.Handler = (*Node)(nil)

// NewNode creates a Moara node on env. The node's overlay must still be
// bootstrapped (Join, BootstrapAlone, or an Oracle Fill).
func NewNode(env simnet.Env, cfg Config, overlayCfg pastry.Config) *Node {
	n := &Node{
		env:          env,
		cfg:          cfg.Defaults(),
		store:        attr.NewStore(),
		self:         env.Self(),
		preds:        make(map[string]*predState),
		byAttr:       make(map[string][]string),
		execs:        make(map[seenKey]*exec),
		seen:         make(map[seenKey]time.Duration),
		answered:     make(map[QueryID]time.Duration),
		subs:         make(map[subKey]*subState),
		parseCache:   make(map[string]predicate.Expr),
		groupCache:   make(map[string]groupSpec),
		targetsCache: make(map[int][]pastry.BroadcastTarget),
		targetsGen:   -1,
		subsGen:      -1,
	}
	n.flushFn = n.flushOutbox
	if d, ok := env.(interface {
		Defer(time.Duration, func())
	}); ok {
		n.deferFn = d.Defer
	} else {
		n.deferFn = func(d time.Duration, fn func()) { env.After(d, fn) }
	}
	if a, ok := env.(interface {
		Arm(time.Duration, func(), *simnet.Timer)
	}); ok {
		n.armFn = a.Arm
	} else {
		n.armFn = func(d time.Duration, fn func(), t *simnet.Timer) {
			t.SetFallback(env.After(d, fn))
		}
	}
	n.overlay = pastry.New(env, overlayCfg)
	n.overlay.Deliver = n.handleRouted
	n.overlay.OnNodeRemoved = n.onPeerRemoved
	n.fe.init(n)
	n.store.Subscribe(n.onAttrChange)
	return n
}

// onPeerRemoved reacts to the overlay purging a failed node (heartbeat
// detection or a gossiped obituary): every Moara-layer reference to the
// dead peer is dropped in the same event, so no stale partial aggregate
// or child status can be merged past the purge — the keystone of the
// no-double-counting argument for churn repair. Orphaned tree state
// (the dead peer was our parent) reverts to the accept-any-parent
// posture of §7 reconfiguration, and in-flight aggregations stop
// waiting for the dead child instead of burning the full ChildTimeout.
func (n *Node) onPeerRemoved(dead ids.ID) {
	if n.closed {
		return
	}
	for _, ps := range n.preds {
		changed := false
		if _, ok := ps.children[dead]; ok {
			delete(ps.children, dead)
			ps.dirty = true
			changed = true
		}
		if ps.hasParent && ps.parent == dead {
			ps.hasParent = false
			ps.lastSentValid = false
			changed = true
		}
		if changed {
			// Recompute qSet without the dead child and reconcile the
			// standing-query installs (syncSubs): a repaired tree edge is
			// re-subscribed as soon as the overlay knows about it.
			n.onStateChange(ps)
		}
	}
	for _, sub := range n.subs {
		delete(sub.reports, dead)
		delete(sub.targets, dead)
		if !sub.root && sub.parent == dead {
			sub.orphaned = true
		}
	}
	var finished []*exec
	for _, ex := range n.execs {
		if ex.pending[dead] {
			delete(ex.pending, dead)
			if len(ex.pending) == 0 {
				finished = append(finished, ex)
			}
		}
	}
	for _, ex := range finished {
		ex.timer.Stop()
		n.finishExec(ex)
	}
}

// Overlay exposes the node's overlay layer (bootstrap, inspection).
func (n *Node) Overlay() *pastry.Node { return n.overlay }

// Env exposes the node's runtime environment; the baseline protocols
// grafted onto a node (package baseline) send replies through it.
func (n *Node) Env() simnet.Env { return n.env }

// Store exposes the node's attribute store (the Moara agent writes
// monitored values here).
func (n *Node) Store() *attr.Store { return n.store }

// Self returns the node's identifier.
func (n *Node) Self() ids.ID { return n.self }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// Close stops timers, including every subscription's epoch loop. Any
// messages still queued in the coalescing outbox are flushed first
// (best-effort), so e.g. a cancel cascade queued just before shutdown
// still reaches the children instead of leaving them to the SubTTL GC.
func (n *Node) Close() {
	if n.closed {
		return
	}
	n.flushOutbox()
	n.closed = true
	for _, sub := range n.subs {
		sub.tick.Stop()
	}
	for _, fs := range n.fe.subs {
		if fs.renewCancel != nil {
			fs.renewCancel()
		}
		if fs.probeCancel != nil {
			fs.probeCancel()
		}
		if fs.emptyCancel != nil {
			fs.emptyCancel()
		}
	}
	n.overlay.Close()
}

// Recover restarts the node's background loops after a crash-recovery.
// The runtime drops timer callbacks that fire while a node is down, so
// a recovered node's periodic loops (overlay heartbeats, the GC sweep,
// subscription epoch ticks, front-end renewals) are dead; Recover
// re-arms them and rejoins the overlay via bootstrap, which also
// re-announces this node to peers holding a death certificate for it.
// Subscriptions whose lease expired while the node was down are dropped
// by their first re-armed tick; fresher ones resume seamlessly.
func (n *Node) Recover(bootstrap ids.ID) {
	if n.closed {
		return
	}
	n.overlay.Rejoin(bootstrap)
	if n.gcCancel != nil {
		// A GC timer armed before the crash may still be pending; left
		// alone, its callback would re-arm a second self-perpetuating
		// sweep chain alongside the fresh one.
		n.gcCancel()
	}
	n.gcArmed = false
	n.armGC()
	for _, sub := range n.subs {
		sub.tick.Stop()
		n.armEpoch(sub)
	}
	n.fe.recover()
}

// send queues m for to through the per-destination outbox. With
// coalescing enabled (CoalesceWindow >= 0) the message rides the next
// flush — together with everything else bound for the same neighbor —
// as one wire-level BatchMsg; with CoalesceOff it goes out directly.
// All Moara-layer traffic (queries, responses, statuses, installs,
// epoch reports, samples, cancels) flows through here; overlay routing
// and maintenance stay un-coalesced so liveness is never delayed.
func (n *Node) send(to ids.ID, m any) {
	if n.cfg.CoalesceWindow < 0 {
		n.env.Send(to, m)
		return
	}
	if n.outbox == nil {
		n.outbox = make(map[ids.ID][]any)
	}
	items, ok := n.outbox[to]
	if !ok {
		n.outboxOrder = append(n.outboxOrder, to)
		if k := len(n.itemPool); k > 0 {
			items = n.itemPool[k-1][:0]
			n.itemPool = n.itemPool[:k-1]
		}
	}
	n.outbox[to] = append(items, m)
	if !n.outboxArmed {
		n.outboxArmed = true
		// A zero window flushes after one event-loop tick: the timer
		// fires at the same virtual instant (simulator) or immediately
		// after the current serialized handler turn (TCP agent), so
		// everything one burst emits coalesces with no added latency.
		n.deferFn(n.cfg.CoalesceWindow, n.flushFn)
	}
}

// flushOutbox ships every queued destination's messages: singletons go
// raw (no envelope overhead), anything more ships as one BatchMsg. The
// detached buffers become next window's spares, so steady-state epochs
// cycle two maps instead of allocating one per flush.
func (n *Node) flushOutbox() {
	if n.closed {
		return
	}
	box, order := n.outbox, n.outboxOrder
	n.outbox, n.outboxOrder, n.outboxArmed = n.spareBox, n.spareOrder, false
	n.spareBox, n.spareOrder = nil, nil
	for _, to := range order {
		items := box[to]
		if len(items) == 1 {
			n.env.Send(to, items[0])
			// The slice was not shipped; recycle its backing array.
			if len(n.itemPool) < 64 {
				n.itemPool = append(n.itemPool, items[:0])
			}
			continue
		}
		n.env.Send(to, BatchMsg{Items: items})
	}
	if box != nil {
		clear(box)
		n.spareBox, n.spareOrder = box, order[:0]
	}
}

// Handle dispatches an incoming message (implements simnet.Handler).
func (n *Node) Handle(from ids.ID, m any) {
	if n.closed {
		return
	}
	if bm, ok := m.(BatchMsg); ok {
		// Unpack a coalesced wire batch: items dispatch in send order,
		// exactly as they would have arrived individually.
		for _, item := range bm.Items {
			n.Handle(from, item)
		}
		return
	}
	if n.overlay.Handle(from, m) {
		// Overlay maintenance may have changed routing state (a join
		// announcement, an obituary purge, a repaired slot): reconcile
		// standing-query installs right away instead of waiting for the
		// next epoch tick.
		n.maybeResyncSubs()
		return
	}
	switch msg := m.(type) {
	case QueryMsg:
		n.handleQuery(from, msg)
	case ResponseMsg:
		n.handleResponse(from, msg)
	case StatusMsg:
		n.handleStatus(from, msg)
	case ProbeRespMsg:
		n.fe.handleProbeResp(msg)
	case InstallMsg:
		n.handleInstall(from, msg)
	case EpochReportMsg:
		n.handleEpochReport(from, msg, false)
	case SampleMsg:
		n.fe.handleSample(from, msg)
	case CancelMsg:
		n.handleCancel(from, msg, false)
	default:
		if n.Fallback != nil {
			n.Fallback(from, m)
		}
	}
}

// maybeResyncSubs reconciles every subscription's installed children
// with the query target set after the overlay's routing state changed
// (tracked by the generation counter, so stable gossip is free). This
// is the fast half of churn repair: a replacement child learned through
// the obituary/repair-probe exchange is installed within milliseconds
// of the purge, and the per-epoch reconcile in epochTick is only the
// backstop.
func (n *Node) maybeResyncSubs() {
	if len(n.subs) == 0 {
		return
	}
	g := n.overlay.Gen()
	if g == n.subsGen {
		return
	}
	n.subsGen = g
	for _, sub := range n.subs {
		ps := n.preds[sub.group.canon]
		if ps == nil && n.cfg.Mode != ModeGlobal {
			continue
		}
		if ps != nil && n.cfg.Mode != ModeGlobal {
			n.recomputeState(ps)
		}
		n.pushInstalls(sub, ps, false)
	}
}

// handleRouted receives payloads delivered by the overlay to this node
// as the owner of their key.
func (n *Node) handleRouted(key ids.ID, payload any, origin ids.ID) {
	switch msg := payload.(type) {
	case SubQueryMsg:
		n.handleSubQuery(msg)
	case ProbeMsg:
		n.handleProbe(msg)
	case SubscribeMsg:
		n.handleSubscribe(msg)
	case EpochReportMsg:
		// The orphan pull: a subtree whose uptree chain was severed by a
		// crash streams to the tree root through the overlay.
		n.handleEpochReport(origin, msg, true)
	case CancelMsg:
		n.handleCancel(key, msg, true)
	}
}

// ---------------------------------------------------------------------
// Predicate state bookkeeping

func (n *Node) groupSpecOf(canon string) (groupSpec, error) {
	if g, ok := n.groupCache[canon]; ok {
		return g, nil
	}
	g, err := parseGroupSpec(canon)
	if err != nil {
		return groupSpec{}, err
	}
	n.groupCache[canon] = g
	return g, nil
}

func (n *Node) getPred(g groupSpec) *predState {
	if ps, ok := n.predLookup(g.canon); ok {
		return ps
	}
	ps := newPredState(g)
	ps.evalLocal(n.store)
	n.preds[g.canon] = ps
	n.predMemoCanon, n.predMemoVal = g.canon, ps
	if g.expr != nil {
		for _, a := range predicate.Attrs(g.expr) {
			n.byAttr[a] = append(n.byAttr[a], g.canon)
		}
	}
	ps.touch(n.env.Now())
	n.armGC()
	return ps
}

// predLookup is the memoized n.preds access.
func (n *Node) predLookup(canon string) (*predState, bool) {
	if n.predMemoVal != nil && n.predMemoCanon == canon {
		return n.predMemoVal, true
	}
	ps, ok := n.preds[canon]
	if ok {
		n.predMemoCanon, n.predMemoVal = canon, ps
	}
	return ps, ok
}

func (n *Node) dropPred(canon string) {
	ps, ok := n.preds[canon]
	if !ok {
		return
	}
	delete(n.preds, canon)
	if n.predMemoVal == ps {
		n.predMemoCanon, n.predMemoVal = "", nil
	}
	if ps.group.expr != nil {
		for _, a := range predicate.Attrs(ps.group.expr) {
			list := n.byAttr[a]
			out := list[:0]
			for _, c := range list {
				if c != canon {
					out = append(out, c)
				}
			}
			if len(out) == 0 {
				delete(n.byAttr, a)
			} else {
				n.byAttr[a] = out
			}
		}
	}
}

// structural returns the broadcast-tree children for a node at level,
// cached against the overlay generation.
func (n *Node) structural(level int) []pastry.BroadcastTarget {
	if level < 0 {
		return nil
	}
	if g := n.overlay.Gen(); g != n.targetsGen {
		n.targetsGen = g
		clear(n.targetsCache)
	}
	if ts, ok := n.targetsCache[level]; ok {
		return ts
	}
	ts := n.overlay.BroadcastTargets(level)
	n.targetsCache[level] = ts
	return ts
}

// regionEstimate approximates the population of an unreported child's
// subtree: the system-size estimate divided by the ID-space fan-out at
// the child's level, floored at one node.
func (n *Node) regionEstimate(level int) float64 {
	est := n.overlay.EstimateSize()
	for i := 0; i < level && est > 1; i++ {
		est /= ids.Radix
	}
	if est < 1 {
		est = 1
	}
	return est
}

// recomputeState refreshes derived predicate state and reports whether
// the observable part changed.
func (n *Node) recomputeState(ps *predState) bool {
	g := n.overlay.Gen()
	if !ps.dirty && ps.cleanGen == g {
		return false
	}
	changed := ps.recompute(n.structural(ps.level), n.cfg.Threshold, n.self, n.regionEstimate)
	ps.dirty = false
	ps.cleanGen = g
	return changed
}

// onAttrChange re-evaluates local satisfiability for every group that
// references the changed attribute (the Moara agent hook of §3.1).
func (n *Node) onAttrChange(name string, _, _ value.Value) {
	canons := n.byAttr[name]
	for _, canon := range canons {
		ps, ok := n.preds[canon]
		if !ok {
			continue
		}
		if !ps.evalLocal(n.store) {
			continue
		}
		n.onStateChange(ps)
	}
}

// onStateChange runs the §4 pipeline after a local or child change:
// recompute, record a churn event if observable state moved, re-run the
// adaptation policy, and propagate status if warranted.
func (n *Node) onStateChange(ps *predState) {
	if n.cfg.Mode == ModeGlobal {
		return
	}
	changed := n.recomputeState(ps)
	if changed {
		ps.recordEvent(evChange)
	}
	if ps.runPolicy(n.cfg.Mode, n.cfg.KUpdate, n.cfg.KNoUpdate) {
		// The update flag flipped; np depends on it.
		n.recomputeState(ps)
	}
	ps.touch(n.env.Now())
	n.maybeSendStatus(ps)
	// Standing queries follow the adaptive tree: reconcile installed
	// children with the (possibly changed) query target set.
	n.syncSubs(ps)
}

// maybeSendStatus sends the parent a status update when the parent's
// view of this node would otherwise be stale. NO-UPDATE nodes advertise
// the constant (NO-PRUNE, {self}) view, so they naturally go silent.
func (n *Node) maybeSendStatus(ps *predState) {
	if !ps.hasParent || n.cfg.Mode == ModeGlobal {
		return
	}
	prune, set := ps.wireView(n.self)
	if ps.lastSentValid && prune == ps.lastSentPrune && equalEntries(set, ps.lastSentSet) {
		return
	}
	if !ps.lastSentValid && !prune && len(set) == 1 && set[0].ID == n.self {
		// The parent's default assumption already matches; nothing to say.
		return
	}
	ps.lastSentValid = true
	ps.lastSentPrune = prune
	ps.lastSentSet = append([]SetEntry(nil), set...)
	// Ship the retained copy, not the live set: recompute reuses the
	// qSet/updateSet backing buffers, and on the simulator an in-flight
	// message aliases the sender's memory until delivery.
	n.send(ps.parent, StatusMsg{
		Group:     ps.group.canon,
		Prune:     prune,
		UpdateSet: ps.lastSentSet,
		Np:        ps.np,
		Unknown:   ps.unknown,
		LastSeq:   ps.lastSeq,
	})
}

// handleStatus merges a child's PRUNE/NO-PRUNE + updateSet report (§4,
// §5) and reacts to any resulting observable change.
func (n *Node) handleStatus(from ids.ID, sm StatusMsg) {
	g, err := n.groupSpecOf(sm.Group)
	if err != nil {
		return
	}
	ps := n.getPred(g)
	ps.children[from] = &childState{
		Prune:     sm.Prune,
		UpdateSet: append([]SetEntry(nil), sm.UpdateSet...),
		Np:        sm.Np,
		Unknown:   sm.Unknown,
	}
	ps.dirty = true
	// Bypassed/pruned ancestors learn the system's query progress from
	// child piggybacks (§5 "Adaptation and SQP").
	ps.learnSeq(sm.LastSeq, n.self)
	n.onStateChange(ps)
}

// ---------------------------------------------------------------------
// Query dissemination and aggregation

// exec tracks one in-flight query aggregation at this node. Every query
// — scalar or grouped — accumulates through the keyed engine; a scalar
// query is the single-key (ScalarKey) special case.
type exec struct {
	qid     QueryID
	group   string
	attrKey string
	spec    aggregate.Spec
	groupBy string
	replyTo ids.ID
	state   *aggregate.GroupedState
	// contrib counts members that answered in this subtree (completeness
	// accounting; a member without the query attribute still counts).
	contrib int64
	pending map[ids.ID]bool
	timer   simnet.Timer
	// timeoutFn is the timeout closure, built once per pooled record.
	timeoutFn func()
	key       seenKey
}

// handleSubQuery starts dissemination at the tree root.
func (n *Node) handleSubQuery(sq SubQueryMsg) {
	if _, dup := n.seen[seenKey{sq.QID, sq.Group}]; dup {
		n.send(sq.ReplyTo, ResponseMsg{QID: sq.QID, Group: sq.Group, Dup: true})
		return
	}
	n.markSeen(sq.QID, sq.Group)
	g, err := n.groupSpecOf(sq.Group)
	if err != nil {
		n.send(sq.ReplyTo, ResponseMsg{QID: sq.QID, Group: sq.Group, Dup: true})
		return
	}
	ps := n.getPred(g)
	ps.setLevel(0)
	ps.hasParent = false
	qm := QueryMsg{
		QID:     sq.QID,
		Seq:     ps.nextSeq(),
		Group:   sq.Group,
		Eval:    sq.Eval,
		Attr:    sq.Attr,
		Spec:    sq.Spec,
		GroupBy: sq.GroupBy,
		Level:   0,
		ReplyTo: n.self,
	}
	if n.cfg.Mode != ModeGlobal {
		n.recomputeState(ps)
		ps.recordQueryEvent(n.self)
		ps.runPolicy(n.cfg.Mode, n.cfg.KUpdate, n.cfg.KNoUpdate)
		ps.touch(n.env.Now())
	}
	n.disseminate(ps, qm, sq.ReplyTo)
}

// handleQuery processes a query received from a tree parent or via an
// SQP jump.
func (n *Node) handleQuery(_ ids.ID, qm QueryMsg) {
	if _, dup := n.seen[seenKey{qm.QID, qm.Group}]; dup {
		n.send(qm.ReplyTo, ResponseMsg{QID: qm.QID, Group: qm.Group, Dup: true})
		return
	}
	n.markSeen(qm.QID, qm.Group)
	g, err := n.groupSpecOf(qm.Group)
	if err != nil {
		n.send(qm.ReplyTo, ResponseMsg{QID: qm.QID, Group: qm.Group, Dup: true})
		return
	}
	if n.cfg.Mode == ModeGlobal {
		n.disseminateGlobal(qm)
		return
	}
	ps := n.getPred(g)
	ps.touch(n.env.Now())
	if ps.level < 0 || qm.Level < ps.level {
		ps.setLevel(qm.Level)
	}
	if (!qm.Jump && (!ps.hasParent || ps.parent != qm.ReplyTo)) ||
		(qm.Jump && !ps.hasParent) {
		// New tree parent (first query, or §7 reconfiguration): it
		// knows nothing about us yet. SQP jumps do NOT re-parent —
		// the update plane stays on the tree while queries shortcut
		// across it (§5) — but an orphan accepts any parent.
		ps.parent = qm.ReplyTo
		ps.hasParent = true
		ps.lastSentValid = false
	}
	n.recomputeState(ps)
	ps.observeSeq(qm.Seq, n.self)
	ps.recordQueryEvent(n.self)
	if ps.runPolicy(n.cfg.Mode, n.cfg.KUpdate, n.cfg.KNoUpdate) {
		n.recomputeState(ps)
	}
	n.disseminate(ps, qm, qm.ReplyTo)
	n.maybeSendStatus(ps)
}

// disseminate forwards the query to this node's current query targets
// and aggregates their responses plus the local contribution. The
// target list is consumed before the call returns, so it lives in a
// per-node scratch buffer; exec records are pooled.
func (n *Node) disseminate(ps *predState, qm QueryMsg, replyTo ids.ID) {
	targets := n.targetScratch[:0]
	if n.cfg.Mode == ModeGlobal {
		for _, bt := range n.structural(qm.Level) {
			targets = append(targets, SetEntry{ID: bt.ID, Level: bt.Level})
		}
	} else {
		for _, e := range ps.qSet {
			if e.ID != n.self {
				targets = append(targets, e)
			}
		}
	}
	n.targetScratch = targets
	ex := n.newExec()
	ex.qid = qm.QID
	ex.group = qm.Group
	ex.attrKey = qm.Attr
	ex.spec = qm.Spec
	ex.groupBy = qm.GroupBy
	ex.replyTo = replyTo
	ex.state = aggregate.NewGrouped(qm.Spec, n.cfg.MaxGroupKeys)
	if n.evalQuery(ps, qm) && n.claimAnswer(qm.QID) {
		ex.contrib++
		ex.state.AddKeyed(n.self, n.groupKey(qm.GroupBy), n.localValue(qm.Attr))
	}
	if len(targets) == 0 {
		n.finishExec(ex)
		return
	}
	if ex.pending == nil {
		ex.pending = make(map[ids.ID]bool, len(targets))
	}
	n.execs[seenKey{qm.QID, qm.Group}] = ex
	fwd := qm
	fwd.ReplyTo = n.self
	for _, t := range targets {
		ex.pending[t.ID] = true
		fwd.Level = t.Level
		fwd.Jump = t.Jump
		n.send(t.ID, fwd)
	}
	n.armExecTimeout(ex, qm)
}

// armExecTimeout starts the child-timeout clock for an in-flight
// aggregation, reusing the pooled record's closure and timer slot.
func (n *Node) armExecTimeout(ex *exec, qm QueryMsg) {
	ex.key = seenKey{qm.QID, qm.Group}
	if ex.timeoutFn == nil {
		ex.timeoutFn = func() { n.execTimeout(ex.key) }
	}
	n.armFn(n.cfg.ChildTimeout, ex.timeoutFn, &ex.timer)
}

// disseminateGlobal is the stateless Global baseline: forward down the
// full broadcast tree, no group state anywhere.
func (n *Node) disseminateGlobal(qm QueryMsg) {
	ex := n.newExec()
	ex.qid = qm.QID
	ex.group = qm.Group
	ex.attrKey = qm.Attr
	ex.spec = qm.Spec
	ex.groupBy = qm.GroupBy
	ex.replyTo = qm.ReplyTo
	ex.state = aggregate.NewGrouped(qm.Spec, n.cfg.MaxGroupKeys)
	if n.evalGlobal(qm) && n.claimAnswer(qm.QID) {
		ex.contrib++
		ex.state.AddKeyed(n.self, n.groupKey(qm.GroupBy), n.localValue(qm.Attr))
	}
	targets := n.structural(qm.Level)
	if len(targets) == 0 {
		n.finishExec(ex)
		return
	}
	if ex.pending == nil {
		ex.pending = make(map[ids.ID]bool, len(targets))
	}
	n.execs[seenKey{qm.QID, qm.Group}] = ex
	fwd := qm
	fwd.ReplyTo = n.self
	for _, t := range targets {
		ex.pending[t.ID] = true
		fwd.Level = t.Level
		n.send(t.ID, fwd)
	}
	n.armExecTimeout(ex, qm)
}

// newExec takes an exec record from the pool; its pending map (if any)
// arrives empty.
func (n *Node) newExec() *exec {
	if k := len(n.freeExecs); k > 0 {
		ex := n.freeExecs[k-1]
		n.freeExecs = n.freeExecs[:k-1]
		return ex
	}
	return &exec{}
}

// evalQuery evaluates the query's full predicate locally.
func (n *Node) evalQuery(ps *predState, qm QueryMsg) bool {
	if qm.Eval == "" {
		return ps.satLocal
	}
	e, err := n.parseCached(qm.Eval)
	if err != nil {
		return false
	}
	return e.Eval(n.store)
}

func (n *Node) evalGlobal(qm QueryMsg) bool {
	eval := qm.Eval
	if eval == "" {
		eval = qm.Group
	}
	if eval == "" || eval[0] == '*' {
		return true
	}
	e, err := n.parseCached(eval)
	if err != nil {
		return false
	}
	return e.Eval(n.store)
}

func (n *Node) parseCached(s string) (predicate.Expr, error) {
	if e, ok := n.parseCache[s]; ok {
		return e, nil
	}
	e, err := predicate.ParseExpr(s)
	if err != nil {
		return nil, err
	}
	n.parseCache[s] = e
	return e, nil
}

// localValue produces this node's contribution for the query attribute;
// "*" contributes 1, enabling count(*).
func (n *Node) localValue(attrName string) value.Value {
	if attrName == "*" {
		return value.Int(1)
	}
	return n.store.Get(attrName)
}

// groupKey derives this node's aggregation key for a grouped query:
// the canonical form of its group-by attribute value, NullKey when the
// attribute is unset, and ScalarKey for ungrouped queries. A literal
// attribute value that collides with a reserved key is escaped with a
// leading backslash so it can never shadow the null or spill bucket.
func (n *Node) groupKey(groupBy string) string {
	if groupBy == "" {
		return aggregate.ScalarKey
	}
	v := n.store.Get(groupBy)
	if !v.IsValid() {
		return aggregate.NullKey
	}
	key := v.Key()
	if key == aggregate.NullKey || key == aggregate.OtherKey {
		return `\` + key
	}
	return key
}

// handleResponse merges a child's partial aggregate.
func (n *Node) handleResponse(from ids.ID, rm ResponseMsg) {
	ex, ok := n.execs[seenKey{rm.QID, rm.Group}]
	if !ok || !ex.pending[from] {
		n.fe.handleQueryResp(from, rm)
		return
	}
	delete(ex.pending, from)
	if !rm.Dup && rm.State != nil {
		_ = ex.state.Merge(rm.State)
		// The child's partial is fully folded in (merges copy values,
		// never alias); recycle it for this node's next send.
		aggregate.Recycle(rm.State)
	}
	if !rm.Dup {
		ex.contrib += rm.Contributors
	}
	// Refresh the child's lazily maintained subtree cost (§6.3): np
	// piggybacks on every query response, reaching ancestors even from
	// children that never send status updates (NO-UPDATE).
	if !rm.Dup {
		if ps, psOK := n.predLookup(ex.group); psOK {
			switch cs := ps.children[from]; {
			case cs == nil:
				ps.children[from] = &childState{NpOnly: true, Np: rm.Np, Unknown: rm.Unknown}
				ps.dirty = true
			case cs.NpOnly || !cs.Prune:
				if cs.Np != rm.Np || cs.Unknown != rm.Unknown {
					cs.Np, cs.Unknown = rm.Np, rm.Unknown
					ps.dirty = true
				}
			}
			n.recomputeState(ps)
		}
	}
	if len(ex.pending) == 0 {
		ex.timer.Stop()
		n.finishExec(ex)
	}
}

// execTimeout finalizes an aggregation that is still missing children
// (§7: queries complete independent of failure-detection timeouts).
func (n *Node) execTimeout(key seenKey) {
	ex, ok := n.execs[key]
	if !ok {
		return
	}
	n.finishExec(ex)
}

func (n *Node) finishExec(ex *exec) {
	delete(n.execs, seenKey{ex.qid, ex.group})
	np, unknown := 0, 0.0
	if ps, ok := n.predLookup(ex.group); ok {
		np, unknown = ps.np, ps.unknown
	}
	n.send(ex.replyTo, ResponseMsg{
		QID:          ex.qid,
		Group:        ex.group,
		State:        ex.state,
		Contributors: ex.contrib,
		Np:           np,
		Unknown:      unknown,
	})
	// Recycle the record: the shipped state is owned by the response
	// from here on, everything else resets. The timeout closure is kept
	// — it reads ex.key at fire time, so it re-binds with the record.
	if len(n.freeExecs) < 32 {
		if ex.pending != nil {
			clear(ex.pending)
		}
		*ex = exec{pending: ex.pending, timeoutFn: ex.timeoutFn}
		n.freeExecs = append(n.freeExecs, ex)
	}
}

// handleProbe answers a §6.3 size probe with the group's current query
// cost: 2·np for warm trees, a system-size estimate for cold ones.
func (n *Node) handleProbe(pm ProbeMsg) {
	cost := 0.0
	ps, ok := n.predLookup(pm.Group)
	switch {
	case n.cfg.Mode == ModeGlobal || !ok:
		cost = 2 * n.overlay.EstimateSize()
	default:
		cost = 2 * (float64(ps.np) + ps.unknown)
	}
	n.send(pm.ReplyTo, ProbeRespMsg{QID: pm.QID, Group: pm.Group, Cost: cost})
}

// ---------------------------------------------------------------------
// Housekeeping

func (n *Node) markSeen(qid QueryID, group string) {
	n.seen[seenKey{qid, group}] = n.env.Now()
	n.armGC()
}

// claimAnswer reserves the right to contribute this node's local value
// to the query: a node present in several trees of a composite cover
// answers exactly once (§6.2).
func (n *Node) claimAnswer(qid QueryID) bool {
	if _, done := n.answered[qid]; done {
		return false
	}
	n.answered[qid] = n.env.Now()
	return true
}

// armGC schedules the periodic sweep that expires answered-query IDs
// (§6.2's 5-minute cache) and garbage-collects idle NO-UPDATE state
// (§4 "State Maintenance").
func (n *Node) armGC() {
	if n.gcArmed || n.closed {
		return
	}
	period := n.cfg.SeenTTL / 2
	if n.cfg.StateTTL > 0 && n.cfg.StateTTL/2 < period {
		period = n.cfg.StateTTL / 2
	}
	if period <= 0 {
		period = time.Minute
	}
	n.gcArmed = true
	n.gcCancel = n.env.After(period, func() {
		n.gcArmed = false
		n.sweep()
		// Re-arm only while something remains collectible: seen/answered
		// entries always expire; predicate state only when StateTTL is
		// set (otherwise an idle node would tick forever).
		if len(n.seen) > 0 || len(n.answered) > 0 ||
			(n.cfg.StateTTL > 0 && len(n.preds) > 0) {
			n.armGC()
		}
	})
}

func (n *Node) sweep() {
	now := n.env.Now()
	for k, at := range n.seen {
		if now-at > n.cfg.SeenTTL {
			delete(n.seen, k)
		}
	}
	for qid, at := range n.answered {
		if now-at > n.cfg.SeenTTL {
			delete(n.answered, qid)
		}
	}
	if n.cfg.StateTTL <= 0 {
		return
	}
	for canon, ps := range n.preds {
		if !ps.update && now-ps.lastActive > n.cfg.StateTTL {
			n.dropPred(canon)
		}
	}
}
