// Columnar wire codec for the hot message types. Each message encodes
// as a one-byte tag plus a hand-rolled body (varint ints, 8-byte
// floats, length-prefixed strings, aggregate states via the columnar
// state codec). Tag 0 wraps a gob blob: any message without a columnar
// encoding — the cold one-shot query plane, foreign State
// implementations, anything future — automatically falls back to gob,
// so the codec never loses a message it does not understand.
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/wirefmt"
)

// Message tags. Tag 0 is the gob fallback; the rest are the hot
// standing-query path. New tags append — existing values are frozen by
// the transport's codec version byte (see internal/transport).
const (
	tagGob         = 0
	tagEpochReport = 1
	tagBatch       = 2
	tagResponse    = 3
	tagSubscribe   = 4
	tagInstall     = 5
	tagSample      = 6
	tagCancel      = 7
	tagStatus      = 8

	// maxMsgDepth bounds BatchMsg nesting on decode (hostile input;
	// real batches are one level deep).
	maxMsgDepth = 16
)

var errNoColumnar = errors.New("core: no columnar encoding")

// wireFallback is the gob envelope behind tag 0. The indirection
// through an interface field is what lets gob carry any registered
// concrete message type.
type wireFallback struct{ M any }

// AppendMessage appends one message in columnar form, falling back to a
// tagged gob blob for types without a columnar encoding (or whose state
// payloads resist it). The result is self-delimiting: ReadMessage
// returns the exact unconsumed remainder.
func AppendMessage(b []byte, m any) ([]byte, error) {
	return appendMessage(b, m, 0)
}

func appendMessage(b []byte, m any, depth int) ([]byte, error) {
	orig := len(b)
	out, err := appendColumnar(b, m, depth)
	if err == nil {
		return out, nil
	}
	return appendGobFallback(b[:orig], m)
}

func appendColumnar(b []byte, m any, depth int) ([]byte, error) {
	switch v := m.(type) {
	case EpochReportMsg:
		b = append(b, tagEpochReport)
		b = appendQID(b, v.SID)
		b = wirefmt.AppendString(b, v.Group)
		b = wirefmt.AppendUvarint(b, v.Epoch)
		b, err := aggregate.AppendState(b, v.State)
		if err != nil {
			return nil, err
		}
		b = wirefmt.AppendVarint(b, v.Contributors)
		b = wirefmt.AppendVarint(b, int64(v.Np))
		return wirefmt.AppendFloat(b, v.Unknown), nil
	case BatchMsg:
		if depth >= maxMsgDepth {
			return nil, errNoColumnar
		}
		b = append(b, tagBatch)
		b = wirefmt.AppendLen(b, len(v.Items), v.Items == nil)
		var err error
		for _, item := range v.Items {
			// Items fall back individually: one foreign item costs
			// itself a gob blob, not the whole batch.
			if b, err = appendMessage(b, item, depth+1); err != nil {
				return nil, err
			}
		}
		return b, nil
	case ResponseMsg:
		b = append(b, tagResponse)
		b = appendQID(b, v.QID)
		b = wirefmt.AppendString(b, v.Group)
		b, err := aggregate.AppendState(b, v.State)
		if err != nil {
			return nil, err
		}
		b = wirefmt.AppendBool(b, v.Dup)
		b = wirefmt.AppendVarint(b, v.Contributors)
		b = wirefmt.AppendVarint(b, int64(v.Np))
		return wirefmt.AppendFloat(b, v.Unknown), nil
	case SubscribeMsg:
		b = append(b, tagSubscribe)
		b = appendQID(b, v.SID)
		b = wirefmt.AppendString(b, v.Group)
		b = wirefmt.AppendString(b, v.Eval)
		b = wirefmt.AppendString(b, v.Attr)
		b = aggregate.AppendSpec(b, v.Spec)
		b = wirefmt.AppendString(b, v.GroupBy)
		b = wirefmt.AppendVarint(b, int64(v.Period))
		b = wirefmt.AppendUvarint(b, v.Gen)
		b = wirefmt.AppendUvarint(b, v.MinEpoch)
		return append(b, v.ReplyTo[:]...), nil
	case InstallMsg:
		b = append(b, tagInstall)
		b = appendQID(b, v.SID)
		b = wirefmt.AppendString(b, v.Group)
		b = wirefmt.AppendString(b, v.Eval)
		b = wirefmt.AppendString(b, v.Attr)
		b = aggregate.AppendSpec(b, v.Spec)
		b = wirefmt.AppendString(b, v.GroupBy)
		b = wirefmt.AppendVarint(b, int64(v.Period))
		b = wirefmt.AppendUvarint(b, v.Gen)
		b = wirefmt.AppendVarint(b, int64(v.Level))
		b = wirefmt.AppendBool(b, v.Jump)
		return append(b, v.ReplyTo[:]...), nil
	case SampleMsg:
		b = append(b, tagSample)
		b = appendQID(b, v.SID)
		b = wirefmt.AppendString(b, v.Group)
		b = wirefmt.AppendUvarint(b, v.Epoch)
		b = wirefmt.AppendVarint(b, int64(v.At))
		b, err := aggregate.AppendState(b, v.State)
		if err != nil {
			return nil, err
		}
		b = wirefmt.AppendVarint(b, v.Contributors)
		return wirefmt.AppendFloat(b, v.Expected), nil
	case CancelMsg:
		b = append(b, tagCancel)
		b = appendQID(b, v.SID)
		return wirefmt.AppendString(b, v.Group), nil
	case StatusMsg:
		b = append(b, tagStatus)
		b = wirefmt.AppendString(b, v.Group)
		b = wirefmt.AppendBool(b, v.Prune)
		b = wirefmt.AppendLen(b, len(v.UpdateSet), v.UpdateSet == nil)
		for _, e := range v.UpdateSet {
			b = append(b, e.ID[:]...)
			b = wirefmt.AppendVarint(b, int64(e.Level))
			b = wirefmt.AppendBool(b, e.Jump)
		}
		b = wirefmt.AppendVarint(b, int64(v.Np))
		b = wirefmt.AppendFloat(b, v.Unknown)
		return wirefmt.AppendUvarint(b, v.LastSeq), nil
	}
	return nil, errNoColumnar
}

func appendGobFallback(b []byte, m any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireFallback{M: m}); err != nil {
		return nil, fmt.Errorf("core: wire fallback for %T: %w", m, err)
	}
	b = append(b, tagGob)
	b = wirefmt.AppendUvarint(b, uint64(buf.Len()))
	return append(b, buf.Bytes()...), nil
}

// ReadMessage decodes one AppendMessage-encoded message, returning the
// unconsumed remainder. Arbitrary input errors cleanly.
func ReadMessage(b []byte) (any, []byte, error) {
	return readMessage(b, 0)
}

func readMessage(b []byte, depth int) (any, []byte, error) {
	tag, b, err := wirefmt.Byte(b)
	if err != nil {
		return nil, nil, err
	}
	switch tag {
	case tagGob:
		n, b, err := wirefmt.Uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if n > uint64(len(b)) {
			return nil, nil, wirefmt.ErrTruncated
		}
		raw, b, err := wirefmt.Bytes(b, int(n))
		if err != nil {
			return nil, nil, err
		}
		var f wireFallback
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&f); err != nil {
			return nil, nil, fmt.Errorf("core: wire fallback: %w", err)
		}
		return f.M, b, nil
	case tagEpochReport:
		var m EpochReportMsg
		m.SID, b, err = readQID(b)
		if err != nil {
			return nil, nil, err
		}
		m.Group, b, err = wirefmt.String(b)
		if err != nil {
			return nil, nil, err
		}
		m.Epoch, b, err = wirefmt.Uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		m.State, b, err = aggregate.ReadState(b)
		if err != nil {
			return nil, nil, err
		}
		m.Contributors, b, err = wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		np, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.Np = int(np)
		m.Unknown, b, err = wirefmt.Float(b)
		if err != nil {
			return nil, nil, err
		}
		return m, b, nil
	case tagBatch:
		if depth >= maxMsgDepth {
			return nil, nil, fmt.Errorf("core: batch nesting too deep: %w", wirefmt.ErrCorrupt)
		}
		n, isNil, b, err := wirefmt.Len(b, 1)
		if err != nil {
			return nil, nil, err
		}
		var m BatchMsg
		if !isNil {
			m.Items = make([]any, n)
			for i := range m.Items {
				m.Items[i], b, err = readMessage(b, depth+1)
				if err != nil {
					return nil, nil, err
				}
			}
		}
		return m, b, nil
	case tagResponse:
		var m ResponseMsg
		m.QID, b, err = readQID(b)
		if err != nil {
			return nil, nil, err
		}
		m.Group, b, err = wirefmt.String(b)
		if err != nil {
			return nil, nil, err
		}
		m.State, b, err = aggregate.ReadState(b)
		if err != nil {
			return nil, nil, err
		}
		m.Dup, b, err = wirefmt.Bool(b)
		if err != nil {
			return nil, nil, err
		}
		m.Contributors, b, err = wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		np, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.Np = int(np)
		m.Unknown, b, err = wirefmt.Float(b)
		if err != nil {
			return nil, nil, err
		}
		return m, b, nil
	case tagSubscribe:
		var m SubscribeMsg
		m.SID, b, err = readQID(b)
		if err != nil {
			return nil, nil, err
		}
		if m.Group, m.Eval, m.Attr, m.Spec, m.GroupBy, b, err = readQueryHeader(b); err != nil {
			return nil, nil, err
		}
		period, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.Period = durationOf(period)
		m.Gen, b, err = wirefmt.Uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		m.MinEpoch, b, err = wirefmt.Uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		m.ReplyTo, b, err = readID(b)
		if err != nil {
			return nil, nil, err
		}
		return m, b, nil
	case tagInstall:
		var m InstallMsg
		m.SID, b, err = readQID(b)
		if err != nil {
			return nil, nil, err
		}
		if m.Group, m.Eval, m.Attr, m.Spec, m.GroupBy, b, err = readQueryHeader(b); err != nil {
			return nil, nil, err
		}
		period, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.Period = durationOf(period)
		m.Gen, b, err = wirefmt.Uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		level, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.Level = int(level)
		m.Jump, b, err = wirefmt.Bool(b)
		if err != nil {
			return nil, nil, err
		}
		m.ReplyTo, b, err = readID(b)
		if err != nil {
			return nil, nil, err
		}
		return m, b, nil
	case tagSample:
		var m SampleMsg
		m.SID, b, err = readQID(b)
		if err != nil {
			return nil, nil, err
		}
		m.Group, b, err = wirefmt.String(b)
		if err != nil {
			return nil, nil, err
		}
		m.Epoch, b, err = wirefmt.Uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		at, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.At = durationOf(at)
		m.State, b, err = aggregate.ReadState(b)
		if err != nil {
			return nil, nil, err
		}
		m.Contributors, b, err = wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.Expected, b, err = wirefmt.Float(b)
		if err != nil {
			return nil, nil, err
		}
		return m, b, nil
	case tagCancel:
		var m CancelMsg
		m.SID, b, err = readQID(b)
		if err != nil {
			return nil, nil, err
		}
		m.Group, b, err = wirefmt.String(b)
		if err != nil {
			return nil, nil, err
		}
		return m, b, nil
	case tagStatus:
		var m StatusMsg
		m.Group, b, err = wirefmt.String(b)
		if err != nil {
			return nil, nil, err
		}
		m.Prune, b, err = wirefmt.Bool(b)
		if err != nil {
			return nil, nil, err
		}
		n, isNil, b, err := wirefmt.Len(b, ids.Bytes+2)
		if err != nil {
			return nil, nil, err
		}
		if !isNil {
			m.UpdateSet = make([]SetEntry, n)
			for i := range m.UpdateSet {
				e := &m.UpdateSet[i]
				if e.ID, b, err = readID(b); err != nil {
					return nil, nil, err
				}
				lvl, rest, err := wirefmt.Varint(b)
				if err != nil {
					return nil, nil, err
				}
				e.Level = int(lvl)
				if e.Jump, b, err = wirefmt.Bool(rest); err != nil {
					return nil, nil, err
				}
			}
		}
		np, b, err := wirefmt.Varint(b)
		if err != nil {
			return nil, nil, err
		}
		m.Np = int(np)
		m.Unknown, b, err = wirefmt.Float(b)
		if err != nil {
			return nil, nil, err
		}
		m.LastSeq, b, err = wirefmt.Uvarint(b)
		if err != nil {
			return nil, nil, err
		}
		return m, b, nil
	}
	return nil, nil, fmt.Errorf("core: wire message tag %d: %w", tag, wirefmt.ErrCorrupt)
}

// readQueryHeader decodes the Group/Eval/Attr/Spec/GroupBy run shared
// by SubscribeMsg and InstallMsg.
func readQueryHeader(b []byte) (group, eval, attr string, spec aggregate.Spec, groupBy string, rest []byte, err error) {
	if group, b, err = wirefmt.String(b); err != nil {
		return
	}
	if eval, b, err = wirefmt.String(b); err != nil {
		return
	}
	if attr, b, err = wirefmt.String(b); err != nil {
		return
	}
	if spec, b, err = aggregate.ReadSpec(b); err != nil {
		return
	}
	groupBy, rest, err = wirefmt.String(b)
	return
}

func appendQID(b []byte, q QueryID) []byte {
	b = append(b, q.Origin[:]...)
	return wirefmt.AppendUvarint(b, q.Num)
}

func readQID(b []byte) (QueryID, []byte, error) {
	var q QueryID
	raw, b, err := wirefmt.Bytes(b, ids.Bytes)
	if err != nil {
		return q, nil, err
	}
	copy(q.Origin[:], raw)
	q.Num, b, err = wirefmt.Uvarint(b)
	if err != nil {
		return q, nil, err
	}
	return q, b, nil
}

// durationOf keeps the varint→Duration conversion in one place (the
// wire carries nanoseconds).
func durationOf(ns int64) time.Duration { return time.Duration(ns) }

func readID(b []byte) (ids.ID, []byte, error) {
	var id ids.ID
	raw, b, err := wirefmt.Bytes(b, ids.Bytes)
	if err != nil {
		return id, nil, err
	}
	copy(id[:], raw)
	return id, b, nil
}
