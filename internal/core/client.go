package core

import "github.com/moara/moara/internal/value"

// This file defines the shared shapes of the unified client API (the
// root package's moara.Client). They live here — not in the root
// package — so the internal implementations (the simulated cluster
// view, the TCP agent, the query-service front-end) can satisfy the
// interface structurally without importing the root package.

// Sub is a live standing-query subscription handle returned by
// Subscribe: it identifies the subscription and tears it down.
type Sub interface {
	// ID returns the subscription's query identifier.
	ID() QueryID
	// Unsubscribe cancels the subscription, tearing down its state
	// across the cluster. It returns ErrUnknownSub if the subscription
	// is no longer live (double-unsubscribe).
	Unsubscribe() error
}

// AttrStore is the attribute view a client exposes: the local agent's
// monitoring hook (§3.1). The simulated cluster's per-node views and
// the TCP agent both return their node's own store.
type AttrStore interface {
	// Set writes one attribute.
	Set(name string, v value.Value)
	// Get reads one attribute; missing attributes return an invalid
	// Value.
	Get(name string) value.Value
}
