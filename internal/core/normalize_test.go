package core

import (
	"testing"
	"time"
)

// TestCanonicalKeyEquivalentRequests proves the service's cache /
// subsumption key collapses syntactic variants of the same query and
// separates genuinely different ones.
func TestCanonicalKeyEquivalentRequests(t *testing.T) {
	same := [][2]string{
		{"avg(cpu) where a = 1 and b = 2", "avg(cpu) where b = 2 and a = 1"},
		{"avg(cpu) where a = 1 and (b = 2 and c = 3)", "avg(cpu) where a = 1 and b = 2 and c = 3"},
		{"sum(x) where load > 3 and load > 5", "sum(x) where load > 5"},
		{"count(*) every 2s", "count(*) every 2000ms"},
		{"avg(cpu) group by slice every 1s", "avg( cpu ) group by slice every 1s"},
	}
	for _, pair := range same {
		ra, err := ParseRequest(pair[0])
		if err != nil {
			t.Fatalf("parse %q: %v", pair[0], err)
		}
		rb, err := ParseRequest(pair[1])
		if err != nil {
			t.Fatalf("parse %q: %v", pair[1], err)
		}
		if ka, kb := CanonicalKey(ra), CanonicalKey(rb); ka != kb {
			t.Errorf("keys differ:\n  %q -> %q\n  %q -> %q", pair[0], ka, pair[1], kb)
		}
	}
	distinct := [][2]string{
		{"avg(cpu)", "sum(cpu)"},
		{"avg(cpu)", "avg(mem)"},
		{"avg(cpu)", "avg(cpu) group by slice"},
		{"avg(cpu)", "avg(cpu) where a = 1"},
		{"avg(cpu) every 1s", "avg(cpu) every 2s"},
		{"avg(cpu)", "avg(cpu) every 1s"}, // one-shot vs standing
	}
	for _, pair := range distinct {
		ra, err := ParseRequest(pair[0])
		if err != nil {
			t.Fatalf("parse %q: %v", pair[0], err)
		}
		rb, err := ParseRequest(pair[1])
		if err != nil {
			t.Fatalf("parse %q: %v", pair[1], err)
		}
		if ka, kb := CanonicalKey(ra), CanonicalKey(rb); ka == kb {
			t.Errorf("keys collide: %q and %q both -> %q", pair[0], pair[1], ka)
		}
	}
}

// TestFormatRequestRoundTrip proves the text the service renders for a
// text-only backend re-parses to the same canonical key — installing
// the rendered form is installing the normalized request.
func TestFormatRequestRoundTrip(t *testing.T) {
	texts := []string{
		"avg(cpu)",
		"count(*)",
		"sum(load) where apache = true",
		"max(cpu) where a = 1 and b > 2.5 group by slice",
		"avg(mem) group by dc every 3s",
		"count(*) where os = linux or os = freebsd every 500ms",
		"top3(cpu) group by slice",
	}
	for _, text := range texts {
		req, err := ParseRequest(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		nreq := NormalizeRequest(req)
		rendered := FormatRequest(nreq)
		back, err := ParseRequest(rendered)
		if err != nil {
			t.Fatalf("re-parse %q (rendered from %q): %v", rendered, text, err)
		}
		if CanonicalKey(back) != CanonicalKey(req) {
			t.Errorf("round trip changed key:\n  orig     %q -> %q\n  rendered %q -> %q",
				text, CanonicalKey(req), rendered, CanonicalKey(back))
		}
		if back.Period != req.Period {
			t.Errorf("%q: period %v -> %v through render", text, req.Period, back.Period)
		}
	}
}

func TestNormalizeRequestTrimsNames(t *testing.T) {
	a := Request{Attr: " cpu ", GroupBy: " slice ", Period: time.Second}
	b := Request{Attr: "cpu", GroupBy: "slice", Period: time.Second}
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Fatalf("trimmed keys differ: %q vs %q", CanonicalKey(a), CanonicalKey(b))
	}
}
