package core

import (
	"testing"

	"github.com/moara/moara/internal/aggregate"
)

func TestParseRequestForms(t *testing.T) {
	tests := []struct {
		in       string
		wantAttr string
		wantKind aggregate.Kind
		wantK    int
		wantPred bool
	}{
		{"avg(mem_util)", "mem_util", aggregate.KindAvg, 0, false},
		{"select avg(mem_util)", "mem_util", aggregate.KindAvg, 0, false},
		{"count(*) where apache = true", "*", aggregate.KindCount, 0, true},
		{"SELECT MAX(cpu) WHERE x = 1 and y = 2", "cpu", aggregate.KindMax, 0, true},
		{"top3(load) where slice = s1", "load", aggregate.KindTopK, 3, true},
		{"sum( a ) where b < 2.5", "a", aggregate.KindSum, 0, true},
		{"enum(hostname) where dc = east", "hostname", aggregate.KindEnum, 0, true},
	}
	for _, tc := range tests {
		req, err := parseRequestText(tc.in)
		if err != nil {
			t.Errorf("parse %q: %v", tc.in, err)
			continue
		}
		if req.Attr != tc.wantAttr {
			t.Errorf("%q: attr = %q, want %q", tc.in, req.Attr, tc.wantAttr)
		}
		if req.Spec.Kind != tc.wantKind || req.Spec.K != tc.wantK {
			t.Errorf("%q: spec = %v", tc.in, req.Spec)
		}
		if (req.Pred != nil) != tc.wantPred {
			t.Errorf("%q: pred present = %v, want %v", tc.in, req.Pred != nil, tc.wantPred)
		}
	}
}

func TestParseRequestErrors(t *testing.T) {
	bad := []string{
		"",
		"avg",
		"avg(",
		"avg()",
		"bogus(x)",
		"avg(x) whence y = 1",
		"avg(x) where",
		"avg(x) where y ~ 1",
		"selectavg(x)",
	}
	for _, in := range bad {
		if _, err := parseRequestText(in); err == nil {
			t.Errorf("parse %q should fail", in)
		}
	}
}

func TestParseRequestSelectPrefixIsWordBounded(t *testing.T) {
	// "selector(x)" must not be treated as "select or(x)".
	if _, err := parseRequestText("selector(x)"); err == nil {
		t.Error("selector(x) should fail to parse")
	}
}
