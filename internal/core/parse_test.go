package core

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
)

func TestParseRequestForms(t *testing.T) {
	tests := []struct {
		in       string
		wantAttr string
		wantKind aggregate.Kind
		wantK    int
		wantPred bool
		wantBy   string
	}{
		{"avg(mem_util)", "mem_util", aggregate.KindAvg, 0, false, ""},
		{"select avg(mem_util)", "mem_util", aggregate.KindAvg, 0, false, ""},
		{"count(*) where apache = true", "*", aggregate.KindCount, 0, true, ""},
		{"SELECT MAX(cpu) WHERE x = 1 and y = 2", "cpu", aggregate.KindMax, 0, true, ""},
		{"top3(load) where slice = s1", "load", aggregate.KindTopK, 3, true, ""},
		{"sum( a ) where b < 2.5", "a", aggregate.KindSum, 0, true, ""},
		{"enum(hostname) where dc = east", "hostname", aggregate.KindEnum, 0, true, ""},
		{"avg(mem_util) group by slice", "mem_util", aggregate.KindAvg, 0, false, "slice"},
		{"avg(mem_util) group by slice where apache = true", "mem_util", aggregate.KindAvg, 0, true, "slice"},
		{"avg(mem_util) where apache = true group by slice", "mem_util", aggregate.KindAvg, 0, true, "slice"},
		{"count(*) GROUP BY os", "*", aggregate.KindCount, 0, false, "os"},
		{"select count(*) group by dc.rack where (a = 1) and (b = 2)", "*", aggregate.KindCount, 0, true, "dc.rack"},
		// "group" as a plain attribute name or inside a quoted literal
		// must not be mistaken for a clause.
		{"count(*) where group = true", "*", aggregate.KindCount, 0, true, ""},
		{`count(*) where note = "x group by rack y"`, "*", aggregate.KindCount, 0, true, ""},
	}
	for _, tc := range tests {
		req, err := parseRequestText(tc.in)
		if err != nil {
			t.Errorf("parse %q: %v", tc.in, err)
			continue
		}
		if req.Attr != tc.wantAttr {
			t.Errorf("%q: attr = %q, want %q", tc.in, req.Attr, tc.wantAttr)
		}
		if req.Spec.Kind != tc.wantKind || req.Spec.K != tc.wantK {
			t.Errorf("%q: spec = %v", tc.in, req.Spec)
		}
		if (req.Pred != nil) != tc.wantPred {
			t.Errorf("%q: pred present = %v, want %v", tc.in, req.Pred != nil, tc.wantPred)
		}
		if req.GroupBy != tc.wantBy {
			t.Errorf("%q: group by = %q, want %q", tc.in, req.GroupBy, tc.wantBy)
		}
	}
}

func TestParseRequestSketchForms(t *testing.T) {
	tests := []struct {
		in       string
		wantAttr string
		wantKind aggregate.Kind
		wantK    int
		wantQ    float64
		wantPred bool
		wantBy   string
	}{
		{"dcount(os)", "os", aggregate.KindDCount, 0, 0, false, ""},
		{"countdistinct(os)", "os", aggregate.KindDCount, 0, 0, false, ""},
		{"DCOUNT(os) where apache = true", "os", aggregate.KindDCount, 0, 0, true, ""},
		{"quantile(load, 0.99)", "load", aggregate.KindQuantile, 0, 0.99, false, ""},
		{"quantile(load,0.5) group by slice", "load", aggregate.KindQuantile, 0, 0.5, false, "slice"},
		{"percentile(load, 0.95)", "load", aggregate.KindQuantile, 0, 0.95, false, ""},
		{"p99(load)", "load", aggregate.KindQuantile, 0, 0.99, false, ""},
		{"p99.9(load) where apache = true", "load", aggregate.KindQuantile, 0, 0.999, true, ""},
		{"P50(load)", "load", aggregate.KindQuantile, 0, 0.5, false, ""},
		{"topkeys(os)", "os", aggregate.KindTopKeys, aggregate.DefaultTopKeys, 0, false, ""},
		{"topkeys(os, 4) group by site", "os", aggregate.KindTopKeys, 4, 0, false, "site"},
		{"topkeys5(os)", "os", aggregate.KindTopKeys, 5, 0, false, ""},
		{"union(slice)", "slice", aggregate.KindUnion, 0, 0, false, ""},
		{"collect(load) where apache = true", "load", aggregate.KindCollect, 0, 0, true, ""},
	}
	for _, tc := range tests {
		req, err := parseRequestText(tc.in)
		if err != nil {
			t.Errorf("parse %q: %v", tc.in, err)
			continue
		}
		if req.Attr != tc.wantAttr {
			t.Errorf("%q: attr = %q, want %q", tc.in, req.Attr, tc.wantAttr)
		}
		if req.Spec.Kind != tc.wantKind || req.Spec.K != tc.wantK || req.Spec.Q != tc.wantQ {
			t.Errorf("%q: spec = %+v", tc.in, req.Spec)
		}
		if (req.Pred != nil) != tc.wantPred {
			t.Errorf("%q: pred present = %v, want %v", tc.in, req.Pred != nil, tc.wantPred)
		}
		if req.GroupBy != tc.wantBy {
			t.Errorf("%q: group by = %q, want %q", tc.in, req.GroupBy, tc.wantBy)
		}
	}
}

func TestParseRequestEveryForms(t *testing.T) {
	tests := []struct {
		in         string
		wantPeriod time.Duration
		wantBy     string
		wantPred   bool
	}{
		{"avg(load) every 2s", 2 * time.Second, "", false},
		{"avg(load) where group = db every 2s", 2 * time.Second, "", true},
		{"avg(load) every 2s where group = db", 2 * time.Second, "", true},
		{"count(*) every 500ms", 500 * time.Millisecond, "", false},
		{"avg(x) every 1m30s where a = true", 90 * time.Second, "", true},
		{"avg(mem_util) group by slice every 2s", 2 * time.Second, "slice", false},
		{"avg(mem_util) every 2s group by slice where a = true", 2 * time.Second, "slice", true},
		{"avg(mem_util) where a = true group by slice every 250ms", 250 * time.Millisecond, "slice", true},
		{"count(*) EVERY 3s", 3 * time.Second, "", false},
		// "every" as an attribute name, literal value (including in
		// trailing position), group-by key, or inside a quoted string
		// must not be mistaken for a clause.
		{"count(*) where every = true", 0, "", true},
		{"count(*) where slice = every", 0, "", true},
		{"sum(x) where a = true and slice = every", 0, "", true},
		{"avg(x) group by every", 0, "every", false},
		{`count(*) where note = "tick every 2s"`, 0, "", true},
		// One-shot queries stay period-free.
		{"avg(mem_util) where a = true", 0, "", true},
	}
	for _, tc := range tests {
		req, err := parseRequestText(tc.in)
		if err != nil {
			t.Errorf("parse %q: %v", tc.in, err)
			continue
		}
		if req.Period != tc.wantPeriod {
			t.Errorf("%q: period = %v, want %v", tc.in, req.Period, tc.wantPeriod)
		}
		if req.GroupBy != tc.wantBy {
			t.Errorf("%q: group by = %q, want %q", tc.in, req.GroupBy, tc.wantBy)
		}
		if (req.Pred != nil) != tc.wantPred {
			t.Errorf("%q: pred present = %v, want %v", tc.in, req.Pred != nil, tc.wantPred)
		}
	}
}

func TestParseRequestEveryErrors(t *testing.T) {
	bad := []string{
		"avg(x) every",
		"avg(x) every 2x",
		"avg(x) every 2",
		"avg(x) every 0s",
		"avg(x) every -5s",
		"avg(x) every 2s every 3s",
		"avg(x) every 1s every 1s where a = true",
		"avg(x) every 2s trailing garbage",
		"avg(x) group by every 2s",
		"avg(x) where every 2s",
		"avg(x) every 2s group by",
		"avg(x) every 2s where",
	}
	for _, in := range bad {
		if _, err := parseRequestText(in); err == nil {
			t.Errorf("parse %q should fail", in)
		}
	}
}

func TestParseRequestErrors(t *testing.T) {
	bad := []string{
		"",
		"avg",
		"avg(",
		"avg()",
		"bogus(x)",
		"avg(x) whence y = 1",
		"avg(x) where",
		"avg(x) where y ~ 1",
		"selectavg(x)",
		"avg(x) group",
		"avg(x) group slice",
		"avg(x) group by",
		"avg(x) group by *",
		"avg(x) group by (slice)",
		"avg(x) group by slice extra",
		"avg(x) group by slice group by os",
		"avg(x) where y = 1 group by",
		"avg(x) trailing garbage",
		// Sketch argument-list errors.
		"quantile(x)",         // quantile requires a q argument
		"quantile(x, 2)",      // q outside (0,1)
		"quantile(x, 0)",      // q outside (0,1)
		"quantile(x, nan)",    // non-numeric q
		"quantile(x,)",        // empty argument
		"quantile(x,,)",       // argument itself contains a comma
		"quantile(x, 0.5, 3)", // too many arguments
		"p0(x)",               // pNN must be in (0,100)
		"p100(x)",             // pNN must be in (0,100)
		"topkeys(x, 0)",       // k must be positive
		"topkeys(x, -2)",      // k must be positive
		"topkeys(x, three)",   // non-numeric k
		"topkeys0(x)",         // suffix form k must be positive
		"sum(x, 3)",           // exact aggregates take no argument
		"dcount(os, 4)",       // dcount takes no argument
		"union(slice, 9)",     // union takes no argument
		"top3(load, 4)",       // prefix forms take no argument
	}
	for _, in := range bad {
		if _, err := parseRequestText(in); err == nil {
			t.Errorf("parse %q should fail", in)
		}
	}
}

func TestParseRequestSelectPrefixIsWordBounded(t *testing.T) {
	// "selector(x)" must not be treated as "select or(x)".
	if _, err := parseRequestText("selector(x)"); err == nil {
		t.Error("selector(x) should fail to parse")
	}
}
