package core

import (
	"testing"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/predicate"
)

// FuzzParseRequestText fuzzes the front-end query language end to end
// (parseRequestText -> cutEvery/cutGroupBy -> aggregate.ParseSpec ->
// predicate.ParseExpr), seeded with the grammar examples from parse.go
// plus known-tricky shapes. The parser must never panic, and accepted
// requests must satisfy the Request invariants the planner relies on.
func FuzzParseRequestText(f *testing.F) {
	seeds := []string{
		// The grammar examples documented on parseRequestText.
		"count(*) where service_x = true",
		"select max(cpu_usage) where service_x = true and apache = true",
		"avg(mem_util) group by slice where apache = true",
		"count(*) where apache = true group by os",
		"top3(load) where (service_x = true) and (apache = true)",
		"avg(load) where group = db every 2s",
		"avg(mem_util) group by slice every 500ms",
		// Sketch aggregates and their argument lists.
		"dcount(os) every 2s",
		"quantile(load, 0.99) group by slice",
		"p99(load) where apache = true",
		"p99.9(load)",
		"topkeys(os, 4) group by site",
		"topkeys5(os)",
		"union(slice)",
		"collect(load) every 1s",
		"quantile(x)",
		"quantile(x, 2)",
		"quantile(x,,)",
		"topkeys(x, 0)",
		"sum(x, 3)",
		// Clause keywords as attribute names and literals.
		"sum(every) where every = every",
		"count(*) where group = group",
		"min(x) where slice = 'group by'",
		"enum(x) where s = \"every 5s\"",
		// Degenerate and hostile shapes.
		"select",
		"count()",
		"count(*) where",
		"count(*) every",
		"count(*) every 5s every 5s",
		"count(*) group by",
		"top(x)",
		"top999999999999999999999(x)",
		"avg(mem_util) every -5s",
		"avg(mem_util) every 5",
		"std(x) where ((a = 1) and (b = 2)) or not (c < 3)",
		"count(*) where a = \xff\xfe",
		"avg(x) group by é",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		req, err := parseRequestText(s)
		if err != nil {
			return
		}
		if req.Attr == "" {
			t.Fatalf("accepted %q with empty attribute", s)
		}
		if req.Spec.Kind == aggregate.KindInvalid {
			t.Fatalf("accepted %q with invalid spec", s)
		}
		if req.Period < 0 {
			t.Fatalf("accepted %q with negative period %v", s, req.Period)
		}
		if req.GroupBy != "" && !validGroupKey(req.GroupBy) {
			t.Fatalf("accepted %q with bad group key %q", s, req.GroupBy)
		}
		if req.Pred != nil {
			// The canonical form is what travels on the wire (QueryMsg
			// Group/Eval); nodes must be able to re-parse it.
			canon := req.Pred.Canon()
			if _, perr := predicate.ParseExpr(canon); perr != nil {
				t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, s, perr)
			}
		}
	})
}
