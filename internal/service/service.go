// Package service implements the Moara query-service front-end: a
// layer between callers and the cluster that makes Q ≫ N workloads
// affordable. "Millions of users" means the query count dwarfs the node
// count, and most of those queries are the same query; the service
// exploits that three ways:
//
//   - Subsumption sharing: an incoming standing query whose normalized
//     form (predicate canonicalized, clauses trimmed, same period grid)
//     matches a live one attaches to the existing sample stream instead
//     of installing a second tree. One in-tree subscription serves any
//     number of subscribers; the install is refcounted and torn down on
//     the last unsubscribe.
//   - Result caching: one-shot answers are cached in a TTL'd LRU keyed
//     by the normalized request. A cached answer is stamped
//     (Result.Cached, Result.Age) so callers can see — and bound — the
//     staleness they are accepting. Concurrent identical one-shots are
//     single-flighted: one execution, every caller gets the answer.
//   - Admission control: a per-tenant token bucket plus a queue-depth
//     cap shed excess load with a typed ErrOverload instead of melting
//     the cluster. Sheds are deterministic for a deterministic clock.
//
// The service implements the same client shape as the deployments it
// fronts (the root package's moara.Client), so callers cannot tell —
// except by the stamps and the message bill — whether they talk to the
// engine or the service.
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/moara/moara/internal/core"
)

// Backend is the inner client the service fronts. It is the same shape
// as the root package's moara.Client, so any deployment form plugs in.
type Backend interface {
	Query(ctx context.Context, text string) (core.Result, error)
	Execute(ctx context.Context, req core.Request) (core.Result, error)
	Subscribe(ctx context.Context, text string, fn func(core.Sample)) (core.Sub, error)
	Attrs() core.AttrStore
}

// requestSubscriber is the optional fast path a backend can provide to
// install an already-parsed (normalized) request directly, bypassing
// text re-rendering. The simulated-cluster client and the TCP agent
// both provide it.
type requestSubscriber interface {
	SubscribeRequest(ctx context.Context, req core.Request, fn func(core.Sample)) (core.Sub, error)
}

// clocked is the optional clock a backend can provide; the simulated
// cluster exposes its virtual clock this way, which is what makes
// cache ages and admission decisions deterministic under a seed.
type clocked interface {
	Now() time.Duration
}

// Options configure a Service. The zero value is a pass-through with
// subsumption sharing only: no caching, no admission, synchronous
// fan-out.
type Options struct {
	// CacheTTL bounds the staleness of served one-shot answers; 0
	// disables the result cache entirely.
	CacheTTL time.Duration
	// CacheSize caps the cache entry count (LRU eviction; default 1024
	// when caching is enabled).
	CacheSize int
	// Rate is the per-tenant admission rate in requests/second; 0
	// disables the token bucket.
	Rate float64
	// Burst is the token bucket capacity (default max(Rate, 1)).
	Burst float64
	// MaxInflight caps concurrently executing (non-cached) one-shots;
	// excess requests are shed with ErrOverload. 0 means unlimited.
	MaxInflight int
	// Buffer switches subscription fan-out to asynchronous hand-off: a
	// per-subscriber buffered channel of this depth, drained by a
	// dispatcher goroutine, so a slow subscriber callback can never
	// stall the engine's event loop. When the buffer is full, samples
	// are dropped oldest-first for that subscriber (monitoring streams
	// prefer fresh data over complete history). 0 keeps synchronous
	// fan-out, which preserves the simulator's determinism.
	Buffer int
	// Now overrides the service clock (cache ages, bucket refill).
	// Defaults to the backend's own clock when it has one, else wall
	// time since service creation.
	Now func() time.Duration
}

// Service is the query-service front-end. It is safe for concurrent
// use; all state is guarded by one mutex, and backend calls are made
// outside it.
type Service struct {
	inner Backend
	opts  Options
	start time.Time

	mu       sync.Mutex
	shared   map[string]*sharedSub
	cache    *resultCache
	flights  map[string]*flight
	inflight int
	tenants  map[string]*bucket
	stats    Stats
}

// Stats is a point-in-time snapshot of the service's behavior.
type Stats struct {
	// Installs counts in-tree subscriptions the service created.
	Installs int64
	// Attaches counts subscribers served by an existing stream
	// (subsumption hits).
	Attaches int64
	// LiveStreams is the number of distinct normalized standing forms
	// currently installed.
	LiveStreams int
	// Subscribers is the total live subscriber count across streams.
	Subscribers int
	// CacheHits / CacheMisses count one-shot cache outcomes; CacheLen
	// is the current entry count.
	CacheHits   int64
	CacheMisses int64
	CacheLen    int
	// SingleFlight counts one-shots that piggybacked on an identical
	// in-flight execution.
	SingleFlight int64
	// Shed counts requests rejected with ErrOverload.
	Shed int64
}

// New builds a service front-end over inner.
func New(inner Backend, opts Options) *Service {
	if opts.CacheTTL > 0 && opts.CacheSize <= 0 {
		opts.CacheSize = 1024
	}
	if opts.Rate > 0 && opts.Burst <= 0 {
		opts.Burst = opts.Rate
		if opts.Burst < 1 {
			opts.Burst = 1
		}
	}
	s := &Service{
		inner:   inner,
		opts:    opts,
		start:   time.Now(),
		shared:  make(map[string]*sharedSub),
		flights: make(map[string]*flight),
		tenants: make(map[string]*bucket),
	}
	if opts.CacheTTL > 0 {
		s.cache = newResultCache(opts.CacheSize)
	}
	if s.opts.Now == nil {
		if c, ok := inner.(clocked); ok {
			s.opts.Now = c.Now
		} else {
			s.opts.Now = func() time.Duration { return time.Since(s.start) }
		}
	}
	return s
}

func (s *Service) now() time.Duration { return s.opts.Now() }

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.LiveStreams = len(s.shared)
	for _, sh := range s.shared {
		st.Subscribers += len(sh.subs)
	}
	if s.cache != nil {
		st.CacheLen = s.cache.len()
	}
	return st
}

// Attrs exposes the backend's attribute store.
func (s *Service) Attrs() core.AttrStore { return s.inner.Attrs() }

// Query parses and runs a one-shot query through the cache and
// admission layers. Parse failures wrap core.ErrParse.
func (s *Service) Query(ctx context.Context, text string) (core.Result, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return core.Result{}, err
	}
	return s.Execute(ctx, req)
}

// Execute runs a parsed one-shot request: admission, then the result
// cache, then a single-flighted execution on the backend. Requests
// carrying an `every` period are standing queries and are rejected with
// core.ErrStandingOnly — run them via Subscribe.
func (s *Service) Execute(ctx context.Context, req core.Request) (core.Result, error) {
	if req.Period > 0 {
		return core.Result{}, fmt.Errorf("%w (every %v)", core.ErrStandingOnly, req.Period)
	}
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	if err := s.admit(ctx); err != nil {
		return core.Result{}, err
	}
	nreq := core.NormalizeRequest(req)
	key := core.CanonicalKey(nreq)

	s.mu.Lock()
	if s.cache != nil {
		if res, ok := s.cache.get(key, s.now(), s.opts.CacheTTL); ok {
			s.stats.CacheHits++
			s.mu.Unlock()
			return res, nil
		}
		s.stats.CacheMisses++
	}
	if fl, ok := s.flights[key]; ok {
		// An identical request is executing right now: piggyback on it
		// instead of issuing a duplicate dissemination.
		s.stats.SingleFlight++
		s.mu.Unlock()
		select {
		case <-fl.done:
			return fl.res, fl.err
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	if s.opts.MaxInflight > 0 && s.inflight >= s.opts.MaxInflight {
		s.stats.Shed++
		s.mu.Unlock()
		return core.Result{}, fmt.Errorf("%w: %d executions in flight", core.ErrOverload, s.opts.MaxInflight)
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[key] = fl
	s.inflight++
	s.mu.Unlock()

	res, err := s.inner.Execute(ctx, nreq)

	s.mu.Lock()
	fl.res, fl.err = res, err
	close(fl.done)
	delete(s.flights, key)
	s.inflight--
	if s.cache != nil && err == nil {
		s.cache.put(key, res, s.now())
	}
	s.mu.Unlock()
	return res, err
}

// Subscribe installs (or joins) a standing query. The request text is
// parsed and normalized; if a live stream with the same normalized form
// exists, the new subscriber fans out from it — no new tree state
// anywhere in the cluster. Otherwise the service installs the
// normalized request on the backend once and becomes the stream's
// owner. The returned Sub detaches this subscriber; the in-tree
// subscription is torn down when the last subscriber detaches.
//
// fn's execution context depends on Options.Buffer: with Buffer == 0 it
// runs synchronously on the engine's delivery goroutine (the simulated
// cluster's event loop — it must not block or call back into the
// service); with Buffer > 0 it runs on a per-subscriber dispatcher
// goroutine and may be arbitrarily slow, at the price of dropped
// samples once the buffer fills.
func (s *Service) Subscribe(ctx context.Context, text string, fn func(core.Sample)) (core.Sub, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return nil, err
	}
	return s.SubscribeRequest(ctx, req, fn)
}

// SubscribeRequest is Subscribe for an already-parsed request.
func (s *Service) SubscribeRequest(ctx context.Context, req core.Request, fn func(core.Sample)) (core.Sub, error) {
	if req.Period <= 0 {
		return nil, fmt.Errorf("%w: standing query needs a period (every clause)", core.ErrNotStanding)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	nreq := core.NormalizeRequest(req)
	key := core.CanonicalKey(nreq)

	s.mu.Lock()
	sh, ok := s.shared[key]
	if ok {
		sub := sh.attach(s, fn)
		s.stats.Attaches++
		ready := sh.ready
		s.mu.Unlock()
		// The stream may still be installing (another goroutine's
		// Subscribe is mid-flight on the backend): wait for the verdict
		// so a failed install propagates to every joiner.
		<-ready
		if sh.installErr != nil {
			return nil, sh.installErr
		}
		return sub, nil
	}
	sh = &sharedSub{key: key, lock: &s.mu, ready: make(chan struct{})}
	sub := sh.attach(s, fn)
	s.shared[key] = sh
	s.stats.Installs++
	s.mu.Unlock()

	inner, err := s.installInner(ctx, nreq, sh)

	s.mu.Lock()
	if err != nil {
		delete(s.shared, key)
		sh.installErr = err
		sh.stopAllLocked()
		close(sh.ready)
		s.mu.Unlock()
		return nil, err
	}
	sh.inner = inner
	close(sh.ready)
	s.mu.Unlock()
	return sub, nil
}

// installInner installs the normalized request on the backend, using
// the parsed-request fast path when available.
func (s *Service) installInner(ctx context.Context, nreq core.Request, sh *sharedSub) (core.Sub, error) {
	if rs, ok := s.inner.(requestSubscriber); ok {
		return rs.SubscribeRequest(ctx, nreq, sh.deliver)
	}
	// Text-only backend: re-render the normalized request. The rendered
	// form re-parses to the same normalized request by construction.
	return s.inner.Subscribe(ctx, core.FormatRequest(nreq), sh.deliver)
}

// sharedSub is one live normalized standing form: a single in-tree
// subscription fanned out to any number of subscribers.
type sharedSub struct {
	key   string
	lock  *sync.Mutex // the owning service's mutex
	inner core.Sub
	ready chan struct{}
	// installErr is the backend install failure, if any; set before
	// ready closes.
	installErr error
	// subs holds the live subscribers in attach order — fan-out order
	// is deterministic, which keeps simulated runs seed-reproducible.
	subs   []*subscriber
	nextID uint64
}

// subscriber is one caller's attachment to a shared stream.
type subscriber struct {
	id uint64
	fn func(core.Sample)
	// ch/stop implement the buffered hand-off mode; nil in synchronous
	// mode.
	ch   chan core.Sample
	stop chan struct{}
}

// attach adds a subscriber (caller holds s.mu).
func (sh *sharedSub) attach(s *Service, fn func(core.Sample)) *svcSub {
	sh.nextID++
	sub := &subscriber{id: sh.nextID, fn: fn}
	if s.opts.Buffer > 0 {
		sub.ch = make(chan core.Sample, s.opts.Buffer)
		sub.stop = make(chan struct{})
		go sub.dispatch()
	}
	sh.subs = append(sh.subs, sub)
	return &svcSub{svc: s, sh: sh, sub: sub}
}

// deliver fans one engine sample out to every subscriber. It runs on
// the engine's delivery goroutine; in synchronous mode the subscriber
// callbacks run inline, in buffered mode delivery never blocks — a
// full buffer drops the subscriber's oldest queued sample first, so a
// stalled consumer degrades to a thinned stream of fresh samples.
func (sh *sharedSub) deliver(sample core.Sample) {
	// Snapshot under the service lock so fan-out races cleanly with
	// attach/detach; invoke outside it so a callback cannot deadlock
	// against Subscribe/Unsubscribe on other goroutines.
	sh.mu().Lock()
	targets := make([]*subscriber, len(sh.subs))
	copy(targets, sh.subs)
	sh.mu().Unlock()
	for _, sub := range targets {
		if sub.ch == nil {
			sub.fn(sample)
			continue
		}
		for {
			select {
			case sub.ch <- sample:
			default:
				select {
				case <-sub.ch: // evict oldest, retry
					continue
				default:
				}
			}
			break
		}
	}
}

func (sub *subscriber) dispatch() {
	for {
		select {
		case <-sub.stop:
			return
		case s := <-sub.ch:
			sub.fn(s)
		}
	}
}

// stopAllLocked stops every subscriber's dispatcher (install failure
// teardown; caller holds the service lock).
func (sh *sharedSub) stopAllLocked() {
	for _, sub := range sh.subs {
		if sub.stop != nil {
			close(sub.stop)
		}
	}
	sh.subs = nil
}

// svcSub is the handle returned to one subscriber.
type svcSub struct {
	svc  *Service
	sh   *sharedSub
	sub  *subscriber
	dead bool
}

// ID returns the underlying engine subscription's identifier. Subsumed
// subscribers share it: they are, by design, the same subscription.
func (h *svcSub) ID() core.QueryID {
	<-h.sh.ready
	if h.sh.inner == nil {
		return core.QueryID{}
	}
	return h.sh.inner.ID()
}

// Unsubscribe detaches this subscriber; the last detach tears down the
// in-tree subscription. A second Unsubscribe reports ErrUnknownSub.
func (h *svcSub) Unsubscribe() error {
	s := h.svc
	<-h.sh.ready
	s.mu.Lock()
	if h.dead {
		s.mu.Unlock()
		return fmt.Errorf("%w: subscriber already detached", core.ErrUnknownSub)
	}
	h.dead = true
	sh := h.sh
	for i, sub := range sh.subs {
		if sub == h.sub {
			sh.subs = append(sh.subs[:i], sh.subs[i+1:]...)
			break
		}
	}
	if h.sub.stop != nil {
		close(h.sub.stop)
	}
	last := len(sh.subs) == 0
	if last {
		delete(s.shared, sh.key)
	}
	inner := sh.inner
	s.mu.Unlock()
	if last && inner != nil {
		return inner.Unsubscribe()
	}
	return nil
}

// mu is the owning service's lock (stashed at creation).
func (sh *sharedSub) mu() *sync.Mutex { return sh.lock }
