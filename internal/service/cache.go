package service

import (
	"container/list"
	"time"

	"github.com/moara/moara/internal/core"
)

// resultCache is a TTL'd LRU over completed one-shot results, keyed by
// the normalized request. It is not internally synchronized — the
// Service drives it under its own mutex.
type resultCache struct {
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res core.Result
	at  time.Duration // service clock at execution time
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key if it is younger than ttl,
// stamped with its age. Expired entries are evicted on the way out.
func (c *resultCache) get(key string, now, ttl time.Duration) (core.Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return core.Result{}, false
	}
	ent := el.Value.(*cacheEntry)
	age := now - ent.at
	if age > ttl {
		c.order.Remove(el)
		delete(c.entries, key)
		return core.Result{}, false
	}
	c.order.MoveToFront(el)
	res := ent.res
	res.Cached = true
	res.Age = age
	return res, true
}

// put stores a fresh result, evicting the least recently used entry
// past capacity.
func (c *resultCache) put(key string, res core.Result, now time.Duration) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		el.Value.(*cacheEntry).at = now
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res, at: now})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.order.Len() }

// flight is one in-progress execution that concurrent identical
// requests piggyback on (single-flight).
type flight struct {
	done chan struct{}
	res  core.Result
	err  error
}
