package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
)

// fakeBackend is a controllable Backend + requestSubscriber + clocked:
// it counts executions and installs, lets tests advance the clock by
// hand, and can deliver samples into live subscriptions.
type fakeBackend struct {
	mu       sync.Mutex
	clock    time.Duration
	execs    int
	execGate chan struct{} // when non-nil, Execute blocks until closed
	execErr  error
	subErr   error
	nextNum  uint64
	live     map[uint64]func(core.Sample) // installed streams by QueryID.Num
	cancels  int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{live: make(map[uint64]func(core.Sample))}
}

func (f *fakeBackend) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.clock
}

func (f *fakeBackend) advance(d time.Duration) {
	f.mu.Lock()
	f.clock += d
	f.mu.Unlock()
}

func (f *fakeBackend) Attrs() core.AttrStore { return nil }

func (f *fakeBackend) Query(ctx context.Context, text string) (core.Result, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return core.Result{}, err
	}
	return f.Execute(ctx, req)
}

func (f *fakeBackend) Execute(ctx context.Context, req core.Request) (core.Result, error) {
	f.mu.Lock()
	f.execs++
	n := f.execs
	gate := f.execGate
	err := f.execErr
	f.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if err != nil {
		return core.Result{}, err
	}
	// The answer encodes which execution produced it, so cache hits are
	// distinguishable from re-executions.
	return core.Result{Contributors: int64(n)}, nil
}

func (f *fakeBackend) Subscribe(ctx context.Context, text string, fn func(core.Sample)) (core.Sub, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return nil, err
	}
	return f.SubscribeRequest(ctx, req, fn)
}

func (f *fakeBackend) SubscribeRequest(ctx context.Context, req core.Request, fn func(core.Sample)) (core.Sub, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.subErr != nil {
		return nil, f.subErr
	}
	f.nextNum++
	num := f.nextNum
	f.live[num] = fn
	return &fakeSub{f: f, num: num}, nil
}

// emit delivers one sample to every live stream, as the engine would on
// an epoch boundary.
func (f *fakeBackend) emit(s core.Sample) {
	f.mu.Lock()
	fns := make([]func(core.Sample), 0, len(f.live))
	for _, fn := range f.live {
		fns = append(fns, fn)
	}
	f.mu.Unlock()
	for _, fn := range fns {
		fn(s)
	}
}

func (f *fakeBackend) installed() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.live)
}

func (f *fakeBackend) cancelled() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cancels
}

type fakeSub struct {
	f   *fakeBackend
	num uint64
}

func (s *fakeSub) ID() core.QueryID { return core.QueryID{Origin: ids.FromKey("fake"), Num: s.num} }

func (s *fakeSub) Unsubscribe() error {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	if _, ok := s.f.live[s.num]; !ok {
		return fmt.Errorf("%w: %d", core.ErrUnknownSub, s.num)
	}
	delete(s.f.live, s.num)
	s.f.cancels++
	return nil
}

var _ Backend = (*fakeBackend)(nil)
var _ requestSubscriber = (*fakeBackend)(nil)
var _ clocked = (*fakeBackend)(nil)

func sample(epoch uint64, v int64) core.Sample {
	return core.Sample{Epoch: epoch, Result: core.Result{Contributors: v}}
}

func TestCacheHitWithinTTL(t *testing.T) {
	fb := newFakeBackend()
	s := New(fb, Options{CacheTTL: 10 * time.Second})
	ctx := context.Background()

	r1, err := s.Query(ctx, "avg(cpu)")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.Age != 0 {
		t.Fatalf("fresh result stamped cached: %+v", r1)
	}
	fb.advance(3 * time.Second)
	r2, err := s.Query(ctx, "avg( cpu )") // syntactic variant, same key
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("expected cache hit")
	}
	if r2.Age != 3*time.Second {
		t.Fatalf("Age = %v, want 3s", r2.Age)
	}
	if r2.Contributors != r1.Contributors {
		t.Fatalf("cache returned a different answer: %d vs %d", r2.Contributors, r1.Contributors)
	}
	if fb.execs != 1 {
		t.Fatalf("backend executed %d times, want 1", fb.execs)
	}

	// Past the TTL the entry expires and the backend runs again.
	fb.advance(8 * time.Second)
	r3, err := s.Query(ctx, "avg(cpu)")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("expired entry served from cache")
	}
	if fb.execs != 2 {
		t.Fatalf("backend executed %d times, want 2", fb.execs)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	fb := newFakeBackend()
	s := New(fb, Options{CacheTTL: time.Hour, CacheSize: 2})
	ctx := context.Background()

	for _, q := range []string{"avg(a)", "avg(b)", "avg(c)"} { // a evicted
		if _, err := s.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.CacheLen != 2 {
		t.Fatalf("cache len = %d, want 2", st.CacheLen)
	}
	execs := fb.execs
	if res, _ := s.Query(ctx, "avg(b)"); !res.Cached {
		t.Fatal("avg(b) should still be cached")
	}
	if res, _ := s.Query(ctx, "avg(a)"); res.Cached {
		t.Fatal("avg(a) should have been evicted")
	}
	if fb.execs != execs+1 {
		t.Fatalf("backend executed %d extra times, want 1", fb.execs-execs)
	}
}

func TestSingleFlight(t *testing.T) {
	fb := newFakeBackend()
	gate := make(chan struct{})
	fb.execGate = gate
	s := New(fb, Options{CacheTTL: time.Hour})
	ctx := context.Background()

	const callers = 8
	var wg sync.WaitGroup
	results := make([]core.Result, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Query(ctx, "sum(load)")
		}(i)
	}
	// Wait until one execution is in flight, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		fb.mu.Lock()
		n := fb.execs
		fb.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no execution started")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].Contributors != results[0].Contributors {
			t.Fatalf("caller %d got a different answer", i)
		}
	}
	if fb.execs != 1 {
		t.Fatalf("backend executed %d times, want 1 (single-flight)", fb.execs)
	}
	if st := s.Stats(); st.SingleFlight == 0 {
		t.Fatal("no single-flight piggybacks recorded")
	}
}

func TestSubsumptionSharesOneInstall(t *testing.T) {
	fb := newFakeBackend()
	s := New(fb, Options{})
	ctx := context.Background()

	var gotA, gotB, gotC []core.Sample
	subA, err := s.Subscribe(ctx, "avg(cpu) every 1s", func(sm core.Sample) { gotA = append(gotA, sm) })
	if err != nil {
		t.Fatal(err)
	}
	// Same normalized form, different spelling: attaches, no new install.
	subB, err := s.Subscribe(ctx, "avg( cpu ) every 1000ms", func(sm core.Sample) { gotB = append(gotB, sm) })
	if err != nil {
		t.Fatal(err)
	}
	// Different period: its own install.
	subC, err := s.Subscribe(ctx, "avg(cpu) every 2s", func(sm core.Sample) { gotC = append(gotC, sm) })
	if err != nil {
		t.Fatal(err)
	}
	if fb.installed() != 2 {
		t.Fatalf("backend has %d installs, want 2", fb.installed())
	}
	st := s.Stats()
	if st.Installs != 2 || st.Attaches != 1 || st.LiveStreams != 2 || st.Subscribers != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if subA.ID() != subB.ID() {
		t.Fatal("subsumed subscribers should share the engine subscription ID")
	}
	if subA.ID() == subC.ID() {
		t.Fatal("distinct streams must not share an ID")
	}

	fb.emit(sample(1, 42))
	if len(gotA) != 1 || len(gotB) != 1 {
		t.Fatalf("fan-out missed a subscriber: A=%d B=%d", len(gotA), len(gotB))
	}
	if len(gotC) != 1 {
		t.Fatalf("C got %d samples, want 1 (fake emits to all streams)", len(gotC))
	}

	// First detach keeps the stream alive; last detach tears it down.
	if err := subA.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if fb.cancelled() != 0 {
		t.Fatal("stream torn down while a subscriber remains")
	}
	fb.emit(sample(2, 43))
	if len(gotA) != 1 {
		t.Fatal("detached subscriber still receiving")
	}
	if len(gotB) != 2 {
		t.Fatal("remaining subscriber lost the stream")
	}
	if err := subB.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if fb.cancelled() != 1 {
		t.Fatalf("cancels = %d, want 1 after last detach", fb.cancelled())
	}
	if err := subC.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if fb.installed() != 0 {
		t.Fatalf("%d streams left installed", fb.installed())
	}
	// Double unsubscribe is a typed error.
	if err := subB.Unsubscribe(); !errors.Is(err, core.ErrUnknownSub) {
		t.Fatalf("double unsubscribe: %v, want ErrUnknownSub", err)
	}

	// A fresh subscribe after teardown reinstalls.
	sub2, err := s.Subscribe(ctx, "avg(cpu) every 1s", func(core.Sample) {})
	if err != nil {
		t.Fatal(err)
	}
	if fb.installed() != 1 {
		t.Fatalf("reinstall: %d streams, want 1", fb.installed())
	}
	if err := sub2.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
}

func TestSketchSpellingsShareOneInstall(t *testing.T) {
	fb := newFakeBackend()
	s := New(fb, Options{})
	ctx := context.Background()

	// Each pair spells the same canonical sketch request two ways; the
	// second spelling must attach to the first install, not create one.
	pairs := [][2]string{
		{"quantile(cpu, 0.99) every 2s", "p99(cpu) every 2s"},
		{"quantile(load, 0.999) every 1s", "p99.9(load) every 1s"},
		{"dcount(os) every 2s", "countdistinct(os) every 2s"},
		{"topkeys(os, 5) every 2s", "topkeys5(os) every 2s"},
	}
	var subs []core.Sub
	for _, p := range pairs {
		a, err := s.Subscribe(ctx, p[0], func(core.Sample) {})
		if err != nil {
			t.Fatalf("subscribe %q: %v", p[0], err)
		}
		b, err := s.Subscribe(ctx, p[1], func(core.Sample) {})
		if err != nil {
			t.Fatalf("subscribe %q: %v", p[1], err)
		}
		if a.ID() != b.ID() {
			t.Errorf("%q and %q did not share a stream", p[0], p[1])
		}
		subs = append(subs, a, b)
	}
	if fb.installed() != len(pairs) {
		t.Fatalf("backend has %d installs, want %d", fb.installed(), len(pairs))
	}
	st := s.Stats()
	if st.Installs != int64(len(pairs)) || st.Attaches != int64(len(pairs)) {
		t.Fatalf("stats = %+v", st)
	}
	// A different rank on the same attribute is its own stream.
	c, err := s.Subscribe(ctx, "quantile(cpu, 0.5) every 2s", func(core.Sample) {})
	if err != nil {
		t.Fatal(err)
	}
	if fb.installed() != len(pairs)+1 {
		t.Fatalf("p50 reused an install: %d, want %d", fb.installed(), len(pairs)+1)
	}
	subs = append(subs, c)
	for _, sub := range subs {
		if err := sub.Unsubscribe(); err != nil {
			t.Fatal(err)
		}
	}
	if fb.installed() != 0 {
		t.Fatalf("%d streams left installed", fb.installed())
	}
}

func TestSubscribeInstallFailurePropagates(t *testing.T) {
	fb := newFakeBackend()
	fb.subErr = errors.New("install failed")
	s := New(fb, Options{})
	if _, err := s.Subscribe(context.Background(), "avg(cpu) every 1s", func(core.Sample) {}); err == nil {
		t.Fatal("expected install failure")
	}
	if st := s.Stats(); st.LiveStreams != 0 || st.Subscribers != 0 {
		t.Fatalf("failed install left state: %+v", st)
	}
	// The key must not be poisoned: a later subscribe retries.
	fb.subErr = nil
	sub, err := s.Subscribe(context.Background(), "avg(cpu) every 1s", func(core.Sample) {})
	if err != nil {
		t.Fatal(err)
	}
	sub.Unsubscribe()
}

func TestSubscribeRejectsOneShot(t *testing.T) {
	s := New(newFakeBackend(), Options{})
	if _, err := s.Subscribe(context.Background(), "avg(cpu)", func(core.Sample) {}); !errors.Is(err, core.ErrNotStanding) {
		t.Fatalf("err = %v, want ErrNotStanding", err)
	}
}

func TestExecuteRejectsStanding(t *testing.T) {
	s := New(newFakeBackend(), Options{})
	if _, err := s.Query(context.Background(), "avg(cpu) every 1s"); !errors.Is(err, core.ErrStandingOnly) {
		t.Fatalf("err = %v, want ErrStandingOnly", err)
	}
}

// TestAdmissionDeterministic drives the token bucket on the fake's
// manual clock: with Rate=2/s and Burst=2, a fixed request schedule
// produces exactly the same admit/shed pattern every run.
func TestAdmissionDeterministic(t *testing.T) {
	run := func() []bool {
		fb := newFakeBackend()
		s := New(fb, Options{Rate: 2, Burst: 2})
		ctx := WithTenant(context.Background(), "t1")
		var admitted []bool
		// Schedule: 4 requests at t=0, then one each 250ms.
		for i := 0; i < 4; i++ {
			_, err := s.Query(ctx, "avg(cpu)")
			admitted = append(admitted, err == nil)
		}
		for i := 0; i < 4; i++ {
			fb.advance(250 * time.Millisecond)
			_, err := s.Query(ctx, "avg(cpu)")
			admitted = append(admitted, err == nil)
		}
		return admitted
	}
	first := run()
	// Burst of 2 admits the first two, sheds the next two; at 2/s one
	// token accrues per 500ms, so every other 250ms probe is admitted.
	want := []bool{true, true, false, false, false, true, false, true}
	if len(first) != len(want) {
		t.Fatalf("got %d outcomes", len(first))
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("outcome[%d] = %v, want %v (full: %v)", i, first[i], want[i], first)
		}
	}
	for run := 0; run < 3; run++ {
		if got := fmt.Sprint(first); got != fmt.Sprint(want) {
			t.Fatalf("run %d diverged: %v", run, got)
		}
	}
}

func TestAdmissionPerTenant(t *testing.T) {
	fb := newFakeBackend()
	s := New(fb, Options{Rate: 1, Burst: 1})
	a := WithTenant(context.Background(), "a")
	b := WithTenant(context.Background(), "b")
	if _, err := s.Query(a, "avg(cpu)"); err != nil {
		t.Fatalf("tenant a first request shed: %v", err)
	}
	if _, err := s.Query(a, "avg(cpu)"); !errors.Is(err, core.ErrOverload) {
		t.Fatalf("tenant a second request: %v, want ErrOverload", err)
	}
	// Tenant b has its own bucket.
	if _, err := s.Query(b, "avg(cpu)"); err != nil {
		t.Fatalf("tenant b shed by a's bucket: %v", err)
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
}

func TestMaxInflightSheds(t *testing.T) {
	fb := newFakeBackend()
	gate := make(chan struct{})
	fb.execGate = gate
	s := New(fb, Options{MaxInflight: 1})
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := s.Query(ctx, "avg(a)")
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fb.mu.Lock()
		n := fb.execs
		fb.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no execution started")
		}
		time.Sleep(time.Millisecond)
	}
	// A different query (no single-flight piggyback) exceeds the cap.
	if _, err := s.Query(ctx, "avg(b)"); !errors.Is(err, core.ErrOverload) {
		t.Fatalf("err = %v, want ErrOverload", err)
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Capacity is released after completion.
	if _, err := s.Query(ctx, "avg(c)"); err != nil {
		t.Fatalf("post-completion query shed: %v", err)
	}
}

// TestBufferedFanOutSlowCallback proves a slow subscriber cannot stall
// delivery: with Buffer > 0 the engine-side deliver returns immediately
// and the slow consumer sees a thinned stream. Run with -race in CI.
func TestBufferedFanOutSlowCallback(t *testing.T) {
	fb := newFakeBackend()
	s := New(fb, Options{Buffer: 2})
	block := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	var slowGot atomic.Int64
	sub, err := s.Subscribe(context.Background(), "avg(cpu) every 1s", func(core.Sample) {
		slowGot.Add(1)
		once.Do(func() { close(first) })
		<-block // wedge the dispatcher, not the engine
	})
	if err != nil {
		t.Fatal(err)
	}
	// Land one sample in the wedged callback first, so the flood below
	// runs entirely against a stalled consumer.
	fb.emit(sample(1, 0))
	select {
	case <-first:
	case <-time.After(10 * time.Second):
		t.Fatal("dispatcher never delivered the first sample")
	}
	donemit := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			fb.emit(sample(uint64(i+2), int64(i)))
		}
		close(donemit)
	}()
	select {
	case <-donemit:
	case <-time.After(10 * time.Second):
		t.Fatal("deliver blocked behind a slow subscriber")
	}
	close(block)
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	if g := slowGot.Load(); g < 1 || g > 101 {
		t.Fatalf("slow subscriber processed %d samples", g)
	}
}

// TestChurnSoak churns Q=500 subscribers over a handful of normalized
// forms while samples stream, exercising attach/detach/deliver races.
// Run with -race in CI (the service-layer soak job).
func TestChurnSoak(t *testing.T) {
	fb := newFakeBackend()
	s := New(fb, Options{Buffer: 4})
	ctx := context.Background()
	forms := []string{
		"avg(cpu) every 1s", "avg(mem) every 1s", "count(*) every 2s",
		"sum(load) where apache = true every 1s",
	}
	stop := make(chan struct{})
	var emitter sync.WaitGroup
	emitter.Add(1)
	go func() {
		defer emitter.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				fb.emit(sample(uint64(i+1), int64(i)))
			}
		}
	}()

	const Q = 500
	var wg sync.WaitGroup
	var errCount atomic.Int64
	for i := 0; i < Q; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var n atomic.Int64
			sub, err := s.Subscribe(ctx, forms[i%len(forms)], func(core.Sample) { n.Add(1) })
			if err != nil {
				errCount.Add(1)
				return
			}
			if err := sub.Unsubscribe(); err != nil {
				errCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	emitter.Wait()
	if errCount.Load() != 0 {
		t.Fatalf("%d subscribe/unsubscribe errors under churn", errCount.Load())
	}
	if st := s.Stats(); st.LiveStreams != 0 || st.Subscribers != 0 {
		t.Fatalf("state leaked after churn: %+v", st)
	}
	if fb.installed() != 0 {
		t.Fatalf("%d backend streams leaked", fb.installed())
	}
	if st := s.Stats(); st.Installs+st.Attaches != Q {
		t.Fatalf("installs+attaches = %d, want %d", st.Installs+st.Attaches, Q)
	}
}

// TestTextOnlyBackendInstall drops the fake's parsed-request fast path
// behind a wrapper, forcing the FormatRequest render path.
func TestTextOnlyBackendInstall(t *testing.T) {
	fb := newFakeBackend()
	s := New(textOnly{fb}, Options{})
	var got []core.Sample
	sub, err := s.Subscribe(context.Background(), "avg( cpu )  where  a = 1 and (b = 2 and c = 3) every 1s",
		func(sm core.Sample) { got = append(got, sm) })
	if err != nil {
		t.Fatal(err)
	}
	if fb.installed() != 1 {
		t.Fatalf("installed = %d", fb.installed())
	}
	fb.emit(sample(1, 7))
	if len(got) != 1 {
		t.Fatalf("got %d samples", len(got))
	}
	if err := sub.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
}

// textOnly hides the fake's SubscribeRequest/Now, presenting the
// minimal Backend shape.
type textOnly struct{ fb *fakeBackend }

func (w textOnly) Query(ctx context.Context, text string) (core.Result, error) {
	return w.fb.Query(ctx, text)
}
func (w textOnly) Execute(ctx context.Context, req core.Request) (core.Result, error) {
	return w.fb.Execute(ctx, req)
}
func (w textOnly) Subscribe(ctx context.Context, text string, fn func(core.Sample)) (core.Sub, error) {
	return w.fb.Subscribe(ctx, text, fn)
}
func (w textOnly) Attrs() core.AttrStore { return w.fb.Attrs() }
