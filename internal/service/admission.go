package service

import (
	"context"
	"fmt"
	"time"

	"github.com/moara/moara/internal/core"
)

// tenantKey is the context key carrying the requesting tenant's name.
type tenantKey struct{}

// WithTenant tags ctx with the tenant the request is billed to. Absent
// a tag, requests share the default ("") tenant's bucket.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantOf extracts the tenant tag ("" when untagged).
func TenantOf(ctx context.Context) string {
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// bucket is one tenant's token bucket, refilled lazily on the service
// clock — with the simulated cluster's virtual clock plugged in, every
// admission decision is a pure function of the request schedule, so
// sheds are deterministic under a seed.
type bucket struct {
	tokens float64
	last   time.Duration
}

// admit charges one request against the caller's tenant bucket,
// shedding with ErrOverload when the bucket is dry. Rate 0 admits
// everything.
func (s *Service) admit(ctx context.Context) error {
	if s.opts.Rate <= 0 {
		return nil
	}
	tenant := TenantOf(ctx)
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.tenants[tenant]
	if !ok {
		b = &bucket{tokens: s.opts.Burst, last: now}
		s.tenants[tenant] = b
	} else {
		b.tokens += s.opts.Rate * (now - b.last).Seconds()
		if b.tokens > s.opts.Burst {
			b.tokens = s.opts.Burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		s.stats.Shed++
		return fmt.Errorf("%w: tenant %q rate limit (%g/s)", core.ErrOverload, tenant, s.opts.Rate)
	}
	b.tokens--
	return nil
}
