// Package workload generates the event schedules and synthetic traces
// driving the experiments: interleaved query/churn event streams
// (Figs. 9-10), timed group-membership churn (Figs. 12(b), 13(a)), a
// PlanetLab-style slice-size distribution (Fig. 2(a)), and an HP
// utility-computing job trace (Fig. 2(b)). The trace generators stand in
// for the paper's proprietary CoMon/CoTop snapshot and HP datacenter
// trace; they are tuned to match the published shapes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// EventKind distinguishes schedule entries.
type EventKind uint8

const (
	// EventQuery injects one query.
	EventQuery EventKind = iota
	// EventChurn toggles group membership of a batch of nodes.
	EventChurn
)

// Schedule is a randomized interleaving of query and churn events, the
// Fig. 9/10 workload: Queries+Churns events total, shuffled.
func Schedule(rng *rand.Rand, queries, churns int) []EventKind {
	out := make([]EventKind, 0, queries+churns)
	for i := 0; i < queries; i++ {
		out = append(out, EventQuery)
	}
	for i := 0; i < churns; i++ {
		out = append(out, EventChurn)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ToggleBatch picks m distinct node indices at random; the caller flips
// the group attribute of each (the paper's churn event of burst size m).
func ToggleBatch(rng *rand.Rand, n, m int) []int {
	if m > n {
		m = n
	}
	return rng.Perm(n)[:m]
}

// ReplaceBatch implements the Fig. 12(b) churn model: every interval,
// churn nodes inside the group leave and churn nodes outside join.
// It returns indices to remove from and add to the group.
func ReplaceBatch(rng *rand.Rand, members []int, nonMembers []int, churn int) (leave, join []int) {
	if churn > len(members) {
		churn = len(members)
	}
	if churn > len(nonMembers) {
		churn = len(nonMembers)
	}
	lp := rng.Perm(len(members))[:churn]
	jp := rng.Perm(len(nonMembers))[:churn]
	leave = make([]int, churn)
	join = make([]int, churn)
	for i := 0; i < churn; i++ {
		leave[i] = members[lp[i]]
		join[i] = nonMembers[jp[i]]
	}
	return leave, join
}

// SliceSizes synthesizes the Fig. 2(a) distribution: nSlices PlanetLab
// slices with Zipf-like assigned sizes capped at maxNodes, such that
// roughly half the slices have fewer than 10 nodes, plus an "in use"
// size per slice that is a thinned subset of the assignment.
type SliceUsage struct {
	// Assigned is the number of nodes assigned to the slice.
	Assigned int
	// InUse is the number of nodes actively used (>1 process).
	InUse int
}

// SliceSizes returns slice usage sorted descending by assignment, rank
// order matching the paper's plot.
func SliceSizes(rng *rand.Rand, nSlices, maxNodes int) []SliceUsage {
	out := make([]SliceUsage, nSlices)
	// Zipf over ranks: size(rank) = maxNodes / rank^s, s tuned so the
	// median lands near 10 nodes for 400 slices / 400-node systems
	// (the paper: ~50% of slices under 10 assigned nodes).
	const s = 0.72
	for r := 0; r < nSlices; r++ {
		size := float64(maxNodes) / math.Pow(float64(r+1), s)
		jitter := 0.75 + 0.5*rng.Float64()
		a := int(size*jitter + 0.5)
		if a < 1 {
			a = 1
		}
		if a > maxNodes {
			a = maxNodes
		}
		// Active usage is a thinned subset; many assigned slices are
		// mostly idle (the paper: 100 of 170 active slices under 10).
		inUse := int(float64(a) * (0.1 + 0.5*rng.Float64()))
		if inUse > a {
			inUse = a
		}
		out[r] = SliceUsage{Assigned: a, InUse: inUse}
	}
	// Sort by assignment descending (rank order).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Assigned > out[j-1].Assigned; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// AssignSlices distributes n nodes over nSlices named groups with the
// Fig. 2(a) Zipf-like skew — a few big slices, a long tail of small
// ones — returning each node's slice name ("s0".."s<k-1>"). This is the
// grouped-query workload: one `group by slice` query aggregates every
// slice in a single dissemination, versus one query per slice naively.
func AssignSlices(rng *rand.Rand, n, nSlices int) []string {
	if nSlices < 1 {
		nSlices = 1
	}
	// Cumulative Zipf weights over slice ranks, same exponent as
	// SliceSizes so the two views of the trace agree in shape.
	const s = 0.72
	cum := make([]float64, nSlices)
	total := 0.0
	for r := 0; r < nSlices; r++ {
		total += 1 / math.Pow(float64(r+1), s)
		cum[r] = total
	}
	names := make([]string, nSlices)
	for r := range names {
		names[r] = fmt.Sprintf("s%d", r)
	}
	out := make([]string, n)
	for i := range out {
		x := rng.Float64() * total
		r := sort.SearchFloat64s(cum, x)
		if r >= nSlices {
			r = nSlices - 1
		}
		out[i] = names[r]
	}
	return out
}

// QuerySpec is one entry of a multi-query workload: a query-language
// string issued from one front-end node.
type QuerySpec struct {
	// Frontend is the index of the node issuing the query.
	Frontend int
	// Text is the query in the front-end language.
	Text string
	// Standing marks queries with an `every` clause (installed via
	// Subscribe and streamed per epoch rather than executed once).
	Standing bool
}

// MultiQuery generates the concurrent-workload mix of the wire
// coalescing study: q queries spread over distinct front-end nodes,
// mixing scalar, grouped, and slice-filtered forms, with roughly half
// standing (`every period`) and half one-shot. Filtered queries pick
// their slice with the same Zipf skew as AssignSlices, so popular
// slices attract proportionally more concurrent queries — the overlap
// that per-destination coalescing exploits.
func MultiQuery(rng *rand.Rand, n, q, nSlices int, period string) []QuerySpec {
	if q < 1 {
		q = 1
	}
	if nSlices < 1 {
		nSlices = 1
	}
	// Front-ends evenly spread over the cluster with a random rotation
	// (distinct while q <= n; above that, duplicates are inevitable):
	// concurrent load comes from many nodes, not one.
	offset := rng.Intn(n)
	const zipfS = 0.72
	cum := make([]float64, nSlices)
	total := 0.0
	for r := 0; r < nSlices; r++ {
		total += 1 / math.Pow(float64(r+1), zipfS)
		cum[r] = total
	}
	pickSlice := func() string {
		x := rng.Float64() * total
		r := sort.SearchFloat64s(cum, x)
		if r >= nSlices {
			r = nSlices - 1
		}
		return fmt.Sprintf("s%d", r)
	}
	out := make([]QuerySpec, q)
	for i := range out {
		fe := (offset + i*n/q) % n
		var text string
		switch i % 4 {
		case 0:
			text = "avg(mem_util)"
		case 1:
			text = "avg(mem_util) group by slice"
		case 2:
			text = fmt.Sprintf("count(*) where slice = %s", pickSlice())
		default:
			text = fmt.Sprintf("avg(mem_util) where slice = %s", pickSlice())
		}
		standing := i%2 == 0
		if standing {
			text += " every " + period
		}
		out[i] = QuerySpec{Frontend: fe, Text: text, Standing: standing}
	}
	return out
}

// JobPhase is one plateau of a rendering job's machine usage.
type JobPhase struct {
	// StartMin is the phase start in minutes from trace begin.
	StartMin int
	// Machines is the number of machines used during the phase.
	Machines int
}

// RenderingJob synthesizes one Fig. 2(b) batch job: usage ramps up in
// bursts, plateaus, and collapses, over roughly durMin minutes with a
// peak of peakMachines.
func RenderingJob(rng *rand.Rand, startMin, durMin, peakMachines int) []JobPhase {
	var phases []JobPhase
	t := startMin
	cur := 0
	end := startMin + durMin
	for t < end {
		// Bursty reallocation every 20-90 minutes.
		t += 20 + rng.Intn(70)
		if t >= end {
			break
		}
		switch rng.Intn(4) {
		case 0:
			cur = 0 // between waves
		case 1:
			cur = peakMachines / 2
		default:
			cur = peakMachines/2 + rng.Intn(peakMachines/2+1)
		}
		phases = append(phases, JobPhase{StartMin: t, Machines: cur})
	}
	phases = append(phases, JobPhase{StartMin: end, Machines: 0})
	return phases
}

// MachinesAt evaluates a job trace at minute m.
func MachinesAt(phases []JobPhase, m int) int {
	cur := 0
	for _, p := range phases {
		if p.StartMin > m {
			break
		}
		cur = p.Machines
	}
	return cur
}
