package workload

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
)

// TestServiceQueriesShape proves the generated workload is exactly what
// the multiservice experiment assumes: q texts, every one parseable and
// standing, spanning exactly forms distinct canonical keys, with each
// variant normalizing to its form's key.
func TestServiceQueriesShape(t *testing.T) {
	const (
		q       = 200
		forms   = 32
		nSlices = 16
	)
	period := 200 * time.Millisecond
	texts := ServiceQueries(q, forms, nSlices, period)
	if len(texts) != q {
		t.Fatalf("got %d texts, want %d", len(texts), q)
	}
	canonical := ServiceForms(forms, nSlices, period)
	if len(canonical) != forms {
		t.Fatalf("got %d forms, want %d", len(canonical), forms)
	}
	formKeys := make([]string, forms)
	seen := make(map[string]int)
	for f, text := range canonical {
		req, err := core.ParseRequest(text)
		if err != nil {
			t.Fatalf("form %d %q: %v", f, text, err)
		}
		key := core.CanonicalKey(req)
		if prev, dup := seen[key]; dup {
			t.Fatalf("forms %d and %d share key %q", prev, f, key)
		}
		seen[key] = f
		formKeys[f] = key
	}
	for i, text := range texts {
		req, err := core.ParseRequest(text)
		if err != nil {
			t.Fatalf("query %d %q: %v", i, text, err)
		}
		if req.Period != period {
			t.Fatalf("query %d %q: period %v, want %v", i, text, req.Period, period)
		}
		if key := core.CanonicalKey(req); key != formKeys[i%forms] {
			t.Fatalf("query %d %q normalizes to %q, want form %d key %q",
				i, text, key, i%forms, formKeys[i%forms])
		}
	}
}

func TestServiceQueriesFormCap(t *testing.T) {
	// forms beyond the distinct (spec, slice) space are clamped, never
	// silently duplicated.
	texts := ServiceQueries(10, 100, 2, time.Second) // cap = 8 forms
	keys := make(map[string]bool)
	for _, text := range texts {
		req, err := core.ParseRequest(text)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		keys[core.CanonicalKey(req)] = true
	}
	if len(keys) != 8 {
		t.Fatalf("distinct keys = %d, want 8", len(keys))
	}
}
