package workload

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/moara/moara/internal/core"
)

func TestScheduleComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Schedule(rng, 30, 70)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	q, c := 0, 0
	for _, e := range s {
		switch e {
		case EventQuery:
			q++
		case EventChurn:
			c++
		}
	}
	if q != 30 || c != 70 {
		t.Fatalf("composition %d:%d", q, c)
	}
}

func TestToggleBatchDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := ToggleBatch(rng, 50, 20)
	if len(b) != 20 {
		t.Fatalf("len = %d", len(b))
	}
	seen := make(map[int]bool)
	for _, i := range b {
		if i < 0 || i >= 50 || seen[i] {
			t.Fatalf("bad batch %v", b)
		}
		seen[i] = true
	}
	if got := ToggleBatch(rng, 5, 99); len(got) != 5 {
		t.Fatalf("overlarge batch should clamp, got %d", len(got))
	}
}

func TestReplaceBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	members := []int{1, 2, 3, 4, 5}
	outside := []int{10, 11, 12, 13}
	leave, join := ReplaceBatch(rng, members, outside, 3)
	if len(leave) != 3 || len(join) != 3 {
		t.Fatalf("sizes %d/%d", len(leave), len(join))
	}
	inSet := func(s []int, v int) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, l := range leave {
		if !inSet(members, l) {
			t.Fatalf("leaver %d not a member", l)
		}
	}
	for _, j := range join {
		if !inSet(outside, j) {
			t.Fatalf("joiner %d not an outsider", j)
		}
	}
	// Clamp to the smaller side.
	leave, join = ReplaceBatch(rng, members, outside, 99)
	if len(leave) != 4 || len(join) != 4 {
		t.Fatalf("clamp sizes %d/%d", len(leave), len(join))
	}
}

func TestSliceSizesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	slices := SliceSizes(rng, 400, 450)
	if len(slices) != 400 {
		t.Fatalf("len = %d", len(slices))
	}
	// Rank order descending by assignment.
	for i := 1; i < len(slices); i++ {
		if slices[i].Assigned > slices[i-1].Assigned {
			t.Fatalf("not rank-ordered at %d", i)
		}
	}
	under10 := 0
	for _, s := range slices {
		if s.InUse > s.Assigned {
			t.Fatalf("in-use exceeds assignment: %+v", s)
		}
		if s.Assigned < 10 {
			under10++
		}
	}
	// Paper: ~50% of slices under 10 assigned nodes.
	frac := float64(under10) / float64(len(slices))
	if frac < 0.35 || frac > 0.7 {
		t.Fatalf("under-10 fraction = %v", frac)
	}
}

func TestRenderingJobEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	job := RenderingJob(rng, 100, 1000, 160)
	if len(job) == 0 {
		t.Fatal("empty job")
	}
	for _, p := range job {
		if p.Machines < 0 || p.Machines > 160 {
			t.Fatalf("machines out of range: %+v", p)
		}
		if p.StartMin < 100 || p.StartMin > 1100 {
			t.Fatalf("phase outside window: %+v", p)
		}
	}
	if MachinesAt(job, 0) != 0 {
		t.Fatal("usage before job start should be 0")
	}
	if MachinesAt(job, 5000) != 0 {
		t.Fatal("usage after job end should be 0")
	}
}

func TestAssignSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	got := AssignSlices(rng, 2000, 32)
	if len(got) != 2000 {
		t.Fatalf("len = %d", len(got))
	}
	counts := map[string]int{}
	for _, s := range got {
		counts[s]++
	}
	if len(counts) < 16 || len(counts) > 32 {
		t.Fatalf("distinct slices = %d, want most of 32 populated", len(counts))
	}
	// Zipf skew: the head slice should dwarf the tail.
	if counts["s0"] < 3*counts["s31"]+1 {
		t.Fatalf("no skew: s0=%d s31=%d", counts["s0"], counts["s31"])
	}
}

func TestMultiQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	specs := MultiQuery(rng, 300, 64, 16, "200ms")
	if len(specs) != 64 {
		t.Fatalf("len = %d", len(specs))
	}
	standing, oneShot := 0, 0
	fes := map[int]bool{}
	sliceCounts := map[string]int{}
	for _, s := range specs {
		if s.Frontend < 0 || s.Frontend >= 300 {
			t.Fatalf("front-end out of range: %+v", s)
		}
		fes[s.Frontend] = true
		if s.Standing {
			standing++
			if !strings.Contains(s.Text, "every 200ms") {
				t.Fatalf("standing spec missing every clause: %+v", s)
			}
		} else {
			oneShot++
			if strings.Contains(s.Text, "every") {
				t.Fatalf("one-shot spec has every clause: %+v", s)
			}
		}
		if i := strings.Index(s.Text, "slice = "); i >= 0 {
			sliceCounts[strings.Fields(s.Text[i+len("slice = "):])[0]]++
		}
	}
	if standing == 0 || oneShot == 0 {
		t.Fatalf("mix should contain both standing (%d) and one-shot (%d) queries", standing, oneShot)
	}
	if len(fes) < 32 {
		t.Fatalf("front-ends should be spread out, got %d distinct", len(fes))
	}
	// Zipf skew over filtered slices: the head should beat the tail.
	if sliceCounts["s0"] == 0 {
		t.Fatalf("no filtered queries hit the head slice: %v", sliceCounts)
	}
	// Every generated query must parse in the front-end language (the
	// experiment panics otherwise; fail early here instead).
	for _, s := range specs {
		if _, err := core.ParseRequest(s.Text); err != nil {
			t.Fatalf("spec %q does not parse: %v", s.Text, err)
		}
	}
}

// TestChurnSchedule checks the Poisson membership schedule: events are
// time-ordered inside the window, the kill rate matches the requested
// half-life within sampling tolerance, arrivals match departures in
// expectation, and the recover fraction splits arrivals as requested.
func TestChurnSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const (
		n      = 300
		window = 500 * time.Second
		frac   = 0.01
		epoch  = 200 * time.Millisecond
	)
	half := ChurnHalfLife(frac, epoch)
	events := Churn(rng, n, half, window, 0.5)
	if len(events) == 0 {
		t.Fatal("empty schedule")
	}
	var kills, joins, recovers int
	for i, ev := range events {
		if ev.At < 0 || ev.At >= window {
			t.Fatalf("event %d outside window: %v", i, ev.At)
		}
		if i > 0 && ev.At < events[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
		switch ev.Kind {
		case ChurnKill:
			kills++
		case ChurnJoin:
			joins++
		case ChurnRecover:
			recovers++
		}
	}
	// Expected kills: frac*n per epoch over window/epoch epochs.
	wantKills := frac * float64(n) * float64(window) / float64(epoch)
	if float64(kills) < 0.8*wantKills || float64(kills) > 1.2*wantKills {
		t.Errorf("kills = %d, want ~%.0f", kills, wantKills)
	}
	arrivals := joins + recovers
	if float64(arrivals) < 0.8*wantKills || float64(arrivals) > 1.2*wantKills {
		t.Errorf("arrivals = %d, want ~%.0f (stationary population)", arrivals, wantKills)
	}
	if joins == 0 || recovers == 0 {
		t.Errorf("arrival split degenerate: joins=%d recovers=%d", joins, recovers)
	}
	// Degenerate parameters yield an empty schedule, not a panic.
	if got := Churn(rng, 0, half, window, 0.5); got != nil {
		t.Errorf("n=0 should yield nil, got %d events", len(got))
	}
	if got := Churn(rng, n, 0, window, 0.5); got != nil {
		t.Errorf("halfLife=0 should yield nil, got %d events", len(got))
	}
}

// TestChurnHalfLife pins the fraction-to-half-life conversion: a
// fraction f per epoch means a per-node rate of f/epoch, i.e. a
// half-life of ln2*epoch/f.
func TestChurnHalfLife(t *testing.T) {
	if got := ChurnHalfLife(0.01, 200*time.Millisecond); got < 13*time.Second || got > 14*time.Second {
		t.Fatalf("1%% per 200ms epoch: half-life = %v, want ~13.86s", got)
	}
	if got := ChurnHalfLife(0, time.Second); got != 0 {
		t.Fatalf("zero fraction: got %v", got)
	}
}
