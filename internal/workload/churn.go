package workload

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// This file generates membership churn: the node-level kill/join/recover
// schedules driving the churn-resilience experiments. Unlike the
// group-membership churn of Figs. 12(b)/13(a) — nodes flipping an
// attribute while staying up — membership churn crashes whole nodes and
// adds new ones while queries are live, the regime the paper delegates
// to FreePastry (§7) and never evaluates.

// ChurnKind classifies one membership event.
type ChurnKind uint8

const (
	// ChurnKill crashes a random live node.
	ChurnKill ChurnKind = iota
	// ChurnJoin adds a fresh node to the running cluster.
	ChurnJoin
	// ChurnRecover restarts a random crashed node.
	ChurnRecover
)

// String names the event kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnKill:
		return "kill"
	case ChurnJoin:
		return "join"
	default:
		return "recover"
	}
}

// ChurnEvent is one scheduled membership event.
type ChurnEvent struct {
	// At is the event time from the schedule's start.
	At time.Duration
	// Kind selects kill, join, or recover.
	Kind ChurnKind
}

// Churn generates a Poisson membership-event schedule over a window:
// node lifetimes are exponential with the given half-life, so kills
// arrive at rate n·ln2/halfLife, and arrivals (fresh joins, or
// recoveries of earlier casualties with probability recoverFrac) arrive
// at the same rate, keeping the population stationary in expectation.
// Events are returned in time order.
func Churn(rng *rand.Rand, n int, halfLife, window time.Duration, recoverFrac float64) []ChurnEvent {
	if n <= 0 || halfLife <= 0 || window <= 0 {
		return nil
	}
	rate := float64(n) * math.Ln2 / float64(halfLife) // events per time unit
	var out []ChurnEvent
	poisson := func(kind func() ChurnKind) {
		for at := exponential(rng, rate); at < float64(window); at += exponential(rng, rate) {
			out = append(out, ChurnEvent{At: time.Duration(at), Kind: kind()})
		}
	}
	poisson(func() ChurnKind { return ChurnKill })
	poisson(func() ChurnKind {
		if rng.Float64() < recoverFrac {
			return ChurnRecover
		}
		return ChurnJoin
	})
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// exponential samples an inter-arrival gap for a Poisson process of the
// given rate (events per time unit).
func exponential(rng *rand.Rand, rate float64) float64 {
	return rng.ExpFloat64() / rate
}

// ChurnHalfLife converts a per-epoch churn fraction ("1% of nodes leave
// per epoch") into the node half-life Churn expects: a fraction f per
// epoch means a per-node leave rate of f/epoch, i.e. a half-life of
// ln2·epoch/f.
func ChurnHalfLife(fracPerEpoch float64, epoch time.Duration) time.Duration {
	if fracPerEpoch <= 0 {
		return 0
	}
	return time.Duration(math.Ln2 * float64(epoch) / fracPerEpoch)
}
