package workload

import (
	"fmt"
	"time"
)

// ServiceQueries generates the Q ≫ forms query-service workload: q
// standing-query texts spanning exactly forms distinct normalized
// forms. Query i targets form i%forms, so the forms interleave the way
// a live population of dashboards would, and each text is rendered in
// one of four syntactic variants — whitespace, duplicated predicate
// terms, associativity noise, alternate period units — that all
// normalize to the same canonical key. A query service with subsumption
// sharing should install forms subscriptions for the q requests; a
// service without it installs q.
//
// Forms are (aggregate, slice-filter) pairs over the slice attribute
// AssignSlices populates: form f filters on slice s<f%nSlices> with
// aggregate f/nSlices, so forms stay distinct while f <= 4*nSlices.
func ServiceQueries(q, forms, nSlices int, period time.Duration) []string {
	if forms < 1 {
		forms = 1
	}
	if nSlices < 1 {
		nSlices = 1
	}
	if max := 4 * nSlices; forms > max {
		forms = max
	}
	out := make([]string, q)
	for i := range out {
		out[i] = serviceVariant(i%forms, i/forms, nSlices, period)
	}
	return out
}

// ServiceForms returns the canonical text of each distinct form in
// ServiceQueries(q, forms, ...) order — the queries a service-less
// deployment would install once each.
func ServiceForms(forms, nSlices int, period time.Duration) []string {
	if forms < 1 {
		forms = 1
	}
	if nSlices < 1 {
		nSlices = 1
	}
	if max := 4 * nSlices; forms > max {
		forms = max
	}
	out := make([]string, forms)
	for f := range out {
		out[f] = serviceVariant(f, 0, nSlices, period)
	}
	return out
}

var serviceSpecs = [4]string{"avg(mem_util)", "sum(mem_util)", "count(*)", "max(mem_util)"}

// serviceVariant renders form f in syntactic style (variant 0 is the
// canonical rendering). Every style parses and normalizes to the same
// canonical key — the shape test proves it.
func serviceVariant(f, style, nSlices int, period time.Duration) string {
	spec := serviceSpecs[(f/nSlices)%len(serviceSpecs)]
	slice := fmt.Sprintf("s%d", f%nSlices)
	altPeriod := fmt.Sprintf("%gs", period.Seconds()) // e.g. 200ms -> "0.2s"
	switch style % 4 {
	case 1: // whitespace noise + alternate period unit
		return fmt.Sprintf("%s  where  slice = %s  every %s", spec, slice, altPeriod)
	case 2: // duplicated predicate term
		return fmt.Sprintf("%s where slice = %s and slice = %s every %s", spec, slice, slice, period)
	case 3: // associativity noise
		return fmt.Sprintf("%s where slice = %s and (slice = %s and slice = %s) every %s",
			spec, slice, slice, slice, altPeriod)
	default:
		return fmt.Sprintf("%s where slice = %s every %s", spec, slice, period)
	}
}
