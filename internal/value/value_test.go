package value

import (
	"testing"
)

func TestParseLiterals(t *testing.T) {
	tests := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.5", Float(3.5)},
		{"-0.25", Float(-0.25)},
		{"true", Bool(true)},
		{"False", Bool(false)},
		{"linux", Str("linux")},
		{`"hello world"`, Str("hello world")},
		{"'x'", Str("x")},
		{"1e3", Float(1000)},
	}
	for _, tc := range tests {
		got, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if !Equal(got, tc.want) || got.Kind() != tc.want.Kind() {
			t.Errorf("Parse(%q) = %v (%s), want %v (%s)", tc.in, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse empty should fail")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, err := Compare(Int(3), Float(3.0))
	if err != nil || c != 0 {
		t.Errorf("Compare(3, 3.0) = %d, %v", c, err)
	}
	c, err = Compare(Int(3), Float(3.5))
	if err != nil || c != -1 {
		t.Errorf("Compare(3, 3.5) = %d, %v", c, err)
	}
	c, err = Compare(Float(4.1), Int(4))
	if err != nil || c != 1 {
		t.Errorf("Compare(4.1, 4) = %d, %v", c, err)
	}
}

func TestCompareLargeIntsExact(t *testing.T) {
	a := Int(1<<60 + 1)
	b := Int(1 << 60)
	c, err := Compare(a, b)
	if err != nil || c != 1 {
		t.Errorf("large int compare = %d, %v (float rounding?)", c, err)
	}
}

func TestCompareIncompatible(t *testing.T) {
	pairs := [][2]Value{
		{Str("x"), Int(1)},
		{Bool(true), Int(1)},
		{Str("x"), Bool(false)},
		{{}, Int(1)},
	}
	for _, p := range pairs {
		if _, err := Compare(p[0], p[1]); err == nil {
			t.Errorf("Compare(%v, %v) should fail", p[0], p[1])
		}
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if c, _ := Compare(Str("abc"), Str("abd")); c != -1 {
		t.Error("string compare broken")
	}
	if c, _ := Compare(Bool(false), Bool(true)); c != -1 {
		t.Error("bool ordering broken")
	}
	if !Equal(Bool(true), Bool(true)) {
		t.Error("bool equality broken")
	}
}

func TestAdd(t *testing.T) {
	v, err := Add(Int(2), Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 5 || v.Kind() != KindInt {
		t.Errorf("2+3 = %v", v)
	}
	v, err = Add(Int(2), Float(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != 2.5 || v.Kind() != KindFloat {
		t.Errorf("2+0.5 = %v", v)
	}
	if _, err = Add(Str("a"), Int(1)); err == nil {
		t.Error("Add string should fail")
	}
}

func TestStringRoundTripThroughParse(t *testing.T) {
	vals := []Value{Int(-3), Float(2.75), Bool(true), Str("web server")}
	for _, v := range vals {
		got, err := Parse(v.String())
		if err != nil {
			t.Errorf("reparse %s: %v", v, err)
			continue
		}
		if !Equal(got, v) {
			t.Errorf("round trip %s -> %s", v, got)
		}
	}
}

func TestAsAccessors(t *testing.T) {
	if _, ok := Int(1).AsString(); ok {
		t.Error("Int.AsString should fail")
	}
	if _, ok := Str("s").AsFloat(); ok {
		t.Error("Str.AsFloat should fail")
	}
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Error("Int.AsFloat should convert")
	}
	if (Value{}).IsValid() {
		t.Error("zero Value should be invalid")
	}
}
