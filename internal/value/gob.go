package value

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// wireValue is the gob representation of a Value; Value itself keeps
// its fields unexported to preserve immutability.
type wireValue struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
}

// GobEncode implements gob.GobEncoder.
func (v Value) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	w := wireValue{Kind: v.kind, I: v.i, F: v.f, S: v.s, B: v.b}
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("value: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(data []byte) error {
	var w wireValue
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return fmt.Errorf("value: gob decode: %w", err)
	}
	*v = Value{kind: w.Kind, i: w.I, f: w.F, s: w.S, b: w.B}
	return nil
}

var (
	_ gob.GobEncoder = Value{}
	_ gob.GobDecoder = (*Value)(nil)
)
