package value

import (
	"fmt"

	"github.com/moara/moara/internal/wirefmt"
)

// AppendWire appends the value's columnar-codec form: a kind byte plus
// only the active payload (varint int, 8-byte float, length-prefixed
// string, or one bool byte). Compare the gob form, which ships a field
// map and every payload slot.
func (v Value) AppendWire(b []byte) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindInt:
		b = wirefmt.AppendVarint(b, v.i)
	case KindFloat:
		b = wirefmt.AppendFloat(b, v.f)
	case KindString:
		b = wirefmt.AppendString(b, v.s)
	case KindBool:
		b = wirefmt.AppendBool(b, v.b)
	}
	return b
}

// ReadWire decodes one AppendWire-encoded value, returning the
// unconsumed remainder.
func ReadWire(b []byte) (Value, []byte, error) {
	k, b, err := wirefmt.Byte(b)
	if err != nil {
		return Value{}, nil, err
	}
	switch Kind(k) {
	case KindInvalid:
		return Value{}, b, nil
	case KindInt:
		i, rest, err := wirefmt.Varint(b)
		if err != nil {
			return Value{}, nil, err
		}
		return Int(i), rest, nil
	case KindFloat:
		f, rest, err := wirefmt.Float(b)
		if err != nil {
			return Value{}, nil, err
		}
		return Float(f), rest, nil
	case KindString:
		s, rest, err := wirefmt.String(b)
		if err != nil {
			return Value{}, nil, err
		}
		return Str(s), rest, nil
	case KindBool:
		v, rest, err := wirefmt.Bool(b)
		if err != nil {
			return Value{}, nil, err
		}
		return Bool(v), rest, nil
	}
	return Value{}, nil, fmt.Errorf("value: wire kind %d: %w", k, wirefmt.ErrCorrupt)
}
