// Package value defines the dynamically typed attribute values stored by
// Moara agents and manipulated by aggregation functions and predicates.
//
// A Value is one of: Int (int64), Float (float64), String, or Bool.
// Numeric kinds compare with each other; other kinds only compare with
// themselves. Ordered comparisons on Bool and cross-kind comparisons are
// reported as errors by Compare and evaluate to false in predicates,
// matching the "absent attribute never satisfies" semantics of the
// paper's query model.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the value types.
type Kind uint8

// The supported value kinds.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed attribute value. The zero Value is
// invalid and satisfies no predicate.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Int builds an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float builds a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str builds a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool builds a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds any data.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload; ok is false for non-integer kinds.
func (v Value) AsInt() (i int64, ok bool) { return v.i, v.kind == KindInt }

// AsFloat returns the value as a float64. Integer values convert; ok is
// false for strings, bools, and invalid values.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsString returns the string payload; ok is false for other kinds.
func (v Value) AsString() (s string, ok bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean payload; ok is false for other kinds.
func (v Value) AsBool() (b bool, ok bool) { return v.b, v.kind == KindBool }

// IsNumeric reports whether the value is an Int or Float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value as it appears in the query language.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// Key renders the value as a canonical group-by key: like String, but
// with string payloads unquoted, so results read `slice=cs101` rather
// than `slice="cs101"`. Distinct values of different kinds may share a
// key (Str("1") and Int(1)), which groups them together — the desired
// behavior for loosely typed monitoring attributes.
func (v Value) Key() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Parse interprets a query-language literal: true/false, an integer, a
// float, or a (possibly quoted) string. Unquoted non-numeric tokens
// parse as strings so `os = linux` works without quoting.
func Parse(tok string) (Value, error) {
	if tok == "" {
		return Value{}, fmt.Errorf("value: empty literal")
	}
	switch strings.ToLower(tok) {
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return Float(f), nil
	}
	if len(tok) >= 2 && (tok[0] == '"' || tok[0] == '\'') {
		unq, err := strconv.Unquote(`"` + strings.Trim(tok, string(tok[0])) + `"`)
		if err != nil {
			return Value{}, fmt.Errorf("value: bad quoted literal %s: %w", tok, err)
		}
		return Str(unq), nil
	}
	return Str(tok), nil
}

// Compare orders a against b: -1, 0, or +1. It returns an error when the
// kinds are not comparable (e.g. string vs int, or any ordered use of
// invalid values). Bools compare equal/unequal but also order false <
// true so MIN/MAX over bools is well-defined.
func Compare(a, b Value) (int, error) {
	if a.kind == KindInvalid || b.kind == KindInvalid {
		return 0, fmt.Errorf("value: cannot compare invalid value")
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		// Compare exactly when both are ints to avoid float rounding.
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, nil
			case a.i > b.i:
				return 1, nil
			default:
				return 0, nil
			}
		}
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindBool:
		switch {
		case a.b == b.b:
			return 0, nil
		case !a.b:
			return -1, nil
		default:
			return 1, nil
		}
	default:
		return 0, fmt.Errorf("value: cannot compare kind %s", a.kind)
	}
}

// Equal reports a == b under Compare semantics; incomparable values are
// unequal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Add returns a+b for numeric values; the result is Float unless both
// operands are Int.
func Add(a, b Value) (Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, fmt.Errorf("value: cannot add %s and %s", a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		return Int(a.i + b.i), nil
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	return Float(af + bf), nil
}
