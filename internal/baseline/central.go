// Package baseline implements the comparison systems of the paper's
// evaluation that are not just Moara configuration points:
//
//   - Central: a centralized aggregator that directly queries every
//     node in parallel and completes when all have answered (Fig. 15).
//     The Global and Always-Update baselines of Fig. 9 and the
//     single-global-tree SDIMS configuration of Fig. 12(a) are Moara
//     modes (core.ModeGlobal / core.ModeAlwaysUpdate) since they differ
//     only in maintenance policy.
package baseline

import (
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/value"
)

// CentralQueryMsg asks one node for its local contribution.
type CentralQueryMsg struct {
	Num  uint64
	Attr string
	Spec aggregate.Spec
	Pred string // predicate text; empty = unconditional
}

// MsgKind labels the message for accounting.
func (CentralQueryMsg) MsgKind() string { return "central.query" }

// CentralRespMsg returns one node's contribution (State nil when the
// predicate does not hold locally).
type CentralRespMsg struct {
	Num   uint64
	State aggregate.State
}

// MsgKind labels the message for accounting.
func (CentralRespMsg) MsgKind() string { return "central.resp" }

// ReplyArrival records when one node's answer reached the coordinator,
// for the Fig. 15 per-reply CDF.
type ReplyArrival struct {
	Node ids.ID
	At   time.Duration
}

// CentralResult is a completed centralized query.
type CentralResult struct {
	Agg aggregate.Result
	// Contributors is the number of nodes whose predicate held.
	Contributors int64
	// Latency is time to the LAST reply (the paper's completion rule).
	Latency time.Duration
	// Replies records each node's reply arrival offset from injection.
	Replies []ReplyArrival
}

// Central is the centralized aggregator: it knows the full membership
// and queries every node directly.
type Central struct {
	env     simnet.Env
	members []ids.ID
	counter uint64
	pending map[uint64]*centralExec
}

type centralExec struct {
	spec     aggregate.Spec
	state    aggregate.State
	missing  map[ids.ID]bool
	started  time.Duration
	replies  []ReplyArrival
	contribs int64
	cb       func(CentralResult)
}

var _ simnet.Handler = (*Central)(nil)

// NewCentral creates a coordinator on env that queries members.
func NewCentral(env simnet.Env, members []ids.ID) *Central {
	return &Central{
		env:     env,
		members: members,
		pending: make(map[uint64]*centralExec),
	}
}

// Query sends the request to every member and invokes cb when all have
// answered (no timeout: the paper's completion rule).
func (c *Central) Query(attrName string, spec aggregate.Spec, pred string, cb func(CentralResult)) {
	c.counter++
	ex := &centralExec{
		spec:    spec,
		state:   spec.New(),
		missing: make(map[ids.ID]bool, len(c.members)),
		started: c.env.Now(),
		cb:      cb,
	}
	c.pending[c.counter] = ex
	msg := CentralQueryMsg{Num: c.counter, Attr: attrName, Spec: spec, Pred: pred}
	for _, m := range c.members {
		ex.missing[m] = true
		c.env.Send(m, msg)
	}
}

// Handle consumes reply messages (implements simnet.Handler).
func (c *Central) Handle(from ids.ID, m any) {
	rm, ok := m.(CentralRespMsg)
	if !ok {
		return
	}
	ex, ok := c.pending[rm.Num]
	if !ok || !ex.missing[from] {
		return
	}
	delete(ex.missing, from)
	ex.replies = append(ex.replies, ReplyArrival{Node: from, At: c.env.Now() - ex.started})
	if rm.State != nil {
		ex.contribs += rm.State.Nodes()
		_ = ex.state.Merge(rm.State)
	}
	if len(ex.missing) == 0 {
		delete(c.pending, rm.Num)
		ex.cb(CentralResult{
			Agg:          ex.state.Result(),
			Contributors: ex.contribs,
			Latency:      c.env.Now() - ex.started,
			Replies:      ex.replies,
		})
	}
}

// AttachResponder makes a Moara node answer Central queries, using its
// attribute store for predicate evaluation and values.
func AttachResponder(n *core.Node) {
	parseCache := make(map[string]predicate.Expr)
	n.Fallback = func(from ids.ID, m any) {
		qm, ok := m.(CentralQueryMsg)
		if !ok {
			return
		}
		resp := CentralRespMsg{Num: qm.Num}
		sat := true
		if qm.Pred != "" {
			e, cached := parseCache[qm.Pred]
			if !cached {
				var err error
				e, err = predicate.ParseExpr(qm.Pred)
				if err != nil {
					n.Env().Send(from, resp)
					return
				}
				parseCache[qm.Pred] = e
			}
			sat = e.Eval(n.Store())
		}
		if sat {
			st := qm.Spec.New()
			v := n.Store().Get(qm.Attr)
			if qm.Attr == "*" {
				v = value.Int(1)
			}
			st.Add(n.Self(), v)
			if st.Nodes() > 0 {
				resp.State = st
			}
		}
		n.Env().Send(from, resp)
	}
}
