package baseline

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/ids"
)

func TestCentralQueryAllNodes(t *testing.T) {
	c := cluster.New(cluster.Options{N: 40, Seed: 3})
	for i, nd := range c.Nodes {
		AttachResponder(nd)
		nd.Store().SetInt("v", int64(i))
	}
	coordID := ids.FromKey("coordinator")
	env := c.Net.AddNode(coordID)
	coord := NewCentral(env, c.IDs)
	env.BindHandler(coord)

	var got CentralResult
	done := false
	coord.Query("v", aggregate.Spec{Kind: aggregate.KindSum}, "", func(r CentralResult) {
		got, done = r, true
	})
	c.Net.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("query did not complete")
	}
	want := int64(39 * 40 / 2)
	if v, _ := got.Agg.Value.AsInt(); v != want {
		t.Fatalf("sum = %d, want %d", v, want)
	}
	if got.Contributors != 40 || len(got.Replies) != 40 {
		t.Fatalf("contributors=%d replies=%d", got.Contributors, len(got.Replies))
	}
	if got.Latency <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestCentralPredicateFiltering(t *testing.T) {
	c := cluster.New(cluster.Options{N: 30, Seed: 5})
	for i, nd := range c.Nodes {
		AttachResponder(nd)
		nd.Store().SetBool("g", i%3 == 0)
	}
	coordID := ids.FromKey("coordinator")
	env := c.Net.AddNode(coordID)
	coord := NewCentral(env, c.IDs)
	env.BindHandler(coord)

	done := false
	var got CentralResult
	coord.Query("*", aggregate.Spec{Kind: aggregate.KindCount}, "g = true", func(r CentralResult) {
		got, done = r, true
	})
	c.Net.RunWhile(func() bool { return !done })
	if v, _ := got.Agg.Value.AsInt(); v != 10 {
		t.Fatalf("count = %d, want 10", v)
	}
	// Every node replies, satisfying or not (the paper's completion
	// rule: wait for all).
	if len(got.Replies) != 30 {
		t.Fatalf("replies = %d, want 30", len(got.Replies))
	}
}

func TestCentralRepliesCarryArrivalTimes(t *testing.T) {
	c := cluster.New(cluster.Options{N: 10, Seed: 7})
	for _, nd := range c.Nodes {
		AttachResponder(nd)
		nd.Store().SetInt("v", 1)
	}
	env := c.Net.AddNode(ids.FromKey("coordinator"))
	coord := NewCentral(env, c.IDs)
	env.BindHandler(coord)
	done := false
	coord.Query("v", aggregate.Spec{Kind: aggregate.KindSum}, "", func(r CentralResult) {
		for _, rep := range r.Replies {
			if rep.At <= 0 || rep.At > time.Second {
				t.Errorf("reply arrival out of range: %v", rep.At)
			}
		}
		done = true
	})
	c.Net.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("query did not complete")
	}
}

func TestCentralConcurrentQueries(t *testing.T) {
	c := cluster.New(cluster.Options{N: 12, Seed: 9})
	for i, nd := range c.Nodes {
		AttachResponder(nd)
		nd.Store().SetInt("v", int64(i))
	}
	env := c.Net.AddNode(ids.FromKey("coordinator"))
	coord := NewCentral(env, c.IDs)
	env.BindHandler(coord)
	finished := 0
	for q := 0; q < 3; q++ {
		coord.Query("v", aggregate.Spec{Kind: aggregate.KindMax}, "", func(r CentralResult) {
			if v, _ := r.Agg.Value.AsInt(); v != 11 {
				t.Errorf("max = %d", v)
			}
			finished++
		})
	}
	c.Net.Run(0)
	if finished != 3 {
		t.Fatalf("finished = %d", finished)
	}
}
