package experiments

import (
	"strconv"
	"testing"
)

// TestFig9Shape runs a scaled-down Fig. 9 and asserts the paper's
// qualitative claims: Global grows with query rate, Always-Update grows
// with churn rate, and adaptive Moara roughly tracks the lower envelope
// of the two at both extremes.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster workload sweep")
	}
	tab := RunFig9(Fig9Options{N: 600, Events: 60, Burst: 120, Steps: 3, Seed: 5})
	get := func(row, col int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", tab.Rows[row][col], err)
		}
		return v
	}
	// Columns: ratio, Global, Always-Update, Moara.
	const global, au, moara = 1, 2, 3
	rows := len(tab.Rows)
	churnOnly, queryOnly := 0, rows-1

	if g0, gN := get(churnOnly, global), get(queryOnly, global); g0 >= gN {
		t.Errorf("Global should grow with query rate: %v -> %v", g0, gN)
	}
	if g0 := get(churnOnly, global); g0 != 0 {
		t.Errorf("Global pays nothing for churn, got %v", g0)
	}
	// At pure churn, Moara suppresses updates: far below Always-Update.
	if m, a := get(churnOnly, moara), get(churnOnly, au); m > a/4 {
		t.Errorf("at 0:churn Moara=%v should be well below Always-Update=%v", m, a)
	}
	// At pure queries, Moara prunes trees: well below Global.
	if m, g := get(queryOnly, moara), get(queryOnly, global); m > 0.8*g {
		t.Errorf("at queries:0 Moara=%v should beat Global=%v", m, g)
	}
	// The paper's headline: Moara meets or lowers the overhead of both
	// extremes at every ratio (15% + 1 msg tolerance for adaptation).
	for r := 0; r < rows; r++ {
		min := get(r, global)
		if a := get(r, au); a < min {
			min = a
		}
		if m := get(r, moara); m > 1.15*min+1 {
			t.Errorf("row %s: Moara=%v above min(Global,AU)=%v", tab.Rows[r][0], m, min)
		}
	}
	for _, row := range tab.Rows {
		t.Log(row)
	}
}
