package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/workload"
)

// StandingOptions parameterize the poll-vs-standing study: a dashboard
// sampling a query once per epoch, implemented either as a fresh
// one-shot dissemination per epoch (poll) or as an installed standing
// query whose epochs re-aggregate in-tree (push). Not a paper figure —
// it evaluates the standing-query extension against the repeated
// one-shot model the paper's §1 monitoring pattern implies.
type StandingOptions struct {
	N      int           // nodes (default 1000)
	Slices int           // distinct group-by keys (default 32)
	Epochs int           // measured epochs per series (default 20)
	Period time.Duration // epoch length (default 200ms)
	Seed   int64
}

// Defaults fills unset parameters.
func (o StandingOptions) Defaults() StandingOptions {
	if o.N == 0 {
		o.N = 1000
	}
	if o.Slices == 0 {
		o.Slices = 32
	}
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.Period == 0 {
		o.Period = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunStanding measures a monitoring epoch of "avg(mem_util)" (scalar
// and per-slice grouped) two ways: polling with a one-shot query per
// epoch, and one installed standing query streaming per-epoch samples.
// Message accounting includes overlay route hops (the per-poll cost a
// standing query pays only at install/renew time). The headline claims:
// standing epochs cost no more than half a fresh dissemination, and a
// grouped standing query's epochs cost the same as the scalar form's.
func RunStanding(opt StandingOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Standing queries: installed epoch re-aggregation vs one-shot polling",
		Note: fmt.Sprintf("N=%d (Emulab model), %d slices (Zipf), epoch=%v, %d warm epochs per series",
			opt.N, opt.Slices, opt.Period, opt.Epochs),
		Columns: []string{"series", "latency_ms", "msgs_per_epoch", "vs_poll"},
	}
	// Renewals are amortized background cost; keep them out of the
	// short measurement window (they are still exercised — install and
	// warm-up run the full protocol).
	nodeCfg := core.Config{SubTTL: 120 * time.Second}
	c := cluster.New(emulabOptions(opt.N, opt.Seed, nodeCfg))
	rng := rand.New(rand.NewSource(opt.Seed + 41))
	slices := workload.AssignSlices(rng, opt.N, opt.Slices)
	for i, nd := range c.Nodes {
		nd.Store().SetString("slice", slices[i])
		nd.Store().SetFloat("mem_util", math.Mod(float64(i)*13.7, 100))
	}

	scalarReq, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	groupedReq, err := core.ParseRequest("avg(mem_util) group by slice")
	if err != nil {
		panic(err)
	}

	// measurePoll: a fresh one-shot dissemination per epoch.
	measurePoll := func(label string, req core.Request) float64 {
		if err := c.Warm(req); err != nil {
			panic(err)
		}
		start := c.QueryMessages()
		rec := metrics.NewRecorder(opt.Epochs)
		for e := 0; e < opt.Epochs; e++ {
			res, err := c.Execute(0, req)
			if err != nil {
				panic(err)
			}
			rec.Add(res.Stats.TotalTime)
			c.RunFor(opt.Period)
		}
		msgs := float64(c.QueryMessages()-start) / float64(opt.Epochs)
		t.AddRow(label, metrics.FormatMs(rec.Mean()), f1(msgs), "1.0x")
		return msgs
	}

	// measureStanding: install once, then count warm epochs only (the
	// Sample.ColdStart marking delimits the pipeline fill).
	measureStanding := func(label string, req core.Request, pollMsgs float64) float64 {
		req.Period = opt.Period
		warm := false
		var lags []time.Duration
		counting := false
		sid, err := c.Subscribe(0, req, func(s core.Sample) {
			if !s.ColdStart {
				warm = true
			}
			if counting {
				lags = append(lags, s.Lag)
			}
		})
		if err != nil {
			panic(err)
		}
		for i := 0; !warm && i < 64; i++ {
			c.RunFor(opt.Period)
		}
		if !warm {
			panic("standing subscription never warmed")
		}
		start := c.QueryMessages()
		counting = true
		c.RunFor(time.Duration(opt.Epochs) * opt.Period)
		msgs := float64(c.QueryMessages()-start) / float64(opt.Epochs)
		counting = false
		c.Unsubscribe(0, sid)
		c.RunFor(2 * opt.Period) // drain the cancel cascade
		rec := metrics.NewRecorder(len(lags))
		for _, l := range lags {
			rec.Add(l)
		}
		t.AddRow(label, metrics.FormatMs(rec.Mean()), f1(msgs), fmt.Sprintf("%.2fx", msgs/pollMsgs))
		return msgs
	}

	pollScalar := measurePoll("poll scalar (one-shot per epoch)", scalarReq)
	standScalar := measureStanding("standing scalar (epoch reports)", scalarReq, pollScalar)
	pollGrouped := measurePoll(fmt.Sprintf("poll grouped (%d slices)", opt.Slices), groupedReq)
	standGrouped := measureStanding(fmt.Sprintf("standing grouped (%d slices)", opt.Slices), groupedReq, pollGrouped)
	t.Note += fmt.Sprintf("; standing/poll=%.2f (scalar) %.2f (grouped); grouped/scalar standing=%.2f; standing latency column is per-sample delivery lag",
		standScalar/pollScalar, standGrouped/pollGrouped, standGrouped/standScalar)
	return t
}
