package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/workload"
)

// ScaleOptions parameterize the N-scaling study: the standard
// monitoring workload (one-shot scalar + grouped queries, then an
// installed standing query) run at increasing system sizes, reporting
// virtual-time costs AND the harness's own wall-clock and memory — the
// numbers that decide how big an experiment the simulator itself can
// carry. Not a paper figure: the paper stops at a few thousand nodes,
// and this table is what lets the repo run (and keep running) beyond
// it.
type ScaleOptions struct {
	// Sizes are the system sizes to sweep (default 300, 1000, 2000).
	// The scale profile sweeps 300..10000.
	Sizes  []int
	Slices int           // distinct group-by keys (default 16)
	Epochs int           // measured standing epochs per size (default 10)
	Period time.Duration // epoch length (default 200ms)
	Seed   int64
}

// Defaults fills unset parameters.
func (o ScaleOptions) Defaults() ScaleOptions {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{300, 1000, 2000}
	}
	if o.Slices == 0 {
		o.Slices = 16
	}
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	if o.Period == 0 {
		o.Period = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunScale runs the standard one-shot + standing workload at each size.
// Per size it reports: one-shot turnaround and logical message cost,
// standing per-epoch wire messages and delivery lag (all virtual-time),
// plus the wall-clock the whole size took and the process's peak RSS —
// the scalability claim is that the N=10000 row completes at all, in
// CI-feasible time.
func RunScale(opt ScaleOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Hot-path scaling: the standard workload as N grows",
		Note: fmt.Sprintf("%d slices (Zipf), epoch=%v, %d measured standing epochs per size; wall/RSS measure the harness itself",
			opt.Slices, opt.Period, opt.Epochs),
		Columns: []string{"N", "oneshot_ms", "oneshot_msgs", "grouped_ms", "standing_msgs_per_epoch", "standing_lag_ms", "wall", "peak_rss_mb"},
	}
	for _, n := range opt.Sizes {
		start := time.Now()
		row := runScaleSize(n, opt)
		wall := time.Since(start).Round(10 * time.Millisecond)
		t.AddRow(fmt.Sprint(n), row.oneshotMs, row.oneshotMsgs, row.groupedMs,
			row.standingMsgs, row.standingLag, wall.String(), fmt.Sprintf("%.0f", peakRSSMB()))
		runtime.GC()
	}
	return t
}

type scaleRow struct {
	oneshotMs, oneshotMsgs, groupedMs, standingMsgs, standingLag string
}

func runScaleSize(n int, opt ScaleOptions) scaleRow {
	// The LAN/Emulab processing model (per-message CPU cost, shared
	// CPUs) is the paper's environment; SubTTL keeps renewals out of
	// the short measurement window, as in RunStanding.
	c := cluster.New(emulabOptions(n, opt.Seed, core.Config{SubTTL: 10 * time.Minute}))
	rng := rand.New(rand.NewSource(opt.Seed + 77))
	slices := workload.AssignSlices(rng, n, opt.Slices)
	for i, nd := range c.Nodes {
		nd.Store().SetString("slice", slices[i])
		nd.Store().SetFloat("mem_util", math.Mod(float64(i)*13.7, 100))
	}
	scalarReq, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	groupedReq, err := core.ParseRequest("avg(mem_util) group by slice")
	if err != nil {
		panic(err)
	}
	if err := c.Warm(scalarReq); err != nil {
		panic(err)
	}

	startMsgs := c.QueryMessages()
	res, err := c.Execute(0, scalarReq)
	if err != nil {
		panic(err)
	}
	oneshotMs := metrics.FormatMs(res.Stats.TotalTime)
	oneshotMsgs := fmt.Sprintf("%d", c.QueryMessages()-startMsgs)

	gres, err := c.Execute(0, groupedReq)
	if err != nil {
		panic(err)
	}
	groupedMs := metrics.FormatMs(gres.Stats.TotalTime)

	// Standing query: install, let the pipeline fill, measure warm
	// epochs only.
	sreq := groupedReq
	sreq.Period = opt.Period
	warm, counting := false, false
	var lags []time.Duration
	sid, err := c.Subscribe(0, sreq, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
		if counting {
			lags = append(lags, s.Lag)
		}
	})
	if err != nil {
		panic(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(opt.Period)
	}
	if !warm {
		panic("scale: standing subscription never warmed")
	}
	startWire := c.WireQueryMessages()
	counting = true
	c.RunFor(time.Duration(opt.Epochs) * opt.Period)
	counting = false
	msgs := float64(c.WireQueryMessages()-startWire) / float64(opt.Epochs)
	c.Unsubscribe(0, sid)
	c.RunFor(2 * opt.Period)

	rec := metrics.NewRecorder(len(lags))
	for _, l := range lags {
		rec.Add(l)
	}
	return scaleRow{
		oneshotMs:    oneshotMs,
		oneshotMsgs:  oneshotMsgs,
		groupedMs:    groupedMs,
		standingMsgs: f1(msgs),
		standingLag:  metrics.FormatMs(rec.Mean()),
	}
}
