package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/workload"
)

// GroupByOptions parameterize the keyed-aggregation study: one
// `group by` dissemination versus the naive plan of one query per
// group. Not a paper figure — it evaluates the grouped-query extension
// against the G-query baseline the paper's one-shot model implies.
type GroupByOptions struct {
	N       int // nodes (default 1000)
	Slices  int // distinct group-by keys (default 32)
	Queries int // measured rounds per series (default 20)
	Seed    int64
}

// Defaults fills unset parameters.
func (o GroupByOptions) Defaults() GroupByOptions {
	if o.N == 0 {
		o.N = 1000
	}
	if o.Slices == 0 {
		o.Slices = 32
	}
	if o.Queries == 0 {
		o.Queries = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunGroupBy measures one monitoring round of "avg(mem_util) per slice"
// three ways: a scalar avg (the dissemination-cost yardstick), one
// grouped query with in-tree keyed merging, and the naive plan of one
// scalar query per slice. Grouped cost should track the scalar cost,
// not G times it.
func RunGroupBy(opt GroupByOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Group-by: keyed in-tree aggregation vs one query per group",
		Note: fmt.Sprintf("N=%d (Emulab model), %d slices (Zipf), %d rounds per series",
			opt.N, opt.Slices, opt.Queries),
		Columns: []string{"series", "latency_ms", "msgs_per_round", "vs_scalar"},
	}
	c := cluster.New(emulabOptions(opt.N, opt.Seed, core.Config{}))
	rng := rand.New(rand.NewSource(opt.Seed + 41))
	slices := workload.AssignSlices(rng, opt.N, opt.Slices)
	distinct := map[string]bool{}
	for i, nd := range c.Nodes {
		nd.Store().SetString("slice", slices[i])
		nd.Store().SetFloat("mem_util", math.Mod(float64(i)*13.7, 100))
		distinct[slices[i]] = true
	}

	scalarReq, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	groupedReq, err := core.ParseRequest("avg(mem_util) group by slice")
	if err != nil {
		panic(err)
	}
	naive := make([]core.Request, 0, len(distinct))
	for s := range distinct {
		req, err := core.ParseRequest(fmt.Sprintf("avg(mem_util) where slice = %s", s))
		if err != nil {
			panic(err)
		}
		naive = append(naive, req)
	}

	// One round = everything a monitoring tick needs for a full per-key
	// answer: a single query for the scalar and grouped series, all G
	// queries for the naive series.
	measure := func(label string, reqs []core.Request) float64 {
		if err := c.Warm(reqs...); err != nil {
			panic(err)
		}
		rec := metrics.NewRecorder(opt.Queries)
		for q := 0; q < opt.Queries; q++ {
			var roundLatency time.Duration
			for _, req := range reqs {
				res, err := c.Execute(0, req)
				if err != nil {
					panic(err)
				}
				roundLatency += res.Stats.TotalTime
			}
			rec.Add(roundLatency)
			c.RunFor(200 * time.Millisecond)
		}
		msgs := float64(c.MoaraMessages()) / float64(opt.Queries)
		t.AddRow(label, metrics.FormatMs(rec.Mean()), f1(msgs), "")
		return msgs
	}

	scalarMsgs := measure("scalar avg", []core.Request{scalarReq})
	groupedMsgs := measure("grouped (1 dissemination)", []core.Request{groupedReq})
	naiveMsgs := measure(fmt.Sprintf("naive (%d queries)", len(naive)), naive)
	t.Rows[0][3] = "1.0x"
	t.Rows[1][3] = fmt.Sprintf("%.1fx", groupedMsgs/scalarMsgs)
	t.Rows[2][3] = fmt.Sprintf("%.1fx", naiveMsgs/scalarMsgs)
	return t
}
