package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestFig11aShape asserts §5's headline: with the separate query plane
// (threshold>1) the query cost is flat in system size; without it
// (threshold=1) the cost keeps growing.
func TestFig11aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	// Steady-state (warmed) costs isolate the §5 claim from cold-start
	// broadcast amortization.
	sizes := []int{256, 1024, 4096}
	var t1, t2 []float64
	for _, n := range sizes {
		qc1, _ := sqpCosts(n, 8, 1, 60, 5, 3)
		qc2, _ := sqpCosts(n, 8, 2, 60, 5, 3)
		t1 = append(t1, qc1)
		t2 = append(t2, qc2)
		t.Logf("N=%d: threshold1=%.1f threshold2=%.1f", n, qc1, qc2)
	}
	growth1 := t1[len(t1)-1] / t1[0]
	growth2 := t2[len(t2)-1] / t2[0]
	if growth1 < 1.3 {
		t.Errorf("threshold=1 cost should grow with N (x%.2f)", growth1)
	}
	// With the SQP the plane approaches its O(m) plateau: growth must
	// be clearly slower than without it, and bounded.
	if growth2 >= growth1-0.1 {
		t.Errorf("threshold=2 growth (x%.2f) should trail threshold=1 (x%.2f)", growth2, growth1)
	}
	if t2[len(t2)-1] >= t1[len(t1)-1] {
		t.Errorf("SQP should beat threshold=1 at large N: %v vs %v", t2[len(t2)-1], t1[len(t1)-1])
	}
	// §5's bound: the warmed query plane holds at most ~2m nodes, so a
	// query costs at most ~2 messages per plane node plus the root hop.
	if t2[len(t2)-1] > 4*8+10 {
		t.Errorf("threshold=2 steady cost %v exceeds O(m) bound for m=8", t2[len(t2)-1])
	}
}

// TestFig12aShape asserts the Emulab claims: Moara latency and message
// cost scale with group size and beat the SDIMS global tree on small
// groups by a large factor (paper: up to 4x latency, 10x bandwidth).
func TestFig12aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunFig12a(Fig12aOptions{N: 300, GroupSizes: []int{32, 128}, Queries: 30, Seed: 5})
	byLabel := map[string][]float64{}
	for _, row := range tab.Rows {
		byLabel[row[0]] = []float64{parseF(t, row[1]), parseF(t, row[2])}
		t.Log(row)
	}
	small, large, sdims := byLabel["group32"], byLabel["group128"], byLabel["SDIMS"]
	if small[0] >= large[0] {
		t.Errorf("latency should grow with group size: %v vs %v", small[0], large[0])
	}
	if small[1] >= large[1] {
		t.Errorf("messages should grow with group size: %v vs %v", small[1], large[1])
	}
	if sdims[1] < 4*small[1] {
		t.Errorf("SDIMS bandwidth %v should dwarf group32 %v", sdims[1], small[1])
	}
	if sdims[0] < 1.3*small[0] {
		t.Errorf("SDIMS latency %v should clearly exceed group32 %v", sdims[0], small[0])
	}
}

// TestFig13bShape asserts §7.2's composite-query claims: intersection
// latency (excluding probes) is flat in the number of groups, union
// latency grows, and intersections choose exactly one group.
func TestFig13bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunFig13b(Fig13bOptions{
		N: 200, GroupSize: 30, MaxGroups: 4, Queries: 25, Seed: 7,
	})
	for _, row := range tab.Rows {
		t.Log(row)
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	// union latency grows with n.
	if u0, uN := parseF(t, first[2]), parseF(t, last[2]); uN < u0 {
		t.Errorf("union latency should not shrink: %v -> %v", u0, uN)
	}
	// intersection-without-probes stays roughly flat (within 2x).
	if i0, iN := parseF(t, first[4]), parseF(t, last[4]); iN > 2*i0+5 {
		t.Errorf("intersection noSP latency should stay flat: %v -> %v", i0, iN)
	}
	// every query completes well under a second on the LAN model
	// (paper: all composite queries < 500ms).
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if v := parseF(t, cell); v > 1000 {
				t.Errorf("composite query latency %vms too high (row %v)", v, row)
			}
		}
	}
}

// TestFig15Crossover asserts the tortoise-and-hare shape: the central
// aggregator's early replies beat Moara, but its tail (waiting for
// straggler nodes) is far worse than Moara's bounded completion.
func TestFig15Crossover(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	// A 25%-of-system group: the regime where Moara's plane clearly
	// avoids out-of-group stragglers (the paper's headline contrast).
	tab := RunFig15(Fig15Options{N: 120, GroupSizes: []int{30}, Queries: 12, Seed: 1})
	rows := map[string][]string{}
	for _, row := range tab.Rows {
		rows[row[0]] = row
		t.Log(row)
	}
	// Columns: pctile, moara30, central30.
	p25 := rows["25%"]
	p100 := rows["100%"]
	if parseF(t, p25[2]) >= parseF(t, p25[1]) {
		t.Errorf("central early replies (%v) should beat Moara completion (%v)", p25[2], p25[1])
	}
	if parseF(t, p100[2]) <= parseF(t, p100[1]) {
		t.Errorf("central tail (%v) should be worse than Moara (%v)", p100[2], p100[1])
	}
}

// TestFig16Tracks asserts that per-query latency tracks the bottleneck
// link RTT of the tree (the paper's offline analysis conclusion).
func TestFig16Tracks(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunFig16(Fig16Options{N: 100, Queries: 20, Seed: 11})
	above := 0
	for _, row := range tab.Rows {
		lat, bott := parseF(t, row[1]), parseF(t, row[2])
		if lat >= 0.8*bott {
			above++
		}
	}
	// Completion can never beat the bottleneck round trip by much; the
	// bulk of queries must sit at or above it.
	if above < len(tab.Rows)*3/4 {
		t.Errorf("latency below bottleneck too often: %d/%d at/above", above, len(tab.Rows))
	}
}

// TestFig2Generators sanity-checks the synthetic trace shapes.
func TestFig2Generators(t *testing.T) {
	a := RunFig2a(Fig2aOptions{})
	if !strings.Contains(a.Note, "% of slices under 10") {
		t.Fatalf("fig2a note missing distribution stat: %s", a.Note)
	}
	pct, err := parseLeadingInt(a.Note[strings.LastIndex(a.Note, "; ")+2:])
	if err != nil {
		t.Fatalf("parse pct from note %q: %v", a.Note, err)
	}
	if pct < 35 || pct > 75 {
		t.Errorf("slice distribution should have ~half under 10 nodes, got %d%%", pct)
	}
	top := parseF(t, a.Rows[0][1])
	bottom := parseF(t, a.Rows[len(a.Rows)-1][1])
	if top <= bottom {
		t.Errorf("rank-1 slice (%v) should dominate rank-last (%v)", top, bottom)
	}
	b := RunFig2b(Fig2bOptions{})
	if len(b.Rows) < 10 {
		t.Fatalf("fig2b too few samples: %d", len(b.Rows))
	}
}

// parseLeadingInt reads the decimal prefix of s.
func parseLeadingInt(s string) (int, error) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return strconv.Atoi(s[:i])
}

// TestFig12bBounded asserts that churn keeps latency bounded near the
// static baseline (paper: ~150ms even under full-group churn each 5s).
func TestFig12bBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunFig12b(Fig12bOptions{
		N: 200, GroupSize: 50, Churns: []int{40}, Queries: 25, Seed: 13,
		Intervals: []time.Duration{5 * time.Second},
	})
	row := tab.Rows[0]
	t.Log(row)
	churned := parseF(t, row[1])
	static := parseF(t, row[2])
	if churned > 4*static+50 {
		t.Errorf("churned latency %vms too far above static %vms", churned, static)
	}
}
