package experiments

import (
	"strings"
	"testing"
)

// TestMultiServiceShape asserts the acceptance headline at a reduced
// scale (N=200, Q=500 over 16 forms): the service run's wire bill stays
// within 1.25x of installing the 16 distinct forms directly, every
// subsumed subscriber's stream is byte-identical to the direct run's,
// and repeated cached one-shots cost one execution.
func TestMultiServiceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunMultiService(MultiServiceOptions{N: 200, Q: 500, Forms: 16, Slices: 8, Epochs: 6, Seed: 1})
	for _, row := range tab.Rows {
		t.Log(row)
	}
	var direct, svc float64
	for _, row := range tab.Rows {
		switch {
		case row[0] == "direct (one per form)":
			direct = parseF(t, row[3])
		case strings.HasPrefix(row[0], "service x"):
			svc = parseF(t, row[3])
			if row[2] != "16" {
				t.Errorf("service installed %s streams, want 16", row[2])
			}
			if row[5] != "true" {
				t.Errorf("subsumed streams not byte-identical: %v", row)
			}
		}
	}
	if direct == 0 || svc == 0 {
		t.Fatalf("missing series in %v", tab.Rows)
	}
	if svc > 1.25*direct {
		t.Errorf("service run cost %.0f wire msgs, want <= 1.25x direct (%.0f)", svc, direct)
	}
	if !strings.Contains(tab.Note, "streams identical=true") {
		t.Errorf("stream equivalence failed: %s", tab.Note)
	}
	if !strings.Contains(tab.Note, "cache hits=99/99") {
		t.Errorf("cache hits missing from note: %s", tab.Note)
	}
}
