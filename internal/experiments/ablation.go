package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
)

// AblationOptions parameterize the cover-selection ablation: an
// asymmetric intersection (small group ∩ large group) where picking
// the right cover matters.
type AblationOptions struct {
	N       int
	Small   int // small group size
	Large   int // large group size
	Queries int
	Seed    int64
}

// Defaults fills reasonable parameters.
func (o AblationOptions) Defaults() AblationOptions {
	if o.N == 0 {
		o.N = 500
	}
	if o.Small == 0 {
		o.Small = 10
	}
	if o.Large == 0 {
		o.Large = 400
	}
	if o.Queries == 0 {
		o.Queries = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunAblationCoverSelection quantifies §6.3's design choice: for the
// intersection query (small ∩ large), compare Moara's probe-driven
// cover selection against (a) always querying the first-listed group
// and (b) naively querying both groups. Reported as messages and
// latency per query.
func RunAblationCoverSelection(opt AblationOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Ablation: composite cover selection (§6.3)",
		Note: fmt.Sprintf("N=%d, small=%d, large=%d, %d queries of large∩small; per query",
			opt.N, opt.Small, opt.Large, opt.Queries),
		Columns: []string{"strategy", "msgs_per_query", "latency_ms"},
	}

	type strategy struct {
		label  string
		policy core.CoverPolicy
	}
	run := func(s strategy) (float64, time.Duration) {
		c := cluster.New(emulabOptions(opt.N, opt.Seed, core.Config{Covers: s.policy}))
		rng := rand.New(rand.NewSource(opt.Seed + 59))
		perm := rng.Perm(opt.N)
		small := make(map[int]bool, opt.Small)
		for _, i := range perm[:opt.Small] {
			small[i] = true
		}
		large := make(map[int]bool, opt.Large)
		for _, i := range perm[:opt.Large] { // superset of small
			large[i] = true
		}
		for i, nd := range c.Nodes {
			nd.Store().SetBool("small", small[i])
			nd.Store().SetBool("large", large[i])
		}
		req, err := core.ParseRequest("count(*) where small = true and large = true")
		if err != nil {
			panic(err)
		}
		// Warm both group trees individually (the paper's methodology:
		// every group is queried repeatedly), so size probes price them
		// from real np counts rather than cold-tree estimates.
		for _, wq := range []string{
			"count(*) where small = true",
			"count(*) where large = true",
		} {
			wreq, err := core.ParseRequest(wq)
			if err != nil {
				panic(err)
			}
			for w := 0; w < 2; w++ {
				if _, err := c.Execute(0, wreq); err != nil {
					panic(err)
				}
			}
		}
		if _, err := c.Execute(0, req); err != nil {
			panic(err)
		}
		c.RunFor(2 * time.Second)
		c.Net.ResetCounter()
		rec := metrics.NewRecorder(opt.Queries)
		for q := 0; q < opt.Queries; q++ {
			res, err := c.Execute(0, req)
			if err != nil {
				panic(err)
			}
			if got, _ := res.Agg.Value.AsInt(); got != int64(opt.Small) {
				panic(fmt.Sprintf("ablation %s: got %d want %d", s.label, got, opt.Small))
			}
			rec.Add(res.Stats.TotalTime)
		}
		return float64(c.MoaraMessages()) / float64(opt.Queries), rec.Mean()
	}

	for _, s := range []strategy{
		// Moara: probes price both covers, picks the small group.
		{label: "moara (probe-selected cover)", policy: core.CoverCheapest},
		// A planner without cover selection queries every group.
		{label: "naive (query both groups)", policy: core.CoverAll},
		// Worst single cover: the large group.
		{label: "wrong cover (large group)", policy: core.CoverDearest},
	} {
		msgs, lat := run(s)
		t.AddRow(s.label, f1(msgs), metrics.FormatMs(lat))
	}
	return t
}
