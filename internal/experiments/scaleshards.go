package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/workload"
)

// ScaleShardsOptions parameterize the sharded-scheduler scaling study:
// the standard monitoring workload on a WAN-like draw-free latency
// model, swept over shard counts at a fixed N (the speedup block) and
// then run once at a headline system size that the single-heap
// scheduler was never asked to carry. Virtual-time results are
// partition-independent by construction — the table prints the oneshot
// turnaround so every row visibly agrees — and the harness-side
// columns (wall, RSS, events/sec) are what the sharding is for.
type ScaleShardsOptions struct {
	// N is the speedup-block system size (default 10000).
	N int
	// Shards are the shard counts swept at N (default 1, 2, 4, 8).
	// Shard count 1 is the classic single-heap scheduler.
	Shards []int
	// BigN is the headline size run once at BigShards (default
	// 100000; 0 disables the row).
	BigN int
	// BigShards is the shard count for the BigN row (default 8).
	BigShards int
	// Workers caps the worker goroutines per run (default: one per
	// shard; the effective count is also reported in the note).
	Workers int
	Slices  int           // distinct group-by keys (default 16)
	Epochs  int           // measured standing epochs per size (default 10)
	Period  time.Duration // epoch length (default 200ms)
	Seed    int64
}

// Defaults fills unset parameters.
func (o ScaleShardsOptions) Defaults() ScaleShardsOptions {
	if o.N == 0 {
		o.N = 10000
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4, 8}
	}
	if o.BigN == 0 {
		o.BigN = 100000
	}
	if o.BigShards == 0 {
		o.BigShards = 8
	}
	if o.Slices == 0 {
		o.Slices = 16
	}
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	if o.Period == 0 {
		o.Period = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunScaleShards sweeps shard counts at N (reporting wall-clock
// speedup over the shards=1 row) and finishes with the BigN row. The
// environment is the WAN-like Pairwise model rather than the Emulab
// one: conservative lookahead needs a positive minimum latency, and
// the serialized-CPU processing model is exactly the global ordering
// constraint sharding removes.
func RunScaleShards(opt ScaleShardsOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Sharded scheduler scaling: shard-count sweep + headline N",
		Note: fmt.Sprintf("%d slices (Zipf), epoch=%v, %d standing epochs; speedup is wall(shards=1 at N=%d)/wall; GOMAXPROCS=%d",
			opt.Slices, opt.Period, opt.Epochs, opt.N, runtime.GOMAXPROCS(0)),
		Columns: []string{"N", "shards", "workers", "oneshot_ms", "msgs", "wall", "msgs_per_sec", "peak_rss_mb", "speedup"},
	}
	var base time.Duration
	for _, shards := range opt.Shards {
		row := runScaleShardsSize(opt.N, shards, opt)
		if shards == opt.Shards[0] {
			base = row.wall
		}
		speedup := "-"
		if base > 0 && shards != opt.Shards[0] {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(row.wall))
		}
		t.AddRow(row.cells(speedup)...)
		runtime.GC()
	}
	if opt.BigN > 0 {
		row := runScaleShardsSize(opt.BigN, opt.BigShards, opt)
		t.AddRow(row.cells("-")...)
		runtime.GC()
	}
	return t
}

type scaleShardsRow struct {
	n, shards, workers int
	oneshotMs          string
	msgs               int64
	wall               time.Duration
	rssMB              float64
}

func (r scaleShardsRow) cells(speedup string) []string {
	perSec := "-"
	if r.wall > 0 {
		perSec = fmt.Sprintf("%.0f", float64(r.msgs)/r.wall.Seconds())
	}
	return []string{
		fmt.Sprint(r.n), fmt.Sprint(r.shards), fmt.Sprint(r.workers),
		r.oneshotMs, fmt.Sprint(r.msgs), r.wall.Round(10 * time.Millisecond).String(),
		perSec, fmt.Sprintf("%.0f", r.rssMB), speedup,
	}
}

// runScaleShardsSize runs the one-shot + standing workload once at the
// given size and shard count, measuring the harness itself.
func runScaleShardsSize(n, shards int, opt ScaleShardsOptions) scaleShardsRow {
	workers := opt.Workers
	if workers == 0 {
		workers = shards
	}
	start := time.Now()
	c := cluster.New(cluster.Options{
		N:            n,
		Seed:         opt.Seed,
		Latency:      simnet.Pairwise(15*time.Millisecond, 10*time.Millisecond, opt.Seed),
		ProcDelay:    300 * time.Microsecond,
		Shards:       shards,
		ShardWorkers: workers,
		// Long TTL keeps lease renewals out of the measurement window,
		// and membership is static with heartbeats off — both as in
		// RunScale: with heartbeats on, epidemic peer discovery sends
		// O(N^2) announces, which at N=100000 is the whole budget.
		Node: core.Config{SubTTL: 10 * time.Minute},
	})
	rng := rand.New(rand.NewSource(opt.Seed + 77))
	slices := workload.AssignSlices(rng, n, opt.Slices)
	for i, nd := range c.Nodes {
		nd.Store().SetString("slice", slices[i])
		nd.Store().SetFloat("mem_util", math.Mod(float64(i)*13.7, 100))
	}
	groupedReq, err := core.ParseRequest("avg(mem_util) group by slice")
	if err != nil {
		panic(err)
	}
	res, err := c.Execute(0, groupedReq)
	if err != nil {
		panic(err)
	}

	sreq := groupedReq
	sreq.Period = opt.Period
	warm := false
	sid, err := c.Subscribe(0, sreq, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
	})
	if err != nil {
		panic(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(opt.Period)
	}
	if !warm {
		panic("scaleshards: standing subscription never warmed")
	}
	c.RunFor(time.Duration(opt.Epochs) * opt.Period)
	c.Unsubscribe(0, sid)
	c.RunFor(2 * opt.Period)

	return scaleShardsRow{
		n: n, shards: shards, workers: workers,
		oneshotMs: metrics.FormatMs(res.Stats.TotalTime),
		msgs:      c.Net.Counter().Total,
		wall:      time.Since(start),
		rssMB:     peakRSSMB(),
	}
}
