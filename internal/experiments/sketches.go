package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/value"
)

// SketchesOptions parameterize the approximate-aggregate study: the
// per-node partial-state size of the mergeable sketches (HLL dcount,
// KLL quantile, Misra-Gries topkeys, capped union) against the exact
// enum baseline across value cardinalities, plus a standing-query run
// of dcount/p99 on the simulated cluster with accuracy against the
// exact oracle. Not a paper figure — the paper's aggregation functions
// are exact; this table is the repo's bounded-state extension.
type SketchesOptions struct {
	// N is the cluster size for the standing run (default 2000; the
	// scale profile runs 10000).
	N int
	// Cardinalities sweep the distinct-value counts of the state-size
	// table (default 100, 1000, 10000, 100000).
	Cardinalities []int
	Epochs        int           // measured standing epochs (default 8)
	Period        time.Duration // epoch length (default 200ms)
	Seed          int64
}

// Defaults fills unset parameters.
func (o SketchesOptions) Defaults() SketchesOptions {
	if o.N == 0 {
		o.N = 2000
	}
	if len(o.Cardinalities) == 0 {
		o.Cardinalities = []int{100, 1000, 10000, 100000}
	}
	if o.Epochs == 0 {
		o.Epochs = 8
	}
	if o.Period == 0 {
		o.Period = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// gobSize measures a partial state the way the wire bills it: its gob
// encoding, the same codec transport uses for epoch reports.
func gobSize(st aggregate.State) int {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		panic(err)
	}
	return buf.Len()
}

// RunSketches produces the bounded-state table. Part one ingests C
// distinct values into each aggregate and reports the gob-encoded
// partial-state size: enum grows linearly with C while every sketch
// stays flat, and the err column shows what the bound buys — the
// sketch's observed error against the exact answer over the same
// stream. Part two installs standing dcount(host) and p99(load)
// queries (plus the exact enum(host) baseline) on an N-node simulated
// cluster and reports per-epoch wire messages, delivery lag, and the
// final sample's error against the live-population oracle.
func RunSketches(opt SketchesOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Approximate aggregates: bounded sketch state vs exact enum",
		Note: fmt.Sprintf("state bytes are gob-encoded partial states (the wire's unit); standing run at N=%d (Emulab model), epoch=%v, %d warm epochs",
			opt.N, opt.Period, opt.Epochs),
		Columns: []string{"series", "distinct_or_n", "state_bytes", "msgs_per_epoch", "lag_ms", "err"},
	}
	for _, c := range opt.Cardinalities {
		stateSizeRows(t, c)
	}
	standingSketchRows(t, opt)
	return t
}

// stateSizeRows ingests c distinct values into the exact enum and each
// sketch, then reports encoded size and observed error.
func stateSizeRows(t *Table, c int) {
	specs := []struct {
		label string
		spec  aggregate.Spec
	}{
		{"enum (exact)", aggregate.Spec{Kind: aggregate.KindEnum}},
		{"dcount (hll)", aggregate.Spec{Kind: aggregate.KindDCount}},
		{"p99 (quantile summary)", aggregate.Spec{Kind: aggregate.KindQuantile, Q: 0.99}},
		{"topkeys8 (misra-gries)", aggregate.Spec{Kind: aggregate.KindTopKeys, K: 8}},
		{"union (cap+spill)", aggregate.Spec{Kind: aggregate.KindUnion}},
	}
	for _, sp := range specs {
		st := sp.spec.New()
		quant := sp.spec.Kind == aggregate.KindQuantile
		for i := 0; i < c; i++ {
			node := ids.FromKey(fmt.Sprintf("n%06d", i))
			if quant {
				st.Add(node, value.Float(float64(i)))
			} else {
				st.Add(node, value.Str(fmt.Sprintf("h%06d", i)))
			}
		}
		errCell := "0"
		switch sp.spec.Kind {
		case aggregate.KindDCount:
			est, _ := st.Result().Value.AsFloat()
			errCell = fmt.Sprintf("%.1f%%", 100*math.Abs(est-float64(c))/float64(c))
		case aggregate.KindQuantile:
			// Values are 0..c-1, so the estimate's rank is itself; the
			// error is the rank distance from the true p99.
			est, _ := st.Result().Value.AsFloat()
			errCell = fmt.Sprintf("%.1f%%", 100*math.Abs(est/float64(c)-0.99))
		case aggregate.KindTopKeys, aggregate.KindUnion:
			// All-distinct input has no heavy hitters / overflows the
			// cap by design; the bound is the point, not the error.
			errCell = "-"
		}
		t.AddRow(sp.label, itoa(c), itoa(gobSize(st)), "-", "-", errCell)
	}
}

// standingSketchRows runs standing dcount(host), p99(load), and the
// exact enum(host) baseline on the cluster, one at a time, measuring
// per-epoch wire cost, delivery lag, and final-sample accuracy.
func standingSketchRows(t *Table, opt SketchesOptions) {
	c := cluster.New(emulabOptions(opt.N, opt.Seed, core.Config{SubTTL: 10 * time.Minute}))
	loads := make([]float64, opt.N)
	for i, nd := range c.Nodes {
		nd.Store().SetString("host", fmt.Sprintf("h%06d", i))
		loads[i] = math.Mod(float64(i)*13.7, 100)
		nd.Store().SetFloat("load", loads[i])
	}
	sort.Float64s(loads)

	measure := func(label, query string, errOf func(core.Sample) string) {
		req, err := core.ParseRequest(query)
		if err != nil {
			panic(err)
		}
		req.Period = opt.Period
		warm, counting := false, false
		var lags []time.Duration
		var last core.Sample
		sid, err := c.Subscribe(0, req, func(s core.Sample) {
			if !s.ColdStart {
				warm = true
			}
			if counting {
				lags = append(lags, s.Lag)
				last = s
			}
		})
		if err != nil {
			panic(err)
		}
		for i := 0; !warm && i < 64; i++ {
			c.RunFor(opt.Period)
		}
		if !warm {
			panic("sketches: standing subscription never warmed")
		}
		startWire := c.WireQueryMessages()
		counting = true
		c.RunFor(time.Duration(opt.Epochs) * opt.Period)
		counting = false
		msgs := float64(c.WireQueryMessages()-startWire) / float64(opt.Epochs)
		c.Unsubscribe(0, sid)
		c.RunFor(2 * opt.Period)

		rec := metrics.NewRecorder(len(lags))
		for _, l := range lags {
			rec.Add(l)
		}
		t.AddRow(label, itoa(opt.N), "-", f1(msgs), metrics.FormatMs(rec.Mean()), errOf(last))
	}

	measure("standing enum(host)", "enum(host)", func(core.Sample) string { return "0" })
	measure("standing dcount(host)", "dcount(host)", func(s core.Sample) string {
		est, _ := s.Result.Agg.Value.AsFloat()
		return fmt.Sprintf("%.1f%%", 100*math.Abs(est-float64(s.Contributors))/float64(s.Contributors))
	})
	measure("standing p99(load)", "p99(load)", func(s core.Sample) string {
		est, _ := s.Result.Agg.Value.AsFloat()
		// Error as rank distance: where the estimate sits in the sorted
		// population vs the true 0.99 rank.
		rank := float64(sort.SearchFloat64s(loads, est)) / float64(opt.N)
		return fmt.Sprintf("%.1f%%", 100*math.Abs(rank-0.99))
	})
}
