package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/value"
	"github.com/moara/moara/internal/workload"
)

// MultiQueryOptions parameterize the concurrent-workload study: Q
// queries over the same trees at once, with per-destination wire
// coalescing merging their per-edge traffic into shared BatchMsg
// envelopes. Not a paper figure — it evaluates the multi-query scaling
// the paper's per-query cost model (§5–§6) leaves on the table.
type MultiQueryOptions struct {
	N      int           // nodes (default 1000)
	Slices int           // distinct slice values for filtered/grouped forms (default 32)
	Qs     []int         // concurrency sweep (default 1,2,4,8)
	Epochs int           // measured epochs (standing) / rounds (one-shot) per series (default 24)
	Period time.Duration // epoch length (default 200ms)
	Seed   int64
}

// Defaults fills unset parameters.
func (o MultiQueryOptions) Defaults() MultiQueryOptions {
	if o.N == 0 {
		o.N = 1000
	}
	if o.Slices == 0 {
		o.Slices = 32
	}
	if len(o.Qs) == 0 {
		o.Qs = []int{1, 2, 4, 8}
	}
	// The vs-baseline is Qs[0] and the headline contrast uses the last
	// entry, so normalize caller-supplied sweeps to ascending order —
	// on a copy, never the caller's backing array.
	o.Qs = append([]int(nil), o.Qs...)
	sort.Ints(o.Qs)
	if o.Epochs == 0 {
		o.Epochs = 24
	}
	if o.Period == 0 {
		o.Period = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// mqCluster boots one measurement deployment: the Emulab model with
// slice-skewed attributes, renewals pushed outside the measurement
// window (they are amortized background cost, still exercised by the
// install path), and the requested coalescing window.
func mqCluster(opt MultiQueryOptions, coalesce time.Duration) *cluster.Cluster {
	nodeCfg := core.Config{SubTTL: 10 * time.Minute, CoalesceWindow: coalesce}
	c := cluster.New(emulabOptions(opt.N, opt.Seed, nodeCfg))
	slices := workload.AssignSlices(c.Net.Rand(), opt.N, opt.Slices)
	for i, nd := range c.Nodes {
		nd.Store().SetString("slice", slices[i])
		// Integer-valued utilization keeps every aggregate exact
		// (integer sums are order-independent), so per-sample values
		// are byte-comparable across coalesced and uncoalesced runs.
		nd.Store().Set("mem_util", value.Int(int64(i*13%100)))
	}
	return c
}

// frontends spreads q front-end indices evenly over the cluster.
func frontends(n, q int) []int {
	out := make([]int, q)
	for i := range out {
		out[i] = i * n / q
	}
	return out
}

// sampleKey renders one sample's values canonically: scalar value,
// contributor count, and per-key answers for grouped results.
func sampleKey(s core.Sample) string {
	key := fmt.Sprintf("%s/%d", s.Result.Agg.Value, s.Result.Contributors)
	if s.Result.Groups != nil {
		ks := make([]string, 0, len(s.Result.Groups))
		for k := range s.Result.Groups {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			key += fmt.Sprintf("|%s=%s", k, s.Result.Groups[k].Value)
		}
	}
	return key
}

// mqStandingRun measures q concurrent standing queries ("avg(mem_util)
// every period" from q spread front-ends): mean delivery lag, wire and
// logical messages per epoch, and — per subscription — the ordered
// sequence of the first Epochs warm sample values, each keyed by its
// relative root epoch. Comparing those sequences across coalesced and
// uncoalesced runs is strict on content and stream integrity (a
// corrupted value, or a dropped/duplicated/reordered root sample,
// shifts the sequence) while tolerating delivery-time skew: an
// overloaded uncoalesced run may stream the same samples later, so
// collection keeps pumping past the message-counting window until
// every subscription has its Epochs samples.
func mqStandingRun(opt MultiQueryOptions, q int, coalesce time.Duration) (lagMs, wire, logical float64, values [][]string) {
	c := mqCluster(opt, coalesce)
	req, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	req.Period = opt.Period

	warm := make([]bool, q)
	counting := false
	collecting := false
	values = make([][]string, q)
	firstRoot := make([]uint64, q)
	var lags []time.Duration
	sids := make([]core.QueryID, q)
	fes := frontends(opt.N, q)
	for i, f := range fes {
		i := i
		sid, err := c.Subscribe(f, req, func(s core.Sample) {
			if !s.ColdStart {
				warm[i] = true
			}
			if collecting && len(values[i]) < opt.Epochs {
				// Key each sample by its root epoch relative to the
				// first collected one: a dropped root sample shows as a
				// gap, a duplicate as a repeat, a reordering as a
				// decrease — so the sequences below detect stream
				// faults even though the attribute values are static.
				if len(values[i]) == 0 {
					firstRoot[i] = s.RootEpoch
				}
				// Signed arithmetic: a reordered older root sample must
				// render as a negative offset, not a uint64 wrap.
				values[i] = append(values[i],
					fmt.Sprintf("e%d|%s", int64(s.RootEpoch)-int64(firstRoot[i]), sampleKey(s)))
			}
			if counting {
				lags = append(lags, s.Lag)
			}
		})
		if err != nil {
			panic(err)
		}
		sids[i] = sid
	}
	allWarm := func() bool {
		for _, w := range warm {
			if !w {
				return false
			}
		}
		return true
	}
	for i := 0; !allWarm() && i < 64; i++ {
		c.RunFor(opt.Period)
	}
	if !allWarm() {
		panic("multiquery: standing subscriptions never warmed")
	}
	wireStart, logicalStart := c.WireQueryMessages(), c.QueryMessages()
	counting, collecting = true, true
	c.RunFor(time.Duration(opt.Epochs) * opt.Period)
	counting = false
	wire = float64(c.WireQueryMessages()-wireStart) / float64(opt.Epochs)
	logical = float64(c.QueryMessages()-logicalStart) / float64(opt.Epochs)
	allCollected := func() bool {
		for i := range values {
			if len(values[i]) < opt.Epochs {
				return false
			}
		}
		return true
	}
	for i := 0; !allCollected() && i < 64; i++ {
		c.RunFor(opt.Period)
	}
	collecting = false
	for i, f := range fes {
		c.Unsubscribe(f, sids[i])
	}
	c.RunFor(2 * opt.Period) // drain the cancel cascade
	rec := metrics.NewRecorder(len(lags))
	for _, l := range lags {
		rec.Add(l)
	}
	return metrics.Ms(rec.Mean()), wire, logical, values
}

// mqExecuteConcurrent issues the given one-shot requests from their
// front-ends in the same event-loop burst and pumps the network until
// every one completes, returning the mean turnaround.
func mqExecuteConcurrent(c *cluster.Cluster, fes []int, reqs []core.Request) time.Duration {
	pending := len(reqs)
	var total time.Duration
	for i, req := range reqs {
		c.Nodes[fes[i]].Execute(req, func(r core.Result, e error) {
			if e != nil {
				panic(e)
			}
			total += r.Stats.TotalTime
			pending--
		})
	}
	c.Net.RunWhile(func() bool { return pending > 0 })
	if pending > 0 {
		panic("multiquery: concurrent queries did not complete")
	}
	return total / time.Duration(len(reqs))
}

// mqOneShotRun measures q identical one-shot queries issued in the same
// burst from q front-ends, per round: mean turnaround plus wire and
// logical messages per round. The coalescing window is a real knob
// here: one-tick flushing only merges what one burst emits, but the
// processing model staggers concurrent disseminations across bursts, so
// a positive (Nagle-style) window is what lets the q queries share
// QueryMsg/ResponseMsg envelopes — at the price of up to one window of
// extra latency per hop.
func mqOneShotRun(opt MultiQueryOptions, q int, coalesce time.Duration) (latMs, wire, logical float64) {
	c := mqCluster(opt, coalesce)
	req, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	if err := c.Warm(req); err != nil {
		panic(err)
	}
	fes := frontends(opt.N, q)
	reqs := make([]core.Request, q)
	for i := range reqs {
		reqs[i] = req
	}
	wireStart, logicalStart := c.WireQueryMessages(), c.QueryMessages()
	rec := metrics.NewRecorder(opt.Epochs)
	for r := 0; r < opt.Epochs; r++ {
		rec.Add(mqExecuteConcurrent(c, fes, reqs))
		c.RunFor(opt.Period)
	}
	wire = float64(c.WireQueryMessages()-wireStart) / float64(opt.Epochs)
	logical = float64(c.QueryMessages()-logicalStart) / float64(opt.Epochs)
	return metrics.Ms(rec.Mean()), wire, logical
}

// mqMixedRun drives the workload.MultiQuery mix: the standing half is
// installed up front, the one-shot half re-issues concurrently every
// round, and messages are counted per round over the whole mix.
func mqMixedRun(opt MultiQueryOptions, q int) (latMs, wire, logical float64) {
	c := mqCluster(opt, 0)
	specs := workload.MultiQuery(c.Net.Rand(), opt.N, q, opt.Slices, opt.Period.String())
	var (
		oneFes  []int
		oneReqs []core.Request
	)
	warmNeeded := 0
	warmSeen := 0
	for _, spec := range specs {
		req, err := core.ParseRequest(spec.Text)
		if err != nil {
			panic(err)
		}
		if spec.Standing {
			warmNeeded++
			first := true
			if _, err := c.Subscribe(spec.Frontend, req, func(s core.Sample) {
				if !s.ColdStart && first {
					first = false
					warmSeen++
				}
			}); err != nil {
				panic(err)
			}
			continue
		}
		oneFes = append(oneFes, spec.Frontend)
		oneReqs = append(oneReqs, req)
	}
	for i := 0; warmSeen < warmNeeded && i < 64; i++ {
		c.RunFor(opt.Period)
	}
	if warmSeen < warmNeeded {
		panic("multiquery: mixed standing subscriptions never warmed")
	}
	if len(oneReqs) > 0 {
		// Warm the one-shot trees too, so the measured rounds see the
		// adapted (pruned) trees rather than cold broadcasts.
		mqExecuteConcurrent(c, oneFes, oneReqs)
		c.RunFor(2 * opt.Period)
	}
	wireStart, logicalStart := c.WireQueryMessages(), c.QueryMessages()
	rec := metrics.NewRecorder(opt.Epochs)
	for r := 0; r < opt.Epochs; r++ {
		if len(oneReqs) > 0 {
			rec.Add(mqExecuteConcurrent(c, oneFes, oneReqs))
		}
		c.RunFor(opt.Period)
	}
	wire = float64(c.WireQueryMessages()-wireStart) / float64(opt.Epochs)
	logical = float64(c.QueryMessages()-logicalStart) / float64(opt.Epochs)
	return metrics.Ms(rec.Mean()), wire, logical
}

// equalSampleValues reports whether two runs delivered identical
// per-subscription sample sequences: same subscription count, same
// number of samples each, same values in the same order — and at least
// one sample, so a run that delivered nothing cannot pass vacuously.
func equalSampleValues(a, b [][]string) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) || len(a[i]) == 0 {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// RunMultiQuery measures concurrent query workloads under wire
// coalescing. The headline: Q standing queries installed on the same
// tree coalesce their per-epoch reports into shared per-edge batches,
// so wire messages per epoch stay ~flat in Q while logical messages
// grow ~Q-fold — and per-sample values are byte-identical to the
// uncoalesced run, which ships ~Q x the wire messages for the same
// answers.
func RunMultiQuery(opt MultiQueryOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Multi-query scale: per-destination wire coalescing under concurrent workloads",
		Note: fmt.Sprintf("N=%d (Emulab model), %d slices (Zipf), epoch=%v, %d epochs/rounds per series",
			opt.N, opt.Slices, opt.Period, opt.Epochs),
		Columns: []string{"series", "q", "latency_ms", "wire_per_epoch", "logical_per_epoch", "wire_vs_q1"},
	}
	maxQ := opt.Qs[len(opt.Qs)-1]

	var wireQ1, wireMax float64
	var valuesMax [][]string
	for _, q := range opt.Qs {
		lag, wire, logical, vals := mqStandingRun(opt, q, 0)
		if q == opt.Qs[0] {
			wireQ1 = wire
		}
		if q == maxQ {
			wireMax = wire
			valuesMax = vals
		}
		t.AddRow(fmt.Sprintf("standing x%d", q), fmt.Sprint(q), f1(lag), f1(wire), f1(logical),
			fmt.Sprintf("%.2fx", wire/wireQ1))
	}

	lagOff, wireOff, logicalOff, valuesOff := mqStandingRun(opt, maxQ, core.CoalesceOff)
	t.AddRow(fmt.Sprintf("standing x%d (coalesce off)", maxQ), fmt.Sprint(maxQ),
		f1(lagOff), f1(wireOff), f1(logicalOff), fmt.Sprintf("%.2fx", wireOff/wireQ1))
	identical := equalSampleValues(valuesMax, valuesOff)

	var oneWireQ1 float64
	for _, q := range []int{1, maxQ} {
		lat, wire, logical := mqOneShotRun(opt, q, 0)
		if q == 1 {
			oneWireQ1 = wire
		}
		t.AddRow(fmt.Sprintf("one-shot x%d (concurrent burst)", q), fmt.Sprint(q),
			f1(lat), f1(wire), f1(logical), fmt.Sprintf("%.2fx", wire/oneWireQ1))
	}
	window := opt.Period / 8
	lat, wire, logical := mqOneShotRun(opt, maxQ, window)
	t.AddRow(fmt.Sprintf("one-shot x%d (window=%v)", maxQ, window), fmt.Sprint(maxQ),
		f1(lat), f1(wire), f1(logical), fmt.Sprintf("%.2fx", wire/oneWireQ1))

	mixLat, mixWire, mixLogical := mqMixedRun(opt, maxQ)
	t.AddRow(fmt.Sprintf("mixed x%d (workload.MultiQuery)", maxQ), fmt.Sprint(maxQ),
		f1(mixLat), f1(mixWire), f1(mixLogical), "")

	t.Note += fmt.Sprintf("; standing x%d wire cost = %.2fx of x1 (uncoalesced: %.2fx); per-sample values identical across coalesced/uncoalesced: %v",
		maxQ, wireMax/wireQ1, wireOff/wireQ1, identical)
	return t
}
