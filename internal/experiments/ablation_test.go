package experiments

import "testing"

// TestAblationCoverSelection verifies §6.3's design payoff: the
// probe-selected cover (the 10-node group) costs far less than naively
// querying both groups or picking the large group.
func TestAblationCoverSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunAblationCoverSelection(AblationOptions{
		N: 250, Small: 8, Large: 200, Queries: 30, Seed: 3,
	})
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = parseF(t, row[1])
		t.Log(row)
	}
	moara := vals["moara (probe-selected cover)"]
	naive := vals["naive (query both groups)"]
	wrong := vals["wrong cover (large group)"]
	if moara <= 0 || naive <= 0 || wrong <= 0 {
		t.Fatalf("missing rows: %v", vals)
	}
	if naive < 2*moara {
		t.Errorf("querying both groups (%v) should cost >2x the selected cover (%v)", naive, moara)
	}
	if wrong < 2*moara {
		t.Errorf("the wrong cover (%v) should cost >2x the selected cover (%v)", wrong, moara)
	}
}
