package experiments

// Cross-shard equivalence lock for the sharded simnet scheduler: the
// same seeded full-stack scenario — standing queries, one-shot
// queries, churn, repair — must produce byte-identical transcripts
// (every Sample, every Result, virtual-time latencies, and the full
// message accounting) at shards=1 (the classic scheduler) and at
// shards=2/4, serial and parallel workers alike. This is the
// cluster-level counterpart of simnet's TestShardedEchoEquivalence.
//
// The scenario is written inside the equivalence envelope the sharded
// engine documents (see simnet/shard.go):
//
//   - the Pairwise latency model: draw-free, so the classic engine's
//     global rng stream and the sharded engine's per-sender streams
//     trivially agree, and nanosecond-hashed arrival times keep
//     same-instant cross-origin collisions — where the two engines'
//     tie-breaks may legally differ — out of the run;
//   - no ProcJitter, no SerializeProc, no Tap;
//   - time-driven pumping only (RunFor): the classic RunWhile stops
//     mid-window where the sharded scheduler completes the window, so
//     cond-driven runs may process different trailing event sets.
//     One-shot queries are injected directly and harvested after a
//     fixed virtual-time budget instead of going through
//     Cluster.Execute.

import (
	"testing"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/value"
)

// shardEquivOptions is the scenario's cluster configuration at a given
// shard/worker count.
func shardEquivOptions(shards, workers int) cluster.Options {
	period := 200 * time.Millisecond
	return cluster.Options{
		N:            96,
		Seed:         17,
		Latency:      simnet.Pairwise(15*time.Millisecond, 10*time.Millisecond, 17),
		ProcDelay:    300 * time.Microsecond,
		Shards:       shards,
		ShardWorkers: workers,
		Node: core.Config{
			ChildTimeout:     2 * period,
			QueryTimeout:     10 * period,
			SubTTL:           8 * period,
			SubRenewInterval: 2 * period,
		},
		Overlay: pastry.Config{
			HeartbeatEvery: period / 2,
			HeartbeatMiss:  2,
		},
	}
}

// runOneShot injects a one-shot query from node 0 and pumps a fixed
// virtual-time budget for the answer (RunFor, not RunWhile — see the
// file comment).
func runOneShot(tr *transcript, c *cluster.Cluster, q string) {
	req, err := core.ParseRequest(q)
	if err != nil {
		tr.logf("query %q parse error: %v", q, err)
		return
	}
	var (
		res  core.Result
		rerr error
		done bool
	)
	c.Nodes[0].Execute(req, func(r core.Result, e error) {
		res, rerr, done = r, e, true
	})
	c.RunFor(2 * time.Second)
	switch {
	case !done:
		tr.logf("query %q incomplete after budget", q)
	case rerr != nil:
		tr.logf("query %q error: %v", q, rerr)
	default:
		tr.logResult("query "+q, res)
	}
}

// scenarioSharded exercises the full stack through a fixed schedule:
// one-shot queries, two standing queries with distinct periods, a
// kill/join/recover script under heartbeats, and a final accounting
// snapshot.
func scenarioSharded(tr *transcript, shards, workers int) {
	c := cluster.New(shardEquivOptions(shards, workers))
	seedEquivNodes(c)
	period := 200 * time.Millisecond

	runOneShot(tr, c, "avg(mem)")
	runOneShot(tr, c, "sum(mem) where apache = true and slice = alpha")
	runOneShot(tr, c, "avg(load) group by slice")
	runOneShot(tr, c, "top3(mem) where slice = beta")

	req, err := core.ParseRequest("avg(mem) group by slice")
	if err != nil {
		tr.logf("parse error: %v", err)
		return
	}
	req.Period = period
	sid, err := c.Subscribe(0, req, func(s core.Sample) { tr.logSample("standing", s) })
	if err != nil {
		tr.logf("subscribe error: %v", err)
		return
	}
	sreq, err := core.ParseRequest("count(*) where apache = true")
	if err != nil {
		tr.logf("parse error: %v", err)
		return
	}
	sreq.Period = 170 * time.Millisecond
	sid2, err := c.Subscribe(0, sreq, func(s core.Sample) { tr.logSample("filtered", s) })
	if err != nil {
		tr.logf("subscribe error: %v", err)
		return
	}
	c.RunFor(6 * period)

	c.Kill(23)
	c.RunFor(3 * period)
	c.Kill(57)
	c.RunFor(4 * period)
	ni := c.AddNode()
	c.Nodes[ni].Store().Set("mem", value.Int(55))
	c.RunFor(4 * period)
	c.Recover(23)
	c.RunFor(3 * period)

	// Knock the rest of the schedule off the subscription timer grids:
	// every pump above is a multiple of the 400ms SubRenewInterval (and
	// of both sample periods), so without this nudge the final one-shot
	// and the cancels would reach the subscription trees at the exact
	// instants of lease renewals — same-instant cross-origin collisions
	// where the engines' tie-breaks (and hence outbox batch packing)
	// legally differ. 13ms shares no factor with any timer period in
	// the scenario. See the equivalence envelope in simnet/shard.go.
	c.RunFor(13 * time.Millisecond)

	runOneShot(tr, c, "sum(mem)")

	c.Unsubscribe(0, sid)
	c.Unsubscribe(0, sid2)
	c.RunFor(2 * period)

	tr.logf("virtual now=%v live=%d", c.Net.Now(), c.LiveCount())
	tr.logCounters(c)
}

// TestCrossShardEquivalence proves shards=2 and shards=4 (serial and
// parallel workers) byte-identical to shards=1 on the scenario above.
func TestCrossShardEquivalence(t *testing.T) {
	var ref transcript
	scenarioSharded(&ref, 1, 1)
	want := ref.b.String()
	if len(want) == 0 {
		t.Fatal("empty reference transcript")
	}
	configs := []struct {
		shards, workers int
	}{
		{2, 1},
		{4, 1},
		{4, 4},
	}
	for _, cfg := range configs {
		var tr transcript
		scenarioSharded(&tr, cfg.shards, cfg.workers)
		if got := tr.b.String(); got != want {
			t.Errorf("shards=%d workers=%d diverged from shards=1:\n%s",
				cfg.shards, cfg.workers, firstDiff(want, got))
		}
	}
}
