// Package experiments contains one driver per table/figure of the
// paper's evaluation (§7). Each driver builds the workload at paper (or
// caller-scaled) parameters on the simulated network, runs it, and
// returns a Table whose rows mirror the figure's series. The drivers are
// shared by cmd/moara-bench (full-scale runs) and bench_test.go
// (scaled-down benchmark entries).
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// Title identifies the reproduced artifact (e.g. "Fig. 9").
	Title string
	// Note documents parameters and any scaling applied.
	Note string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// WriteTSV renders tab-separated values (for plotting scripts).
func (t *Table) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// itoa formats an int.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
