//go:build !linux

package experiments

import "runtime"

// peakRSSMB approximates the peak resident set from the Go runtime's
// own OS reservation on platforms without a portable maxrss reading
// (darwin reports ru_maxrss in bytes, windows lacks Getrusage): not a
// true RSS, but monotone and the right order of magnitude.
func peakRSSMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys) / (1 << 20)
}
