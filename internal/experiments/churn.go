package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/value"
	"github.com/moara/moara/internal/workload"
)

// ChurnOptions parameterize the membership-churn study: nodes crash,
// join, and recover (workload.Churn's Poisson schedule) while one-shot
// and standing queries keep answering, and every answer's Contributors
// count is scored against the harness's exact live population. Not a
// paper figure — the paper delegates membership churn to FreePastry
// (§7) and evaluates static trees only.
type ChurnOptions struct {
	N int // nodes (default 1000)
	// PerEpoch sweeps the churn rate as the expected fraction of nodes
	// leaving per epoch, matched by arrivals (default 0, 0.005, 0.01,
	// 0.02). The headline rate for the coalesce-off contrasts is the
	// entry closest to 0.01.
	PerEpoch    []float64
	Epochs      int           // measured epochs per series (default 40)
	Period      time.Duration // epoch length (default 200ms)
	RecoverFrac float64       // fraction of arrivals that are recoveries (default 0.5)
	Seed        int64
}

// Defaults fills unset parameters.
func (o ChurnOptions) Defaults() ChurnOptions {
	if o.N == 0 {
		o.N = 1000
	}
	if len(o.PerEpoch) == 0 {
		o.PerEpoch = []float64{0, 0.005, 0.01, 0.02}
	}
	if o.Epochs == 0 {
		o.Epochs = 40
	}
	if o.Period == 0 {
		o.Period = 200 * time.Millisecond
	}
	if o.RecoverFrac == 0 {
		o.RecoverFrac = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// churnCluster boots a deployment with the liveness path enabled:
// leaf-set heartbeats every half epoch with a two-miss budget, so a
// crash is detected and gossiped (obituary purge) within about 1.5
// epochs; renewals every two epochs keep standing queries repairing
// root deaths quickly; child and query timeouts are tightened to epoch
// scale so one-shot answers stay fresh under churn.
func churnCluster(opt ChurnOptions, coalesce time.Duration) *cluster.Cluster {
	return cluster.New(cluster.Options{
		N:    opt.N,
		Seed: opt.Seed,
		Node: core.Config{
			ChildTimeout:     2 * opt.Period,
			QueryTimeout:     10 * opt.Period,
			SubTTL:           8 * opt.Period,
			SubRenewInterval: 2 * opt.Period,
			CoalesceWindow:   coalesce,
		},
		Overlay: pastry.Config{
			HeartbeatEvery: opt.Period / 2,
			HeartbeatMiss:  2,
		},
	})
}

// seedChurnNode writes the monitored attribute a churn-study node
// contributes. Integer values keep sums exact and order-independent.
func seedChurnNode(c *cluster.Cluster, i int) {
	c.Nodes[i].Store().Set("mem_util", value.Int(int64(i*13%100)))
}

// churnDriver schedules a workload.Churn event stream onto the
// cluster's virtual clock: kills pick a random live node (sparing the
// front-end, node 0), joins add-and-seed a fresh node, recoveries
// restart a random casualty. It returns a live-count probe for the
// completeness denominators.
func churnDriver(c *cluster.Cluster, opt ChurnOptions, frac float64, rng *rand.Rand) (live func() int) {
	window := time.Duration(opt.Epochs) * opt.Period
	events := workload.Churn(rng, opt.N, workload.ChurnHalfLife(frac, opt.Period), window, opt.RecoverFrac)
	for _, ev := range events {
		ev := ev
		c.Net.Schedule(ev.At, func() {
			switch ev.Kind {
			case workload.ChurnKill:
				// Victims exclude the front-end: its crash ends the
				// experiment, not the system (a crashed subscriber is
				// the SubTTL GC's subject, tested elsewhere).
				candidates := c.LiveIndices()[1:]
				if len(candidates) == 0 {
					return
				}
				c.Kill(candidates[rng.Intn(len(candidates))])
			case workload.ChurnJoin:
				seedChurnNode(c, c.AddNode())
			case workload.ChurnRecover:
				var dead []int
				for i := 1; i < len(c.Nodes); i++ {
					if c.Down(i) {
						dead = append(dead, i)
					}
				}
				if len(dead) == 0 {
					seedChurnNode(c, c.AddNode())
					return
				}
				c.Recover(dead[rng.Intn(len(dead))])
			}
		})
	}
	return c.LiveCount
}

// complRecorder folds per-answer completeness observations.
type complRecorder struct {
	sum   float64
	min   float64
	count int
}

func (r *complRecorder) add(contributors int64, live int) {
	c := 1.0
	if live > 0 {
		c = float64(contributors) / float64(live)
	}
	if c > 1 {
		// A node killed moments ago can still be counted until the
		// purge propagates; coverage of the live set is still full.
		c = 1
	}
	if r.count == 0 || c < r.min {
		r.min = c
	}
	r.sum += c
	r.count++
}

func (r *complRecorder) mean() float64 {
	if r.count == 0 {
		return 0
	}
	return r.sum / float64(r.count)
}

// churnStandingRun measures one standing query riding out a churn
// window: per-sample completeness against the harness's live count,
// mean delivery lag, and wire messages per epoch.
func churnStandingRun(opt ChurnOptions, frac float64, coalesce time.Duration) (compl complRecorder, lagMs, wire float64) {
	c := churnCluster(opt, coalesce)
	for i := range c.Nodes {
		seedChurnNode(c, i)
	}
	req, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	req.Period = opt.Period

	warm, counting := false, false
	var lags []time.Duration
	liveNow := c.LiveCount
	if _, err := c.Subscribe(0, req, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
		if counting {
			compl.add(s.Contributors, liveNow())
			lags = append(lags, s.Lag)
		}
	}); err != nil {
		panic(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(opt.Period)
	}
	if !warm {
		panic("churn: standing subscription never warmed")
	}
	rng := rand.New(rand.NewSource(opt.Seed + 101))
	churnDriver(c, opt, frac, rng)
	start := c.WireQueryMessages()
	counting = true
	c.RunFor(time.Duration(opt.Epochs) * opt.Period)
	counting = false
	wire = float64(c.WireQueryMessages()-start) / float64(opt.Epochs)
	rec := metrics.NewRecorder(len(lags))
	for _, l := range lags {
		rec.Add(l)
	}
	return compl, metrics.Ms(rec.Mean()), wire
}

// churnOneShotRun measures one fresh dissemination per epoch through
// the same churn window: per-answer completeness, mean turnaround, and
// wire messages per epoch.
func churnOneShotRun(opt ChurnOptions, frac float64, coalesce time.Duration) (compl complRecorder, latMs, wire float64) {
	c := churnCluster(opt, coalesce)
	for i := range c.Nodes {
		seedChurnNode(c, i)
	}
	req, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	if err := c.Warm(req); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(opt.Seed + 103))
	churnDriver(c, opt, frac, rng)
	start := c.WireQueryMessages()
	rec := metrics.NewRecorder(opt.Epochs)
	for e := 0; e < opt.Epochs; e++ {
		res, err := c.Execute(0, req)
		if err != nil {
			panic(err)
		}
		compl.add(res.Contributors, c.LiveCount())
		rec.Add(res.Stats.TotalTime)
		c.RunFor(opt.Period)
	}
	wire = float64(c.WireQueryMessages()-start) / float64(opt.Epochs)
	return compl, metrics.Ms(rec.Mean()), wire
}

// churnRepairRun measures subscription repair directly: a warmed
// standing query, one targeted kill — the tree root itself, or its
// biggest subscribed interior child — and a walk of the delivered
// coverage trace. It returns the dip length in epochs (first sample
// missing live members through the last one, i.e. purge landing to the
// repaired tree reporting everybody), the detection time in epochs
// (kill to first dip; the stale-report window hides the heartbeat
// detection itself), and whether full coverage held from the end of
// the dip to the end of the 30-epoch observation window.
func churnRepairRun(opt ChurnOptions, killRoot bool) (repairEpochs, detectEpochs float64, held bool) {
	c := churnCluster(opt, 0)
	for i := range c.Nodes {
		seedChurnNode(c, i)
	}
	req, err := core.ParseRequest("avg(mem_util)")
	if err != nil {
		panic(err)
	}
	req.Period = opt.Period
	warm := false
	type obs struct {
		at      time.Duration
		covered bool
	}
	var trace []obs
	recording := false
	if _, err := c.Subscribe(0, req, func(s core.Sample) {
		if !s.ColdStart {
			warm = true
		}
		if recording {
			trace = append(trace, obs{at: s.At, covered: s.Contributors >= int64(c.LiveCount())})
		}
	}); err != nil {
		panic(err)
	}
	for i := 0; !warm && i < 64; i++ {
		c.RunFor(opt.Period)
	}
	if !warm {
		panic("churn: repair subscription never warmed")
	}
	c.RunFor(2 * opt.Period)

	// The victim: the tree root (worst case — repair needs the renewal
	// to re-route), or the subscribed interior node with the most
	// installed children (killing it orphans the largest subtree).
	victim, best := -1, 0
	for i := 1; i < len(c.Nodes); i++ {
		for _, si := range c.Nodes[i].Subs() {
			if si.Root != killRoot {
				continue
			}
			if si.Targets > best {
				victim, best = i, si.Targets
			}
		}
	}
	if victim < 0 {
		panic("churn: no subscribed victim to kill")
	}
	recording = true
	killAt := c.Net.Now()
	c.Kill(victim)
	c.RunFor(30 * opt.Period)

	// Walk the trace: detection = kill to the first uncovered sample;
	// repair = first through last uncovered sample (the transient
	// stale-window overshoot inside the dip does not end it).
	dipStart, dipLast := time.Duration(-1), time.Duration(-1)
	for _, o := range trace {
		if o.covered {
			continue
		}
		if dipStart < 0 {
			dipStart = o.at
		}
		dipLast = o.at
	}
	if dipStart < 0 {
		// Coverage never dipped: the stale-report window hid the whole
		// detect+repair cycle (possible for shallow subtrees).
		return 0, 0, true
	}
	held = dipLast < trace[len(trace)-1].at
	return float64(dipLast-dipStart)/float64(opt.Period) + 1,
		float64(dipStart-killAt) / float64(opt.Period), held
}

// RunChurn measures availability under membership churn: completeness
// (Contributors vs the true live population) and delivery lag or
// turnaround as the churn rate sweeps, for standing and one-shot
// queries, coalesced and not, plus the targeted repair measurement.
func RunChurn(opt ChurnOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Churn resilience: completeness and lag vs membership churn rate",
		Note: fmt.Sprintf("N=%d, epoch=%v, %d measured epochs, Poisson kill/join/recover (recover frac %.1f), heartbeat=epoch/2 x2 misses",
			opt.N, opt.Period, opt.Epochs, opt.RecoverFrac),
		Columns: []string{"series", "churn_per_epoch", "completeness_mean", "completeness_min", "lat_or_lag_ms", "wire_per_epoch"},
	}
	headline := opt.PerEpoch[len(opt.PerEpoch)-1]
	for _, f := range opt.PerEpoch {
		if diff, hd := abs64(f-0.01), abs64(headline-0.01); diff < hd {
			headline = f
		}
	}
	var headlineMean float64
	for _, f := range opt.PerEpoch {
		compl, lag, wire := churnStandingRun(opt, f, 0)
		if f == headline {
			headlineMean = compl.mean()
		}
		t.AddRow("standing", pct(f), f3(compl.mean()), f3(compl.min), f1(lag), f1(wire))
	}
	complOff, lagOff, wireOff := churnStandingRun(opt, headline, core.CoalesceOff)
	t.AddRow("standing (coalesce off)", pct(headline), f3(complOff.mean()), f3(complOff.min), f1(lagOff), f1(wireOff))
	for _, f := range opt.PerEpoch {
		compl, lat, wire := churnOneShotRun(opt, f, 0)
		t.AddRow("one-shot", pct(f), f3(compl.mean()), f3(compl.min), f1(lat), f1(wire))
	}
	complOne, latOne, wireOne := churnOneShotRun(opt, headline, core.CoalesceOff)
	t.AddRow("one-shot (coalesce off)", pct(headline), f3(complOne.mean()), f3(complOne.min), f1(latOne), f1(wireOne))

	repair, detect, held := churnRepairRun(opt, false)
	t.AddRow("repair (interior kill)", "-", "-", "-",
		fmt.Sprintf("dip=%.0fep detect=%.0fep", repair, detect), fmt.Sprintf("held=%v", held))
	repairR, detectR, heldR := churnRepairRun(opt, true)
	t.AddRow("repair (root kill)", "-", "-", "-",
		fmt.Sprintf("dip=%.0fep detect=%.0fep", repairR, detectR), fmt.Sprintf("held=%v", heldR))
	t.Note += fmt.Sprintf("; standing mean completeness at %s churn/epoch = %.3f; targeted repair: interior kill %.0f epoch(s) of reduced coverage after a %.0f-epoch detection window (held=%v), root kill %.0f epoch(s) (held=%v)",
		pct(headline), headlineMean, repair, detect, held, repairR, heldR)
	return t
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func f3(f float64) string { return fmt.Sprintf("%.3f", f) }

func abs64(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
