package experiments

import (
	"testing"
	"time"
)

// TestWireShape asserts the codec study's contract on a reduced run:
// the columnar codec must clearly beat steady-state gob on the hot
// 16-group epoch report (the committed BENCH gate requires >=5x; the
// test uses a looser floor to absorb CI timer noise), must use strictly
// fewer wire bytes on every benchmarked shape, and the real-TCP
// standing harness must deliver a complete grouped stream under both
// codecs.
func TestWireShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunWire(WireOptions{
		Sizes:    []int{300, 2000},
		TCPNodes: 48,
		Epochs:   2,
		Period:   150 * time.Millisecond,
	})
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		t.Log(row)
		byKey[row[0]+"/"+row[1]+"/"+row[2]] = row
	}

	// Columnar must be strictly smaller than gob on every microbench
	// shape (byte sizes are deterministic, so this is exact).
	for key, col := range byKey {
		if col[2] != "columnar" || col[7] != "-" {
			continue // gob rows and tcp rows checked separately
		}
		gob, ok := byKey[col[0]+"/"+col[1]+"/gob"]
		if !ok {
			t.Fatalf("columnar row %q has no gob counterpart", key)
		}
		if cb, gb := parseF(t, col[5]), parseF(t, gob[5]); cb >= gb {
			t.Errorf("%s n=%s: columnar bytes %v not below gob %v", col[0], col[1], cb, gb)
		}
	}

	// The acceptance shape: keyed 16-group AVG epoch report.
	for _, n := range []string{"300", "2000"} {
		row, ok := byKey["epoch report avg x16 groups/"+n+"/columnar"]
		if !ok {
			t.Fatalf("missing acceptance-shape columnar row at n=%s", n)
		}
		speedup := parseF(t, row[6][:len(row[6])-1]) // strip trailing "x"
		if speedup < 3 {
			t.Errorf("n=%s: columnar speedup %.1fx below floor (committed gate is 5x)", n, speedup)
		}
	}

	// Both TCP harness rows must exist and report a complete stream.
	tcp := 0
	for key, row := range byKey {
		if row[7] == "-" {
			continue
		}
		tcp++
		if c := parseF(t, row[7]); c < 0.99 {
			t.Errorf("tcp row %q: completeness %v below 0.99", key, c)
		}
	}
	if tcp != 2 {
		t.Errorf("expected 2 tcp harness rows (gob + columnar), got %d", tcp)
	}
}
