package experiments

import (
	"fmt"

	"github.com/moara/moara/internal/core"
)

// Fig10Options parameterize the adaptation-knob sensitivity experiment.
type Fig10Options struct {
	N      int // paper: 500
	Events int // paper: 500
	Burst  int // paper-style 20% of N
	Steps  int
	Seed   int64
	// Pairs are the (kUPDATE, kNO-UPDATE) window settings to compare
	// (paper Fig. 10 shows a representative subset).
	Pairs [][2]int
}

// Defaults fills the paper's parameters.
func (o Fig10Options) Defaults() Fig10Options {
	if o.N == 0 {
		o.N = 500
	}
	if o.Events == 0 {
		o.Events = 500
	}
	if o.Burst == 0 {
		o.Burst = o.N / 5
	}
	if o.Steps == 0 {
		o.Steps = 6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Pairs) == 0 {
		o.Pairs = [][2]int{{1, 1}, {1, 3}, {2, 1}, {3, 1}, {3, 3}}
	}
	return o
}

// RunFig10 reproduces Fig. 10: bandwidth across query:churn ratios for
// different (kUPDATE, kNO-UPDATE) adaptation windows.
func RunFig10(opt Fig10Options) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Fig. 10: sensitivity to (kUPDATE, kNO-UPDATE)",
		Note: fmt.Sprintf("N=%d, burst=%d, events=%d; avg messages per node",
			opt.N, opt.Burst, opt.Events),
		Columns: []string{"ratio(q:c)"},
	}
	for _, p := range opt.Pairs {
		t.Columns = append(t.Columns, fmt.Sprintf("(%d,%d)", p[0], p[1]))
	}
	for step := 0; step < opt.Steps; step++ {
		queries := opt.Events * step / (opt.Steps - 1)
		churns := opt.Events - queries
		row := []string{fmt.Sprintf("%d:%d", queries, churns)}
		for _, p := range opt.Pairs {
			perNode := runQueryChurnWorkload(workloadParams{
				n: opt.N, burst: opt.Burst, queries: queries, churns: churns,
				mode: core.ModeAdaptive, seed: opt.Seed,
				kUpdate: p[0], kNoUpdate: p[1],
			})
			row = append(row, f1(perNode))
		}
		t.AddRow(row...)
	}
	return t
}
