package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/baseline"
	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/simnet"
)

// planetlabOptions builds the wide-area environment of the paper's
// PlanetLab runs: heavy-tailed pairwise RTTs with a few severely
// bottlenecked links, plus modest processing delay.
func planetlabOptions(n int, seed int64, node core.Config) cluster.Options {
	return cluster.Options{
		N:    n,
		Seed: seed,
		Latency: simnet.WAN(simnet.WANConfig{
			MedianRTT: 120 * time.Millisecond,
			Seed:      seed,
		}),
		ProcDelay:     500 * time.Microsecond,
		ProcJitter:    500 * time.Microsecond,
		SerializeProc: true,
		Node:          node,
	}
}

var cdfPercentiles = []float64{25, 50, 75, 90, 95, 99, 100}

// Fig14Options parameterize the PlanetLab latency CDF experiment.
type Fig14Options struct {
	N          int   // paper: 200 PlanetLab nodes
	GroupSizes []int // paper: 50, 100, 150, 200
	Queries    int   // paper: 500, 5s apart
	Seed       int64
}

// Defaults fills the paper's parameters.
func (o Fig14Options) Defaults() Fig14Options {
	if o.N == 0 {
		o.N = 200
	}
	if len(o.GroupSizes) == 0 {
		o.GroupSizes = []int{50, 100, 150, 200}
	}
	if o.Queries == 0 {
		o.Queries = 500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// fig14Run measures per-query completion latencies for one group size
// on the wide-area model.
func fig14Run(opt Fig14Options, groupSize int) *metrics.Recorder {
	c := cluster.New(planetlabOptions(opt.N, opt.Seed, core.Config{
		// The paper does not time out queries, to obtain complete
		// answers; bound only by a generous limit.
		ChildTimeout: 120 * time.Second,
		QueryTimeout: 300 * time.Second,
	}))
	rng := rand.New(rand.NewSource(opt.Seed + 3))
	in := make(map[int]bool, groupSize)
	for _, i := range rng.Perm(opt.N)[:groupSize] {
		in[i] = true
	}
	for i, nd := range c.Nodes {
		nd.Store().SetBool("A", in[i])
	}
	req := core.Request{
		Attr: "A",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("A = true"),
	}
	if err := c.Warm(req, req, req); err != nil {
		panic(err)
	}
	rec := metrics.NewRecorder(opt.Queries)
	for q := 0; q < opt.Queries; q++ {
		res, err := c.Execute(0, req)
		if err != nil {
			panic(err)
		}
		if got, _ := res.Agg.Value.AsInt(); got != int64(groupSize) {
			panic(fmt.Sprintf("fig14: sum=%d want %d", got, groupSize))
		}
		rec.Add(res.Stats.TotalTime)
		c.RunFor(5 * time.Second)
	}
	return rec
}

// RunFig14 reproduces Fig. 14: the CDF of query response latency on the
// wide-area model for different group sizes, reported at fixed
// percentiles.
func RunFig14(opt Fig14Options) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Fig. 14: PlanetLab query latency CDF",
		Note: fmt.Sprintf("N=%d WAN model, %d queries per group; latency ms at percentile",
			opt.N, opt.Queries),
		Columns: []string{"pctile"},
	}
	recs := make([]*metrics.Recorder, len(opt.GroupSizes))
	for i, m := range opt.GroupSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("group%d", m))
		recs[i] = fig14Run(opt, m)
	}
	for _, p := range cdfPercentiles {
		row := []string{fmt.Sprintf("%.0f%%", p)}
		for _, rec := range recs {
			row = append(row, metrics.FormatMs(rec.Percentile(p)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig15Options parameterize the Moara-vs-centralized experiment.
type Fig15Options struct {
	N          int
	GroupSizes []int // paper: 100, 150
	Queries    int
	Seed       int64
}

// Defaults fills the paper's parameters.
func (o Fig15Options) Defaults() Fig15Options {
	if o.N == 0 {
		o.N = 200
	}
	if len(o.GroupSizes) == 0 {
		o.GroupSizes = []int{100, 150}
	}
	if o.Queries == 0 {
		o.Queries = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig15 reproduces Fig. 15: Moara's query completion CDF vs the
// centralized aggregator. Central directly queries all N nodes and its
// CDF pools individual reply arrivals (the "hare" that sprints, then
// stalls on stragglers); Moara's CDF is per-query completion.
func RunFig15(opt Fig15Options) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title:   "Fig. 15: Moara vs centralized aggregator",
		Note:    fmt.Sprintf("N=%d WAN model, %d queries; latency ms at percentile", opt.N, opt.Queries),
		Columns: []string{"pctile"},
	}
	var cols []*metrics.Recorder
	for _, m := range opt.GroupSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("moara%d", m), fmt.Sprintf("central%d", m))
		cols = append(cols, fig14Run(Fig14Options{
			N: opt.N, GroupSizes: nil, Queries: opt.Queries, Seed: opt.Seed,
		}.Defaults(), m))
		cols = append(cols, fig15CentralRun(opt, m))
	}
	for _, p := range cdfPercentiles {
		row := []string{fmt.Sprintf("%.0f%%", p)}
		for _, rec := range cols {
			row = append(row, metrics.FormatMs(rec.Percentile(p)))
		}
		t.AddRow(row...)
	}
	return t
}

// fig15CentralRun pools per-reply arrival latencies of the centralized
// aggregator across queries.
func fig15CentralRun(opt Fig15Options, groupSize int) *metrics.Recorder {
	c := cluster.New(planetlabOptions(opt.N, opt.Seed, core.Config{}))
	for _, nd := range c.Nodes {
		baseline.AttachResponder(nd)
	}
	rng := rand.New(rand.NewSource(opt.Seed + 3))
	in := make(map[int]bool, groupSize)
	for _, i := range rng.Perm(opt.N)[:groupSize] {
		in[i] = true
	}
	for i, nd := range c.Nodes {
		nd.Store().SetBool("A", in[i])
	}
	coordID := ids.FromKey("central-coordinator")
	env := c.Net.AddNode(coordID)
	coord := baseline.NewCentral(env, c.IDs)
	env.BindHandler(coord)

	rec := metrics.NewRecorder(opt.Queries * opt.N)
	for q := 0; q < opt.Queries; q++ {
		done := false
		coord.Query("A", aggregate.Spec{Kind: aggregate.KindSum}, "A = true", func(res baseline.CentralResult) {
			for _, r := range res.Replies {
				rec.Add(r.At)
			}
			done = true
		})
		c.Net.RunWhile(func() bool { return !done })
		if !done {
			panic("fig15: central query stalled")
		}
		c.RunFor(5 * time.Second)
	}
	return rec
}
