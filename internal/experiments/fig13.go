package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
)

// Fig13aOptions parameterize the latency-timeline experiment.
type Fig13aOptions struct {
	N         int           // paper: 500
	GroupSize int           // paper: ~200-node churn on a group
	Churn     int           // paper: 160
	Interval  time.Duration // paper: 5s
	Seconds   int           // paper: 100
	Seed      int64
}

// Defaults fills the paper's parameters.
func (o Fig13aOptions) Defaults() Fig13aOptions {
	if o.N == 0 {
		o.N = 500
	}
	if o.GroupSize == 0 {
		o.GroupSize = 200
	}
	if o.Churn == 0 {
		o.Churn = 160
	}
	if o.Interval == 0 {
		o.Interval = 5 * time.Second
	}
	if o.Seconds == 0 {
		o.Seconds = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig13a reproduces Fig. 13(a): per-query latency over time with a
// churn batch every Interval, one query per second.
func RunFig13a(opt Fig13aOptions) *Table {
	opt = opt.Defaults()
	lats := dynamicGroupRun(Fig12bOptions{
		N:         opt.N,
		GroupSize: opt.GroupSize,
		Queries:   opt.Seconds,
		Seed:      opt.Seed,
	}.Defaults(), opt.Churn, opt.Interval)
	static := dynamicGroupRun(Fig12bOptions{
		N:         opt.N,
		GroupSize: opt.GroupSize,
		Queries:   opt.Seconds / 2,
		Seed:      opt.Seed,
	}.Defaults(), 0, time.Hour)
	t := &Table{
		Title: "Fig. 13(a): latency over time under churn",
		Note: fmt.Sprintf("N=%d, group=%d, churn=%d every %v; static avg %s ms",
			opt.N, opt.GroupSize, opt.Churn, opt.Interval, metrics.FormatMs(mean(static))),
		Columns: []string{"time_s", "latency_ms"},
	}
	for i, lat := range lats {
		t.AddRow(itoa(i+1), metrics.FormatMs(lat))
	}
	return t
}

// Fig13bOptions parameterize the composite-query microbenchmark.
type Fig13bOptions struct {
	N         int // paper: 500
	GroupSize int // paper: 50 nodes per basic group
	MaxGroups int // paper: n up to 10
	Queries   int // paper: 300 per point
	ComplexTi int // paper: 3 unions intersected
	Seed      int64
}

// Defaults fills the paper's parameters.
func (o Fig13bOptions) Defaults() Fig13bOptions {
	if o.N == 0 {
		o.N = 500
	}
	if o.GroupSize == 0 {
		o.GroupSize = 50
	}
	if o.MaxGroups == 0 {
		o.MaxGroups = 10
	}
	if o.Queries == 0 {
		o.Queries = 300
	}
	if o.ComplexTi == 0 {
		o.ComplexTi = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig13b reproduces Fig. 13(b): latency of intersection, union and
// complex composite queries vs the number of groups per query, with and
// without the size-probe phase.
func RunFig13b(opt Fig13bOptions) *Table {
	opt = opt.Defaults()
	totalGroups := opt.MaxGroups * opt.ComplexTi
	c := cluster.New(emulabOptions(opt.N, opt.Seed, core.Config{}))
	rng := rand.New(rand.NewSource(opt.Seed + 41))
	for g := 0; g < totalGroups; g++ {
		attr := fmt.Sprintf("g%d", g)
		in := make(map[int]bool, opt.GroupSize)
		for _, i := range rng.Perm(opt.N)[:opt.GroupSize] {
			in[i] = true
		}
		for i, nd := range c.Nodes {
			nd.Store().SetBool(attr, in[i])
		}
	}
	t := &Table{
		Title: "Fig. 13(b): composite query latency",
		Note: fmt.Sprintf("N=%d, %d-node groups, %d queries per point; latency ms",
			opt.N, opt.GroupSize, opt.Queries),
		Columns: []string{"groups", "intersect", "union", "complex",
			"intersect_noSP", "union_noSP", "complex_noSP"},
	}
	terms := func(base, n int, op string) string {
		parts := make([]string, n)
		for i := 0; i < n; i++ {
			parts[i] = fmt.Sprintf("g%d = true", base+i)
		}
		return strings.Join(parts, " "+op+" ")
	}
	measure := func(queryText string) (total, noSP time.Duration) {
		req, err := core.ParseRequest(queryText)
		if err != nil {
			panic(err)
		}
		// Warm the involved trees, then measure.
		for w := 0; w < 2; w++ {
			if _, err := c.Execute(0, req); err != nil {
				panic(err)
			}
		}
		recT := metrics.NewRecorder(opt.Queries)
		recQ := metrics.NewRecorder(opt.Queries)
		for q := 0; q < opt.Queries; q++ {
			res, err := c.Execute(0, req)
			if err != nil {
				panic(err)
			}
			recT.Add(res.Stats.TotalTime)
			recQ.Add(res.Stats.QueryTime)
			c.RunFor(50 * time.Millisecond)
		}
		return recT.Mean(), recQ.Mean()
	}
	for n := 2; n <= opt.MaxGroups; n++ {
		inter := fmt.Sprintf("sum(*) where %s", terms(0, n, "and"))
		union := fmt.Sprintf("sum(*) where %s", terms(0, n, "or"))
		var tis []string
		for i := 0; i < opt.ComplexTi; i++ {
			tis = append(tis, "("+terms(i*opt.MaxGroups, n, "or")+")")
		}
		complexQ := fmt.Sprintf("sum(*) where %s", strings.Join(tis, " and "))

		it, iq := measure(inter)
		ut, uq := measure(union)
		ct, cq := measure(complexQ)
		t.AddRow(itoa(n),
			metrics.FormatMs(it), metrics.FormatMs(ut), metrics.FormatMs(ct),
			metrics.FormatMs(iq), metrics.FormatMs(uq), metrics.FormatMs(cq))
	}
	return t
}
