package experiments

import (
	"strings"
	"testing"
)

// TestMultiQueryShape asserts the issue's acceptance headline at its
// target scale (N=300, quick profile): 8 concurrent standing queries
// cost at most 1.25x the wire messages/epoch of 1 standing query
// (instead of ~8x unbatched), logical accounting still sees the ~8x,
// and the coalesced run's per-sample values are identical to the
// uncoalesced run's.
func TestMultiQueryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunMultiQuery(MultiQueryOptions{N: 300, Slices: 16, Epochs: 24, Seed: 1})
	wire := map[string]float64{}
	logical := map[string]float64{}
	for _, row := range tab.Rows {
		wire[row[0]] = parseF(t, row[3])
		logical[row[0]] = parseF(t, row[4])
		t.Log(row)
	}
	w1, w8 := wire["standing x1"], wire["standing x8"]
	wOff := wire["standing x8 (coalesce off)"]
	if w1 == 0 || w8 == 0 || wOff == 0 {
		t.Fatalf("missing standing series in %v", tab.Rows)
	}
	if w8 > 1.25*w1 {
		t.Errorf("8 standing queries cost %.1f wire msgs/epoch, want <= 1.25x of 1 query (%.1f)", w8, w1)
	}
	if wOff < 6*w1 {
		t.Errorf("uncoalesced 8-query run should cost ~8x (%.1f vs %.1f)", wOff, w1)
	}
	// Coalescing is a wire-level optimization only: logical accounting
	// still sees every per-subscription report.
	if l1, l8 := logical["standing x1"], logical["standing x8"]; l8 < 7*l1 {
		t.Errorf("logical msgs should scale ~8x with Q: %.1f vs %.1f", l8, l1)
	}
	if !strings.Contains(tab.Note, "per-sample values identical across coalesced/uncoalesced: true") {
		t.Errorf("per-sample equivalence failed: %s", tab.Note)
	}
	// The Nagle-style window lets concurrent one-shot bursts share
	// envelopes too: well under the naive Qx wire cost.
	if b, w := wire["one-shot x8 (concurrent burst)"], wire["one-shot x8 (window=25ms)"]; w > b/2 {
		t.Errorf("windowed one-shot burst should coalesce: %.1f vs unwindowed %.1f", w, b)
	}
}
