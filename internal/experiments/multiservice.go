package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/service"
	"github.com/moara/moara/internal/value"
	"github.com/moara/moara/internal/workload"
)

// MultiServiceOptions parameterize the query-service study: Q standing
// queries spanning Forms distinct normalized forms, served by the
// service front-end over one cluster. Not a paper figure — it measures
// the "millions of users" regime (§1) the paper's per-query cost model
// implies: when Q ≫ N and queries repeat, the wire bill must track the
// distinct-form count, not the subscriber count.
type MultiServiceOptions struct {
	N      int           // nodes (default 2000)
	Q      int           // concurrent standing subscriptions (default 10000)
	Forms  int           // distinct normalized forms among the Q (default 32)
	Slices int           // distinct slice values (default 16)
	Epochs int           // measured epochs per run (default 6)
	Period time.Duration // epoch length (default 200ms)
	Seed   int64
}

// Defaults fills unset parameters.
func (o MultiServiceOptions) Defaults() MultiServiceOptions {
	if o.N == 0 {
		o.N = 2000
	}
	if o.Q == 0 {
		o.Q = 10000
	}
	if o.Forms == 0 {
		o.Forms = 32
	}
	if o.Slices == 0 {
		o.Slices = 16
	}
	if o.Epochs == 0 {
		o.Epochs = 6
	}
	if o.Period == 0 {
		o.Period = 200 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// msCluster boots one measurement deployment, identical across the
// direct and service runs: same seed, same latency model, same
// attribute assignment — so identical install schedules make identical
// event streams.
func msCluster(opt MultiServiceOptions) *cluster.Cluster {
	nodeCfg := core.Config{SubTTL: 10 * time.Minute}
	c := cluster.New(emulabOptions(opt.N, opt.Seed, nodeCfg))
	slices := workload.AssignSlices(c.Net.Rand(), opt.N, opt.Slices)
	for i, nd := range c.Nodes {
		nd.Store().SetString("slice", slices[i])
		nd.Store().Set("mem_util", value.Int(int64(i*13%100)))
	}
	return c
}

// clusterClient adapts one cluster node to the service Backend shape —
// the same adapter the public API provides (moara.SimCluster.Client),
// rebuilt here because experiments sit below the root package.
type clusterClient struct {
	c    *cluster.Cluster
	node int
}

func (cc clusterClient) Query(ctx context.Context, text string) (core.Result, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return core.Result{}, err
	}
	return cc.Execute(ctx, req)
}

func (cc clusterClient) Execute(ctx context.Context, req core.Request) (core.Result, error) {
	return cc.c.Execute(cc.node, req)
}

func (cc clusterClient) Subscribe(ctx context.Context, text string, fn func(core.Sample)) (core.Sub, error) {
	req, err := core.ParseRequest(text)
	if err != nil {
		return nil, err
	}
	return cc.SubscribeRequest(ctx, req, fn)
}

func (cc clusterClient) SubscribeRequest(ctx context.Context, req core.Request, fn func(core.Sample)) (core.Sub, error) {
	id, err := cc.c.Subscribe(cc.node, req, fn)
	if err != nil {
		return nil, err
	}
	return clusterSub{cc.c, cc.node, id}, nil
}

func (cc clusterClient) Attrs() core.AttrStore { return cc.c.Nodes[cc.node].Store() }

// Now exposes the virtual clock, making service decisions deterministic.
func (cc clusterClient) Now() time.Duration { return cc.c.Net.Now() }

type clusterSub struct {
	c    *cluster.Cluster
	node int
	id   core.QueryID
}

func (cs clusterSub) ID() core.QueryID   { return cs.id }
func (cs clusterSub) Unsubscribe() error { return cs.c.Unsubscribe(cs.node, cs.id) }

// msRender renders every observable sample field, so stream comparisons
// across runs are byte-exact — epochs, root epochs, virtual delivery
// times, lags, coverage, and values all participate.
func msRender(s core.Sample) string {
	return fmt.Sprintf("e%d|r%d|at%s|lag%s|cold%v|%s", s.Epoch, s.RootEpoch, s.At, s.Lag, s.ColdStart, sampleKey(s))
}

// msWindow is the pumped virtual time per run: enough for install
// dissemination and pipeline fill plus the measured epochs.
func msWindow(opt MultiServiceOptions) time.Duration {
	return time.Duration(opt.Epochs+8) * opt.Period
}

// msDirectRun installs the given distinct forms once each from node 0 —
// the cost floor any sharing layer is measured against — and returns
// the wire message bill over the window plus each form's full rendered
// stream.
func msDirectRun(opt MultiServiceOptions, reqs []core.Request) (wire int64, streams []string) {
	c := msCluster(opt)
	collected := make([][]string, len(reqs))
	for i, req := range reqs {
		i := i
		if _, err := c.Subscribe(0, req, func(s core.Sample) {
			collected[i] = append(collected[i], msRender(s))
		}); err != nil {
			panic(err)
		}
	}
	c.RunFor(msWindow(opt))
	streams = make([]string, len(reqs))
	for i := range collected {
		if len(collected[i]) == 0 {
			panic(fmt.Sprintf("multiservice: direct form %d delivered no samples", i))
		}
		streams[i] = strings.Join(collected[i], "\n")
	}
	return c.WireQueryMessages(), streams
}

// msServiceRun subscribes all Q variant texts through the service front
// over an identically-seeded cluster and returns the wire bill, each
// subscriber's rendered stream, the form index each subscriber maps to,
// and the service stats.
func msServiceRun(opt MultiServiceOptions, texts []string, formOf []int) (wire int64, streams []string, stats service.Stats) {
	c := msCluster(opt)
	svc := service.New(clusterClient{c, 0}, service.Options{})
	ctx := context.Background()
	collected := make([][]string, len(texts))
	for i, text := range texts {
		i := i
		if _, err := svc.Subscribe(ctx, text, func(s core.Sample) {
			collected[i] = append(collected[i], msRender(s))
		}); err != nil {
			panic(err)
		}
	}
	c.RunFor(msWindow(opt))
	streams = make([]string, len(texts))
	for i := range collected {
		if len(collected[i]) == 0 {
			panic(fmt.Sprintf("multiservice: subscriber %d delivered no samples", i))
		}
		streams[i] = strings.Join(collected[i], "\n")
	}
	return c.WireQueryMessages(), streams, svc.Stats()
}

// msCachedOneShots measures the service's one-shot cache: rounds
// repeats of one query, re-issued every period with a TTL covering the
// whole run, cost one execution's wire messages.
func msCachedOneShots(opt MultiServiceOptions, rounds int) (execWire, totalWire int64, hits int64) {
	c := msCluster(opt)
	svc := service.New(clusterClient{c, 0}, service.Options{CacheTTL: time.Hour})
	ctx := context.Background()
	if _, err := svc.Query(ctx, "avg(mem_util)"); err != nil {
		panic(err)
	}
	execWire = c.WireQueryMessages()
	for r := 1; r < rounds; r++ {
		c.RunFor(opt.Period)
		if _, err := svc.Query(ctx, "avg( mem_util )"); err != nil {
			panic(err)
		}
	}
	return execWire, c.WireQueryMessages(), svc.Stats().CacheHits
}

// RunMultiService measures the query-service layer in the Q ≫ N regime.
// The headline: Q standing subscriptions spanning F normalized forms
// bill the wire for F installed queries — the ratio to the direct
// F-query run stays ~1.0 (acceptance bound 1.25) — and every subsumed
// subscriber's sample stream is byte-identical to the stream the same
// form delivers in an independent, service-less run.
func RunMultiService(opt MultiServiceOptions) *Table {
	opt = opt.Defaults()
	texts := workload.ServiceQueries(opt.Q, opt.Forms, opt.Slices, opt.Period)

	// Distinct normalized forms in first-appearance order — the install
	// order the service will use, which the direct run must mirror for
	// an identical event schedule.
	var reqs []core.Request
	formOf := make([]int, len(texts))
	index := make(map[string]int)
	for i, text := range texts {
		req, err := core.ParseRequest(text)
		if err != nil {
			panic(err)
		}
		nreq := core.NormalizeRequest(req)
		key := core.CanonicalKey(nreq)
		f, ok := index[key]
		if !ok {
			f = len(reqs)
			index[key] = f
			reqs = append(reqs, nreq)
		}
		formOf[i] = f
	}

	directWire, directStreams := msDirectRun(opt, reqs)
	svcWire, svcStreams, stats := msServiceRun(opt, texts, formOf)

	identical := true
	for i := range svcStreams {
		if svcStreams[i] != directStreams[formOf[i]] {
			identical = false
			break
		}
	}
	ratio := float64(svcWire) / float64(directWire)

	const cacheRounds = 100
	execWire, cachedWire, hits := msCachedOneShots(opt, cacheRounds)

	t := &Table{
		Title: "Query service: Q >> N subsumption sharing, result caching",
		Note: fmt.Sprintf("N=%d (Emulab model), Q=%d subscriptions over %d forms, epoch=%v, window=%v",
			opt.N, opt.Q, len(reqs), opt.Period, msWindow(opt)),
		Columns: []string{"series", "subscriptions", "installs", "wire_msgs", "wire_vs_direct", "streams_identical"},
	}
	t.AddRow("direct (one per form)", fmt.Sprint(len(reqs)), fmt.Sprint(len(reqs)),
		fmt.Sprint(directWire), "1.00x", "")
	t.AddRow(fmt.Sprintf("service x%d", opt.Q), fmt.Sprint(opt.Q), fmt.Sprint(stats.Installs),
		fmt.Sprint(svcWire), fmt.Sprintf("%.2fx", ratio), fmt.Sprint(identical))
	t.AddRow(fmt.Sprintf("one-shot x%d (cached)", cacheRounds), fmt.Sprint(cacheRounds), "1",
		fmt.Sprint(cachedWire), fmt.Sprintf("%.2fx", float64(cachedWire)/float64(execWire)), "")
	t.Note += fmt.Sprintf("; service installs=%d attaches=%d, wire ratio=%.3fx (bound 1.25x), streams identical=%v, cache hits=%d/%d",
		stats.Installs, stats.Attaches, ratio, identical, hits, cacheRounds-1)
	if stats.Installs != int64(len(reqs)) {
		panic(fmt.Sprintf("multiservice: %d installs for %d forms", stats.Installs, len(reqs)))
	}
	return t
}
