package experiments

import (
	"strings"
	"testing"
)

// TestSketchesShape asserts the bounded-state headline at a scaled-down
// size: across a 100x cardinality sweep the exact enum state grows
// linearly while every sketch state stays flat (the 10k-distinct HLL is
// no bigger than the 1k one, and orders of magnitude under enum), and
// the standing dcount/p99 streams land within their error bounds
// against the live-population oracle.
func TestSketchesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunSketches(SketchesOptions{N: 300, Cardinalities: []int{100, 1000, 10000}, Epochs: 6, Seed: 1})
	type cell struct{ bytes, err float64 }
	bySeries := map[string]map[string]cell{} // series -> distinct_or_n -> cell
	for _, row := range tab.Rows {
		t.Log(row)
		m := bySeries[row[0]]
		if m == nil {
			m = map[string]cell{}
			bySeries[row[0]] = m
		}
		c := cell{bytes: -1, err: -1}
		if row[2] != "-" {
			c.bytes = parseF(t, row[2])
		}
		if e := strings.TrimSuffix(row[5], "%"); e != row[5] {
			c.err = parseF(t, e)
		}
		m[row[1]] = c
	}
	enum, hll := bySeries["enum (exact)"], bySeries["dcount (hll)"]
	quant := bySeries["p99 (quantile summary)"]
	if enum["10000"].bytes < 50*enum["100"].bytes {
		t.Errorf("enum state did not grow linearly: %v bytes at 100, %v at 10000",
			enum["100"].bytes, enum["10000"].bytes)
	}
	if hll["10000"].bytes > hll["1000"].bytes {
		t.Errorf("dense HLL state grew past its bound: %v bytes at 1000, %v at 10000",
			hll["1000"].bytes, hll["10000"].bytes)
	}
	if hll["10000"].bytes*20 > enum["10000"].bytes {
		t.Errorf("HLL state %v bytes not well under enum %v at 10k distinct",
			hll["10000"].bytes, enum["10000"].bytes)
	}
	// 3 sigma for 2^11 registers is ~6.9%; the rank bound for the
	// quantile summary at these sizes is well under 2%.
	for card, c := range hll {
		if c.err > 6.9 {
			t.Errorf("dcount error %.1f%% at %s distinct exceeds the 3-sigma bound", c.err, card)
		}
	}
	for card, c := range quant {
		if c.err > 2.0 {
			t.Errorf("p99 rank error %.1f%% at %s values exceeds the summary bound", c.err, card)
		}
	}
	if c := bySeries["standing dcount(host)"]["300"]; c.err < 0 || c.err > 6.9 {
		t.Errorf("standing dcount error %.1f%% out of bounds", c.err)
	}
	if c := bySeries["standing p99(load)"]["300"]; c.err < 0 || c.err > 2.0 {
		t.Errorf("standing p99 rank error %.1f%% out of bounds", c.err)
	}
}
