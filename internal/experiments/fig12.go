package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/simnet"
	"github.com/moara/moara/internal/workload"
)

// emulabOptions builds the medium-scale datacenter environment of the
// paper's Emulab runs: a switched LAN plus a serialized per-message
// processing cost standing in for the FreePastry/Java software stack
// (10 Moara instances per physical machine).
func emulabOptions(n int, seed int64, node core.Config) cluster.Options {
	return cluster.Options{
		N:                   n,
		Seed:                seed,
		Latency:             simnet.LAN(simnet.LANConfig{}),
		ProcDelay:           800 * time.Microsecond,
		ProcJitter:          400 * time.Microsecond,
		SerializeProc:       true,
		InstancesPerMachine: 10,
		Node:                node,
	}
}

// Fig12aOptions parameterize the static-group latency/bandwidth
// comparison against a single global SDIMS-style tree.
type Fig12aOptions struct {
	N          int   // paper: 500 (50 machines x 10 instances)
	GroupSizes []int // paper: 32..500
	Queries    int   // paper: 100
	Seed       int64
}

// Defaults fills the paper's parameters.
func (o Fig12aOptions) Defaults() Fig12aOptions {
	if o.N == 0 {
		o.N = 500
	}
	if len(o.GroupSizes) == 0 {
		o.GroupSizes = []int{32, 64, 128, 256, 500}
	}
	if o.Queries == 0 {
		o.Queries = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig12a reproduces Fig. 12(a): per-query latency and message count
// for static groups of increasing size, Moara vs the SDIMS single
// global tree approach.
func RunFig12a(opt Fig12aOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Fig. 12(a): static groups, Moara vs SDIMS global tree",
		Note: fmt.Sprintf("N=%d (Emulab model), %d queries per cell; latency ms / msgs per query",
			opt.N, opt.Queries),
		Columns: []string{"series", "latency_ms", "msgs_per_query"},
	}
	run := func(label string, mode core.Mode, groupSize int) {
		c := cluster.New(emulabOptions(opt.N, opt.Seed, core.Config{Mode: mode}))
		rng := rand.New(rand.NewSource(opt.Seed + 17))
		members := rng.Perm(opt.N)[:groupSize]
		inGroup := make(map[int]bool, groupSize)
		for _, i := range members {
			inGroup[i] = true
		}
		for i, nd := range c.Nodes {
			nd.Store().SetBool("A", inGroup[i])
		}
		req := core.Request{
			Attr: "A",
			Spec: aggregate.Spec{Kind: aggregate.KindSum},
			Pred: predicate.MustParse("A = true"),
		}
		// Settle pruning before measuring steady-state latency.
		if err := c.Warm(req, req, req); err != nil {
			panic(err)
		}
		rec := metrics.NewRecorder(opt.Queries)
		for q := 0; q < opt.Queries; q++ {
			res, err := c.Execute(0, req)
			if err != nil {
				panic(err)
			}
			if got, _ := res.Agg.Value.AsInt(); got != int64(groupSize) {
				panic(fmt.Sprintf("fig12a %s: sum=%d want %d", label, got, groupSize))
			}
			rec.Add(res.Stats.TotalTime)
			c.RunFor(200 * time.Millisecond)
		}
		msgs := float64(c.MoaraMessages()) / float64(opt.Queries)
		t.AddRow(label, metrics.FormatMs(rec.Mean()), f1(msgs))
	}
	for _, m := range opt.GroupSizes {
		run(fmt.Sprintf("group%d", m), core.ModeAdaptive, m)
	}
	// The SDIMS comparison: one system-wide tree, every node receives
	// every query regardless of group (paper labels this "SDIMS").
	run("SDIMS", core.ModeGlobal, opt.N)
	return t
}

// Fig12bOptions parameterize the dynamic-group latency experiment.
type Fig12bOptions struct {
	N         int   // paper: 500
	GroupSize int   // paper: 100
	Churns    []int // paper: 40..200
	Intervals []time.Duration
	Queries   int // queries at 1/s (paper: 100 per run)
	Seed      int64
}

// Defaults fills the paper's parameters.
func (o Fig12bOptions) Defaults() Fig12bOptions {
	if o.N == 0 {
		o.N = 500
	}
	if o.GroupSize == 0 {
		o.GroupSize = 100
	}
	if len(o.Churns) == 0 {
		o.Churns = []int{40, 80, 120, 160, 200}
	}
	if len(o.Intervals) == 0 {
		o.Intervals = []time.Duration{5 * time.Second, 45 * time.Second}
	}
	if o.Queries == 0 {
		o.Queries = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// dynamicGroupRun drives the Fig. 12(b)/13(a) workload: a group of
// GroupSize nodes; every interval, churn members leave and churn
// outsiders join; queries injected at 1/s. It returns per-query
// latencies in injection order.
func dynamicGroupRun(opt Fig12bOptions, churn int, interval time.Duration) []time.Duration {
	c := cluster.New(emulabOptions(opt.N, opt.Seed, core.Config{}))
	rng := rand.New(rand.NewSource(opt.Seed + 97))
	member := make([]bool, opt.N)
	for _, i := range rng.Perm(opt.N)[:opt.GroupSize] {
		member[i] = true
	}
	for i, nd := range c.Nodes {
		nd.Store().SetBool("A", member[i])
	}
	req := core.Request{
		Attr: "A",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("A = true"),
	}
	if err := c.Warm(req, req, req); err != nil {
		panic(err)
	}
	applyChurn := func() {
		if churn == 0 {
			return
		}
		var members, outsiders []int
		for i, m := range member {
			if m {
				members = append(members, i)
			} else {
				outsiders = append(outsiders, i)
			}
		}
		leave, join := workload.ReplaceBatch(rng, members, outsiders, churn)
		for _, i := range leave {
			member[i] = false
			c.Nodes[i].Store().SetBool("A", false)
		}
		for _, i := range join {
			member[i] = true
			c.Nodes[i].Store().SetBool("A", true)
		}
	}
	latencies := make([]time.Duration, 0, opt.Queries)
	start := c.Net.Now()
	nextQuery := start + time.Second
	nextChurn := start + interval
	if churn == 0 {
		nextChurn = start + 365*24*time.Hour
	}
	for len(latencies) < opt.Queries {
		if nextChurn <= nextQuery {
			c.Net.RunUntil(nextChurn)
			applyChurn()
			nextChurn += interval
			continue
		}
		c.Net.RunUntil(nextQuery)
		res, err := c.Execute(0, req)
		if err != nil {
			panic(err)
		}
		latencies = append(latencies, res.Stats.TotalTime)
		nextQuery += time.Second
	}
	return latencies
}

// RunFig12b reproduces Fig. 12(b): average query latency under group
// churn for different churn sizes and intervals, with the static-group
// latency as the reference line.
func RunFig12b(opt Fig12bOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Fig. 12(b): dynamic group latency",
		Note: fmt.Sprintf("N=%d, group=%d, %d queries at 1/s; avg latency ms",
			opt.N, opt.GroupSize, opt.Queries),
		Columns: []string{"churn"},
	}
	for _, iv := range opt.Intervals {
		t.Columns = append(t.Columns, fmt.Sprintf("interval_%ds", int(iv.Seconds())))
	}
	t.Columns = append(t.Columns, "static_baseline")
	staticLat := mean(dynamicGroupRun(opt, 0, time.Hour))
	for _, churn := range opt.Churns {
		row := []string{itoa(churn)}
		for _, iv := range opt.Intervals {
			lat := mean(dynamicGroupRun(opt, churn, iv))
			row = append(row, metrics.FormatMs(lat))
		}
		row = append(row, metrics.FormatMs(staticLat))
		t.AddRow(row...)
	}
	return t
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}
