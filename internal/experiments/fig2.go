package experiments

import (
	"fmt"
	"math/rand"

	"github.com/moara/moara/internal/workload"
)

// Fig2aOptions parameterize the slice-usage trace synthesis.
type Fig2aOptions struct {
	Slices   int // paper: ~400 PlanetLab slices
	MaxNodes int // paper: several hundred
	Seed     int64
}

// Defaults fills the paper's parameters.
func (o Fig2aOptions) Defaults() Fig2aOptions {
	if o.Slices == 0 {
		o.Slices = 400
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 450
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig2a regenerates Fig. 2(a): PlanetLab slice sizes by rank,
// assigned vs in use. The paper's CoTop snapshot is proprietary; the
// synthesizer matches its published shape (about half of all slices
// under 10 assigned nodes; in-use counts a thinned subset).
func RunFig2a(opt Fig2aOptions) *Table {
	opt = opt.Defaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	slices := workload.SliceSizes(rng, opt.Slices, opt.MaxNodes)
	t := &Table{
		Title:   "Fig. 2(a): PlanetLab slice usage (synthetic)",
		Note:    fmt.Sprintf("%d slices, max %d nodes", opt.Slices, opt.MaxNodes),
		Columns: []string{"rank", "assigned", "in_use"},
	}
	for _, rank := range []int{1, 2, 5, 10, 20, 50, 100, 200, 300, opt.Slices} {
		if rank > len(slices) {
			continue
		}
		s := slices[rank-1]
		t.AddRow(itoa(rank), itoa(s.Assigned), itoa(s.InUse))
	}
	under10 := 0
	for _, s := range slices {
		if s.Assigned < 10 {
			under10++
		}
	}
	t.Note += fmt.Sprintf("; %d%% of slices under 10 assigned nodes", 100*under10/len(slices))
	return t
}

// Fig2bOptions parameterize the utility-computing job trace synthesis.
type Fig2bOptions struct {
	Minutes int // paper: 20-hour window
	Peak    int // paper: ~160 machines
	Seed    int64
}

// Defaults fills the paper's parameters.
func (o Fig2bOptions) Defaults() Fig2bOptions {
	if o.Minutes == 0 {
		o.Minutes = 1400
	}
	if o.Peak == 0 {
		o.Peak = 170
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig2b regenerates Fig. 2(b): machines used over time by two
// animation-rendering batch jobs (synthetic stand-in for HP's
// proprietary 6-month utility-computing trace).
func RunFig2b(opt Fig2bOptions) *Table {
	opt = opt.Defaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	job0 := workload.RenderingJob(rng, 0, opt.Minutes, opt.Peak)
	job1 := workload.RenderingJob(rng, opt.Minutes/4, opt.Minutes/2, opt.Peak/2)
	t := &Table{
		Title:   "Fig. 2(b): utility-computing job machine usage (synthetic)",
		Note:    fmt.Sprintf("%d-minute window, peaks %d/%d machines", opt.Minutes, opt.Peak, opt.Peak/2),
		Columns: []string{"time_min", "job0", "job1"},
	}
	for m := 0; m <= opt.Minutes; m += 60 {
		t.AddRow(itoa(m), itoa(workload.MachinesAt(job0, m)), itoa(workload.MachinesAt(job1, m)))
	}
	return t
}
