package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/predicate"
)

// Fig11aOptions parameterize the separate-query-plane scaling
// experiment: query cost vs system size for (group size, threshold)
// combinations.
type Fig11aOptions struct {
	Sizes      []int // paper: up to 16,384 (FreePastry simulator)
	GroupSizes []int // paper: 8, 32, 128
	Thresholds []int // paper: 1, 2, 4
	Queries    int   // paper: 1,000
	Seed       int64
}

// Defaults fills the paper's parameters.
func (o Fig11aOptions) Defaults() Fig11aOptions {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{16, 64, 256, 1024, 4096, 16384}
	}
	if len(o.GroupSizes) == 0 {
		o.GroupSizes = []int{8, 32, 128}
	}
	if len(o.Thresholds) == 0 {
		o.Thresholds = []int{1, 2, 4}
	}
	if o.Queries == 0 {
		o.Queries = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// sqpCosts runs Queries identical group queries on a fresh cluster and
// returns (avg query cost, total update cost) in messages. With warm=0
// the query cost includes the cold-start broadcast amortized over all
// queries, exactly as the paper does; warm>0 first runs that many
// unmeasured queries to isolate steady state.
func sqpCosts(n, groupSize, threshold, queries, warm int, seed int64) (queryCost float64, updateCost float64) {
	c := cluster.New(cluster.Options{
		N:    n,
		Seed: seed,
		Node: core.Config{Threshold: threshold},
	})
	rng := rand.New(rand.NewSource(seed + 31))
	members := rng.Perm(n)
	if groupSize > n {
		groupSize = n
	}
	inGroup := make(map[int]bool, groupSize)
	for _, i := range members[:groupSize] {
		inGroup[i] = true
	}
	for i, nd := range c.Nodes {
		nd.Store().SetBool("A", inGroup[i])
	}
	req := core.Request{
		Attr: "A",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("A = true"),
	}
	for w := 0; w < warm; w++ {
		if _, err := c.Execute(0, req); err != nil {
			panic(err)
		}
	}
	if warm > 0 {
		c.RunFor(2 * time.Second)
		c.Net.ResetCounter()
	}
	for q := 0; q < queries; q++ {
		res, err := c.Execute(0, req)
		if err != nil {
			panic(err)
		}
		if got, _ := res.Agg.Value.AsInt(); got != int64(groupSize) {
			panic(fmt.Sprintf("fig11: sum=%d want %d (n=%d t=%d q=%d)", got, groupSize, n, threshold, q))
		}
	}
	kinds := c.Net.Counter().ByKind()
	qmsgs := float64(kinds["moara.query"] + kinds["moara.resp"])
	umsgs := float64(kinds["moara.status"])
	return qmsgs / float64(queries), umsgs
}

// RunFig11a reproduces Fig. 11(a): average query cost vs system size,
// with and without the separate query plane.
func RunFig11a(opt Fig11aOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Fig. 11(a): SQP query cost vs number of nodes",
		Note: fmt.Sprintf("%d queries per cell; avg messages per query; series (groupsize,threshold)",
			opt.Queries),
		Columns: []string{"nodes"},
	}
	for _, m := range opt.GroupSizes {
		for _, th := range opt.Thresholds {
			t.Columns = append(t.Columns, fmt.Sprintf("(%d,%d)", m, th))
		}
	}
	for _, n := range opt.Sizes {
		row := []string{itoa(n)}
		for _, m := range opt.GroupSizes {
			for _, th := range opt.Thresholds {
				if m > n {
					row = append(row, "-")
					continue
				}
				qc, _ := sqpCosts(n, m, th, opt.Queries, 0, opt.Seed)
				row = append(row, f1(qc))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11bOptions parameterize the cost/update tradeoff experiment at a
// fixed system size.
type Fig11bOptions struct {
	N          int   // paper: 8,192
	GroupSizes []int // paper: subset sizes, log-spaced
	Thresholds []int // paper: 2, 4, 16 (relative to 1)
	Queries    int
	Seed       int64
}

// Defaults fills the paper's parameters.
func (o Fig11bOptions) Defaults() Fig11bOptions {
	if o.N == 0 {
		o.N = 8192
	}
	if len(o.GroupSizes) == 0 {
		o.GroupSizes = []int{8, 32, 128, 512, 2048, 8192}
	}
	if len(o.Thresholds) == 0 {
		o.Thresholds = []int{2, 4, 16}
	}
	if o.Queries == 0 {
		o.Queries = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig11b reproduces Fig. 11(b): query cost as % of the threshold=1
// cost, and update cost as % of the threshold=1 update cost, vs group
// size.
func RunFig11b(opt Fig11bOptions) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Fig. 11(b): SQP query/update costs vs subset size",
		Note: fmt.Sprintf("N=%d, %d queries; qc%% = query cost vs threshold=1, uc%% = update cost vs threshold=1",
			opt.N, opt.Queries),
		Columns: []string{"subset"},
	}
	for _, th := range opt.Thresholds {
		t.Columns = append(t.Columns, fmt.Sprintf("qc%%,t=%d", th), fmt.Sprintf("uc%%,t=%d", th))
	}
	for _, m := range opt.GroupSizes {
		if m > opt.N {
			continue
		}
		baseQC, baseUC := sqpCosts(opt.N, m, 1, opt.Queries, 0, opt.Seed)
		row := []string{itoa(m)}
		for _, th := range opt.Thresholds {
			qc, uc := sqpCosts(opt.N, m, th, opt.Queries, 0, opt.Seed)
			qp := 100 * qc / baseQC
			up := 100.0
			if baseUC > 0 {
				up = 100 * uc / baseUC
			}
			row = append(row, f1(qp), f1(up))
		}
		t.AddRow(row...)
	}
	return t
}
