package experiments

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/transport"
	"github.com/moara/moara/internal/value"
)

// WireOptions parameterize the wire-codec study: a steady-state
// microbenchmark of the hot message shapes through both codecs (gob
// envelope stream vs framed columnar), and a real-TCP harness running
// the standing grouped workload across actual agent processes' worth of
// sockets under each codec. Not a paper figure — the paper's prototype
// never left the simulator; this table is the repo's deployable-agent
// extension.
type WireOptions struct {
	// Sizes sweep the contributor count folded into each benchmarked
	// message (default 300, 2000, 10000).
	Sizes []int
	// TCPNodes is the loopback agent count for the real-socket harness
	// (default 256; the scale profile runs 1000). 0 < TCPNodes < 2
	// skips the harness.
	TCPNodes int
	// Epochs is the number of measured standing epochs on the TCP
	// harness (default 5).
	Epochs int
	// Period is the standing query's epoch length on the TCP harness
	// (default 300ms — real agents on a shared CPU need headroom the
	// simulator doesn't).
	Period time.Duration
}

// Defaults fills unset parameters.
func (o WireOptions) Defaults() WireOptions {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{300, 2000, 10000}
	}
	if o.TCPNodes == 0 {
		o.TCPNodes = 256
	}
	if o.Epochs == 0 {
		o.Epochs = 5
	}
	if o.Period == 0 {
		o.Period = 300 * time.Millisecond
	}
	return o
}

// gobEnv mirrors the transport's legacy per-message gob envelope, so
// the gob rows bill exactly what the old wire carried.
type gobEnv struct {
	FromAddr string
	Payload  any
}

// RunWire produces the codec table. Part one is the microbenchmark:
// each hot message shape — the keyed 16-group AVG epoch report (the
// acceptance shape), a dense-HLL report, an 8-report coalesced batch,
// and the small install message — encodes and decodes through a
// steady-state codec pair (persistent gob encoder/decoder, so type
// descriptors are amortized exactly as on a long-lived connection;
// reused buffers for columnar). Part two boots TCPNodes real agents on
// loopback sockets, runs one grouped standing query under each codec,
// and reports measured bytes on the wire per epoch with the stream's
// completeness.
func RunWire(opt WireOptions) *Table {
	opt = opt.Defaults()
	transport.RegisterGob()
	t := &Table{
		Title: "Wire codec: gob envelope vs framed columnar",
		Note: fmt.Sprintf("per-message ns and bytes from steady-state codec pairs; tcp rows are measured socket bytes per epoch across all %d agents (grouped standing query, epoch=%v, %d epochs)",
			opt.TCPNodes, opt.Period, opt.Epochs),
		Columns: []string{"series", "n", "codec", "enc_ns", "dec_ns", "wire_bytes", "speedup", "completeness"},
	}
	for _, n := range opt.Sizes {
		for _, shape := range wireShapes(n) {
			codecRows(t, shape.label, n, shape.msg)
		}
	}
	if opt.TCPNodes > 1 {
		tcpStandingRows(t, opt, transport.CodecGob)
		tcpStandingRows(t, opt, transport.CodecColumnar)
	}
	return t
}

// wireShapes builds the benchmarked messages at contributor count n.
func wireShapes(n int) []struct {
	label string
	msg   any
} {
	qid := core.QueryID{Origin: ids.FromKey("bench-origin"), Num: 42}
	avg := aggregate.NewGrouped(aggregate.Spec{Kind: aggregate.KindAvg}, 32)
	dcount := &aggregate.DCountState{}
	for i := 0; i < n; i++ {
		node := ids.FromKey(fmt.Sprintf("n%06d", i))
		avg.AddKeyed(node, fmt.Sprintf("s%02d", i%16), value.Float(float64(i)))
		dcount.Add(node, value.Str(fmt.Sprintf("h%06d", i)))
	}
	report := core.EpochReportMsg{SID: qid, Group: "*:load", Epoch: 9,
		State: avg, Contributors: int64(n), Np: n / 2, Unknown: 1.5}
	batch := core.BatchMsg{Items: make([]any, 8)}
	for i := range batch.Items {
		r := report
		r.Epoch += uint64(i)
		batch.Items[i] = r
	}
	return []struct {
		label string
		msg   any
	}{
		{"epoch report avg x16 groups", report},
		{"epoch report dcount (hll)", core.EpochReportMsg{SID: qid, Group: "*:host", Epoch: 9,
			State: dcount, Contributors: int64(n), Np: n / 2}},
		{"batch of 8 epoch reports", batch},
		{"install (subscription)", core.InstallMsg{SID: qid, Group: "*:load", Attr: "load",
			Spec: aggregate.Spec{Kind: aggregate.KindAvg}, GroupBy: "slice",
			Period: time.Second, Gen: 3, Level: 2, ReplyTo: ids.FromKey("parent")}},
	}
}

// codecRows measures one message shape through both codecs and appends
// a gob row plus a columnar row with the end-to-end speedup.
func codecRows(t *Table, label string, n int, msg any) {
	gobEnc, gobDec, gobBytes := benchGob(msg)
	colEnc, colDec, colBytes := benchColumnar(msg)
	t.AddRow(label, itoa(n), "gob", itoa(int(gobEnc)), itoa(int(gobDec)), itoa(gobBytes), "-", "-")
	speedup := float64(gobEnc+gobDec) / float64(colEnc+colDec)
	t.AddRow(label, itoa(n), "columnar", itoa(int(colEnc)), itoa(int(colDec)), itoa(colBytes),
		fmt.Sprintf("%.1fx", speedup), "-")
}

// benchIters picks an iteration count targeting a fixed encoded volume,
// so small and large messages get comparable measurement quality.
func benchIters(msgBytes int) int {
	iters := (4 << 20) / max(msgBytes, 1)
	return min(max(iters, 32), 4096)
}

// benchGob measures steady-state gob: one persistent encoder/decoder
// pair over a shared buffer, exactly a long-lived connection's shape —
// type descriptors cross once, then each message costs its envelope.
func benchGob(msg any) (encNs, decNs int64, msgBytes int) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	env := gobEnv{FromAddr: "127.0.0.1:9999", Payload: msg}
	// Warm: ship the type descriptors.
	mustEncode(enc, &env)
	var out gobEnv
	mustDecode(dec, &out)
	// Steady-state per-message size.
	pre := buf.Len()
	mustEncode(enc, &env)
	msgBytes = buf.Len() - pre
	mustDecode(dec, &out)

	iters := benchIters(msgBytes)
	start := time.Now()
	for i := 0; i < iters; i++ {
		mustEncode(enc, &env)
	}
	encNs = time.Since(start).Nanoseconds() / int64(iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		out = gobEnv{}
		mustDecode(dec, &out)
	}
	decNs = time.Since(start).Nanoseconds() / int64(iters)
	return encNs, decNs, msgBytes
}

func mustEncode(enc *gob.Encoder, env *gobEnv) {
	if err := enc.Encode(env); err != nil {
		panic(err)
	}
}

func mustDecode(dec *gob.Decoder, env *gobEnv) {
	if err := dec.Decode(env); err != nil {
		panic(err)
	}
}

// benchColumnar measures the framed columnar codec with a reused buffer
// (the transport's per-connection scratch), billing the frame length
// prefix; the once-per-connection header is amortized to zero.
func benchColumnar(msg any) (encNs, decNs int64, msgBytes int) {
	payload, err := core.AppendMessage(nil, msg)
	if err != nil {
		panic(err)
	}
	var hdr [binary.MaxVarintLen64]byte
	msgBytes = len(payload) + binary.PutUvarint(hdr[:], uint64(len(payload)))

	iters := benchIters(msgBytes)
	start := time.Now()
	for i := 0; i < iters; i++ {
		payload, err = core.AppendMessage(payload[:0], msg)
		if err != nil {
			panic(err)
		}
	}
	encNs = time.Since(start).Nanoseconds() / int64(iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := core.ReadMessage(payload); err != nil {
			panic(err)
		}
	}
	decNs = time.Since(start).Nanoseconds() / int64(iters)
	return encNs, decNs, msgBytes
}

// tcpStandingRows boots opt.TCPNodes agents on loopback TCP under the
// given outgoing codec, installs one grouped standing query, and
// measures socket bytes per epoch plus stream completeness over
// opt.Epochs warm epochs.
func tcpStandingRows(t *Table, opt WireOptions, codec transport.Codec) {
	n := opt.TCPNodes
	nodes := make([]*transport.Node, 0, n)
	for i := 0; i < n; i++ {
		nd, err := transport.Listen("127.0.0.1:0", nil, transport.Options{Codec: codec})
		if err != nil {
			panic(fmt.Sprintf("wire: listen agent %d: %v", i, err))
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		var wg sync.WaitGroup
		for _, nd := range nodes {
			wg.Add(1)
			go func(nd *transport.Node) { defer wg.Done(); nd.Close() }(nd)
		}
		wg.Wait()
	}()
	roster := make([]string, 0, n)
	for _, nd := range nodes {
		roster = append(roster, nd.Addr())
	}
	for i, nd := range nodes {
		nd.ApplyRoster(roster)
		nd.SetAttr("slice", value.Str(fmt.Sprintf("s%02d", i%16)))
		nd.SetAttr("load", value.Float(float64(i)))
	}

	samples := make(chan core.Sample, 256)
	sub, err := nodes[0].Subscribe(context.Background(),
		fmt.Sprintf("avg(load) group by slice every %v", opt.Period),
		func(s core.Sample) {
			select {
			case samples <- s:
			default:
			}
		})
	if err != nil {
		panic(fmt.Sprintf("wire: subscribe: %v", err))
	}
	defer sub.Unsubscribe()

	// Warm until the stream reaches every agent (or a deadline — real
	// sockets on a loaded CI box can straggle; the completeness column
	// then reports what the run actually achieved).
	deadline := time.After(60 * time.Second)
	warm := false
	for !warm {
		select {
		case s := <-samples:
			warm = !s.ColdStart && s.Contributors == int64(n)
		case <-deadline:
			warm = true
		}
	}

	bytesBefore := wireBytes(nodes)
	var completeness []float64
	start := time.Now()
	for len(completeness) < opt.Epochs {
		select {
		case s := <-samples:
			if !s.ColdStart {
				completeness = append(completeness, float64(s.Contributors)/float64(n))
			}
		case <-deadline:
			completeness = append(completeness, 0)
		}
	}
	elapsed := time.Since(start)
	perEpoch := float64(wireBytes(nodes)-bytesBefore) / float64(opt.Epochs)

	mean := 0.0
	for _, c := range completeness {
		mean += c
	}
	mean /= float64(len(completeness))
	label := fmt.Sprintf("tcp standing avg x16 (%.0fms/epoch)",
		float64(elapsed.Milliseconds())/float64(opt.Epochs))
	t.AddRow(label, itoa(n), codec.String(), "-", "-", itoa(int(perEpoch)), "-", fmt.Sprintf("%.3f", mean))
}

// wireBytes sums bytes sent across the cluster (each byte is also
// received once, so outbound alone is the wire total).
func wireBytes(nodes []*transport.Node) uint64 {
	total := uint64(0)
	for _, nd := range nodes {
		total += nd.Stats().BytesOut
	}
	return total
}
