package experiments

import (
	"fmt"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/metrics"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/simnet"
)

// Fig16Options parameterize the bottleneck-link analysis.
type Fig16Options struct {
	N       int // paper: 200-node group
	Queries int // paper: ~220
	Seed    int64
}

// Defaults fills the paper's parameters.
func (o Fig16Options) Defaults() Fig16Options {
	if o.N == 0 {
		o.N = 200
	}
	if o.Queries == 0 {
		o.Queries = 220
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// RunFig16 reproduces Fig. 16: per-query completion latency alongside
// the round-trip latency of the slowest tree edge used by that query
// (the paper's offline bottleneck analysis, here reconstructed from a
// message tap on the simulated network).
func RunFig16(opt Fig16Options) *Table {
	opt = opt.Defaults()
	var (
		capture bool
		maxEdge time.Duration
	)
	copts := planetlabOptions(opt.N, opt.Seed, core.Config{
		ChildTimeout: 120 * time.Second,
		QueryTimeout: 300 * time.Second,
	})
	copts.Tap = func(_, _ ids.ID, m any, wire time.Duration) {
		if !capture {
			return
		}
		// The tap sees wire messages; query traffic may arrive inside a
		// coalesced BatchMsg, whose items all crossed this edge at the
		// tapped latency.
		items := []any{m}
		if b, ok := m.(simnet.Batch); ok {
			items = b.Unpack()
		}
		for _, item := range items {
			switch item.(type) {
			case core.QueryMsg, core.ResponseMsg, core.SubQueryMsg:
				if wire > maxEdge {
					maxEdge = wire
				}
			}
		}
	}
	c := cluster.New(copts)
	for _, nd := range c.Nodes {
		nd.Store().SetBool("A", true)
	}
	req := core.Request{
		Attr: "A",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("A = true"),
	}
	if err := c.Warm(req, req, req); err != nil {
		panic(err)
	}
	t := &Table{
		Title: "Fig. 16: per-query latency vs bottleneck link RTT",
		Note: fmt.Sprintf("N=%d WAN model, whole-system group; bottleneck = 2x slowest query-path edge",
			opt.N),
		Columns: []string{"query", "latency_ms", "bottleneck_ms"},
	}
	for q := 0; q < opt.Queries; q++ {
		capture, maxEdge = true, 0
		res, err := c.Execute(0, req)
		if err != nil {
			panic(err)
		}
		capture = false
		bottleneck := 2 * maxEdge
		t.AddRow(itoa(q), metrics.FormatMs(res.Stats.TotalTime), metrics.FormatMs(bottleneck))
		c.RunFor(5 * time.Second)
	}
	return t
}
