package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Title:   "Fig. X: sample",
		Note:    "a note",
		Columns: []string{"col", "value_ms"},
	}
	t.AddRow("alpha", "1.5")
	t.AddRow("beta-long", "23.0")
	return t
}

func TestTableFprintAligns(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== Fig. X: sample ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "a note") {
		t.Fatalf("missing note:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and rows must align on the value column.
	var headerIdx, rowIdx int
	for i, l := range lines {
		if strings.HasPrefix(l, "col") {
			headerIdx = i
		}
		if strings.HasPrefix(l, "beta-long") {
			rowIdx = i
		}
	}
	hPos := strings.Index(lines[headerIdx], "value_ms")
	rPos := strings.Index(lines[rowIdx], "23.0")
	if hPos != rPos {
		t.Fatalf("columns misaligned: header at %d, row at %d\n%s", hPos, rPos, out)
	}
}

func TestTableTSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "col\tvalue_ms\nalpha\t1.5\nbeta-long\t23.0\n"
	if buf.String() != want {
		t.Fatalf("tsv = %q, want %q", buf.String(), want)
	}
}
