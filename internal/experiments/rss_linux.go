//go:build linux

package experiments

import "syscall"

// peakRSSMB reads the process's peak resident set size in MiB (Linux
// reports ru_maxrss in KiB). It is monotone over the process lifetime,
// so per-size readings show the high-water mark up to that size.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Maxrss) / 1024
}
