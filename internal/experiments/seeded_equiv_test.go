package experiments

// Seeded-equivalence lock for the perf work on the simulator, the
// aggregation engine, and the standing-query epoch path: with a fixed
// seed, a run's observable behavior — every Result, every Sample
// (including virtual-time latencies), and the logical/wire message
// accounting — must be byte-identical to the pre-optimization
// reference. The golden transcripts under testdata/seeded were
// generated BEFORE the optimizations landed (go test -run Seeded
// -update-seeded regenerates them; never do that to paper over a
// diff). Any optimization that changes scheduling order, rng
// consumption, float accumulation order, or counter semantics shows up
// here as a transcript diff, in the spirit of TestCoalesceEquivalence.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/pastry"
	"github.com/moara/moara/internal/value"
)

var updateSeeded = flag.Bool("update-seeded", false, "regenerate testdata/seeded transcripts (pre-optimization reference only)")

// transcript accumulates the observable behavior of one scenario.
type transcript struct {
	b strings.Builder
}

func (tr *transcript) logf(format string, args ...any) {
	fmt.Fprintf(&tr.b, format+"\n", args...)
}

// logResult records every observable field of a one-shot result.
func (tr *transcript) logResult(tag string, res core.Result) {
	tr.logf("%s agg=%s contrib=%d expected=%.6f trunc=%v total=%v query=%v probe=%v probed=%d keys=%d",
		tag, res.Agg.String(), res.Contributors, res.Expected, res.Truncated,
		res.Stats.TotalTime, res.Stats.QueryTime, res.Stats.ProbeTime,
		res.Stats.Probed, res.Stats.GroupKeys)
	keys := make([]string, 0, len(res.Groups))
	for k := range res.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tr.logf("%s   group %q = %s", tag, k, res.Groups[k].String())
	}
}

// logSample records every observable field of a standing-query sample.
func (tr *transcript) logSample(tag string, s core.Sample) {
	tr.logf("%s epoch=%d root=%d at=%v lag=%v cold=%v contrib=%d expected=%.6f agg=%s",
		tag, s.Epoch, s.RootEpoch, s.At, s.Lag, s.ColdStart, s.Contributors, s.Expected, s.Result.Agg.String())
	keys := make([]string, 0, len(s.Result.Groups))
	for k := range s.Result.Groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tr.logf("%s   group %q = %s", tag, k, s.Result.Groups[k].String())
	}
}

// logCounters pins the full message accounting: logical and wire
// totals, the per-kind breakdown, and an order-independent digest of
// the per-node send/receive counts (so the dense-counter refactor must
// preserve every per-node cell, not just the totals).
func (tr *transcript) logCounters(c *cluster.Cluster) {
	ctr := c.Net.Counter()
	tr.logf("counter total=%d wire=%d", ctr.Total, ctr.Wire)
	byKind, wireByKind := ctr.ByKind(), ctr.WireByKind()
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		tr.logf("counter kind %s logical=%d wire=%d", k, byKind[k], wireByKind[k])
	}
	var sentDigest, recvDigest uint64
	byNode, recvByNode := ctr.ByNode(), ctr.RecvByNode()
	for id, n := range byNode {
		sentDigest += nodeDigest(id) * uint64(n)
	}
	for id, n := range recvByNode {
		recvDigest += nodeDigest(id) * uint64(n)
	}
	tr.logf("counter pernode senders=%d sentdigest=%d receivers=%d recvdigest=%d",
		len(byNode), sentDigest, len(recvByNode), recvDigest)
}

// nodeDigest maps an ID to a stable small mixing factor.
func nodeDigest(id ids.ID) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range id {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h | 1
}

// seedEquivNodes writes the deterministic attribute state every
// scenario starts from. Integer mem values keep sums exact; the float
// load attribute exercises float accumulation order.
func seedEquivNodes(c *cluster.Cluster) {
	slices := []string{"alpha", "beta", "gamma", "delta"}
	for i, nd := range c.Nodes {
		nd.Store().Set("mem", value.Int(int64(i*17%101)))
		nd.Store().SetFloat("load", float64(i%37)*1.375)
		nd.Store().SetString("slice", slices[i%len(slices)])
		nd.Store().SetBool("apache", i%3 == 0)
	}
}

// scenarioOneShot runs a battery of one-shot queries — scalar,
// filtered, grouped, list-valued, composite-cover — on a mid-size
// Emulab-model cluster and transcribes every result and the full
// message accounting.
func scenarioOneShot(tr *transcript) {
	c := cluster.New(emulabOptions(120, 7, core.Config{}))
	seedEquivNodes(c)
	queries := []string{
		"avg(mem)",
		"count(*) where apache = true",
		"sum(mem) where apache = true and slice = alpha",
		"avg(load) group by slice",
		"top3(mem) where slice = beta",
		"enum(mem) where slice = gamma and apache = true",
		"std(load)",
		"min(mem) where apache = true or slice = delta",
	}
	for _, q := range queries {
		res, err := c.ExecuteText(0, q)
		if err != nil {
			tr.logf("query %q error: %v", q, err)
			continue
		}
		tr.logResult(fmt.Sprintf("query %q", q), res)
	}
	tr.logf("virtual now=%v", c.Net.Now())
	tr.logCounters(c)
}

// scenarioStanding installs scalar and grouped standing queries and
// transcribes every delivered sample over a fixed horizon, then the
// unsubscribe teardown and final accounting.
func scenarioStanding(tr *transcript) {
	c := cluster.New(emulabOptions(120, 11, core.Config{SubTTL: 60 * time.Second}))
	seedEquivNodes(c)
	period := 200 * time.Millisecond

	req, err := core.ParseRequest("avg(mem) group by slice")
	if err != nil {
		tr.logf("parse error: %v", err)
		return
	}
	req.Period = period
	sid, err := c.Subscribe(0, req, func(s core.Sample) { tr.logSample("standing", s) })
	if err != nil {
		tr.logf("subscribe error: %v", err)
		return
	}
	sreq, err := core.ParseRequest("count(*) where apache = true")
	if err != nil {
		tr.logf("parse error: %v", err)
		return
	}
	sreq.Period = period
	sid2, err := c.Subscribe(0, sreq, func(s core.Sample) { tr.logSample("filtered", s) })
	if err != nil {
		tr.logf("subscribe error: %v", err)
		return
	}
	c.RunFor(14 * period)
	c.Unsubscribe(0, sid)
	c.Unsubscribe(0, sid2)
	c.RunFor(2 * period)
	tr.logf("virtual now=%v", c.Net.Now())
	tr.logCounters(c)
}

// scenarioChurn runs a standing query and interleaved one-shot polls
// through a deterministic kill/join/recover schedule with the liveness
// path (heartbeats, obituaries, repair probes) enabled, transcribing
// samples, results, and accounting.
func scenarioChurn(tr *transcript) {
	period := 200 * time.Millisecond
	c := cluster.New(cluster.Options{
		N:    96,
		Seed: 13,
		Node: core.Config{
			ChildTimeout:     2 * period,
			QueryTimeout:     10 * period,
			SubTTL:           8 * period,
			SubRenewInterval: 2 * period,
		},
		Overlay: pastry.Config{
			HeartbeatEvery: period / 2,
			HeartbeatMiss:  2,
		},
	})
	seedEquivNodes(c)

	req, err := core.ParseRequest("sum(mem)")
	if err != nil {
		tr.logf("parse error: %v", err)
		return
	}
	req.Period = period
	if _, err := c.Subscribe(0, req, func(s core.Sample) { tr.logSample("churn", s) }); err != nil {
		tr.logf("subscribe error: %v", err)
		return
	}
	c.RunFor(8 * period)

	// A fixed churn script: kills, a join, recoveries, at fixed virtual
	// times relative to the warm-up end.
	c.Kill(17)
	c.RunFor(3 * period)
	c.Kill(41)
	c.Kill(63)
	c.RunFor(4 * period)
	ni := c.AddNode()
	c.Nodes[ni].Store().Set("mem", value.Int(55))
	c.RunFor(4 * period)
	c.Recover(17)
	c.RunFor(3 * period)
	c.Recover(41)
	c.RunFor(4 * period)

	res, err := c.ExecuteText(0, "sum(mem)")
	if err != nil {
		tr.logf("oneshot error: %v", err)
	} else {
		tr.logResult("oneshot post-churn", res)
	}
	c.RunFor(2 * period)
	tr.logf("virtual now=%v live=%d", c.Net.Now(), c.LiveCount())
	tr.logCounters(c)
}

// TestSeededEquivalence replays each scenario against its committed
// pre-optimization transcript.
func TestSeededEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(*transcript)
	}{
		{"oneshot", scenarioOneShot},
		{"standing", scenarioStanding},
		{"churn", scenarioChurn},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var tr transcript
			sc.run(&tr)
			got := tr.b.String()
			path := filepath.Join("testdata", "seeded", sc.name+".txt")
			if *updateSeeded {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden transcript (generate with -update-seeded BEFORE optimizing): %v", err)
			}
			if got != string(want) {
				t.Fatalf("seeded run diverged from pre-optimization reference %s:\n%s",
					path, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff renders the first differing line with context.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s\n(%d vs %d lines total)",
				i+1, w, g, len(wl), len(gl))
		}
	}
	return "transcripts equal?"
}
