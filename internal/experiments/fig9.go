package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/moara/moara/internal/aggregate"
	"github.com/moara/moara/internal/cluster"
	"github.com/moara/moara/internal/core"
	"github.com/moara/moara/internal/predicate"
	"github.com/moara/moara/internal/workload"
)

// Fig9Options parameterize the dynamic-maintenance bandwidth experiment
// (Fig. 9): N nodes, Events total query/churn events at each ratio,
// churn bursts toggling Burst random nodes' attribute A.
type Fig9Options struct {
	N      int   // paper: 10,000
	Events int   // paper: 500
	Burst  int   // paper: 2,000
	Steps  int   // ratio steps including the endpoints (paper: 6)
	Seed   int64 //
}

// Defaults fills the paper's parameters.
func (o Fig9Options) Defaults() Fig9Options {
	if o.N == 0 {
		o.N = 10000
	}
	if o.Events == 0 {
		o.Events = 500
	}
	if o.Burst == 0 {
		o.Burst = o.N / 5
	}
	if o.Steps == 0 {
		o.Steps = 6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

var fig9Systems = []struct {
	label string
	mode  core.Mode
}{
	{"Global", core.ModeGlobal},
	{"Always-Update", core.ModeAlwaysUpdate},
	{"Moara", core.ModeAdaptive},
}

// RunFig9 reproduces Fig. 9: average Moara-layer messages per node at
// query:churn ratios from 0:Events to Events:0, for the Global,
// Always-Update and adaptive Moara systems.
func RunFig9(opt Fig9Options) *Table {
	opt = opt.Defaults()
	t := &Table{
		Title: "Fig. 9: bandwidth vs query:churn ratio",
		Note: fmt.Sprintf("N=%d, burst=%d, events=%d; avg messages per node",
			opt.N, opt.Burst, opt.Events),
		Columns: []string{"ratio(q:c)"},
	}
	for _, sys := range fig9Systems {
		t.Columns = append(t.Columns, sys.label)
	}
	for step := 0; step < opt.Steps; step++ {
		queries := opt.Events * step / (opt.Steps - 1)
		churns := opt.Events - queries
		row := []string{fmt.Sprintf("%d:%d", queries, churns)}
		for _, sys := range fig9Systems {
			perNode := runQueryChurnWorkload(workloadParams{
				n: opt.N, burst: opt.Burst, queries: queries, churns: churns,
				mode: sys.mode, seed: opt.Seed,
				kUpdate: 1, kNoUpdate: 3,
			})
			row = append(row, f1(perNode))
		}
		t.AddRow(row...)
	}
	return t
}

type workloadParams struct {
	n, burst, queries, churns int
	mode                      core.Mode
	seed                      int64
	kUpdate, kNoUpdate        int
	threshold                 int
}

// runQueryChurnWorkload runs one Fig. 9/10 cell and returns messages
// per node.
func runQueryChurnWorkload(p workloadParams) float64 {
	cfg := core.Config{
		Mode:      p.mode,
		KUpdate:   p.kUpdate,
		KNoUpdate: p.kNoUpdate,
		Threshold: p.threshold,
	}
	c := cluster.New(cluster.Options{N: p.n, Seed: p.seed, Node: cfg})
	rng := rand.New(rand.NewSource(p.seed + 7))
	vals := make([]bool, p.n)
	for i, n := range c.Nodes {
		vals[i] = rng.Intn(2) == 0
		n.Store().SetBool("A", vals[i])
	}
	req := core.Request{
		Attr: "A",
		Spec: aggregate.Spec{Kind: aggregate.KindSum},
		Pred: predicate.MustParse("A = true"),
	}
	// Warm-up: one query so trees exist and parents are known in every
	// system, then measure only the scheduled events (paper §7.1).
	if err := c.Warm(req); err != nil {
		panic(err)
	}
	schedule := workload.Schedule(rng, p.queries, p.churns)
	for _, ev := range schedule {
		switch ev {
		case workload.EventQuery:
			if _, err := c.Execute(0, req); err != nil {
				panic(err)
			}
		case workload.EventChurn:
			for _, i := range workload.ToggleBatch(rng, p.n, p.burst) {
				vals[i] = !vals[i]
				c.Nodes[i].Store().SetBool("A", vals[i])
			}
			// Let status cascades settle before the next event.
			c.RunFor(100 * time.Millisecond)
		}
	}
	c.RunFor(2 * time.Second)
	return c.MessagesPerNode()
}
