package experiments

import (
	"testing"
	"time"
)

// TestChurnShape asserts the churn study's acceptance bounds at reduced
// scale: a standing query at a 1%-of-nodes-per-epoch churn rate keeps
// mean completeness >= 0.95 against the harness's exact live count, and
// the targeted interior-kill repair restores full coverage within a few
// epochs of the purge landing — the subscription re-installs on the
// repaired tree within one epoch, plus one epoch per level of the
// orphaned subtree for the report pipeline to refill — and holds it.
func TestChurnShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	opt := ChurnOptions{N: 150, Epochs: 30, Seed: 9}.Defaults()
	compl, _, wire := churnStandingRun(opt, 0.01, 0)
	t.Logf("standing @1%%/epoch: mean=%.3f min=%.3f wire/epoch=%.1f", compl.mean(), compl.min, wire)
	if compl.mean() < 0.95 {
		t.Errorf("standing mean completeness %.3f below 0.95 at 1%%/epoch churn", compl.mean())
	}
	if compl.min < 0.75 {
		t.Errorf("standing min completeness %.3f below 0.75", compl.min)
	}

	calm, _, _ := churnStandingRun(opt, 0, 0)
	if calm.mean() != 1 || calm.min != 1 {
		t.Errorf("churn-free run should be perfectly complete, got mean=%.3f min=%.3f", calm.mean(), calm.min)
	}

	repair, detect, held := churnRepairRun(opt, false)
	t.Logf("interior repair: dip=%.0f epochs, detect=%.0f epochs, held=%v", repair, detect, held)
	if repair > 4 {
		t.Errorf("interior-kill repair took %.0f epochs of reduced coverage (> 4)", repair)
	}
	if !held {
		t.Error("coverage did not hold after interior-kill repair")
	}
	if detect > 5 {
		t.Errorf("dip started %.0f epochs after the kill (stale window should bound it by ~5)", detect)
	}
}

// TestChurnOneShotCompletes asserts the one-shot side: every per-epoch
// query under churn completes and reports its (possibly partial)
// coverage rather than wedging.
func TestChurnOneShotCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	opt := ChurnOptions{N: 120, Epochs: 20, Period: 200 * time.Millisecond, Seed: 11}.Defaults()
	compl, latMs, _ := churnOneShotRun(opt, 0.01, 0)
	t.Logf("one-shot @1%%/epoch: mean=%.3f min=%.3f lat=%.1fms over %d rounds", compl.mean(), compl.min, latMs, compl.count)
	if compl.count != opt.Epochs {
		t.Fatalf("completed %d of %d rounds", compl.count, opt.Epochs)
	}
	if compl.mean() < 0.85 {
		t.Errorf("one-shot mean completeness %.3f below 0.85", compl.mean())
	}
}
