package experiments

import (
	"strings"
	"testing"
)

// TestStandingShape asserts the standing-query headline at the issue's
// target scale (N=300, 16 Zipf slices): an installed standing query's
// per-epoch message cost is at most half of a fresh one-shot
// dissemination, and grouped standing epochs cost no more messages
// than scalar ones.
func TestStandingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep")
	}
	tab := RunStanding(StandingOptions{N: 300, Slices: 16, Epochs: 20, Seed: 1})
	byLabel := map[string]float64{}
	for _, row := range tab.Rows {
		key := row[0]
		switch {
		case strings.HasPrefix(key, "poll scalar"):
			key = "pollScalar"
		case strings.HasPrefix(key, "standing scalar"):
			key = "standScalar"
		case strings.HasPrefix(key, "poll grouped"):
			key = "pollGrouped"
		case strings.HasPrefix(key, "standing grouped"):
			key = "standGrouped"
		}
		byLabel[key] = parseF(t, row[2])
		t.Log(row)
	}
	pollScalar, standScalar := byLabel["pollScalar"], byLabel["standScalar"]
	pollGrouped, standGrouped := byLabel["pollGrouped"], byLabel["standGrouped"]
	if standScalar > 0.5*pollScalar {
		t.Errorf("standing scalar epochs cost %.1f msgs, want <= 0.5x poll (%.1f)",
			standScalar, pollScalar)
	}
	if standGrouped > 0.5*pollGrouped {
		t.Errorf("standing grouped epochs cost %.1f msgs, want <= 0.5x poll (%.1f)",
			standGrouped, pollGrouped)
	}
	// The keyed in-tree merge makes grouped epochs ride the same report
	// stream as scalar ones: no per-key message amplification.
	if standGrouped > 1.02*standScalar {
		t.Errorf("grouped standing epochs cost %.1f msgs vs scalar %.1f, want parity",
			standGrouped, standScalar)
	}
}
