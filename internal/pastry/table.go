// Package pastry implements a Pastry-style structured overlay: prefix
// routing over 128-bit identifiers, leaf sets, a join protocol with
// lazy repair, and the prefix-constrained broadcast trees Moara builds
// its aggregation on.
//
// Two bootstrap modes are supported:
//
//   - Protocol mode: nodes join via the standard Pastry join handshake
//     and maintain liveness with heartbeats (used by smaller integration
//     tests and the TCP deployment).
//   - Oracle mode: a global Oracle fills routing state directly from the
//     membership list (used for 10k+ node simulations, where the paper
//     likewise relies on the FreePastry simulator and explicitly excludes
//     DHT maintenance overhead from its measurements).
package pastry

import (
	"sort"

	"github.com/moara/moara/internal/ids"
)

// RoutingTable is the classic Pastry prefix table: Rows[r][c] holds a
// node sharing r leading digits with the owner and having digit c at
// position r. The zero ID marks an empty slot.
type RoutingTable struct {
	rows [ids.Digits][ids.Radix]ids.ID
}

// Get returns the entry at (row, col); the zero ID if empty.
func (t *RoutingTable) Get(row, col int) ids.ID { return t.rows[row][col] }

// Set stores an entry.
func (t *RoutingTable) Set(row, col int, id ids.ID) { t.rows[row][col] = id }

// Clear empties the slot at (row, col).
func (t *RoutingTable) Clear(row, col int) { t.rows[row][col] = ids.Zero }

// Row returns a copy of one table row.
func (t *RoutingTable) Row(row int) [ids.Radix]ids.ID { return t.rows[row] }

// Install records candidate relative to owner if it fills an empty slot.
// It reports whether the table changed.
func (t *RoutingTable) Install(owner, candidate ids.ID) bool {
	if candidate == owner || candidate.IsZero() {
		return false
	}
	r := ids.CommonPrefixLen(owner, candidate)
	if r >= ids.Digits {
		return false
	}
	c := candidate.Digit(r)
	if t.rows[r][c].IsZero() {
		t.rows[r][c] = candidate
		return true
	}
	return false
}

// Remove deletes every slot holding dead. It reports whether anything
// was removed.
func (t *RoutingTable) Remove(owner, dead ids.ID) bool {
	if dead.IsZero() {
		return false
	}
	r := ids.CommonPrefixLen(owner, dead)
	if r >= ids.Digits {
		return false
	}
	c := dead.Digit(r)
	if t.rows[r][c] == dead {
		t.rows[r][c] = ids.Zero
		return true
	}
	return false
}

// Entries returns every non-empty entry.
func (t *RoutingTable) Entries() []ids.ID {
	var out []ids.ID
	for r := 0; r < ids.Digits; r++ {
		for c := 0; c < ids.Radix; c++ {
			if !t.rows[r][c].IsZero() {
				out = append(out, t.rows[r][c])
			}
		}
	}
	return out
}

// LeafSet tracks the owner's closest ring neighbors: up to size entries
// clockwise (successors) and size counter-clockwise (predecessors).
type LeafSet struct {
	owner ids.ID
	size  int
	// all holds the union of both sides, kept sorted by ring position
	// relative to the owner (successors ascending, then predecessors).
	succ []ids.ID // ascending ring order starting just after owner
	pred []ids.ID // descending ring order starting just before owner
}

// NewLeafSet creates a leaf set keeping size nodes per side.
func NewLeafSet(owner ids.ID, size int) *LeafSet {
	return &LeafSet{owner: owner, size: size}
}

// ringGap returns the clockwise distance from a to b on the 2^128 ring.
func ringGap(a, b ids.ID) ids.ID {
	// b - a mod 2^128.
	if ids.Cmp(b, a) >= 0 {
		return ids.Distance(b, a)
	}
	// 2^128 - (a - b)
	d := ids.Distance(a, b)
	return negID(d)
}

func negID(a ids.ID) ids.ID {
	// two's complement: ^a + 1
	var out ids.ID
	carry := byte(1)
	for i := ids.Bytes - 1; i >= 0; i-- {
		v := ^a[i] + carry
		if carry == 1 && v != 0 {
			carry = 0
		}
		out[i] = v
	}
	return out
}

// Install inserts candidate into the leaf set if it belongs among the
// closest neighbors. It reports whether membership changed.
func (l *LeafSet) Install(candidate ids.ID) bool {
	if candidate == l.owner || candidate.IsZero() || l.Contains(candidate) {
		return false
	}
	insert := func(side []ids.ID, gap func(ids.ID) ids.ID) ([]ids.ID, bool) {
		side = append(side, candidate)
		sort.Slice(side, func(i, j int) bool {
			return ids.Cmp(gap(side[i]), gap(side[j])) < 0
		})
		if len(side) > l.size {
			if side[l.size] == candidate {
				return side[:l.size], false
			}
			side = side[:l.size]
		}
		return side, true
	}
	var inSucc, inPred bool
	l.succ, inSucc = insert(l.succ, func(x ids.ID) ids.ID { return ringGap(l.owner, x) })
	l.pred, inPred = insert(l.pred, func(x ids.ID) ids.ID { return ringGap(x, l.owner) })
	if !inSucc {
		l.succ = remove(l.succ, candidate)
	}
	if !inPred {
		l.pred = remove(l.pred, candidate)
	}
	return inSucc || inPred
}

// Remove deletes a node from both sides; reports whether it was present.
func (l *LeafSet) Remove(dead ids.ID) bool {
	n := len(l.succ) + len(l.pred)
	l.succ = remove(l.succ, dead)
	l.pred = remove(l.pred, dead)
	return len(l.succ)+len(l.pred) != n
}

func remove(s []ids.ID, id ids.ID) []ids.ID {
	out := s[:0]
	for _, x := range s {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// Contains reports whether id is in the leaf set.
func (l *LeafSet) Contains(id ids.ID) bool {
	for _, x := range l.succ {
		if x == id {
			return true
		}
	}
	for _, x := range l.pred {
		if x == id {
			return true
		}
	}
	return false
}

// Members returns all leaf-set members (both sides, deduplicated).
func (l *LeafSet) Members() []ids.ID {
	seen := make(map[ids.ID]bool, len(l.succ)+len(l.pred))
	out := make([]ids.ID, 0, len(l.succ)+len(l.pred))
	for _, x := range l.succ {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range l.pred {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Closest returns the leaf-set member (or the owner) closest to key
// under the ring metric.
func (l *LeafSet) Closest(key ids.ID) ids.ID {
	best := l.owner
	for _, x := range l.Members() {
		if ids.CloserToKey(key, x, best) {
			best = x
		}
	}
	return best
}

// Covers reports whether key falls within the span of the leaf set (or
// the set is small enough that the owner sees the whole ring).
func (l *LeafSet) Covers(key ids.ID) bool {
	if len(l.succ) < l.size || len(l.pred) < l.size {
		// Sparse ring: the leaf set spans everything we know.
		return true
	}
	gapKey := ringGap(l.owner, key)
	lastSucc := ringGap(l.owner, l.succ[len(l.succ)-1])
	if ids.Cmp(gapKey, lastSucc) <= 0 {
		return true
	}
	gapKeyP := ringGap(key, l.owner)
	lastPred := ringGap(l.pred[len(l.pred)-1], l.owner)
	return ids.Cmp(gapKeyP, lastPred) <= 0
}
