// Package pastry implements a Pastry-style structured overlay: prefix
// routing over 128-bit identifiers, leaf sets, a join protocol with
// lazy repair, and the prefix-constrained broadcast trees Moara builds
// its aggregation on.
//
// Two bootstrap modes are supported:
//
//   - Protocol mode: nodes join via the standard Pastry join handshake
//     and maintain liveness with heartbeats (used by smaller integration
//     tests and the TCP deployment).
//   - Oracle mode: a global Oracle fills routing state directly from the
//     membership list (used for 10k+ node simulations, where the paper
//     likewise relies on the FreePastry simulator and explicitly excludes
//     DHT maintenance overhead from its measurements).
package pastry

import (
	"sort"

	"github.com/moara/moara/internal/ids"
)

// RoutingTable is the classic Pastry prefix table: Rows[r][c] holds a
// node sharing r leading digits with the owner and having digit c at
// position r. The zero ID marks an empty slot.
type RoutingTable struct {
	rows [ids.Digits][ids.Radix]ids.ID
	// entries caches the non-empty slots (valid when entriesOK); the
	// liveness path scans the table every heartbeat round, far more
	// often than it changes. version counts mutations for downstream
	// caches.
	entries   []ids.ID
	entriesOK bool
	version   int
}

// Version counts table mutations since creation.
func (t *RoutingTable) Version() int { return t.version }

// Get returns the entry at (row, col); the zero ID if empty.
func (t *RoutingTable) Get(row, col int) ids.ID { return t.rows[row][col] }

// Set stores an entry.
func (t *RoutingTable) Set(row, col int, id ids.ID) {
	t.rows[row][col] = id
	t.entriesOK = false
	t.version++
}

// Clear empties the slot at (row, col).
func (t *RoutingTable) Clear(row, col int) {
	t.rows[row][col] = ids.Zero
	t.entriesOK = false
	t.version++
}

// Row returns a copy of one table row.
func (t *RoutingTable) Row(row int) [ids.Radix]ids.ID { return t.rows[row] }

// Install records candidate relative to owner if it fills an empty slot.
// It reports whether the table changed.
func (t *RoutingTable) Install(owner, candidate ids.ID) bool {
	if candidate == owner || candidate.IsZero() {
		return false
	}
	r := ids.CommonPrefixLen(owner, candidate)
	if r >= ids.Digits {
		return false
	}
	c := candidate.Digit(r)
	if t.rows[r][c].IsZero() {
		t.rows[r][c] = candidate
		t.entriesOK = false
		t.version++
		return true
	}
	return false
}

// Remove deletes every slot holding dead. It reports whether anything
// was removed.
func (t *RoutingTable) Remove(owner, dead ids.ID) bool {
	if dead.IsZero() {
		return false
	}
	r := ids.CommonPrefixLen(owner, dead)
	if r >= ids.Digits {
		return false
	}
	c := dead.Digit(r)
	if t.rows[r][c] == dead {
		t.rows[r][c] = ids.Zero
		t.entriesOK = false
		t.version++
		return true
	}
	return false
}

// Entries returns every non-empty entry in row-major order. The result
// is cached between table changes and shared: callers must treat it as
// read-only. Rebuilds allocate a fresh backing array so a slice
// captured before a mutation (e.g. the heartbeat sweep iterating while
// it purges) stays intact.
func (t *RoutingTable) Entries() []ids.ID {
	if t.entriesOK {
		return t.entries
	}
	out := make([]ids.ID, 0, cap(t.entries))
	for r := 0; r < ids.Digits; r++ {
		for c := 0; c < ids.Radix; c++ {
			if !t.rows[r][c].IsZero() {
				out = append(out, t.rows[r][c])
			}
		}
	}
	t.entries = out
	t.entriesOK = true
	return out
}

// LeafSet tracks the owner's closest ring neighbors: up to size entries
// clockwise (successors) and size counter-clockwise (predecessors).
//
// Each side is kept sorted by ring gap from the owner, with the gaps
// cached in a parallel slice: membership tests and inserts are binary
// searches over precomputed gaps instead of re-deriving the 128-bit
// ring arithmetic per comparison — the pre-optimization sort-on-every-
// install was the single hottest path of the churn experiments (every
// gossiped membership sample funnels through Install).
type LeafSet struct {
	owner ids.ID
	size  int
	succ  []ids.ID // ascending ring order starting just after owner
	pred  []ids.ID // descending ring order starting just before owner
	// succGap[i] == ringGap(owner, succ[i]); predGap[i] ==
	// ringGap(pred[i], owner). Maintained by Install/Remove.
	succGap []ids.Gap
	predGap []ids.Gap
	// version counts membership changes; derived caches (system-size
	// estimates) key on it.
	version int
}

// NewLeafSet creates a leaf set keeping size nodes per side.
func NewLeafSet(owner ids.ID, size int) *LeafSet {
	return &LeafSet{owner: owner, size: size}
}

// Version counts membership changes since creation.
func (l *LeafSet) Version() int { return l.version }

// ringGap returns the clockwise distance from a to b on the 2^128 ring.
func ringGap(a, b ids.ID) ids.Gap { return ids.GapCWNative(a, b) }

// Install inserts candidate into the leaf set if it belongs among the
// closest neighbors. It reports whether membership changed.
func (l *LeafSet) Install(candidate ids.ID) bool {
	if candidate == l.owner || candidate.IsZero() || l.Contains(candidate) {
		return false
	}
	inSucc := insertSide(&l.succ, &l.succGap, l.size, candidate, ringGap(l.owner, candidate))
	inPred := insertSide(&l.pred, &l.predGap, l.size, candidate, ringGap(candidate, l.owner))
	if inSucc || inPred {
		l.version++
		return true
	}
	return false
}

// insertSide places candidate into one gap-sorted side, evicting the
// farthest member when the side is full. Ring gaps are unique per
// member, so "not strictly closer than the farthest of a full side" is
// an O(1) rejection and everything else is a binary-search insert.
func insertSide(side *[]ids.ID, gaps *[]ids.Gap, size int, candidate ids.ID, gap ids.Gap) bool {
	if size <= 0 {
		return false // a zero-capacity side keeps nobody
	}
	s, g := *side, *gaps
	if len(s) >= size && !gap.Less(g[len(g)-1]) {
		return false
	}
	i := sort.Search(len(g), func(i int) bool { return gap.Less(g[i]) })
	s = append(s, ids.ID{})
	g = append(g, ids.Gap{})
	copy(s[i+1:], s[i:])
	copy(g[i+1:], g[i:])
	s[i], g[i] = candidate, gap
	if len(s) > size {
		s, g = s[:size], g[:size]
	}
	*side, *gaps = s, g
	return true
}

// Remove deletes a node from both sides; reports whether it was present.
func (l *LeafSet) Remove(dead ids.ID) bool {
	a := removeSide(&l.succ, &l.succGap, dead)
	b := removeSide(&l.pred, &l.predGap, dead)
	if a || b {
		l.version++
		return true
	}
	return false
}

func removeSide(side *[]ids.ID, gaps *[]ids.Gap, id ids.ID) bool {
	s, g := *side, *gaps
	for i, x := range s {
		if x == id {
			copy(s[i:], s[i+1:])
			copy(g[i:], g[i+1:])
			*side, *gaps = s[:len(s)-1], g[:len(g)-1]
			return true
		}
	}
	return false
}

// Contains reports whether id is in the leaf set.
func (l *LeafSet) Contains(id ids.ID) bool {
	for _, x := range l.succ {
		if x == id {
			return true
		}
	}
	for _, x := range l.pred {
		if x == id {
			return true
		}
	}
	return false
}

// Members returns all leaf-set members (both sides, deduplicated).
// Sides are duplicate-free by construction, so deduplication is a
// linear scan of the (small, bounded) successor side per predecessor.
func (l *LeafSet) Members() []ids.ID {
	out := make([]ids.ID, 0, len(l.succ)+len(l.pred))
	out = append(out, l.succ...)
	for _, x := range l.pred {
		if !idsContain(l.succ, x) {
			out = append(out, x)
		}
	}
	return out
}

func idsContain(s []ids.ID, id ids.ID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// Closest returns the leaf-set member (or the owner) closest to key
// under the ring metric. The ring minimum is unique (CloserToKey breaks
// ties), so scanning both sides directly — duplicates included — finds
// the same member Members() would, without the allocation.
func (l *LeafSet) Closest(key ids.ID) ids.ID {
	best := l.owner
	for _, x := range l.succ {
		if ids.CloserToKey(key, x, best) {
			best = x
		}
	}
	for _, x := range l.pred {
		if ids.CloserToKey(key, x, best) {
			best = x
		}
	}
	return best
}

// Covers reports whether key falls within the span of the leaf set (or
// the set is small enough that the owner sees the whole ring).
func (l *LeafSet) Covers(key ids.ID) bool {
	if len(l.succ) < l.size || len(l.pred) < l.size {
		// Sparse ring: the leaf set spans everything we know.
		return true
	}
	gapKey := ringGap(l.owner, key)
	if !l.succGap[len(l.succGap)-1].Less(gapKey) {
		return true
	}
	gapKeyP := ringGap(key, l.owner)
	return !l.predGap[len(l.predGap)-1].Less(gapKeyP)
}
