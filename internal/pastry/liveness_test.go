package pastry

import (
	"fmt"
	"testing"
	"time"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/simnet"
)

// protoNode couples an overlay node with its simulated environment.
type protoNode struct {
	n *Node
}

func (p *protoNode) Handle(from ids.ID, m any) { p.n.Handle(from, m) }

// buildProtocolCluster joins n nodes through the real handshake with
// heartbeats enabled.
func buildProtocolCluster(t *testing.T, net *simnet.Network, n int, hb time.Duration) ([]*Node, []ids.ID) {
	t.Helper()
	nodes := make([]*Node, n)
	members := make([]ids.ID, n)
	for i := 0; i < n; i++ {
		members[i] = ids.FromKey(fmt.Sprintf("proto-%d", i))
		env := net.AddNode(members[i])
		nodes[i] = New(env, Config{HeartbeatEvery: hb})
		env.BindHandler(&protoNode{nodes[i]})
	}
	nodes[0].BootstrapAlone()
	for i := 1; i < n; i++ {
		nodes[i].Join(members[0])
		net.RunFor(100 * time.Millisecond)
	}
	net.RunFor(2 * time.Second)
	return nodes, members
}

func TestProtocolJoinAllJoined(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 3, Latency: simnet.Fixed(time.Millisecond)})
	nodes, _ := buildProtocolCluster(t, net, 30, 0)
	for i, n := range nodes {
		if !n.Joined() {
			t.Fatalf("node %d not joined", i)
		}
		if len(n.Leaf().Members()) == 0 {
			t.Fatalf("node %d has empty leaf set", i)
		}
	}
}

func TestProtocolRoutingConverges(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 5, Latency: simnet.Fixed(time.Millisecond)})
	nodes, members := buildProtocolCluster(t, net, 40, 0)
	byID := make(map[ids.ID]*Node, len(nodes))
	for i, n := range nodes {
		byID[members[i]] = n
	}
	// Route from every node to several keys; all must converge to the
	// same owner.
	for _, keyName := range []string{"k1", "k2", "k3"} {
		key := ids.FromKey(keyName)
		owners := make(map[ids.ID]int)
		for _, start := range members {
			cur := start
			for hops := 0; ; hops++ {
				if hops > ids.Digits+16 {
					t.Fatalf("routing loop from %s", start.Short())
				}
				next, self := byID[cur].NextHop(key)
				if self {
					break
				}
				cur = next
			}
			owners[cur]++
		}
		if len(owners) != 1 {
			t.Fatalf("key %s: routing converged to %d distinct owners: %v", keyName, len(owners), owners)
		}
	}
}

// TestHeartbeatDetectsFailure enables liveness probing and crashes a
// node; its leaf-set neighbors must detect and purge it.
func TestHeartbeatDetectsFailure(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 7, Latency: simnet.Fixed(time.Millisecond)})
	nodes, members := buildProtocolCluster(t, net, 16, 500*time.Millisecond)

	victimIdx := 5
	victim := members[victimIdx]
	// Find a neighbor that currently has the victim in its leaf set.
	var watcher *Node
	for i, n := range nodes {
		if i != victimIdx && n.Leaf().Contains(victim) {
			watcher = n
			break
		}
	}
	if watcher == nil {
		t.Skip("no neighbor holds the victim")
	}
	deadSeen := false
	watcher.OnNeighborDead = func(dead ids.ID) {
		if dead == victim {
			deadSeen = true
		}
	}
	net.SetDown(victim, true)
	// Heartbeats every 500ms, 3 misses allowed: detection within ~2.5s.
	net.RunFor(5 * time.Second)
	if !deadSeen {
		t.Fatal("failure not detected by heartbeats")
	}
	if watcher.Leaf().Contains(victim) {
		t.Fatal("dead node still in watcher's leaf set")
	}
}

// TestObituaryPurgesClusterWide enables the liveness path and crashes a
// node; the gossiped obituary must purge it from EVERY survivor's
// routing state — including routing tables of nodes far outside the
// victim's leaf set, which heartbeats alone never examine.
func TestObituaryPurgesClusterWide(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 13, Latency: simnet.Fixed(time.Millisecond)})
	nodes, members := buildProtocolCluster(t, net, 32, 250*time.Millisecond)
	victimIdx := 9
	victim := members[victimIdx]
	holders := 0
	for i, n := range nodes {
		if i != victimIdx && (n.Leaf().Contains(victim) || tableContains(n, victim)) {
			holders++
		}
	}
	if holders == 0 {
		t.Fatal("nobody holds the victim")
	}
	net.SetDown(victim, true)
	net.RunFor(5 * time.Second)
	for i, n := range nodes {
		if i == victimIdx {
			continue
		}
		if n.Leaf().Contains(victim) {
			t.Errorf("node %d still has the victim in its leaf set", i)
		}
		if tableContains(n, victim) {
			t.Errorf("node %d still has the victim in its routing table", i)
		}
	}
}

func tableContains(n *Node, id ids.ID) bool {
	for _, e := range n.Table().Entries() {
		if e == id {
			return true
		}
	}
	return false
}

// TestRejoinAfterDeathCertificate crashes a node, lets the cluster
// certify it dead, then revives it via Rejoin: the first-hand
// re-announcements must clear the certificates so the node reappears in
// routing state well before the certificate TTL.
func TestRejoinAfterDeathCertificate(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 17, Latency: simnet.Fixed(time.Millisecond)})
	nodes, members := buildProtocolCluster(t, net, 24, 250*time.Millisecond)
	victimIdx := 5
	victim := members[victimIdx]
	net.SetDown(victim, true)
	net.RunFor(5 * time.Second) // detection + obituary flood
	net.SetDown(victim, false)
	nodes[victimIdx].Rejoin(members[0])
	net.RunFor(5 * time.Second)
	if !nodes[victimIdx].Joined() {
		t.Fatal("victim did not rejoin")
	}
	known := 0
	for i, n := range nodes {
		if i == victimIdx {
			continue
		}
		if n.Leaf().Contains(victim) || tableContains(n, victim) {
			known++
		}
	}
	if known == 0 {
		t.Fatal("rejoined node is invisible: death certificates were never cleared")
	}
	t.Logf("rejoined node known by %d/%d survivors", known, len(nodes)-1)
}

// TestJoinRetriesThroughLostHandshake drops the first join exchange (the
// bootstrap is crashed at join time) and verifies the retry loop
// eventually completes the handshake via the recovered bootstrap.
func TestJoinRetriesThroughLostHandshake(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 19, Latency: simnet.Fixed(time.Millisecond)})
	nodes, members := buildProtocolCluster(t, net, 12, 0)
	_ = nodes
	joiner := ids.FromKey("late-joiner")
	env := net.AddNode(joiner)
	jn := New(env, Config{})
	env.BindHandler(&protoNode{jn})
	// Crash the bootstrap just before the join, so the first
	// JoinRequest lands in a corpse.
	net.SetDown(members[0], true)
	jn.Join(members[0])
	net.RunFor(time.Second)
	if jn.Joined() {
		t.Fatal("join should not have completed against a dead bootstrap")
	}
	net.SetDown(members[0], false)
	net.RunFor(10 * time.Second) // retry cadence is 2s
	if !jn.Joined() {
		t.Fatal("join retry never completed after the bootstrap recovered")
	}
}

// TestBroadcastAfterProtocolJoin: the broadcast coverage property must
// hold on protocol-built (not oracle-built) routing state too.
func TestBroadcastAfterProtocolJoin(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 11, Latency: simnet.Fixed(time.Millisecond)})
	nodes, members := buildProtocolCluster(t, net, 48, 0)
	byID := make(map[ids.ID]*Node, len(nodes))
	for i, n := range nodes {
		byID[members[i]] = n
	}
	key := ids.FromKey("bcast")
	// Owner by brute force.
	root := members[0]
	for _, m := range members[1:] {
		if ids.CloserToKey(key, m, root) {
			root = m
		}
	}
	reached := map[ids.ID]int{root: 1}
	var walk func(id ids.ID, level int)
	walk = func(id ids.ID, level int) {
		for _, bt := range byID[id].BroadcastTargets(level) {
			reached[bt.ID]++
			if reached[bt.ID] == 1 {
				walk(bt.ID, bt.Level)
			}
		}
	}
	walk(root, 0)
	// Protocol-built tables can have transient holes; require at least
	// 95% coverage after a settled join sequence.
	if len(reached) < len(members)*95/100 {
		t.Fatalf("broadcast reached %d of %d nodes", len(reached), len(members))
	}
}
