package pastry

import (
	"time"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/simnet"
)

// Config tunes an overlay node.
type Config struct {
	// LeafSetSize is the number of leaf-set entries kept per side
	// (default 8).
	LeafSetSize int
	// HeartbeatEvery enables leaf-set liveness probing when > 0.
	// Large-scale simulations leave it disabled, mirroring the paper's
	// exclusion of DHT maintenance traffic.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is the number of consecutive missed heartbeats
	// after which a neighbor is declared dead (default 3).
	HeartbeatMiss int
}

func (c Config) withDefaults() Config {
	if c.LeafSetSize == 0 {
		c.LeafSetSize = 8
	}
	if c.HeartbeatMiss == 0 {
		c.HeartbeatMiss = 3
	}
	return c
}

// DeliverFunc receives payloads routed to this node as the key's owner.
type DeliverFunc func(key ids.ID, payload any, origin ids.ID)

// Node is one overlay participant. It is not safe for concurrent use;
// drive it from a single goroutine (the simulator loop or a per-node
// serialization layer).
type Node struct {
	env  simnet.Env
	cfg  Config
	self ids.ID

	rt   RoutingTable
	leaf *LeafSet

	// Deliver is invoked when a routed payload reaches its key's owner.
	Deliver DeliverFunc
	// OnNeighborDead is invoked when a neighbor is declared failed.
	OnNeighborDead func(dead ids.ID)
	// OnNodeRemoved is invoked whenever a node is purged from routing
	// state — by local heartbeat detection or by a gossiped obituary.
	// The Moara layer hooks it to drop per-group child state and
	// standing-subscription reports for the dead node, so a stale
	// partial aggregate can never be merged past the purge.
	OnNodeRemoved func(dead ids.ID)

	hbMisses    map[ids.ID]int
	hbRound     int
	stopHB      func()
	stopJoin    func()
	joined      bool
	joinPending []pendingRoute
	gen         int
	// estCache memoizes EstimateSize against the leaf-set version: the
	// adaptation layer consults the estimate per unreported child per
	// recompute, far more often than the leaf set changes.
	estCache   float64
	estVersion int
	// ksCache memoizes knownSample against the (routing table, leaf
	// set) versions: the anti-entropy tick and the obituary flood
	// enumerate known peers far more often than routing state changes.
	// Rebuilds allocate fresh so in-flight gossip holding the previous
	// sample stays intact.
	ksCache []ids.ID
	ksRT    int
	ksLeaf  int
	// dead holds death certificates: recently failed nodes that must
	// not be re-learned from stale gossip.
	dead map[ids.ID]time.Duration
	// announced tracks which peers this node has introduced itself to,
	// so discovery gossip converges instead of looping.
	announced map[ids.ID]bool
}

type pendingRoute struct {
	key     ids.ID
	payload any
	origin  ids.ID
}

// New creates an overlay node bound to env.
func New(env simnet.Env, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		env:        env,
		cfg:        cfg,
		self:       env.Self(),
		leaf:       NewLeafSet(env.Self(), cfg.LeafSetSize),
		estVersion: -1,
		hbMisses:   make(map[ids.ID]int),
		dead:       make(map[ids.ID]time.Duration),
		announced:  make(map[ids.ID]bool),
	}
	return n
}

// Self returns the node's identifier.
func (n *Node) Self() ids.ID { return n.self }

// Leaf exposes the leaf set (read-only use).
func (n *Node) Leaf() *LeafSet { return n.leaf }

// Table exposes the routing table (read-only use).
func (n *Node) Table() *RoutingTable { return &n.rt }

// Joined reports whether the node has completed bootstrap.
func (n *Node) Joined() bool { return n.joined }

// BootstrapAlone marks the node as the first member of a new overlay.
func (n *Node) BootstrapAlone() {
	n.joined = true
	n.startHeartbeats()
}

// Close stops background timers.
func (n *Node) Close() {
	if n.stopHB != nil {
		n.stopHB()
		n.stopHB = nil
	}
	if n.stopJoin != nil {
		n.stopJoin()
		n.stopJoin = nil
	}
}

// ---------------------------------------------------------------------
// Messages

// RouteMsg carries an application payload toward the owner of Key.
type RouteMsg struct {
	Key     ids.ID
	Origin  ids.ID
	Payload any
	Hops    int
	// Maint marks overlay-maintenance payloads (slot repair), keeping
	// their hops out of the query-layer route accounting.
	Maint bool
}

// MsgKind labels the message for accounting.
func (m RouteMsg) MsgKind() string {
	if m.Maint {
		return "overlay.maint"
	}
	return "overlay.route"
}

// JoinRequest is routed toward the joiner's ID, accumulating routing
// rows from every hop.
type JoinRequest struct {
	Joiner ids.ID
	Rows   []ids.ID // flattened candidate entries collected en route
	Hops   int
}

// MsgKind labels the message for accounting.
func (JoinRequest) MsgKind() string { return "overlay.join" }

// JoinReply returns accumulated state to the joiner.
type JoinReply struct {
	Rows []ids.ID
	Leaf []ids.ID
}

// MsgKind labels the message for accounting.
func (JoinReply) MsgKind() string { return "overlay.join" }

// Announce tells existing nodes about a newly joined node.
type Announce struct {
	ID ids.ID
}

// MsgKind labels the message for accounting.
func (Announce) MsgKind() string { return "overlay.announce" }

// AnnounceAck shares the receiver's neighbors back with the announcer.
type AnnounceAck struct {
	Known []ids.ID
}

// MsgKind labels the message for accounting.
func (AnnounceAck) MsgKind() string { return "overlay.announce" }

// Heartbeat probes a leaf-set neighbor.
type Heartbeat struct{ Ack bool }

// MsgKind labels the message for accounting.
func (Heartbeat) MsgKind() string { return "overlay.hb" }

// Obituary gossips a death certificate: the node that detects a failure
// (heartbeat misses on a leaf-set neighbor) floods it to its known
// peers; each receiver purges the dead node from routing state and
// forwards the obituary exactly once, so the purge that §7 delegates to
// FreePastry propagates cluster-wide through the liveness path instead
// of requiring global knowledge.
type Obituary struct {
	Dead ids.ID
}

// MsgKind labels the message for accounting.
func (Obituary) MsgKind() string { return "overlay.obit" }

// RepairProbe seeks a replacement for a purged routing-table slot: it is
// routed toward the dead node's identifier, so it lands on the ring
// region the corpse used to own — exactly the neighborhood (and, for
// broadcast trees, the orphaned subtree) the prober lost reachability
// to. The region's new owner introduces itself and its neighbors back
// to the prober, refilling the slot without waiting for background
// gossip.
type RepairProbe struct {
	Origin ids.ID
}

// MsgKind labels the message for accounting (overlay maintenance, like
// the obituary flood — not query-layer traffic).
func (RepairProbe) MsgKind() string { return "overlay.repair" }

// ---------------------------------------------------------------------
// Routing

// NextHop computes the next overlay hop toward key. self=true means this
// node is the key's owner (root).
func (n *Node) NextHop(key ids.ID) (next ids.ID, self bool) {
	if key == n.self {
		return n.self, true
	}
	// Leaf-set range: deliver to the numerically closest member.
	if n.leaf.Covers(key) {
		c := n.leaf.Closest(key)
		if c == n.self {
			return n.self, true
		}
		return c, false
	}
	l := ids.CommonPrefixLen(n.self, key)
	if e := n.rt.Get(l, key.Digit(l)); !e.IsZero() {
		return e, false
	}
	// Rare case: scan all known nodes for one strictly closer to key
	// with at least the same prefix length.
	best := n.self
	consider := func(x ids.ID) {
		if ids.CommonPrefixLen(x, key) >= l && ids.CloserToKey(key, x, best) {
			best = x
		}
	}
	for _, x := range n.rt.Entries() {
		consider(x)
	}
	for _, x := range n.leaf.Members() {
		consider(x)
	}
	if best == n.self {
		return n.self, true
	}
	return best, false
}

// Route sends payload toward the owner of key, delivering locally when
// this node is the owner.
func (n *Node) Route(key ids.ID, payload any) {
	n.routeMsg(RouteMsg{Key: key, Origin: n.self, Payload: payload})
}

func (n *Node) routeMsg(m RouteMsg) {
	next, isSelf := n.NextHop(m.Key)
	if isSelf {
		if rp, ok := m.Payload.(RepairProbe); ok {
			n.handleRepairProbe(rp)
			return
		}
		if n.Deliver != nil {
			n.Deliver(m.Key, m.Payload, m.Origin)
		}
		return
	}
	m.Hops++
	if m.Hops > ids.Digits+2*n.cfg.LeafSetSize {
		// Routing loop under pathological state; drop.
		return
	}
	n.env.Send(next, m)
}

// BroadcastTarget is one child edge in the prefix-constrained broadcast
// tree: the recipient and the level it becomes responsible for.
type BroadcastTarget struct {
	ID    ids.ID
	Level int
}

// BroadcastTargets enumerates this node's children when it participates
// in a broadcast at the given level: every routing-table entry in rows
// >= level. With complete tables the targets partition the node's
// region of the identifier space, so a broadcast from a tree root
// reaches every live node exactly once.
//
// Under churn, tables are only eventually complete, and a node can be
// known solely by its ring neighbors while the routing slot that should
// delegate its sub-region sits empty — silently excluding it from every
// dissemination. The leaf-set backstop closes exactly that hole: a leaf
// member inside this node's region whose slot is empty is covered
// directly. With complete tables the slot is never empty (the member
// itself is a candidate), so the backstop adds no edges and the exact
// partition — and every message-cost property built on it — is
// unchanged.
func (n *Node) BroadcastTargets(level int) []BroadcastTarget {
	var out []BroadcastTarget
	for r := level; r < ids.Digits; r++ {
		row := n.rt.Row(r)
		for c := 0; c < ids.Radix; c++ {
			if row[c].IsZero() || row[c] == n.self {
				continue
			}
			out = append(out, BroadcastTarget{ID: row[c], Level: r + 1})
		}
	}
	var backstopped map[[2]int]bool
	for _, m := range n.leaf.Members() {
		l := ids.CommonPrefixLen(n.self, m)
		if l < level || !n.rt.Get(l, m.Digit(l)).IsZero() {
			continue
		}
		// One backstop target per empty slot: a second leaf member of
		// the same region lies inside the first one's dissemination
		// region and would be double-covered.
		slot := [2]int{l, m.Digit(l)}
		if backstopped[slot] {
			continue
		}
		if backstopped == nil {
			backstopped = make(map[[2]int]bool)
		}
		backstopped[slot] = true
		out = append(out, BroadcastTarget{ID: m, Level: l + 1})
	}
	return out
}

// deadTTL is how long a death certificate blocks re-installation.
const deadTTL = time.Minute

// Install adds a known-live node to routing state. Recently failed
// nodes are rejected so stale gossip cannot resurrect them.
func (n *Node) Install(id ids.ID) {
	if at, isDead := n.dead[id]; isDead {
		if n.env.Now()-at < deadTTL {
			return
		}
		delete(n.dead, id)
	}
	a := n.rt.Install(n.self, id)
	b := n.leaf.Install(id)
	if a || b {
		n.gen++
	}
}

// RemoveNode purges a failed node from routing state and notifies the
// application layer. The notification fires even when the node held no
// routing entry: the application may track peers (tree children, SQP
// jump targets) the overlay does not.
func (n *Node) RemoveNode(dead ids.ID) {
	a := n.rt.Remove(n.self, dead)
	b := n.leaf.Remove(dead)
	delete(n.hbMisses, dead)
	delete(n.announced, dead)
	if a || b {
		n.gen++
	}
	if a && n.joined {
		// The purged slot covered a region of the identifier space this
		// node can no longer reach — for a broadcast tree, an orphaned
		// subtree. Probe the dead node's ring region for a live
		// replacement instead of waiting for background gossip.
		n.routeMsg(RouteMsg{Key: dead, Origin: n.self, Payload: RepairProbe{Origin: n.self}, Maint: true})
	}
	if n.OnNodeRemoved != nil {
		n.OnNodeRemoved(dead)
	}
}

// handleRepairProbe answers a slot-repair probe as the new owner of the
// dead node's region: introduce ourselves first-hand (refilling the
// prober's slot when our prefix matches) and share our neighborhood —
// the corpse's old leaf set, i.e. its orphans — so the prober can pick
// whichever candidate fits the slot.
func (n *Node) handleRepairProbe(rp RepairProbe) {
	if rp.Origin == n.self {
		return
	}
	n.env.Send(rp.Origin, Announce{ID: n.self})
	n.env.Send(rp.Origin, AnnounceAck{Known: n.knownSample()})
}

// Gen is a generation counter bumped on every routing-state change;
// callers use it to invalidate caches derived from the table.
func (n *Node) Gen() int { return n.gen }

// EstimateSize estimates the total overlay population from leaf-set
// density: the leaf set spans a known fraction of the ring, so the ring
// holds roughly members/spanFraction nodes. Moara uses the estimate to
// cost never-queried (cold) trees.
func (n *Node) EstimateSize() float64 {
	if v := n.leaf.Version(); n.estVersion == v {
		return n.estCache
	}
	n.estVersion = n.leaf.Version()
	n.estCache = n.estimateSize()
	return n.estCache
}

func (n *Node) estimateSize() float64 {
	members := n.leaf.Members()
	if len(members) == 0 {
		return 1
	}
	// The widest reach on each side bounds the arc the leaf set covers;
	// members/arc extrapolates to the full ring.
	var maxSucc, maxPred float64
	for _, m := range members {
		s := ringGap(n.self, m).Fraction()
		p := ringGap(m, n.self).Fraction()
		if s < p {
			if s > maxSucc {
				maxSucc = s
			}
		} else {
			if p > maxPred {
				maxPred = p
			}
		}
	}
	arc := maxSucc + maxPred
	if arc <= 0 {
		return float64(len(members) + 1)
	}
	return float64(len(members)+1) / arc
}

// ---------------------------------------------------------------------
// Join protocol

// joinRetryEvery is how often an unanswered join handshake is retried.
const joinRetryEvery = 2 * time.Second

// Join bootstraps via an existing overlay member, retrying until the
// handshake completes: a JoinRequest routed through a not-yet-purged
// corpse is dropped silently, and without the retry the node would sit
// outside the overlay forever.
func (n *Node) Join(bootstrap ids.ID) {
	n.env.Send(bootstrap, JoinRequest{Joiner: n.self})
	n.armJoinRetry(bootstrap)
}

func (n *Node) armJoinRetry(bootstrap ids.ID) {
	if n.stopJoin != nil {
		n.stopJoin()
	}
	n.stopJoin = n.env.After(joinRetryEvery, func() {
		n.stopJoin = nil
		if n.joined {
			return
		}
		// Retry via any peer learned from a partial handshake, falling
		// back to the original bootstrap.
		target := bootstrap
		if ks := n.knownSample(); len(ks) > 0 {
			target = ks[n.env.Rand().Intn(len(ks))]
		}
		n.env.Send(target, JoinRequest{Joiner: n.self})
		n.armJoinRetry(bootstrap)
	})
}

// Rejoin re-enters the overlay after a crash-recovery: liveness state is
// reset (the heartbeat loop died with the crash), the join handshake
// re-runs via bootstrap, and the announced set is cleared so the
// epidemic discovery re-introduces this node first-hand to every peer it
// encounters — which is what clears the death certificates the cluster
// installed when this node was declared failed.
func (n *Node) Rejoin(bootstrap ids.ID) {
	if n.stopHB != nil {
		n.stopHB()
		n.stopHB = nil
	}
	clear(n.hbMisses)
	n.announced = make(map[ids.ID]bool)
	n.joined = false
	n.Join(bootstrap)
}

// noteAlive clears a death certificate on first-hand evidence of life: a
// message received directly from the certified node. Second-hand gossip
// (Announce/AnnounceAck listings) cannot clear certificates — only the
// node itself can refute its own obituary.
func (n *Node) noteAlive(from ids.ID) {
	if len(n.dead) > 0 {
		delete(n.dead, from)
	}
}

// Handle processes overlay messages. It reports whether the message was
// an overlay message (false means the caller should interpret it).
func (n *Node) Handle(from ids.ID, m any) bool {
	if from != n.self {
		n.noteAlive(from)
	}
	switch msg := m.(type) {
	case RouteMsg:
		n.routeMsg(msg)
	case JoinRequest:
		n.handleJoinRequest(msg)
	case JoinReply:
		n.handleJoinReply(msg)
	case Announce:
		n.Install(msg.ID)
		n.env.Send(msg.ID, AnnounceAck{Known: n.knownSample()})
	case AnnounceAck:
		for _, id := range msg.Known {
			if id == n.self {
				continue
			}
			if at, isDead := n.dead[id]; isDead && n.env.Now()-at < deadTTL {
				// Gossip says a certified-dead node is alive. Second-hand
				// word cannot clear the certificate, but a probe gives
				// the node the chance to refute it first-hand: a live
				// peer acks, noteAlive clears the certificate, and the
				// next gossip mention installs it. Without this, a
				// recovered node stays invisible to every certificate
				// holder its rejoin announcements missed until the
				// certificate expires.
				n.env.Send(id, Heartbeat{})
				continue
			}
			n.Install(id)
			// Epidemic discovery: introduce ourselves to every newly
			// learned peer exactly once, so late joiners become
			// visible cluster-wide and routing holes close.
			if n.joined && !n.announced[id] {
				n.announced[id] = true
				n.env.Send(id, Announce{ID: n.self})
			}
		}
	case Heartbeat:
		n.handleHeartbeat(from, msg)
	case Obituary:
		n.handleObituary(msg)
	default:
		return false
	}
	return true
}

// handleObituary processes a gossiped death certificate: purge, certify,
// and forward exactly once (receivers that already hold a live
// certificate stop the flood). A node hearing of its own death refutes
// it by re-announcing itself instead.
func (n *Node) handleObituary(m Obituary) {
	if m.Dead == n.self {
		for _, id := range n.knownSample() {
			n.env.Send(id, Announce{ID: n.self})
		}
		return
	}
	if at, ok := n.dead[m.Dead]; ok && n.env.Now()-at < deadTTL {
		return
	}
	n.dead[m.Dead] = n.env.Now()
	n.RemoveNode(m.Dead)
	for _, id := range n.knownSample() {
		n.env.Send(id, m)
	}
}

func (n *Node) handleJoinRequest(m JoinRequest) {
	// Contribute the row the joiner will use at this hop.
	l := ids.CommonPrefixLen(n.self, m.Joiner)
	if l < ids.Digits {
		row := n.rt.Row(l)
		for c := 0; c < ids.Radix; c++ {
			if !row[c].IsZero() {
				m.Rows = append(m.Rows, row[c])
			}
		}
	}
	m.Rows = append(m.Rows, n.self)
	next, isSelf := n.NextHop(m.Joiner)
	if isSelf || next == m.Joiner {
		// This node is the joiner's closest existing neighbor: reply
		// with accumulated rows plus the local leaf set.
		n.env.Send(m.Joiner, JoinReply{Rows: m.Rows, Leaf: append(n.leaf.Members(), n.self)})
		return
	}
	m.Hops++
	if m.Hops > ids.Digits {
		n.env.Send(m.Joiner, JoinReply{Rows: m.Rows, Leaf: append(n.leaf.Members(), n.self)})
		return
	}
	n.env.Send(next, m)
}

func (n *Node) handleJoinReply(m JoinReply) {
	for _, id := range m.Rows {
		n.Install(id)
	}
	for _, id := range m.Leaf {
		n.Install(id)
	}
	wasJoined := n.joined
	n.joined = true
	// Tell everyone we know about ourselves so they can install us.
	for _, id := range n.knownSample() {
		n.announced[id] = true
		n.env.Send(id, Announce{ID: n.self})
	}
	if !wasJoined {
		n.startHeartbeats()
		for _, p := range n.joinPending {
			n.Route(p.key, p.payload)
		}
		n.joinPending = nil
	}
}

// knownSample lists every peer in routing state: the table's entries
// (each id occupies exactly one slot — its common-prefix row and digit
// column — so the table is duplicate-free), then leaf members not
// already present via their unique table slot. Order matches the
// pre-optimization map-based dedup: table row-major, then leaf.
func (n *Node) knownSample() []ids.ID {
	if n.ksCache != nil && n.ksRT == n.rt.Version() && n.ksLeaf == n.leaf.Version() {
		return n.ksCache
	}
	rtEntries := n.rt.Entries()
	members := n.leaf.Members()
	out := make([]ids.ID, 0, len(rtEntries)+len(members))
	out = append(out, rtEntries...)
	for _, id := range members {
		r := ids.CommonPrefixLen(n.self, id)
		if r < ids.Digits && n.rt.Get(r, id.Digit(r)) == id {
			continue
		}
		out = append(out, id)
	}
	n.ksCache, n.ksRT, n.ksLeaf = out, n.rt.Version(), n.leaf.Version()
	return out
}

// ---------------------------------------------------------------------
// Liveness

func (n *Node) startHeartbeats() {
	if n.cfg.HeartbeatEvery <= 0 || n.stopHB != nil {
		return
	}
	var tick func()
	tick = func() {
		for _, id := range n.leaf.Members() {
			n.hbMisses[id]++
			if n.hbMisses[id] > n.cfg.HeartbeatMiss {
				n.declareDead(id)
				continue
			}
			n.env.Send(id, Heartbeat{})
		}
		// Routing-table liveness: leaf members are probed every tick,
		// but a corpse can also sit in a routing slot — a node that was
		// down when the obituary circulated (its own crash-recovery, a
		// racing rejoin) keeps delegating a whole region to it, silently
		// breaking every dissemination through that slot. Sweep the
		// table entries on a slower cadence (every 4th tick, once per
		// entry, leaf members excluded — they are probed above) so such
		// corpses are re-detected and purged within a bounded number of
		// rounds without double-counting misses.
		n.hbRound++
		if n.hbRound%4 == 0 {
			for _, id := range n.rt.Entries() {
				if n.leaf.Contains(id) {
					continue
				}
				n.hbMisses[id]++
				if n.hbMisses[id] > n.cfg.HeartbeatMiss {
					n.declareDead(id)
					continue
				}
				n.env.Send(id, Heartbeat{})
			}
		}
		// Anti-entropy: share membership knowledge with one random
		// known peer per tick. Churn opens broadcast-partition holes —
		// a node can be known by its ring neighbors yet invisible to
		// the representative whose routing slot should cover it; the
		// epidemic exchange diffuses membership until every region's
		// representative learns its occupants again.
		if ks := n.knownSample(); len(ks) > 0 {
			peer := ks[n.env.Rand().Intn(len(ks))]
			// Copy: ks is the shared knownSample cache (also aliased by
			// in-flight gossip); appending into its spare capacity would
			// write into memory other messages are reading.
			known := make([]ids.ID, 0, len(ks)+1)
			known = append(append(known, ks...), n.self)
			n.env.Send(peer, AnnounceAck{Known: known})
		}
		n.stopHB = n.env.After(n.cfg.HeartbeatEvery, tick)
	}
	n.stopHB = n.env.After(n.cfg.HeartbeatEvery, tick)
}

func (n *Node) handleHeartbeat(from ids.ID, m Heartbeat) {
	if m.Ack {
		n.hbMisses[from] = 0
		return
	}
	n.Install(from)
	n.env.Send(from, Heartbeat{Ack: true})
}

func (n *Node) declareDead(deadID ids.ID) {
	n.RemoveNode(deadID)
	n.dead[deadID] = n.env.Now()
	if n.OnNeighborDead != nil {
		n.OnNeighborDead(deadID)
	}
	// Gossip the death certificate so the purge propagates beyond this
	// node's leaf set: routing-table entries are not heartbeat-monitored,
	// so without the obituary flood an interior node's death would leave
	// stale entries cluster-wide.
	for _, id := range n.knownSample() {
		n.env.Send(id, Obituary{Dead: deadID})
	}
	// Leaf-set repair: ask the remaining members for their neighbors
	// to refill the set.
	for _, id := range n.leaf.Members() {
		n.env.Send(id, Announce{ID: n.self})
	}
}
