package pastry

import (
	"time"

	"github.com/moara/moara/internal/ids"
	"github.com/moara/moara/internal/simnet"
)

// Config tunes an overlay node.
type Config struct {
	// LeafSetSize is the number of leaf-set entries kept per side
	// (default 8).
	LeafSetSize int
	// HeartbeatEvery enables leaf-set liveness probing when > 0.
	// Large-scale simulations leave it disabled, mirroring the paper's
	// exclusion of DHT maintenance traffic.
	HeartbeatEvery time.Duration
	// HeartbeatMiss is the number of consecutive missed heartbeats
	// after which a neighbor is declared dead (default 3).
	HeartbeatMiss int
}

func (c Config) withDefaults() Config {
	if c.LeafSetSize == 0 {
		c.LeafSetSize = 8
	}
	if c.HeartbeatMiss == 0 {
		c.HeartbeatMiss = 3
	}
	return c
}

// DeliverFunc receives payloads routed to this node as the key's owner.
type DeliverFunc func(key ids.ID, payload any, origin ids.ID)

// Node is one overlay participant. It is not safe for concurrent use;
// drive it from a single goroutine (the simulator loop or a per-node
// serialization layer).
type Node struct {
	env  simnet.Env
	cfg  Config
	self ids.ID

	rt   RoutingTable
	leaf *LeafSet

	// Deliver is invoked when a routed payload reaches its key's owner.
	Deliver DeliverFunc
	// OnNeighborDead is invoked when a neighbor is declared failed.
	OnNeighborDead func(dead ids.ID)

	hbMisses    map[ids.ID]int
	stopHB      func()
	joined      bool
	joinPending []pendingRoute
	gen         int
	// dead holds death certificates: recently failed nodes that must
	// not be re-learned from stale gossip.
	dead map[ids.ID]time.Duration
	// announced tracks which peers this node has introduced itself to,
	// so discovery gossip converges instead of looping.
	announced map[ids.ID]bool
}

type pendingRoute struct {
	key     ids.ID
	payload any
	origin  ids.ID
}

// New creates an overlay node bound to env.
func New(env simnet.Env, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		env:       env,
		cfg:       cfg,
		self:      env.Self(),
		leaf:      NewLeafSet(env.Self(), cfg.LeafSetSize),
		hbMisses:  make(map[ids.ID]int),
		dead:      make(map[ids.ID]time.Duration),
		announced: make(map[ids.ID]bool),
	}
	return n
}

// Self returns the node's identifier.
func (n *Node) Self() ids.ID { return n.self }

// Leaf exposes the leaf set (read-only use).
func (n *Node) Leaf() *LeafSet { return n.leaf }

// Table exposes the routing table (read-only use).
func (n *Node) Table() *RoutingTable { return &n.rt }

// Joined reports whether the node has completed bootstrap.
func (n *Node) Joined() bool { return n.joined }

// BootstrapAlone marks the node as the first member of a new overlay.
func (n *Node) BootstrapAlone() {
	n.joined = true
	n.startHeartbeats()
}

// Close stops background timers.
func (n *Node) Close() {
	if n.stopHB != nil {
		n.stopHB()
		n.stopHB = nil
	}
}

// ---------------------------------------------------------------------
// Messages

// RouteMsg carries an application payload toward the owner of Key.
type RouteMsg struct {
	Key     ids.ID
	Origin  ids.ID
	Payload any
	Hops    int
}

// MsgKind labels the message for accounting.
func (RouteMsg) MsgKind() string { return "overlay.route" }

// JoinRequest is routed toward the joiner's ID, accumulating routing
// rows from every hop.
type JoinRequest struct {
	Joiner ids.ID
	Rows   []ids.ID // flattened candidate entries collected en route
	Hops   int
}

// MsgKind labels the message for accounting.
func (JoinRequest) MsgKind() string { return "overlay.join" }

// JoinReply returns accumulated state to the joiner.
type JoinReply struct {
	Rows []ids.ID
	Leaf []ids.ID
}

// MsgKind labels the message for accounting.
func (JoinReply) MsgKind() string { return "overlay.join" }

// Announce tells existing nodes about a newly joined node.
type Announce struct {
	ID ids.ID
}

// MsgKind labels the message for accounting.
func (Announce) MsgKind() string { return "overlay.announce" }

// AnnounceAck shares the receiver's neighbors back with the announcer.
type AnnounceAck struct {
	Known []ids.ID
}

// MsgKind labels the message for accounting.
func (AnnounceAck) MsgKind() string { return "overlay.announce" }

// Heartbeat probes a leaf-set neighbor.
type Heartbeat struct{ Ack bool }

// MsgKind labels the message for accounting.
func (Heartbeat) MsgKind() string { return "overlay.hb" }

// ---------------------------------------------------------------------
// Routing

// NextHop computes the next overlay hop toward key. self=true means this
// node is the key's owner (root).
func (n *Node) NextHop(key ids.ID) (next ids.ID, self bool) {
	if key == n.self {
		return n.self, true
	}
	// Leaf-set range: deliver to the numerically closest member.
	if n.leaf.Covers(key) {
		c := n.leaf.Closest(key)
		if c == n.self {
			return n.self, true
		}
		return c, false
	}
	l := ids.CommonPrefixLen(n.self, key)
	if e := n.rt.Get(l, key.Digit(l)); !e.IsZero() {
		return e, false
	}
	// Rare case: scan all known nodes for one strictly closer to key
	// with at least the same prefix length.
	best := n.self
	consider := func(x ids.ID) {
		if ids.CommonPrefixLen(x, key) >= l && ids.CloserToKey(key, x, best) {
			best = x
		}
	}
	for _, x := range n.rt.Entries() {
		consider(x)
	}
	for _, x := range n.leaf.Members() {
		consider(x)
	}
	if best == n.self {
		return n.self, true
	}
	return best, false
}

// Route sends payload toward the owner of key, delivering locally when
// this node is the owner.
func (n *Node) Route(key ids.ID, payload any) {
	n.routeMsg(RouteMsg{Key: key, Origin: n.self, Payload: payload})
}

func (n *Node) routeMsg(m RouteMsg) {
	next, isSelf := n.NextHop(m.Key)
	if isSelf {
		if n.Deliver != nil {
			n.Deliver(m.Key, m.Payload, m.Origin)
		}
		return
	}
	m.Hops++
	if m.Hops > ids.Digits+2*n.cfg.LeafSetSize {
		// Routing loop under pathological state; drop.
		return
	}
	n.env.Send(next, m)
}

// BroadcastTarget is one child edge in the prefix-constrained broadcast
// tree: the recipient and the level it becomes responsible for.
type BroadcastTarget struct {
	ID    ids.ID
	Level int
}

// BroadcastTargets enumerates this node's children when it participates
// in a broadcast at the given level: every routing-table entry in rows
// >= level. With complete tables the targets partition the node's
// region of the identifier space, so a broadcast from a tree root
// reaches every live node exactly once.
func (n *Node) BroadcastTargets(level int) []BroadcastTarget {
	var out []BroadcastTarget
	for r := level; r < ids.Digits; r++ {
		row := n.rt.Row(r)
		for c := 0; c < ids.Radix; c++ {
			if row[c].IsZero() || row[c] == n.self {
				continue
			}
			out = append(out, BroadcastTarget{ID: row[c], Level: r + 1})
		}
	}
	return out
}

// deadTTL is how long a death certificate blocks re-installation.
const deadTTL = time.Minute

// Install adds a known-live node to routing state. Recently failed
// nodes are rejected so stale gossip cannot resurrect them.
func (n *Node) Install(id ids.ID) {
	if at, isDead := n.dead[id]; isDead {
		if n.env.Now()-at < deadTTL {
			return
		}
		delete(n.dead, id)
	}
	a := n.rt.Install(n.self, id)
	b := n.leaf.Install(id)
	if a || b {
		n.gen++
	}
}

// RemoveNode purges a failed node from routing state.
func (n *Node) RemoveNode(dead ids.ID) {
	a := n.rt.Remove(n.self, dead)
	b := n.leaf.Remove(dead)
	delete(n.hbMisses, dead)
	if a || b {
		n.gen++
	}
}

// Gen is a generation counter bumped on every routing-state change;
// callers use it to invalidate caches derived from the table.
func (n *Node) Gen() int { return n.gen }

// EstimateSize estimates the total overlay population from leaf-set
// density: the leaf set spans a known fraction of the ring, so the ring
// holds roughly members/spanFraction nodes. Moara uses the estimate to
// cost never-queried (cold) trees.
func (n *Node) EstimateSize() float64 {
	members := n.leaf.Members()
	if len(members) == 0 {
		return 1
	}
	// The widest reach on each side bounds the arc the leaf set covers;
	// members/arc extrapolates to the full ring.
	var maxSucc, maxPred float64
	for _, m := range members {
		s := ids.Fraction(ringGap(n.self, m))
		p := ids.Fraction(ringGap(m, n.self))
		if s < p {
			if s > maxSucc {
				maxSucc = s
			}
		} else {
			if p > maxPred {
				maxPred = p
			}
		}
	}
	arc := maxSucc + maxPred
	if arc <= 0 {
		return float64(len(members) + 1)
	}
	return float64(len(members)+1) / arc
}

// ---------------------------------------------------------------------
// Join protocol

// Join bootstraps via an existing overlay member.
func (n *Node) Join(bootstrap ids.ID) {
	n.env.Send(bootstrap, JoinRequest{Joiner: n.self})
}

// Handle processes overlay messages. It reports whether the message was
// an overlay message (false means the caller should interpret it).
func (n *Node) Handle(from ids.ID, m any) bool {
	switch msg := m.(type) {
	case RouteMsg:
		n.routeMsg(msg)
	case JoinRequest:
		n.handleJoinRequest(msg)
	case JoinReply:
		n.handleJoinReply(msg)
	case Announce:
		n.Install(msg.ID)
		n.env.Send(msg.ID, AnnounceAck{Known: n.knownSample()})
	case AnnounceAck:
		for _, id := range msg.Known {
			if id == n.self {
				continue
			}
			n.Install(id)
			// Epidemic discovery: introduce ourselves to every newly
			// learned peer exactly once, so late joiners become
			// visible cluster-wide and routing holes close.
			if n.joined && !n.announced[id] {
				if _, isDead := n.dead[id]; !isDead {
					n.announced[id] = true
					n.env.Send(id, Announce{ID: n.self})
				}
			}
		}
	case Heartbeat:
		n.handleHeartbeat(from, msg)
	default:
		return false
	}
	return true
}

func (n *Node) handleJoinRequest(m JoinRequest) {
	// Contribute the row the joiner will use at this hop.
	l := ids.CommonPrefixLen(n.self, m.Joiner)
	if l < ids.Digits {
		row := n.rt.Row(l)
		for c := 0; c < ids.Radix; c++ {
			if !row[c].IsZero() {
				m.Rows = append(m.Rows, row[c])
			}
		}
	}
	m.Rows = append(m.Rows, n.self)
	next, isSelf := n.NextHop(m.Joiner)
	if isSelf || next == m.Joiner {
		// This node is the joiner's closest existing neighbor: reply
		// with accumulated rows plus the local leaf set.
		n.env.Send(m.Joiner, JoinReply{Rows: m.Rows, Leaf: append(n.leaf.Members(), n.self)})
		return
	}
	m.Hops++
	if m.Hops > ids.Digits {
		n.env.Send(m.Joiner, JoinReply{Rows: m.Rows, Leaf: append(n.leaf.Members(), n.self)})
		return
	}
	n.env.Send(next, m)
}

func (n *Node) handleJoinReply(m JoinReply) {
	for _, id := range m.Rows {
		n.Install(id)
	}
	for _, id := range m.Leaf {
		n.Install(id)
	}
	wasJoined := n.joined
	n.joined = true
	// Tell everyone we know about ourselves so they can install us.
	for _, id := range n.knownSample() {
		n.announced[id] = true
		n.env.Send(id, Announce{ID: n.self})
	}
	if !wasJoined {
		n.startHeartbeats()
		for _, p := range n.joinPending {
			n.Route(p.key, p.payload)
		}
		n.joinPending = nil
	}
}

func (n *Node) knownSample() []ids.ID {
	seen := map[ids.ID]bool{n.self: true}
	var out []ids.ID
	for _, id := range n.rt.Entries() {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range n.leaf.Members() {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Liveness

func (n *Node) startHeartbeats() {
	if n.cfg.HeartbeatEvery <= 0 || n.stopHB != nil {
		return
	}
	var tick func()
	tick = func() {
		for _, id := range n.leaf.Members() {
			n.hbMisses[id]++
			if n.hbMisses[id] > n.cfg.HeartbeatMiss {
				n.declareDead(id)
				continue
			}
			n.env.Send(id, Heartbeat{})
		}
		n.stopHB = n.env.After(n.cfg.HeartbeatEvery, tick)
	}
	n.stopHB = n.env.After(n.cfg.HeartbeatEvery, tick)
}

func (n *Node) handleHeartbeat(from ids.ID, m Heartbeat) {
	if m.Ack {
		n.hbMisses[from] = 0
		return
	}
	n.Install(from)
	n.env.Send(from, Heartbeat{Ack: true})
}

func (n *Node) declareDead(deadID ids.ID) {
	n.RemoveNode(deadID)
	n.dead[deadID] = n.env.Now()
	if n.OnNeighborDead != nil {
		n.OnNeighborDead(deadID)
	}
	// Leaf-set repair: ask the remaining members for their neighbors
	// to refill the set.
	for _, id := range n.leaf.Members() {
		n.env.Send(id, Announce{ID: n.self})
	}
}
