package pastry

import (
	"sort"

	"github.com/moara/moara/internal/ids"
)

// Oracle fills routing state for a whole membership list at once. It is
// the large-scale-simulation counterpart of the join protocol: the paper
// runs atop the FreePastry simulator and excludes DHT maintenance from
// its measurements, so experiments build overlay state directly and then
// measure only Moara's own traffic.
type Oracle struct {
	sorted []ids.ID // ascending
	index  map[ids.ID]int
}

// NewOracle creates an oracle over the given membership.
func NewOracle(members []ids.ID) *Oracle {
	o := &Oracle{}
	o.Reset(members)
	return o
}

// Reset replaces the membership list.
func (o *Oracle) Reset(members []ids.ID) {
	o.sorted = make([]ids.ID, len(members))
	copy(o.sorted, members)
	sort.Slice(o.sorted, func(i, j int) bool { return ids.Less(o.sorted[i], o.sorted[j]) })
	o.index = make(map[ids.ID]int, len(o.sorted))
	for i, id := range o.sorted {
		o.index[id] = i
	}
}

// Members returns the sorted membership.
func (o *Oracle) Members() []ids.ID { return o.sorted }

// Owner returns the live node closest to key on the ring (the root of
// key's DHT tree).
func (o *Oracle) Owner(key ids.ID) ids.ID {
	n := len(o.sorted)
	if n == 0 {
		return ids.Zero
	}
	// First node >= key, then compare with its ring predecessor.
	i := sort.Search(n, func(i int) bool { return ids.Cmp(o.sorted[i], key) >= 0 })
	cand1 := o.sorted[i%n]
	cand2 := o.sorted[(i-1+n)%n]
	if ids.CloserToKey(key, cand1, cand2) {
		return cand1
	}
	return cand2
}

// Fill populates one node's routing table and leaf set from global
// knowledge. Representative selection for each (row, col) slot is
// deterministic but owner-dependent, spreading tree fan-in across the
// candidate set the way proximity-aware Pastry does.
func (o *Oracle) Fill(n *Node) {
	self := n.Self()
	idx, ok := o.index[self]
	if !ok {
		panic("pastry: oracle fill for unknown node " + self.Short())
	}
	total := len(o.sorted)

	// Leaf set from ring order.
	for d := 1; d <= n.cfg.LeafSetSize && d < total; d++ {
		n.leaf.Install(o.sorted[(idx+d)%total])
		n.leaf.Install(o.sorted[(idx-d+total)%total])
	}

	// Routing table rows until this node's prefix is unique.
	lo, hi := 0, total // candidate range sharing the current prefix
	for r := 0; r < ids.Digits; r++ {
		if hi-lo <= 1 {
			break
		}
		selfDigit := self.Digit(r)
		for c := 0; c < ids.Radix; c++ {
			if c == selfDigit {
				continue
			}
			clo, chi := o.narrow(lo, hi, self, r, c)
			if chi <= clo {
				continue
			}
			pick := clo + int(mix(idSeedOracle(self), uint64(r*ids.Radix+c))%uint64(chi-clo))
			n.rt.Set(r, c, o.sorted[pick])
		}
		lo, hi = o.narrow(lo, hi, self, r, selfDigit)
	}
	n.joined = true
	// Oracle bootstrap skips the join handshake, so start the liveness
	// loop here; a no-op unless HeartbeatEvery is configured.
	n.startHeartbeats()
}

// narrow restricts [lo,hi) to IDs whose digit at position r equals c,
// assuming all IDs in the range already share digits [0,r) with ref.
func (o *Oracle) narrow(lo, hi int, ref ids.ID, r, c int) (int, int) {
	low := prefixBound(ref, r, c, false)
	high := prefixBound(ref, r, c, true)
	nlo := lo + sort.Search(hi-lo, func(i int) bool { return ids.Cmp(o.sorted[lo+i], low) >= 0 })
	nhi := lo + sort.Search(hi-lo, func(i int) bool { return ids.Cmp(o.sorted[lo+i], high) > 0 })
	return nlo, nhi
}

// prefixBound returns the smallest (hi=false) or largest (hi=true) ID
// sharing ref's digits [0,r) and having digit c at position r.
func prefixBound(ref ids.ID, r, c int, hi bool) ids.ID {
	var out ids.ID
	if hi {
		for i := range out {
			out[i] = 0xff
		}
	}
	for d := 0; d < r; d++ {
		out = out.WithDigit(d, ref.Digit(d))
	}
	return out.WithDigit(r, c)
}

// idSeedOracle derives a well-mixed 64-bit seed from all 16 identifier
// bytes (FNV-1a).
func idSeedOracle(id ids.ID) uint64 {
	s := uint64(14695981039346656037)
	for _, b := range id {
		s ^= uint64(b)
		s *= 1099511628211
	}
	return s
}

func mix(a, b uint64) uint64 {
	x := a ^ (b+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return x ^ (x >> 31)
}
