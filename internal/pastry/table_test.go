package pastry

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/moara/moara/internal/ids"
)

func TestRoutingTableInstallRemove(t *testing.T) {
	owner := ids.MustHex("a0000000000000000000000000000000")
	var rt RoutingTable

	peer := ids.MustHex("b0000000000000000000000000000000") // differs at digit 0
	if !rt.Install(owner, peer) {
		t.Fatal("install failed")
	}
	if rt.Get(0, 0xb) != peer {
		t.Fatal("slot not filled")
	}
	// Second candidate for the same slot does not evict.
	peer2 := ids.MustHex("b1000000000000000000000000000000")
	if rt.Install(owner, peer2) {
		t.Fatal("occupied slot should not be replaced")
	}
	// Self and zero are rejected.
	if rt.Install(owner, owner) || rt.Install(owner, ids.Zero) {
		t.Fatal("self/zero installed")
	}
	// Deeper row.
	deep := ids.MustHex("a5000000000000000000000000000000") // shares 1 digit
	rt.Install(owner, deep)
	if rt.Get(1, 5) != deep {
		t.Fatal("deep slot not filled")
	}
	if !rt.Remove(owner, peer) || !rt.Get(0, 0xb).IsZero() {
		t.Fatal("remove failed")
	}
	if rt.Remove(owner, peer) {
		t.Fatal("double remove reported success")
	}
	if got := len(rt.Entries()); got != 1 {
		t.Fatalf("entries = %d", got)
	}
}

func TestLeafSetKeepsClosest(t *testing.T) {
	owner := ids.FromUint64(1000)
	ls := NewLeafSet(owner, 2)
	for _, v := range []uint64{1001, 1002, 1003, 999, 998, 997} {
		ls.Install(ids.FromUint64(v))
	}
	members := ls.Members()
	sort.Slice(members, func(i, j int) bool { return ids.Less(members[i], members[j]) })
	want := []uint64{998, 999, 1001, 1002}
	if len(members) != len(want) {
		t.Fatalf("members = %d (%v)", len(members), members)
	}
	for i, m := range members {
		if m != ids.FromUint64(want[i]) {
			t.Fatalf("member %d = %s, want %d", i, m.Short(), want[i])
		}
	}
	if ls.Contains(ids.FromUint64(997)) {
		t.Fatal("distant node kept in leaf set")
	}
	if !ls.Remove(ids.FromUint64(998)) {
		t.Fatal("remove failed")
	}
}

func TestLeafSetClosest(t *testing.T) {
	owner := ids.FromUint64(1000)
	ls := NewLeafSet(owner, 4)
	for _, v := range []uint64{900, 950, 1050, 1100} {
		ls.Install(ids.FromUint64(v))
	}
	if got := ls.Closest(ids.FromUint64(1060)); got != ids.FromUint64(1050) {
		t.Fatalf("closest = %s", got.Short())
	}
	if got := ls.Closest(ids.FromUint64(1001)); got != owner {
		t.Fatalf("closest to self-adjacent key = %s, want owner", got.Short())
	}
}

func TestOracleOwnerMatchesBruteForce(t *testing.T) {
	members := make([]ids.ID, 120)
	for i := range members {
		members[i] = ids.FromKey(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	o := NewOracle(members)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		key := ids.Random(rng)
		want := members[0]
		for _, m := range members[1:] {
			if ids.CloserToKey(key, m, want) {
				want = m
			}
		}
		if got := o.Owner(key); got != want {
			t.Fatalf("owner(%s) = %s, want %s", key.Short(), got.Short(), want.Short())
		}
	}
}

func TestEstimateSize(t *testing.T) {
	for _, n := range []int{50, 500, 5000} {
		_, nodes, members := buildOracleNodes(t, n)
		est := nodes[members[0]].EstimateSize()
		if est < float64(n)/4 || est > float64(n)*4 {
			t.Errorf("n=%d: estimate %v off by more than 4x", n, est)
		}
	}
}

func TestJoinProtocolBuildsRoutableOverlay(t *testing.T) {
	// Protocol-mode join is exercised end to end through the cluster
	// package; here we check the join accumulates routing state.
	o, nodes, members := buildOracleNodes(t, 50)
	_ = o
	joined := 0
	for _, id := range members {
		if nodes[id].Joined() {
			joined++
		}
	}
	if joined != 50 {
		t.Fatalf("joined = %d", joined)
	}
	for _, id := range members[:5] {
		if got := len(nodes[id].Table().Entries()); got == 0 {
			t.Fatalf("node %s has empty table", id.Short())
		}
		if got := len(nodes[id].Leaf().Members()); got == 0 {
			t.Fatalf("node %s has empty leaf set", id.Short())
		}
	}
}

func TestRemoveNodePurgesState(t *testing.T) {
	_, nodes, members := buildOracleNodes(t, 30)
	n := nodes[members[0]]
	entries := n.Table().Entries()
	if len(entries) == 0 {
		t.Skip("no entries")
	}
	gen := n.Gen()
	n.RemoveNode(entries[0])
	if n.Gen() == gen {
		t.Fatal("generation not bumped on removal")
	}
	for _, e := range n.Table().Entries() {
		if e == entries[0] {
			t.Fatal("dead node still in table")
		}
	}
}
