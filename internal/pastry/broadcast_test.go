package pastry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/moara/moara/internal/ids"
)

// stubEnv satisfies simnet.Env for table-only tests.
type stubEnv struct {
	id  ids.ID
	rng *rand.Rand
}

func (s stubEnv) Self() ids.ID                                { return s.id }
func (s stubEnv) Send(ids.ID, any)                            {}
func (s stubEnv) After(time.Duration, func()) (cancel func()) { return func() {} }
func (s stubEnv) Now() time.Duration                          { return 0 }
func (s stubEnv) Rand() *rand.Rand                            { return s.rng }

func buildOracleNodes(t *testing.T, n int) (*Oracle, map[ids.ID]*Node, []ids.ID) {
	t.Helper()
	members := make([]ids.ID, n)
	for i := range members {
		members[i] = ids.FromKey(fmt.Sprintf("node-%d", i))
	}
	o := NewOracle(members)
	nodes := make(map[ids.ID]*Node, n)
	for _, id := range members {
		nd := New(stubEnv{id: id, rng: rand.New(rand.NewSource(1))}, Config{})
		o.Fill(nd)
		nodes[id] = nd
	}
	return o, nodes, members
}

// TestBroadcastCoversAllNodes checks the §3.2 substrate property Moara
// relies on: a prefix-constrained broadcast from any tree root reaches
// every live node exactly once when routing tables are complete.
func TestBroadcastCoversAllNodes(t *testing.T) {
	for _, n := range []int{2, 3, 16, 64, 257, 1024} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			o, nodes, members := buildOracleNodes(t, n)
			for _, keyName := range []string{"a", "cpu_util", "slice-3"} {
				key := ids.FromKey(keyName)
				root := o.Owner(key)
				reached := map[ids.ID]int{root: 1}
				var walk func(id ids.ID, level int)
				walk = func(id ids.ID, level int) {
					for _, bt := range nodes[id].BroadcastTargets(level) {
						reached[bt.ID]++
						if reached[bt.ID] == 1 {
							walk(bt.ID, bt.Level)
						}
					}
				}
				walk(root, 0)
				if len(reached) != n {
					missed := 0
					for _, id := range members {
						if reached[id] == 0 {
							missed++
							if missed <= 5 {
								t.Logf("missed %s (common prefix with root: %d)",
									id.Short(), ids.CommonPrefixLen(root, id))
							}
						}
					}
					t.Fatalf("key %q: reached %d of %d nodes", keyName, len(reached), n)
				}
				for id, cnt := range reached {
					if cnt > 1 {
						t.Fatalf("key %q: node %s received broadcast %d times", keyName, id.Short(), cnt)
					}
				}
			}
		})
	}
}

// TestNextHopConverges checks that iterated NextHop routing reaches the
// ring-wise closest node for arbitrary keys.
func TestNextHopConverges(t *testing.T) {
	o, nodes, members := buildOracleNodes(t, 300)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		key := ids.Random(rng)
		want := o.Owner(key)
		cur := members[rng.Intn(len(members))]
		for hops := 0; ; hops++ {
			if hops > ids.Digits+10 {
				t.Fatalf("routing to %s did not converge", key.Short())
			}
			next, self := nodes[cur].NextHop(key)
			if self {
				break
			}
			cur = next
		}
		if cur != want {
			t.Fatalf("key %s routed to %s, oracle owner %s", key.Short(), cur.Short(), want.Short())
		}
	}
}
