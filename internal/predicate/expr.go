// Package predicate implements Moara's group predicates (§3.1, §6):
// simple (attribute op value) terms composed with and/or, evaluation
// against an attribute store, conversion to conjunctive normal form for
// cover extraction, negation push-down (the paper's implicit "not"
// support via the operator set), and the semantic relation algebra of
// Figs. 7-8 (equivalence, inclusion, disjointness, complement) used by
// the query optimizer.
package predicate

import (
	"fmt"
	"sort"
	"strings"

	"github.com/moara/moara/internal/value"
)

// Op is a comparison operator.
type Op uint8

// The comparison operators of the paper's query model.
const (
	OpInvalid Op = iota
	OpLT
	OpGT
	OpLE
	OpGE
	OpEQ
	OpNE
)

// String renders the operator in query-language syntax.
func (o Op) String() string {
	switch o {
	case OpLT:
		return "<"
	case OpGT:
		return ">"
	case OpLE:
		return "<="
	case OpGE:
		return ">="
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	default:
		return "?"
	}
}

// ParseOp parses an operator token.
func ParseOp(s string) (Op, error) {
	switch s {
	case "<":
		return OpLT, nil
	case ">":
		return OpGT, nil
	case "<=":
		return OpLE, nil
	case ">=":
		return OpGE, nil
	case "=", "==":
		return OpEQ, nil
	case "!=", "<>":
		return OpNE, nil
	default:
		return OpInvalid, fmt.Errorf("predicate: unknown operator %q", s)
	}
}

// Negate returns the complementary operator (over a totally ordered
// domain): not(<) is >=, not(=) is !=, and so on.
func (o Op) Negate() Op {
	switch o {
	case OpLT:
		return OpGE
	case OpGT:
		return OpLE
	case OpLE:
		return OpGT
	case OpGE:
		return OpLT
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	default:
		return OpInvalid
	}
}

// Getter resolves attribute names to local values; missing attributes
// return an invalid Value.
type Getter interface {
	Get(name string) value.Value
}

// GetterFunc adapts a function to Getter.
type GetterFunc func(name string) value.Value

// Get resolves an attribute.
func (f GetterFunc) Get(name string) value.Value { return f(name) }

// Expr is a group predicate: a Simple term or an and/or composition.
type Expr interface {
	// Eval reports whether the predicate holds for the node whose
	// attributes g resolves. Missing or incomparable attributes never
	// satisfy a term.
	Eval(g Getter) bool
	// Canon renders a canonical form used as the tree/state key; it is
	// stable across parses of equivalent text.
	Canon() string
	fmt.Stringer
}

// Simple is one (attribute op value) term. It names a group; the group's
// aggregation tree is keyed by hash(Attr).
type Simple struct {
	Attr string
	Op   Op
	Val  value.Value
}

// Eval reports whether the node's attribute satisfies the term.
func (s Simple) Eval(g Getter) bool {
	v := g.Get(s.Attr)
	if !v.IsValid() {
		return false
	}
	c, err := value.Compare(v, s.Val)
	if err != nil {
		return false
	}
	switch s.Op {
	case OpLT:
		return c < 0
	case OpGT:
		return c > 0
	case OpLE:
		return c <= 0
	case OpGE:
		return c >= 0
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	default:
		return false
	}
}

// String renders the term.
func (s Simple) String() string {
	return fmt.Sprintf("%s %s %s", s.Attr, s.Op, s.Val)
}

// Canon renders the canonical term form.
func (s Simple) Canon() string { return s.String() }

// And is a conjunction of sub-predicates.
type And struct {
	Terms []Expr
}

// Eval reports whether every term holds.
func (a And) Eval(g Getter) bool {
	for _, t := range a.Terms {
		if !t.Eval(g) {
			return false
		}
	}
	return true
}

// String renders the conjunction.
func (a And) String() string { return joinTerms(a.Terms, " and ") }

// Canon renders a canonical, term-sorted form.
func (a And) Canon() string { return canonTerms(a.Terms, " and ") }

// Or is a disjunction of sub-predicates.
type Or struct {
	Terms []Expr
}

// Eval reports whether any term holds.
func (o Or) Eval(g Getter) bool {
	for _, t := range o.Terms {
		if t.Eval(g) {
			return true
		}
	}
	return false
}

// String renders the disjunction.
func (o Or) String() string { return joinTerms(o.Terms, " or ") }

// Canon renders a canonical, term-sorted form.
func (o Or) Canon() string { return canonTerms(o.Terms, " or ") }

func joinTerms(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		s := t.String()
		if _, ok := t.(Simple); !ok {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

func canonTerms(terms []Expr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		s := t.Canon()
		if _, ok := t.(Simple); !ok {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	sort.Strings(parts)
	return strings.Join(parts, sep)
}

// Negate returns the logical complement of e with negation pushed down
// to the operators (De Morgan), which is how Moara supports "not"
// without a Not node.
func Negate(e Expr) Expr {
	switch t := e.(type) {
	case Simple:
		return Simple{Attr: t.Attr, Op: t.Op.Negate(), Val: t.Val}
	case And:
		out := make([]Expr, len(t.Terms))
		for i, sub := range t.Terms {
			out[i] = Negate(sub)
		}
		return Or{Terms: out}
	case Or:
		out := make([]Expr, len(t.Terms))
		for i, sub := range t.Terms {
			out[i] = Negate(sub)
		}
		return And{Terms: out}
	default:
		panic(fmt.Sprintf("predicate: negate unknown expr %T", e))
	}
}

// Simples returns every simple term in e, left to right, duplicates
// included.
func Simples(e Expr) []Simple {
	var out []Simple
	var walk func(Expr)
	walk = func(x Expr) {
		switch t := x.(type) {
		case Simple:
			out = append(out, t)
		case And:
			for _, s := range t.Terms {
				walk(s)
			}
		case Or:
			for _, s := range t.Terms {
				walk(s)
			}
		}
	}
	walk(e)
	return out
}

// Attrs returns the distinct group attributes referenced by e, sorted.
func Attrs(e Expr) []string {
	seen := make(map[string]bool)
	for _, s := range Simples(e) {
		seen[s.Attr] = true
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
