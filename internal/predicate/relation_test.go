package predicate

import (
	"math/rand"
	"testing"

	"github.com/moara/moara/internal/value"
)

func sp(attr, op string, v value.Value) Simple {
	o, err := ParseOp(op)
	if err != nil {
		panic(err)
	}
	return Simple{Attr: attr, Op: o, Val: v}
}

func TestRelationTable(t *testing.T) {
	f := value.Float
	tests := []struct {
		a, b Simple
		want Rel
	}{
		// Fig. 8 rows.
		{sp("cpu", "<", f(50)), sp("cpu", ">", f(20)), RelOverlap},
		{sp("cpu", "<", f(50)), sp("cpu", "<", f(50)), RelEqual},
		{sp("cpu", "<", f(20)), sp("cpu", "<", f(50)), RelSubset},
		{sp("cpu", "<", f(50)), sp("cpu", "<", f(20)), RelSuperset},
		{sp("cpu", "<", f(50)), sp("cpu", ">", f(80)), RelDisjoint},
		{sp("cpu", "<", f(50)), sp("cpu", ">=", f(50)), RelComplement},
		{sp("cpu", "<=", f(50)), sp("cpu", ">", f(50)), RelComplement},
		{sp("cpu", "=", f(50)), sp("cpu", "!=", f(50)), RelComplement},
		{sp("cpu", "=", f(20)), sp("cpu", "<", f(50)), RelSubset},
		{sp("cpu", "=", f(20)), sp("cpu", "=", f(20)), RelEqual},
		{sp("cpu", "=", f(20)), sp("cpu", "=", f(30)), RelDisjoint},
		{sp("cpu", "!=", f(20)), sp("cpu", "<", f(50)), RelOverlap},
		{sp("cpu", "<", f(50)), sp("cpu", "<=", f(50)), RelSubset},
		{sp("cpu", ">", f(50)), sp("cpu", ">=", f(50)), RelSubset},
		// Exact boundary disjointness (shared closed endpoint).
		{sp("cpu", "<=", f(50)), sp("cpu", ">", f(50)), RelComplement},
		{sp("cpu", "<", f(50)), sp("cpu", ">", f(50)), RelDisjoint},
		// Mixed int/float domains.
		{sp("cpu", "<", value.Int(50)), sp("cpu", ">=", f(50)), RelComplement},
		// Different attributes: unknown.
		{sp("cpu", "<", f(50)), sp("mem", "<", f(50)), RelUnknown},
		// Strings.
		{sp("os", "=", value.Str("linux")), sp("os", "=", value.Str("linux")), RelEqual},
		{sp("os", "=", value.Str("linux")), sp("os", "=", value.Str("bsd")), RelDisjoint},
		{sp("os", "=", value.Str("linux")), sp("os", "!=", value.Str("linux")), RelComplement},
		{sp("os", "=", value.Str("linux")), sp("os", "!=", value.Str("bsd")), RelSubset},
		{sp("os", "!=", value.Str("linux")), sp("os", "=", value.Str("bsd")), RelSuperset},
		{sp("os", "!=", value.Str("a")), sp("os", "!=", value.Str("b")), RelOverlap},
		// Booleans over the two-point domain.
		{sp("up", "=", value.Bool(true)), sp("up", "=", value.Bool(false)), RelComplement},
		{sp("up", "=", value.Bool(true)), sp("up", "!=", value.Bool(false)), RelEqual},
		{sp("up", "=", value.Bool(true)), sp("up", "!=", value.Bool(true)), RelComplement},
		// String ordered comparisons stay unknown (conservative).
		{sp("os", "<", value.Str("m")), sp("os", ">", value.Str("m")), RelUnknown},
	}
	for _, tc := range tests {
		if got := Relation(tc.a, tc.b); got != tc.want {
			t.Errorf("Relation(%s, %s) = %s, want %s", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestRelationModelChecked cross-validates the interval algebra against
// brute-force evaluation over a sampled numeric domain.
func TestRelationModelChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Sample points straddling all the thresholds used below.
	var domain []float64
	for v := -1.0; v <= 6.0; v += 0.25 {
		domain = append(domain, v)
	}
	ops := []Op{OpLT, OpGT, OpLE, OpGE, OpEQ, OpNE}
	for trial := 0; trial < 2000; trial++ {
		a := Simple{Attr: "x", Op: ops[rng.Intn(len(ops))], Val: value.Float(float64(rng.Intn(5)))}
		b := Simple{Attr: "x", Op: ops[rng.Intn(len(ops))], Val: value.Float(float64(rng.Intn(5)))}
		rel := Relation(a, b)
		if rel == RelUnknown {
			t.Fatalf("numeric relation unknown for %s vs %s", a, b)
		}
		var onlyA, onlyB, both int
		for _, v := range domain {
			g := mapGetter{"x": value.Float(v)}
			av, bv := a.Eval(g), b.Eval(g)
			switch {
			case av && bv:
				both++
			case av:
				onlyA++
			case bv:
				onlyB++
			}
		}
		// The sampled domain can't see open/closed endpoint subtleties
		// beyond the sampled resolution, so check implications only.
		switch rel {
		case RelEqual:
			if onlyA != 0 || onlyB != 0 {
				t.Fatalf("%s = %s claimed equal; onlyA=%d onlyB=%d", a, b, onlyA, onlyB)
			}
		case RelSubset:
			if onlyA != 0 {
				t.Fatalf("%s ⊆ %s claimed; onlyA=%d", a, b, onlyA)
			}
		case RelSuperset:
			if onlyB != 0 {
				t.Fatalf("%s ⊇ %s claimed; onlyB=%d", a, b, onlyB)
			}
		case RelDisjoint, RelComplement:
			if both != 0 {
				t.Fatalf("%s disjoint %s claimed; both=%d", a, b, both)
			}
			if rel == RelComplement {
				// Complement additionally covers the whole domain.
				for _, v := range domain {
					g := mapGetter{"x": value.Float(v)}
					if !a.Eval(g) && !b.Eval(g) {
						t.Fatalf("%s complement %s claimed but %v satisfies neither", a, b, v)
					}
				}
			}
		}
	}
}

func TestRelationSymmetryPairs(t *testing.T) {
	f := value.Float
	a, b := sp("cpu", "<", f(20)), sp("cpu", "<", f(50))
	if Relation(a, b) != RelSubset || Relation(b, a) != RelSuperset {
		t.Fatal("subset/superset symmetry broken")
	}
}
