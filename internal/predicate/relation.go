package predicate

import (
	"math"
)

// Rel classifies the set relation between two simple predicates over the
// same attribute, following Fig. 8 of the paper. The relation is used by
// the query optimizer to shrink covers (Fig. 7) and to detect implicit
// "not" pairs.
type Rel uint8

// The relations of Fig. 8.
const (
	// RelUnknown means the relation could not be inferred; the
	// optimizer must be conservative.
	RelUnknown Rel = iota
	// RelEqual: the groups are identical.
	RelEqual
	// RelSubset: A is a strict subset of B.
	RelSubset
	// RelSuperset: A is a strict superset of B.
	RelSuperset
	// RelDisjoint: the groups cannot share a node.
	RelDisjoint
	// RelOverlap: the groups properly intersect.
	RelOverlap
	// RelComplement: B is exactly "not A" (disjoint and covering).
	RelComplement
)

// String names the relation.
func (r Rel) String() string {
	switch r {
	case RelEqual:
		return "equal"
	case RelSubset:
		return "subset"
	case RelSuperset:
		return "superset"
	case RelDisjoint:
		return "disjoint"
	case RelOverlap:
		return "overlap"
	case RelComplement:
		return "complement"
	default:
		return "unknown"
	}
}

// Relation infers the set relation of a relative to b. It returns
// RelUnknown for different attributes or undecidable operator/type
// combinations. Numeric predicates use interval algebra over the reals;
// boolean predicates use exact two-point-domain analysis; string
// equality predicates use point/co-point analysis.
func Relation(a, b Simple) Rel {
	if a.Attr != b.Attr {
		return RelUnknown
	}
	if av, ok := a.Val.AsBool(); ok {
		bv, ok2 := b.Val.AsBool()
		if !ok2 {
			return RelUnknown
		}
		return boolRelation(a.Op, av, b.Op, bv)
	}
	if a.Val.IsNumeric() && b.Val.IsNumeric() {
		ia, ok1 := numericSet(a)
		ib, ok2 := numericSet(b)
		if !ok1 || !ok2 {
			return RelUnknown
		}
		return setRelation(ia, ib)
	}
	if _, ok := a.Val.AsString(); ok {
		if _, ok2 := b.Val.AsString(); ok2 {
			return stringRelation(a, b)
		}
	}
	return RelUnknown
}

// boolRelation decides relations over the two-point domain {false,true}.
func boolRelation(aop Op, av bool, bop Op, bv bool) Rel {
	// Normalize to "the set of booleans satisfying the predicate".
	setOf := func(op Op, v bool) (hasF, hasT, ok bool) {
		switch op {
		case OpEQ:
			return v == false, v == true, true
		case OpNE:
			return v != false, v != true, true
		default:
			return false, false, false
		}
	}
	af, at, ok1 := setOf(aop, av)
	bf, bt, ok2 := setOf(bop, bv)
	if !ok1 || !ok2 {
		return RelUnknown
	}
	switch {
	case af == bf && at == bt:
		return RelEqual
	case (af || at) && (bf || bt) && !(af && bf) && !(at && bt):
		// Non-empty, disjoint; over a two-point domain disjoint
		// singletons are complements.
		return RelComplement
	default:
		return RelOverlap
	}
}

// stringRelation handles = / != over strings (ordered string predicates
// are left unknown, conservatively).
func stringRelation(a, b Simple) Rel {
	as, _ := a.Val.AsString()
	bs, _ := b.Val.AsString()
	switch {
	case a.Op == OpEQ && b.Op == OpEQ:
		if as == bs {
			return RelEqual
		}
		return RelDisjoint
	case a.Op == OpEQ && b.Op == OpNE:
		if as == bs {
			return RelComplement
		}
		return RelSubset // {as} ⊂ everything-but-bs
	case a.Op == OpNE && b.Op == OpEQ:
		if as == bs {
			return RelComplement
		}
		return RelSuperset
	case a.Op == OpNE && b.Op == OpNE:
		if as == bs {
			return RelEqual
		}
		return RelOverlap
	default:
		return RelUnknown
	}
}

// ---------------------------------------------------------------------
// Interval algebra over the reals for numeric predicates.

// interval is [lo,hi] with independently open endpoints; lo/hi may be
// ±Inf (infinite endpoints are always open).
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
}

func (iv interval) empty() bool {
	if iv.lo > iv.hi {
		return true
	}
	if iv.lo == iv.hi && (iv.loOpen || iv.hiOpen) {
		return true
	}
	return false
}

// intervalSet is a union of disjoint, sorted intervals (at most 2 for
// any simple predicate; at most 4 after one intersection).
type intervalSet []interval

// numericSet builds the satisfying set of a numeric simple predicate.
func numericSet(s Simple) (intervalSet, bool) {
	v, ok := s.Val.AsFloat()
	if !ok {
		return nil, false
	}
	inf := math.Inf(1)
	switch s.Op {
	case OpLT:
		return intervalSet{{lo: -inf, hi: v, loOpen: true, hiOpen: true}}, true
	case OpLE:
		return intervalSet{{lo: -inf, hi: v, loOpen: true}}, true
	case OpGT:
		return intervalSet{{lo: v, hi: inf, loOpen: true, hiOpen: true}}, true
	case OpGE:
		return intervalSet{{lo: v, hi: inf, hiOpen: true}}, true
	case OpEQ:
		return intervalSet{{lo: v, hi: v}}, true
	case OpNE:
		return intervalSet{
			{lo: -inf, hi: v, loOpen: true, hiOpen: true},
			{lo: v, hi: inf, loOpen: true, hiOpen: true},
		}, true
	default:
		return nil, false
	}
}

// intersect computes the pairwise intersection of two interval sets.
func intersect(a, b intervalSet) intervalSet {
	var out intervalSet
	for _, x := range a {
		for _, y := range b {
			lo, loOpen := x.lo, x.loOpen
			if y.lo > lo || (y.lo == lo && y.loOpen) {
				lo, loOpen = y.lo, y.loOpen
			}
			hi, hiOpen := x.hi, x.hiOpen
			if y.hi < hi || (y.hi == hi && y.hiOpen) {
				hi, hiOpen = y.hi, y.hiOpen
			}
			iv := interval{lo: lo, hi: hi, loOpen: loOpen, hiOpen: hiOpen}
			if !iv.empty() {
				out = append(out, iv)
			}
		}
	}
	return out
}

// equalSets reports whether two interval sets describe the same set of
// reals. Inputs must be normalized (disjoint, sorted), which numericSet
// and intersect produce.
func equalSets(a, b intervalSet) bool {
	a, b = normalize(a), normalize(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// normalize sorts and merges adjacent/overlapping intervals.
func normalize(s intervalSet) intervalSet {
	if len(s) <= 1 {
		return s
	}
	out := make(intervalSet, len(s))
	copy(out, s)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	merged := out[:1]
	for _, iv := range out[1:] {
		last := &merged[len(merged)-1]
		// Merge when iv starts inside or exactly adjacent (closed
		// meeting point) to last.
		if iv.lo < last.hi || (iv.lo == last.hi && (!iv.loOpen || !last.hiOpen)) {
			if iv.hi > last.hi || (iv.hi == last.hi && !iv.hiOpen) {
				last.hi, last.hiOpen = iv.hi, iv.hiOpen
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

func less(a, b interval) bool {
	if a.lo != b.lo {
		return a.lo < b.lo
	}
	return !a.loOpen && b.loOpen
}

// isUniverse reports whether the set covers all reals.
func isUniverse(s intervalSet) bool {
	s = normalize(s)
	return len(s) == 1 && math.IsInf(s[0].lo, -1) && math.IsInf(s[0].hi, 1)
}

// union concatenates and normalizes.
func union(a, b intervalSet) intervalSet {
	out := make(intervalSet, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return normalize(out)
}

// setRelation classifies interval sets a vs b.
func setRelation(a, b intervalSet) Rel {
	inter := intersect(a, b)
	interEmpty := len(normalize(inter)) == 0
	switch {
	case equalSets(a, b):
		return RelEqual
	case interEmpty && isUniverse(union(a, b)):
		return RelComplement
	case interEmpty:
		return RelDisjoint
	case equalSets(inter, a):
		return RelSubset
	case equalSets(inter, b):
		return RelSuperset
	default:
		return RelOverlap
	}
}
