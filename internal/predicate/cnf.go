package predicate

import (
	"fmt"
	"sort"
	"strings"
)

// Clause is a disjunction of simple terms — one OR-term of a CNF
// expression, and therefore one structural cover candidate (§6.3).
type Clause []Simple

// Canon renders the clause canonically (terms sorted).
func (c Clause) Canon() string {
	parts := make([]string, len(c))
	for i, s := range c {
		parts[i] = s.Canon()
	}
	sort.Strings(parts)
	return strings.Join(parts, " or ")
}

// Expr rebuilds the clause as a predicate expression.
func (c Clause) Expr() Expr {
	if len(c) == 1 {
		return c[0]
	}
	terms := make([]Expr, len(c))
	for i, s := range c {
		terms[i] = s
	}
	return Or{Terms: terms}
}

// CNF is a conjunction of clauses. Every clause is a structural cover of
// the original predicate: querying all groups in any single clause
// reaches every node that satisfies the whole predicate (proof sketch in
// §6.3 of the paper).
type CNF []Clause

// Expr rebuilds the CNF as a predicate expression.
func (f CNF) Expr() Expr {
	if len(f) == 1 {
		return f[0].Expr()
	}
	terms := make([]Expr, len(f))
	for i, c := range f {
		terms[i] = c.Expr()
	}
	return And{Terms: terms}
}

// DefaultMaxClauses caps CNF growth during distribution. Beyond the cap
// ToCNF fails and the planner falls back to querying every referenced
// group (still complete, just less optimized).
const DefaultMaxClauses = 128

// ErrCNFTooLarge reports that distribution exceeded the clause budget.
var ErrCNFTooLarge = fmt.Errorf("predicate: CNF expansion exceeds clause budget")

// ToCNF converts e to conjunctive normal form by distributing or over
// and. maxClauses <= 0 selects DefaultMaxClauses.
func ToCNF(e Expr, maxClauses int) (CNF, error) {
	if maxClauses <= 0 {
		maxClauses = DefaultMaxClauses
	}
	f, err := toCNF(e, maxClauses)
	if err != nil {
		return nil, err
	}
	return dedupe(f), nil
}

func toCNF(e Expr, budget int) (CNF, error) {
	switch t := e.(type) {
	case Simple:
		return CNF{Clause{t}}, nil
	case And:
		var out CNF
		for _, sub := range t.Terms {
			f, err := toCNF(sub, budget)
			if err != nil {
				return nil, err
			}
			out = append(out, f...)
			if len(out) > budget {
				return nil, ErrCNFTooLarge
			}
		}
		return out, nil
	case Or:
		// (F1 and F2 ...) or (G1 and G2 ...) distributes to the cross
		// product of clauses.
		out := CNF{nil} // identity for the cross product: one empty clause
		for _, sub := range t.Terms {
			f, err := toCNF(sub, budget)
			if err != nil {
				return nil, err
			}
			next := make(CNF, 0, len(out)*len(f))
			for _, a := range out {
				for _, b := range f {
					merged := make(Clause, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
				}
			}
			if len(next) > budget {
				return nil, ErrCNFTooLarge
			}
			out = next
		}
		return out, nil
	default:
		return nil, fmt.Errorf("predicate: CNF of unknown expr %T", e)
	}
}

// dedupe removes duplicate terms within clauses and duplicate clauses,
// and drops clauses that are supersets of other clauses (a smaller
// clause is always the cheaper cover of the two).
func dedupe(f CNF) CNF {
	cleaned := make(CNF, 0, len(f))
	seen := make(map[string]bool, len(f))
	for _, c := range f {
		termSeen := make(map[string]bool, len(c))
		uniq := make(Clause, 0, len(c))
		for _, s := range c {
			k := s.Canon()
			if !termSeen[k] {
				termSeen[k] = true
				uniq = append(uniq, s)
			}
		}
		key := uniq.Canon()
		if !seen[key] {
			seen[key] = true
			cleaned = append(cleaned, uniq)
		}
	}
	// Subsumption: drop clause X if some clause Y ⊂ X (as term sets).
	var out CNF
	for i, c := range cleaned {
		subsumed := false
		cset := termSet(c)
		for j, d := range cleaned {
			if i == j {
				continue
			}
			if len(d) < len(c) || (len(d) == len(c) && j < i && d.Canon() == c.Canon()) {
				if isSubset(termSet(d), cset) {
					subsumed = true
					break
				}
			}
		}
		if !subsumed {
			out = append(out, c)
		}
	}
	return out
}

func termSet(c Clause) map[string]bool {
	m := make(map[string]bool, len(c))
	for _, s := range c {
		m[s.Canon()] = true
	}
	return m
}

func isSubset(a, b map[string]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
