package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/moara/moara/internal/value"
)

// mapGetter adapts a map to the Getter interface.
type mapGetter map[string]value.Value

func (m mapGetter) Get(name string) value.Value { return m[name] }

func TestSimpleEval(t *testing.T) {
	g := mapGetter{
		"cpu":  value.Float(55),
		"os":   value.Str("linux"),
		"up":   value.Bool(true),
		"jobs": value.Int(3),
	}
	tests := []struct {
		expr string
		want bool
	}{
		{"cpu < 60", true},
		{"cpu < 55", false},
		{"cpu <= 55", true},
		{"cpu > 50", true},
		{"cpu >= 56", false},
		{"cpu = 55", true},
		{"cpu != 55", false},
		{"os = linux", true},
		{"os != windows", true},
		{"up = true", true},
		{"up != true", false},
		{"jobs >= 3", true},
		{"missing = 1", false},
		{"missing != 1", false}, // absent attributes never satisfy
		{"os < 1", false},       // incomparable never satisfies
	}
	for _, tc := range tests {
		e := MustParse(tc.expr)
		if got := e.Eval(g); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestParseComposite(t *testing.T) {
	g := mapGetter{"a": value.Int(1), "b": value.Int(2), "c": value.Int(3)}
	tests := []struct {
		expr string
		want bool
	}{
		{"a = 1 and b = 2", true},
		{"a = 1 and b = 3", false},
		{"a = 2 or b = 2", true},
		{"(a = 2 or b = 2) and c = 3", true},
		{"a = 1 and (b = 9 or c = 3)", true},
		{"not a = 2", true},
		{"not (a = 1 and b = 2)", false},
		{"not (a = 2) and not (b = 9)", true},
	}
	for _, tc := range tests {
		e, err := ParseExpr(tc.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.expr, err)
		}
		if got := e.Eval(g); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a", "a =", "= 5", "a = 1 and", "a = 1 or or b = 2",
		"(a = 1", "a ~ 1", "a = 1 extra stuff",
	}
	for _, s := range bad {
		if _, err := ParseExpr(s); err == nil {
			t.Errorf("ParseExpr(%q) should fail", s)
		}
	}
}

func TestCanonRoundTrip(t *testing.T) {
	exprs := []string{
		"cpu < 50",
		"a = 1 and b = 2",
		"(a = 1 or b = 2) and c != 3",
		"os = linux or os = freebsd",
	}
	for _, s := range exprs {
		e := MustParse(s)
		re, err := ParseExpr(e.Canon())
		if err != nil {
			t.Fatalf("reparse canon of %q (%q): %v", s, e.Canon(), err)
		}
		if re.Canon() != e.Canon() {
			t.Errorf("canon not stable: %q vs %q", e.Canon(), re.Canon())
		}
	}
}

func TestNegateLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(rng, 3)
		ne := Negate(e)
		g := randomGetter(rng)
		if e.Eval(g) == ne.Eval(g) {
			// Negation must flip the outcome... except when an
			// attribute is absent or incomparable: then both the
			// predicate and its negation are false by design.
			if !hasAbsentOrIncomparable(e, g) {
				t.Fatalf("Negate(%s) did not flip on %v", e, g)
			}
		}
	}
}

// TestCNFEquivalence model-checks ToCNF: the CNF must evaluate exactly
// like the original expression on random attribute assignments.
func TestCNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		e := randomExpr(rng, 4)
		cnf, err := ToCNF(e, 0)
		if err != nil {
			continue // budget exceeded is allowed, just not wrong
		}
		back := cnf.Expr()
		for i := 0; i < 20; i++ {
			g := randomGetter(rng)
			if e.Eval(g) != back.Eval(g) {
				t.Fatalf("CNF mismatch:\n orig: %s\n cnf:  %s\n env:  %v", e, back, g)
			}
		}
	}
}

// TestCNFClausesAreCovers verifies §6.3's cover property: any node
// satisfying the predicate satisfies at least one term of every clause.
func TestCNFClausesAreCovers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		e := randomExpr(rng, 4)
		cnf, err := ToCNF(e, 0)
		if err != nil {
			continue
		}
		for i := 0; i < 30; i++ {
			g := randomGetter(rng)
			if !e.Eval(g) {
				continue
			}
			for _, clause := range cnf {
				inCover := false
				for _, term := range clause {
					if term.Eval(g) {
						inCover = true
						break
					}
				}
				if !inCover {
					t.Fatalf("satisfying env %v not covered by clause %v of %s", g, clause, e)
				}
			}
		}
	}
}

func TestCNFBudget(t *testing.T) {
	// (a1 or b1) and (a2 or b2) ... distributes exponentially when
	// or-of-ands; build or-of-ands to force blowup.
	var terms []Expr
	for i := 0; i < 12; i++ {
		terms = append(terms, And{Terms: []Expr{
			Simple{Attr: attrName(i * 2), Op: OpEQ, Val: value.Int(1)},
			Simple{Attr: attrName(i*2 + 1), Op: OpEQ, Val: value.Int(1)},
		}})
	}
	_, err := ToCNF(Or{Terms: terms}, 64)
	if err == nil {
		t.Fatal("expected CNF budget error")
	}
}

func TestSimplesAndAttrs(t *testing.T) {
	e := MustParse("a = 1 and (b = 2 or a = 3)")
	if got := len(Simples(e)); got != 3 {
		t.Fatalf("Simples = %d terms", got)
	}
	attrs := Attrs(e)
	if len(attrs) != 2 || attrs[0] != "a" || attrs[1] != "b" {
		t.Fatalf("Attrs = %v", attrs)
	}
}

// ---------------------------------------------------------------------
// Random expression machinery shared by the property tests.

var testAttrs = []string{"p", "q", "r"}

func attrName(i int) string {
	return testAttrs[i%len(testAttrs)]
}

func randomSimple(rng *rand.Rand) Simple {
	ops := []Op{OpLT, OpGT, OpLE, OpGE, OpEQ, OpNE}
	return Simple{
		Attr: testAttrs[rng.Intn(len(testAttrs))],
		Op:   ops[rng.Intn(len(ops))],
		Val:  value.Int(int64(rng.Intn(5))),
	}
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return randomSimple(rng)
	}
	n := rng.Intn(2) + 2
	terms := make([]Expr, n)
	for i := range terms {
		terms[i] = randomExpr(rng, depth-1)
	}
	if rng.Intn(2) == 0 {
		return And{Terms: terms}
	}
	return Or{Terms: terms}
}

func randomGetter(rng *rand.Rand) mapGetter {
	g := mapGetter{}
	for _, a := range testAttrs {
		switch rng.Intn(4) {
		case 0:
			// absent
		default:
			g[a] = value.Int(int64(rng.Intn(5)))
		}
	}
	return g
}

func hasAbsentOrIncomparable(e Expr, g mapGetter) bool {
	for _, s := range Simples(e) {
		v := g.Get(s.Attr)
		if !v.IsValid() {
			return true
		}
		if _, err := value.Compare(v, s.Val); err != nil {
			return true
		}
	}
	return false
}

func TestCanonQuickStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 3)
		re, err := ParseExpr(e.Canon())
		if err != nil {
			return false
		}
		return re.Canon() == e.Canon()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
