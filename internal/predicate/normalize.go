package predicate

import (
	"sort"

	"github.com/moara/moara/internal/value"
)

// Normalize rewrites e into a canonical structural form so that
// syntactically different but equivalent predicates compare equal by
// Canon(). It is the predicate half of the query-service normalization
// that keys the result cache and the subsumption registry:
//
//   - nested conjunctions/disjunctions are flattened (a and (b and c)
//     becomes a and b and c), so association does not matter;
//   - duplicate terms are dropped (a and a becomes a), so repetition
//     does not matter (commutation is already handled by Canon's term
//     sort);
//   - single-term and/or wrappers unwrap to the term itself;
//   - redundant numeric bounds on the same attribute fold away: within
//     an And the tightest lower and upper bound wins (x > 3 and x > 5
//     becomes x > 5), within an Or the loosest (x > 3 or x > 5 becomes
//     x > 3).
//
// Normalize is conservative: it only rewrites when the result is
// provably equivalent for every attribute assignment, including the
// missing-attribute case (a missing or incomparable attribute satisfies
// no term). It never turns a non-empty predicate into nil.
func Normalize(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch t := e.(type) {
	case Simple:
		return t
	case And:
		terms := foldBounds(flatten(t.Terms, true), true)
		if len(terms) == 1 {
			return terms[0]
		}
		return And{Terms: terms}
	case Or:
		terms := foldBounds(flatten(t.Terms, false), false)
		if len(terms) == 1 {
			return terms[0]
		}
		return Or{Terms: terms}
	default:
		return e
	}
}

// flatten normalizes each term, splices same-kind children inline, and
// drops duplicates by canonical form (insertion order kept — Canon
// sorts for rendering, so order is cosmetic).
func flatten(terms []Expr, conj bool) []Expr {
	out := make([]Expr, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	var add func(Expr)
	add = func(e Expr) {
		e = Normalize(e)
		switch t := e.(type) {
		case And:
			if conj {
				for _, s := range t.Terms {
					add(s)
				}
				return
			}
		case Or:
			if !conj {
				for _, s := range t.Terms {
					add(s)
				}
				return
			}
		}
		c := e.Canon()
		if seen[c] {
			return
		}
		seen[c] = true
		out = append(out, e)
	}
	for _, t := range terms {
		add(t)
	}
	return out
}

// foldBounds removes numeric range terms made redundant by a tighter
// (And) or looser (Or) bound on the same attribute. Only terms whose
// values are mutually comparable numbers fold; mixed-type or
// non-numeric bounds are left alone (comparisons against an
// incomparable stored value never hold, so cross-type folding would
// not be equivalence-preserving).
func foldBounds(terms []Expr, conj bool) []Expr {
	type bound struct {
		idx int
		s   Simple
	}
	lower := make(map[string]bound) // > and >=
	upper := make(map[string]bound) // < and <=
	drop := make(map[int]bool)
	for i, t := range terms {
		s, ok := t.(Simple)
		if !ok || !isNumeric(s.Val) {
			continue
		}
		var side map[string]bound
		switch s.Op {
		case OpGT, OpGE:
			side = lower
		case OpLT, OpLE:
			side = upper
		default:
			continue
		}
		prev, held := side[s.Attr]
		if !held {
			side[s.Attr] = bound{i, s}
			continue
		}
		keepNew, comparable := strongerBound(s, prev.s, conj)
		if !comparable {
			continue
		}
		if keepNew {
			drop[prev.idx] = true
			side[s.Attr] = bound{i, s}
		} else {
			drop[i] = true
		}
	}
	if len(drop) == 0 {
		return terms
	}
	out := terms[:0]
	for i, t := range terms {
		if !drop[i] {
			out = append(out, t)
		}
	}
	return out
}

// strongerBound reports whether a should replace b: under conjunction
// the tighter bound survives, under disjunction the looser one. Both
// terms point the same direction on the same attribute. The second
// result is false when the two values are not comparable (mixed types).
func strongerBound(a, b Simple, conj bool) (keepA, comparable bool) {
	c, err := value.Compare(a.Val, b.Val)
	if err != nil {
		return false, false
	}
	if c == 0 {
		// Same threshold: strict implies non-strict, so under And the
		// strict operator (> over >=, < over <=) wins; under Or the
		// non-strict one does.
		aStrict := a.Op == OpGT || a.Op == OpLT
		return aStrict == conj, true
	}
	var aTighter bool
	switch a.Op {
	case OpGT, OpGE:
		aTighter = c > 0 // higher lower-bound is tighter
	default:
		aTighter = c < 0 // lower upper-bound is tighter
	}
	return aTighter == conj, true
}

func isNumeric(v value.Value) bool {
	switch v.Kind() {
	case value.KindInt, value.KindFloat:
		return true
	default:
		return false
	}
}

// CanonOf renders the canonical string of a normalized predicate; nil
// renders as the empty string (the all-nodes group).
func CanonOf(e Expr) string {
	if e == nil {
		return ""
	}
	return Normalize(e).Canon()
}

// SortedAttrs is Attrs of the normalized form (identical set — kept as
// a convenience for cache-key builders that want stable attribute
// lists without normalizing twice).
func SortedAttrs(e Expr) []string {
	out := Attrs(e)
	sort.Strings(out)
	return out
}
