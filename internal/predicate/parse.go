package predicate

import (
	"fmt"
	"strings"
	"unicode"

	"github.com/moara/moara/internal/value"
)

// ParseExpr parses a predicate expression in the query language's
// grammar:
//
//	expr   := and-expr ('or' and-expr)*
//	and    := unary ('and' unary)*
//	unary  := 'not' unary | '(' expr ')' | simple
//	simple := attr op literal,  op ∈ {<, >, <=, >=, =, !=, <>}
//
// Attribute names are identifiers (letters, digits, '_', '-', '.');
// literals are numbers, true/false, quoted strings, or bare words.
// 'not' is pushed down to the operators per the paper's implicit-not
// support.
func ParseExpr(s string) (Expr, error) {
	p := &parser{toks: lex(s)}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("predicate: trailing input %q", p.peek().text)
	}
	return e, nil
}

// ParseSimple parses a single simple predicate term.
func ParseSimple(s string) (Simple, error) {
	e, err := ParseExpr(s)
	if err != nil {
		return Simple{}, err
	}
	sim, ok := e.(Simple)
	if !ok {
		return Simple{}, fmt.Errorf("predicate: %q is not a simple predicate", s)
	}
	return sim, nil
}

// MustParse is ParseExpr that panics on error; for tests and examples.
func MustParse(s string) Expr {
	e, err := ParseExpr(s)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokOp
	tokLParen
	tokRParen
	tokLiteral
	tokErr
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var out []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(':
			out = append(out, token{tokLParen, "("})
			i++
		case c == ')':
			out = append(out, token{tokRParen, ")"})
			i++
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && (s[j] == '=' || (c == '<' && s[j] == '>')) {
				j++
			}
			out = append(out, token{tokOp, s[i:j]})
			i = j
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < len(s) && s[j] != q {
				j++
			}
			if j >= len(s) {
				out = append(out, token{tokErr, s[i:]})
				return out
			}
			out = append(out, token{tokLiteral, s[i : j+1]})
			i = j + 1
		default:
			j := i
			for j < len(s) && isWordChar(s[j]) {
				j++
			}
			if j == i {
				out = append(out, token{tokErr, s[i:]})
				return out
			}
			out = append(out, token{tokIdent, s[i:j]})
			i = j
		}
	}
	out = append(out, token{tokEOF, ""})
	return out
}

func isWordChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '*' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9') ||
		c == '+'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) eof() bool { return p.peek().kind == tokEOF }

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.keyword("or") {
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return Or{Terms: terms}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Expr{first}
	for p.keyword("and") {
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return And{Terms: terms}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.keyword("not") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Negate(inner), nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("predicate: missing ')' near %q", p.peek().text)
		}
		p.next()
		return inner, nil
	}
	return p.parseSimpleTerm()
}

func (p *parser) parseSimpleTerm() (Expr, error) {
	attrTok := p.next()
	if attrTok.kind != tokIdent {
		return nil, fmt.Errorf("predicate: expected attribute, got %q", attrTok.text)
	}
	opTok := p.next()
	if opTok.kind != tokOp {
		return nil, fmt.Errorf("predicate: expected operator after %q, got %q", attrTok.text, opTok.text)
	}
	op, err := ParseOp(opTok.text)
	if err != nil {
		return nil, err
	}
	litTok := p.next()
	if litTok.kind != tokIdent && litTok.kind != tokLiteral {
		return nil, fmt.Errorf("predicate: expected literal after %q %s, got %q", attrTok.text, op, litTok.text)
	}
	v, err := value.Parse(litTok.text)
	if err != nil {
		return nil, err
	}
	return Simple{Attr: attrTok.text, Op: op, Val: v}, nil
}
