package predicate

import (
	"testing"

	"github.com/moara/moara/internal/value"
)

// canon parses and normalizes, returning the canonical rendering.
func canon(t *testing.T, text string) string {
	t.Helper()
	e, err := ParseExpr(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return CanonOf(e)
}

func TestNormalizeEquivalentForms(t *testing.T) {
	cases := []struct {
		name string
		a, b string
	}{
		{"commuted and", "a = 1 and b = 2", "b = 2 and a = 1"},
		{"commuted or", "a = 1 or b = 2", "b = 2 or a = 1"},
		{"nested and flattens", "a = 1 and (b = 2 and c = 3)", "a = 1 and b = 2 and c = 3"},
		{"nested or flattens", "a = 1 or (b = 2 or c = 3)", "a = 1 or b = 2 or c = 3"},
		{"duplicate term drops", "a = 1 and a = 1", "a = 1"},
		{"duplicate or term drops", "a = 1 or a = 1 or b = 2", "a = 1 or b = 2"},
		{"and tighter lower bound wins", "x > 3 and x > 5", "x > 5"},
		{"and tighter upper bound wins", "x < 9 and x < 4", "x < 4"},
		{"or looser lower bound wins", "x > 3 or x > 5", "x > 3"},
		{"or looser upper bound wins", "x < 9 or x < 4", "x < 9"},
		{"equal threshold and keeps strict", "x > 5 and x >= 5", "x > 5"},
		{"equal threshold or keeps non-strict", "x > 5 or x >= 5", "x >= 5"},
		{"bounds fold with other terms", "svc = true and x > 1 and x > 2", "svc = true and x > 2"},
		{"int and float thresholds compare", "x > 2 and x > 2.5", "x > 2.5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if ca, cb := canon(t, tc.a), canon(t, tc.b); ca != cb {
				t.Fatalf("Canon(%q) = %q, Canon(%q) = %q; want equal", tc.a, ca, tc.b, cb)
			}
		})
	}
}

func TestNormalizeDistinctFormsStayDistinct(t *testing.T) {
	cases := []struct {
		name string
		a, b string
	}{
		{"different ops", "x > 5", "x >= 5"},
		{"and vs or", "a = 1 and b = 2", "a = 1 or b = 2"},
		{"opposite directions do not fold", "x > 3 and x < 5", "x > 3"},
		// A string bound is not comparable to a numeric one, so neither
		// term may be dropped.
		{"mixed types keep both", "x > 2 and x > abc", "x > 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if ca, cb := canon(t, tc.a), canon(t, tc.b); ca == cb {
				t.Fatalf("Canon(%q) == Canon(%q) == %q; want distinct", tc.a, tc.b, ca)
			}
		})
	}
}

// TestNormalizePreservesEvaluation proves normalization is semantic
// identity: the normalized predicate evaluates exactly like the
// original over a sweep of attribute assignments, including missing
// attributes.
func TestNormalizePreservesEvaluation(t *testing.T) {
	exprs := []string{
		"a = 1 and (b = 2 and c = 3)",
		"x > 3 and x > 5",
		"x > 3 or x > 5",
		"x > 5 and x >= 5",
		"x > 5 or x >= 5",
		"x > 2 and x < 8 and svc = true",
		"a = 1 or (b = 2 or a = 1)",
		"x > 2 and x > abc",
	}
	assignments := []map[string]value.Value{
		{},
		{"x": value.Int(4)},
		{"x": value.Int(5)},
		{"x": value.Int(6)},
		{"x": value.Float(5.0)},
		{"x": value.Str("abc")},
		{"a": value.Int(1), "b": value.Int(2), "c": value.Int(3)},
		{"a": value.Int(1), "b": value.Int(9)},
		{"x": value.Int(7), "svc": value.Bool(true)},
		{"x": value.Int(7), "svc": value.Bool(false)},
	}
	for _, text := range exprs {
		e, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		n := Normalize(e)
		for i, vals := range assignments {
			g := GetterFunc(func(name string) value.Value { return vals[name] })
			if e.Eval(g) != n.Eval(g) {
				t.Fatalf("%q: assignment %d: Eval(orig)=%v, Eval(normalized)=%v",
					text, i, e.Eval(g), n.Eval(g))
			}
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	for _, text := range []string{
		"a = 1 and (b = 2 and c = 3)", "x > 3 and x > 5", "a = 1 or a = 1",
	} {
		e, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		once := Normalize(e)
		twice := Normalize(once)
		if once.Canon() != twice.Canon() {
			t.Fatalf("%q: Normalize not idempotent: %q vs %q", text, once.Canon(), twice.Canon())
		}
	}
}

func TestNormalizeNil(t *testing.T) {
	if Normalize(nil) != nil {
		t.Fatal("Normalize(nil) != nil")
	}
	if CanonOf(nil) != "" {
		t.Fatalf("CanonOf(nil) = %q, want empty", CanonOf(nil))
	}
}
